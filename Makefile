# Verification targets. `make check` is the full gate: static analysis plus
# the race-enabled test sweep (the campaign engine fans simulations out
# across goroutines, so races are first-class failures here).

GO ?= go

.PHONY: check build vet test race race-short bench bench-compare golden

check: vet golden race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sim-heavy comparisons are ~6x slower under the race detector; this is
# the quick pre-push variant (full coverage of the campaign pool included).
race-short:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/campaign ./internal/inject

# Golden byte-identical-output tests: the simulated comparison accounting
# (dirty pages, hashed bytes, experiment tables) is pinned byte for byte;
# host-side comparison optimisations must not move it. Regenerate with
# `go test <pkg> -run Golden -update` after an intentional model change.
golden:
	$(GO) test ./internal/core ./internal/stats -run 'Golden'

bench:
	$(GO) test -bench=. -benchmem ./...

# Comparison-subsystem microbenchmark (ns/op, B/op, allocs/op of the
# segment-compare path under dirty tracking and the full-memory ablation).
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkCompareSegment -benchmem -benchtime 2x .
