# Verification targets. `make check` is the full gate: static analysis plus
# the race-enabled test sweep (the campaign engine fans simulations out
# across goroutines, so races are first-class failures here).

GO ?= go

.PHONY: check build vet test race race-short bench bench-compare bench-trajectory alloc-guard trajectory-check golden nmr-golden telemetry-golden trace-golden farm-golden profile-golden farm-soak fuzz-smoke offload-roundtrip

check: vet golden nmr-golden telemetry-golden trace-golden farm-golden profile-golden alloc-guard trajectory-check fuzz-smoke race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sim-heavy comparisons are ~6x slower under the race detector; this is
# the quick pre-push variant (full coverage of the campaign pool included).
race-short:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/campaign ./internal/inject

# Golden byte-identical-output tests: the simulated comparison accounting
# (dirty pages, hashed bytes, experiment tables) is pinned byte for byte;
# host-side comparison optimisations must not move it. Regenerate with
# `go test <pkg> -run Golden -update` after an intentional model change.
golden:
	$(GO) test ./internal/core ./internal/stats ./internal/packet ./internal/checkd -run 'Golden'

# The main+3 NMR demonstration campaign, pinned byte for byte: the clean run
# is unanimous, an injected checker SEU is absorbed in place, and an
# injected main fault is repaired by a forward state copy — all with zero
# rollbacks charged and the program output intact. Regenerate with
# `go test ./internal/stats -run GoldenNMR -update`.
nmr-golden:
	$(GO) test ./internal/stats -run 'GoldenNMR'

# Telemetry must be as deterministic as the simulation it observes: the
# snapshot for one fixed workload is pinned byte for byte, alongside the
# metric/span naming lint. Regenerate with
# `go test ./cmd/parallaft -run TestTelemetryGolden -update`.
telemetry-golden:
	$(GO) test ./cmd/parallaft -run 'TestTelemetryGolden'
	$(GO) test ./internal/telemetry -run 'Lint|Total'

# The merged causal trace of one fixed 3-node farm campaign, projected to
# its deterministic skeleton (wall clock stripped, node assignment collapsed
# to the actor class): every sealed segment must show one complete
# seal→delivery chain under its deterministic trace ID. Regenerate with
# `go test ./cmd/parallaft -run TestTraceGolden -update`.
trace-golden:
	$(GO) test ./cmd/parallaft -run 'TestTraceGolden'

# The check farm's acceptance gate: the whole workload suite's packets,
# sharded over three checkd nodes with one killed and one joined
# mid-campaign, must match the in-process checker byte for byte with every
# shared chunk crossing each node's wire at most once. Runs without -race
# (the full-suite double replay carries a !race build tag); the race-enabled
# soak below covers the same failover machinery at race-detector size.
# Regenerate with `go test ./internal/checkfarm -run Golden -update`.
farm-golden:
	$(GO) test ./internal/checkfarm -run 'TestGoldenFarmParity'

# The sampling profiler's folded stacks and the overhead-attribution ledger
# for one fixed workload, pinned byte for byte (host wall-clock stages zeroed
# to their deterministic skeleton), plus the exact reconciliation invariant:
# per-activity sums must equal the machine's sim-time and energy books bit
# for bit. Regenerate the goldens with
# `go test ./cmd/parallaft -run TestProfileGolden -update`.
profile-golden:
	$(GO) test ./cmd/parallaft -run 'TestProfileGolden'
	$(GO) test ./internal/core ./internal/stats -run 'Reconcile' -short

# Race-enabled kill/restart soak of the farm dispatcher: repeated node
# crashes and rejoins mid-campaign with exactly-once, in-order verdicts.
farm-soak:
	$(GO) test -race ./internal/checkfarm -run 'TestFarmSoak' -count 5

# Short fuzz of the check-packet codec: Decode must never panic, and every
# accepted input must re-encode byte-identically (canonical wire format).
fuzz-smoke:
	$(GO) test ./internal/packet -run '^$$' -fuzz FuzzPacketRoundTrip -fuzztime 5s

# End-to-end offload pipeline through the real binaries: export packets from
# a protected run, then re-check them with the daemon CLI.
offload-roundtrip:
	rm -rf /tmp/paft-packets && \
	$(GO) run ./cmd/parallaft -workload 458.sjeng -scale 0.05 -export-packets /tmp/paft-packets >/dev/null && \
	$(GO) run ./cmd/paftcheckd -verify /tmp/paft-packets -quiet

bench:
	$(GO) test -bench=. -benchmem ./...

# Comparison-subsystem microbenchmark (ns/op, B/op, allocs/op of the
# segment-compare path under dirty tracking and the full-memory ablation).
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkCompareSegment -benchmem -benchtime 2x .

# Zero-allocation pins for the hot paths (interpreter dispatch, the
# steady-state comparator, and tracing's disabled path). Run without -race:
# the detector's own instrumentation allocates, so the guard tests carry a
# !race build tag.
alloc-guard:
	$(GO) test ./internal/proc ./internal/compare ./internal/telemetry ./internal/telemetry/profile -run 'AllocFree' -v

# Validate the pinned benchmark-trajectory files: every BENCH_NNN.json must
# exist, parse against the parallaft-bench-trajectory/v1 schema, contain the
# headline fullmem benchmark on both sides, and back its PR's claim — the
# recorded speedup for PR 6, within-noise parity (observability is free) for
# PR 10.
trajectory-check:
	$(GO) test -run TestBenchTrajectory .

# Refresh the "current" side of the benchmark trajectory. Baselines are
# captured once per PR from the pre-PR tree under interleaved paired
# conditions (see cmd/benchtrend's doc comment) and are not overwritten
# here; pipe a pre-PR run through `benchtrend -set baseline` to redo one.
bench-trajectory:
	($(GO) test -run '^$$' -bench BenchmarkCompareSegment -benchmem -benchtime 3x . && \
	 $(GO) test -run '^$$' -bench BenchmarkInterpreterDispatch -benchmem -benchtime 200x .) \
	| $(GO) run ./cmd/benchtrend -json BENCH_010.json -pr 10 -set current

# Cross-PR view of every pinned trajectory file: current ns/op per PR with
# each file's own paired baseline speedup.
bench-trend:
	$(GO) run ./cmd/benchtrend -trend 'BENCH_*.json'
