# Verification targets. `make check` is the full gate: static analysis plus
# the race-enabled test sweep (the campaign engine fans simulations out
# across goroutines, so races are first-class failures here).

GO ?= go

.PHONY: check build vet test race race-short bench

check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sim-heavy comparisons are ~6x slower under the race detector; this is
# the quick pre-push variant (full coverage of the campaign pool included).
race-short:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/campaign ./internal/inject

bench:
	$(GO) test -bench=. -benchmem ./...
