module parallaft

go 1.22
