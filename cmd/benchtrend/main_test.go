package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: parallaft
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCompareSegment/dirty-4         	       3	 512345678 ns/op	        55.00 pages/boundary	120000000 B/op	  900000 allocs/op
BenchmarkCompareSegment/fullmem-4       	       3	1402489196 ns/op	       512.0 pages/boundary	274131288 B/op	   84087 allocs/op
BenchmarkInterpreterDispatch-4          	       3	    887464 ns/op	       112.7 Minstr/s	       0 B/op	       0 allocs/op
PASS
ok  	parallaft	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Entry{
		"BenchmarkCompareSegment/dirty":   {NsPerOp: 512345678, BytesPerOp: 120000000, AllocsPerOp: 900000},
		"BenchmarkCompareSegment/fullmem": {NsPerOp: 1402489196, BytesPerOp: 274131288, AllocsPerOp: 84087},
		"BenchmarkInterpreterDispatch":    {NsPerOp: 887464, BytesPerOp: 0, AllocsPerOp: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-4":         "BenchmarkFoo",
		"BenchmarkFoo/sub-x-16":  "BenchmarkFoo/sub-x",
		"BenchmarkFoo/sub-x":     "BenchmarkFoo/sub-x",
		"BenchmarkFoo":           "BenchmarkFoo",
		"BenchmarkBar/case-7-a":  "BenchmarkBar/case-7-a",
		"BenchmarkBar/case-7-12": "BenchmarkBar/case-7",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRunMergePreservesOtherSide writes a baseline, then a current, and
// checks both survive, the output is deterministic, and reloading agrees.
func TestRunMergePreservesOtherSide(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_006.json")
	if err := run(path, 6, "baseline", strings.NewReader(sampleOutput)); err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(sampleOutput, "1402489196", "700000000")
	if err := run(path, 6, "current", strings.NewReader(faster)); err != nil {
		t.Fatal(err)
	}

	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema || f.PR != 6 {
		t.Fatalf("header = %q pr %d", f.Schema, f.PR)
	}
	if got := f.Baseline["BenchmarkCompareSegment/fullmem"].NsPerOp; got != 1402489196 {
		t.Errorf("baseline fullmem ns/op = %v, want 1402489196", got)
	}
	if got := f.Current["BenchmarkCompareSegment/fullmem"].NsPerOp; got != 700000000 {
		t.Errorf("current fullmem ns/op = %v, want 700000000", got)
	}

	// Determinism: re-applying the same current snapshot is a no-op byte
	// for byte.
	before, _ := os.ReadFile(path)
	if err := run(path, 6, "current", strings.NewReader(faster)); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("re-running benchtrend on identical input changed the file")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := run(path, 6, "current", strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty bench output accepted")
	}
	if err := run(path, 0, "current", strings.NewReader(sampleOutput)); err == nil {
		t.Error("pr 0 accepted")
	}
	if err := run(path, 6, "sideways", strings.NewReader(sampleOutput)); err == nil {
		t.Error("bad -set accepted")
	}
	if err := run("", 6, "current", strings.NewReader(sampleOutput)); err == nil {
		t.Error("missing -json accepted")
	}
}

func TestTrendTable(t *testing.T) {
	files := []*File{
		{Schema: Schema, PR: 6,
			Baseline: map[string]Entry{"BenchmarkA": {NsPerOp: 200}},
			Current:  map[string]Entry{"BenchmarkA": {NsPerOp: 100}}},
		{Schema: Schema, PR: 10,
			Baseline: map[string]Entry{"BenchmarkA": {NsPerOp: 90}, "BenchmarkB": {NsPerOp: 50}},
			Current:  map[string]Entry{"BenchmarkA": {NsPerOp: 90}, "BenchmarkB": {NsPerOp: 50}}},
	}
	out := TrendTable(files)
	for _, want := range []string{"PR006", "PR010", "BenchmarkA", "BenchmarkB", "100 (2.00x)", "90 (1.00x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend table missing %q:\n%s", want, out)
		}
	}
	// BenchmarkB was not measured by PR 6: its PR006 cell is "-".
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkB") && !strings.Contains(line, "-") {
			t.Errorf("missing-measurement cell not rendered as -: %q", line)
		}
	}
}

func TestRunTrendGlob(t *testing.T) {
	dir := t.TempDir()
	f := &File{Schema: Schema, PR: 3,
		Baseline: map[string]Entry{"BenchmarkA": {NsPerOp: 10}},
		Current:  map[string]Entry{"BenchmarkA": {NsPerOp: 10}}}
	if err := f.Save(filepath.Join(dir, "BENCH_003.json")); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := runTrend(filepath.Join(dir, "BENCH_*.json"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PR003") {
		t.Errorf("trend output missing PR003:\n%s", buf.String())
	}
	if err := runTrend(filepath.Join(dir, "NOPE_*.json"), &buf); err == nil {
		t.Error("empty glob accepted")
	}
}
