// Command benchtrend maintains the repo's pinned benchmark-trajectory files
// (BENCH_NNN.json). It reads `go test -bench` output on stdin, extracts the
// standard per-op measurements, and merges them into one side of a
// trajectory file:
//
//	go test -run '^$' -bench BenchmarkCompareSegment -benchmem . \
//	    | benchtrend -json BENCH_006.json -pr 6 -set current
//
// A trajectory file records two snapshots of the same benchmarks — the
// pre-PR baseline and the post-PR current — taken under identical
// conditions (same machine, interleaved runs), so the ratio between them is
// the PR's measured effect rather than machine luck. The JSON schema is
// deterministic: fixed field names, map keys sorted by encoding/json, so
// re-running benchtrend on identical input reproduces the file byte for
// byte and diffs stay reviewable.
//
// Schema (parallaft-bench-trajectory/v1):
//
//	{
//	  "schema":   "parallaft-bench-trajectory/v1",
//	  "pr":       6,
//	  "baseline": {"<bench>/<case>": {"ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...}},
//	  "current":  {...}
//	}
//
// Benchmark names have the -<GOMAXPROCS> suffix stripped, so files taken on
// machines with different core counts still key identically. `-set` chooses
// which side the stdin results land on; the other side is preserved, so the
// baseline captured before a change survives re-measurements of current.
//
// With -trend, benchtrend instead reads every file matching the glob and
// renders the cross-PR trend table: one row per benchmark, one column per
// trajectory file in PR order, each cell the current ns/op with the
// within-file speedup over its paired baseline. Absolute numbers are only
// comparable within a column (files are measured on whatever machine ran
// that PR); the paired speedups are the machine-independent signal.
//
//	benchtrend -trend 'BENCH_*.json'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's standard per-op measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is one benchmark-trajectory file.
type File struct {
	Schema   string           `json:"schema"`
	PR       int              `json:"pr"`
	Baseline map[string]Entry `json:"baseline"`
	Current  map[string]Entry `json:"current"`
}

// Schema is the trajectory-file schema this tool reads and writes.
const Schema = "parallaft-bench-trajectory/v1"

func main() {
	var (
		jsonPath = flag.String("json", "", "trajectory file to update (required unless -trend)")
		pr       = flag.Int("pr", 0, "PR number recorded in the file (required unless -trend)")
		set      = flag.String("set", "current", "which snapshot stdin results belong to: baseline or current")
		trend    = flag.String("trend", "", "glob of trajectory files; print the cross-PR trend table instead of updating a file")
	)
	flag.Parse()
	if *trend != "" {
		if err := runTrend(*trend, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtrend:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*jsonPath, *pr, *set, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
}

// runTrend loads every trajectory file matching glob and prints the
// cross-PR trend table.
func runTrend(glob string, w io.Writer) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no trajectory files match %q", glob)
	}
	files := make([]*File, 0, len(paths))
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].PR < files[j].PR })
	_, err = w.Write([]byte(TrendTable(files)))
	return err
}

// TrendTable renders the cross-PR trend: one row per benchmark (union of
// names across files, sorted), one column per file in PR order. A cell is
// the file's current ns/op plus the paired speedup over that same file's
// baseline; "-" marks a benchmark the PR did not measure.
func TrendTable(files []*File) string {
	nameSet := map[string]bool{}
	for _, f := range files {
		for n := range f.Baseline {
			nameSet[n] = true
		}
		for n := range f.Current {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("benchmark trend (current ns/op, paired speedup vs same-file baseline)\n")
	fmt.Fprintf(&b, "%-44s", "benchmark")
	for _, f := range files {
		fmt.Fprintf(&b, " %22s", fmt.Sprintf("PR%03d", f.PR))
	}
	b.WriteByte('\n')
	for _, n := range names {
		fmt.Fprintf(&b, "%-44s", n)
		for _, f := range files {
			cur, okC := f.Current[n]
			base, okB := f.Baseline[n]
			switch {
			case !okC:
				fmt.Fprintf(&b, " %22s", "-")
			case okB && cur.NsPerOp > 0:
				fmt.Fprintf(&b, " %22s", fmt.Sprintf("%.0f (%.2fx)", cur.NsPerOp, base.NsPerOp/cur.NsPerOp))
			default:
				fmt.Fprintf(&b, " %22s", fmt.Sprintf("%.0f", cur.NsPerOp))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func run(jsonPath string, pr int, set string, in io.Reader) error {
	if jsonPath == "" {
		return fmt.Errorf("-json is required")
	}
	if pr <= 0 {
		return fmt.Errorf("-pr must be a positive PR number, got %d", pr)
	}
	if set != "baseline" && set != "current" {
		return fmt.Errorf("-set must be baseline or current, got %q", set)
	}

	entries, err := ParseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	f, err := Load(jsonPath)
	if os.IsNotExist(err) {
		f = &File{Schema: Schema, Baseline: map[string]Entry{}, Current: map[string]Entry{}}
	} else if err != nil {
		return err
	}
	f.PR = pr
	side := f.Current
	if set == "baseline" {
		side = f.Baseline
	}
	for name, e := range entries {
		side[name] = e
	}
	return f.Save(jsonPath)
}

// Load reads and validates a trajectory file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, this tool speaks %q", path, f.Schema, Schema)
	}
	if f.Baseline == nil {
		f.Baseline = map[string]Entry{}
	}
	if f.Current == nil {
		f.Current = map[string]Entry{}
	}
	return &f, nil
}

// Save writes the file with deterministic formatting (sorted map keys,
// two-space indent, trailing newline).
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseBenchOutput extracts standard per-op measurements from `go test
// -bench` output. Result lines look like
//
//	BenchmarkCompareSegment/fullmem-4   3   1402489196 ns/op   2.7e8 B/op   84087 allocs/op
//
// with an optional -<GOMAXPROCS> suffix (stripped) and any number of custom
// metrics (ignored). Non-benchmark lines are skipped, so the full `go test`
// transcript can be piped in unfiltered.
func ParseBenchOutput(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "Benchmark... 	--- FAIL")
		}
		name := stripProcSuffix(fields[0])
		e := out[name]
		// Measurements come as "<value> <unit>" pairs after the iteration
		// count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if e.NsPerOp == 0 {
			return nil, fmt.Errorf("benchmark %s: no ns/op measurement", name)
		}
		out[name] = e
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -<GOMAXPROCS> go test appends to
// benchmark names, without touching hyphens inside sub-benchmark names.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
