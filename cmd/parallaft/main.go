// Command parallaft runs a guest assembly program under Parallaft
// protection (or the RAFT baseline, or no protection) on the simulated
// heterogeneous machine, then dumps the statistics block the original
// artifact prints (Appendix A.7).
//
// Usage:
//
//	parallaft [-mode parallaft|raft|baseline] [-machine apple|intel] prog.pasm [args...]
//	parallaft -workload 429.mcf            # run a built-in workload instead
//	parallaft -period 2000000 prog.pasm    # slicing period in sim cycles
//	parallaft -workload 429.mcf -export-packets dir/   # emit check packets
//	parallaft -workload 429.mcf -stats-json            # machine-readable stats
//	parallaft -checkers 3 prog.pasm        # main+3 NMR: majority voting
//	parallaft -checkers 3 -diversity none,skid4x,bigcore prog.pasm  # diverse replicas
//	parallaft -workload 429.mcf -farm tcp:host1:9140,tcp:host2:9140 # re-check every
//	                                        # sealed segment on a checkd fleet
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"parallaft/internal/asm"
	"parallaft/internal/checkd"
	"parallaft/internal/checkfarm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
	"parallaft/internal/trace"
	"parallaft/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options are the parsed command-line settings for one invocation.
type options struct {
	mode      string
	machName  string
	wlName    string
	period    float64
	seed      int64
	scale     float64
	list      bool
	traceFile string
	traceCap  int
	exportDir string
	statsJSON bool
	spansFile string
	traceOut  string
	flightDir string
	checkers  int
	diversity string
	farm      string
	metrics   string

	profileOut    string
	profileFolded string
	profilePeriod float64
	ledger        bool
	windowsFile   string
	windowMs      float64

	// reg, when non-nil, is the shared registry behind -metrics-addr;
	// otherwise each checking run gets its own.
	reg *telemetry.Registry
}

// splitPresets turns the -diversity flag value into a preset list ("" =
// none; empty elements mean "none" and are validated as such).
func splitPresets(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// validateNMR rejects bad replica counts and unknown diversity presets
// before a run starts, mirroring the unknown-workload check: bad input is a
// clear usage error (exit 2), not a mid-run panic.
func validateNMR(o options) error {
	if o.checkers < 1 {
		return fmt.Errorf("-checkers must be a positive replica count, got %d", o.checkers)
	}
	if o.checkers > 1 && o.mode != "parallaft" {
		return fmt.Errorf("-checkers %d requires -mode parallaft (the NMR vote is a state comparison)", o.checkers)
	}
	return core.ValidateDiversity(splitPresets(o.diversity))
}

// run is the testable entry point: parses argv against a fresh FlagSet,
// executes, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("parallaft", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.mode, "mode", "parallaft", "execution mode: parallaft, raft, or baseline")
	fs.StringVar(&o.machName, "machine", "apple", "machine preset: apple, intel, or big (big cores only)")
	fs.StringVar(&o.wlName, "workload", "", "run a built-in workload instead of an assembly file")
	fs.Float64Var(&o.period, "period", 0, "slicing period in sim cycles (0 = default)")
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.Float64Var(&o.scale, "scale", 1.0, "workload scale (built-in workloads only)")
	fs.BoolVar(&o.list, "list", false, "list built-in workloads and exit")
	fs.StringVar(&o.traceFile, "trace", "", "write a JSONL trace of runtime decisions to this file")
	fs.IntVar(&o.traceCap, "trace-limit", 0, "keep at most N trace events (0 = unbounded); a truncation marker records the overflow")
	fs.StringVar(&o.exportDir, "export-packets", "", "export one check packet per sealed segment into this directory (paftcheckd -verify re-checks them)")
	fs.BoolVar(&o.statsJSON, "stats-json", false, "emit one compact JSON stats object per program instead of the text block")
	fs.StringVar(&o.spansFile, "spans", "", "write one JSONL segment-lifecycle span per retired segment to this file")
	fs.StringVar(&o.traceOut, "trace-out", "", "write a merged Chrome trace-event JSON of every causal-trace stage span (seal through delivery, main plus fleet) to this file")
	fs.StringVar(&o.flightDir, "flight-dir", "", "arm the flight recorder: dump recent spans/frames plus a telemetry snapshot as JSONL into this directory on node eviction, poison exhaustion or no-quorum votes")
	fs.IntVar(&o.checkers, "checkers", 1, "checker replicas per segment (N > 1 enables NMR majority voting; parallaft mode only)")
	fs.StringVar(&o.diversity, "diversity", "", "comma-separated per-replica substrate presets: none skid2x skid4x quantum bigcore coldcache")
	fs.StringVar(&o.farm, "farm", "", "comma-separated checkd node specs (tcp:host:port or Unix socket paths): re-check every sealed segment on the fleet")
	fs.StringVar(&o.metrics, "metrics-addr", "", "serve Prometheus text metrics on this TCP address at /metrics for the duration of the run")
	fs.StringVar(&o.profileOut, "profile-out", "", "write a gzipped pprof-format sim-clock CPU profile to this file (go tool pprof reads it)")
	fs.StringVar(&o.profileFolded, "profile-folded", "", "write the same profile as folded-stacks text (actor;core;symbol;block count) to this file")
	fs.Float64Var(&o.profilePeriod, "profile-period", 0, "sim cycles between profile samples (0 = default 50000)")
	fs.BoolVar(&o.ledger, "ledger", false, "attribute every simulated cycle and joule to an activity class, verify the attribution reconciles exactly with the time/energy books, and print the overhead breakdown (a \"ledger\" block under -stats-json)")
	fs.StringVar(&o.windowsFile, "metric-windows", "", "write fixed sim-clock-interval snapshots of the metrics registry (counter deltas, gauge levels) as JSONL to this file")
	fs.Float64Var(&o.windowMs, "window-interval-ms", 1.0, "simulated milliseconds per -metric-windows interval")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if err := validateNMR(o); err != nil {
		fmt.Fprintln(stderr, "parallaft:", err)
		return 2
	}
	if o.farm != "" {
		if o.mode != "parallaft" && o.mode != "raft" {
			fmt.Fprintln(stderr, "parallaft: -farm requires a checking mode (parallaft or raft)")
			return 2
		}
		if o.exportDir != "" {
			fmt.Fprintln(stderr, "parallaft: -farm and -export-packets both consume the packet stream; use one")
			return 2
		}
	}

	if o.list {
		for _, name := range workload.Names() {
			w := workload.Get(name)
			fmt.Fprintf(stdout, "%-18s [%s] %s\n", w.Name, w.Class, w.Note)
		}
		return 0
	}

	progs, err := loadPrograms(o.wlName, o.scale, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "parallaft:", err)
		return 2
	}

	var mcfg machine.Config
	switch o.machName {
	case "apple":
		mcfg = machine.AppleM2Like()
	case "intel":
		mcfg = machine.IntelLike()
	case "big":
		mcfg = machine.BigOnly()
	default:
		fmt.Fprintf(stderr, "parallaft: unknown machine %q\n", o.machName)
		return 2
	}

	if o.exportDir != "" && o.mode != "parallaft" && o.mode != "raft" {
		fmt.Fprintln(stderr, "parallaft: -export-packets requires a checking mode (parallaft or raft)")
		return 2
	}
	if (o.traceOut != "" || o.flightDir != "") && o.mode != "parallaft" && o.mode != "raft" {
		fmt.Fprintln(stderr, "parallaft: -trace-out and -flight-dir require a checking mode (parallaft or raft)")
		return 2
	}
	if (o.profileOut != "" || o.profileFolded != "" || o.ledger || o.windowsFile != "") &&
		o.mode != "parallaft" && o.mode != "raft" {
		fmt.Fprintln(stderr, "parallaft: -profile-out, -profile-folded, -ledger and -metric-windows require a checking mode (parallaft or raft)")
		return 2
	}

	if o.metrics != "" {
		o.reg = telemetry.NewRegistry()
		mln, err := net.Listen("tcp", o.metrics)
		if err != nil {
			fmt.Fprintln(stderr, "parallaft:", err)
			return 2
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", o.reg.Handler())
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(stderr, "parallaft: metrics on http://%s/metrics\n", mln.Addr())
	}

	for _, prog := range progs {
		// Multi-input workloads restart segment numbering per program, so
		// each program gets its own packet directory.
		dir := o.exportDir
		if dir != "" && len(progs) > 1 {
			dir = filepath.Join(dir, prog.Name)
		}
		if err := runOne(prog, mcfg, o, dir, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "parallaft:", err)
			return 1
		}
	}
	return 0
}

func loadPrograms(wlName string, scale float64, args []string) ([]*asm.Program, error) {
	if wlName != "" {
		w := workload.Get(wlName)
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q (try -list)", wlName)
		}
		return w.Gen(scale), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected exactly one assembly file (or -workload)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(args[0], string(src))
	if err != nil {
		return nil, err
	}
	return []*asm.Program{prog}, nil
}

func runOne(prog *asm.Program, mcfg machine.Config, o options, exportDir string, stdout, stderr io.Writer) error {
	m := machine.New(mcfg)
	k := oskernel.NewKernel(m.PageSize, o.seed)
	for name, data := range workload.Files() {
		k.AddFile(name, data)
	}
	l := oskernel.NewLoader(k, m.PageSize, o.seed)
	e := sim.New(m, k, l)
	e.MaxInstr = 4_000_000_000

	switch o.mode {
	case "baseline":
		res, err := e.RunBaseline(prog, m.BigCores()[0])
		if err != nil {
			return err
		}
		if o.statsJSON {
			return emitJSON(stdout, map[string]any{"benchmark": prog.Name, "mode": "baseline", "stats": res})
		}
		fmt.Fprintf(stdout, "== %s (baseline on %s) ==\n", prog.Name, m)
		fmt.Fprintf(stdout, "timing.all_wall_time:   %.3f ms\n", res.WallNs/1e6)
		fmt.Fprintf(stdout, "timing.user_time:       %.3f ms\n", res.UserNs/1e6)
		fmt.Fprintf(stdout, "timing.sys_time:        %.3f ms\n", res.SysNs/1e6)
		fmt.Fprintf(stdout, "energy.total:           %.3f mJ\n", res.EnergyJ*1e3)
		fmt.Fprintf(stdout, "instructions:           %d\n", res.Instrs)
		fmt.Fprintf(stdout, "branches:               %d\n", res.Branches)
		fmt.Fprintf(stdout, "exit_code:              %d\n", res.ExitCode)
		stdout.Write(res.Stdout)
		return nil

	case "parallaft", "raft":
		var cfg core.Config
		if o.mode == "raft" {
			cfg = core.RAFTConfig()
		} else {
			cfg = core.DefaultConfig()
			if m.SliceByInstructions {
				cfg.SliceByInstructions = true
				cfg.Tracking = core.TrackSoftDirty
			}
		}
		if o.period > 0 {
			cfg.SlicePeriodCycles = o.period
			cfg.SlicePeriodInstrs = uint64(o.period)
		}
		cfg.Checkers = o.checkers
		cfg.Diversity = splitPresets(o.diversity)
		var rec *trace.Recorder
		if o.traceFile != "" {
			rec = trace.New(o.traceCap)
			cfg.Trace = rec
		}
		// Telemetry is observation-only (it consumes no simulated time), so
		// the registry is always on in checking modes; -stats-json carries
		// its snapshot and -metrics-addr shares one registry across programs.
		reg := o.reg
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		cfg.Metrics = reg
		var spans *telemetry.SpanRecorder
		if o.spansFile != "" {
			spans = telemetry.NewSpanRecorder(0)
			cfg.Spans = spans
		}
		// One tracer and one flight recorder per run, shared by the recording
		// runtime and the farm dispatcher, so main's seal/export spans and the
		// fleet's dispatch/upload/verify spans merge onto one timeline.
		var tracer *telemetry.TraceRecorder
		if o.traceOut != "" {
			tracer = telemetry.NewTraceRecorder(0)
			tracer.SetMetrics(reg)
			cfg.Tracer = tracer
		}
		var flight *telemetry.FlightRecorder
		if o.flightDir != "" {
			if err := os.MkdirAll(o.flightDir, 0o755); err != nil {
				return err
			}
			flight = telemetry.NewFlightRecorder(0)
			flight.SetDir(o.flightDir)
			flight.SetMetrics(reg)
			cfg.Flight = flight
		}
		// The profiler, ledger, and window sampler are per-run: each program
		// gets a fresh machine, so the books they reconcile against restart.
		var profiler *profile.Recorder
		if o.profileOut != "" || o.profileFolded != "" {
			profiler = profile.NewRecorder(o.profilePeriod)
			profiler.SetMetrics(reg)
			cfg.Profiler = profiler
		}
		var ledger *profile.Ledger
		if o.ledger {
			ledger = profile.NewLedger()
			ledger.SetMetrics(reg)
			cfg.Ledger = ledger
		}
		var windows *profile.WindowSampler
		if o.windowsFile != "" {
			windows = profile.NewWindowSampler(reg, o.windowMs*1e6, 0)
			cfg.Windows = windows
		}
		var de *packet.DirExporter
		if exportDir != "" {
			var err error
			de, err = packet.NewDirExporter(exportDir, core.PageHashSeed)
			if err != nil {
				return err
			}
			cfg.Export = de.Exporter()
		}
		var farm *checkfarm.Farm
		var farmVerdicts func() []checkd.Verdict
		if o.farm != "" {
			store := pagestore.New(core.PageHashSeed)
			farm = checkfarm.New(store, checkfarm.Options{Metrics: reg, Tracer: tracer, Flight: flight, Ledger: ledger})
			for _, spec := range strings.Split(o.farm, ",") {
				if err := farm.AddNode(strings.TrimSpace(spec)); err != nil {
					farm.Close()
					return err
				}
			}
			cfg.Export = &packet.Exporter{
				Store: store,
				Sink:  func(p *packet.CheckPacket) error { return farm.Submit(p) },
			}
			var vs []checkd.Verdict
			done := make(chan struct{})
			go func() {
				defer close(done)
				for v := range farm.Verdicts() {
					vs = append(vs, v)
				}
			}()
			farmVerdicts = func() []checkd.Verdict {
				farm.Close()
				<-done
				return vs
			}
		}
		rt := core.NewRuntime(e, cfg)
		st, err := rt.Run(prog)
		if err != nil {
			if farmVerdicts != nil {
				farmVerdicts()
			}
			return err
		}
		var farmSummary *farmResult
		if farmVerdicts != nil {
			farmSummary = summarizeFarm(farmVerdicts(), farm.NodeStats())
		}
		if de != nil {
			if err := de.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "export: %d packets written to %s\n", de.Count(), exportDir)
		}
		if rec != nil {
			f, err := os.Create(o.traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteJSONL(f); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "trace: %d events written to %s\n", rec.Count(""), o.traceFile)
			if d := rec.Dropped(); d > 0 {
				fmt.Fprintf(stderr, "trace: %d events dropped by -trace-limit %d\n", d, o.traceCap)
			}
		}
		if spans != nil {
			f, err := os.Create(o.spansFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := spans.WriteJSONL(f); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "spans: %d segment spans written to %s\n", spans.Len(), o.spansFile)
		}
		if tracer != nil {
			// Written after the farm has drained, so remote-verify spans that
			// arrived over 'T' frames are in the merge.
			f, err := os.Create(o.traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := tracer.WriteChrome(f); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "trace-out: %d stage spans written to %s\n", tracer.Len(), o.traceOut)
		}
		if profiler != nil {
			if o.profileOut != "" {
				f, err := os.Create(o.profileOut)
				if err != nil {
					return err
				}
				if err := profiler.WritePprof(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(stderr, "profile: %d samples written to %s\n", profiler.TotalSamples(), o.profileOut)
			}
			if o.profileFolded != "" {
				if err := os.WriteFile(o.profileFolded, []byte(profiler.FoldedStacks()), 0o644); err != nil {
					return err
				}
			}
		}
		if windows != nil {
			f, err := os.Create(o.windowsFile)
			if err != nil {
				return err
			}
			if err := windows.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "windows: %d metric windows written to %s\n", len(windows.Windows()), o.windowsFile)
		}
		if ledger != nil {
			// The attribution invariant is a correctness gate, not advisory
			// output: a charge the ledger missed (or double-counted) means the
			// breakdown below lies about where the overhead went.
			if err := ledger.Reconcile(e.M); err != nil {
				return err
			}
		}
		if o.statsJSON {
			obj := map[string]any{
				"benchmark":     st.Benchmark,
				"mode":          o.mode,
				"stats":         st,
				"telemetry":     reg.Snapshot(),
				"trace_dropped": rec.Dropped(),
			}
			if farmSummary != nil {
				obj["farm"] = farmSummary
			}
			if ledger != nil {
				obj["ledger"] = ledger.Summarize()
			}
			if err := emitJSON(stdout, obj); err != nil {
				return err
			}
			return farmSummary.err()
		}
		fmt.Fprintf(stdout, "== %s (%s on %s) ==\n", prog.Name, o.mode, m)
		fmt.Fprintf(stdout, "timing.all_wall_time:            %.3f ms\n", st.AllWallNs/1e6)
		fmt.Fprintf(stdout, "timing.main_wall_time:           %.3f ms\n", st.MainWallNs/1e6)
		fmt.Fprintf(stdout, "timing.main_user_time:           %.3f ms\n", st.MainUserNs/1e6)
		fmt.Fprintf(stdout, "timing.main_sys_time:            %.3f ms\n", st.MainSysNs/1e6)
		fmt.Fprintf(stdout, "timing.runtime_work:             %.3f ms\n", st.RuntimeNs/1e6)
		fmt.Fprintf(stdout, "hwmon.energy_total:              %.3f mJ\n", st.EnergyJ*1e3)
		fmt.Fprintf(stdout, "counter.checkpoint_count:        %d\n", st.Checkpoints)
		fmt.Fprintf(stdout, "fixed_interval_slicer.nr_slices: %d\n", st.Slices)
		fmt.Fprintf(stdout, "counter.syscalls_traced:         %d\n", st.SyscallsTraced)
		fmt.Fprintf(stdout, "counter.cow_copies:              %d\n", st.COWCopies)
		fmt.Fprintf(stdout, "counter.dirty_pages_hashed:      %d\n", st.DirtyPagesHashed)
		fmt.Fprintf(stdout, "counter.identity_skips:          %d\n", st.IdentitySkips)
		fmt.Fprintf(stdout, "counter.hash_cache_hits:         %d\n", st.HashCacheHits)
		fmt.Fprintf(stdout, "checker.big_work_fraction:       %.1f%%\n", st.BigWorkFraction()*100)
		if o.checkers > 1 {
			fmt.Fprintf(stdout, "vote.unanimous:                  %d\n", st.VoteUnanimous)
			fmt.Fprintf(stdout, "vote.absorbed_replicas:          %d\n", st.VoteAbsorbed)
			fmt.Fprintf(stdout, "vote.outvoted_reference:         %d\n", st.VoteOutvotedReplicas)
			fmt.Fprintf(stdout, "vote.forward_repairs:            %d\n", st.ForwardRepairs)
			fmt.Fprintf(stdout, "vote.no_quorum:                  %d\n", st.VoteNoQuorum)
		}
		if farmSummary != nil {
			fmt.Fprintf(stdout, "farm.verdicts:                   %d ok=%d diverged=%d infra=%d\n",
				farmSummary.Verdicts, farmSummary.OK, farmSummary.Diverged, farmSummary.Infra)
			for _, ns := range farmSummary.Nodes {
				// The stats print after the farm has drained, so Live is
				// false for everyone; what matters is whether the node
				// finished the campaign or was evicted mid-way.
				state := "ok"
				if ns.EvictReason != "" {
					state = "evicted (" + ns.EvictReason + ")"
				}
				fmt.Fprintf(stdout, "farm.node %s: %s verdicts=%d uploads=%d cached=%d\n",
					ns.Addr, state, ns.Verdicts, ns.Uploads, ns.CacheSize)
			}
		}
		if ledger != nil {
			fmt.Fprintf(stdout, "-- overhead ledger (reconciled) --\n%s", ledger.Table())
		}
		fmt.Fprintf(stdout, "exit_code:                       %d\n", st.ExitCode)
		if st.Detected != nil {
			fmt.Fprintf(stdout, "DETECTED ERROR: %v\n", st.Detected)
		}
		stdout.Write(st.Stdout)
		return farmSummary.err()
	}
	return fmt.Errorf("unknown mode %q", o.mode)
}

// farmResult is the -farm campaign summary: one verdict per sealed segment,
// classified, plus the per-node dispatch accounting. It rides the
// -stats-json object under "farm".
type farmResult struct {
	Verdicts int                   `json:"verdicts"`
	OK       int                   `json:"ok"`
	Diverged int                   `json:"diverged"`
	Infra    int                   `json:"infra"`
	Nodes    []checkfarm.NodeStats `json:"nodes"`
}

func summarizeFarm(vs []checkd.Verdict, nodes []checkfarm.NodeStats) *farmResult {
	r := &farmResult{Verdicts: len(vs), Nodes: nodes}
	for _, v := range vs {
		switch {
		case v.Infra != "":
			r.Infra++
		case v.OK:
			r.OK++
		default:
			r.Diverged++
		}
	}
	return r
}

// err reports the campaign-level failure: the run only exits clean when
// every sealed segment came back with a passing farm verdict.
func (r *farmResult) err() error {
	if r == nil {
		return nil
	}
	if r.Diverged > 0 || r.Infra > 0 {
		return fmt.Errorf("farm: %d of %d segment verdicts failed (%d diverged, %d infrastructure)",
			r.Diverged+r.Infra, r.Verdicts, r.Diverged, r.Infra)
	}
	return nil
}

// emitJSON writes one compact JSON object per line, the machine-readable
// counterpart of the Appendix A.7 text block.
func emitJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
