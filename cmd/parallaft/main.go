// Command parallaft runs a guest assembly program under Parallaft
// protection (or the RAFT baseline, or no protection) on the simulated
// heterogeneous machine, then dumps the statistics block the original
// artifact prints (Appendix A.7).
//
// Usage:
//
//	parallaft [-mode parallaft|raft|baseline] [-machine apple|intel] prog.pasm [args...]
//	parallaft -workload 429.mcf            # run a built-in workload instead
//	parallaft -period 2000000 prog.pasm    # slicing period in sim cycles
package main

import (
	"flag"
	"fmt"
	"os"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
	"parallaft/internal/trace"
	"parallaft/internal/workload"
)

func main() {
	var (
		mode      = flag.String("mode", "parallaft", "execution mode: parallaft, raft, or baseline")
		machName  = flag.String("machine", "apple", "machine preset: apple, intel, or big (big cores only)")
		wlName    = flag.String("workload", "", "run a built-in workload instead of an assembly file")
		period    = flag.Float64("period", 0, "slicing period in sim cycles (0 = default)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		scale     = flag.Float64("scale", 1.0, "workload scale (built-in workloads only)")
		list      = flag.Bool("list", false, "list built-in workloads and exit")
		traceFile = flag.String("trace", "", "write a JSONL trace of runtime decisions to this file")
		traceCap  = flag.Int("trace-limit", 0, "keep at most N trace events (0 = unbounded); a truncation marker records the overflow")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			w := workload.Get(name)
			fmt.Printf("%-18s [%s] %s\n", w.Name, w.Class, w.Note)
		}
		return
	}

	progs, err := loadPrograms(*wlName, *scale, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "parallaft:", err)
		os.Exit(2)
	}

	var mcfg machine.Config
	switch *machName {
	case "apple":
		mcfg = machine.AppleM2Like()
	case "intel":
		mcfg = machine.IntelLike()
	case "big":
		mcfg = machine.BigOnly()
	default:
		fmt.Fprintf(os.Stderr, "parallaft: unknown machine %q\n", *machName)
		os.Exit(2)
	}

	for _, prog := range progs {
		if err := runOne(prog, mcfg, *mode, *period, *seed, *traceFile, *traceCap); err != nil {
			fmt.Fprintln(os.Stderr, "parallaft:", err)
			os.Exit(1)
		}
	}
}

func loadPrograms(wlName string, scale float64, args []string) ([]*asm.Program, error) {
	if wlName != "" {
		w := workload.Get(wlName)
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q (try -list)", wlName)
		}
		return w.Gen(scale), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected exactly one assembly file (or -workload)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(args[0], string(src))
	if err != nil {
		return nil, err
	}
	return []*asm.Program{prog}, nil
}

func runOne(prog *asm.Program, mcfg machine.Config, mode string, period float64, seed int64, traceFile string, traceCap int) error {
	m := machine.New(mcfg)
	k := oskernel.NewKernel(m.PageSize, seed)
	for name, data := range workload.Files() {
		k.AddFile(name, data)
	}
	l := oskernel.NewLoader(k, m.PageSize, seed)
	e := sim.New(m, k, l)
	e.MaxInstr = 4_000_000_000

	switch mode {
	case "baseline":
		res, err := e.RunBaseline(prog, m.BigCores()[0])
		if err != nil {
			return err
		}
		fmt.Printf("== %s (baseline on %s) ==\n", prog.Name, m)
		fmt.Printf("timing.all_wall_time:   %.3f ms\n", res.WallNs/1e6)
		fmt.Printf("timing.user_time:       %.3f ms\n", res.UserNs/1e6)
		fmt.Printf("timing.sys_time:        %.3f ms\n", res.SysNs/1e6)
		fmt.Printf("energy.total:           %.3f mJ\n", res.EnergyJ*1e3)
		fmt.Printf("instructions:           %d\n", res.Instrs)
		fmt.Printf("branches:               %d\n", res.Branches)
		fmt.Printf("exit_code:              %d\n", res.ExitCode)
		os.Stdout.Write(res.Stdout)
		return nil

	case "parallaft", "raft":
		var cfg core.Config
		if mode == "raft" {
			cfg = core.RAFTConfig()
		} else {
			cfg = core.DefaultConfig()
			if m.SliceByInstructions {
				cfg.SliceByInstructions = true
				cfg.Tracking = core.TrackSoftDirty
			}
		}
		if period > 0 {
			cfg.SlicePeriodCycles = period
			cfg.SlicePeriodInstrs = uint64(period)
		}
		var rec *trace.Recorder
		if traceFile != "" {
			rec = trace.New(traceCap)
			cfg.Trace = rec
		}
		rt := core.NewRuntime(e, cfg)
		st, err := rt.Run(prog)
		if err != nil {
			return err
		}
		if rec != nil {
			f, err := os.Create(traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteJSONL(f); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", rec.Count(""), traceFile)
			if d := rec.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "trace: %d events dropped by -trace-limit %d\n", d, traceCap)
			}
		}
		fmt.Printf("== %s (%s on %s) ==\n", prog.Name, mode, m)
		fmt.Printf("timing.all_wall_time:            %.3f ms\n", st.AllWallNs/1e6)
		fmt.Printf("timing.main_wall_time:           %.3f ms\n", st.MainWallNs/1e6)
		fmt.Printf("timing.main_user_time:           %.3f ms\n", st.MainUserNs/1e6)
		fmt.Printf("timing.main_sys_time:            %.3f ms\n", st.MainSysNs/1e6)
		fmt.Printf("timing.runtime_work:             %.3f ms\n", st.RuntimeNs/1e6)
		fmt.Printf("hwmon.energy_total:              %.3f mJ\n", st.EnergyJ*1e3)
		fmt.Printf("counter.checkpoint_count:        %d\n", st.Checkpoints)
		fmt.Printf("fixed_interval_slicer.nr_slices: %d\n", st.Slices)
		fmt.Printf("counter.syscalls_traced:         %d\n", st.SyscallsTraced)
		fmt.Printf("counter.cow_copies:              %d\n", st.COWCopies)
		fmt.Printf("counter.dirty_pages_hashed:      %d\n", st.DirtyPagesHashed)
		fmt.Printf("counter.identity_skips:          %d\n", st.IdentitySkips)
		fmt.Printf("counter.hash_cache_hits:         %d\n", st.HashCacheHits)
		fmt.Printf("checker.big_work_fraction:       %.1f%%\n", st.BigWorkFraction()*100)
		fmt.Printf("exit_code:                       %d\n", st.ExitCode)
		if st.Detected != nil {
			fmt.Printf("DETECTED ERROR: %v\n", st.Detected)
		}
		os.Stdout.Write(st.Stdout)
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}
