package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeTrace mirrors the subset of the Chrome trace-event JSON the CLI
// emits that the tests assert on.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func readChromeTrace(t *testing.T, path string) chromeTrace {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace-out file: %v", err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace-out is not valid Chrome trace JSON: %v", err)
	}
	return tr
}

// stagesAndActors projects a trace into the set of stage names ("X" events)
// and actor names ("M" process_name metadata) it contains.
func stagesAndActors(tr chromeTrace) (map[string]int, map[string]bool) {
	stages := map[string]int{}
	actors := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "X":
			stages[ev.Name]++
		case "M":
			if ev.Name == "process_name" {
				if n, ok := ev.Args["name"].(string); ok {
					actors[n] = true
				}
			}
		}
	}
	return stages, actors
}

// TestTraceFlagValidation: the tracing flags observe a checking pipeline,
// so asking for them in baseline mode is a usage error.
func TestTraceFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "baseline", "-trace-out", "x.json", "-workload", "stress.getpid"},
		{"-mode", "baseline", "-flight-dir", "x", "-workload", "stress.getpid"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit code %d, want 2 (stderr %q)", args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), "require a checking mode") {
			t.Errorf("%v: stderr = %q", args, stderr.String())
		}
	}
}

// TestTraceOutLocalRun: without a farm (or packet export) the causal chain
// stops at seal — the trace holds seal spans on the "main" track and
// nothing else.
func TestTraceOutLocalRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "stress.getpid", "-scale", "0.05",
		"-trace-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	stages, actors := stagesAndActors(readChromeTrace(t, out))
	if stages["seal"] == 0 {
		t.Errorf("no seal spans in trace: %v", stages)
	}
	if stages["export"] != 0 || stages["dispatch"] != 0 || stages["remote-verify"] != 0 {
		t.Errorf("exporter/farm stages present without an exporter: %v", stages)
	}
	if !actors["main"] || len(actors) != 1 {
		t.Errorf("actors = %v, want exactly {main}", actors)
	}
	if !strings.Contains(stderr.String(), "stage spans written") {
		t.Errorf("stderr missing trace-out summary: %q", stderr.String())
	}
}

// TestTraceOutFarmRun drives -farm with -trace-out and checks the merged
// timeline: every sealed segment's chain runs seal through delivery, with
// main, the farm dispatcher, and each node on their own tracks — including
// the remote-verify spans shipped back over 'T' frames.
func TestTraceOutFarmRun(t *testing.T) {
	a, b := startFarmNode(t), startFarmNode(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "458.sjeng", "-scale", "0.05",
		"-farm", a + "," + b, "-trace-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	tr := readChromeTrace(t, out)
	stages, actors := stagesAndActors(tr)
	n := stages["seal"]
	if n == 0 {
		t.Fatalf("no seal spans in trace: %v", stages)
	}
	for _, st := range []string{"export", "dispatch", "upload", "remote-verify", "verdict-remap", "delivery"} {
		if stages[st] != n {
			t.Errorf("stage %s has %d spans, want %d (one per sealed segment): %v",
				st, stages[st], n, stages)
		}
	}
	for _, actor := range []string{"main", "farm", "node0", "node1"} {
		if !actors[actor] {
			t.Errorf("actor %s missing from trace: %v", actor, actors)
		}
	}
	// Every complete event carries the deterministic trace ID of its
	// segment's chain, so chains can be followed across tracks.
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "X" && ev.Args["trace"] == nil {
			t.Fatalf("span %q has no trace id: %v", ev.Name, ev.Args)
		}
	}
}

// TestFlightDirNoAnomaly: a clean run with -flight-dir arms the recorder
// but dumps nothing — the black box only writes on anomalies.
func TestFlightDirNoAnomaly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flight")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "stress.getpid", "-scale", "0.05",
		"-flight-dir", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("flight dir was not created: %v", err)
	}
	if len(ents) != 0 {
		t.Errorf("clean run wrote flight dumps: %v", ents)
	}
}
