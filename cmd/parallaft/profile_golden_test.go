package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"parallaft/internal/telemetry/profile"
)

// TestProfileGolden pins the sampling profiler's folded-stacks output and the
// overhead-attribution ledger for one fixed workload byte for byte. Both are
// fed exclusively from the simulated clock and the machine's energy books, so
// they must be exactly as deterministic as the simulation: a drift here means
// the profiler leaked host-side state into its sample points, or a charge
// site moved without the cost model moving (which Reconcile would also
// reject).
//
// Host stages in the ledger summary carry wall-clock nanoseconds, so the
// pinned projection zeroes host_ns and keeps the deterministic skeleton
// (stage names, counts, simulated totals) — same approach as the trace
// golden.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/parallaft -run TestProfileGolden -update
func TestProfileGolden(t *testing.T) {
	dir := t.TempDir()
	foldedPath := filepath.Join(dir, "prof.folded")
	pprofPath := filepath.Join(dir, "prof.pb.gz")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-workload", "429.mcf", "-scale", "0.05", "-stats-json",
		"-ledger",
		"-profile-folded", foldedPath,
		"-profile-out", pprofPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}

	// The binary profile must at minimum be valid gzip (full pprof
	// interoperability is covered in internal/telemetry/profile).
	pb, err := os.ReadFile(pprofPath)
	if err != nil {
		t.Fatalf("no pprof output: %v", err)
	}
	if _, err := gzip.NewReader(bytes.NewReader(pb)); err != nil {
		t.Fatalf("-profile-out is not gzip: %v", err)
	}

	folded, err := os.ReadFile(foldedPath)
	if err != nil {
		t.Fatalf("no folded-stacks output: %v", err)
	}
	if len(folded) == 0 {
		t.Fatal("folded-stacks output is empty")
	}

	var obj struct {
		Ledger *profile.Summary `json:"ledger"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &obj); err != nil {
		t.Fatalf("stats-json is not valid JSON: %v\n%s", err, stdout.String())
	}
	if obj.Ledger == nil {
		t.Fatal("stats-json carries no ledger block")
	}
	for i := range obj.Ledger.Host {
		obj.Ledger.Host[i].HostNs = 0
	}
	ledgerJSON, err := json.MarshalIndent(obj.Ledger, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	ledgerJSON = append(ledgerJSON, '\n')

	check := func(golden string, got []byte) {
		t.Helper()
		path := filepath.Join("testdata", golden)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
		}
	}
	check("profile_folded_golden.txt", folded)
	check("ledger_golden.json", ledgerJSON)
}
