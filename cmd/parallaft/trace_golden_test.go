package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// stageOrder is the canonical pipeline order used to lay out each chain's
// projection line.
var stageOrder = []string{"seal", "export", "dispatch", "upload", "remote-verify", "verdict-remap", "delivery"}

// projectTrace reduces a merged Chrome trace to its deterministic skeleton:
// wall-clock timestamps stripped, node indices collapsed to the actor class
// ("node"), one line per segment listing its trace ID and every stage (with
// its actor class and, when not 1, its span count) in pipeline order.
func projectTrace(tr chromeTrace) string {
	names := make(map[int]string)
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.PID] = n
			}
		}
	}
	nodeRe := regexp.MustCompile(`^node\d+$`)
	type key struct {
		segment int
		stage   string
	}
	segs := make(map[int]string) // segment -> trace id
	counts := make(map[key]int)
	actors := make(map[key]string)
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		seg := int(ev.Args["segment"].(float64))
		segs[seg] = ev.Args["trace"].(string)
		k := key{seg, ev.Name}
		counts[k]++
		actor := names[ev.PID]
		if nodeRe.MatchString(actor) {
			actor = "node"
		}
		actors[k] = actor
	}

	var order []int
	for seg := range segs {
		order = append(order, seg)
	}
	sort.Ints(order)
	var b strings.Builder
	for _, seg := range order {
		fmt.Fprintf(&b, "seg %d trace %s", seg, segs[seg])
		for _, st := range stageOrder {
			k := key{seg, st}
			if counts[k] == 0 {
				fmt.Fprintf(&b, " %s@MISSING", st)
				continue
			}
			fmt.Fprintf(&b, " %s@%s", st, actors[k])
			if counts[k] != 1 {
				fmt.Fprintf(&b, "x%d", counts[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestTraceGolden pins the causal-trace skeleton of a fixed three-node farm
// campaign byte for byte. Wall-clock timing and node assignment are the
// only nondeterministic parts of a trace, and the projection strips
// exactly those, so what remains — which segments were sealed, their
// deterministic trace IDs, and one complete seal→delivery chain per
// segment with each stage on the right actor class — must never drift.
//
// Regenerate after an intentional pipeline change with:
//
//	go test ./cmd/parallaft -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	specs := []string{startFarmNode(t), startFarmNode(t), startFarmNode(t)}
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "458.sjeng", "-scale", "0.05",
		"-farm", strings.Join(specs, ","), "-trace-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	got := projectTrace(readChromeTrace(t, out))

	golden := filepath.Join("testdata", "trace_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace projection drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
