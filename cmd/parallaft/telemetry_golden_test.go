package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of diffing")

// TestTelemetryGolden pins the telemetry snapshot for one fixed workload
// byte for byte. Telemetry is observation-only and fed exclusively from
// simulated state on this path, so the snapshot must be as deterministic
// as the simulation itself — any drift here means instrumentation leaked
// host-side nondeterminism (or the cost model moved, which the other
// goldens would also catch).
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/parallaft -run TestTelemetryGolden -update
func TestTelemetryGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// 429.mcf at this scale spans several segments, so the segment,
	// comparison and scheduler instruments all carry nonzero values.
	code := run([]string{"-workload", "429.mcf", "-scale", "0.05", "-stats-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var obj struct {
		Telemetry    json.RawMessage `json:"telemetry"`
		TraceDropped *uint64         `json:"trace_dropped"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &obj); err != nil {
		t.Fatalf("stats-json is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(obj.Telemetry) == 0 {
		t.Fatal("stats-json carries no telemetry snapshot")
	}
	if obj.TraceDropped == nil {
		t.Fatal("stats-json carries no trace_dropped counter")
	}

	var pretty bytes.Buffer
	if err := json.Indent(&pretty, obj.Telemetry, "", "  "); err != nil {
		t.Fatalf("telemetry snapshot is not valid JSON: %v", err)
	}
	pretty.WriteByte('\n')

	golden := filepath.Join("testdata", "telemetry_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("telemetry snapshot drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, pretty.Bytes(), want)
	}
}
