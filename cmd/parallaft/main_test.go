package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parallaft/internal/checkd"
	"parallaft/internal/packet"
)

// TestStatsJSON pins the machine-readable stats path: one compact JSON
// object per program, carrying the run's stats block.
func TestStatsJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "stress.getpid", "-scale", "0.05", "-stats-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one JSON line, got:\n%s", stdout.String())
	}
	var obj struct {
		Benchmark string `json:"benchmark"`
		Mode      string `json:"mode"`
		Stats     struct {
			Slices      int     `json:"Slices"`
			Checkpoints int     `json:"Checkpoints"`
			AllWallNs   float64 `json:"AllWallNs"`
			Stdout      []byte  `json:"Stdout"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, line)
	}
	if obj.Mode != "parallaft" {
		t.Errorf("mode = %q", obj.Mode)
	}
	if !strings.Contains(obj.Benchmark, "getpid") {
		t.Errorf("benchmark = %q", obj.Benchmark)
	}
	if obj.Stats.AllWallNs <= 0 {
		t.Errorf("AllWallNs = %v, want > 0", obj.Stats.AllWallNs)
	}
	if len(obj.Stats.Stdout) == 0 {
		t.Error("stats carry no program stdout")
	}
}

func TestStatsJSONBaseline(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-mode", "baseline", "-workload", "stress.getpid", "-scale", "0.05", "-stats-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	var obj struct {
		Mode  string `json:"mode"`
		Stats struct {
			Instrs   uint64 `json:"Instrs"`
			ExitCode int64  `json:"ExitCode"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &obj); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if obj.Mode != "baseline" || obj.Stats.Instrs == 0 {
		t.Errorf("unexpected baseline stats: %s", stdout.String())
	}
}

// TestExportPackets runs a workload with -export-packets and checks that
// the directory holds a loadable store and one packet per sealed segment.
func TestExportPackets(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pkts")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "stress.devzero", "-scale", "0.05", "-export-packets", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, packet.StoreName)); err != nil {
		t.Fatalf("no page store exported: %v", err)
	}
	_, pkts, err := packet.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(pkts) == 0 {
		t.Fatal("no packets exported")
	}
	if !strings.Contains(stderr.String(), "packets written") {
		t.Errorf("stderr missing export summary: %q", stderr.String())
	}
}

// startFarmNode runs a checkd server on loopback TCP and returns its node
// spec for the -farm flag.
func startFarmNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := checkd.NewServer(checkd.Options{Workers: 2})
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
	})
	return "tcp:" + ln.Addr().String()
}

// TestFarmRun drives -farm end to end through the CLI: every sealed segment
// is re-checked on a two-node fleet, the stats block gains the farm lines,
// and the exit is clean only because every farm verdict passed.
func TestFarmRun(t *testing.T) {
	a, b := startFarmNode(t), startFarmNode(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "458.sjeng", "-scale", "0.05",
		"-farm", a + "," + b}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "farm.verdicts:") {
		t.Fatalf("stats block missing the farm summary:\n%s", out)
	}
	if !strings.Contains(out, "diverged=0 infra=0") {
		t.Errorf("farm verdicts not clean:\n%s", out)
	}
	if strings.Count(out, "farm.node ") != 2 {
		t.Errorf("want one farm.node line per node:\n%s", out)
	}
}

// TestFarmRunStatsJSON pins the machine-readable farm block.
func TestFarmRunStatsJSON(t *testing.T) {
	spec := startFarmNode(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "stress.getpid", "-scale", "0.05",
		"-farm", spec, "-stats-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	var obj struct {
		Farm struct {
			Verdicts int `json:"verdicts"`
			OK       int `json:"ok"`
			Diverged int `json:"diverged"`
			Infra    int `json:"infra"`
			Nodes    []struct {
				Addr     string `json:"Addr"`
				Verdicts int    `json:"Verdicts"`
			} `json:"nodes"`
		} `json:"farm"`
		Telemetry []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value,omitempty"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(stdout.Bytes()), &obj); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if obj.Farm.Verdicts == 0 || obj.Farm.OK != obj.Farm.Verdicts {
		t.Errorf("farm block = %+v, want all verdicts ok", obj.Farm)
	}
	if len(obj.Farm.Nodes) != 1 || obj.Farm.Nodes[0].Addr != spec {
		t.Errorf("farm nodes = %+v, want the single node %s", obj.Farm.Nodes, spec)
	}
	found := false
	for _, m := range obj.Telemetry {
		if m.Name == "paft_farm_verdicts_total" && m.Value == float64(obj.Farm.Verdicts) {
			found = true
		}
	}
	if !found {
		t.Error("telemetry snapshot missing paft_farm_verdicts_total matching the farm block")
	}
}

// TestFarmFlagValidation: -farm outside checking modes or combined with
// -export-packets is a usage error.
func TestFarmFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-mode", "baseline", "-farm", "tcp:127.0.0.1:1", "-workload", "stress.getpid"}, "requires a checking mode"},
		{[]string{"-farm", "tcp:127.0.0.1:1", "-export-packets", "x", "-workload", "stress.getpid"}, "use one"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit code %d, want 2 (stderr %q)", tc.args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr = %q, want it to mention %q", tc.args, stderr.String(), tc.want)
		}
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "no-such-benchmark"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestBadNMRFlagsFail mirrors the unknown-workload check for the NMR knobs:
// nonsensical replica counts, unknown diversity presets, and NMR outside
// parallaft mode are usage errors (exit 2), not mid-run panics.
func TestBadNMRFlagsFail(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-checkers", "0", "-workload", "stress.getpid"}, "-checkers must be a positive replica count"},
		{[]string{"-checkers", "-3", "-workload", "stress.getpid"}, "-checkers must be a positive replica count"},
		{[]string{"-diversity", "none,warp-core", "-workload", "stress.getpid"}, "unknown diversity preset"},
		{[]string{"-checkers", "3", "-mode", "raft", "-workload", "stress.getpid"}, "requires -mode parallaft"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit code %d, want 2 (stderr %q)", tc.args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr = %q, want it to mention %q", tc.args, stderr.String(), tc.want)
		}
	}
}

// TestNMRRun drives a short main+3 run end to end through the CLI and
// checks the vote block appears with every segment unanimous.
func TestNMRRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checkers", "3", "-diversity", "none,skid4x,bigcore",
		"-workload", "stress.getpid", "-scale", "0.05"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "vote.unanimous:") {
		t.Errorf("stats block missing the vote counters:\n%s", out)
	}
	if strings.Contains(out, "DETECTED ERROR") {
		t.Errorf("clean NMR run flagged an error:\n%s", out)
	}
}
