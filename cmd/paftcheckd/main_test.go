package main

import (
	"bytes"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/checkd"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/sim"
)

// exportRun produces a packet directory from a protected run, standing in
// for `parallaft -export-packets`.
func exportRun(t *testing.T, dir string) {
	t.Helper()
	b := asm.NewBuilder("victim")
	b.Space("buf", 32*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 120_000)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 4095)
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 32760)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	prog := b.MustBuild()

	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	de, err := packet.NewDirExporter(dir, core.PageHashSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Export = de.Exporter()

	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 7)
	l := oskernel.NewLoader(k, m.PageSize, 7)
	e := sim.New(m, k, l)
	rt := core.NewRuntime(e, cfg)
	if _, err := rt.Run(prog); err != nil {
		t.Fatalf("protected run: %v", err)
	}
	if err := de.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyInProcess(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pkts")
	exportRun(t, dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-verify", dir, "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 diverged") {
		t.Errorf("summary missing: %q", stdout.String())
	}
}

// TestVerifyOverSocket is the CLI acceptance round trip: an exported
// directory is verified through a live daemon over a Unix socket.
func TestVerifyOverSocket(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pkts")
	exportRun(t, dir)

	sock := filepath.Join(t.TempDir(), "checkd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := checkd.NewServer(checkd.Options{Workers: 2})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var stdout, stderr bytes.Buffer
	code := run([]string{"-verify", dir, "-connect", sock, "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 diverged") {
		t.Errorf("summary missing: %q", stdout.String())
	}
}

// TestVerifyOverTCP covers the farm-node transport end to end through the
// CLI: `-listen tcp:host:0` serves the same framed protocol over TCP, and
// `-verify -connect tcp:host:port` checks through it.
func TestVerifyOverTCP(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pkts")
	exportRun(t, dir)

	shutdownHook = make(chan struct{})
	listenHook = make(chan net.Addr, 1)
	defer func() { shutdownHook, listenHook = nil, nil }()
	serveDone := make(chan int, 1)
	var serveErr bytes.Buffer
	go func() {
		serveDone <- run([]string{"-listen", "tcp:127.0.0.1:0", "-workers", "2"}, &bytes.Buffer{}, &serveErr)
	}()
	addr := <-listenHook

	var stdout, stderr bytes.Buffer
	code := run([]string{"-verify", dir, "-connect", "tcp:" + addr.String(), "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 diverged") {
		t.Errorf("summary missing: %q", stdout.String())
	}

	close(shutdownHook)
	if code := <-serveDone; code != 0 {
		t.Fatalf("serve exit %d\nstderr:\n%s", code, serveErr.String())
	}
}

func TestVerifyMissingDirFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", filepath.Join(t.TempDir(), "nope")}, &stdout, &stderr); code != 3 {
		t.Fatalf("exit %d, want 3", code)
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
