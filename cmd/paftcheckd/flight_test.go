package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFlightDirRequiresListen: the flight recorder is a daemon black box;
// asking for it on a -verify run is a usage error.
func TestFlightDirRequiresListen(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", "x", "-flight-dir", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "requires -listen") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestServeFlightDump drives the daemon black box end to end: a served
// verify run fills the flight ring with transport frames and verify spans,
// then the SIGQUIT path (through the test hook) dumps them as JSONL —
// without stopping the daemon.
func TestServeFlightDump(t *testing.T) {
	pkts := filepath.Join(t.TempDir(), "pkts")
	exportRun(t, pkts)
	flightDir := t.TempDir()

	shutdownHook = make(chan struct{})
	listenHook = make(chan net.Addr, 1)
	flightHook = make(chan struct{})
	defer func() { shutdownHook, listenHook, flightHook = nil, nil, nil }()
	serveDone := make(chan int, 1)
	var serveErr bytes.Buffer
	go func() {
		serveDone <- run([]string{"-listen", "tcp:127.0.0.1:0", "-workers", "2",
			"-flight-dir", flightDir}, &bytes.Buffer{}, &serveErr)
	}()
	addr := <-listenHook

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", pkts, "-connect", "tcp:" + addr.String(), "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("verify exit %d\nstderr:\n%s", code, stderr.String())
	}

	flightHook <- struct{}{}
	path := filepath.Join(flightDir, "flight-checkd-0.jsonl")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight dump appeared in %s (stderr: %q)", flightDir, serveErr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dump := string(b)
	if !strings.Contains(dump, `"flight_dump":"sigquit"`) {
		t.Errorf("dump header missing the sigquit reason:\n%s", dump)
	}
	// The served verify run crossed the wire, so the ring holds transport
	// frames and the executor's remote-verify spans.
	if !strings.Contains(dump, `"kind":"frame"`) {
		t.Errorf("dump has no transport frames:\n%s", dump)
	}
	if !strings.Contains(dump, `"stage":"remote-verify"`) {
		t.Errorf("dump has no remote-verify spans:\n%s", dump)
	}

	// The daemon is still serving after the dump.
	if code := run([]string{"-verify", pkts, "-connect", "tcp:" + addr.String(), "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("verify after dump exit %d\nstderr:\n%s", code, stderr.String())
	}

	close(shutdownHook)
	if code := <-serveDone; code != 0 {
		t.Fatalf("serve exit %d\nstderr:\n%s", code, serveErr.String())
	}
}
