// Command paftcheckd is the offloaded checking daemon: it re-runs
// Parallaft check packets (exported by `parallaft -export-packets dir/`)
// against a fresh simulated substrate and reports one verdict per segment,
// identical to what the in-process checkers would have decided.
//
// Usage:
//
//	paftcheckd -verify dir/                 # check an exported directory in-process
//	paftcheckd -listen /run/paftcheckd.sock # serve the checking service on a Unix socket
//	paftcheckd -listen tcp:0.0.0.0:9140     # serve over TCP, e.g. as one farm node
//	paftcheckd -verify dir/ -connect /run/paftcheckd.sock   # check via a running daemon
//	paftcheckd -verify dir/ -connect tcp:host:9140          # same, over TCP
//
// Exit codes for -verify: 0 all segments pass, 1 a divergence was detected,
// 3 infrastructure failure (missing chunks, protocol errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"parallaft/internal/checkd"
	"parallaft/internal/checkfarm"
	"parallaft/internal/packet"
	"parallaft/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paftcheckd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		verifyDir = fs.String("verify", "", "check every packet in this exported directory")
		listen    = fs.String("listen", "", "serve the checking service on this endpoint: a Unix socket path, or tcp:host:port")
		connect   = fs.String("connect", "", "with -verify: send the packets to a daemon at this endpoint (Unix socket path or tcp:host:port) instead of checking in-process")
		workers   = fs.Int("workers", 4, "concurrent replay workers")
		queue     = fs.Int("queue", 0, "intake queue depth (0 = 2x workers); a full queue blocks the producer")
		retries   = fs.Int("retries", 2, "retries for packets whose chunks have not arrived yet")
		quiet     = fs.Bool("quiet", false, "print only failing verdicts and the summary")
		metrics   = fs.String("metrics-addr", "", "with -listen: serve Prometheus text metrics on this TCP address at /metrics (e.g. 127.0.0.1:9141)")
		flightDir = fs.String("flight-dir", "", "with -listen: arm the flight recorder and dump it as JSONL into this directory on SIGQUIT")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *flightDir != "" && *listen == "" {
		fmt.Fprintln(stderr, "paftcheckd: -flight-dir requires -listen (the flight recorder is a daemon black box)")
		return 2
	}
	opts := checkd.Options{Workers: *workers, QueueDepth: *queue, Retries: *retries}

	switch {
	case *listen != "":
		return serve(*listen, *metrics, *flightDir, opts, stderr)
	case *verifyDir != "":
		return verify(*verifyDir, *connect, opts, *quiet, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "paftcheckd: one of -verify or -listen is required")
		fs.Usage()
		return 2
	}
}

// shutdownHook, when non-nil, triggers the same graceful drain as
// SIGINT/SIGTERM when closed. Tests use it to stop serve without
// signalling the whole process.
var shutdownHook chan struct{}

// listenHook, when non-nil, receives the bound listener address. Tests use
// it to learn the port a "tcp:host:0" spec resolved to.
var listenHook chan net.Addr

// flightHook, when non-nil, triggers a flight-recorder dump exactly like
// SIGQUIT. Tests use it instead of signalling the whole process.
var flightHook chan struct{}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// in-flight connections finish their verdict streams before exit. With
// metricsAddr set, a telemetry registry is shared by every connection's
// executor and served as Prometheus text on http://metricsAddr/metrics
// (the same snapshot the transport's 'M' frame returns). With flightDir
// set, the daemon keeps a flight recorder of recent frames and verify
// spans and dumps it there on SIGQUIT — without exiting, so a wedged
// fleet can be black-boxed in place.
// lockedWriter serializes Write calls: the flight-dump goroutine reports to
// stderr concurrently with the serve loop, which is fine on os.Stderr but a
// data race on the bytes.Buffer the tests pass in. fmt formats into one
// Write per call, so lines stay atomic.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func serve(sock, metricsAddr, flightDir string, opts checkd.Options, stderr io.Writer) int {
	stderr = &lockedWriter{w: stderr}
	// A stale Unix socket from a previous daemon would block the listen;
	// TCP endpoints have no such residue.
	if !checkfarm.IsTCP(sock) {
		if _, err := os.Stat(sock); err == nil {
			os.Remove(sock)
		}
	}
	ln, err := checkfarm.Listen(sock)
	if err != nil {
		fmt.Fprintln(stderr, "paftcheckd:", err)
		return 1
	}

	var msrv *http.Server
	if metricsAddr != "" {
		if opts.Metrics == nil {
			opts.Metrics = telemetry.NewRegistry()
		}
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "paftcheckd:", err)
			ln.Close()
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", opts.Metrics.Handler())
		msrv = &http.Server{Handler: mux}
		go msrv.Serve(mln)
		// The resolved address matters when the flag asked for port 0.
		fmt.Fprintf(stderr, "paftcheckd: metrics on http://%s/metrics\n", mln.Addr())
	}
	if flightDir != "" {
		if err := os.MkdirAll(flightDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "paftcheckd:", err)
			ln.Close()
			return 1
		}
		opts.Flight = telemetry.NewFlightRecorder(0)
		opts.Flight.SetDir(flightDir)
		opts.Flight.SetMetrics(opts.Metrics)
		dump := func() {
			opts.Flight.Note("sigquit", "operator-requested flight dump")
			path, err := opts.Flight.DumpToDir("checkd", "sigquit", opts.Metrics)
			if err != nil {
				fmt.Fprintln(stderr, "paftcheckd: flight dump:", err)
				return
			}
			fmt.Fprintf(stderr, "paftcheckd: flight recorder dumped to %s\n", path)
		}
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		hook := flightHook // capture: tests reset the package var after serve returns
		go func() {
			for {
				select {
				case <-quitc:
				case <-hook:
				}
				dump()
			}
		}()
	}
	srv := checkd.NewServer(opts)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	// The resolved address matters for tcp:host:0 specs.
	fmt.Fprintf(stderr, "paftcheckd: listening on %s\n", ln.Addr())
	if listenHook != nil {
		listenHook <- ln.Addr()
	}

	drain := func(why string) int {
		fmt.Fprintf(stderr, "paftcheckd: %s, draining\n", why)
		srv.Shutdown()
		<-done
		if msrv != nil {
			msrv.Close()
		}
		if !checkfarm.IsTCP(sock) {
			os.Remove(sock)
		}
		return 0
	}
	select {
	case sig := <-sigc:
		return drain(sig.String())
	case <-shutdownHook:
		return drain("shutdown requested")
	case err := <-done:
		if msrv != nil {
			msrv.Close()
		}
		if err != nil {
			fmt.Fprintln(stderr, "paftcheckd:", err)
			return 1
		}
		return 0
	}
}

// verify checks one exported directory — either a single export (it holds
// pages.store) or a multi-program export (one subdirectory per program).
func verify(dir, connect string, opts checkd.Options, quiet bool, stdout, stderr io.Writer) int {
	dirs, err := exportDirs(dir)
	if err != nil {
		fmt.Fprintln(stderr, "paftcheckd:", err)
		return 3
	}

	worst := 0
	var pass, fail int
	for _, d := range dirs {
		store, pkts, err := packet.ReadDir(d)
		if err != nil {
			fmt.Fprintf(stderr, "paftcheckd: %s: %v\n", d, err)
			return 3
		}
		var verdicts []checkd.Verdict
		if connect != "" {
			conn, err := checkfarm.Dial(connect)
			if err != nil {
				fmt.Fprintln(stderr, "paftcheckd:", err)
				return 3
			}
			verdicts, err = checkd.CheckOver(conn, store, pkts)
			conn.Close()
			if err != nil {
				fmt.Fprintf(stderr, "paftcheckd: %s: %v\n", d, err)
				return 3
			}
		} else {
			verdicts, err = checkd.CheckAll(store, pkts, opts)
			if err != nil {
				fmt.Fprintf(stderr, "paftcheckd: %s: %v\n", d, err)
				return 3
			}
		}
		for _, v := range verdicts {
			switch {
			case v.Infra != "":
				fmt.Fprintf(stdout, "INFRA %v\n", v)
				if worst < 3 {
					worst = 3
				}
			case v.OK:
				pass++
				if !quiet {
					fmt.Fprintf(stdout, "ok    %v\n", v)
				}
			default:
				fail++
				fmt.Fprintf(stdout, "FAIL  %v\n", v)
				if worst < 1 {
					worst = 1
				}
			}
		}
	}
	fmt.Fprintf(stdout, "paftcheckd: %d segment(s) passed, %d diverged\n", pass, fail)
	return worst
}

// exportDirs resolves a -verify argument to concrete export directories.
func exportDirs(dir string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(dir, packet.StoreName)); err == nil {
		return []string{dir}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, packet.StoreName)); err == nil {
			dirs = append(dirs, sub)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s: no %s found (not an export directory?)", dir, packet.StoreName)
	}
	sort.Strings(dirs)
	return dirs, nil
}
