package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"parallaft/internal/checkd"
	"parallaft/internal/packet"
)

// lockedBuffer lets the test read serve's stderr while serve is still
// writing to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsEndpoint is the observability acceptance test: a daemon
// started with -metrics-addr serves Prometheus text over HTTP, and after a
// full verify session the queue-depth, worker-utilization and
// verdict-latency series are present with the daemon drained back to idle.
func TestMetricsEndpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pkts")
	exportRun(t, dir)

	sock := filepath.Join(t.TempDir(), "checkd.sock")
	var stderr lockedBuffer
	prev := shutdownHook
	shutdownHook = make(chan struct{})
	defer func() { shutdownHook = prev }()

	served := make(chan int, 1)
	go func() {
		served <- run([]string{"-listen", sock, "-metrics-addr", "127.0.0.1:0", "-workers", "2"}, io.Discard, &stderr)
	}()

	// The daemon prints the resolved metrics address once both listeners
	// are up.
	addrRe := regexp.MustCompile(`metrics on http://([^/\s]+)/metrics`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(stderr.String()); m != nil &&
			strings.Contains(stderr.String(), "listening on") {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never announced its metrics address; stderr:\n%s", stderr.String())
	}

	// Drive a real session so the executor metrics move.
	store, pkts, err := packet.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := checkd.CheckOver(conn, store, pkts)
	conn.Close()
	if err != nil {
		t.Fatalf("CheckOver: %v", err)
	}
	if len(verdicts) != len(pkts) {
		t.Fatalf("verdicts = %d, packets = %d", len(verdicts), len(pkts))
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want Prometheus text", ct)
	}
	text := string(body)

	for _, want := range []string{
		"# HELP paft_checkd_queue_depth",
		"# TYPE paft_checkd_queue_depth gauge",
		"# TYPE paft_checkd_busy_workers gauge",
		"# TYPE paft_checkd_verdict_latency_seconds histogram",
		"paft_checkd_verdict_latency_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	// The session is over: queue and busy workers are back to zero, and
	// every packet's latency was observed.
	for _, wantLine := range []string{
		"paft_checkd_queue_depth 0",
		"paft_checkd_busy_workers 0",
		fmt.Sprintf("paft_checkd_verdicts_ok_total %d", len(pkts)),
		fmt.Sprintf("paft_checkd_verdict_latency_seconds_count %d", len(pkts)),
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("/metrics missing line %q\n%s", wantLine, text)
		}
	}

	// The 'M' transport frame returns the same registry.
	mconn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	mtext, err := checkd.FetchMetrics(mconn)
	mconn.Close()
	if err != nil {
		t.Fatalf("FetchMetrics: %v", err)
	}
	if !strings.Contains(string(mtext), "paft_checkd_queue_depth") {
		t.Errorf("'M' frame reply missing queue-depth metric:\n%s", mtext)
	}

	close(shutdownHook)
	if code := <-served; code != 0 {
		t.Fatalf("serve exited %d; stderr:\n%s", code, stderr.String())
	}
}
