// Command paftasm assembles and disassembles guest programs, and can run
// them untraced on the simulated machine for quick iteration.
//
// Usage:
//
//	paftasm prog.pasm                  # assemble + validate, print stats
//	paftasm -d prog.pasm               # disassemble back to text
//	paftasm -run prog.pasm             # assemble and run on a big core
//	paftasm -d -workload 429.mcf       # disassemble a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"

	"parallaft/internal/asm"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
	"parallaft/internal/workload"
)

func main() {
	var (
		disasm = flag.Bool("d", false, "disassemble the program")
		run    = flag.Bool("run", false, "run the program untraced on a big core")
		wlName = flag.String("workload", "", "use a built-in workload instead of a file")
	)
	flag.Parse()

	prog, err := load(*wlName, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "paftasm:", err)
		os.Exit(2)
	}

	switch {
	case *disasm:
		fmt.Print(prog.Disassemble())
	case *run:
		m := machine.New(machine.AppleM2Like())
		k := oskernel.NewKernel(m.PageSize, 1)
		for name, data := range workload.Files() {
			k.AddFile(name, data)
		}
		l := oskernel.NewLoader(k, m.PageSize, 1)
		e := sim.New(m, k, l)
		e.MaxInstr = 4_000_000_000
		res, err := e.RunBaseline(prog, m.BigCores()[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "paftasm:", err)
			os.Exit(1)
		}
		os.Stdout.Write(res.Stdout)
		fmt.Printf("[exit %d; %d instructions, %d branches, %.3f ms simulated]\n",
			res.ExitCode, res.Instrs, res.Branches, res.WallNs/1e6)
	default:
		fmt.Printf("%s: %d instructions, %d data bytes, %d BSS bytes, entry %d — OK\n",
			prog.Name, len(prog.Code), len(prog.Data), prog.BSS, prog.Entry)
	}
}

func load(wlName string, args []string) (*asm.Program, error) {
	if wlName != "" {
		w := workload.Get(wlName)
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q", wlName)
		}
		return w.Gen(1.0)[0], nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one assembly file (or -workload)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return asm.Assemble(args[0], string(src))
}
