// Command paftbench regenerates the paper's tables and figures on the
// simulated platforms. Each experiment prints the same rows/series the
// paper reports, with the paper's own numbers quoted for comparison.
//
// Usage:
//
//	paftbench -experiment fig5            # figures: fig5 fig6 fig7 fig8 fig9a fig9b fig9c fig10
//	paftbench -experiment fig9            # alias: all three fig9 panels at once
//	paftbench -experiment table1          # tables: table1 table2
//	paftbench -experiment stress          # §5.7 syscall/signal stress
//	paftbench -experiment intel           # §5.8 Intel platform
//	paftbench -experiment all             # everything
//	paftbench -workloads 429.mcf,470.lbm  # restrict the suite
//	paftbench -scale 0.25                 # shrink workloads for a quick pass
//	paftbench -parallel 8                 # campaign worker count (1 = serial)
//	paftbench -progress                   # progress/ETA lines on stderr
//
// Independent simulation runs (suite sessions, sweep points, injection
// trials) fan out over -parallel workers; results are collected in input
// order and every run derives its own seed from (seed, run identity), so
// the emitted tables are byte-identical for any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"parallaft/internal/stats"
	"parallaft/internal/telemetry"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: fig5 fig6 fig7 fig8 fig9 fig9a fig9b fig9c fig10 table1 table2 stress intel all")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: full suite)")
		scale      = flag.Float64("scale", 1.0, "workload length multiplier")
		seed       = flag.Int64("seed", 12345, "simulation seed")
		trials     = flag.Int("trials", 5, "fault-injection trials per segment (fig10)")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "campaign worker count (1 = serial; output is identical for any value)")
		progress   = flag.Bool("progress", false, "print progress/ETA lines to stderr")
	)
	flag.Parse()

	if err := validateParallel(*parallel); err != nil {
		fmt.Fprintln(os.Stderr, "paftbench:", err)
		os.Exit(1)
	}

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	runner := stats.NewRunner()
	runner.Scale = *scale
	runner.Seed = *seed
	runner.Parallel = *parallel
	// Campaign progress (and the -progress lines) are backed by the
	// paft_campaign_* telemetry gauges rather than a private counter.
	runner.Telemetry = telemetry.NewRegistry()
	if *progress {
		runner.Progress = os.Stderr
	}

	if err := run(runner, *experiment, names, *trials, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "paftbench:", err)
		os.Exit(1)
	}
}

// validateParallel rejects nonsensical worker counts up front. A zero or
// negative -parallel used to reach the campaign layer unchecked, where it
// was silently remapped to NumCPU — "-parallel -1" quietly saturating every
// core is the opposite of what the flag asked for. Like the
// unknown-experiment check, bad input is a clear error.
func validateParallel(n int) error {
	if n <= 0 {
		return fmt.Errorf("-parallel must be a positive worker count, got %d", n)
	}
	return nil
}

var knownExperiments = []string{
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig9a", "fig9b", "fig9c",
	"fig10", "table1", "table2", "stress", "intel", "all",
}

func run(runner *stats.Runner, experiment string, names []string, trials int, scale float64) error {
	known := false
	for _, e := range knownExperiments {
		if experiment == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (choose one of: %s)", experiment, strings.Join(knownExperiments, " "))
	}

	needsSuite := map[string]bool{
		"fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"table1": true, "all": true,
	}

	var suite *stats.SuiteResult
	if needsSuite[experiment] {
		var err error
		suite, err = runner.RunSuite(names, true)
		if err != nil {
			return err
		}
	}

	show := func(e string) bool { return experiment == e || experiment == "all" }

	if show("table1") {
		fmt.Println(suite.FormatTable1())
	}
	if show("fig5") {
		fmt.Println(suite.FormatFig5())
	}
	if show("fig6") {
		fmt.Println(suite.FormatFig6())
	}
	if show("fig7") {
		fmt.Println(suite.FormatFig7())
	}
	if show("fig8") {
		fmt.Println(suite.FormatFig8())
	}

	if show("fig9a") || show("fig9b") || show("fig9c") || experiment == "fig9" {
		var benches []string
		if names != nil {
			benches = names
		}
		points, err := runner.RunFig9(benches, nil)
		if err != nil {
			return err
		}
		fmt.Println(stats.FormatFig9(points))
	}

	if show("fig10") {
		// Injection campaigns rerun the whole program once per trial, so
		// they use shortened workloads (the paper itself reruns only the
		// injured segment, which the simulator cannot share).
		rows, err := runner.RunFig10(names, trials, scale*0.3)
		if err != nil {
			return err
		}
		fmt.Println(stats.FormatFig10(rows))
	}

	if show("table2") {
		res, err := runner.RunTable2()
		if err != nil {
			return err
		}
		fmt.Println(stats.FormatTable2(res))
	}

	if show("stress") {
		rows, err := runner.RunStress()
		if err != nil {
			return err
		}
		fmt.Println(stats.FormatStress(rows))
	}

	if show("intel") {
		intel := stats.NewIntelRunner()
		intel.Scale = runner.Scale
		intel.Seed = runner.Seed
		intel.Parallel = runner.Parallel
		intel.Progress = runner.Progress
		intel.Telemetry = runner.Telemetry
		sr, err := intel.RunSuite(names, true)
		if err != nil {
			return err
		}
		fmt.Println(sr.FormatIntel())
	}

	return nil
}
