// Command paftbench regenerates the paper's tables and figures on the
// simulated platforms. Each experiment prints the same rows/series the
// paper reports, with the paper's own numbers quoted for comparison.
//
// Usage:
//
//	paftbench -experiment fig5            # figures: fig5 fig6 fig7 fig8 fig9a fig9b fig9c fig10
//	paftbench -experiment fig9            # alias: all three fig9 panels at once
//	paftbench -experiment table1          # tables: table1 table2
//	paftbench -experiment nmr             # main+3 NMR voting-outcome table
//	paftbench -experiment stress          # §5.7 syscall/signal stress
//	paftbench -experiment farm            # distributed check-farm soak (kill + join mid-campaign)
//	paftbench -experiment ledger          # reconciled overhead-attribution breakdown
//	paftbench -checkers 3 -experiment fig7  # energy cost of N-way replication
//	paftbench -experiment intel           # §5.8 Intel platform
//	paftbench -experiment all             # everything
//	paftbench -workloads 429.mcf,470.lbm  # restrict the suite
//	paftbench -scale 0.25                 # shrink workloads for a quick pass
//	paftbench -parallel 8                 # campaign worker count (1 = serial)
//	paftbench -progress                   # progress/ETA lines on stderr
//
// Independent simulation runs (suite sessions, sweep points, injection
// trials) fan out over -parallel workers; results are collected in input
// order and every run derives its own seed from (seed, run identity), so
// the emitted tables are byte-identical for any -parallel value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"parallaft/internal/core"
	"parallaft/internal/stats"
	"parallaft/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses argv against a fresh FlagSet,
// executes, and returns the process exit code (2 = usage error, 1 = run
// failure), matching the parallaft binary's convention.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paftbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "which experiment to run: fig5 fig6 fig7 fig8 fig9 fig9a fig9b fig9c fig10 table1 table2 nmr stress farm ledger intel all")
		workloads  = fs.String("workloads", "", "comma-separated workload subset (default: full suite)")
		scale      = fs.Float64("scale", 1.0, "workload length multiplier")
		seed       = fs.Int64("seed", 12345, "simulation seed")
		trials     = fs.Int("trials", 5, "fault-injection trials per segment (fig10)")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "campaign worker count (1 = serial; output is identical for any value)")
		progress   = fs.Bool("progress", false, "print progress/ETA lines to stderr")
		checkers   = fs.Int("checkers", 1, "checker replicas per segment for Parallaft sessions (N > 1 = NMR majority voting)")
		diversity  = fs.String("diversity", "", "comma-separated per-replica substrate presets: none skid2x skid4x quantum bigcore coldcache")
		spansFile  = fs.String("spans", "", "write one JSONL segment-lifecycle span per retired segment, across every session of the experiment, to this file")
		flightDir  = fs.String("flight-dir", "", "directory for flight-recorder dumps (written when a campaign worker panics)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if err := validateParallel(*parallel); err != nil {
		fmt.Fprintln(stderr, "paftbench:", err)
		return 2
	}
	if err := validateCheckers(*checkers); err != nil {
		fmt.Fprintln(stderr, "paftbench:", err)
		return 2
	}
	presets := splitPresets(*diversity)
	if err := core.ValidateDiversity(presets); err != nil {
		fmt.Fprintln(stderr, "paftbench:", err)
		return 2
	}

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	runner := stats.NewRunner()
	runner.Scale = *scale
	runner.Seed = *seed
	runner.Parallel = *parallel
	// Campaign progress (and the -progress lines) are backed by the
	// paft_campaign_* telemetry gauges rather than a private counter.
	runner.Telemetry = telemetry.NewRegistry()
	if *progress {
		runner.Progress = stderr
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "paftbench:", err)
			return 1
		}
		runner.Flight = telemetry.NewFlightRecorder(0)
		runner.Flight.SetDir(*flightDir)
		runner.Flight.SetMetrics(runner.Telemetry)
	}
	var spans *telemetry.SpanRecorder
	if *spansFile != "" {
		spans = telemetry.NewSpanRecorder(0)
	}
	if *checkers > 1 || len(presets) > 0 || spans != nil {
		n, d := *checkers, presets
		nmr := *checkers > 1 || len(presets) > 0
		runner.ConfigTweak = func(c *core.Config) {
			c.Spans = spans
			// RAFT sessions compare at syscalls only, so they cannot vote:
			// the NMR knobs apply to state-comparing (Parallaft) configs.
			if nmr && c.CompareStates {
				c.Checkers = n
				c.Diversity = d
			}
		}
	}

	if err := runExperiments(runner, *experiment, names, *trials, *scale, stdout); err != nil {
		fmt.Fprintln(stderr, "paftbench:", err)
		return 1
	}
	if spans != nil {
		f, err := os.Create(*spansFile)
		if err != nil {
			fmt.Fprintln(stderr, "paftbench:", err)
			return 1
		}
		defer f.Close()
		if err := spans.WriteJSONL(f); err != nil {
			fmt.Fprintln(stderr, "paftbench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "spans: %d segment spans written to %s\n", spans.Len(), *spansFile)
	}
	return 0
}

// validateParallel rejects nonsensical worker counts up front. A zero or
// negative -parallel used to reach the campaign layer unchecked, where it
// was silently remapped to NumCPU — "-parallel -1" quietly saturating every
// core is the opposite of what the flag asked for. Like the
// unknown-experiment check, bad input is a clear error.
func validateParallel(n int) error {
	if n <= 0 {
		return fmt.Errorf("-parallel must be a positive worker count, got %d", n)
	}
	return nil
}

// validateCheckers rejects nonsensical replica counts the same way: zero or
// negative replicas cannot vote.
func validateCheckers(n int) error {
	if n < 1 {
		return fmt.Errorf("-checkers must be a positive replica count, got %d", n)
	}
	return nil
}

// splitPresets turns the -diversity flag value into a preset list ("" =
// none).
func splitPresets(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

var knownExperiments = []string{
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig9a", "fig9b", "fig9c",
	"fig10", "table1", "table2", "nmr", "stress", "farm", "ledger", "intel", "all",
}

func runExperiments(runner *stats.Runner, experiment string, names []string, trials int, scale float64, stdout io.Writer) error {
	known := false
	for _, e := range knownExperiments {
		if experiment == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (choose one of: %s)", experiment, strings.Join(knownExperiments, " "))
	}

	needsSuite := map[string]bool{
		"fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"table1": true, "all": true,
	}

	var suite *stats.SuiteResult
	if needsSuite[experiment] {
		var err error
		suite, err = runner.RunSuite(names, true)
		if err != nil {
			return err
		}
	}

	show := func(e string) bool { return experiment == e || experiment == "all" }

	if show("table1") {
		fmt.Fprintln(stdout, suite.FormatTable1())
	}
	if show("fig5") {
		fmt.Fprintln(stdout, suite.FormatFig5())
	}
	if show("fig6") {
		fmt.Fprintln(stdout, suite.FormatFig6())
	}
	if show("fig7") {
		fmt.Fprintln(stdout, suite.FormatFig7())
	}
	if show("fig8") {
		fmt.Fprintln(stdout, suite.FormatFig8())
	}

	if show("fig9a") || show("fig9b") || show("fig9c") || experiment == "fig9" {
		var benches []string
		if names != nil {
			benches = names
		}
		points, err := runner.RunFig9(benches, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatFig9(points))
	}

	if show("fig10") {
		// Injection campaigns rerun the whole program once per trial, so
		// they use shortened workloads (the paper itself reruns only the
		// injured segment, which the simulator cannot share).
		rows, err := runner.RunFig10(names, trials, scale*0.3)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatFig10(rows))
	}

	if show("table2") {
		res, err := runner.RunTable2()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatTable2(res))
	}

	if show("nmr") {
		// The Table-2 extension for NMR mode: always at three replicas
		// (RunNMR pins Checkers=3 itself), regardless of -checkers.
		rows, err := runner.RunNMR()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatNMR(rows))
	}

	if show("stress") {
		rows, err := runner.RunStress()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatStress(rows))
	}

	if show("farm") {
		res, err := runner.RunFarm()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatFarm(res))
	}

	if show("ledger") {
		rows, err := runner.RunLedger(names)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, stats.FormatLedger(rows))
	}

	if show("intel") {
		intel := stats.NewIntelRunner()
		intel.Scale = runner.Scale
		intel.Seed = runner.Seed
		intel.Parallel = runner.Parallel
		intel.Progress = runner.Progress
		intel.Telemetry = runner.Telemetry
		sr, err := intel.RunSuite(names, true)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, sr.FormatIntel())
	}

	return nil
}
