package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUsageErrorsExitTwo pins the CLI exit-code convention shared with the
// parallaft binary: bad flags are usage errors (exit 2), not run failures.
func TestUsageErrorsExitTwo(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-parallel", "0"}, "-parallel must be a positive worker count"},
		{[]string{"-checkers", "-1"}, "-checkers must be a positive replica count"},
		{[]string{"-diversity", "warp-core"}, "unknown diversity preset"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit code %d, want 2 (stderr %q)", tc.args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr = %q, want it to mention %q", tc.args, stderr.String(), tc.want)
		}
	}
}

// TestUnknownExperimentFails: a bad -experiment value is caught before any
// simulation starts and exits 1 with the list of known names.
func TestUnknownExperimentFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-experiment", "fig99"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestSpansAcrossSuite runs the smallest real experiment with -spans and
// checks the JSONL output aggregates segment-lifecycle spans from every
// session of the campaign.
func TestSpansAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (scaled-down) suite session")
	}
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-experiment", "fig5", "-workloads", "403.gcc",
		"-scale", "0.1", "-parallel", "2", "-spans", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig. 5") && !strings.Contains(stdout.String(), "fig5") &&
		stdout.Len() == 0 {
		t.Errorf("experiment wrote nothing to stdout")
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("spans file: %v", err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var span struct {
			Segment int     `json:"segment"`
			Outcome string  `json:"outcome"`
			EndNs   float64 `json:"end_ns"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("line %d is not a span: %v\n%s", n+1, err, sc.Text())
		}
		if span.Outcome == "" {
			t.Fatalf("line %d has no outcome: %s", n+1, sc.Text())
		}
		n++
	}
	if n == 0 {
		t.Fatal("no spans written")
	}
	if !strings.Contains(stderr.String(), "segment spans written") {
		t.Errorf("stderr missing the spans summary: %q", stderr.String())
	}
}
