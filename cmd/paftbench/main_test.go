package main

import (
	"testing"

	"parallaft/internal/core"
)

func TestValidateParallel(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := validateParallel(n); err != nil {
			t.Errorf("validateParallel(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := validateParallel(n); err == nil {
			t.Errorf("validateParallel(%d) = nil, want error", n)
		}
	}
}

func TestValidateCheckers(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		if err := validateCheckers(n); err != nil {
			t.Errorf("validateCheckers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1} {
		if err := validateCheckers(n); err == nil {
			t.Errorf("validateCheckers(%d) = nil, want error", n)
		}
	}
}

// TestDiversityFlagParsing pins the -diversity flag's split+validate path:
// known preset lists pass, unknown names are rejected with a clear error.
func TestDiversityFlagParsing(t *testing.T) {
	for _, s := range []string{"", "none", "none,skid4x,bigcore", "quantum,coldcache"} {
		if err := core.ValidateDiversity(splitPresets(s)); err != nil {
			t.Errorf("ValidateDiversity(%q) = %v, want nil", s, err)
		}
	}
	if err := core.ValidateDiversity(splitPresets("none,warp-core")); err == nil {
		t.Error("ValidateDiversity accepted an unknown preset")
	}
}
