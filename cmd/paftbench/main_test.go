package main

import "testing"

func TestValidateParallel(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := validateParallel(n); err != nil {
			t.Errorf("validateParallel(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := validateParallel(n); err == nil {
			t.Errorf("validateParallel(%d) = nil, want error", n)
		}
	}
}
