// Command paftcc compiles paftlang programs to the guest ISA and
// optionally runs them — unprotected, under Parallaft, or under the RAFT
// baseline.
//
// Usage:
//
//	paftcc prog.pl                  # compile + validate
//	paftcc -S prog.pl               # emit guest assembly
//	paftcc -run prog.pl             # compile and run unprotected
//	paftcc -run -mode parallaft prog.pl
package main

import (
	"flag"
	"fmt"
	"os"

	"parallaft/internal/core"
	"parallaft/internal/lang"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

func main() {
	var (
		emitAsm = flag.Bool("S", false, "emit guest assembly instead of running")
		runProg = flag.Bool("run", false, "run the compiled program")
		mode    = flag.String("mode", "baseline", "execution mode with -run: baseline, parallaft, raft")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "paftcc: expected exactly one source file")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "paftcc:", err)
		os.Exit(2)
	}
	prog, err := lang.Compile(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *emitAsm:
		fmt.Print(prog.Disassemble())
	case *runProg:
		m := machine.New(machine.AppleM2Like())
		k := oskernel.NewKernel(m.PageSize, *seed)
		l := oskernel.NewLoader(k, m.PageSize, *seed)
		e := sim.New(m, k, l)
		e.MaxInstr = 4_000_000_000
		switch *mode {
		case "baseline":
			res, err := e.RunBaseline(prog, m.BigCores()[0])
			if err != nil {
				fmt.Fprintln(os.Stderr, "paftcc:", err)
				os.Exit(1)
			}
			os.Stdout.Write(res.Stdout)
			fmt.Printf("[exit %d; %.3f ms simulated]\n", res.ExitCode, res.WallNs/1e6)
		case "parallaft", "raft":
			cfg := core.DefaultConfig()
			if *mode == "raft" {
				cfg = core.RAFTConfig()
			}
			rt := core.NewRuntime(e, cfg)
			st, err := rt.Run(prog)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paftcc:", err)
				os.Exit(1)
			}
			os.Stdout.Write(st.Stdout)
			fmt.Printf("[exit %d; %d segments; detected=%v]\n", st.ExitCode, st.Slices, st.Detected)
		default:
			fmt.Fprintf(os.Stderr, "paftcc: unknown mode %q\n", *mode)
			os.Exit(2)
		}
	default:
		fmt.Printf("%s: %d instructions, %d data bytes — OK\n",
			prog.Name, len(prog.Code), len(prog.Data))
	}
}
