package parallaft

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs the corresponding experiment at reduced scale on a representative
// workload subset and reports the headline quantities as custom metrics;
// cmd/paftbench regenerates the full-scale tables.

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/inject"
	"parallaft/internal/lang"
	"parallaft/internal/machine"
	"parallaft/internal/mem"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
	"parallaft/internal/stats"
	"parallaft/internal/workload"
)

// benchSubset covers the axes the paper's effects ride on: compute-bound
// (namd), memory-bound chase (mcf), write-heavy streaming (lbm), short
// multi-input (gcc), and moderate (sjeng).
var benchSubset = []string{"444.namd", "429.mcf", "470.lbm", "403.gcc", "458.sjeng"}

func benchRunner(b *testing.B) *stats.Runner {
	b.Helper()
	r := stats.NewRunner()
	r.Scale = 0.25
	return r
}

func runSuite(b *testing.B, withRAFT bool) *stats.SuiteResult {
	b.Helper()
	sr, err := benchRunner(b).RunSuite(benchSubset, withRAFT)
	if err != nil {
		b.Fatal(err)
	}
	return sr
}

func geomeanPerf(sr *stats.SuiteResult, mode stats.Mode) float64 {
	var xs []float64
	for _, c := range sr.Comparisons {
		xs = append(xs, c.PerfOverhead(mode))
	}
	return stats.GeomeanOverhead(xs)
}

func geomeanEnergy(sr *stats.SuiteResult, mode stats.Mode) float64 {
	var xs []float64
	for _, c := range sr.Comparisons {
		xs = append(xs, c.EnergyOverhead(mode))
	}
	return stats.GeomeanOverhead(xs)
}

// BenchmarkCampaignScaling measures the parallel campaign engine on a
// multi-workload suite: the old serial path against a fan-out over all
// cores. The tables produced are byte-identical either way (ordered
// collection + per-run seed derivation); on a >=4-core machine the
// parallel run finishes the campaign >1.5x faster in wall-clock terms,
// while on a single-core machine the two converge.
func BenchmarkCampaignScaling(b *testing.B) {
	cases := []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{"parallel", 0}, // one worker per CPU
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			r := benchRunner(b)
			r.Parallel = bc.parallel
			for i := 0; i < b.N; i++ {
				if _, err := r.RunSuite(benchSubset, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Rows regenerates the runtime-based rows of table 1:
// performance, energy and memory overhead geomeans for Parallaft and RAFT.
func BenchmarkTable1Rows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runSuite(b, true)
		b.ReportMetric(geomeanPerf(sr, stats.ModeParallaft), "parallaft-perf-%")
		b.ReportMetric(geomeanPerf(sr, stats.ModeRAFT), "raft-perf-%")
		b.ReportMetric(geomeanEnergy(sr, stats.ModeParallaft), "parallaft-energy-%")
		b.ReportMetric(geomeanEnergy(sr, stats.ModeRAFT), "raft-energy-%")
	}
}

// BenchmarkFig5PerfOverhead regenerates figure 5 (performance overhead of
// Parallaft vs RAFT; paper geomeans 15.9% vs 16.2%).
func BenchmarkFig5PerfOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runSuite(b, true)
		b.ReportMetric(geomeanPerf(sr, stats.ModeParallaft), "parallaft-%")
		b.ReportMetric(geomeanPerf(sr, stats.ModeRAFT), "raft-%")
	}
}

// BenchmarkFig6Breakdown regenerates figure 6 (Parallaft overhead split
// into fork+COW, contention, last-checker sync, runtime work) for the
// memory-bound chase workload, where the components are all visible.
func BenchmarkFig6Breakdown(b *testing.B) {
	r := benchRunner(b)
	w := workload.Get("429.mcf")
	for i := 0; i < b.N; i++ {
		c, err := r.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		fork, cont, sync, rt := c.Breakdown()
		b.ReportMetric(fork, "fork+COW-%")
		b.ReportMetric(cont, "contention-%")
		b.ReportMetric(sync, "last-sync-%")
		b.ReportMetric(rt, "runtime-%")
	}
}

// BenchmarkFig7Energy regenerates figure 7 (energy overhead; paper geomeans
// 44.3% vs 87.8%, with lbm the one case where Parallaft exceeds RAFT).
func BenchmarkFig7Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runSuite(b, true)
		b.ReportMetric(geomeanEnergy(sr, stats.ModeParallaft), "parallaft-%")
		b.ReportMetric(geomeanEnergy(sr, stats.ModeRAFT), "raft-%")
	}
}

// BenchmarkFig8Memory regenerates figure 8 (normalized memory usage; paper
// geomeans 1.033x vs 1.020x).
func BenchmarkFig8Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runSuite(b, true)
		var par, raft []float64
		for _, c := range sr.Comparisons {
			par = append(par, c.MemoryNormalized(stats.ModeParallaft))
			raft = append(raft, c.MemoryNormalized(stats.ModeRAFT))
		}
		b.ReportMetric(stats.Geomean(par), "parallaft-x")
		b.ReportMetric(stats.Geomean(raft), "raft-x")
	}
}

// BenchmarkFig9Sweep regenerates figure 9 (slicing-period sensitivity) on
// gcc/mcf/sjeng analogues and reports each benchmark's sweet spot.
func BenchmarkFig9Sweep(b *testing.B) {
	r := benchRunner(b)
	periods := []float64{400_000, 2_000_000, 8_000_000}
	for i := 0; i < b.N; i++ {
		points, err := r.RunFig9(stats.Fig9Benchmarks, periods)
		if err != nil {
			b.Fatal(err)
		}
		best := map[string]stats.SweepPoint{}
		for _, p := range points {
			if cur, ok := best[p.Benchmark]; !ok || p.Combined < cur.Combined {
				best[p.Benchmark] = p
			}
		}
		for name, p := range best {
			b.ReportMetric(p.PeriodCycles/1e6, "sweet-"+name+"-Mcycles")
		}
	}
}

// BenchmarkFig10FaultInjection regenerates figure 10 (fault-injection
// outcome distribution; paper: 43.3% benign, everything else detected).
func BenchmarkFig10FaultInjection(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.RunFig10([]string{"456.hmmer", "444.namd"}, 2, 0.15)
		if err != nil {
			b.Fatal(err)
		}
		var landed, benign, detected int
		for _, row := range rows {
			if !row.Report.DetectionComplete() {
				b.Fatal("a non-benign fault escaped detection")
			}
			for o, n := range row.Report.Counts {
				switch inject.Outcome(o) {
				case inject.OutcomeBenign:
					benign += n
					landed += n
				case inject.OutcomeDetected, inject.OutcomeException, inject.OutcomeTimeout:
					detected += n
					landed += n
				}
			}
		}
		if landed > 0 {
			b.ReportMetric(float64(benign)/float64(landed)*100, "benign-%")
			b.ReportMetric(float64(detected)/float64(landed)*100, "detected-%")
		}
	}
}

// BenchmarkTable2Guarantees regenerates table 2: Parallaft detects the
// silent post-syscall error; RAFT misses it.
func BenchmarkTable2Guarantees(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if !res.ParallaftDetectsSilent || res.RAFTDetectsSilent {
			b.Fatal("table-2 guarantee violated")
		}
		b.ReportMetric(boolMetric(res.ParallaftDetectsSilent), "parallaft-detects")
		b.ReportMetric(boolMetric(res.RAFTDetectsSilent), "raft-detects")
	}
}

// BenchmarkStressSyscalls regenerates the §5.7 stress slowdowns (paper:
// getpid 124.5x, 1 MiB /dev/zero reads 18.5x, SIGUSR1 39.8x).
func BenchmarkStressSyscalls(b *testing.B) {
	r := benchRunner(b)
	r.Scale = 0.5
	for i := 0; i < b.N; i++ {
		rows, err := r.RunStress()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.ParallaftX, row.Name+"-x")
		}
	}
}

// BenchmarkIntelPlatform regenerates §5.8: the Intel-like platform with
// 4 KiB pages, instruction slicing and a shared voltage domain (paper:
// Parallaft 26.2%/46.7%, RAFT 12.9%/50.2%).
func BenchmarkIntelPlatform(b *testing.B) {
	r := stats.NewIntelRunner()
	r.Scale = 0.25
	for i := 0; i < b.N; i++ {
		sr, err := r.RunSuite(benchSubset, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geomeanPerf(sr, stats.ModeParallaft), "parallaft-perf-%")
		b.ReportMetric(geomeanPerf(sr, stats.ModeRAFT), "raft-perf-%")
		b.ReportMetric(geomeanEnergy(sr, stats.ModeParallaft), "parallaft-energy-%")
		b.ReportMetric(geomeanEnergy(sr, stats.ModeRAFT), "raft-energy-%")
	}
}

// --- ablations ------------------------------------------------------------

// BenchmarkAblationFullCompare disables dirty-page tracking and hashes
// every mapped page at every boundary — the cost §4.4's design avoids. The
// victim has a large read-mostly table and a small write buffer, the shape
// where dirty tracking pays off (a workload that rewrites its whole
// footprint every segment would not benefit).
func BenchmarkAblationFullCompare(b *testing.B) {
	prog := lang.MustCompile("readmostly", `
		var table[262144];  // 2 MiB, written once
		var out[512];       // the per-segment dirty set
		var i = 0;
		while (i < 262144) { table[i] = i * 2654435761; i = i + 1; }
		var acc = 0;
		i = 0;
		while (i < 3000000) {
			acc = acc + table[(i * 40503) & 262143];
			out[i & 511] = acc;
			i = i + 1;
		}
		exit(acc & 255);
	`)
	run := func(full bool) *core.RunStats {
		e := newBenchEngine()
		cfg := core.DefaultConfig()
		cfg.CompareFullMemory = full
		rt := core.NewRuntime(e, cfg)
		st, err := rt.Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		if st.Detected != nil {
			b.Fatalf("false positive: %v", st.Detected)
		}
		return st
	}
	for i := 0; i < b.N; i++ {
		dirty := run(false)
		full := run(true)
		b.ReportMetric(float64(dirty.DirtyPagesHashed)/float64(dirty.Slices+1), "dirty-pages/boundary")
		b.ReportMetric(float64(full.DirtyPagesHashed)/float64(full.Slices+1), "full-pages/boundary")
		b.ReportMetric(float64(full.BytesHashed)/float64(dirty.BytesHashed+1), "hash-bytes-ratio")
	}
}

// BenchmarkCompareSegment measures the segment-end state-comparison hot
// path on a compare-heavy workload: an 8 MiB read-mostly table with a small
// per-segment write window, sliced short so boundaries (and therefore
// comparisons) are frequent. "dirty" uses the paper's dirty-page tracking;
// "fullmem" is the exhaustive ablation, where nearly every hashed page is
// COW-shared between the checker and the end checkpoint and a frame-aware
// comparison can skip host-side hashing entirely. The simulated outputs
// (DirtyPagesHashed, BytesHashed, wall times) are identical no matter how
// the host executes the comparison — see the golden tests.
func BenchmarkCompareSegment(b *testing.B) {
	prog := lang.MustCompile("comparevictim", `
		var table[1048576];  // 8 MiB, written once
		var out[512];        // the per-segment dirty set
		var i = 0;
		while (i < 1048576) { table[i] = i * 2654435761; i = i + 1; }
		var acc = 0;
		i = 0;
		while (i < 400000) {
			acc = acc + table[(i * 40503) & 1048575];
			out[i & 511] = acc;
			i = i + 1;
		}
		exit(acc & 255);
	`)
	cases := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"dirty", func(c *core.Config) {}},
		{"fullmem", func(c *core.Config) { c.CompareFullMemory = true }},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := newBenchEngine()
				cfg := core.DefaultConfig()
				cfg.SlicePeriodCycles = 100_000
				bc.tweak(&cfg)
				rt := core.NewRuntime(e, cfg)
				st, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if st.Detected != nil {
					b.Fatalf("false positive: %v", st.Detected)
				}
				b.ReportMetric(float64(st.DirtyPagesHashed)/float64(st.Slices+1), "pages/boundary")
			}
		})
	}
}

// BenchmarkInterpreterDispatch measures the raw interpreter hot loop — the
// predecoded dispatch path every simulated instruction takes — on a tight
// compute+memory kernel, without segmentation or comparison on top. The
// process is warmed once so predecode, timing tables and TLB/cache state are
// steady; the measured region is pure dispatch (expected 0 allocs/op, pinned
// by TestRunAllocFree).
func BenchmarkInterpreterDispatch(b *testing.B) {
	ab := asm.NewBuilder("dispatch")
	ab.MovI(1, 0) // always < x2: the loop never exits
	ab.MovI(2, 1)
	ab.MovI(3, 0) // accumulator
	ab.MovI(4, 0) // arena pointer
	ab.Label("loop")
	ab.AddI(3, 3, 7)
	ab.AndI(5, 3, 4095)
	ab.ShlI(5, 5, 3)
	ab.Add(5, 4, 5)
	ab.Ld(6, 5, 0)
	ab.Add(6, 6, 3)
	ab.St(5, 0, 6)
	ab.Blt(1, 2, "loop")
	prog := ab.MustBuild()

	m := machine.New(machine.AppleM2Like())
	as := mem.NewAddressSpace(m.PageSize)
	if err := as.Map(0, 4*m.PageSize, mem.ProtRW, "arena"); err != nil {
		b.Fatal(err)
	}
	p := proc.New(1, 1, "bench", prog.Code, as, 99)
	env := proc.ExecEnv{Machine: m, Core: m.BigCores()[0], Contention: 1, Fabric: 1}
	if s := p.Run(env, 50_000); s.Reason != proc.StopBudget {
		b.Fatalf("warm-up stop = %v", s)
	}

	const instrsPerOp = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Run(env, instrsPerOp); s.Reason != proc.StopBudget {
			b.Fatalf("stop = %v", s)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*instrsPerOp/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// newBenchEngine builds a fresh engine for direct runtime benches.
func newBenchEngine() *sim.Engine {
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 99)
	l := oskernel.NewLoader(k, m.PageSize, 99)
	e := sim.New(m, k, l)
	e.MaxInstr = 2_000_000_000
	return e
}

// BenchmarkAblationNoSkidBuffer arms the branch counter at the exact target
// instead of undershooting: counter skid then overruns the end point and
// segments must be flagged (§4.2.2, footnote 6 explains why the buffer
// exists). The metric is the overrun rate across segments.
func BenchmarkAblationNoSkidBuffer(b *testing.B) {
	w := workload.Get("458.sjeng")
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.ConfigTweak = func(c *core.Config) { c.SkidBuffer = 0 }
		res, err := r.RunWorkload(w, stats.ModeParallaft)
		if err != nil {
			b.Fatal(err)
		}
		overruns := 0.0
		if res.Detected != nil && res.Detected.Kind == core.ErrExecPointOverrun {
			overruns = 1
		}
		b.ReportMetric(overruns, "overrun-detected")
	}
}

// BenchmarkAblationMigrationPolicy compares oldest-checker migration (the
// paper's choice) with migrating the newest (footnote 11) and with no
// migration at all, on the memory-bound chase workload.
func BenchmarkAblationMigrationPolicy(b *testing.B) {
	w := workload.Get("429.mcf")
	policies := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"oldest", func(c *core.Config) {}},
		{"newest", func(c *core.Config) { c.MigrateNewest = true }},
		{"none", func(c *core.Config) { c.EnableMigration = false; c.MaxLiveSegments = 24 }},
	}
	for i := 0; i < b.N; i++ {
		for _, pol := range policies {
			r := benchRunner(b)
			r.ConfigTweak = pol.tweak
			c, err := r.Compare(w, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(c.PerfOverhead(stats.ModeParallaft), pol.name+"-perf-%")
			b.ReportMetric(c.EnergyOverhead(stats.ModeParallaft), pol.name+"-energy-%")
		}
	}
}

// BenchmarkAblationNoDVFS pins the little cores at maximum frequency,
// quantifying what the pacer saves (§4.5, footnote 10).
func BenchmarkAblationNoDVFS(b *testing.B) {
	w := workload.Get("458.sjeng")
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		paced, err := r.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		r2 := benchRunner(b)
		r2.ConfigTweak = func(c *core.Config) { c.EnableDVFS = false }
		pinned, err := r2.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(paced.EnergyOverhead(stats.ModeParallaft), "dvfs-energy-%")
		b.ReportMetric(pinned.EnergyOverhead(stats.ModeParallaft), "maxfreq-energy-%")
	}
}

// BenchmarkAblationContainment quantifies the syscall-synchronisation cost
// of containing errors inside the sphere of replication — the price §3.4
// cites for not guaranteeing containment. The gcc analogue's file IO makes
// the barriers visible.
func BenchmarkAblationContainment(b *testing.B) {
	w := workload.Get("403.gcc")
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		plain, err := r.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		r2 := benchRunner(b)
		r2.ConfigTweak = func(c *core.Config) { c.ContainSyscalls = true }
		contained, err := r2.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.PerfOverhead(stats.ModeParallaft), "uncontained-%")
		b.ReportMetric(contained.PerfOverhead(stats.ModeParallaft), "contained-%")
	}
}

// BenchmarkRecoveryOverhead measures what enabling rollback-based recovery
// costs on a clean run (it should be nearly free: arbitration only runs on
// detections).
func BenchmarkRecoveryOverhead(b *testing.B) {
	w := workload.Get("458.sjeng")
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		plain, err := r.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		r2 := benchRunner(b)
		r2.ConfigTweak = func(c *core.Config) { c.EnableRecovery = true }
		rec, err := r2.Compare(w, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.PerfOverhead(stats.ModeParallaft), "detect-only-%")
		b.ReportMetric(rec.PerfOverhead(stats.ModeParallaft), "with-recovery-%")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
