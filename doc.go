// Package parallaft is a reproduction, in pure Go, of "Parallaft:
// Runtime-Based CPU Fault Tolerance via Heterogeneous Parallelism"
// (Zhang, Ainsworth, Mukhanov, Jones — CGO 2025).
//
// The paper's runtime supervises real Linux binaries with ptrace on an
// Apple M2; this repository rebuilds the entire stack as a deterministic
// simulation (see DESIGN.md for the substitution table) and implements
// Parallaft — program slicing, copy-on-write checkpointing, execution-point
// record/replay via branch counters and breakpoints, syscall/signal/
// nondeterministic-instruction record and replay, dirty-page hash
// comparison, and checker scheduling with big-core migration and DVFS
// pacing — against that substrate, together with the RAFT baseline the
// paper compares against.
//
// Layout:
//
//	internal/isa       guest instruction set
//	internal/asm       assembler, program builder, disassembler
//	internal/hashx     xxHash64 (state comparison)
//	internal/mem       paged memory: COW, soft-dirty, map counts, ASLR
//	internal/cache     set-associative cache hierarchy model
//	internal/machine   heterogeneous cores, DVFS ladders, energy model
//	internal/proc      interpreter, PMU (branch counters, skid), breakpoints
//	internal/oskernel  simulated OS: syscall models, files, signals
//	internal/sim       co-simulation engine, contention, baseline runner
//	internal/core      Parallaft itself (and the RAFT configuration)
//	internal/inject    §5.6 fault-injection campaigns
//	internal/workload  synthetic SPEC CPU2006 analogues + stress tests
//	internal/stats     experiment harness: every table and figure
//	cmd/parallaft      run one program under protection
//	cmd/paftbench      regenerate the paper's tables and figures
//	cmd/paftasm        assemble / disassemble / run guest programs
//
// The benchmarks in bench_test.go regenerate each table and figure at
// reduced scale; cmd/paftbench runs them at full scale.
package parallaft
