package core

import (
	"strings"
	"testing"

	"parallaft/internal/proc"
)

func containConfig() Config {
	cfg := smallSliceConfig()
	cfg.ContainSyscalls = true
	return cfg
}

// TestContainmentCleanRun: with containment on, a clean program still
// produces identical output, just slower (the §3.4 synchronisation cost).
func TestContainmentCleanRun(t *testing.T) {
	prog := testProgram(40_000)
	be := newTestEngine(7)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(7)
	rt := NewRuntime(e, containConfig())
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive under containment: %v", stats.Detected)
	}
	if string(stats.Stdout) != string(base.Stdout) || stats.ExitCode != base.ExitCode {
		t.Error("containment changed program behaviour")
	}
	if stats.ContainBarriers == 0 {
		t.Error("no containment barriers were taken")
	}
	if stats.MainStallNs == 0 {
		t.Error("containment produced no synchronisation stalls — the cost §3.4 avoids")
	}
}

// TestContainmentBlocksErroneousEscape is the table-2 containment property:
// with the main corrupted before a write, the barrier's verification fires
// *before* the write executes, so the wrong bytes never leave the sphere of
// replication. Without containment the same fault escapes first.
func TestContainmentBlocksErroneousEscape(t *testing.T) {
	mkHook := func() func(*proc.Process, float64) {
		fired := false
		return func(m *proc.Process, _ float64) {
			if fired || m.Instrs < 100_000 {
				return
			}
			// corrupt the data that the final write will emit
			m.FlipRegisterBit(proc.GPRClass, 1, 0, 3)
			fired = true
		}
	}
	prog := testProgram(40_000)

	// Without containment: the fault is detected, but §3.4 allows the
	// syscall to escape first.
	cfg := smallSliceConfig()
	cfg.MainHook = mkHook()
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	uncontained, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if uncontained.Detected == nil {
		t.Fatal("fault undetected without containment")
	}

	// With containment: detection happens at the pre-write barrier, and
	// nothing corrupted is written.
	ccfg := containConfig()
	ccfg.MainHook = mkHook()
	e2 := newTestEngine(7)
	rt2 := NewRuntime(e2, ccfg)
	contained, err := rt2.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if contained.Detected == nil {
		t.Fatal("fault undetected under containment")
	}
	if strings.Contains(string(contained.Stdout), "hello") {
		t.Errorf("corrupted run still wrote %q under containment — the write should have been blocked",
			contained.Stdout)
	}
}

// TestContainmentCostsPerformance: the barrier serialises main and
// checkers, so wall time grows versus plain Parallaft — quantifying why
// the paper declines containment (§3.4).
func TestContainmentCostsPerformance(t *testing.T) {
	prog := testProgram(40_000)
	run := func(cfg Config) float64 {
		e := newTestEngine(7)
		rt := NewRuntime(e, cfg)
		st, err := rt.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st.Detected != nil {
			t.Fatalf("false positive: %v", st.Detected)
		}
		return st.AllWallNs
	}
	plain := run(smallSliceConfig())
	contained := run(containConfig())
	if contained <= plain {
		t.Errorf("containment was free (%.0f vs %.0f ns); it must cost synchronisation time",
			contained, plain)
	}
}
