package core

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/mem"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// loopProgram is a multi-segment compute+memory program used as the
// substrate for detection-scenario tests.
func loopProgram(iters int64) *asm.Program {
	b := asm.NewBuilder("victim")
	b.Space("buf", 32*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, iters)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 4095)
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 32760)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

// runWithHook runs the program under Parallaft with a checker hook.
func runWithHook(t *testing.T, cfg Config, prog *asm.Program, hook func(int, *proc.Process, float64)) *RunStats {
	t.Helper()
	cfg.CheckerHook = hook
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats
}

// onceInSegment builds a hook firing exactly once, in the given segment.
func onceInSegment(segment int, f func(*proc.Process)) func(int, *proc.Process, float64) {
	done := false
	return func(seg int, c *proc.Process, _ float64) {
		if done || seg != segment {
			return
		}
		f(c)
		done = true
	}
}

func smallSliceConfig() Config {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	return cfg
}

func TestDetectsRegisterCorruption(t *testing.T) {
	stats := runWithHook(t, smallSliceConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40) // checksum register
		}))
	if stats.Detected == nil {
		t.Fatal("register corruption undetected")
	}
	if stats.Detected.Segment != 1 {
		t.Errorf("detected at segment %d, want 1 (bounded latency)", stats.Detected.Segment)
	}
}

func TestDetectsMemoryCorruption(t *testing.T) {
	prog := loopProgram(120_000)
	bufAddr := prog.Symbols["buf"]
	stats := runWithHook(t, smallSliceConfig(), prog,
		onceInSegment(1, func(c *proc.Process) {
			v, _ := c.AS.LoadU64(bufAddr + 512)
			c.AS.StoreU64(bufAddr+512, v^4) //nolint:errcheck
		}))
	if stats.Detected == nil {
		t.Fatal("memory corruption undetected")
	}
	switch stats.Detected.Kind {
	case ErrMemMismatch, ErrRegMismatch:
		// The flipped word feeds the checksum register, so either the page
		// hash or the register compare may fire first — both are §4.4
		// detections.
	default:
		t.Errorf("unexpected detection kind %v", stats.Detected.Kind)
	}
}

func TestDetectsCheckerOnlyPageWriteBothTrackingModes(t *testing.T) {
	// A corrupted checker writes a page the main never touches: the dirty
	// set is the union of both sides (§4.4), so both tracking mechanisms
	// must catch it as a memory mismatch — the value never reaches any
	// register the program reads.
	build := func() *asm.Program {
		b := asm.NewBuilder("victim-wide")
		b.Space("buf", 64*1024)
		b.MovI(1, 0)
		b.MovI(2, 0)
		b.MovI(3, 120_000)
		b.Addr(4, "buf")
		b.Label("loop")
		b.AndI(5, 2, 2047) // touches only the first 16 KiB
		b.ShlI(5, 5, 3)
		b.Add(5, 4, 5)
		b.Ld(6, 5, 0)
		b.Add(6, 6, 2)
		b.St(5, 0, 6)
		b.Add(1, 1, 6)
		b.AddI(2, 2, 1)
		b.Blt(2, 3, "loop")
		b.MovI(0, int64(oskernel.SysExit))
		b.MovI(1, 0)
		b.Syscall()
		return b.MustBuild()
	}
	for _, tracking := range []DirtyTracking{TrackFrameDiff, TrackSoftDirty} {
		prog := build()
		cfg := smallSliceConfig()
		cfg.Tracking = tracking
		stats := runWithHook(t, cfg, prog,
			onceInSegment(1, func(c *proc.Process) {
				addr := prog.Symbols["buf"] + 48*1024 // far outside the loop's window
				c.AS.StoreU64(addr, 0xbad)            //nolint:errcheck
			}))
		if stats.Detected == nil {
			t.Errorf("tracking %v: checker-only page write undetected", tracking)
		} else if stats.Detected.Kind != ErrMemMismatch {
			t.Errorf("tracking %v: kind = %v, want memory mismatch", tracking, stats.Detected.Kind)
		}
	}
}

func TestDetectsControlFlowTimeout(t *testing.T) {
	// A victim with a short inner loop: corrupting the live inner counter
	// in the checker sends it into a near-infinite spin, so it either
	// never reaches the target PC (instruction-budget timeout, §4.2.2) or
	// blows past the target branch count (overrun).
	b := asm.NewBuilder("timeout-victim")
	b.Space("buf", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 8_000)
	b.Addr(4, "buf")
	b.Label("outer")
	b.MovI(7, 12)
	b.Label("inner")
	b.AddI(7, 7, -1)
	b.Bne(7, 0, "inner")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "outer")
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	stats := runWithHook(t, smallSliceConfig(), prog,
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[7] = 1 << 40 // spin in the inner loop ~forever
		}))
	if stats.Detected == nil {
		t.Fatal("checker livelock undetected")
	}
	if !stats.Detected.IsTimeout() && stats.Detected.Kind != ErrExecPointOverrun {
		t.Errorf("kind = %v, want timeout or overrun", stats.Detected.Kind)
	}
}

func TestRewoundCheckerStillDetected(t *testing.T) {
	// Rewinding the induction variable makes the checker redo work; the
	// divergence is caught one way or another (position overrun, timeout,
	// or a state mismatch at the boundary) — never silently tolerated.
	stats := runWithHook(t, smallSliceConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[2] = 0
		}))
	if stats.Detected == nil {
		t.Fatal("rewound checker undetected")
	}
}

func TestDetectsCheckerException(t *testing.T) {
	prog := loopProgram(120_000)
	stats := runWithHook(t, smallSliceConfig(), prog,
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[4] = 0xdead_0000 // wild base pointer -> SIGSEGV in checker
		}))
	if stats.Detected == nil {
		t.Fatal("checker exception undetected")
	}
	if !stats.Detected.IsException() {
		t.Errorf("kind = %v, want checker-exception", stats.Detected.Kind)
	}
	if stats.Detected.Sig != proc.SIGSEGV {
		t.Errorf("signal = %v, want SIGSEGV", stats.Detected.Sig)
	}
}

func TestDetectsSyscallDataMismatch(t *testing.T) {
	// Corrupt the bytes a write() will send: the checker's syscall input
	// differs from the record (§4.3.1).
	b := asm.NewBuilder("syscall-victim")
	b.Ascii("msg", "payload-payload-payload-")
	b.Space("buf", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 120_000)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "msg")
	b.MovI(3, 24)
	b.Syscall()
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	msg := prog.Symbols["msg"]
	fired := false
	stats := runWithHook(t, smallSliceConfig(), prog, func(seg int, c *proc.Process, _ float64) {
		if fired {
			return
		}
		v, _ := c.AS.LoadByte(msg)
		c.AS.StoreByte(msg, v^0xff) //nolint:errcheck
		fired = true
	})
	if stats.Detected == nil {
		t.Fatal("syscall data corruption undetected")
	}
	// Depending on where the boundary falls, the corruption is caught at a
	// segment-end page hash or at the write itself; both are valid.
	if stats.Detected.Kind != ErrSyscallMismatch && stats.Detected.Kind != ErrMemMismatch {
		t.Errorf("kind = %v", stats.Detected.Kind)
	}
}

func TestBenignFaultNotFlagged(t *testing.T) {
	// Flip a register the program never reads: dead state, must be benign
	// only if it is dead at comparison time too. x11 is never used by
	// loopProgram but registers are compared at segment end, so flipping
	// it MUST be detected. A truly benign flip is one that is overwritten
	// before the segment ends: flip x5 (rewritten at the top of every loop
	// iteration) well before the boundary.
	stats := runWithHook(t, smallSliceConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[5] ^= 1 << 60 // scratch: recomputed from x2 next iteration
		}))
	// x5 is recomputed from x2 at the top of every iteration; whether the
	// flip manifests depends on where it lands within the iteration. The
	// invariant: either it is detected, or the program completes with the
	// correct result (never an undetected wrong result).
	if stats.Detected != nil {
		t.Logf("flip manifested and was detected: %v", stats.Detected)
	} else if stats.KilledBy != proc.SigNone {
		t.Errorf("benign run killed by %v", stats.KilledBy)
	}
}

func TestDeadRegisterCorruptionIsCaughtAtSegmentEnd(t *testing.T) {
	// Even a register the program never uses is architectural state;
	// Parallaft's register comparison flags it (unlike RAFT).
	stats := runWithHook(t, smallSliceConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[11] ^= 1
		}))
	if stats.Detected == nil {
		t.Fatal("dead-register corruption undetected (register compare must be total)")
	}
	if stats.Detected.Kind != ErrRegMismatch {
		t.Errorf("kind = %v, want register mismatch", stats.Detected.Kind)
	}
}

func TestRAFTMissesPostSyscallCorruption(t *testing.T) {
	cfg := RAFTConfig()
	stats := runWithHook(t, cfg, loopProgram(120_000),
		onceInSegment(0, func(c *proc.Process) {
			c.Regs.X[11] ^= 1 // dead register, never reaches a syscall
		}))
	if stats.Detected != nil {
		t.Errorf("RAFT detected a syscall-invisible error: %v (its design cannot)", stats.Detected)
	}
}

func TestNoSkidBufferCausesOverrun(t *testing.T) {
	// The §4.2.2 ablation: arming the counter at the exact target lets
	// skid push the checker past the end point.
	cfg := smallSliceConfig()
	cfg.SkidBuffer = 0
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected == nil {
		t.Skip("skid happened to be zero on every overflow; nothing to assert")
	}
	if stats.Detected.Kind != ErrExecPointOverrun {
		t.Errorf("kind = %v, want exec-point overrun", stats.Detected.Kind)
	}
}

func TestMaxLiveSegmentsStallsMain(t *testing.T) {
	cfg := smallSliceConfig()
	cfg.MaxLiveSegments = 1
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(150_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if stats.MainStallNs <= 0 {
		t.Error("main never stalled despite MaxLiveSegments=1")
	}
}

func TestFullMemoryCompareAblation(t *testing.T) {
	cfg := smallSliceConfig()
	cfg.CompareFullMemory = true
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(80_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	// full comparison hashes far more pages than dirty tracking
	cfg2 := smallSliceConfig()
	e2 := newTestEngine(13)
	rt2 := NewRuntime(e2, cfg2)
	stats2, err := rt2.Run(loopProgram(80_000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyPagesHashed <= stats2.DirtyPagesHashed {
		t.Errorf("full compare hashed %d pages <= dirty tracking's %d",
			stats.DirtyPagesHashed, stats2.DirtyPagesHashed)
	}
}

func TestPostForkCorruptionCaughtThroughHashCache(t *testing.T) {
	// Full-memory comparison maximises reuse inside the comparison
	// subsystem: untouched pages are identity-skipped and re-compared
	// frames serve memoized hashes. A post-fork corruption of a page that
	// earlier comparisons already hashed must still be caught — the write
	// invalidates the frame's memo, so the cache can never mask it.
	prog := loopProgram(120_000)
	bufAddr := prog.Symbols["buf"]
	cfg := smallSliceConfig()
	cfg.CompareFullMemory = true
	stats := runWithHook(t, cfg, prog,
		onceInSegment(2, func(c *proc.Process) {
			v, _ := c.AS.LoadU64(bufAddr + 512)
			c.AS.StoreU64(bufAddr+512, v^8) //nolint:errcheck
		}))
	if stats.Detected == nil {
		t.Fatal("post-fork corruption undetected with memoized hashing")
	}
	switch stats.Detected.Kind {
	case ErrMemMismatch, ErrRegMismatch:
		// The flipped word also feeds the checksum register, so either
		// comparison may fire first.
	default:
		t.Errorf("unexpected detection kind %v", stats.Detected.Kind)
	}
	if stats.IdentitySkips == 0 {
		t.Error("identity fast path never taken; the cache machinery was not exercised")
	}
}

func TestCheckerOnlyMappingDetectedStructurally(t *testing.T) {
	// A corrupted checker maps a region the main never had. Both the
	// default dirty-union path and the full-memory ablation (whose
	// candidate set enumerates BOTH sides' mappings) must flag it as a
	// structural mismatch.
	for _, full := range []bool{false, true} {
		cfg := smallSliceConfig()
		cfg.CompareFullMemory = full
		prog := loopProgram(120_000)
		stats := runWithHook(t, cfg, prog,
			onceInSegment(1, func(c *proc.Process) {
				base := c.AS.FindFree(0x4000_0000, c.AS.PageSize())
				if err := c.AS.Map(base, c.AS.PageSize(), mem.ProtRW, "rogue"); err != nil {
					t.Errorf("rogue map: %v", err)
				}
			}))
		if stats.Detected == nil {
			t.Errorf("fullmem=%v: checker-only mapping undetected", full)
			continue
		}
		if stats.Detected.Kind != ErrStructuralMismatch {
			t.Errorf("fullmem=%v: kind = %v, want structural mismatch", full, stats.Detected.Kind)
		}
	}
}
