package core

import (
	"strings"
	"testing"

	"parallaft/internal/machine"
	"parallaft/internal/proc"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
)

// TestLedgerReconciles is the attribution invariant on a clean run: the
// per-activity sums equal the machine's time book bit-for-bit, the energy
// recomputation matches, and not one charge landed unattributed.
func TestLedgerReconciles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	ledger := profile.NewLedger()
	cfg.Ledger = ledger
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if err := ledger.Reconcile(e.M); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if n := ledger.ClassCharges(machine.ActUnattributed); n != 0 {
		t.Errorf("%d charges landed in the unattributed class", n)
	}
	if ledger.ClassNs(machine.ActGuestMain) <= 0 || ledger.ClassNs(machine.ActGuestChecker) <= 0 {
		t.Errorf("guest classes empty: main=%v checker=%v",
			ledger.ClassNs(machine.ActGuestMain), ledger.ClassNs(machine.ActGuestChecker))
	}
}

// TestLedgerReconcilesUnderRecovery: arbitration runs a referee on recovery
// time; the invariant must survive the extra process and its charges.
func TestLedgerReconcilesUnderRecovery(t *testing.T) {
	cfg := recoveryConfig()
	ledger := profile.NewLedger()
	cfg.Ledger = ledger
	fired := false
	cfg.CheckerHook = func(seg int, c *proc.Process, _ float64) {
		if fired || seg < 1 {
			return
		}
		c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		fired = true
	}
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("fault not absorbed: %v", stats.Detected)
	}
	if err := ledger.Reconcile(e.M); err != nil {
		t.Fatalf("reconcile after recovery: %v", err)
	}
	if ledger.ClassNs(machine.ActRecovery) <= 0 {
		t.Errorf("arbitration charged no recovery time")
	}
}

// TestLedgerReconcilesNMR: three replicas vote; the invariant must hold
// with the extra replica substrates and the vote-hash charges.
func TestLedgerReconcilesNMR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	cfg.Checkers = 3
	ledger := profile.NewLedger()
	cfg.Ledger = ledger
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if err := ledger.Reconcile(e.M); err != nil {
		t.Fatalf("reconcile under NMR: %v", err)
	}
	if ledger.ClassNs(machine.ActVote) <= 0 {
		t.Errorf("NMR run charged no vote-hash time")
	}
}

// TestProfilerAttributesActors: the sampling profiler sees both the main
// and at least one replica, attributed to workload symbols, and the window
// sampler closes sim-clock windows over the run.
func TestProfilerAttributesActors(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	cfg.Metrics = reg
	rec := profile.NewRecorder(5_000)
	cfg.Profiler = rec
	windows := profile.NewWindowSampler(reg, 1e5, 0)
	cfg.Windows = windows
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	if _, err := rt.Run(testProgram(40_000)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rec.TotalSamples() == 0 {
		t.Fatal("profiler collected no samples")
	}
	folded := rec.FoldedStacks()
	if !strings.Contains(folded, "main;") {
		t.Errorf("no main actor in folded stacks:\n%s", folded)
	}
	if !strings.Contains(folded, "replica-0;") {
		t.Errorf("no replica-0 actor in folded stacks:\n%s", folded)
	}
	if len(windows.Windows()) == 0 {
		t.Error("window sampler closed no windows")
	}
}
