package core

import (
	"fmt"
	"time"

	"parallaft/internal/compare"
	"parallaft/internal/machine"
	"parallaft/internal/mem"
	"parallaft/internal/packet"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
	"parallaft/internal/trace"
)

// DirtyTracking selects the dirty-page discovery mechanism (§4.4).
type DirtyTracking uint8

// Dirty-tracking mechanisms.
const (
	// TrackFrameDiff discovers main-side modified pages by comparing frame
	// identity between consecutive checkpoints, the moral equivalent of the
	// PAGEMAP_SCAN map-count technique Parallaft uses on AArch64.
	TrackFrameDiff DirtyTracking = iota
	// TrackSoftDirty uses per-PTE soft-dirty bits, as on x86_64.
	TrackSoftDirty
)

// Config parameterises the runtime. DefaultConfig gives the paper's
// Parallaft setup; RAFTConfig gives the §5.1 RAFT model.
type Config struct {
	// SlicePeriodCycles slices the main execution each time it accumulates
	// this many user cycles (§4.1). Zero disables periodic slicing (the
	// RAFT model: one segment for the whole program).
	SlicePeriodCycles float64
	// SliceByInstructions switches the period to retired instructions, as
	// on Intel (§5.8, footnote 14); SlicePeriodInstrs is then used.
	SliceByInstructions bool
	SlicePeriodInstrs   uint64

	// MaxLiveSegments bounds outstanding unverified segments; together
	// with the slice period it caps detection latency (§3.4). The main
	// process stalls when the bound is hit.
	MaxLiveSegments int

	// SkidBuffer is how many branches short of the target the checker's
	// overflow counter is armed, to absorb counter skid (§4.2.2).
	SkidBuffer uint64
	// TimeoutScale multiplies the main's (noisy) instruction count to get
	// the checker's kill budget (§4.2.2, "currently set to 1.1").
	TimeoutScale float64

	// CompareStates enables end-of-segment register and dirty-page-hash
	// comparison. Disabled in the RAFT model (§5.1 modification 3).
	CompareStates bool
	// Tracking selects the dirty-page mechanism.
	Tracking DirtyTracking
	// CompareFullMemory hashes every mapped page instead of only dirty
	// ones — the ablation that motivates dirty tracking.
	CompareFullMemory bool

	// CheckersOnBig pins checkers to big cores (RAFT model, §5.1
	// modification 2) instead of the little-core pool.
	CheckersOnBig bool
	// EnableDVFS lets the pacer scale little-core frequency (§4.5).
	EnableDVFS bool
	// EnableMigration lets the scheduler move the oldest checker to a big
	// core when little cores run out (§4.5).
	EnableMigration bool
	// MigrateNewest migrates the newest instead of the oldest checker —
	// the footnote-11 ablation.
	MigrateNewest bool

	// Runtime-work cost knobs (nanoseconds). Event-driven costs
	// (TracerStopNs, RecordByteNs) are kept at realistic absolute size so
	// the §5.7 syscall/signal stress ratios reproduce; segment-machinery
	// costs (BoundaryStopNs, BreakpointHitNs, CounterSetupNs) are scaled
	// with the 1:2500 segment length so per-segment runtime work keeps the
	// paper's small share (§5.2.1).
	TracerStopNs        float64 // one ptrace-style stop round trip (syscalls, signals, nondet)
	BoundaryStopNs      float64 // the tracer stop at a slicing boundary
	BreakpointHitNs     float64 // one breakpoint/counter stop during end-point replay
	RecordByteNs        float64 // capturing or checking one recorded byte
	HashByteNs          float64 // hashing one byte during comparison
	ForkBaseNs          float64 // fixed fork cost
	ForkPerPageNs       float64 // per-PTE fork cost
	DirtyClearPerPageNs float64 // clearing soft-dirty bits per page
	CounterSetupNs      float64 // arming a performance counter

	// SampleIntervalNs is the PSS sampling period (§5.4; the paper's 0.5 s
	// scaled by the simulation time scale).
	SampleIntervalNs float64

	// CompareWorkers bounds the host-side hashing pool of the comparison
	// subsystem (internal/compare); 0 picks a GOMAXPROCS-capped default.
	// It only affects host wall-clock: the simulated comparison cost and
	// every experiment output are identical for any value.
	CompareWorkers int

	// CheckerHook, when set, is invoked before every dispatch of replica 0
	// with the segment index, the checker process, and the checker's
	// elapsed segment time. The fault injector uses it to flip register
	// bits at a chosen instant (§5.6). Only the first replica fires the
	// hook, so a single-checker injector keeps its exact semantics under
	// NMR (the injected SEU lands in one replica); use ReplicaHook to
	// observe every replica. Arbitration referees are exempt.
	CheckerHook func(segment int, checker *proc.Process, elapsedNs float64)
	// ReplicaHook is the replica-aware counterpart of CheckerHook: it is
	// invoked before every dispatch of every checker replica, carrying the
	// replica index. Both hooks may be set; CheckerHook fires first.
	ReplicaHook func(segment, replica int, checker *proc.Process, elapsedNs float64)
	// MainHook is the main-process counterpart, used to model faults in
	// the main execution for the recovery experiments.
	MainHook func(main *proc.Process, nowNs float64)

	// Checkers is the number of checker replicas forked per segment. The
	// default (0, treated as 1) is the paper's main+1-checker design and is
	// byte-identical to it. With N > 1 the run becomes N-way modular
	// redundant: the N replicas plus the segment-end checkpoint form an
	// (N+1)-voter quorum at every segment end (see vote.go) — a dissenting
	// checker is absorbed in place, and a main-side fault is repaired by
	// copying the agreed replica state forward instead of rolling back.
	// NMR requires CompareStates (the vote is a state comparison).
	Checkers int
	// Diversity names per-replica substrate presets; replica i runs under
	// Diversity[i%len(Diversity)]. Presets: "none" (default substrate),
	// "skid2x"/"skid4x" (wider counter skid buffer), "quantum" (offset
	// dispatch quantum), "bigcore" (prefer big-core placement), and
	// "coldcache" (start with a cold cache footprint). Diverse substrates
	// decorrelate replica failure modes; page-size and cache-geometry
	// diversity is available through the packet-export path (a checkd
	// daemon on a differently configured machine re-checks the same
	// segments). See ValidateDiversity.
	Diversity []string

	// EnableRecovery turns on rollback-based error recovery (the paper's
	// table-2 future work): detections are arbitrated by re-executing the
	// segment with a clean referee; checker faults are absorbed in place,
	// main faults roll the main back to the newest induction-verified
	// checkpoint. Detection remains guaranteed either way.
	EnableRecovery bool
	// RecoveryMaxRetries bounds recovery attempts per segment, so a
	// permanent fault still terminates with a diagnosis.
	RecoveryMaxRetries int
	// RecoveryMaxRollbacks bounds rollbacks across the whole run: a
	// permanent fault that keeps corrupting fresh segments would otherwise
	// roll back forever.
	RecoveryMaxRollbacks int

	// Trace, when set, receives a structured event stream of runtime
	// decisions (segments, replay events, scheduling, detections).
	Trace *trace.Recorder

	// Metrics, when set, receives runtime metrics under the paft_core_*
	// namespace (segment lifecycle counters, hash-bytes/dirty-pages
	// histograms, checker-slack and live-segment gauges, scheduling
	// decision counters). Telemetry is observation-only: it consumes no
	// simulated time and never changes a verdict or a table.
	Metrics *telemetry.Registry

	// Spans, when set, receives one lifecycle span per finished segment
	// (checkpoint fork → main run → checker replay → compare →
	// retire/rollback), with simulated-time phase stamps and a host
	// wall-time duration.
	Spans *telemetry.SpanRecorder

	// Tracer, when set, receives causal-trace stage spans: a seal span per
	// sealed segment and an export span per emitted packet, opening the
	// trace chain that checkd/checkfarm stages extend. Like Spans, purely
	// observational — nil costs nothing on the hot path.
	Tracer *telemetry.TraceRecorder

	// Flight, when set, is the black-box ring abnormal events are noted
	// into (no-quorum votes dump the recorder via its configured
	// directory).
	Flight *telemetry.FlightRecorder

	// Profiler, when set, receives deterministic sim-clock profile samples
	// from every actor's interpreter dispatch loop: the runtime attaches one
	// sampler per actor (main, replica-N, referee) and reattaches after a
	// rollback or forward repair replaces the main. Observation-only — it
	// consumes no simulated time and the run's outputs are byte-identical
	// with or without it.
	Profiler *profile.Recorder

	// Ledger, when set, is attached to the machine as its charge observer:
	// every simulated active nanosecond the run accounts is classed to
	// exactly one activity (guest, fork, COW, barrier, record, replay,
	// compare, vote, recovery) and reconciled bit-for-bit against the
	// machine's own books by Ledger.Reconcile. Observation-only.
	Ledger *profile.Ledger

	// Windows, when set, is ticked with the main's simulated clock so the
	// registry in Metrics becomes a time series of fixed sim-clock interval
	// deltas. Observation-only.
	Windows *profile.WindowSampler

	// Export, when set, emits one portable check packet per sealed segment
	// (internal/packet): pages interned into the exporter's store, the
	// finished packet handed to its sink. Nil — the default — costs
	// nothing: the seal path never touches the export code.
	Export *packet.Exporter

	// ContainSyscalls enables error containment in the sphere of
	// replication (the paper's other table-2 future-work row): before any
	// globally-effectful syscall escapes, the current segment is sealed
	// and the main stalls until every outstanding segment has been
	// verified, so only checked state ever leaves the SoR. The paper
	// declines this because of the synchronisation cost (§3.4) — the
	// containment ablation bench quantifies exactly that cost.
	ContainSyscalls bool

	// InProcessInterception models the §5.7 future-work optimisation of
	// intercepting syscalls inside the traced process (seccomp/in-process
	// dispatch, as in rr) instead of via ptrace stops: per-event tracer
	// costs drop by roughly an order of magnitude. The stress benches
	// quantify the difference.
	InProcessInterception bool

	// Quantum is the dispatch budget in instructions.
	Quantum uint64
}

// tracerStopNs returns the per-stop supervision cost under the active
// interception mechanism.
func (c *Config) tracerStopNs() float64 {
	if c.InProcessInterception {
		return c.TracerStopNs / 12
	}
	return c.TracerStopNs
}

// DefaultSlicePeriodCycles is the scaled equivalent of the paper's 5-billion
// cycle slicing period (simulation time scale 1:2500, see DESIGN.md).
const DefaultSlicePeriodCycles = 2_000_000

// DefaultConfig returns the Parallaft configuration used in the paper's
// main evaluation.
func DefaultConfig() Config {
	return Config{
		SlicePeriodCycles:   DefaultSlicePeriodCycles,
		SlicePeriodInstrs:   DefaultSlicePeriodCycles, // used in instruction mode
		MaxLiveSegments:     12,
		SkidBuffer:          32,
		TimeoutScale:        1.1,
		CompareStates:       true,
		Tracking:            TrackFrameDiff,
		EnableDVFS:          true,
		EnableMigration:     true,
		TracerStopNs:        17000,
		BoundaryStopNs:      500,
		BreakpointHitNs:     70,
		RecordByteNs:        6.0,
		HashByteNs:          0.002,
		ForkBaseNs:          900,
		ForkPerPageNs:       10,
		DirtyClearPerPageNs: 3,
		CounterSetupNs:      120,
		SampleIntervalNs:    200_000,
		Quantum:             sim.DefaultQuantum,
	}
}

// RAFTConfig returns the RAFT model of §5.1: no periodic checkpoints, the
// checker on a big core, and no state comparison or dirty tracking.
func RAFTConfig() Config {
	c := DefaultConfig()
	c.SlicePeriodCycles = 0
	c.SlicePeriodInstrs = 0
	c.CompareStates = false
	c.CheckersOnBig = true
	c.EnableDVFS = false
	c.EnableMigration = false
	c.MaxLiveSegments = 4
	return c
}

// checkpoint is a frozen COW fork of the main process. A boundary
// checkpoint serves two segments — as the comparison reference for the one
// that ends there and as the frame-diff base for the one that starts there —
// so it is released by refcount.
type checkpoint struct {
	p    *proc.Process
	refs int
}

type checkerPhase uint8

const (
	phaseEvents  checkerPhase = iota // consuming recorded events; end unknown or far
	phaseCounted                     // branch counter armed toward target-skid
	phaseStepped                     // breakpoint at target PC, checking counts
	phaseReached                     // at the end point, awaiting comparison
)

// replica is one checker replica's replay state. The paper's design has
// exactly one per segment; under NMR (Config.Checkers > 1) each segment
// carries a replica set and the segment verdict is decided by majority vote
// over the replicas plus the end checkpoint.
type replica struct {
	seg *Segment
	idx int

	Checker *proc.Process
	Task    *sim.Task

	// End-point steering state (§4.2.2).
	replayIdx    int
	phase        checkerPhase
	target       ExecPoint // active steering target (signal point or segment end)
	targetIsEnd  bool
	targetActive bool

	forkNs  float64 // when the checker was forked (main clock)
	startNs float64 // when the checker began executing
	doneNs  float64 // when the checker reached the end point (or failed)

	queued  bool
	waiting bool // waiting for the main to record more events
	onBig   bool

	littleNs      float64
	bigNs         float64
	littleInstrs  uint64
	bigInstrs     uint64
	checkerInstrs uint64

	// failed marks a replica-scoped replay divergence under NMR: the
	// replica becomes a dissenting voter instead of terminating the run.
	failed *DetectedError

	// Diversity substrate (per-replica; defaults match the config).
	skid       uint64 // effective skid buffer
	quantumOff uint64 // dispatch-quantum offset
	preferBig  bool   // placement prefers a big core
}

// relBranches reports the replica's segment-relative branch count.
func (rep *replica) relBranches() uint64 { return rep.Checker.Branches }

// terminal reports whether the replica has nothing left to execute: it
// reached the segment end point, or it failed replay (NMR dissent).
func (rep *replica) terminal() bool { return rep.phase == phaseReached || rep.failed != nil }

// Segment is one slice of the main execution and its replay state.
type Segment struct {
	Index int

	StartCP *checkpoint
	EndCP   *checkpoint

	// Replicas is the segment's checker replica set, replica 0 first. A
	// single-checker run (the default) has exactly one entry.
	Replicas []*replica

	Log RRLog

	// Recorded end of the segment.
	End        ExecPoint
	EndIsExit  bool
	MainInstrs uint64 // noisy count, for the timeout budget

	// Main-side bookkeeping.
	mainStartBranches uint64
	mainStartInstrs   uint64
	mainStartCycles   float64
	mainStartNs       float64
	mainEndNs         float64
	sealed            bool

	recoveries int     // recovery attempts consumed (EnableRecovery)
	arb        bool    // this is an arbitration shadow, not a real segment
	arbDone    bool    // the referee reached the end point
	compareNs  float64 // when the comparison (or vote) completed
	compared   bool
	voted      bool // NMR: the majority vote has run for this segment
	pos        int  // index in Runtime.segments; -1 when not live

	// Telemetry-only bookkeeping (observation-only; never feeds the model).
	dirtyPages uint64    // pages hashed at comparison, for the span record
	wallStart  time.Time // host time at segment start (set only when Spans or Tracer on)
}

// chk is the segment's first (and in the single-checker design, only)
// replica.
func (s *Segment) chk() *replica { return s.Replicas[0] }

// checkerStartNs is the earliest time any replica began executing (zero if
// none has).
func (s *Segment) checkerStartNs() float64 {
	start := 0.0
	for _, rep := range s.Replicas {
		if rep.startNs != 0 && (start == 0 || rep.startNs < start) {
			start = rep.startNs
		}
	}
	return start
}

// checkerDoneNs is the latest time any replica became terminal.
func (s *Segment) checkerDoneNs() float64 {
	done := 0.0
	for _, rep := range s.Replicas {
		if rep.doneNs > done {
			done = rep.doneNs
		}
	}
	return done
}

func (s *Segment) sumBigNs() float64 {
	v := 0.0
	for _, rep := range s.Replicas {
		v += rep.bigNs
	}
	return v
}

func (s *Segment) sumLittleNs() float64 {
	v := 0.0
	for _, rep := range s.Replicas {
		v += rep.littleNs
	}
	return v
}

func (s *Segment) sumBigInstrs() uint64 {
	var v uint64
	for _, rep := range s.Replicas {
		v += rep.bigInstrs
	}
	return v
}

func (s *Segment) sumLittleInstrs() uint64 {
	var v uint64
	for _, rep := range s.Replicas {
		v += rep.littleInstrs
	}
	return v
}

// SegmentStat is the per-segment summary exposed in RunStats.
type SegmentStat struct {
	Index        int
	MainNs       float64 // main-side duration of the segment
	CheckerNs    float64 // checker execution duration
	CheckerOnBig bool    // whether the checker (partly) ran on a big core
	BigNs        float64 // checker time spent on big cores
	LittleNs     float64
	Events       int
	DirtyPages   int
}

// RunStats mirrors the statistics block the Parallaft artifact dumps
// (Appendix A.7) plus the quantities the evaluation figures need.
type RunStats struct {
	Benchmark string

	AllWallNs  float64 // timing.all_wall_time
	MainWallNs float64 // timing.main_wall_time
	MainUserNs float64 // timing.main_user_time
	MainSysNs  float64 // timing.main_sys_time
	RuntimeNs  float64 // tracer/runtime work on the main's critical path

	EnergyJ float64 // hwmon.* equivalent: SoC+DRAM energy for the run

	Checkpoints int // counter.checkpoint_count
	Slices      int // fixed_interval_slicer.nr_slices

	SyscallsTraced uint64
	SignalsTraced  uint64
	NondetTraced   uint64

	ContainBarriers int // containment barriers taken (Config.ContainSyscalls)

	Migrations   int // checkers moved from little to big cores
	ExitMigrated int // checkers migrated at main exit
	Queued       int // checkers that had to queue for a core
	// SegmentsOnBig counts segments whose checker touched a big core; the
	// paper's "checkers do N% of work on big cores" corresponds to
	// SegmentsOnBig/Slices (each segment is the same amount of work).
	SegmentsOnBig int
	// MainStallNs is wall time the main spent gated on MaxLiveSegments.
	MainStallNs float64

	COWCopies uint64
	COWBytes  uint64

	DirtyPagesHashed uint64
	BytesHashed      uint64
	// Host-side comparison shortcuts (internal/compare): pages proven
	// equal by frame identity alone, and hashes served from a frame's
	// memo. Diagnostics only — excluded from the simulated cost model.
	IdentitySkips uint64
	HashCacheHits uint64

	CheckerLittleNs float64
	CheckerBigNs    float64
	// Instruction-weighted work split: the paper's "checkers do N% of
	// work on big cores" (§5.2.1, §5.3) is CheckerBigInstrs over the total.
	CheckerLittleInstrs uint64
	CheckerBigInstrs    uint64

	AvgPSSBytes float64
	pssSamples  int
	pssAccum    float64

	Segments []SegmentStat

	// Recovery accounting (Config.EnableRecovery).
	RecoveredCheckerFaults int  // checker faults absorbed without rollback
	Rollbacks              int  // main restorations from a verified checkpoint
	Arbitrations           int  // referee re-executions run
	ReexecutedEffects      int  // global syscalls whose effects escaped twice
	UnrecoverableFault     bool // retry budget exhausted (permanent fault)

	// NMR vote accounting (Config.Checkers > 1).
	VoteUnanimous        int // segments where every voter agreed
	VoteAbsorbed         int // dissenting replicas absorbed by a ref-side quorum
	VoteOutvotedReplicas int // segments where a replica quorum outvoted the reference
	ForwardRepairs       int // mains repaired by forward state copy (no rollback)
	VoteNoQuorum         int // segments with no majority (fell back to detection)

	Detected *DetectedError
	ExitCode int64
	KilledBy proc.Signal
	Stdout   []byte
}

// BigWorkFraction returns the fraction of checker work (instructions) done
// on big cores (the paper quotes 41.7 %, 38.0 % and 50.0 % for mcf, milc
// and lbm).
func (s *RunStats) BigWorkFraction() float64 {
	tot := s.CheckerBigInstrs + s.CheckerLittleInstrs
	if tot == 0 {
		return 0
	}
	return float64(s.CheckerBigInstrs) / float64(tot)
}

// Runtime supervises one protected program execution.
type Runtime struct {
	cfg Config
	e   *sim.Engine

	main     *proc.Process
	mainTask *sim.Task
	mainCore *machine.Core

	segments []*Segment // live (unverified) segments, oldest first
	current  *Segment   // segment the main is currently executing
	sched    *scheduler

	stats        RunStats
	tm           coreMetrics
	comparator   compare.Comparator // reused across every boundary comparison
	voter        compare.Voter      // reused across every NMR vote (Checkers > 1)
	nextSampleNs float64
	detected     *DetectedError
	segCounter   int
	maxCompareNs float64
	mainStalled  bool // main currently gated on MaxLiveSegments

	// arbitration state: while arbitrating, fail() diverts to arbErr so a
	// referee divergence is a verdict, not a detection.
	arbitrating bool
	arbErr      *DetectedError

	// containWait gates the main at a globally-effectful syscall until all
	// prior segments verify (Config.ContainSyscalls).
	containWait bool

	// exportErr latches the first packet-export failure (Config.Export);
	// surfaced by Run as an infrastructure error, never as a detection.
	exportErr error
}

// NewRuntime creates a Parallaft (or RAFT-configured) runtime over an
// engine. The main process runs on the machine's first big core.
func NewRuntime(e *sim.Engine, cfg Config) *Runtime {
	if cfg.Quantum == 0 {
		cfg.Quantum = sim.DefaultQuantum
	}
	if cfg.TimeoutScale == 0 {
		cfg.TimeoutScale = 1.1
	}
	if cfg.MaxLiveSegments == 0 {
		cfg.MaxLiveSegments = 12
	}
	if cfg.RecoveryMaxRetries == 0 {
		cfg.RecoveryMaxRetries = 2
	}
	if cfg.RecoveryMaxRollbacks == 0 {
		cfg.RecoveryMaxRollbacks = 8
	}
	if cfg.Checkers > 1 && !cfg.CompareStates {
		panic("core: Checkers > 1 requires CompareStates (the NMR vote is a state comparison)")
	}
	if err := ValidateDiversity(cfg.Diversity); err != nil {
		panic("core: " + err.Error())
	}
	bigs := e.M.BigCores()
	if len(bigs) == 0 {
		panic("core: machine has no big cores")
	}
	r := &Runtime{cfg: cfg, e: e, mainCore: bigs[0]}
	r.tm = newCoreMetrics(cfg.Metrics, cfg.Checkers)
	r.sched = newScheduler(r)
	if cfg.Ledger != nil {
		cfg.Ledger.Attach(e.M)
		cfg.Ledger.SetMetrics(cfg.Metrics)
	}
	if cfg.Profiler != nil {
		cfg.Profiler.SetMetrics(cfg.Metrics)
	}
	return r
}

// checkerCount is Config.Checkers with the zero default resolved.
func (c *Config) checkerCount() int {
	if c.Checkers < 1 {
		return 1
	}
	return c.Checkers
}

// DiversityPresets lists the recognised per-replica substrate presets.
var DiversityPresets = []string{"none", "skid2x", "skid4x", "quantum", "bigcore", "coldcache"}

// ValidateDiversity checks a Config.Diversity preset list, returning a
// descriptive error on the first unknown name. The CLIs use it to reject
// bad -diversity values before a run starts.
func ValidateDiversity(presets []string) error {
	for _, p := range presets {
		switch p {
		case "", "none", "skid2x", "skid4x", "quantum", "bigcore", "coldcache":
		default:
			return fmt.Errorf("unknown diversity preset %q (known: %v)", p, DiversityPresets)
		}
	}
	return nil
}

// applyDiversity configures a freshly forked replica's substrate from the
// preset assigned to its index. Replica substrates only shape *how* a
// replica re-executes (skid width, dispatch phase, placement, cache
// warmth); the replayed instruction stream and the voted end state are
// substrate-independent, which is what makes diverse replicas comparable.
func (r *Runtime) applyDiversity(rep *replica) {
	rep.skid = r.cfg.SkidBuffer
	if len(r.cfg.Diversity) == 0 {
		return
	}
	switch r.cfg.Diversity[rep.idx%len(r.cfg.Diversity)] {
	case "skid2x":
		rep.skid = 2 * r.cfg.SkidBuffer
	case "skid4x":
		rep.skid = 4 * r.cfg.SkidBuffer
	case "quantum":
		rep.quantumOff = r.cfg.Quantum / 3
	case "bigcore":
		rep.preferBig = true
	case "coldcache":
		r.e.M.Caches.FlushASID(rep.Checker.ASID)
	}
}

// Config returns the active configuration.
func (r *Runtime) Config() Config { return r.cfg }

// chargeRuntimeMain charges tracer work to the main's critical path, classed
// under act for the overhead-attribution ledger.
func (r *Runtime) chargeRuntimeMain(act machine.Activity, ns float64) {
	prev := r.mainTask.Core.SetActivity(act)
	r.e.ChargeRuntime(r.mainTask, ns)
	r.mainTask.Core.SetActivity(prev)
	r.stats.RuntimeNs += ns
}

// chargeRuntimeChecker charges tracer work to a checker replica's clock. An
// arbitration referee's work is recovery machinery, whatever its mechanism.
func (r *Runtime) chargeRuntimeChecker(rep *replica, act machine.Activity, ns float64) {
	if rep.Task == nil {
		return
	}
	if rep.seg.arb {
		act = machine.ActRecovery
	}
	prev := rep.Task.Core.SetActivity(act)
	r.e.ChargeRuntime(rep.Task, ns)
	rep.Task.Core.SetActivity(prev)
}

// chargeSysMain charges classed system time (fork costs) to the main.
func (r *Runtime) chargeSysMain(act machine.Activity, ns float64) {
	prev := r.mainTask.Core.SetActivity(act)
	r.e.ChargeSys(r.mainTask, ns)
	r.mainTask.Core.SetActivity(prev)
}

// guestClass is the activity a replica's own guest execution is charged to.
func guestClass(rep *replica) machine.Activity {
	if rep.seg.arb {
		return machine.ActRecovery
	}
	return machine.ActGuestChecker
}

// attachSampler gives p the run profiler's sampler for the named actor;
// no-op without a profiler.
func (r *Runtime) attachSampler(p *proc.Process, name string) {
	if r.cfg.Profiler == nil {
		return
	}
	p.SetSampler(r.cfg.Profiler.Actor(name), r.cfg.Profiler.PeriodCycles())
}

func (r *Runtime) fail(seg int, kind ErrorKind, format string, args ...any) {
	d := &DetectedError{Kind: kind, Segment: seg, Detail: fmt.Sprintf(format, args...)}
	if r.arbitrating {
		if r.arbErr == nil {
			r.arbErr = d
		}
		return
	}
	if r.detected == nil {
		r.detected = d
		r.tm.detections.Inc()
		r.cfg.Trace.Emit(r.mainTask.Clock, trace.Detect, d.Segment, "%s: %s", d.Kind, d.Detail)
	}
}

func (r *Runtime) failSig(seg int, sig proc.Signal, format string, args ...any) {
	d := &DetectedError{Kind: ErrCheckerException, Segment: seg, Sig: sig,
		Detail: fmt.Sprintf(format, args...)}
	if r.arbitrating {
		if r.arbErr == nil {
			r.arbErr = d
		}
		return
	}
	if r.detected == nil {
		r.detected = d
		r.tm.detections.Inc()
	}
}

// replicaFail records a replay divergence for one replica. With a single
// replica (the paper's design, and arbitration referees) this is exactly
// the global detection path; under NMR the replica becomes a dissenting
// voter instead — the segment's verdict waits for the majority vote.
func (r *Runtime) replicaFail(rep *replica, kind ErrorKind, format string, args ...any) {
	seg := rep.seg
	if seg.arb || len(seg.Replicas) <= 1 {
		r.fail(seg.Index, kind, format, args...)
		return
	}
	r.markDissent(rep, &DetectedError{Kind: kind, Segment: seg.Index,
		Detail: fmt.Sprintf(format, args...)})
}

// replicaFailSig is the signal-carrying counterpart of replicaFail.
func (r *Runtime) replicaFailSig(rep *replica, sig proc.Signal, format string, args ...any) {
	seg := rep.seg
	if seg.arb || len(seg.Replicas) <= 1 {
		r.failSig(seg.Index, sig, format, args...)
		return
	}
	r.markDissent(rep, &DetectedError{Kind: ErrCheckerException, Segment: seg.Index,
		Sig: sig, Detail: fmt.Sprintf(format, args...)})
}

// markDissent retires a diverged NMR replica as a dissenting voter: it is
// taken off its core, its clock frozen, and the segment votes once every
// sibling is terminal.
func (r *Runtime) markDissent(rep *replica, d *DetectedError) {
	if rep.failed != nil || rep.phase == phaseReached {
		return
	}
	rep.failed = d
	if rep.Task != nil {
		rep.doneNs = rep.Task.Clock
		rep.Checker.DisarmBranchCounter()
		rep.Checker.ClearAllBreakpoints()
		r.cfg.Trace.Emit(rep.Task.Clock, trace.Vote, rep.seg.Index,
			"replica %d dissents: %s: %s", rep.idx, d.Kind, d.Detail)
		r.sched.observeCheckerDone(rep)
		r.sched.onCheckerDone(rep)
	}
	r.maybeVote(rep.seg)
}

// releaseCP drops one reference to a checkpoint, reaping it at zero.
func (r *Runtime) releaseCP(cp *checkpoint) {
	if cp == nil {
		return
	}
	cp.refs--
	if cp.refs <= 0 {
		r.e.L.Reap(cp.p)
		r.e.M.Caches.FlushASID(cp.p.ASID)
	}
}

// forkCheckpoint freezes the main's current state, charging the fork cost
// to the main's system time (it is on the critical path, §5.2.1). The
// returned checkpoint starts with zero references; each holding segment
// adds one.
func (r *Runtime) forkCheckpoint(name string) *checkpoint {
	cost := r.cfg.ForkBaseNs + float64(r.main.AS.PageCount())*r.cfg.ForkPerPageNs
	r.chargeSysMain(machine.ActFork, cost)
	p := r.e.L.Fork(r.main, name)
	r.stats.Checkpoints++
	r.tm.checkpoints.Inc()
	return &checkpoint{p: p}
}

// DirtyModeOf maps the core-level tracking selection to the mem package's
// query mode for the checker side.
func (c Config) checkerDirtyMode() mem.DirtyMode {
	if c.Tracking == TrackSoftDirty {
		return mem.DirtySoft
	}
	return mem.DirtyMapCount
}
