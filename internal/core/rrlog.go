package core

import (
	"fmt"

	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// ExecPoint identifies a precise point in a segment's execution: the number
// of branches retired since the segment started, plus the program counter.
// A PC alone is not sufficient because it may be inside a loop; the branch
// count selects the iteration (§4.2, footnote 5).
type ExecPoint struct {
	Branches uint64 // segment-relative retired-branch count
	PC       uint64
}

// String renders the execution point.
func (e ExecPoint) String() string {
	return fmt.Sprintf("pc=%d after %d branches", e.PC, e.Branches)
}

// EventKind tags record/replay log entries.
type EventKind uint8

// Event kinds.
const (
	// EvSyscall covers all three syscall classes; the record's Class field
	// selects replay behaviour.
	EvSyscall EventKind = iota
	// EvNondet is a trapped nondeterministic instruction (rdtsc/mrs).
	EvNondet
	// EvSignalInternal is a fault raised by the application itself
	// (SIGSEGV, SIGFPE); it occurs at a deterministic point so replay is
	// self-synchronising (§4.3.3).
	EvSignalInternal
	// EvSignalExternal is an asynchronous signal from outside; its
	// delivery point is an ExecPoint the checker must be steered to
	// (§4.3.3).
	EvSignalExternal
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSyscall:
		return "syscall"
	case EvNondet:
		return "nondet"
	case EvSignalInternal:
		return "signal-internal"
	case EvSignalExternal:
		return "signal-external"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// RegionData is captured guest memory.
type RegionData struct {
	Addr uint64
	Data []byte
}

// SyscallRecord captures one syscall made by the main process.
type SyscallRecord struct {
	Info  oskernel.Info
	Class oskernel.Class
	// In holds the contents of the input regions (per the syscall model)
	// at the time the main issued the call; the checker's inputs must
	// match byte-for-byte.
	In []RegionData
	// Ret is the main's return value, replayed to the checker for global
	// and non-effectful calls.
	Ret int64
	// Out holds the memory the kernel wrote for the main (e.g. read
	// data), replayed into the checker.
	Out []RegionData
	// MmapFixedAddr pins the checker's replayed mmap to the address ASLR
	// gave the main (§4.3.2); zero when not an address-returning map.
	MmapFixedAddr uint64
}

// NondetRecord captures a trapped nondeterministic instruction.
type NondetRecord struct {
	PC    uint64
	Value uint64
}

// SignalRecord captures a signal delivery.
type SignalRecord struct {
	Sig proc.Signal
	PC  uint64
	// Point is the segment-relative delivery point for external signals.
	Point ExecPoint
	// Fatal records that the main had no handler and was killed.
	Fatal bool
}

// Event is one record/replay log entry.
type Event struct {
	Kind    EventKind
	Syscall *SyscallRecord
	Nondet  *NondetRecord
	Signal  *SignalRecord
}

// RRLog is the ordered record/replay log for one segment. The checker must
// reproduce exactly this event sequence; any deviation is a detected error.
type RRLog struct {
	Events []Event
	// Bytes estimates the recorded payload size, for runtime-work costing.
	Bytes uint64
}

// Append adds an event.
func (l *RRLog) Append(ev Event) {
	l.Events = append(l.Events, ev)
	switch ev.Kind {
	case EvSyscall:
		for _, r := range ev.Syscall.In {
			l.Bytes += uint64(len(r.Data))
		}
		for _, r := range ev.Syscall.Out {
			l.Bytes += uint64(len(r.Data))
		}
		l.Bytes += 64
	default:
		l.Bytes += 32
	}
}

// captureRegions snapshots guest memory extents; unreadable regions are
// recorded as empty (the comparison will then flag any main/checker
// difference in readability).
func captureRegions(p *proc.Process, regions []oskernel.Region) []RegionData {
	out := make([]RegionData, 0, len(regions))
	for _, r := range regions {
		buf := make([]byte, r.Len)
		if f := p.AS.Read(r.Addr, buf); f != nil {
			buf = nil
		}
		out = append(out, RegionData{Addr: r.Addr, Data: buf})
	}
	return out
}

// regionsEqual compares two captures byte-for-byte.
func regionsEqual(a, b []RegionData) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}
