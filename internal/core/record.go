package core

import (
	"fmt"
	"time"

	"parallaft/internal/asm"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
	"parallaft/internal/trace"
)

// Run protects one program execution end to end and returns the collected
// statistics. On a detected divergence the application is terminated (as in
// §4.4) and the detection is reported in the stats; Run itself only returns
// an error for infrastructure failures.
func (r *Runtime) Run(prog *asm.Program) (*RunStats, error) {
	main, err := r.e.L.Exec(prog)
	if err != nil {
		return nil, err
	}
	r.main = main
	r.mainCore.SetMaxFreq()
	r.mainTask = r.e.NewTask(main, r.mainCore, 0)
	r.stats.Benchmark = prog.Name
	r.nextSampleNs = r.cfg.SampleIntervalNs
	if r.cfg.Profiler != nil {
		r.cfg.Profiler.SetProgram(prog)
	}
	r.attachSampler(main, "main")

	// The first boundary is program start: checkpoint plus first checker.
	r.startSegment()

	for {
		for r.detected == nil {
			actor, ok := r.pickActor()
			if !ok {
				break // everything finished
			}
			if actor.rep == nil {
				if err := r.stepMain(); err != nil {
					return nil, err
				}
			} else {
				r.stepChecker(actor.rep)
			}
		}
		if r.detected != nil && r.cfg.EnableRecovery && r.tryRecover() {
			continue // recovered: keep executing
		}
		break
	}

	r.finish()
	if r.exportErr != nil {
		return nil, fmt.Errorf("core: packet export failed: %w", r.exportErr)
	}
	return &r.stats, nil
}

// actorRef is either the main task or a checker replica.
type actorRef struct {
	task *sim.Task
	rep  *replica
}

func (r *Runtime) pickActor() (actorRef, bool) {
	var best actorRef
	found := false
	bestClock := 0.0
	consider := func(a actorRef, clock float64) {
		if !found || clock < bestClock {
			best = a
			found = true
			bestClock = clock
		}
	}
	if !r.main.Exited {
		if r.mainBlocked() {
			r.mainStalled = true
		} else {
			consider(actorRef{task: r.mainTask}, r.mainTask.Clock)
		}
	}
	for _, seg := range r.segments {
		if seg.compared {
			continue
		}
		for _, rep := range seg.Replicas {
			if rep.Task == nil || rep.terminal() || rep.Checker.Exited {
				continue
			}
			if rep.waiting {
				continue // blocked on the main recording more events
			}
			if r.checkerAheadOfMain(rep) {
				continue // must not outrun the main architecturally
			}
			consider(actorRef{task: rep.Task, rep: rep}, rep.Task.Clock)
		}
	}
	if !found && !r.main.Exited && r.mainBlocked() {
		// Deadlock guard: the main is stalled on MaxLiveSegments but no
		// checker can run. Should not happen; surface it.
		panic("core: scheduler deadlock: main stalled with no runnable checker")
	}
	return best, found
}

// liveSegmentsExceeded reports whether the live-segment bound blocks the
// main (§3.4: the bound caps detection latency and checkpoint memory).
func (r *Runtime) liveSegmentsExceeded() bool {
	live := 0
	for _, s := range r.segments {
		if !s.compared {
			live++
		}
	}
	return live > r.cfg.MaxLiveSegments
}

// uncomparedOthers counts unverified segments other than the (unsealed)
// current one.
func (r *Runtime) uncomparedOthers() int {
	n := 0
	for _, s := range r.segments {
		if s != r.current && !s.compared {
			n++
		}
	}
	return n
}

// mainBlocked reports whether the main must wait: on the live-segment
// bound, or on a containment barrier draining outstanding segments.
func (r *Runtime) mainBlocked() bool {
	if r.liveSegmentsExceeded() {
		return true
	}
	return r.containWait && r.uncomparedOthers() > 0
}

// checkerAheadOfMain prevents a checker replica in an unsealed segment from
// running architecturally past the main's current position (its segment end
// is not yet known, so overtaking could overshoot the eventual boundary).
func (r *Runtime) checkerAheadOfMain(rep *replica) bool {
	if rep.seg.sealed {
		return false
	}
	mainRel := r.main.Branches - rep.seg.mainStartBranches
	margin := uint64(r.cfg.Quantum) // conservative: one quantum of branches
	return rep.relBranches()+margin >= mainRel
}

// stepMain dispatches the main process for one quantum and handles its stop.
func (r *Runtime) stepMain() error {
	if r.e.MaxInstr != 0 && r.main.Instrs > r.e.MaxInstr {
		return fmt.Errorf("core: %s exceeded instruction cap %d", r.stats.Benchmark, r.e.MaxInstr)
	}
	if r.cfg.MainHook != nil {
		r.cfg.MainHook(r.main, r.mainTask.Clock)
	}
	prev := r.mainTask.Core.SetActivity(machine.ActGuestMain)
	stop := r.e.Run(r.mainTask, r.cfg.Quantum)
	r.mainTask.Core.SetActivity(prev)
	r.samplePSS()
	r.cfg.Windows.Tick(r.mainTask.Clock)

	switch stop.Reason {
	case proc.StopBudget:
		if r.sliceDue() {
			r.takeBoundary()
		}
	case proc.StopHalt:
		r.sealFinal()
	case proc.StopSyscall:
		if err := r.recordSyscall(); err != nil {
			return err
		}
	case proc.StopNondet:
		r.recordNondet()
	case proc.StopSignal:
		r.recordInternalSignal(stop.Sig)
	default:
		return fmt.Errorf("core: unexpected main stop %v", stop.Reason)
	}
	return nil
}

// sliceDue checks the slicing period against user cycles (or instructions
// on instruction-sliced platforms, §5.8).
func (r *Runtime) sliceDue() bool {
	if r.current == nil {
		return false
	}
	if r.cfg.SliceByInstructions {
		if r.cfg.SlicePeriodInstrs == 0 {
			return false
		}
		return r.main.Instrs-r.current.mainStartInstrs >= r.cfg.SlicePeriodInstrs
	}
	if r.cfg.SlicePeriodCycles == 0 {
		return false
	}
	return r.main.UserCycles-r.current.mainStartCycles >= r.cfg.SlicePeriodCycles
}

// startSegmentWith begins a new segment at the main's current state using
// cp as the start checkpoint: it forks the checker, clears dirty tracking,
// and sets up counter bookkeeping.
func (r *Runtime) startSegmentWith(cp *checkpoint) {
	seg := &Segment{
		Index:             r.segCounter,
		StartCP:           cp,
		mainStartBranches: r.main.Branches,
		mainStartInstrs:   r.main.ReadInstrCounter(),
		mainStartCycles:   r.main.UserCycles,
		mainStartNs:       r.mainTask.Clock,
	}
	r.segCounter++
	cp.refs++ // the segment holds a start reference

	// Fork the checker replicas (same point, fresh PMU). Each fork cost is
	// on the critical path, like the checkpoint's (§5.2.1). Replica 0 keeps
	// the paper's "checker%d" identity; extra NMR replicas are suffixed.
	for i := 0; i < r.cfg.checkerCount(); i++ {
		name := fmt.Sprintf("checker%d", seg.Index)
		if i > 0 {
			name = fmt.Sprintf("checker%d.%d", seg.Index, i)
		}
		r.chargeSysMain(machine.ActFork, r.cfg.ForkBaseNs+float64(r.main.AS.PageCount())*r.cfg.ForkPerPageNs)
		rep := &replica{seg: seg, idx: i, Checker: r.e.L.Fork(r.main, name)}
		rep.Checker.AS.ClearSoftDirty()
		rep.forkNs = r.mainTask.Clock
		r.applyDiversity(rep)
		r.attachSampler(rep.Checker, fmt.Sprintf("replica-%d", i))
		seg.Replicas = append(seg.Replicas, rep)
	}

	// Dirty-tracking epoch: clear the main's soft-dirty bits *after* the
	// previous segment's end checkpoint inherited them.
	if r.cfg.Tracking == TrackSoftDirty {
		r.chargeRuntimeMain(machine.ActDirtyPages, float64(r.main.AS.PageCount())*r.cfg.DirtyClearPerPageNs)
		r.main.AS.ClearSoftDirty()
	}
	// Performance-counter setup for execution-point recording (§4.2.1).
	r.chargeRuntimeMain(machine.ActRecord, r.cfg.CounterSetupNs)

	seg.pos = len(r.segments)
	r.segments = append(r.segments, seg)
	r.current = seg
	r.tm.segStarted.Inc()
	if r.cfg.Spans != nil || r.cfg.Tracer != nil {
		seg.wallStart = time.Now()
	}
	r.observeLiveSegments()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.SegmentStart, seg.Index, "%d pages mapped", r.main.AS.PageCount())
	for _, rep := range seg.Replicas {
		r.sched.place(rep, r.mainTask.Clock)
	}
}

// startSegment is startSegmentWith on a freshly forked checkpoint.
func (r *Runtime) startSegment() {
	r.startSegmentWith(r.forkCheckpoint(fmt.Sprintf("cp%d", r.stats.Checkpoints)))
}

// sealCurrent records the current segment's end execution point and end
// checkpoint and arms its checker for end-point replay.
func (r *Runtime) sealCurrent(cp *checkpoint) {
	cur := r.current
	cur.End = ExecPoint{Branches: r.main.Branches - cur.mainStartBranches, PC: r.main.PC}
	cur.MainInstrs = r.main.ReadInstrCounter() - cur.mainStartInstrs
	cur.mainEndNs = r.mainTask.Clock
	cur.sealed = true
	cur.EndCP = cp
	cp.refs++
	r.current = nil
	r.tm.segSealed.Inc()
	r.observeLiveSegments()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.SegmentSeal, cur.Index, "end at %s, %d events", cur.End, len(cur.Log.Events))
	r.onSeal(cur)
}

// takeBoundary ends the current segment at the main's present position and
// starts the next one; one checkpoint serves as both the ending segment's
// comparison reference and the new segment's start state.
func (r *Runtime) takeBoundary() {
	if r.current == nil {
		return
	}
	// Tracer stop + counter read at the boundary (§4.2.1).
	r.chargeRuntimeMain(machine.ActBarrier, r.cfg.BoundaryStopNs)
	r.stats.Slices++

	cp := r.forkCheckpoint(fmt.Sprintf("cp%d", r.stats.Checkpoints))
	r.sealCurrent(cp)
	r.startSegmentWith(cp)
	r.sched.onBoundary()
}

// currentIndex is the live segment index for trace events (-1 when none).
func (r *Runtime) currentIndex() int {
	if r.current == nil {
		return -1
	}
	return r.current.Index
}

// sealFinal closes the last segment when the main exits. The main process
// itself is frozen (it has exited) and serves as the end checkpoint.
func (r *Runtime) sealFinal() {
	cur := r.current
	if cur == nil {
		r.sched.onMainExit()
		return
	}
	cur.End = ExecPoint{Branches: r.main.Branches - cur.mainStartBranches, PC: r.main.PC}
	cur.EndIsExit = true
	cur.MainInstrs = r.main.ReadInstrCounter() - cur.mainStartInstrs
	cur.mainEndNs = r.mainTask.Clock
	cur.sealed = true
	cur.EndCP = &checkpoint{p: r.main, refs: 1000} // backed by the live main; never reaped
	r.current = nil
	r.tm.segSealed.Inc()
	r.observeLiveSegments()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.SegmentSeal, cur.Index, "final: end at %s", cur.End)
	r.onSeal(cur)
	r.sched.onMainExit()
}

// onSeal arms the sealed segment's checker replicas for end-point replay
// and the timeout budget (§4.2.2), and — when packet export is configured —
// emits the segment as a portable check packet, now that its end point,
// budget, end checkpoint and event log are all final.
func (r *Runtime) onSeal(seg *Segment) {
	limit := uint64(float64(seg.MainInstrs) * r.cfg.TimeoutScale)
	if limit < 64 {
		limit = 64
	}
	for _, rep := range seg.Replicas {
		if rep.terminal() {
			continue
		}
		rep.Checker.InstrLimit = rep.checkerInstrs + limit
		rep.waiting = false
		r.ensureTarget(rep)
	}

	if r.cfg.Tracer != nil && !seg.arb {
		// The seal span opens the segment's causal chain: main run from
		// segment start to the seal, stamped with the seal's sim-clock time.
		r.recordStage(telemetry.StageSpan{
			TraceID:     telemetry.NewTraceID(r.main.Name, seg.Index),
			Stage:       telemetry.StageSeal,
			Actor:       "main",
			Prog:        r.main.Name,
			Segment:     seg.Index,
			StartUnixNs: seg.wallStart.UnixNano(),
			EndUnixNs:   time.Now().UnixNano(),
			SimNs:       seg.mainEndNs,
			Detail:      fmt.Sprintf("events=%d", len(seg.Log.Events)),
		})
	}
	if r.cfg.Export != nil && !seg.arb {
		exportStart := time.Now()
		err := r.exportSegment(seg)
		if err != nil && r.exportErr == nil {
			r.exportErr = err
		}
		r.cfg.Ledger.AddHost(profile.StageExport, time.Since(exportStart).Nanoseconds())
		if r.cfg.Tracer != nil {
			detail := fmt.Sprintf("pages=%d", seg.EndCP.p.AS.PageCount())
			if err != nil {
				detail = "error: " + err.Error()
			}
			r.recordStage(telemetry.StageSpan{
				TraceID:     telemetry.NewTraceID(r.main.Name, seg.Index),
				Stage:       telemetry.StageExport,
				Actor:       "main",
				Prog:        r.main.Name,
				Segment:     seg.Index,
				StartUnixNs: exportStart.UnixNano(),
				EndUnixNs:   time.Now().UnixNano(),
				SimNs:       seg.mainEndNs,
				Detail:      detail,
			})
		}
	}
	if len(seg.Replicas) > 1 {
		// Every replica may already be terminal (e.g. all dissented while
		// the segment was still open); the vote needed the end checkpoint.
		r.maybeVote(seg)
	}
}

// --- main-side event recording ---------------------------------------------

func (r *Runtime) recordSyscall() error {
	p := r.main
	info := oskernel.Decode(p)
	model := oskernel.ModelOf(info.Nr)
	if model == nil {
		return fmt.Errorf("core: unsupported syscall %d", info.Nr)
	}

	// Two ptrace stops (entry and exit) plus input capture.
	r.chargeRuntimeMain(machine.ActRecord, 2*r.cfg.tracerStopNs())
	r.stats.SyscallsTraced++
	r.tm.syscalls.Inc()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.Syscall, r.currentIndex(), "%v", info.Nr)

	// File-backed private mmap: split the segment around the call so the
	// mapping is duplicated into the next segment's checker via fork
	// rather than replayed against a dead fd (§4.3.2).
	if info.Nr == oskernel.SysMmap && info.Args[3]&oskernel.MapAnonymous == 0 {
		return r.recordFileMmap(info)
	}

	// Containment barrier (§3.4 future work, implemented): seal the
	// current segment right before the escape and drain every outstanding
	// verification, so only checked state leaves the sphere of
	// replication.
	if r.cfg.ContainSyscalls && model.Class == oskernel.ClassGlobal {
		if r.current != nil && r.main.Branches > r.current.mainStartBranches {
			r.takeBoundary()
			r.stats.ContainBarriers++
			r.tm.barriers.Inc()
			r.cfg.Trace.Emit(r.mainTask.Clock, trace.Barrier, r.currentIndex(), "before %v", info.Nr)
		}
		if r.uncomparedOthers() > 0 {
			// Wait: the main stays stopped at this syscall; pickActor
			// excludes it until the drain completes, and the next
			// dispatch re-enters recordSyscall with a clear barrier.
			r.containWait = true
			return nil
		}
		r.containWait = false
	}

	rec := &SyscallRecord{Info: info, Class: model.Class}
	rec.In = captureRegions(p, model.In(r.e.K, p, info.Args))
	for _, reg := range rec.In {
		r.chargeRuntimeMain(machine.ActRecord, float64(len(reg.Data))*r.cfg.RecordByteNs)
	}

	// Eagerly pass the syscall to the OS (§3.4): effects escape before the
	// checker confirms them; all errors are still detected within the
	// segment bound. Kernel time spent serving the guest's own syscall is
	// guest work, not runtime machinery.
	prev := r.mainTask.Core.SetActivity(machine.ActGuestMain)
	res := r.e.ExecSyscall(r.mainTask, info)
	r.mainTask.Core.SetActivity(prev)
	rec.Ret = res.Ret

	// Capture outputs for replay.
	rec.Out = captureRegions(p, model.Out(r.e.K, p, info.Args, res.Ret))
	for _, reg := range rec.Out {
		r.chargeRuntimeMain(machine.ActRecord, float64(len(reg.Data))*r.cfg.RecordByteNs)
	}

	// ASLR pinning: remember where the kernel put an address-less mmap so
	// the checker's replayed call is pinned there (§4.3.2).
	if info.Nr == oskernel.SysMmap && res.Ret > 0 {
		rec.MmapFixedAddr = uint64(res.Ret)
	}

	if r.current != nil {
		r.current.Log.Append(Event{Kind: EvSyscall, Syscall: rec})
		r.wakeChecker(r.current)
	}

	if res.Exited {
		r.sealFinal()
		return nil
	}
	oskernel.Finish(p, res.Ret)
	if res.SelfSignal != proc.SigNone {
		// kill(self): delivered after the syscall completes, so the
		// handler returns past it. Deterministic given the syscall
		// position, so the checker's own execution reproduces it.
		if !p.DeliverSignal(res.SelfSignal) {
			r.sealFinal()
		}
	}
	return nil
}

// recordFileMmap implements the §4.3.2 protocol: the current segment ends
// just before the mmap (with its own end checkpoint), the call executes
// outside any protection zone, and a new segment starts just after it so
// the mapping reaches the next checker by fork rather than by replaying
// against a file descriptor that is dead in the checker. The two extra
// checkpoints show up in counter.checkpoint_count (Appendix A.7).
func (r *Runtime) recordFileMmap(info oskernel.Info) error {
	if r.current != nil {
		r.sealCurrent(r.forkCheckpoint(fmt.Sprintf("cp%d", r.stats.Checkpoints)))
	}

	prev := r.mainTask.Core.SetActivity(machine.ActGuestMain)
	res := r.e.ExecSyscall(r.mainTask, info)
	r.mainTask.Core.SetActivity(prev)
	if res.Exited {
		// mmap cannot exit the process, but stay defensive.
		r.finishWithoutSegment()
		return nil
	}
	oskernel.Finish(r.main, res.Ret)

	r.startSegment()
	r.sched.onBoundary()
	return nil
}

// finishWithoutSegment handles the main exiting while no segment is open
// (only reachable from the file-mmap window).
func (r *Runtime) finishWithoutSegment() {
	r.sched.onMainExit()
}

func (r *Runtime) recordNondet() {
	p := r.main
	r.chargeRuntimeMain(machine.ActRecord, r.cfg.tracerStopNs())
	r.stats.NondetTraced++
	r.tm.nondet.Inc()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.Nondet, r.currentIndex(), "pc %d", p.PC)
	val := sim.EmulateNondet(p, r.mainCore, r.mainTask.Clock)
	rec := &NondetRecord{PC: p.PC, Value: val}
	sim.FinishNondet(p, val)
	if r.current != nil {
		r.current.Log.Append(Event{Kind: EvNondet, Nondet: rec})
		r.wakeChecker(r.current)
	}
}

func (r *Runtime) recordInternalSignal(sig proc.Signal) {
	p := r.main
	r.chargeRuntimeMain(machine.ActRecord, r.cfg.tracerStopNs())
	r.stats.SignalsTraced++
	r.tm.signals.Inc()
	r.cfg.Trace.Emit(r.mainTask.Clock, trace.Signal, r.currentIndex(), "internal %v at pc %d", sig, p.PC)
	rec := &SignalRecord{Sig: sig, PC: p.PC}
	alive := p.DeliverSignal(sig)
	rec.Fatal = !alive
	if r.current != nil {
		r.current.Log.Append(Event{Kind: EvSignalInternal, Signal: rec})
		r.wakeChecker(r.current)
	}
	if !alive {
		r.sealFinal()
	}
}

// InjectExternalSignal delivers an asynchronous signal (e.g. SIGINT from a
// terminal) to the protected application. Parallaft records the main's
// execution point at delivery and steers every checker to the same point
// before delivering (§4.3.3). It must be called between dispatches.
func (r *Runtime) InjectExternalSignal(sig proc.Signal) {
	if r.main == nil || r.main.Exited || r.current == nil {
		return
	}
	r.chargeRuntimeMain(machine.ActRecord, r.cfg.tracerStopNs())
	r.stats.SignalsTraced++
	r.tm.signals.Inc()
	point := ExecPoint{Branches: r.main.Branches - r.current.mainStartBranches, PC: r.main.PC}
	rec := &SignalRecord{Sig: sig, PC: r.main.PC, Point: point}
	alive := r.main.DeliverSignal(sig)
	rec.Fatal = !alive
	r.current.Log.Append(Event{Kind: EvSignalExternal, Signal: rec})
	r.wakeChecker(r.current)
	if !alive {
		r.sealFinal()
	}
}

// wakeChecker clears the segment replicas' wait-for-events state.
func (r *Runtime) wakeChecker(seg *Segment) {
	for _, rep := range seg.Replicas {
		if rep.waiting {
			rep.waiting = false
			// The checker idled while the main recorded; move its clock
			// forward so it does not replay "in the past".
			if rep.Task != nil && rep.Task.Clock < r.mainTask.Clock {
				rep.Task.Clock = r.mainTask.Clock
			}
		}
	}
}

// samplePSS accumulates proportional-set-size samples of main plus running
// checkers (checkpoints excluded, §5.4) every SampleIntervalNs.
func (r *Runtime) samplePSS() {
	if r.cfg.SampleIntervalNs <= 0 || r.mainTask.Clock < r.nextSampleNs {
		return
	}
	r.nextSampleNs = r.mainTask.Clock + r.cfg.SampleIntervalNs
	pss := r.main.AS.PSSBytes()
	for _, seg := range r.segments {
		if seg.compared {
			continue
		}
		for _, rep := range seg.Replicas {
			if rep.Checker != nil && !rep.Checker.Exited {
				pss += rep.Checker.AS.PSSBytes()
			}
		}
	}
	r.stats.pssAccum += pss
	r.stats.pssSamples++
}
