package core

import (
	"fmt"

	"parallaft/internal/oskernel"
	"parallaft/internal/telemetry"
	"parallaft/internal/trace"
)

// Error recovery — the paper's table-2 "future work" row, implemented.
//
// When a divergence is detected, the single-fault model leaves two
// suspects: the main execution or the checker. Recovery arbitrates by
// re-executing the segment once more from its start checkpoint with a
// clean *referee* process, replaying the same record/replay log:
//
//   - if the referee reproduces the end checkpoint, the main's execution
//     was reproducible and the original checker carried the fault — the
//     segment is accepted and execution continues (no rollback);
//   - otherwise the main (or the record itself) was faulty — the runtime
//     rolls back: every live segment is discarded and the main process is
//     restored from the oldest live segment's start checkpoint, which the
//     induction argument (§3.1) has verified transitively.
//
// Without syscall containment (§3.4), globally-effectful syscalls in the
// rolled-back region have already escaped and will be issued again on
// re-execution; RunStats.ReexecutedEffects counts them so callers can
// reason about the exposure, exactly the caveat the paper describes.

// arbVerdict is the outcome of a recovery arbitration.
type arbVerdict uint8

const (
	verdictCheckerFault arbVerdict = iota
	verdictMainFault
)

// tryRecover attempts to absorb the pending detection. Returns true when
// execution can continue (the detection has been handled).
func (r *Runtime) tryRecover() bool {
	d := r.detected
	if d == nil {
		return true
	}
	var seg *Segment
	for _, s := range r.segments {
		if s.Index == d.Segment {
			seg = s
			break
		}
	}
	if seg == nil {
		return false // detection without a live segment: unrecoverable
	}
	if seg.recoveries >= r.cfg.RecoveryMaxRetries {
		r.stats.UnrecoverableFault = true
		return false
	}
	seg.recoveries++

	// A permanent fault keeps corrupting fresh segments; the global
	// rollback budget turns that into a terminating diagnosis.
	if r.stats.Rollbacks >= r.cfg.RecoveryMaxRollbacks {
		r.stats.UnrecoverableFault = true
		return false
	}

	verdict := verdictMainFault
	if seg.sealed && seg.EndCP != nil {
		r.cfg.Trace.Emit(r.mainTask.Clock, trace.Arbitrate, seg.Index, "re-executing with a clean referee")
		verdict = r.arbitrate(seg)
	}
	r.detected = nil

	if verdict == verdictCheckerFault {
		// The checker carried the fault; the referee itself verified the
		// segment. Accept it and release its resources.
		r.stats.RecoveredCheckerFaults++
		r.tm.recoveredChecker.Inc()
		r.cfg.Trace.Emit(r.mainTask.Clock, trace.Recover, seg.Index, "checker fault absorbed; segment verified by referee")
		if !seg.compared {
			doneNs := seg.checkerDoneNs()
			if doneNs == 0 {
				doneNs = r.mainTask.Clock
				seg.chk().doneNs = doneNs // spans report the absorb time
			}
			seg.compareNs = doneNs
			if seg.compareNs > r.maxCompareNs {
				r.maxCompareNs = seg.compareNs
			}
			seg.compared = true
			r.stats.Segments = append(r.stats.Segments, SegmentStat{
				Index: seg.Index, MainNs: seg.mainEndNs - seg.mainStartNs,
				CheckerNs: doneNs - seg.checkerStartNs(),
			})
			r.sched.drop(seg)
			r.retireSegment(seg)
			r.tm.segRetired.Inc()
			r.observeLiveSegments()
			r.emitSpan(seg, telemetry.OutcomeRecovered, seg.compareNs)
			r.sched.kick(r.mainTask.Clock)
		}
		return true
	}

	r.rollback()
	return true
}

// arbitrate re-executes the segment with a clean referee forked from the
// start checkpoint, replaying the recorded log, and compares the result
// against the end checkpoint.
func (r *Runtime) arbitrate(seg *Segment) arbVerdict {
	r.stats.Arbitrations++
	r.tm.arbitrations.Inc()

	referee := r.e.L.Fork(seg.StartCP.p, fmt.Sprintf("referee%d", seg.Index))
	referee.AS.ClearSoftDirty()
	limit := uint64(float64(seg.MainInstrs) * r.cfg.TimeoutScale)
	if limit < 64 {
		limit = 64
	}
	referee.InstrLimit = limit
	r.attachSampler(referee, "referee")

	// A private shadow segment shares the record but has fresh replay
	// state; it never enters r.segments or the scheduler.
	shadow := &Segment{
		Index:      seg.Index,
		StartCP:    seg.StartCP,
		EndCP:      seg.EndCP,
		Log:        seg.Log,
		End:        seg.End,
		EndIsExit:  seg.EndIsExit,
		MainInstrs: seg.MainInstrs,
		sealed:     true,
		arb:        true,
		pos:        -1, // never on the live list
	}
	ref := &replica{seg: shadow, Checker: referee, skid: r.cfg.SkidBuffer}
	shadow.Replicas = []*replica{ref}
	// Run on a big core at the current wall position; arbitration is rare
	// and latency matters more than energy here.
	core := r.mainCore
	if bigs := r.e.M.BigCores(); len(bigs) > 1 {
		core = bigs[1]
	}
	ref.Task = r.e.NewTask(referee, core, r.mainTask.Clock)
	defer func() {
		r.e.Retire(ref.Task)
		r.e.L.Reap(referee)
	}()

	r.arbitrating = true
	r.arbErr = nil
	defer func() { r.arbitrating = false }()

	// The instruction limit bounds the referee's execution; the iteration
	// cap is a belt-and-braces guard against replay-state livelock.
	for i := 0; r.arbErr == nil && !shadow.arbDone && ref.phase != phaseReached; i++ {
		if i > 1_000_000 {
			r.arbErr = &DetectedError{Kind: ErrCheckerTimeout, Segment: seg.Index,
				Detail: "arbitration referee made no progress"}
			break
		}
		r.stepChecker(ref)
	}
	if r.arbErr != nil {
		// The clean referee also diverged from the record/end point: the
		// main side was at fault.
		return verdictMainFault
	}
	res := r.compareAgainstEndCP(shadow, referee)
	if res.err != nil {
		return verdictMainFault
	}
	return verdictCheckerFault
}

// rollback discards all live segments and restores the main process from
// the oldest live segment's start checkpoint — the newest state verified by
// induction.
func (r *Runtime) rollback() {
	if len(r.segments) == 0 {
		r.stats.UnrecoverableFault = true
		return
	}
	oldest := r.segments[0]
	target := oldest.StartCP
	target.refs++ // keep it alive through the teardown below
	retries := oldest.recoveries

	// Wall time when the rollback happens: everything observed so far.
	wall := r.mainTask.Clock
	for _, s := range r.segments {
		for _, rep := range s.Replicas {
			if rep.Task != nil && rep.Task.Clock > wall {
				wall = rep.Task.Clock
			}
		}
	}

	// Count global syscalls whose external effects will re-escape.
	for _, s := range r.segments {
		for _, ev := range s.Log.Events {
			if ev.Kind == EvSyscall && ev.Syscall.Class == oskernel.ClassGlobal {
				r.stats.ReexecutedEffects++
			}
		}
	}

	// Tear down every live segment. Rollback discards the machine state
	// wholesale, so no per-checker ASID flush is charged (flushASID=false).
	for _, s := range append([]*Segment(nil), r.segments...) {
		r.sched.drop(s)
		r.releaseSegment(s, false)
		r.emitSpan(s, telemetry.OutcomeRollback, wall)
	}
	r.segments = r.segments[:0]
	r.current = nil
	r.mainStalled = false

	// Replace the main process with a fork of the verified checkpoint.
	r.e.Retire(r.mainTask)
	oldMain := r.main
	r.main = r.e.L.Fork(target.p, "main-restored")
	r.attachSampler(r.main, "main")
	r.e.L.Reap(oldMain)
	r.releaseCP(target)
	r.mainTask = r.e.NewTask(r.main, r.mainCore, wall+r.cfg.tracerStopNs())
	r.stats.Rollbacks++
	r.tm.rollbacks.Inc()
	r.observeLiveSegments()
	r.cfg.Trace.Emit(wall, trace.Rollback, oldest.Index, "main restored from segment %d's start checkpoint", oldest.Index)

	// Restart protection from the restored state, carrying the retry
	// count so a permanent fault cannot loop forever.
	r.startSegment()
	r.current.recoveries = retries
}
