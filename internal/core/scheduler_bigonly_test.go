package core

import (
	"testing"

	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

// bigOnlyConfig is machine.BigOnly() — the Apple preset without its little
// cluster; the shape of a server part, or a VM pinned to performance cores.
// The checker scheduler used to panic at the first segment boundary
// (onBoundary read littles[0] before its emptiness guard) and again at main
// exit, and its placement path queued checkers forever because an empty pool
// never has a migration victim.
func bigOnlyConfig() machine.Config {
	return machine.BigOnly()
}

func newBigOnlyEngine(seed int64) *sim.Engine {
	m := machine.New(bigOnlyConfig())
	k := oskernel.NewKernel(m.PageSize, seed)
	l := oskernel.NewLoader(k, m.PageSize, seed)
	return sim.New(m, k, l)
}

func TestBigOnlyMachineRunsDefaultConfig(t *testing.T) {
	// The default Parallaft config has EnableMigration and EnableDVFS set —
	// exactly the paths that dereferenced littles[0].
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000 // force multiple segment boundaries
	e := newBigOnlyEngine(7)
	r := NewRuntime(e, cfg)
	stats, err := r.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("big-cores-only run failed: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive on big-only machine: %v", stats.Detected)
	}
	if stats.Slices == 0 {
		t.Fatal("no boundaries taken; the regression paths were not exercised")
	}
	if stats.CheckerLittleNs != 0 {
		t.Errorf("checker time on nonexistent little cores: %v ns", stats.CheckerLittleNs)
	}
	if stats.CheckerBigNs <= 0 {
		t.Error("checkers did no big-core work; they must have been placed somewhere")
	}
	// Matches the baseline output (testProgram writes "hello\n").
	if string(stats.Stdout) != "hello\n" {
		t.Errorf("stdout = %q", stats.Stdout)
	}
}

func TestBigOnlyMachineNoMigration(t *testing.T) {
	// With migration disabled the empty-pool fallback in place() is the only
	// thing standing between the checkers and an eternal queue.
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	cfg.EnableMigration = false
	e := newBigOnlyEngine(7)
	r := NewRuntime(e, cfg)
	stats, err := r.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("big-cores-only run without migration failed: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
}

func TestBigOnlyMachineRAFT(t *testing.T) {
	cfg := RAFTConfig() // CheckersOnBig: pool() is already the big set
	e := newBigOnlyEngine(7)
	r := NewRuntime(e, cfg)
	stats, err := r.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("big-cores-only RAFT run failed: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
}
