package core

import (
	"strings"
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/isa"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
)

// run executes a program under Parallaft and asserts no infrastructure
// error and, unless allowDetect, no detection.
func runClean(t *testing.T, cfg Config, prog *asm.Program, seed int64) *RunStats {
	t.Helper()
	e := newTestEngine(seed)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	return stats
}

// baselineOf runs the same program unprotected for output comparison.
func baselineOf(t *testing.T, prog *asm.Program, seed int64) *sim.BaselineResult {
	t.Helper()
	e := newTestEngine(seed)
	res, err := e.RunBaseline(prog, e.M.BigCores()[0])
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	return res
}

func TestGlobalSyscallEffectsHappenExactlyOnce(t *testing.T) {
	b := asm.NewBuilder("io")
	b.Ascii("m1", "one|")
	b.Ascii("m2", "two|")
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 60_000)
	b.Addr(4, "work")
	b.Label("l1")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "l1")
	// write #1
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "m1")
	b.MovI(3, 4)
	b.Syscall()
	// more work, then write #2 (lands in a later segment)
	b.MovI(2, 0)
	b.MovI(3, 60_000)
	b.Label("l2")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "l2")
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "m2")
	b.MovI(3, 4)
	b.Syscall()
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 100_000
	stats := runClean(t, cfg, prog, 5)
	if got := string(stats.Stdout); got != "one|two|" {
		t.Errorf("stdout = %q, want exactly %q (duplicated IO means replay leaked to the OS)", got, "one|two|")
	}
	if stats.Slices < 2 {
		t.Errorf("expected multiple segments, got %d slices", stats.Slices)
	}
}

func TestNondetInstructionsVirtualised(t *testing.T) {
	// The checker runs on a little core whose real MIDR differs from the
	// big core's; without record/replay the register compare would fail.
	b := asm.NewBuilder("nondet")
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 50_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Mrs(7, isa.SysRegMIDR)   // core identity: differs between big/little
	b.Rdtsc(8)                 // timestamp: differs between any two runs
	b.Mrs(9, isa.SysRegCNTVCT) // counter: likewise
	// keep them live so the segment-end compare sees them
	b.Add(1, 7, 8)
	b.Add(1, 1, 9)
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 80_000
	stats := runClean(t, cfg, prog, 6)
	if stats.NondetTraced != 3 {
		t.Errorf("nondet events traced = %d, want 3", stats.NondetTraced)
	}
}

func TestNonEffectfulSyscallsReplayMainValues(t *testing.T) {
	// getpid differs between main and checker processes; gettime and
	// getrandom differ between any two executions. All are recorded from
	// the main and replayed, so the state comparison passes.
	b := asm.NewBuilder("noneff")
	b.Space("rbuf", 64)
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 50_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysGetPID))
	b.Syscall()
	b.Mov(10, 0)
	b.MovI(0, int64(oskernel.SysGetTime))
	b.Syscall()
	b.Add(10, 10, 0)
	b.MovI(0, int64(oskernel.SysGetRandom))
	b.Addr(1, "rbuf")
	b.MovI(2, 32)
	b.Syscall()
	b.Addr(1, "rbuf")
	b.Ld(11, 1, 0) // random bytes land in compared state
	b.Add(10, 10, 11)
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 80_000
	stats := runClean(t, cfg, prog, 16)
	if stats.SyscallsTraced != 4 {
		t.Errorf("syscalls traced = %d, want 4", stats.SyscallsTraced)
	}
}

func TestASLRPinnedAcrossReplay(t *testing.T) {
	// Without MAP_FIXED pinning, the checker's anonymous mmap would land
	// at a different random address and every subsequent access would
	// diverge (§4.3.2).
	b := asm.NewBuilder("aslr")
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 40_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysMmap))
	b.MovI(1, 0)
	b.MovI(2, 32*1024)
	b.MovI(3, 3)
	b.MovI(4, int64(oskernel.MapAnonymous))
	b.Syscall()
	b.Mov(10, 0)   // the ASLR'd address becomes architectural state
	b.St(10, 0, 2) // and the mapping is used
	b.Ld(11, 10, 0)
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 60_000
	runClean(t, cfg, prog, 21)
}

func TestFileBackedMmapSplitsSegment(t *testing.T) {
	b := asm.NewBuilder("filemap")
	b.Ascii("path", "/input/sjeng.book")
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 40_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysOpen))
	b.Addr(1, "path")
	b.MovI(2, 0)
	b.Syscall()
	b.Mov(10, 0)
	b.MovI(0, int64(oskernel.SysMmap))
	b.MovI(1, 0)
	b.MovI(2, 16*1024)
	b.MovI(3, 3)
	b.MovI(4, 0) // file-backed
	b.Mov(5, 10)
	b.Syscall()
	b.Mov(10, 0)
	b.Ld(11, 10, 0) // use the mapping: reaches the compared state
	b.Add(1, 1, 11)
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 60_000
	stats := runClean(t, cfg, prog, 30)
	// the split takes extra checkpoints beyond the periodic slices
	if stats.Checkpoints <= stats.Slices+1 {
		t.Errorf("checkpoints %d vs slices %d: file-mmap split did not add checkpoints",
			stats.Checkpoints, stats.Slices)
	}
}

func TestInternalFatalSignalReplay(t *testing.T) {
	// The main faults (SIGSEGV) deterministically; the checker must
	// reproduce the identical fault and the final states must match.
	b := asm.NewBuilder("crash")
	b.Space("work", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 50_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(6, 0x6000_0000)
	b.Ld(7, 6, 0) // fault
	b.Halt()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 80_000
	stats := runClean(t, cfg, prog, 31)
	if stats.KilledBy != proc.SIGSEGV {
		t.Errorf("main killed by %v, want SIGSEGV", stats.KilledBy)
	}
	if stats.SignalsTraced == 0 {
		t.Error("the fault was not traced")
	}
}

func TestInternalHandledSignalReplay(t *testing.T) {
	// kill(self, SIGUSR1) with a handler: deterministic given the syscall
	// position, executed on both sides (§4.3.3 internal signals).
	b := asm.NewBuilder("selfsig")
	b.Space("work", 16*1024)
	b.Jmp("setup")
	b.Label("handler")
	b.AddI(9, 9, 1)
	b.Jr(proc.HandlerLinkReg)
	b.Label("setup")
	b.MovI(9, 0)
	b.MovI(0, int64(oskernel.SysSigaction))
	b.MovI(1, int64(proc.SIGUSR1))
	b.LabelAddr(2, "handler")
	b.Syscall()
	b.MovI(2, 0)
	b.MovI(3, 30_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.St(5, 0, 2)
	b.AddI(2, 2, 1)
	b.AndI(6, 2, 8191)
	b.Bne(6, 0, "skip")
	b.Mov(8, 2) // save the loop counter across the syscall clobber
	b.MovI(0, int64(oskernel.SysKill))
	b.MovI(1, 0)
	b.MovI(2, int64(proc.SIGUSR1))
	b.Syscall()
	b.Mov(2, 8)
	b.Label("skip")
	b.Blt(2, 3, "loop")
	b.Mov(1, 9) // handler count into the exit code
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 60_000
	base := baselineOf(t, prog, 32)
	stats := runClean(t, cfg, prog, 32)
	if stats.ExitCode != base.ExitCode || stats.ExitCode == 0 {
		t.Errorf("exit code %d != baseline %d (handler invocations)", stats.ExitCode, base.ExitCode)
	}
}

func TestExternalSignalDeliveredAtExecPoint(t *testing.T) {
	// An async SIGUSR1 from "outside": Parallaft records the main's
	// execution point and steers the checker to the same point before
	// delivering (§4.3.3).
	b := asm.NewBuilder("extsig")
	b.Space("work", 16*1024)
	b.Jmp("setup")
	b.Label("handler")
	b.AddI(9, 9, 1)
	b.Jr(proc.HandlerLinkReg)
	b.Label("setup")
	b.MovI(9, 0)
	b.MovI(0, int64(oskernel.SysSigaction))
	b.MovI(1, int64(proc.SIGUSR1))
	b.LabelAddr(2, "handler")
	b.Syscall()
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 80_000)
	b.Addr(4, "work")
	b.Label("loop")
	b.AndI(5, 2, 1023)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Add(1, 1, 9)
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 80_000
	e := newTestEngine(33)
	rt := NewRuntime(e, cfg)

	// Inject the signal once the main is some way in: hook into the
	// checker path is not available for main-side timing, so use the
	// public API between construction and Run via a goroutine-free trick:
	// wrap Run by injecting from a CheckerHook the first time any checker
	// runs (the main is mid-execution by construction then).
	injected := false
	cfg2 := cfg
	cfg2.CheckerHook = func(int, *proc.Process, float64) {
		if !injected {
			injected = true
			rt.InjectExternalSignal(proc.SIGUSR1)
		}
	}
	rt = NewRuntime(e, cfg2)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !injected {
		t.Skip("no checker ran before main finished; nothing injected")
	}
	if stats.Detected != nil {
		t.Fatalf("external signal replay diverged: %v", stats.Detected)
	}
	if stats.SignalsTraced == 0 {
		t.Error("external signal not traced")
	}
}

func TestProtectedRunMatchesBaselineAcrossSeeds(t *testing.T) {
	// Integration property: for several seeds (different ASLR, skid and
	// noise), the protected run's visible behaviour equals the baseline's.
	prog := testProgram(30_000)
	for seed := int64(1); seed <= 5; seed++ {
		be := newTestEngine(seed)
		base, err := be.RunBaseline(prog, be.M.BigCores()[0])
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.SlicePeriodCycles = 70_000
		e := newTestEngine(seed)
		rt := NewRuntime(e, cfg)
		stats, err := rt.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Detected != nil {
			t.Errorf("seed %d: false positive: %v", seed, stats.Detected)
		}
		if stats.ExitCode != base.ExitCode || string(stats.Stdout) != string(base.Stdout) {
			t.Errorf("seed %d: protected output diverged", seed)
		}
	}
}

func TestDeterministicStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 70_000
	run := func() *RunStats {
		e := newTestEngine(77)
		rt := NewRuntime(e, cfg)
		st, err := rt.Run(testProgram(25_000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.AllWallNs != b.AllWallNs || a.Slices != b.Slices || a.EnergyJ != b.EnergyJ ||
		a.COWCopies != b.COWCopies || a.DirtyPagesHashed != b.DirtyPagesHashed {
		t.Errorf("simulation nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestBreakdownComponentsAreFinite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 70_000
	stats := runClean(t, cfg, testProgram(30_000), 9)
	if stats.MainWallNs < stats.MainUserNs+stats.MainSysNs {
		t.Errorf("main wall %.0f below user+sys %.0f",
			stats.MainWallNs, stats.MainUserNs+stats.MainSysNs)
	}
	// runtime work + stall is exactly the wall not covered by user/sys
	gap := stats.MainWallNs - stats.MainUserNs - stats.MainSysNs
	if diff := gap - stats.RuntimeNs - stats.MainStallNs; diff > 1 || diff < -1 {
		t.Errorf("unaccounted main wall time: %.1f ns", diff)
	}
}

func TestCheckpointHygieneNoLeaks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 60_000
	e := newTestEngine(41)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(testProgram(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	// every segment retired
	if len(rt.segments) != 0 {
		t.Errorf("%d live segments after completion", len(rt.segments))
	}
	for _, seg := range rt.segments {
		t.Errorf("leaked segment %d", seg.Index)
	}
}

func TestErrorStringsAreInformative(t *testing.T) {
	d := &DetectedError{Kind: ErrMemMismatch, Segment: 3, Detail: "page 0x12 differs"}
	s := d.Error()
	for _, frag := range []string{"segment 3", "memory-hash-mismatch", "page 0x12"} {
		if !strings.Contains(s, frag) {
			t.Errorf("error %q missing %q", s, frag)
		}
	}
}
