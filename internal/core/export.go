package core

import (
	"sort"

	"parallaft/internal/mem"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/proc"
	"parallaft/internal/telemetry"
)

// PageHashSeed is the seed of the end-of-segment page hashes. Exported so
// packet tooling can build pagestores whose keys share the comparison
// subsystem's per-frame hash memos.
const PageHashSeed uint64 = hashSeed

// exportConfig projects the verdict-relevant slice of the runtime config
// into wire form. Scheduling, DVFS and cost knobs deliberately stay out:
// they move timing and energy, never the verdict.
func (r *Runtime) exportConfig() packet.Config {
	return packet.Config{
		PageSize:          r.main.AS.PageSize(),
		Quantum:           r.cfg.Quantum,
		SkidBuffer:        r.cfg.SkidBuffer,
		TimeoutScale:      r.cfg.TimeoutScale,
		CompareStates:     r.cfg.CompareStates,
		SoftDirtyTracking: r.cfg.Tracking == TrackSoftDirty,
		CompareFullMemory: r.cfg.CompareFullMemory,
		HashSeed:          hashSeed,
	}
}

// exportSegment builds one check packet from a sealed segment and hands it
// to the configured exporter. Called at the end of onSeal, when the
// segment's end point, instruction budget, end checkpoint and full event
// log are all final. Export failures are latched into r.exportErr and
// surfaced as an infrastructure error when Run returns — never as a
// detection.
func (r *Runtime) exportSegment(seg *Segment) error {
	exp := r.cfg.Export
	cfg := r.exportConfig()
	p := &packet.CheckPacket{
		Version:      packet.Version,
		ConfigDigest: cfg.Digest(),
		// Deterministic per-segment causal-trace ID: the same packet gets
		// the same ID on every run, so trace goldens stay stable and remote
		// checkers tag their spans onto the chain opened at seal time.
		TraceID: telemetry.NewTraceID(r.main.Name, seg.Index),
		Config:       cfg,
		Benchmark:    r.stats.Benchmark,
		ProgName:     r.main.Name,
		Segment:      seg.Index,
		End:          packet.ExecPoint{Branches: seg.End.Branches, PC: seg.End.PC},
		EndIsExit:    seg.EndIsExit,
		InstrLimit:   seg.chk().Checker.InstrLimit,
		MainInstrs:   seg.MainInstrs,
		CheckerPID:   seg.chk().Checker.PID,
		PMUSeed:      r.e.L.PMUSeed(seg.chk().Checker.PID),
		MaxSkid:      int(seg.chk().Checker.MaxSkid()),
		// Program text is content-addressed like any page: interning it
		// per segment costs one hash and dedups to a single stored copy.
		CodeKey: exp.Store.Put(packet.EncodeCode(r.main.Code)),
		CodeLen: len(r.main.Code),
	}

	exportStartState(&p.Start, seg.StartCP.p, exp)

	p.Events = make([]packet.Event, 0, len(seg.Log.Events))
	for i := range seg.Log.Events {
		p.Events = append(p.Events, exportEvent(&seg.Log.Events[i]))
	}

	end := seg.EndCP.p
	p.EndState.Regs = packet.RegsToWire(&end.Regs)
	p.EndState.PC = end.PC
	endRefs := end.AS.FrameRefs()
	p.EndState.Pages = make([]packet.PageHash, 0, len(endRefs))
	for _, fr := range endRefs {
		sum, _ := fr.Frame.ContentHash(hashSeed)
		p.EndState.Pages = append(p.EndState.Pages, packet.PageHash{VPN: fr.VPN, Sum: sum})
	}

	return exp.Sink(p)
}

// exportStartState serializes a checkpointed process: registers, VMAs,
// handlers, brk, and every mapped page interned into the exporter's store
// (COW sharing across consecutive checkpoints dedups automatically —
// identical frames carry identical content keys).
func exportStartState(st *packet.StartState, cp *proc.Process, exp *packet.Exporter) {
	st.Regs = packet.RegsToWire(&cp.Regs)
	st.PC = cp.PC
	st.BrkBase = cp.AS.BrkBase()
	st.Brk = cp.AS.CurrentBrk()

	for _, v := range cp.AS.VMAs() {
		st.VMAs = append(st.VMAs, packet.VMA{
			Base: v.Base, Length: v.Length, Prot: uint8(v.Prot), Name: v.Name,
		})
	}

	// Batch the whole checkpoint into one store operation: hashes happen
	// outside the store lock, and the map inserts take it once instead of
	// once per page.
	refs := cp.AS.FrameRefs()
	frames := make([]*mem.Frame, 0, len(refs))
	for _, fr := range refs {
		frames = append(frames, fr.Frame)
	}
	keys := exp.Store.PutFrames(frames, make([]pagestore.Key, 0, len(frames)))
	st.Pages = make([]packet.PageRef, 0, len(refs))
	for i, fr := range refs {
		st.Pages = append(st.Pages, packet.PageRef{
			VPN:  fr.VPN,
			Key:  keys[i],
			Prot: uint8(fr.Prot),
		})
	}

	st.Handlers = make([]packet.Handler, 0, len(cp.Handlers))
	for sig, pc := range cp.Handlers {
		st.Handlers = append(st.Handlers, packet.Handler{Sig: uint8(sig), PC: pc})
	}
	sort.Slice(st.Handlers, func(i, j int) bool { return st.Handlers[i].Sig < st.Handlers[j].Sig })
}

// exportEvent converts one rrlog entry to wire form.
func exportEvent(ev *Event) packet.Event {
	out := packet.Event{Kind: uint8(ev.Kind)}
	switch ev.Kind {
	case EvSyscall:
		rec := ev.Syscall
		out.Syscall = &packet.SyscallEvent{
			Nr:            uint16(rec.Info.Nr),
			Args:          rec.Info.Args,
			Class:         uint8(rec.Class),
			In:            exportRegions(rec.In),
			Ret:           rec.Ret,
			Out:           exportRegions(rec.Out),
			MmapFixedAddr: rec.MmapFixedAddr,
		}
	case EvNondet:
		out.Nondet = &packet.NondetEvent{PC: ev.Nondet.PC, Value: ev.Nondet.Value}
	case EvSignalInternal, EvSignalExternal:
		rec := ev.Signal
		out.Signal = &packet.SignalEvent{
			Sig:   uint8(rec.Sig),
			PC:    rec.PC,
			Point: packet.ExecPoint{Branches: rec.Point.Branches, PC: rec.Point.PC},
			Fatal: rec.Fatal,
		}
	}
	return out
}

func exportRegions(rs []RegionData) []packet.Region {
	if len(rs) == 0 {
		return nil
	}
	out := make([]packet.Region, 0, len(rs))
	for _, r := range rs {
		out = append(out, packet.Region{Addr: r.Addr, Data: r.Data})
	}
	return out
}
