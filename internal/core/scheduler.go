package core

import (
	"parallaft/internal/machine"
	"parallaft/internal/trace"
)

// scheduler is the checker scheduler and pacer (§4.5). It places checker
// replicas on the little-core pool, migrates the oldest checker to a big
// core when the pool is exhausted (so the newest can start, fig. 4), queues
// checkers when every core is busy, and scales the little cores' DVFS point
// so their combined throughput just keeps up with the main execution.
type scheduler struct {
	r       *Runtime
	littles []*machine.Core
	bigs    []*machine.Core // big cores available to checkers (not the main's)

	occ   map[int]*replica // core ID -> running checker replica
	queue []*replica

	// DVFS controller state: EWMAs of segment durations.
	ewmaCheckerNorm float64 // checker time per segment, normalised to fmax
	ewmaMainNs      float64
	boundaryCount   int
	lastMigration   int // boundary index of the most recent migration
}

func newScheduler(r *Runtime) *scheduler {
	s := &scheduler{r: r, occ: make(map[int]*replica), lastMigration: -100}
	for _, c := range r.e.M.LittleCores() {
		s.littles = append(s.littles, c)
	}
	for _, c := range r.e.M.BigCores() {
		if c != r.mainCore {
			s.bigs = append(s.bigs, c)
		}
	}
	return s
}

func (s *scheduler) pool() []*machine.Core {
	if s.r.cfg.CheckersOnBig {
		return s.bigs
	}
	return s.littles
}

func (s *scheduler) freeCore(cores []*machine.Core) *machine.Core {
	for _, c := range cores {
		if s.occ[c.ID] == nil {
			return c
		}
	}
	return nil
}

// place assigns a newly forked checker replica to a core, migrating or
// queueing if necessary. A "bigcore"-diversity replica tries the big pool
// first (Döbel-style resource-aware placement: the diverse replica's demand
// is pinned to the other core type).
func (s *scheduler) place(rep *replica, nowNs float64) {
	if rep.preferBig {
		if big := s.freeCore(s.bigs); big != nil {
			s.assign(rep, big, nowNs)
			return
		}
	}
	if c := s.freeCore(s.pool()); c != nil {
		s.assign(rep, c, nowNs)
		return
	}
	if len(s.pool()) == 0 {
		// A machine with no little cores degenerates to big-core placement:
		// with an empty pool there is never a migration victim, so without
		// this fallback every checker would queue forever.
		if big := s.freeCore(s.bigs); big != nil {
			s.assign(rep, big, nowNs)
			return
		}
	}
	if s.r.cfg.EnableMigration && !s.r.cfg.CheckersOnBig {
		if big := s.freeCore(s.bigs); big != nil {
			victim := s.pickMigrationVictim()
			if victim != nil {
				s.migrate(victim, big)
				s.r.stats.Migrations++
				s.r.tm.migrations.Inc()
				s.lastMigration = s.boundaryCount
				// Checkers are falling behind: run the pool flat out.
				s.setLittleFreqMax()
				if c := s.freeCore(s.littles); c != nil {
					s.assign(rep, c, nowNs)
					return
				}
			}
		}
	}
	rep.queued = true
	s.r.stats.Queued++
	s.r.tm.queued.Inc()
	s.r.cfg.Trace.Emit(nowNs, trace.Queue, rep.seg.Index, "no core free")
	s.queue = append(s.queue, rep)
}

// pickMigrationVictim selects which running little-core checker to move:
// the oldest by default (§4.5), the newest under the footnote-11 ablation.
func (s *scheduler) pickMigrationVictim() *replica {
	var victim *replica
	for _, c := range s.littles {
		rep := s.occ[c.ID]
		if rep == nil {
			continue
		}
		if victim == nil ||
			(!s.r.cfg.MigrateNewest && rep.seg.Index < victim.seg.Index) ||
			(s.r.cfg.MigrateNewest && rep.seg.Index > victim.seg.Index) {
			victim = rep
		}
	}
	return victim
}

func (s *scheduler) assign(rep *replica, c *machine.Core, nowNs float64) {
	start := nowNs
	if rep.forkNs > start {
		start = rep.forkNs
	}
	rep.Task = s.r.e.NewTask(rep.Checker, c, start)
	rep.onBig = c.Kind == machine.Big
	rep.queued = false
	s.occ[c.ID] = rep
}

// migrate moves a running checker to another core (its clock is
// continuous; the destination cache is cold, so the cost emerges from the
// cache model rather than being scripted). A big core hosting a checker
// runs one DVFS point below maximum: the checker only has to keep up with
// the main, not outrun it, and the paper's energy numbers depend on not
// burning peak big-core power on verification (§4.5).
func (s *scheduler) migrate(rep *replica, to *machine.Core) {
	if rep.Task == nil {
		return
	}
	from := rep.Task.Core
	delete(s.occ, from.ID)
	rep.Task.Core = to
	rep.onBig = to.Kind == machine.Big
	to.SetFreqIndex(len(to.Ladder) - 2)
	s.occ[to.ID] = rep
	s.r.cfg.Trace.Emit(rep.Task.Clock, trace.Migrate, rep.seg.Index, "core %d (%s) -> core %d (%s)", from.ID, from.Kind, to.ID, to.Kind)
}

// drop removes every replica of a segment from all scheduler structures
// (rollback and forward-repair teardown).
func (s *scheduler) drop(seg *Segment) {
	for id, occ := range s.occ {
		if occ.seg == seg {
			delete(s.occ, id)
		}
	}
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.seg != seg {
			kept = append(kept, q)
		}
	}
	s.queue = kept
}

// onCheckerDone releases the replica's core and dispatches a queued checker
// onto it. Idempotent: a second call for the same replica is a no-op (its
// core has moved on).
func (s *scheduler) onCheckerDone(rep *replica) {
	if rep.Task == nil {
		return
	}
	core := rep.Task.Core
	if s.occ[core.ID] != rep {
		return
	}
	delete(s.occ, core.ID)
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.assign(next, core, rep.doneNs)
	}
}

// kick dispatches queued checkers onto any free cores (recovery paths free
// cores outside the normal completion flow).
func (s *scheduler) kick(nowNs float64) {
	for len(s.queue) > 0 {
		c := s.freeCore(s.pool())
		if c == nil {
			return
		}
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.assign(next, c, nowNs)
	}
}

// onBoundary runs the DVFS pacer (§4.5): pick the lowest little-core
// operating point whose aggregate throughput still keeps the checkers
// abreast of the main execution. Standard governors would pin the
// compute-bound checkers at maximum frequency (footnote 10); the pacer
// instead uses the known main-vs-checker segment durations.
func (s *scheduler) onBoundary() {
	r := s.r
	s.boundaryCount++
	if len(r.segments) == 0 {
		return
	}

	// Update the EWMAs from the most recently sealed segment, skipping
	// micro-segments created by file-mmap splits, which would poison the
	// duration estimate.
	const alpha = 0.4
	var latest *Segment
	for _, seg := range r.segments {
		if seg.sealed && (latest == nil || seg.Index > latest.Index) {
			latest = seg
		}
	}
	minSegNs := 0.02 * r.cfg.SlicePeriodCycles / s.refMaxGHz()
	if latest != nil && latest.mainEndNs-latest.mainStartNs > minSegNs {
		mainNs := latest.mainEndNs - latest.mainStartNs
		if s.ewmaMainNs == 0 {
			s.ewmaMainNs = mainNs
		} else {
			s.ewmaMainNs = alpha*mainNs + (1-alpha)*s.ewmaMainNs
		}
	}

	if !r.cfg.EnableDVFS || r.cfg.CheckersOnBig || len(s.littles) == 0 {
		return
	}

	// Falling behind, recently migrated, or queueing? Run flat out and
	// wait for things to settle before scaling down again (hysteresis
	// prevents the downscale-migrate oscillation).
	if len(s.queue) > 0 || s.anyOnBig() || s.boundaryCount-s.lastMigration < 8 {
		s.setLittleFreqMax()
		return
	}
	if s.ewmaCheckerNorm == 0 || s.ewmaMainNs == 0 {
		return
	}

	// Required frequency: checkerNorm * fmax / f <= headroom * nLittle * mainNs.
	const headroom = 0.8
	fmax := s.littles[0].MaxGHz()
	need := fmax * s.ewmaCheckerNorm / (headroom * float64(len(s.littles)) * s.ewmaMainNs)
	idx := len(s.littles[0].Ladder) - 1
	for i, pt := range s.littles[0].Ladder {
		if pt.GHz >= need {
			idx = i
			break
		}
	}
	s.setLittleFreqIdx(idx)
}

// observeCheckerDone feeds the pacer's checker-duration estimate; called
// when a checker replica reaches its end point.
func (s *scheduler) observeCheckerDone(rep *replica) {
	if rep.onBig || rep.Task == nil {
		return
	}
	dur := rep.doneNs - rep.startNs
	if dur <= 0 {
		return
	}
	// Normalise to the little cores' maximum frequency (compute-bound
	// approximation: time scales inversely with frequency).
	c := rep.Task.Core
	norm := dur * c.FreqGHz() / c.MaxGHz()
	const alpha = 0.4
	if s.ewmaCheckerNorm == 0 {
		s.ewmaCheckerNorm = norm
	} else {
		s.ewmaCheckerNorm = alpha*norm + (1-alpha)*s.ewmaCheckerNorm
	}
}

func (s *scheduler) anyOnBig() bool {
	for _, c := range s.bigs {
		if s.occ[c.ID] != nil {
			return true
		}
	}
	return false
}

// refMaxGHz is the reference frequency for normalising segment durations:
// the little cores' fmax, or the main core's on a machine without a little
// pool (the pacer is inert there, but the EWMA filter still needs a scale).
func (s *scheduler) refMaxGHz() float64 {
	if len(s.littles) > 0 {
		return s.littles[0].MaxGHz()
	}
	return s.r.mainCore.MaxGHz()
}

// setLittleFreqMax runs the little pool flat out; a no-op on machines
// without little cores.
func (s *scheduler) setLittleFreqMax() {
	if len(s.littles) == 0 {
		return
	}
	s.setLittleFreqIdx(len(s.littles[0].Ladder) - 1)
}

func (s *scheduler) setLittleFreqIdx(idx int) {
	if len(s.littles) > 0 && s.littles[0].FreqIndex() != idx {
		s.r.tm.dvfsChanges.Inc()
		s.r.cfg.Trace.Emit(s.r.mainTask.Clock, trace.DVFS, -1, "little cores -> %.1f GHz", s.littles[0].Ladder[clampIdx(idx, len(s.littles[0].Ladder))].GHz)
	}
	for _, c := range s.littles {
		c.SetFreqIndex(idx)
	}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// onMainExit migrates still-running checkers to free big cores so the
// whole-program execution finishes quickly (§4.5), and runs the remaining
// little-core checkers flat out.
func (s *scheduler) onMainExit() {
	if !s.r.cfg.EnableMigration || s.r.cfg.CheckersOnBig {
		return
	}
	for _, lc := range s.littles {
		rep := s.occ[lc.ID]
		if rep == nil {
			continue
		}
		big := s.freeCore(s.bigs)
		if big == nil {
			break
		}
		s.migrate(rep, big)
		s.r.stats.ExitMigrated++
		s.r.tm.exitMigrations.Inc()
	}
	s.setLittleFreqMax()
}
