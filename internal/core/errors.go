// Package core implements Parallaft: the heterogeneous parallel
// error-detection runtime that is the paper's contribution.
//
// Parallaft supervises a main process, slices its execution into segments
// (§4.1), forks a copy-on-write checkpoint and checker at each boundary
// (§3.1), records the segment's interactions (syscalls §4.3.1–4.3.2,
// signals §4.3.3, nondeterministic instructions §4.3.4) and its end
// execution point (§4.2), replays each segment on a little core, and
// compares registers and dirty-page hashes against the next checkpoint
// (§4.4). A checker scheduler and pacer migrates checkers to big cores when
// little cores are exhausted and scales little-core frequency for energy
// (§4.5).
//
// The RAFT baseline of the evaluation is, exactly as in §5.1, this same
// runtime reconfigured: no periodic slicing (one segment for the whole
// program), checkers on big cores, and no end-of-segment state comparison.
package core

import (
	"fmt"

	"parallaft/internal/proc"
)

// ErrorKind classifies how a divergence was detected.
type ErrorKind uint8

// Detection kinds.
const (
	// ErrSyscallMismatch: the checker issued a different syscall (number,
	// arguments, or input data) than the main recorded.
	ErrSyscallMismatch ErrorKind = iota
	// ErrEventOrderMismatch: the checker produced a traced event (syscall,
	// nondet instruction, fault) where the record expected a different
	// event kind.
	ErrEventOrderMismatch
	// ErrRegMismatch: registers differ at the segment-end comparison.
	ErrRegMismatch
	// ErrMemMismatch: a dirty page's hash differs at the segment-end
	// comparison.
	ErrMemMismatch
	// ErrStructuralMismatch: the address-space shapes differ at the
	// comparison (a page mapped on one side only).
	ErrStructuralMismatch
	// ErrCheckerException: the checker took a fault the main did not.
	ErrCheckerException
	// ErrCheckerTimeout: the checker exceeded the instruction budget
	// derived from the main's (noisy) instruction count × the timeout
	// scale (§4.2.2), e.g. because an error sent it into a loop that never
	// reaches the target PC.
	ErrCheckerTimeout
	// ErrExecPointOverrun: the checker ran past the target branch count,
	// which the skid buffer should prevent (§4.2.2, footnote 6); observed
	// only in the no-skid-buffer ablation or under injected faults.
	ErrExecPointOverrun
	// ErrCheckerExited: the checker exited or was killed mid-segment where
	// the main did not.
	ErrCheckerExited
)

// String names the error kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrSyscallMismatch:
		return "syscall-mismatch"
	case ErrEventOrderMismatch:
		return "event-order-mismatch"
	case ErrRegMismatch:
		return "register-mismatch"
	case ErrMemMismatch:
		return "memory-hash-mismatch"
	case ErrStructuralMismatch:
		return "structural-mismatch"
	case ErrCheckerException:
		return "checker-exception"
	case ErrCheckerTimeout:
		return "checker-timeout"
	case ErrExecPointOverrun:
		return "exec-point-overrun"
	case ErrCheckerExited:
		return "checker-exited"
	}
	return fmt.Sprintf("error-kind(%d)", uint8(k))
}

// DetectedError is a divergence flagged by Parallaft. In response the
// runtime terminates the application and reports the mismatch (§4.4).
type DetectedError struct {
	Kind    ErrorKind
	Segment int
	Detail  string
	Sig     proc.Signal // for ErrCheckerException
}

// Error implements the error interface.
func (d *DetectedError) Error() string {
	return fmt.Sprintf("parallaft: segment %d: %s: %s", d.Segment, d.Kind, d.Detail)
}

// IsException reports whether the detection was via a checker exception,
// the fault-injection taxonomy's separately-counted special case of
// Detected (§5.6).
func (d *DetectedError) IsException() bool { return d.Kind == ErrCheckerException }

// IsTimeout reports whether the detection was via the instruction-budget
// timeout (§5.6's Timeout class).
func (d *DetectedError) IsTimeout() bool { return d.Kind == ErrCheckerTimeout }
