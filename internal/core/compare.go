package core

import (
	"fmt"
	"math"

	"parallaft/internal/hashx"
	"parallaft/internal/mem"
	"parallaft/internal/proc"
	"parallaft/internal/trace"
)

// hashSeed seeds the page hashes; any fixed value works, it only needs to
// be identical on both sides.
const hashSeed = 0x9a7a11af7

// compareSegment compares the checker's end state against the segment-end
// checkpoint (§4.4): registers plus the hashes of every page modified
// during the segment on either side. On mismatch the application is
// terminated with a DetectedError.
//
// The dirty set is the union of the main-side modified pages (frame diff
// between consecutive checkpoints, or inherited soft-dirty bits, depending
// on Config.Tracking) and the checker-side modified pages, so a checker
// that erroneously wrote pages the main never touched is still caught.
func (r *Runtime) compareSegment(seg *Segment) {
	defer func() {
		if r.detected != nil && r.cfg.EnableRecovery && r.detected.Segment == seg.Index {
			// Leave the segment live: recovery needs its checkpoints and
			// record for arbitration and possible rollback.
			return
		}
		seg.compared = true
		r.stats.Segments = append(r.stats.Segments, SegmentStat{
			Index:        seg.Index,
			MainNs:       seg.mainEndNs - seg.mainStartNs,
			CheckerNs:    seg.doneNs - seg.startNs,
			CheckerOnBig: seg.bigNs > 0,
			BigNs:        seg.bigNs,
			LittleNs:     seg.littleNs,
			Events:       len(seg.Log.Events),
		})
		r.stats.CheckerBigNs += seg.bigNs
		r.stats.CheckerLittleNs += seg.littleNs
		r.stats.CheckerBigInstrs += seg.bigInstrs
		r.stats.CheckerLittleInstrs += seg.littleInstrs
		if seg.bigNs > 0 {
			r.stats.SegmentsOnBig++
		}
		r.retireSegment(seg)

		// Un-stall the main: the wall time it spent gated (live-segment
		// bound or containment barrier) elapses until this comparison
		// finished.
		if r.mainStalled && !r.main.Exited && !r.mainBlocked() {
			if r.mainTask.Clock < seg.compareNs {
				r.stats.MainStallNs += seg.compareNs - r.mainTask.Clock
				r.mainTask.Clock = seg.compareNs
			}
			r.mainStalled = false
		}
	}()

	if !r.cfg.CompareStates {
		// RAFT model (§5.1): no state comparison at segment ends.
		seg.compareNs = seg.doneNs
		if seg.compareNs > r.maxCompareNs {
			r.maxCompareNs = seg.compareNs
		}
		return
	}

	result := r.compareAgainstEndCP(seg, seg.Checker)
	if result.err != nil {
		r.fail(seg.Index, result.err.Kind, "%s", result.err.Detail)
	}
	verdict := "ok"
	if result.err != nil {
		verdict = result.err.Kind.String()
	}
	r.cfg.Trace.Emit(seg.doneNs, trace.Compare, seg.Index, "%d dirty pages, %s", result.dirtyPages, verdict)
	r.stats.DirtyPagesHashed += result.dirtyPages
	r.stats.BytesHashed += result.hashedBytes
	hashedBytes := result.hashedBytes

	// The comparison can only start once both the checker has finished and
	// the end checkpoint exists (the later of the two times).
	hashNs := float64(hashedBytes) * r.cfg.HashByteNs
	start := seg.doneNs
	if seg.mainEndNs > start {
		start = seg.mainEndNs
	}
	seg.compareNs = start + hashNs
	if seg.compareNs > r.maxCompareNs {
		r.maxCompareNs = seg.compareNs
	}
	// Energy for the injected hashers, charged to the checker's last core.
	if seg.Task != nil {
		seg.Task.Core.AccountActive(hashNs)
	}
}

// compareResult carries the outcome of one state comparison.
type compareResult struct {
	err         *DetectedError
	dirtyPages  uint64
	hashedBytes uint64
}

// compareAgainstEndCP compares an arbitrary process (the segment's checker,
// or an arbitration referee during recovery) against the segment's end
// checkpoint: registers, PC, and the hashes of every page modified on
// either side (§4.4).
func (r *Runtime) compareAgainstEndCP(seg *Segment, chk *proc.Process) compareResult {
	ref := seg.EndCP.p
	var res compareResult
	mismatch := func(kind ErrorKind, format string, args ...any) {
		if res.err == nil {
			res.err = &DetectedError{Kind: kind, Segment: seg.Index,
				Detail: fmt.Sprintf(format, args...)}
		}
	}

	// Registers (and the PC, which exec-point replay already pinned).
	if !chk.Regs.Equal(&ref.Regs) {
		mismatch(ErrRegMismatch, "registers differ at segment end (checker/checkpoint):%s",
			chk.Regs.Diff(&ref.Regs))
	}
	if chk.PC != ref.PC {
		mismatch(ErrRegMismatch, "pc %d differs from checkpoint pc %d", chk.PC, ref.PC)
	}

	// Dirty-page discovery.
	var mainDirty []uint64
	if r.cfg.CompareFullMemory {
		mainDirty = allVPNs(ref.AS)
	} else {
		switch r.cfg.Tracking {
		case TrackFrameDiff:
			mainDirty = mem.DiffFrames(seg.StartCP.p.AS, ref.AS)
		case TrackSoftDirty:
			mainDirty = ref.AS.DirtyPages(mem.DirtySoft)
		}
	}
	chkDirty := chk.AS.DirtyPages(r.cfg.checkerDirtyMode())
	dirty := unionVPNs(mainDirty, chkDirty)
	res.dirtyPages = uint64(len(dirty))

	// Hash and compare page contents. The hashing is modelled as injected
	// code running in the two target processes (§4.4), so its cost lands
	// on the comparison path, not the main's.
	for _, vpn := range dirty {
		refPage := ref.AS.PageData(vpn)
		chkPage := chk.AS.PageData(vpn)
		switch {
		case refPage == nil && chkPage == nil:
			// e.g. both sides unmapped the page during the segment
		case refPage == nil || chkPage == nil:
			mismatch(ErrStructuralMismatch, "page %#x mapped on only one side", vpn)
		default:
			res.hashedBytes += uint64(len(refPage)) * 2
			if hashx.Sum64(hashSeed, refPage) != hashx.Sum64(hashSeed, chkPage) {
				mismatch(ErrMemMismatch, "page %#x content hash differs", vpn)
			}
		}
	}
	return res
}

// retireSegment releases the segment's resources once compared: checker
// process, checkpoint references, and its entry in the live list.
func (r *Runtime) retireSegment(seg *Segment) {
	if seg.Task != nil {
		r.e.Retire(seg.Task)
	}
	if seg.Checker != nil {
		r.e.L.Reap(seg.Checker)
		r.e.M.Caches.FlushASID(seg.Checker.ASID)
	}
	r.releaseCP(seg.StartCP)
	r.releaseCP(seg.EndCP)
	for i, s := range r.segments {
		if s == seg {
			r.segments = append(r.segments[:i], r.segments[i+1:]...)
			break
		}
	}
}

// allVPNs lists every mapped page (the full-memory-comparison ablation).
func allVPNs(as *mem.AddressSpace) []uint64 {
	var out []uint64
	for _, v := range as.VMAs() {
		for vpn := v.Base / as.PageSize(); vpn < v.End()/as.PageSize(); vpn++ {
			out = append(out, vpn)
		}
	}
	return out
}

// finish drains remaining segments, computes wall times and energy, and
// fills the stats block.
func (r *Runtime) finish() {
	mainWall := r.mainTask.Clock
	allWall := mainWall

	// Drain remaining checkers (last-checker sync, §5.2.1). On detection
	// the application is terminated instead, mirroring §4.4.
	for r.detected == nil {
		var seg *Segment
		for _, s := range r.segments {
			if s.Task != nil && !s.compared && !s.Checker.Exited && s.phase != phaseReached && !s.waiting {
				if seg == nil || s.Task.Clock < seg.Task.Clock {
					seg = s
				}
			}
		}
		if seg == nil {
			break
		}
		r.stepChecker(seg)
	}

	for _, s := range append([]*Segment(nil), r.segments...) {
		if r.detected != nil {
			break
		}
		if !s.compared && s.phase == phaseReached {
			r.compareSegment(s)
		}
	}

	if r.maxCompareNs > allWall {
		allWall = r.maxCompareNs
	}

	r.stats.Detected = r.detected
	r.stats.AllWallNs = allWall
	r.stats.MainWallNs = mainWall
	if r.main != nil {
		r.stats.MainUserNs = r.main.UserNs
		r.stats.MainSysNs = r.main.SysNs
		r.stats.ExitCode = r.main.ExitCode
		r.stats.KilledBy = r.main.KilledBy
		r.stats.Stdout = append([]byte(nil), r.e.K.Stdout(r.main.PID)...)
		st := r.main.AS.Stats()
		r.stats.COWCopies = st.COWCopies
		r.stats.COWBytes = st.COWBytes
	}
	if r.stats.pssSamples > 0 {
		r.stats.AvgPSSBytes = r.stats.pssAccum / float64(r.stats.pssSamples)
	}
	r.stats.EnergyJ = r.e.M.EnergyJ(allWall)
	if math.IsNaN(r.stats.EnergyJ) {
		r.stats.EnergyJ = 0
	}
}
