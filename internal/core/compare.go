package core

import (
	"fmt"
	"math"

	"parallaft/internal/compare"
	"parallaft/internal/machine"
	"parallaft/internal/proc"
	"parallaft/internal/telemetry"
	"parallaft/internal/trace"
)

// hashSeed seeds the page hashes; any fixed value works, it only needs to
// be identical on both sides.
const hashSeed = 0x9a7a11af7

// compareSegment compares the checker's end state against the segment-end
// checkpoint (§4.4): registers plus the hashes of every page modified
// during the segment on either side. On mismatch the application is
// terminated with a DetectedError.
//
// The memory comparison itself — dirty-set discovery, frame-identity
// shortcuts, memoized hashing — lives in internal/compare; this side owns
// the simulated accounting: the injected hashers' time and energy are
// charged from compare's HashedBytes book, which is independent of any
// host-side shortcut the subsystem took.
func (r *Runtime) compareSegment(seg *Segment) {
	rep := seg.chk()
	var dirtyPages uint64
	defer func() {
		if r.detected != nil && r.cfg.EnableRecovery && r.detected.Segment == seg.Index {
			// Leave the segment live: recovery needs its checkpoints and
			// record for arbitration and possible rollback.
			return
		}
		seg.compared = true
		r.stats.Segments = append(r.stats.Segments, SegmentStat{
			Index:        seg.Index,
			MainNs:       seg.mainEndNs - seg.mainStartNs,
			CheckerNs:    rep.doneNs - rep.startNs,
			CheckerOnBig: rep.bigNs > 0,
			BigNs:        rep.bigNs,
			LittleNs:     rep.littleNs,
			Events:       len(seg.Log.Events),
			DirtyPages:   int(dirtyPages),
		})
		r.stats.CheckerBigNs += rep.bigNs
		r.stats.CheckerLittleNs += rep.littleNs
		r.stats.CheckerBigInstrs += rep.bigInstrs
		r.stats.CheckerLittleInstrs += rep.littleInstrs
		if rep.bigNs > 0 {
			r.stats.SegmentsOnBig++
		}
		r.retireSegment(seg)
		r.tm.segRetired.Inc()
		r.observeLiveSegments()
		outcome := telemetry.OutcomeRetired
		if r.detected != nil && r.detected.Segment == seg.Index {
			outcome = telemetry.OutcomeDetected
		}
		r.emitSpan(seg, outcome, seg.compareNs)
		r.unstallMain(seg.compareNs)
	}()

	if !r.cfg.CompareStates {
		// RAFT model (§5.1): no state comparison at segment ends.
		seg.compareNs = rep.doneNs
		if seg.compareNs > r.maxCompareNs {
			r.maxCompareNs = seg.compareNs
		}
		return
	}

	result := r.compareAgainstEndCP(seg, rep.Checker)
	dirtyPages = result.dirtyPages
	seg.dirtyPages = result.dirtyPages
	if result.err != nil {
		r.fail(seg.Index, result.err.Kind, "%s", result.err.Detail)
	}
	verdict := "ok"
	if result.err != nil {
		verdict = result.err.Kind.String()
	}
	r.cfg.Trace.Emit(rep.doneNs, trace.Compare, seg.Index,
		"%d dirty pages (%d identity-skipped, %d hash-cache hits), %s",
		result.dirtyPages, result.identitySkips, result.cacheHits, verdict)
	r.stats.DirtyPagesHashed += result.dirtyPages
	r.stats.BytesHashed += result.hashedBytes
	r.stats.IdentitySkips += result.identitySkips
	r.stats.HashCacheHits += result.cacheHits
	r.tm.identitySkips.Add(result.identitySkips)
	r.tm.hashCacheHits.Add(result.cacheHits)
	r.tm.hashBytes.Observe(float64(result.hashedBytes))
	r.tm.dirtyPages.Observe(float64(result.dirtyPages))
	hashedBytes := result.hashedBytes

	// The comparison can only start once both the checker has finished and
	// the end checkpoint exists (the later of the two times).
	hashNs := float64(hashedBytes) * r.cfg.HashByteNs
	start := rep.doneNs
	if seg.mainEndNs > start {
		start = seg.mainEndNs
	}
	seg.compareNs = start + hashNs
	if seg.compareNs > r.maxCompareNs {
		r.maxCompareNs = seg.compareNs
	}
	// Energy for the injected hashers, charged to the checker's last core.
	if rep.Task != nil {
		prevAct := rep.Task.Core.SetActivity(machine.ActCompare)
		rep.Task.Core.AccountActive(hashNs)
		rep.Task.Core.SetActivity(prevAct)
	}
}

// unstallMain lets a main gated on the live-segment bound (or a containment
// barrier) resume: the wall time it spent stalled elapses until the
// releasing comparison finished.
func (r *Runtime) unstallMain(untilNs float64) {
	if r.mainStalled && !r.main.Exited && !r.mainBlocked() {
		if r.mainTask.Clock < untilNs {
			r.stats.MainStallNs += untilNs - r.mainTask.Clock
			r.mainTask.Clock = untilNs
		}
		r.mainStalled = false
	}
}

// compareResult carries the outcome of one state comparison.
type compareResult struct {
	err           *DetectedError
	dirtyPages    uint64
	hashedBytes   uint64
	identitySkips uint64
	cacheHits     uint64
}

// compareRequest maps the runtime configuration onto a comparison request
// for the given reference/checker pair.
func (r *Runtime) compareRequest(seg *Segment, chk *proc.Process) compare.Request {
	req := compare.Request{
		Ref:         seg.EndCP.p.AS,
		Chk:         chk.AS,
		CheckerMode: r.cfg.checkerDirtyMode(),
		Seed:        hashSeed,
		Workers:     r.cfg.CompareWorkers,
	}
	switch {
	case r.cfg.CompareFullMemory:
		req.Discovery = compare.FullMemory
	case r.cfg.Tracking == TrackSoftDirty:
		req.Discovery = compare.SoftDirty
	default:
		req.Discovery = compare.FrameDiff
		req.Base = seg.StartCP.p.AS
	}
	return req
}

// compareAgainstEndCP compares an arbitrary process (the segment's checker,
// or an arbitration referee during recovery) against the segment's end
// checkpoint: registers, PC, and the hashes of every page modified on
// either side (§4.4). Registers are checked first, so a register mismatch
// wins over any memory mismatch, as before the comparison subsystem split.
func (r *Runtime) compareAgainstEndCP(seg *Segment, chk *proc.Process) compareResult {
	ref := seg.EndCP.p
	var res compareResult
	mismatch := func(kind ErrorKind, format string, args ...any) {
		if res.err == nil {
			res.err = &DetectedError{Kind: kind, Segment: seg.Index,
				Detail: fmt.Sprintf(format, args...)}
		}
	}

	// Registers (and the PC, which exec-point replay already pinned).
	if !chk.Regs.Equal(&ref.Regs) {
		mismatch(ErrRegMismatch, "registers differ at segment end (checker/checkpoint):%s",
			chk.Regs.Diff(&ref.Regs))
	}
	if chk.PC != ref.PC {
		mismatch(ErrRegMismatch, "pc %d differs from checkpoint pc %d", chk.PC, ref.PC)
	}

	cres := r.comparator.Run(r.compareRequest(seg, chk))
	res.dirtyPages = cres.DirtyPages
	res.hashedBytes = cres.HashedBytes
	res.identitySkips = cres.IdentitySkips
	res.cacheHits = cres.CacheHits
	if m := cres.Mismatch; m != nil {
		switch m.Kind {
		case compare.MismatchStructural:
			mismatch(ErrStructuralMismatch, "page %#x mapped on only one side", m.VPN)
		case compare.MismatchContent:
			mismatch(ErrMemMismatch, "page %#x content hash differs", m.VPN)
		}
	}
	return res
}

// retireSegment releases a compared segment's resources: checker process
// (including its cache footprint), checkpoint references, and its entry in
// the live list.
func (r *Runtime) retireSegment(seg *Segment) {
	r.releaseSegment(seg, true)
}

// releaseSegment is the shared retire/release path used by normal
// retirement and rollback teardown. flushASID controls whether the
// checker's cache footprint is flushed: retirement models the runtime
// cleaning up after a completed checker, while a rollback discards the
// machine state wholesale and charges no per-checker flush.
func (r *Runtime) releaseSegment(seg *Segment, flushASID bool) {
	for _, rep := range seg.Replicas {
		if rep.Task != nil {
			r.e.Retire(rep.Task)
		}
		if rep.Checker != nil && rep.Checker != r.main {
			r.e.L.Reap(rep.Checker)
			if flushASID {
				r.e.M.Caches.FlushASID(rep.Checker.ASID)
			}
		}
	}
	r.releaseCP(seg.StartCP)
	if seg.EndCP != nil {
		r.releaseCP(seg.EndCP)
	}
	r.removeSegment(seg)
}

// removeSegment unlinks seg from the live list in O(tail) without a
// search, keeping list order and every segment's position index intact.
func (r *Runtime) removeSegment(seg *Segment) {
	i := seg.pos
	if i < 0 || i >= len(r.segments) || r.segments[i] != seg {
		return // not on the live list (e.g. an arbitration shadow)
	}
	copy(r.segments[i:], r.segments[i+1:])
	r.segments[len(r.segments)-1] = nil
	r.segments = r.segments[:len(r.segments)-1]
	for j := i; j < len(r.segments); j++ {
		r.segments[j].pos = j
	}
	seg.pos = -1
}

// finish drains remaining segments, computes wall times and energy, and
// fills the stats block.
func (r *Runtime) finish() {
	mainWall := r.mainTask.Clock
	allWall := mainWall

	// Drain remaining checkers (last-checker sync, §5.2.1). On detection
	// the application is terminated instead, mirroring §4.4.
	for r.detected == nil {
		var pick *replica
		for _, s := range r.segments {
			if s.compared {
				continue
			}
			for _, rep := range s.Replicas {
				if rep.Task != nil && !rep.Checker.Exited && !rep.terminal() && !rep.waiting {
					if pick == nil || rep.Task.Clock < pick.Task.Clock {
						pick = rep
					}
				}
			}
		}
		if pick == nil {
			break
		}
		r.stepChecker(pick)
	}

	for _, s := range append([]*Segment(nil), r.segments...) {
		if r.detected != nil {
			break
		}
		if s.compared {
			continue
		}
		if len(s.Replicas) > 1 {
			r.maybeVote(s)
		} else if s.chk().phase == phaseReached {
			r.compareSegment(s)
		}
	}

	if r.maxCompareNs > allWall {
		allWall = r.maxCompareNs
	}

	r.stats.Detected = r.detected
	r.stats.AllWallNs = allWall
	r.stats.MainWallNs = mainWall
	if r.main != nil {
		r.stats.MainUserNs = r.main.UserNs
		r.stats.MainSysNs = r.main.SysNs
		r.stats.ExitCode = r.main.ExitCode
		r.stats.KilledBy = r.main.KilledBy
		r.stats.Stdout = append([]byte(nil), r.e.K.Stdout(r.main.PID)...)
		st := r.main.AS.Stats()
		r.stats.COWCopies = st.COWCopies
		r.stats.COWBytes = st.COWBytes
	}
	if r.stats.pssSamples > 0 {
		r.stats.AvgPSSBytes = r.stats.pssAccum / float64(r.stats.pssSamples)
	}
	r.stats.EnergyJ = r.e.M.EnergyJ(allWall)
	if math.IsNaN(r.stats.EnergyJ) {
		r.stats.EnergyJ = 0
	}
	r.cfg.Windows.Flush(allWall)
	r.cfg.Ledger.Finish(allWall, r.e.M)
}
