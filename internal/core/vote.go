package core

import (
	"fmt"

	"parallaft/internal/compare"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/telemetry"
	"parallaft/internal/trace"
)

// NMR majority voting (Config.Checkers > 1).
//
// The paper's design compares one checker against the segment-end
// checkpoint: a mismatch says *something* diverged, and recovery has to
// arbitrate by re-executing the segment before it knows which side to
// trust. With N replicas the segment end becomes an (N+1)-voter election —
// the N replicas plus the end checkpoint (the main's own claimed state) —
// and the verdict itself localises the fault:
//
//   - every voter agrees: the segment is verified (unanimous);
//   - the checkpoint keeps a majority: the dissenting replicas carried the
//     fault and are absorbed in place — a checker SEU costs one replica,
//     no re-execution, no rollback;
//   - a replica quorum agrees *against* the checkpoint: the main carried
//     the fault, and the agreed replica state is the correct segment-end
//     state — the main is repaired forward by forking it from that state,
//     no rollback;
//   - no quorum: fall back to the pairwise detection path (and, when
//     recovery is enabled, arbitration/rollback).
//
// The vote is only meaningful over a state comparison, so NewRuntime
// rejects Checkers > 1 without CompareStates.

// maybeVote runs the segment's majority vote once it is ready: sealed with
// an end checkpoint, and every replica terminal (reached the end point or
// dissented during replay). Called from every point where one of those
// conditions can become true.
func (r *Runtime) maybeVote(seg *Segment) {
	if seg.compared || seg.voted || seg.arb || !seg.sealed || seg.EndCP == nil {
		return
	}
	for _, rep := range seg.Replicas {
		if !rep.terminal() {
			return
		}
	}
	seg.voted = true
	r.voteSegment(seg)
}

// voteSegment runs the (N+1)-voter majority decision and acts on the
// verdict. The accounting mirrors compareSegment: simulated hash time and
// energy are charged from the vote's summed HashedBytes book, independent
// of host-side shortcuts.
func (r *Runtime) voteSegment(seg *Segment) {
	ref := seg.EndCP.p
	req := compare.VoteRequest{
		Ref:         ref.AS,
		CheckerMode: r.cfg.checkerDirtyMode(),
		Seed:        hashSeed,
		Workers:     r.cfg.CompareWorkers,
	}
	switch {
	case r.cfg.CompareFullMemory:
		req.Discovery = compare.FullMemory
	case r.cfg.Tracking == TrackSoftDirty:
		req.Discovery = compare.SoftDirty
	default:
		req.Discovery = compare.FrameDiff
		req.Base = seg.StartCP.p.AS
	}
	for _, rep := range seg.Replicas {
		if rep.failed != nil {
			req.Replicas = append(req.Replicas, nil) // dissented during replay
			continue
		}
		req.Replicas = append(req.Replicas, rep.Checker.AS)
	}
	req.RegsAgreeRef = func(i int) bool {
		c := seg.Replicas[i].Checker
		return c.Regs.Equal(&ref.Regs) && c.PC == ref.PC
	}
	req.RegsAgreePair = func(i, j int) bool {
		a, b := seg.Replicas[i].Checker, seg.Replicas[j].Checker
		return a.Regs.Equal(&b.Regs) && a.PC == b.PC
	}
	vres := r.voter.Vote(req)

	seg.dirtyPages = vres.DirtyPages
	r.stats.DirtyPagesHashed += vres.DirtyPages
	r.stats.BytesHashed += vres.HashedBytes
	r.stats.IdentitySkips += vres.IdentitySkips
	r.stats.HashCacheHits += vres.CacheHits
	r.tm.identitySkips.Add(vres.IdentitySkips)
	r.tm.hashCacheHits.Add(vres.CacheHits)
	r.tm.hashBytes.Observe(float64(vres.HashedBytes))
	r.tm.dirtyPages.Observe(float64(vres.DirtyPages))

	// The vote starts once the last replica is terminal and the end
	// checkpoint exists, then the injected hashers run over every
	// comparison the quorum search needed.
	hashNs := float64(vres.HashedBytes) * r.cfg.HashByteNs
	start := seg.checkerDoneNs()
	if seg.mainEndNs > start {
		start = seg.mainEndNs
	}
	seg.compareNs = start + hashNs
	if seg.compareNs > r.maxCompareNs {
		r.maxCompareNs = seg.compareNs
	}
	// Energy for the injected hashers, charged to the first replica's core.
	for _, rep := range seg.Replicas {
		if rep.Task != nil {
			prevAct := rep.Task.Core.SetActivity(machine.ActVote)
			rep.Task.Core.AccountActive(hashNs)
			rep.Task.Core.SetActivity(prevAct)
			break
		}
	}

	r.cfg.Trace.Emit(seg.compareNs, trace.Vote, seg.Index,
		"%s: %d voters, %d dissenter(s), %d dirty pages",
		vres.Verdict, len(seg.Replicas)+1, len(vres.Dissenters), vres.DirtyPages)

	switch vres.Verdict {
	case compare.VerdictUnanimous:
		r.stats.VoteUnanimous++
		r.tm.voteUnanimous.Inc()
		r.retireVoted(seg, telemetry.OutcomeRetired)

	case compare.VerdictAbsorb:
		// The checkpoint side kept its majority: the dissenters carried the
		// fault. Absorb them in place — the segment is verified by quorum,
		// no arbitration, no rollback charged.
		r.stats.VoteAbsorbed += len(vres.Dissenters)
		r.tm.voteAbsorbed.Add(uint64(len(vres.Dissenters)))
		r.retireVoted(seg, telemetry.OutcomeRetired)

	case compare.VerdictOutvoteRef:
		// A replica quorum agrees against the end checkpoint: the main
		// carried the fault. Repair it forward from the agreed state.
		r.stats.VoteOutvotedReplicas++
		r.tm.voteOutvoted.Inc()
		if r.forwardRepair(seg, seg.Replicas[vres.AgreedReplica]) {
			r.retireVoted(seg, telemetry.OutcomeForwardRepaired)
			return
		}
		r.voteDetect(seg, &vres)
		r.settleVoteDetection(seg)

	case compare.VerdictNoQuorum:
		r.stats.VoteNoQuorum++
		r.tm.voteNoQuorum.Inc()
		// Black-box moment: no majority means no trustworthy state. Note it
		// and dump the flight ring so the post-mortem sees the lead-up.
		r.cfg.Flight.Note("no-quorum",
			fmt.Sprintf("%s seg %d: %d replicas, no majority", r.main.Name, seg.Index, len(seg.Replicas)))
		r.cfg.Flight.DumpToDir("main", "no-quorum", r.cfg.Metrics)
		r.voteDetect(seg, &vres)
		r.settleVoteDetection(seg)
	}
}

// voteDetect raises the global detection for a vote that found no
// trustworthy state. A replica's own replay divergence is preferred — it
// names the event that went wrong, which a state diff cannot.
func (r *Runtime) voteDetect(seg *Segment, vres *compare.VoteResult) {
	for _, rep := range seg.Replicas {
		if d := rep.failed; d != nil {
			if d.Kind == ErrCheckerException {
				r.failSig(seg.Index, d.Sig, "replica %d: %s", rep.idx, d.Detail)
			} else {
				r.fail(seg.Index, d.Kind, "replica %d: %s", rep.idx, d.Detail)
			}
			return
		}
	}
	if m := vres.RefMismatch; m != nil {
		switch m.Kind {
		case compare.MismatchStructural:
			r.fail(seg.Index, ErrStructuralMismatch,
				"page %#x mapped on only one side (replica %d vs end checkpoint)",
				m.VPN, vres.RefMismatchReplica)
		case compare.MismatchContent:
			r.fail(seg.Index, ErrMemMismatch,
				"page %#x content hash differs (replica %d vs end checkpoint)",
				m.VPN, vres.RefMismatchReplica)
		}
		return
	}
	r.fail(seg.Index, ErrRegMismatch,
		"replica registers differ from the end checkpoint with no quorum")
}

// settleVoteDetection decides what happens to a voted segment whose verdict
// raised a detection: recovery keeps it live for arbitration and possible
// rollback (exactly like the pairwise path), otherwise it retires as
// detected and the run terminates.
func (r *Runtime) settleVoteDetection(seg *Segment) {
	if r.detected != nil && r.cfg.EnableRecovery && r.detected.Segment == seg.Index {
		return // recovery needs the checkpoints and record
	}
	r.retireVoted(seg, telemetry.OutcomeDetected)
}

// retireVoted retires a voted segment: aggregate per-replica books into the
// segment stat, release every replica and checkpoint, and let a stalled
// main resume. The single-replica analogue is compareSegment's deferred
// retire block.
func (r *Runtime) retireVoted(seg *Segment, outcome string) {
	seg.compared = true
	r.stats.Segments = append(r.stats.Segments, SegmentStat{
		Index:        seg.Index,
		MainNs:       seg.mainEndNs - seg.mainStartNs,
		CheckerNs:    seg.checkerDoneNs() - seg.checkerStartNs(),
		CheckerOnBig: seg.sumBigNs() > 0,
		BigNs:        seg.sumBigNs(),
		LittleNs:     seg.sumLittleNs(),
		Events:       len(seg.Log.Events),
		DirtyPages:   int(seg.dirtyPages),
	})
	r.stats.CheckerBigNs += seg.sumBigNs()
	r.stats.CheckerLittleNs += seg.sumLittleNs()
	r.stats.CheckerBigInstrs += seg.sumBigInstrs()
	r.stats.CheckerLittleInstrs += seg.sumLittleInstrs()
	if seg.sumBigNs() > 0 {
		r.stats.SegmentsOnBig++
	}
	r.sched.drop(seg)
	r.retireSegment(seg)
	r.tm.segRetired.Inc()
	r.observeLiveSegments()
	r.emitSpan(seg, outcome, seg.compareNs)
	r.unstallMain(seg.compareNs)
}

// forwardRepair replaces a faulty main with a fork of the agreed replica's
// segment-end state — forward recovery: instead of rolling back to the last
// verified checkpoint and re-executing, the quorum-verified state *ahead*
// of the fault is copied over the main and execution continues from there.
// The replica quorum plays the role arbitration plays in the pairwise
// design: it already proved which side is trustworthy, so no referee
// re-execution is needed and no rollback is charged.
//
// Segments newer than the repaired one descend from the faulty main state
// and are discarded; like a rollback, their already-escaped global syscall
// effects will escape again on re-execution (counted in ReexecutedEffects —
// the §3.4 containment caveat applies unchanged). Older live segments are
// unaffected: their records and checkpoints predate the fault and they keep
// verifying concurrently.
//
// Returns false — falling back to the detection path — when there is no
// main left to repair (the segment ends in program exit, so the disputed
// state is the final state) or the shared repair/rollback budget is
// exhausted (a permanent fault must terminate with a diagnosis, not loop).
func (r *Runtime) forwardRepair(seg *Segment, agreed *replica) bool {
	if seg.EndIsExit || r.main.Exited {
		return false
	}
	if r.stats.ForwardRepairs+r.stats.Rollbacks >= r.cfg.RecoveryMaxRollbacks {
		return false
	}

	// Wall time when the repair happens: everything observed so far,
	// including the vote that ordered it.
	wall := r.mainTask.Clock
	for _, s := range r.segments {
		for _, rep := range s.Replicas {
			if rep.Task != nil && rep.Task.Clock > wall {
				wall = rep.Task.Clock
			}
		}
	}
	if seg.compareNs > wall {
		wall = seg.compareNs
	}

	// Discard every segment newer than the repaired one.
	for _, s := range append([]*Segment(nil), r.segments...) {
		if s.Index <= seg.Index {
			continue
		}
		for _, ev := range s.Log.Events {
			if ev.Kind == EvSyscall && ev.Syscall.Class == oskernel.ClassGlobal {
				r.stats.ReexecutedEffects++
			}
		}
		r.sched.drop(s)
		r.releaseSegment(s, false)
		r.emitSpan(s, telemetry.OutcomeRollback, wall)
	}
	r.current = nil
	r.mainStalled = false

	// Replace the main with a fork of the agreed replica's end state. The
	// replicas replayed — never re-executed — the segment's global writes,
	// so the fork starts with an empty stdout buffer; the repaired main
	// inherits what the faulty main actually emitted.
	r.e.Retire(r.mainTask)
	oldMain := r.main
	r.main = r.e.L.Fork(agreed.Checker, "main-repaired")
	r.attachSampler(r.main, "main")
	r.e.K.AppendStdout(r.main.PID, r.e.K.Stdout(oldMain.PID))
	r.e.L.Reap(oldMain)
	r.mainTask = r.e.NewTask(r.main, r.mainCore, wall+r.cfg.tracerStopNs())
	r.stats.ForwardRepairs++
	r.tm.voteForwardRep.Inc()
	r.observeLiveSegments()
	r.cfg.Trace.Emit(wall, trace.ForwardRepair, seg.Index,
		"main repaired forward from replica %d's agreed segment-end state", agreed.idx)

	// Restart protection from the repaired state, carrying the segment's
	// retry count so a permanent fault cannot loop forever.
	recoveries := seg.recoveries
	r.startSegment()
	r.current.recoveries = recoveries
	return true
}
