package core

import (
	"strings"
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

// newTestEngine builds a fresh machine/kernel/engine stack for one run.
func newTestEngine(seed int64) *sim.Engine {
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, seed)
	l := oskernel.NewLoader(k, m.PageSize, seed)
	return sim.New(m, k, l)
}

// testProgram builds a program that loops long enough to produce several
// segments under a small slicing period, makes syscalls, touches memory,
// and reads nondeterministic state.
func testProgram(iters int64) *asm.Program {
	b := asm.NewBuilder("smoke")
	b.Space("buf", 64*1024)
	b.Bytes("msg", []byte("hello\n"))

	b.Label("start")
	b.MovI(1, 0)     // acc
	b.MovI(2, 0)     // i
	b.MovI(3, iters) // limit
	b.Addr(4, "buf") // base
	b.Label("loop")
	b.AndI(5, 2, 8191) // offset within buf (8 KiB window), 8-byte steps
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 65528)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")

	// A nondeterministic read the runtime must virtualise.
	b.Rdtsc(7)
	// getpid (non-effectful, replayed).
	b.MovI(0, int64(oskernel.SysGetPID))
	b.Syscall()
	// write (globally effectful: must appear exactly once).
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "msg")
	b.MovI(3, 6)
	b.Syscall()
	// exit with acc's low byte
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

func runProtected(t *testing.T, cfg Config, iters int64) *RunStats {
	t.Helper()
	e := newTestEngine(7)
	r := NewRuntime(e, cfg)
	stats, err := r.Run(testProgram(iters))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats
}

func TestParallaftCleanRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000 // force multiple segments
	stats := runProtected(t, cfg, 40_000)

	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if stats.Slices < 2 {
		t.Errorf("slices = %d, want >= 2 (program should span several segments)", stats.Slices)
	}
	if got := string(stats.Stdout); got != "hello\n" {
		t.Errorf("stdout = %q, want exactly one %q (duplicated IO means replay leaked)", got, "hello\n")
	}
	if stats.AllWallNs < stats.MainWallNs {
		t.Errorf("all wall %.0f < main wall %.0f", stats.AllWallNs, stats.MainWallNs)
	}
	if stats.SyscallsTraced != 3 {
		t.Errorf("syscalls traced = %d, want 3", stats.SyscallsTraced)
	}
	if stats.NondetTraced != 1 {
		t.Errorf("nondet traced = %d, want 1", stats.NondetTraced)
	}
	if stats.DirtyPagesHashed == 0 {
		t.Error("no dirty pages were hashed")
	}
}

func TestParallaftMatchesBaselineOutput(t *testing.T) {
	// Baseline run for comparison.
	be := newTestEngine(7)
	bres, err := be.RunBaseline(testProgram(20_000), be.M.BigCores()[0])
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 30_000
	stats := runProtected(t, cfg, 20_000)

	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if stats.ExitCode != bres.ExitCode {
		t.Errorf("exit code %d != baseline %d", stats.ExitCode, bres.ExitCode)
	}
	if string(stats.Stdout) != string(bres.Stdout) {
		t.Errorf("stdout %q != baseline %q", stats.Stdout, bres.Stdout)
	}
	if stats.MainWallNs <= bres.WallNs {
		t.Errorf("protected main wall %.0f should exceed baseline wall %.0f (tracing overhead)",
			stats.MainWallNs, bres.WallNs)
	}
}

func TestRAFTCleanRun(t *testing.T) {
	stats := runProtected(t, RAFTConfig(), 20_000)
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}
	if stats.Slices != 0 {
		t.Errorf("RAFT mode sliced %d times, want 0", stats.Slices)
	}
	if got := string(stats.Stdout); got != "hello\n" {
		t.Errorf("stdout = %q, want %q", got, "hello\n")
	}
	if stats.DirtyPagesHashed != 0 {
		t.Errorf("RAFT mode hashed %d pages, want 0 (no state comparison)", stats.DirtyPagesHashed)
	}
	if stats.CheckerLittleNs != 0 {
		t.Errorf("RAFT checker ran %f ns on little cores, want 0", stats.CheckerLittleNs)
	}
}

func TestStatsString(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	stats := runProtected(t, cfg, 10_000)
	if !strings.Contains(stats.Benchmark, "smoke") {
		t.Errorf("benchmark name = %q", stats.Benchmark)
	}
}
