package core

import (
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// ensureTarget keeps the checker's execution-point steering machinery
// (§4.2.2) pointed at the right place. Targets, in priority order:
//
//  1. the delivery point of the next recorded external signal (§4.3.3) —
//     known as soon as the event is next in the log, sealed or not;
//  2. the segment's end point, once sealed (unless the segment ends with
//     the program exiting, which the final replayed event produces).
//
// Arming: branch-counter overflow a skid buffer short of the target, then
// a breakpoint on the target PC until the branch count matches.
func (r *Runtime) ensureTarget(seg *Segment) {
	var want ExecPoint
	var isEnd, active bool
	if ev := seg.nextEvent(); ev != nil && ev.Kind == EvSignalExternal {
		want, isEnd, active = ev.Signal.Point, false, true
	} else if seg.sealed && !seg.EndIsExit {
		want, isEnd, active = seg.End, true, true
	}
	if !active {
		if seg.targetActive {
			seg.Checker.DisarmBranchCounter()
			seg.Checker.ClearAllBreakpoints()
			seg.targetActive = false
			seg.phase = phaseEvents
		}
		return
	}
	if seg.targetActive && seg.target == want && seg.targetIsEnd == isEnd {
		return // already armed at this target
	}
	seg.target = want
	seg.targetIsEnd = isEnd
	seg.targetActive = true

	c := seg.Checker
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	rel := seg.relBranches()
	if want.Branches > rel && want.Branches-rel > r.cfg.SkidBuffer {
		c.ArmBranchCounter(want.Branches - r.cfg.SkidBuffer)
		seg.phase = phaseCounted
	} else {
		// within the buffer (or already at/past the count): breakpoint
		// directly; the per-hit check decides reached vs overrun
		c.SetBreakpoint(want.PC)
		seg.phase = phaseStepped
	}
	r.chargeRuntimeChecker(seg, r.cfg.CounterSetupNs)
}

// enterStepped switches from counting to breakpointing on the current
// target's PC.
func (r *Runtime) enterStepped(seg *Segment) {
	seg.Checker.DisarmBranchCounter()
	seg.Checker.SetBreakpoint(seg.target.PC)
	seg.phase = phaseStepped
	r.chargeRuntimeChecker(seg, r.cfg.CounterSetupNs)
}

// atTarget reports whether the checker is exactly at the active target.
func (seg *Segment) atTarget() bool {
	return seg.targetActive &&
		seg.relBranches() == seg.target.Branches &&
		seg.Checker.PC == seg.target.PC
}

// reachedTarget consumes the active target: deliver an external signal and
// re-arm, or finish the segment.
func (r *Runtime) reachedTarget(seg *Segment) {
	if seg.targetIsEnd {
		if seg.replayIdx < len(seg.Log.Events) {
			r.fail(seg.Index, ErrEventOrderMismatch,
				"checker reached segment end with %d unreplayed events",
				len(seg.Log.Events)-seg.replayIdx)
			return
		}
		r.checkerReached(seg)
		return
	}
	// Deliver the external signal at the recorded point (§4.3.3).
	ev := seg.nextEvent()
	seg.replayIdx++
	seg.targetActive = false
	seg.Checker.DisarmBranchCounter()
	seg.Checker.ClearAllBreakpoints()
	r.chargeRuntimeChecker(seg, r.cfg.tracerStopNs())
	alive := seg.Checker.DeliverSignal(ev.Signal.Sig)
	if ev.Signal.Fatal == alive {
		r.failSig(seg.Index, ev.Signal.Sig, "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted(seg)
		return
	}
	r.ensureTarget(seg)
}

// stepChecker dispatches a checker for one quantum and interprets its stop
// against the record/replay log.
func (r *Runtime) stepChecker(seg *Segment) {
	c := seg.Checker
	if seg.startNs == 0 {
		seg.startNs = seg.Task.Clock
	}
	if r.cfg.CheckerHook != nil && !seg.arb {
		r.cfg.CheckerHook(seg.Index, c, seg.Task.Clock-seg.startNs)
	}
	r.ensureTarget(seg)
	if seg.atTarget() {
		// already positioned (e.g. a signal point right at a prior stop)
		r.reachedTarget(seg)
		return
	}

	// The checker's dispatch quantum is deliberately offset from the
	// main's: otherwise its budget stops land on exactly the architectural
	// positions where the main was sliced, the end point is "reached" at a
	// budget stop, and the counter/skid/breakpoint protocol of §4.2.2
	// never has to do its job. Real checkers get no such alignment.
	before := c.UserNs + c.SysNs
	beforeInstrs := c.Instrs
	stop := r.e.Run(seg.Task, r.cfg.Quantum+37)
	delta := c.UserNs + c.SysNs - before
	if seg.onBig {
		seg.bigNs += delta
		seg.bigInstrs += c.Instrs - beforeInstrs
	} else {
		seg.littleNs += delta
		seg.littleInstrs += c.Instrs - beforeInstrs
	}
	seg.checkerInstrs = c.Instrs

	// Reaching the active target takes precedence over whatever the stop
	// reason says (e.g. the target lands exactly on a syscall).
	if seg.atTarget() {
		r.reachedTarget(seg)
		return
	}

	switch stop.Reason {
	case proc.StopBudget:
		// keep going

	case proc.StopSyscall:
		r.replaySyscall(seg)
		r.ensureTarget(seg)

	case proc.StopNondet:
		r.replayNondet(seg)
		r.ensureTarget(seg)

	case proc.StopSignal:
		r.replayFault(seg, stop.Sig)
		r.ensureTarget(seg)

	case proc.StopCounter:
		// Undershoot phase done; switch to breakpointing (§4.2.2).
		r.chargeRuntimeChecker(seg, r.cfg.BreakpointHitNs)
		r.enterStepped(seg)

	case proc.StopBreakpoint:
		r.chargeRuntimeChecker(seg, r.cfg.BreakpointHitNs)
		rel := seg.relBranches()
		switch {
		case seg.atTarget():
			r.reachedTarget(seg)
		case seg.targetActive && rel > seg.target.Branches:
			r.fail(seg.Index, ErrExecPointOverrun,
				"checker at %d branches, target %d", rel, seg.target.Branches)
		default:
			// Same PC, earlier iteration: continue to the next hit.
		}

	case proc.StopInstrLimit:
		r.fail(seg.Index, ErrCheckerTimeout,
			"checker executed %d instructions, budget %d (main %d x %.2f)",
			c.Instrs, c.InstrLimit, seg.MainInstrs, r.cfg.TimeoutScale)

	case proc.StopHalt:
		r.checkerHalted(seg)
	}
}

// nextEvent returns the next unconsumed log event, or nil.
func (seg *Segment) nextEvent() *Event {
	if seg.replayIdx >= len(seg.Log.Events) {
		return nil
	}
	return &seg.Log.Events[seg.replayIdx]
}

// replaySyscall validates the checker's syscall against the record and
// applies the class-appropriate behaviour (§4.3.1).
func (r *Runtime) replaySyscall(seg *Segment) {
	c := seg.Checker
	r.chargeRuntimeChecker(seg, 2*r.cfg.tracerStopNs())

	ev := seg.nextEvent()
	if ev == nil {
		if !seg.sealed {
			// The main has not recorded this far yet; wait for it.
			seg.waiting = true
			return
		}
		r.fail(seg.Index, ErrSyscallMismatch,
			"checker issued syscall %v past the end of the record", oskernel.Decode(c).Nr)
		return
	}
	if ev.Kind != EvSyscall {
		r.fail(seg.Index, ErrEventOrderMismatch,
			"checker at a syscall, record expects %v", ev.Kind)
		return
	}
	rec := ev.Syscall
	info := oskernel.Decode(c)
	if info != rec.Info {
		r.fail(seg.Index, ErrSyscallMismatch,
			"checker %v%v vs recorded %v%v", info.Nr, info.Args, rec.Info.Nr, rec.Info.Args)
		return
	}

	// Compare input data (e.g. the bytes passed to write) byte-for-byte.
	model := oskernel.ModelOf(info.Nr)
	chkIn := captureRegions(c, model.In(r.e.K, c, info.Args))
	r.chargeRuntimeChecker(seg, float64(bytesIn(chkIn))*r.cfg.RecordByteNs)
	if !regionsEqual(chkIn, rec.In) {
		r.fail(seg.Index, ErrSyscallMismatch, "%v input data differs", info.Nr)
		return
	}

	seg.replayIdx++

	switch rec.Class {
	case oskernel.ClassLocal:
		// Both sides execute; pin ASLR'd mmaps to the recorded address
		// with MAP_FIXED (§4.3.2). Only the kernel-visible arguments are
		// rewritten — the checker's architectural registers must keep the
		// original values or the segment-end register compare would
		// diverge from the main's.
		if info.Nr == oskernel.SysMmap && rec.MmapFixedAddr != 0 {
			info.Args[0] = rec.MmapFixedAddr
			info.Args[3] |= oskernel.MapFixed
		}
		res := r.e.ExecSyscall(seg.Task, info)
		if res.Ret != rec.Ret {
			r.fail(seg.Index, ErrSyscallMismatch,
				"%v local result %d differs from recorded %d", info.Nr, res.Ret, rec.Ret)
			return
		}
		if res.Exited {
			c.Exited = true
			return
		}
		oskernel.Finish(c, res.Ret)
		if res.SelfSignal != proc.SigNone {
			if !c.DeliverSignal(res.SelfSignal) {
				r.checkerHalted(seg)
			}
		}

	case oskernel.ClassGlobal, oskernel.ClassNonEffectful:
		// Replay outputs and result without touching the OS, so the
		// external effect happens exactly once (§4.3.1).
		if info.Nr == oskernel.SysExit {
			c.Exited = true
			c.ExitCode = int64(info.Args[0])
			r.checkerHalted(seg)
			return
		}
		for _, out := range rec.Out {
			r.chargeRuntimeChecker(seg, float64(len(out.Data))*r.cfg.RecordByteNs)
			if f := c.AS.Write(out.Addr, out.Data); f != nil {
				r.fail(seg.Index, ErrSyscallMismatch,
					"replaying %v output into checker faulted at %#x", info.Nr, f.Addr)
				return
			}
		}
		oskernel.ReplayFinish(c, rec.Ret)
	}
}

func bytesIn(regions []RegionData) int {
	n := 0
	for _, r := range regions {
		n += len(r.Data)
	}
	return n
}

// replayNondet feeds the recorded value of a nondeterministic instruction
// to the checker (§4.3.4) — even when the checker runs on a different core
// type whose real MIDR would differ.
func (r *Runtime) replayNondet(seg *Segment) {
	c := seg.Checker
	r.chargeRuntimeChecker(seg, r.cfg.tracerStopNs())
	ev := seg.nextEvent()
	if ev == nil {
		if !seg.sealed {
			seg.waiting = true
			return
		}
		r.fail(seg.Index, ErrEventOrderMismatch, "checker nondet instruction past end of record")
		return
	}
	if ev.Kind != EvNondet {
		r.fail(seg.Index, ErrEventOrderMismatch, "checker at nondet instruction, record expects %v", ev.Kind)
		return
	}
	if ev.Nondet.PC != c.PC {
		r.fail(seg.Index, ErrEventOrderMismatch,
			"nondet at pc %d, recorded pc %d", c.PC, ev.Nondet.PC)
		return
	}
	seg.replayIdx++
	// sim.FinishNondet equivalent, with the recorded value.
	ins := c.CurrentInstr()
	c.Regs.X[ins.Rd] = ev.Nondet.Value
	c.PC++
	c.Instrs++
}

// replayFault checks a checker fault against the record: the main must have
// taken the identical signal at the identical PC, otherwise the fault is an
// error manifestation (the §5.6 Exception class).
func (r *Runtime) replayFault(seg *Segment, sig proc.Signal) {
	c := seg.Checker
	r.chargeRuntimeChecker(seg, r.cfg.tracerStopNs())
	ev := seg.nextEvent()
	if ev == nil && !seg.sealed {
		// Could be a fault the main will also take; but a fault the main
		// has not yet reached cannot be distinguished from divergence
		// without waiting — and the checker cannot be architecturally
		// ahead of the main (guarded in pickActor), so a fault here with
		// no record is divergence.
		r.failSig(seg.Index, sig, "checker fault %v at pc %d with no recorded event", sig, c.PC)
		return
	}
	if ev == nil || ev.Kind != EvSignalInternal || ev.Signal.Sig != sig || ev.Signal.PC != c.PC {
		r.failSig(seg.Index, sig, "checker fault %v at pc %d diverges from record", sig, c.PC)
		return
	}
	seg.replayIdx++
	alive := c.DeliverSignal(sig)
	if ev.Signal.Fatal != !alive {
		r.failSig(seg.Index, sig, "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted(seg)
	}
}

// checkerHalted handles the checker finishing execution (exit syscall,
// halt, or fatal signal). For the final segment this is the expected end;
// anywhere else it is a divergence.
func (r *Runtime) checkerHalted(seg *Segment) {
	if !seg.sealed {
		seg.waiting = true // main still running this segment; wait to decide
		if seg.Checker.Exited {
			// An exited checker cannot resume; if the main does not also
			// exit in this segment, the comparison below will fail.
			seg.waiting = false
			r.fail(seg.Index, ErrCheckerExited, "checker finished before the segment was sealed")
		}
		return
	}
	if !seg.EndIsExit {
		r.fail(seg.Index, ErrCheckerExited, "checker exited mid-segment")
		return
	}
	if seg.replayIdx < len(seg.Log.Events) {
		r.fail(seg.Index, ErrEventOrderMismatch,
			"checker exited with %d unreplayed events", len(seg.Log.Events)-seg.replayIdx)
		return
	}
	r.checkerReached(seg)
}

// checkerReached marks the checker at the segment end point and runs the
// comparison if the end checkpoint is available (it always is: sealing
// created it). Arbitration shadows stop here; their comparison belongs to
// the arbitration driver.
func (r *Runtime) checkerReached(seg *Segment) {
	c := seg.Checker
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	seg.phase = phaseReached
	seg.doneNs = seg.Task.Clock
	if seg.arb {
		seg.arbDone = true
		return
	}
	r.sched.observeCheckerDone(seg)
	r.sched.onCheckerDone(seg)
	r.compareSegment(seg)
}
