package core

import (
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// ensureTarget keeps a checker replica's execution-point steering machinery
// (§4.2.2) pointed at the right place. Targets, in priority order:
//
//  1. the delivery point of the next recorded external signal (§4.3.3) —
//     known as soon as the event is next in the log, sealed or not;
//  2. the segment's end point, once sealed (unless the segment ends with
//     the program exiting, which the final replayed event produces).
//
// Arming: branch-counter overflow a skid buffer short of the target, then
// a breakpoint on the target PC until the branch count matches.
func (r *Runtime) ensureTarget(rep *replica) {
	seg := rep.seg
	var want ExecPoint
	var isEnd, active bool
	if ev := rep.nextEvent(); ev != nil && ev.Kind == EvSignalExternal {
		want, isEnd, active = ev.Signal.Point, false, true
	} else if seg.sealed && !seg.EndIsExit {
		want, isEnd, active = seg.End, true, true
	}
	if !active {
		if rep.targetActive {
			rep.Checker.DisarmBranchCounter()
			rep.Checker.ClearAllBreakpoints()
			rep.targetActive = false
			rep.phase = phaseEvents
		}
		return
	}
	if rep.targetActive && rep.target == want && rep.targetIsEnd == isEnd {
		return // already armed at this target
	}
	rep.target = want
	rep.targetIsEnd = isEnd
	rep.targetActive = true

	c := rep.Checker
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	rel := rep.relBranches()
	if want.Branches > rel && want.Branches-rel > rep.skid {
		c.ArmBranchCounter(want.Branches - rep.skid)
		rep.phase = phaseCounted
	} else {
		// within the buffer (or already at/past the count): breakpoint
		// directly; the per-hit check decides reached vs overrun
		c.SetBreakpoint(want.PC)
		rep.phase = phaseStepped
	}
	r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.CounterSetupNs)
}

// enterStepped switches from counting to breakpointing on the current
// target's PC.
func (r *Runtime) enterStepped(rep *replica) {
	rep.Checker.DisarmBranchCounter()
	rep.Checker.SetBreakpoint(rep.target.PC)
	rep.phase = phaseStepped
	r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.CounterSetupNs)
}

// atTarget reports whether the replica is exactly at the active target.
func (rep *replica) atTarget() bool {
	return rep.targetActive &&
		rep.relBranches() == rep.target.Branches &&
		rep.Checker.PC == rep.target.PC
}

// reachedTarget consumes the active target: deliver an external signal and
// re-arm, or finish the segment.
func (r *Runtime) reachedTarget(rep *replica) {
	seg := rep.seg
	if rep.targetIsEnd {
		if rep.replayIdx < len(seg.Log.Events) {
			r.replicaFail(rep, ErrEventOrderMismatch,
				"checker reached segment end with %d unreplayed events",
				len(seg.Log.Events)-rep.replayIdx)
			return
		}
		r.checkerReached(rep)
		return
	}
	// Deliver the external signal at the recorded point (§4.3.3).
	ev := rep.nextEvent()
	rep.replayIdx++
	rep.targetActive = false
	rep.Checker.DisarmBranchCounter()
	rep.Checker.ClearAllBreakpoints()
	r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.tracerStopNs())
	alive := rep.Checker.DeliverSignal(ev.Signal.Sig)
	if ev.Signal.Fatal == alive {
		r.replicaFailSig(rep, ev.Signal.Sig, "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted(rep)
		return
	}
	r.ensureTarget(rep)
}

// stepChecker dispatches a checker replica for one quantum and interprets
// its stop against the record/replay log.
func (r *Runtime) stepChecker(rep *replica) {
	seg := rep.seg
	c := rep.Checker
	if rep.startNs == 0 {
		rep.startNs = rep.Task.Clock
	}
	if !seg.arb {
		if r.cfg.CheckerHook != nil && rep.idx == 0 {
			r.cfg.CheckerHook(seg.Index, c, rep.Task.Clock-rep.startNs)
		}
		if r.cfg.ReplicaHook != nil {
			r.cfg.ReplicaHook(seg.Index, rep.idx, c, rep.Task.Clock-rep.startNs)
		}
	}
	r.ensureTarget(rep)
	if rep.atTarget() {
		// already positioned (e.g. a signal point right at a prior stop)
		r.reachedTarget(rep)
		return
	}

	// The checker's dispatch quantum is deliberately offset from the
	// main's: otherwise its budget stops land on exactly the architectural
	// positions where the main was sliced, the end point is "reached" at a
	// budget stop, and the counter/skid/breakpoint protocol of §4.2.2
	// never has to do its job. Real checkers get no such alignment.
	before := c.UserNs + c.SysNs
	beforeInstrs := c.Instrs
	prev := rep.Task.Core.SetActivity(guestClass(rep))
	stop := r.e.Run(rep.Task, r.cfg.Quantum+37+rep.quantumOff)
	rep.Task.Core.SetActivity(prev)
	delta := c.UserNs + c.SysNs - before
	if rep.onBig {
		rep.bigNs += delta
		rep.bigInstrs += c.Instrs - beforeInstrs
	} else {
		rep.littleNs += delta
		rep.littleInstrs += c.Instrs - beforeInstrs
	}
	rep.checkerInstrs = c.Instrs

	// Reaching the active target takes precedence over whatever the stop
	// reason says (e.g. the target lands exactly on a syscall).
	if rep.atTarget() {
		r.reachedTarget(rep)
		return
	}

	switch stop.Reason {
	case proc.StopBudget:
		// keep going

	case proc.StopSyscall:
		r.replaySyscall(rep)
		r.ensureTarget(rep)

	case proc.StopNondet:
		r.replayNondet(rep)
		r.ensureTarget(rep)

	case proc.StopSignal:
		r.replayFault(rep, stop.Sig)
		r.ensureTarget(rep)

	case proc.StopCounter:
		// Undershoot phase done; switch to breakpointing (§4.2.2).
		r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.BreakpointHitNs)
		r.enterStepped(rep)

	case proc.StopBreakpoint:
		r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.BreakpointHitNs)
		rel := rep.relBranches()
		switch {
		case rep.atTarget():
			r.reachedTarget(rep)
		case rep.targetActive && rel > rep.target.Branches:
			r.replicaFail(rep, ErrExecPointOverrun,
				"checker at %d branches, target %d", rel, rep.target.Branches)
		default:
			// Same PC, earlier iteration: continue to the next hit.
		}

	case proc.StopInstrLimit:
		r.replicaFail(rep, ErrCheckerTimeout,
			"checker executed %d instructions, budget %d (main %d x %.2f)",
			c.Instrs, c.InstrLimit, seg.MainInstrs, r.cfg.TimeoutScale)

	case proc.StopHalt:
		r.checkerHalted(rep)
	}
}

// nextEvent returns the replica's next unconsumed log event, or nil.
func (rep *replica) nextEvent() *Event {
	if rep.replayIdx >= len(rep.seg.Log.Events) {
		return nil
	}
	return &rep.seg.Log.Events[rep.replayIdx]
}

// replaySyscall validates the replica's syscall against the record and
// applies the class-appropriate behaviour (§4.3.1).
func (r *Runtime) replaySyscall(rep *replica) {
	seg := rep.seg
	c := rep.Checker
	r.chargeRuntimeChecker(rep, machine.ActReplay, 2*r.cfg.tracerStopNs())

	ev := rep.nextEvent()
	if ev == nil {
		if !seg.sealed {
			// The main has not recorded this far yet; wait for it.
			rep.waiting = true
			return
		}
		r.replicaFail(rep, ErrSyscallMismatch,
			"checker issued syscall %v past the end of the record", oskernel.Decode(c).Nr)
		return
	}
	if ev.Kind != EvSyscall {
		r.replicaFail(rep, ErrEventOrderMismatch,
			"checker at a syscall, record expects %v", ev.Kind)
		return
	}
	rec := ev.Syscall
	info := oskernel.Decode(c)
	if info != rec.Info {
		r.replicaFail(rep, ErrSyscallMismatch,
			"checker %v%v vs recorded %v%v", info.Nr, info.Args, rec.Info.Nr, rec.Info.Args)
		return
	}

	// Compare input data (e.g. the bytes passed to write) byte-for-byte.
	model := oskernel.ModelOf(info.Nr)
	chkIn := captureRegions(c, model.In(r.e.K, c, info.Args))
	r.chargeRuntimeChecker(rep, machine.ActReplay, float64(bytesIn(chkIn))*r.cfg.RecordByteNs)
	if !regionsEqual(chkIn, rec.In) {
		r.replicaFail(rep, ErrSyscallMismatch, "%v input data differs", info.Nr)
		return
	}

	rep.replayIdx++

	switch rec.Class {
	case oskernel.ClassLocal:
		// Both sides execute; pin ASLR'd mmaps to the recorded address
		// with MAP_FIXED (§4.3.2). Only the kernel-visible arguments are
		// rewritten — the checker's architectural registers must keep the
		// original values or the segment-end register compare would
		// diverge from the main's.
		if info.Nr == oskernel.SysMmap && rec.MmapFixedAddr != 0 {
			info.Args[0] = rec.MmapFixedAddr
			info.Args[3] |= oskernel.MapFixed
		}
		prev := rep.Task.Core.SetActivity(guestClass(rep))
		res := r.e.ExecSyscall(rep.Task, info)
		rep.Task.Core.SetActivity(prev)
		if res.Ret != rec.Ret {
			r.replicaFail(rep, ErrSyscallMismatch,
				"%v local result %d differs from recorded %d", info.Nr, res.Ret, rec.Ret)
			return
		}
		if res.Exited {
			c.Exited = true
			return
		}
		oskernel.Finish(c, res.Ret)
		if res.SelfSignal != proc.SigNone {
			if !c.DeliverSignal(res.SelfSignal) {
				r.checkerHalted(rep)
			}
		}

	case oskernel.ClassGlobal, oskernel.ClassNonEffectful:
		// Replay outputs and result without touching the OS, so the
		// external effect happens exactly once (§4.3.1).
		if info.Nr == oskernel.SysExit {
			c.Exited = true
			c.ExitCode = int64(info.Args[0])
			r.checkerHalted(rep)
			return
		}
		for _, out := range rec.Out {
			r.chargeRuntimeChecker(rep, machine.ActReplay, float64(len(out.Data))*r.cfg.RecordByteNs)
			if f := c.AS.Write(out.Addr, out.Data); f != nil {
				r.replicaFail(rep, ErrSyscallMismatch,
					"replaying %v output into checker faulted at %#x", info.Nr, f.Addr)
				return
			}
		}
		oskernel.ReplayFinish(c, rec.Ret)
	}
}

func bytesIn(regions []RegionData) int {
	n := 0
	for _, r := range regions {
		n += len(r.Data)
	}
	return n
}

// replayNondet feeds the recorded value of a nondeterministic instruction
// to the checker (§4.3.4) — even when the checker runs on a different core
// type whose real MIDR would differ.
func (r *Runtime) replayNondet(rep *replica) {
	c := rep.Checker
	r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.tracerStopNs())
	ev := rep.nextEvent()
	if ev == nil {
		if !rep.seg.sealed {
			rep.waiting = true
			return
		}
		r.replicaFail(rep, ErrEventOrderMismatch, "checker nondet instruction past end of record")
		return
	}
	if ev.Kind != EvNondet {
		r.replicaFail(rep, ErrEventOrderMismatch, "checker at nondet instruction, record expects %v", ev.Kind)
		return
	}
	if ev.Nondet.PC != c.PC {
		r.replicaFail(rep, ErrEventOrderMismatch,
			"nondet at pc %d, recorded pc %d", c.PC, ev.Nondet.PC)
		return
	}
	rep.replayIdx++
	// sim.FinishNondet equivalent, with the recorded value.
	ins := c.CurrentInstr()
	c.Regs.X[ins.Rd] = ev.Nondet.Value
	c.PC++
	c.Instrs++
}

// replayFault checks a checker fault against the record: the main must have
// taken the identical signal at the identical PC, otherwise the fault is an
// error manifestation (the §5.6 Exception class).
func (r *Runtime) replayFault(rep *replica, sig proc.Signal) {
	c := rep.Checker
	r.chargeRuntimeChecker(rep, machine.ActReplay, r.cfg.tracerStopNs())
	ev := rep.nextEvent()
	if ev == nil && !rep.seg.sealed {
		// Could be a fault the main will also take; but a fault the main
		// has not yet reached cannot be distinguished from divergence
		// without waiting — and the checker cannot be architecturally
		// ahead of the main (guarded in pickActor), so a fault here with
		// no record is divergence.
		r.replicaFailSig(rep, sig, "checker fault %v at pc %d with no recorded event", sig, c.PC)
		return
	}
	if ev == nil || ev.Kind != EvSignalInternal || ev.Signal.Sig != sig || ev.Signal.PC != c.PC {
		r.replicaFailSig(rep, sig, "checker fault %v at pc %d diverges from record", sig, c.PC)
		return
	}
	rep.replayIdx++
	alive := c.DeliverSignal(sig)
	if ev.Signal.Fatal != !alive {
		r.replicaFailSig(rep, sig, "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted(rep)
	}
}

// checkerHalted handles the replica finishing execution (exit syscall,
// halt, or fatal signal). For the final segment this is the expected end;
// anywhere else it is a divergence.
func (r *Runtime) checkerHalted(rep *replica) {
	seg := rep.seg
	if !seg.sealed {
		rep.waiting = true // main still running this segment; wait to decide
		if rep.Checker.Exited {
			// An exited checker cannot resume; if the main does not also
			// exit in this segment, the comparison below will fail.
			rep.waiting = false
			r.replicaFail(rep, ErrCheckerExited, "checker finished before the segment was sealed")
		}
		return
	}
	if !seg.EndIsExit {
		r.replicaFail(rep, ErrCheckerExited, "checker exited mid-segment")
		return
	}
	if rep.replayIdx < len(seg.Log.Events) {
		r.replicaFail(rep, ErrEventOrderMismatch,
			"checker exited with %d unreplayed events", len(seg.Log.Events)-rep.replayIdx)
		return
	}
	r.checkerReached(rep)
}

// checkerReached marks the replica at the segment end point. With a single
// replica the comparison runs immediately (the end checkpoint is always
// available: sealing created it); under NMR the segment votes once every
// replica is terminal. Arbitration shadows stop here; their comparison
// belongs to the arbitration driver.
func (r *Runtime) checkerReached(rep *replica) {
	seg := rep.seg
	c := rep.Checker
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	rep.phase = phaseReached
	rep.doneNs = rep.Task.Clock
	if seg.arb {
		seg.arbDone = true
		return
	}
	r.sched.observeCheckerDone(rep)
	r.sched.onCheckerDone(rep)
	if len(seg.Replicas) > 1 {
		r.maybeVote(seg)
		return
	}
	r.compareSegment(seg)
}
