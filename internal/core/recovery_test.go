package core

import (
	"testing"

	"parallaft/internal/proc"
)

func recoveryConfig() Config {
	cfg := smallSliceConfig()
	cfg.EnableRecovery = true
	return cfg
}

// TestRecoveryAbsorbsCheckerFault: a transient fault in a checker is
// arbitrated (referee reproduces the end checkpoint), absorbed without
// rollback, and the program completes with correct output.
func TestRecoveryAbsorbsCheckerFault(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	stats := runWithHook(t, recoveryConfig(), prog,
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		}))
	if stats.Detected != nil {
		t.Fatalf("fault not absorbed: %v", stats.Detected)
	}
	if stats.RecoveredCheckerFaults != 1 {
		t.Errorf("recovered checker faults = %d, want 1", stats.RecoveredCheckerFaults)
	}
	if stats.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0 (fault was in the checker)", stats.Rollbacks)
	}
	if stats.Arbitrations != 1 {
		t.Errorf("arbitrations = %d, want 1", stats.Arbitrations)
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d after recovery", stats.ExitCode, base.ExitCode)
	}
}

// TestRecoveryRollsBackMainFault: a transient fault in the *main* is
// attributed by arbitration (the clean referee cannot reproduce the end
// checkpoint) and rolled back; re-execution produces the correct result.
func TestRecoveryRollsBackMainFault(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	cfg := recoveryConfig()
	fired := false
	cfg.MainHook = func(m *proc.Process, nowNs float64) {
		// corrupt the main's checksum register once, mid-run
		if fired || m.Instrs < 200_000 {
			return
		}
		m.FlipRegisterBit(proc.GPRClass, 1, 0, 33)
		fired = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Skip("main finished before the injection point")
	}
	if stats.Detected != nil {
		t.Fatalf("main fault not recovered: %v", stats.Detected)
	}
	if stats.Rollbacks == 0 {
		t.Error("main fault produced no rollback")
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d after rollback (the whole point of recovery)",
			stats.ExitCode, base.ExitCode)
	}
	if string(stats.Stdout) != string(base.Stdout) {
		t.Errorf("output differs after rollback")
	}
}

// TestRecoveryPermanentFaultTerminates: a fault injected on *every* main
// dispatch exhausts the retry budget and terminates with a diagnosis
// instead of looping forever.
func TestRecoveryPermanentFaultTerminates(t *testing.T) {
	cfg := recoveryConfig()
	cfg.RecoveryMaxRetries = 2
	cfg.MainHook = func(m *proc.Process, _ float64) {
		if m.Instrs > 100_000 {
			m.Regs.X[1] ^= 1 << 7 // keeps corrupting after every restore
		}
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected == nil {
		t.Fatal("permanent fault ended without a detection")
	}
	if !stats.UnrecoverableFault {
		t.Error("permanent fault not marked unrecoverable")
	}
	if stats.Rollbacks == 0 {
		t.Error("no rollback was even attempted")
	}
}

// TestRecoveryMidReplayCheckerFault: a checker fault that manifests as a
// replay divergence (exception) rather than a compare mismatch is also
// arbitrated and absorbed.
func TestRecoveryMidReplayCheckerFault(t *testing.T) {
	stats := runWithHook(t, recoveryConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.Regs.X[4] = 0xdead_0000 // wild pointer -> checker SIGSEGV
		}))
	if stats.Detected != nil {
		t.Fatalf("checker exception not absorbed: %v", stats.Detected)
	}
	if stats.RecoveredCheckerFaults != 1 {
		t.Errorf("recovered = %d, want 1", stats.RecoveredCheckerFaults)
	}
}

// TestRecoveryCountsReexecutedEffects: rolling back across a segment whose
// log contains globally-effectful syscalls reports the double-escape.
func TestRecoveryCountsReexecutedEffects(t *testing.T) {
	// program: loop, write, loop, exit — corrupt the main after the write
	prog := testProgram(60_000)
	cfg := recoveryConfig()
	cfg.SlicePeriodCycles = 100_000
	fired := false
	cfg.MainHook = func(m *proc.Process, _ float64) {
		if fired || m.Instrs < 400_000 {
			return
		}
		m.FlipRegisterBit(proc.GPRClass, 1, 0, 21)
		fired = true
	}
	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !fired || stats.Rollbacks == 0 {
		t.Skip("injection did not land in a rollback window")
	}
	t.Logf("rollbacks=%d reexecuted-effects=%d", stats.Rollbacks, stats.ReexecutedEffects)
	// duplicated writes appear in stdout when effects re-escape; the stat
	// must account for them
	if stats.ReexecutedEffects > 0 && len(stats.Stdout) <= len("hello\n") {
		t.Errorf("reexecuted effects reported but stdout %q shows no duplication", stats.Stdout)
	}
}

// TestRecoveryDisabledStillDetects: with recovery off, behaviour is the
// paper's: terminate-and-report.
func TestRecoveryDisabledStillDetects(t *testing.T) {
	stats := runWithHook(t, smallSliceConfig(), loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		}))
	if stats.Detected == nil {
		t.Fatal("detection lost")
	}
	if stats.RecoveredCheckerFaults != 0 || stats.Rollbacks != 0 {
		t.Error("recovery ran while disabled")
	}
}
