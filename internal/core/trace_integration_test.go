package core

import (
	"testing"

	"parallaft/internal/proc"
	"parallaft/internal/trace"
)

// TestTraceStreamCoversTheRun: a traced protected run emits the lifecycle
// events in a causally sensible shape.
func TestTraceStreamCoversTheRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 70_000
	rec := trace.New(0)
	cfg.Trace = rec

	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(testProgram(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}

	starts := rec.Count(trace.SegmentStart)
	seals := rec.Count(trace.SegmentSeal)
	compares := rec.Count(trace.Compare)
	if starts == 0 || seals == 0 || compares == 0 {
		t.Fatalf("missing lifecycle events: start=%d seal=%d compare=%d", starts, seals, compares)
	}
	if seals != starts {
		t.Errorf("seals %d != starts %d (every segment must seal)", seals, starts)
	}
	if compares != seals {
		t.Errorf("compares %d != seals %d (every sealed segment must compare)", compares, seals)
	}
	if got := rec.Count(trace.Syscall); got != int(stats.SyscallsTraced) {
		t.Errorf("traced syscall events %d != stats %d", got, stats.SyscallsTraced)
	}
	if rec.Count(trace.Detect) != 0 {
		t.Error("clean run emitted a detect event")
	}

	// timestamps are monotone per segment-start ordering
	var last float64 = -1
	for _, ev := range rec.Events() {
		if ev.Kind == trace.SegmentStart {
			if ev.TimeNs < last {
				t.Errorf("segment starts out of order: %v < %v", ev.TimeNs, last)
			}
			last = ev.TimeNs
		}
	}
}

// TestTraceCapturesDetection: a detection leaves a detect event carrying
// the segment and kind.
func TestTraceCapturesDetection(t *testing.T) {
	cfg := smallSliceConfig()
	rec := trace.New(0)
	cfg.Trace = rec
	stats := runWithHook(t, cfg, loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) { c.Regs.X[1] ^= 1 << 9 }))
	if stats.Detected == nil {
		t.Fatal("no detection")
	}
	if rec.Count(trace.Detect) != 1 {
		t.Errorf("detect events = %d", rec.Count(trace.Detect))
	}
}
