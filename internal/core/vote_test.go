package core

import (
	"bytes"
	"testing"

	"parallaft/internal/proc"
	"parallaft/internal/telemetry"
)

func nmrConfig() Config {
	cfg := smallSliceConfig()
	cfg.Checkers = 3
	return cfg
}

// TestNMRCleanRunUnanimous: a clean 3-replica run votes unanimously on
// every segment and produces the baseline result.
func TestNMRCleanRunUnanimous(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(13)
	rt := NewRuntime(e, nmrConfig())
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive under NMR: %v", stats.Detected)
	}
	if stats.VoteUnanimous != len(stats.Segments) {
		t.Errorf("unanimous votes = %d, segments = %d", stats.VoteUnanimous, len(stats.Segments))
	}
	if stats.VoteAbsorbed != 0 || stats.VoteNoQuorum != 0 || stats.ForwardRepairs != 0 {
		t.Errorf("clean run charged absorb=%d noquorum=%d repairs=%d",
			stats.VoteAbsorbed, stats.VoteNoQuorum, stats.ForwardRepairs)
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d", stats.ExitCode, base.ExitCode)
	}
}

// TestNMRVoteAbsorbsCheckerSEU: an SEU in one replica is outvoted by the
// reference-side quorum and absorbed in place — no arbitration referee, no
// rollback, no recovery machinery at all.
func TestNMRVoteAbsorbsCheckerSEU(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	// CheckerHook fires only for replica 0: the SEU lands in exactly one
	// replica, the single-fault model.
	stats := runWithHook(t, nmrConfig(), prog,
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		}))
	if stats.Detected != nil {
		t.Fatalf("checker SEU not absorbed by the vote: %v", stats.Detected)
	}
	if stats.VoteAbsorbed != 1 {
		t.Errorf("absorbed dissenters = %d, want 1", stats.VoteAbsorbed)
	}
	if stats.Rollbacks != 0 || stats.ForwardRepairs != 0 {
		t.Errorf("rollbacks=%d repairs=%d, want 0/0 (fault was in a replica)",
			stats.Rollbacks, stats.ForwardRepairs)
	}
	if stats.Arbitrations != 0 {
		t.Errorf("arbitrations = %d, want 0 (the quorum IS the arbitration)", stats.Arbitrations)
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d", stats.ExitCode, base.ExitCode)
	}
}

// TestNMRVoteAbsorbsReplicaException: a replica fault that manifests as a
// replay divergence (wild pointer, SIGSEGV) makes that replica a dissenting
// voter; the vote still absorbs it in place.
func TestNMRVoteAbsorbsReplicaException(t *testing.T) {
	cfg := nmrConfig()
	fired := false
	cfg.ReplicaHook = func(seg, rep int, c *proc.Process, _ float64) {
		if fired || seg != 1 || rep != 1 {
			return
		}
		c.Regs.X[4] = 0xdead_0000 // wild pointer -> replica SIGSEGV
		fired = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Skip("replica 1 never dispatched in segment 1")
	}
	if stats.Detected != nil {
		t.Fatalf("replica exception not absorbed: %v", stats.Detected)
	}
	if stats.VoteAbsorbed != 1 {
		t.Errorf("absorbed dissenters = %d, want 1", stats.VoteAbsorbed)
	}
}

// TestNMRForwardRepairsMainFault: a transient fault in the *main* is
// localised by the replica quorum (all replicas agree against the end
// checkpoint) and repaired forward: the agreed replica state is copied over
// the main, no rollback, and the program completes with the correct result.
func TestNMRForwardRepairsMainFault(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	cfg := nmrConfig()
	fired := false
	cfg.MainHook = func(m *proc.Process, nowNs float64) {
		if fired || m.Instrs < 200_000 {
			return
		}
		m.FlipRegisterBit(proc.GPRClass, 1, 0, 33)
		fired = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Skip("main finished before the injection point")
	}
	if stats.Detected != nil {
		t.Fatalf("main fault not repaired: %v", stats.Detected)
	}
	if stats.ForwardRepairs == 0 {
		t.Error("main fault produced no forward repair")
	}
	if stats.VoteOutvotedReplicas == 0 {
		t.Error("no vote outvoted the reference")
	}
	if stats.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0 (forward recovery replaces rollback)", stats.Rollbacks)
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d after forward repair (the whole point)",
			stats.ExitCode, base.ExitCode)
	}
	if !bytes.Equal(stats.Stdout, base.Stdout) {
		t.Errorf("output differs after forward repair")
	}
}

// TestNMRNoQuorumFallsBackToDetection: two replicas corrupted differently
// leave no 3-of-4 majority; the vote falls back to the detection path and,
// with recovery off, the run terminates with a diagnosis.
func TestNMRNoQuorumFallsBackToDetection(t *testing.T) {
	cfg := nmrConfig()
	fired := [3]bool{}
	cfg.ReplicaHook = func(seg, rep int, c *proc.Process, _ float64) {
		if seg != 1 || rep == 2 || fired[rep] {
			return
		}
		// Different bit per replica: the dissenters do not agree pairwise.
		c.FlipRegisterBit(proc.GPRClass, 1, 0, uint(40+rep))
		fired[rep] = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if !fired[0] || !fired[1] {
		t.Skip("both replicas were not corrupted in segment 1")
	}
	if stats.Detected == nil {
		t.Fatal("double replica corruption produced no detection")
	}
	if stats.VoteNoQuorum != 1 {
		t.Errorf("no-quorum votes = %d, want 1", stats.VoteNoQuorum)
	}
}

// TestNMRNoQuorumArbitratedWithRecovery: with recovery enabled a no-quorum
// vote is handed to the existing arbitration machinery — the clean referee
// reproduces the end checkpoint (the main was fine), so the double replica
// fault is absorbed and the run completes.
func TestNMRNoQuorumArbitratedWithRecovery(t *testing.T) {
	cfg := nmrConfig()
	cfg.EnableRecovery = true
	fired := [3]bool{}
	cfg.ReplicaHook = func(seg, rep int, c *proc.Process, _ float64) {
		if seg != 1 || rep == 2 || fired[rep] {
			return
		}
		c.FlipRegisterBit(proc.GPRClass, 1, 0, uint(40+rep))
		fired[rep] = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if !fired[0] || !fired[1] {
		t.Skip("both replicas were not corrupted in segment 1")
	}
	if stats.Detected != nil {
		t.Fatalf("no-quorum not recovered by arbitration: %v", stats.Detected)
	}
	if stats.Arbitrations != 1 || stats.RecoveredCheckerFaults != 1 {
		t.Errorf("arbitrations=%d recovered=%d, want 1/1", stats.Arbitrations, stats.RecoveredCheckerFaults)
	}
	if stats.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0", stats.Rollbacks)
	}
}

// TestNMRHookReplicaIndices pins the hook compatibility contract:
// CheckerHook (the legacy single-checker signature) fires only for replica
// 0, ReplicaHook fires for every replica with its index.
func TestNMRHookReplicaIndices(t *testing.T) {
	cfg := nmrConfig()
	checkerHookCalls := 0
	replicaCalls := map[int]int{}
	cfg.CheckerHook = func(seg int, c *proc.Process, _ float64) { checkerHookCalls++ }
	cfg.ReplicaHook = func(seg, rep int, c *proc.Process, _ float64) { replicaCalls[rep]++ }
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	if _, err := rt.Run(loopProgram(60_000)); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		if replicaCalls[rep] == 0 {
			t.Errorf("ReplicaHook never fired for replica %d", rep)
		}
	}
	if len(replicaCalls) != 3 {
		t.Errorf("ReplicaHook saw indices %v, want exactly {0,1,2}", replicaCalls)
	}
	if checkerHookCalls != replicaCalls[0] {
		t.Errorf("CheckerHook fired %d times, replica 0 dispatched %d times — the legacy hook must track replica 0 exactly",
			checkerHookCalls, replicaCalls[0])
	}
}

// TestNMRDiverseReplicasStayEquivalent: replica substrate diversity (skid
// width, dispatch phase, big-core placement, cold caches) must change only
// how replicas execute, never what they compute: a clean diverse run is
// still unanimous with the baseline result.
func TestNMRDiverseReplicasStayEquivalent(t *testing.T) {
	prog := loopProgram(120_000)
	be := newTestEngine(13)
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}

	cfg := nmrConfig()
	cfg.Diversity = []string{"none", "skid4x", "bigcore"}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected != nil {
		t.Fatalf("diversity caused a false positive: %v", stats.Detected)
	}
	if stats.VoteUnanimous != len(stats.Segments) {
		t.Errorf("unanimous = %d, segments = %d", stats.VoteUnanimous, len(stats.Segments))
	}
	if stats.ExitCode != base.ExitCode {
		t.Errorf("exit code %d != baseline %d", stats.ExitCode, base.ExitCode)
	}

	// The other presets must be equally invisible to the verdict.
	cfg2 := nmrConfig()
	cfg2.Diversity = []string{"quantum", "skid2x", "coldcache"}
	e2 := newTestEngine(13)
	stats2, err := NewRuntime(e2, cfg2).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Detected != nil || stats2.ExitCode != base.ExitCode {
		t.Errorf("preset set 2: detected=%v exit=%d, want clean/%d",
			stats2.Detected, stats2.ExitCode, base.ExitCode)
	}
}

// TestValidateDiversity: every published preset validates; unknown names
// are rejected with a descriptive error.
func TestValidateDiversity(t *testing.T) {
	if err := ValidateDiversity(DiversityPresets); err != nil {
		t.Errorf("published presets rejected: %v", err)
	}
	if err := ValidateDiversity(nil); err != nil {
		t.Errorf("empty list rejected: %v", err)
	}
	if err := ValidateDiversity([]string{"none", "banana"}); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestNMRRequiresCompareStates: the vote is a state comparison; a RAFT-like
// config with replicas is a configuration error, caught at construction.
func TestNMRRequiresCompareStates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Checkers > 1 without CompareStates did not panic")
		}
	}()
	cfg := RAFTConfig()
	cfg.Checkers = 3
	NewRuntime(newTestEngine(1), cfg)
}

// TestNMRTelemetryIsObservationOnly extends the determinism guarantee to
// 3-replica runs: a fully instrumented NMR run is byte-identical to a plain
// one.
func TestNMRTelemetryIsObservationOnly(t *testing.T) {
	run := func(withTelemetry bool) *RunStats {
		cfg := nmrConfig()
		if withTelemetry {
			cfg.Metrics = telemetry.NewRegistry()
			cfg.Spans = telemetry.NewSpanRecorder(0)
		}
		e := newTestEngine(7)
		rt := NewRuntime(e, cfg)
		stats, err := rt.Run(testProgram(40_000))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return stats
	}
	plain, instrumented := run(false), run(true)
	if plain.AllWallNs != instrumented.AllWallNs ||
		plain.MainWallNs != instrumented.MainWallNs ||
		plain.EnergyJ != instrumented.EnergyJ ||
		plain.VoteUnanimous != instrumented.VoteUnanimous ||
		!bytes.Equal(plain.Stdout, instrumented.Stdout) {
		t.Errorf("telemetry perturbed the NMR simulation:\nplain: wall=%v energy=%v unanimous=%d\ninstr: wall=%v energy=%v unanimous=%d",
			plain.AllWallNs, plain.EnergyJ, plain.VoteUnanimous,
			instrumented.AllWallNs, instrumented.EnergyJ, instrumented.VoteUnanimous)
	}
}

// TestNMRForwardRepairSpans: the repaired segment's span closes with the
// forward-repaired outcome and discarded descendants close as rollback.
func TestNMRForwardRepairSpans(t *testing.T) {
	spans := telemetry.NewSpanRecorder(0)
	cfg := nmrConfig()
	cfg.Spans = spans
	fired := false
	cfg.MainHook = func(m *proc.Process, nowNs float64) {
		if fired || m.Instrs < 200_000 {
			return
		}
		m.FlipRegisterBit(proc.GPRClass, 1, 0, 33)
		fired = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if !fired || stats.ForwardRepairs == 0 {
		t.Skip("injection did not land in a forward-repair window")
	}
	repaired := 0
	for _, sp := range spans.Spans() {
		if sp.Outcome == telemetry.OutcomeForwardRepaired {
			repaired++
		}
	}
	if repaired != stats.ForwardRepairs {
		t.Errorf("forward-repaired spans = %d, stats = %d", repaired, stats.ForwardRepairs)
	}
}
