package core

import (
	"bytes"
	"testing"

	"parallaft/internal/proc"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
)

// findMetric pulls one metric out of a snapshot by name.
func findMetric(t *testing.T, snap []telemetry.MetricSnapshot, name string) telemetry.MetricSnapshot {
	t.Helper()
	for _, m := range snap {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return telemetry.MetricSnapshot{}
}

// TestTelemetryCleanRun runs a clean multi-segment program with metrics and
// spans enabled and checks the instruments agree with the run's stats.
func TestTelemetryCleanRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanRecorder(0)
	cfg := DefaultConfig()
	cfg.SlicePeriodCycles = 40_000
	cfg.Metrics = reg
	cfg.Spans = spans

	e := newTestEngine(7)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(testProgram(40_000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive: %v", stats.Detected)
	}

	snap := reg.Snapshot()
	val := func(name string) float64 { return findMetric(t, snap, name).Value }

	if got := val("paft_core_syscalls_traced_total"); got != float64(stats.SyscallsTraced) {
		t.Errorf("syscall counter = %v, stats = %d", got, stats.SyscallsTraced)
	}
	if got := val("paft_core_nondet_traced_total"); got != float64(stats.NondetTraced) {
		t.Errorf("nondet counter = %v, stats = %d", got, stats.NondetTraced)
	}
	retired := val("paft_core_segments_retired_total")
	if retired != float64(len(stats.Segments)) {
		t.Errorf("retired counter = %v, segment stats = %d", retired, len(stats.Segments))
	}
	if started := val("paft_core_segments_started_total"); started < retired {
		t.Errorf("started %v < retired %v", started, retired)
	}
	// Everything is verified by the end of the run: the frontier gauges
	// must read zero.
	if got := val("paft_core_live_segments"); got != 0 {
		t.Errorf("live segments at end = %v, want 0", got)
	}
	if got := val("paft_core_checker_slack_simns"); got != 0 {
		t.Errorf("checker slack at end = %v, want 0", got)
	}
	hb := findMetric(t, snap, "paft_core_compare_hash_bytes")
	if hb.Count == 0 || hb.Sum != float64(stats.BytesHashed) {
		t.Errorf("hash-bytes histogram count=%d sum=%v, stats bytes=%d",
			hb.Count, hb.Sum, stats.BytesHashed)
	}
	dp := findMetric(t, snap, "paft_core_compare_dirty_pages")
	if dp.Sum != float64(stats.DirtyPagesHashed) {
		t.Errorf("dirty-pages histogram sum=%v, stats=%d", dp.Sum, stats.DirtyPagesHashed)
	}

	// One span per retired segment, all retired, with ordered lifecycle
	// timestamps.
	got := spans.Spans()
	if len(got) != len(stats.Segments) {
		t.Fatalf("spans = %d, segment stats = %d", len(got), len(stats.Segments))
	}
	for _, sp := range got {
		if sp.Outcome != telemetry.OutcomeRetired {
			t.Errorf("segment %d outcome = %q, want retired", sp.Segment, sp.Outcome)
		}
		if sp.EndNs < sp.ForkNs {
			t.Errorf("segment %d span ends (%v) before it forks (%v)", sp.Segment, sp.EndNs, sp.ForkNs)
		}
		if sp.WallNs <= 0 {
			t.Errorf("segment %d has no wall-clock duration", sp.Segment)
		}
	}
}

// TestTelemetryIsObservationOnly is the determinism guarantee: a run with
// the full telemetry stack enabled — including the sampling profiler, the
// overhead ledger and the window sampler — must produce byte-identical
// stats to a run without it. Telemetry consumes no simulated time.
func TestTelemetryIsObservationOnly(t *testing.T) {
	run := func(withTelemetry bool) *RunStats {
		cfg := DefaultConfig()
		cfg.SlicePeriodCycles = 40_000
		if withTelemetry {
			reg := telemetry.NewRegistry()
			cfg.Metrics = reg
			cfg.Spans = telemetry.NewSpanRecorder(0)
			cfg.Tracer = telemetry.NewTraceRecorder(0)
			cfg.Flight = telemetry.NewFlightRecorder(0)
			cfg.Profiler = profile.NewRecorder(10_000)
			cfg.Ledger = profile.NewLedger()
			cfg.Windows = profile.NewWindowSampler(reg, 1e5, 0)
		}
		e := newTestEngine(7)
		rt := NewRuntime(e, cfg)
		stats, err := rt.Run(testProgram(40_000))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return stats
	}
	plain, instrumented := run(false), run(true)
	if plain.AllWallNs != instrumented.AllWallNs ||
		plain.MainWallNs != instrumented.MainWallNs ||
		plain.EnergyJ != instrumented.EnergyJ ||
		plain.Slices != instrumented.Slices ||
		!bytes.Equal(plain.Stdout, instrumented.Stdout) {
		t.Errorf("telemetry perturbed the simulation:\nplain: wall=%v main=%v energy=%v slices=%d\ninstr: wall=%v main=%v energy=%v slices=%d",
			plain.AllWallNs, plain.MainWallNs, plain.EnergyJ, plain.Slices,
			instrumented.AllWallNs, instrumented.MainWallNs, instrumented.EnergyJ, instrumented.Slices)
	}
}

// TestTelemetrySnapshotDeterministic: two identical runs yield identical
// telemetry snapshots — the property the golden snapshot test pins at the
// CLI layer.
func TestTelemetrySnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		reg := telemetry.NewRegistry()
		cfg := DefaultConfig()
		cfg.SlicePeriodCycles = 40_000
		cfg.Metrics = reg
		e := newTestEngine(7)
		rt := NewRuntime(e, cfg)
		if _, err := rt.Run(testProgram(40_000)); err != nil {
			t.Fatalf("run: %v", err)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("identical runs produced different snapshots:\n%s\n---\n%s", a, b)
	}
}

// TestTelemetryRecoverySpan: an absorbed checker fault produces a span with
// the recovered outcome and bumps the recovery counters.
func TestTelemetryRecoverySpan(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanRecorder(0)
	cfg := recoveryConfig()
	cfg.Metrics = reg
	cfg.Spans = spans

	stats := runWithHook(t, cfg, loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		}))
	if stats.Detected != nil {
		t.Fatalf("fault not absorbed: %v", stats.Detected)
	}

	snap := reg.Snapshot()
	if got := findMetric(t, snap, "paft_core_recovered_checker_faults_total").Value; got != 1 {
		t.Errorf("recovered counter = %v, want 1", got)
	}
	if got := findMetric(t, snap, "paft_core_arbitrations_total").Value; got != 1 {
		t.Errorf("arbitrations counter = %v, want 1", got)
	}
	recovered := 0
	for _, sp := range spans.Spans() {
		if sp.Outcome == telemetry.OutcomeRecovered {
			recovered++
		}
	}
	if recovered != 1 {
		t.Errorf("recovered spans = %d, want 1", recovered)
	}
}

// TestTelemetryDetectedSpan: with recovery disabled a detection still
// closes the faulty segment's span, tagged detected.
func TestTelemetryDetectedSpan(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanRecorder(0)
	cfg := smallSliceConfig()
	cfg.Metrics = reg
	cfg.Spans = spans

	stats := runWithHook(t, cfg, loopProgram(120_000),
		onceInSegment(1, func(c *proc.Process) {
			c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
		}))
	if stats.Detected == nil {
		t.Fatal("corruption not detected")
	}
	if got := findMetric(t, reg.Snapshot(), "paft_core_detections_total").Value; got != 1 {
		t.Errorf("detections counter = %v, want 1", got)
	}
	detected := 0
	for _, sp := range spans.Spans() {
		if sp.Outcome == telemetry.OutcomeDetected {
			detected++
		}
	}
	if detected != 1 {
		t.Errorf("detected spans = %d, want 1", detected)
	}
}

// TestTelemetryRollbackSpans: a main fault that rolls back closes every
// discarded live segment's span with the rollback outcome.
func TestTelemetryRollbackSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanRecorder(0)
	cfg := recoveryConfig()
	cfg.Metrics = reg
	cfg.Spans = spans
	fired := false
	cfg.MainHook = func(m *proc.Process, nowNs float64) {
		if fired || m.Instrs < 200_000 {
			return
		}
		m.FlipRegisterBit(proc.GPRClass, 1, 0, 33)
		fired = true
	}
	e := newTestEngine(13)
	rt := NewRuntime(e, cfg)
	stats, err := rt.Run(loopProgram(120_000))
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Skip("main finished before the injection point")
	}
	if stats.Rollbacks == 0 {
		t.Fatal("main fault produced no rollback")
	}
	if got := findMetric(t, reg.Snapshot(), "paft_core_rollbacks_total").Value; got != float64(stats.Rollbacks) {
		t.Errorf("rollback counter = %v, stats = %d", got, stats.Rollbacks)
	}
	rolledBack := 0
	for _, sp := range spans.Spans() {
		if sp.Outcome == telemetry.OutcomeRollback {
			rolledBack++
		}
	}
	if rolledBack == 0 {
		t.Error("rollback discarded segments but emitted no rollback spans")
	}
}
