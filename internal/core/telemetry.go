package core

import (
	"fmt"
	"time"

	"parallaft/internal/telemetry"
)

// coreMetrics bundles the runtime's instrument handles, resolved once at
// NewRuntime. With Config.Metrics nil every handle is nil, and recording
// through them is a no-op — the hot paths never branch on a feature flag.
//
// Everything here is observation-only: metrics consume no simulated time,
// so enabling them cannot move a single golden byte.
type coreMetrics struct {
	segStarted  *telemetry.Counter
	segSealed   *telemetry.Counter
	segRetired  *telemetry.Counter
	checkpoints *telemetry.Counter

	syscalls *telemetry.Counter
	signals  *telemetry.Counter
	nondet   *telemetry.Counter
	barriers *telemetry.Counter

	migrations     *telemetry.Counter
	exitMigrations *telemetry.Counter
	dvfsChanges    *telemetry.Counter
	queued         *telemetry.Counter

	detections       *telemetry.Counter
	arbitrations     *telemetry.Counter
	recoveredChecker *telemetry.Counter
	rollbacks        *telemetry.Counter

	identitySkips *telemetry.Counter
	hashCacheHits *telemetry.Counter

	hashBytes  *telemetry.Histogram
	dirtyPages *telemetry.Histogram

	liveSegments *telemetry.Gauge
	checkerSlack *telemetry.Gauge

	// NMR vote instruments (registered only when checkers > 1, so the
	// telemetry snapshot of a single-checker run stays byte-identical).
	voteUnanimous  *telemetry.Counter
	voteAbsorbed   *telemetry.Counter
	voteOutvoted   *telemetry.Counter
	voteForwardRep *telemetry.Counter
	voteNoQuorum   *telemetry.Counter
	replicaSlack   []*telemetry.Gauge // per-replica slack, index-aligned
}

func newCoreMetrics(reg *telemetry.Registry, checkers int) coreMetrics {
	var m coreMetrics
	if reg == nil {
		return m
	}
	m.segStarted = reg.Counter("paft_core_segments_started_total",
		"segments begun: checkpoint and checker forked")
	m.segSealed = reg.Counter("paft_core_segments_sealed_total",
		"segments whose end point and record were finalized")
	m.segRetired = reg.Counter("paft_core_segments_retired_total",
		"segments verified and released (includes detected segments torn down at exit)")
	m.checkpoints = reg.Counter("paft_core_checkpoints_total",
		"COW checkpoint forks taken")
	m.syscalls = reg.Counter("paft_core_syscalls_traced_total",
		"main-side syscalls stopped and recorded")
	m.signals = reg.Counter("paft_core_signals_traced_total",
		"main-side signals recorded (internal and external)")
	m.nondet = reg.Counter("paft_core_nondet_traced_total",
		"nondeterministic instructions recorded")
	m.barriers = reg.Counter("paft_core_contain_barriers_total",
		"containment barriers taken before globally-effectful syscalls")
	m.migrations = reg.Counter("paft_core_migrations_total",
		"checkers migrated from little to big cores mid-run")
	m.exitMigrations = reg.Counter("paft_core_exit_migrations_total",
		"checkers migrated to big cores when the main exited")
	m.dvfsChanges = reg.Counter("paft_core_dvfs_changes_total",
		"little-core operating-point changes decided by the pacer")
	m.queued = reg.Counter("paft_core_checker_queued_total",
		"checkers that had to queue because no core was free")
	m.detections = reg.Counter("paft_core_detections_total",
		"divergences detected (before any recovery)")
	m.arbitrations = reg.Counter("paft_core_arbitrations_total",
		"recovery arbitrations: referee re-executions run")
	m.recoveredChecker = reg.Counter("paft_core_recovered_checker_faults_total",
		"checker faults absorbed in place after arbitration")
	m.rollbacks = reg.Counter("paft_core_rollbacks_total",
		"main restorations from a verified checkpoint")
	m.identitySkips = reg.Counter("paft_core_identity_skips_total",
		"pages proven equal by frame identity alone during comparison")
	m.hashCacheHits = reg.Counter("paft_core_hash_cache_hits_total",
		"page hashes served from a frame's memo during comparison")
	m.hashBytes = reg.Histogram("paft_core_compare_hash_bytes",
		"bytes hashed per end-of-segment comparison",
		telemetry.ExpBuckets(4096, 4, 12))
	m.dirtyPages = reg.Histogram("paft_core_compare_dirty_pages",
		"pages hashed per end-of-segment comparison",
		telemetry.ExpBuckets(1, 4, 10))
	m.liveSegments = reg.Gauge("paft_core_live_segments",
		"unverified segments currently outstanding")
	m.checkerSlack = reg.Gauge("paft_core_checker_slack_simns",
		"simulated ns between the main's clock and the oldest unverified segment's start")
	if checkers > 1 {
		m.voteUnanimous = reg.Counter("paft_core_vote_unanimous_total",
			"NMR votes where every replica agreed with the end checkpoint")
		m.voteAbsorbed = reg.Counter("paft_core_vote_absorbed_total",
			"dissenting replicas absorbed in place by a reference-side quorum")
		m.voteOutvoted = reg.Counter("paft_core_vote_outvoted_replicas_total",
			"NMR votes where a replica quorum outvoted the end checkpoint")
		m.voteForwardRep = reg.Counter("paft_core_vote_forward_repairs_total",
			"mains repaired by copying the agreed replica state forward")
		m.voteNoQuorum = reg.Counter("paft_core_vote_no_quorum_total",
			"NMR votes with no majority: fell back to detection and rollback")
		for i := 0; i < checkers; i++ {
			m.replicaSlack = append(m.replicaSlack, reg.Gauge(
				fmt.Sprintf("paft_core_replica%d_slack_simns", i),
				fmt.Sprintf("simulated ns replica %d of the oldest live segment trails the main", i)))
		}
	}
	return m
}

// observeLiveSegments refreshes the live-segment and checker-slack gauges.
// Called at segment start, seal, retire and rollback — the points where
// the verification frontier moves. Slack is how far verification trails
// the main: the main's clock minus the oldest unverified segment's start
// (zero when nothing is outstanding).
func (r *Runtime) observeLiveSegments() {
	if r.cfg.Metrics == nil {
		return
	}
	live := 0
	slack := 0.0
	for _, s := range r.segments {
		if !s.compared {
			live++
		}
	}
	if len(r.segments) > 0 && !r.segments[0].compared {
		slack = r.mainTask.Clock - r.segments[0].mainStartNs
		if slack < 0 {
			slack = 0
		}
	}
	r.tm.liveSegments.Set(float64(live))
	r.tm.checkerSlack.Set(slack)
	if len(r.tm.replicaSlack) > 0 && len(r.segments) > 0 && !r.segments[0].compared {
		for i, rep := range r.segments[0].Replicas {
			if i >= len(r.tm.replicaSlack) {
				break
			}
			rs := 0.0
			if rep.Task != nil {
				rs = r.mainTask.Clock - rep.Task.Clock
				if rs < 0 {
					rs = 0
				}
			}
			r.tm.replicaSlack[i].Set(rs)
		}
	}
}

// emitSpan closes a segment's lifecycle span. endNs is the simulated time
// the span closes (comparison end, recovery acceptance, or rollback).
// Arbitration shadows never get spans: they are referees, not segments.
func (r *Runtime) emitSpan(seg *Segment, outcome string, endNs float64) {
	if r.cfg.Spans == nil || seg.arb {
		return
	}
	sp := telemetry.Span{
		Segment:        seg.Index,
		Outcome:        outcome,
		ForkNs:         seg.mainStartNs,
		SealNs:         seg.mainEndNs,
		CheckerStartNs: seg.checkerStartNs(),
		CheckerDoneNs:  seg.checkerDoneNs(),
		CompareNs:      seg.compareNs,
		EndNs:          endNs,
		Events:         len(seg.Log.Events),
		DirtyPages:     int(seg.dirtyPages),
		OnBig:          seg.sumBigNs() > 0,
	}
	if !seg.wallStart.IsZero() {
		sp.WallNs = time.Since(seg.wallStart).Nanoseconds()
	}
	r.cfg.Spans.Record(sp)
}

// recordStage routes one causal-trace stage span to the tracer and the
// flight recorder. Both sinks are nil-safe, so callers only gate on the
// tracer (the span's wall-clock reads are the cost worth skipping).
func (r *Runtime) recordStage(s telemetry.StageSpan) {
	r.cfg.Tracer.Record(s)
	r.cfg.Flight.RecordSpan(s)
}
