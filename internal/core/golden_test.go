package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCompare checks got against testdata/<name>, rewriting the file under
// -update. The goldens pin the simulated comparison accounting: the
// frame-aware comparison subsystem must not change a single byte of it,
// because the paper's injected hashers hash every dirty page regardless of
// how the host-side comparison is implemented.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// dumpRun renders the simulated comparison accounting of one protected run:
// the per-segment table plus the totals the evaluation depends on.
func dumpRun(st *RunStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchmark=%s slices=%d checkpoints=%d\n", st.Benchmark, st.Slices, st.Checkpoints)
	fmt.Fprintf(&sb, "dirty_pages_hashed=%d bytes_hashed=%d cow_copies=%d\n",
		st.DirtyPagesHashed, st.BytesHashed, st.COWCopies)
	fmt.Fprintf(&sb, "all_wall_ns=%.3f main_wall_ns=%.3f runtime_ns=%.3f\n",
		st.AllWallNs, st.MainWallNs, st.RuntimeNs)
	for _, s := range st.Segments {
		fmt.Fprintf(&sb, "seg %d: main_ns=%.3f events=%d dirty_pages=%d\n",
			s.Index, s.MainNs, s.Events, s.DirtyPages)
	}
	if st.Detected != nil {
		fmt.Fprintf(&sb, "detected: %v\n", st.Detected)
	}
	fmt.Fprintf(&sb, "exit=%d\n", st.ExitCode)
	return sb.String()
}

// TestGoldenSegmentAccounting pins DirtyPagesHashed/BytesHashed per segment
// for both dirty-tracking mechanisms and the full-memory ablation. Any
// refactor of the comparison path must keep these byte-identical.
func TestGoldenSegmentAccounting(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Config)
	}{
		{"golden_segments_framediff.txt", func(c *Config) {}},
		{"golden_segments_softdirty.txt", func(c *Config) { c.Tracking = TrackSoftDirty }},
		{"golden_segments_fullmem.txt", func(c *Config) { c.CompareFullMemory = true }},
	}
	for _, tc := range cases {
		cfg := smallSliceConfig()
		tc.tweak(&cfg)
		e := newTestEngine(13)
		rt := NewRuntime(e, cfg)
		st, err := rt.Run(loopProgram(120_000))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		goldenCompare(t, tc.name, dumpRun(st))
	}
}
