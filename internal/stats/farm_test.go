package stats

import (
	"strings"
	"testing"
)

// TestRunFarm drives the paftbench farm soak at a small scale: three nodes,
// one killed and one joined mid-campaign, verdicts byte-identical to the
// in-process checker and the per-node dedup invariant intact.
func TestRunFarm(t *testing.T) {
	r := NewRunner()
	r.Scale = 0.05
	res, err := r.RunFarm()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range res.Rows {
		if row.Packets == 0 {
			t.Errorf("%s sealed no segments; the soak is not exercising the farm", row.Name)
		}
		total += row.Packets
	}
	if res.Verdicts != total {
		t.Errorf("%d verdicts for %d packets", res.Verdicts, total)
	}
	if res.Diverged != 0 || res.Infra != 0 {
		t.Errorf("clean soak produced diverged=%d infra=%d", res.Diverged, res.Infra)
	}
	if !res.Matched {
		t.Error("farm verdicts not byte-identical to the in-process checker")
	}
	if !res.DedupHeld {
		t.Error("per-node chunk dedup invariant broken")
	}
	if res.NodesKilled != 1 || res.NodesJoined != 1 {
		t.Errorf("kill/join = %d/%d, want 1/1", res.NodesKilled, res.NodesJoined)
	}

	out := FormatFarm(res)
	for _, want := range []string{
		"Distributed check farm soak: 3 nodes, 1 killed and 1 joined",
		"byte-identical to in-process checker: yes",
		"per-node chunk dedup held: yes",
		"one verdict per sealed segment: yes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFarm output missing %q:\n%s", want, out)
		}
	}
}
