package stats

import (
	"testing"

	"parallaft/internal/workload"
)

func TestCompareSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload comparison is slow")
	}
	r := NewRunner()
	r.Scale = 1.0

	for _, name := range []string{"444.namd", "429.mcf", "403.gcc", "470.lbm", "458.sjeng"} {
		w := workload.Get(name)
		if w == nil {
			t.Fatalf("workload %s missing", name)
		}
		c, err := r.Compare(w, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Parallaft.Detected != nil {
			t.Errorf("%s: parallaft false positive: %v", name, c.Parallaft.Detected)
		}
		if c.RAFT.Detected != nil {
			t.Errorf("%s: raft false positive: %v", name, c.RAFT.Detected)
		}
		if string(c.Parallaft.Stdout) != string(c.Baseline.Stdout) {
			t.Errorf("%s: parallaft stdout differs from baseline", name)
		}
		fc, ct, lc, rw := c.Breakdown()
		t.Logf("%-12s base=%.2fms  par +%.1f%% (fork %.1f, cont %.1f, sync %.1f, rt %.1f)  raft +%.1f%% | energy par +%.1f%% raft +%.1f%% | bigwork %.0f%% slices %d",
			name, c.Baseline.WallNs/1e6,
			c.PerfOverhead(ModeParallaft), fc, ct, lc, rw,
			c.PerfOverhead(ModeRAFT),
			c.EnergyOverhead(ModeParallaft), c.EnergyOverhead(ModeRAFT),
			c.Parallaft.BigWorkFraction()*100, c.Parallaft.Slices)
	}
}
