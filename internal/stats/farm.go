package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"parallaft/internal/checkd"
	"parallaft/internal/checkfarm"
	"parallaft/internal/core"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/telemetry"
	"parallaft/internal/workload"
)

// --- distributed check farm soak --------------------------------------------

// FarmRow is one workload's contribution to the farm soak campaign.
type FarmRow struct {
	Name    string
	Packets int
}

// FarmResult is the outcome of the check-farm soak: the stress suite's
// sealed segments sharded over a three-node checkd fleet with one node
// killed and one joined mid-campaign, verdicts compared byte-for-byte
// against the in-process checker.
type FarmResult struct {
	Rows []FarmRow

	Verdicts int
	OK       int
	Diverged int
	Infra    int

	// Matched is true when the farm's verdict stream is byte-identical
	// (JSON encoding) to the in-process reference.
	Matched bool

	// DedupHeld is true when no node instance uploaded a chunk twice, and
	// every instance that ended healthy uploaded exactly its cache.
	DedupHeld bool

	NodesStarted int
	NodesKilled  int
	NodesJoined  int
}

// farmHost is an in-process checkd node on loopback TCP whose listener and
// live sessions can be hard-closed, standing in for a farm host dying
// without a goodbye.
type farmHost struct {
	spec string
	srv  *checkd.Server

	mu     sync.Mutex
	ln     net.Listener
	conns  []net.Conn
	killed bool
	done   chan struct{}
}

type hostListener struct {
	net.Listener
	h *farmHost
}

func (l *hostListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.h.mu.Lock()
	if l.h.killed {
		l.h.mu.Unlock()
		c.Close()
		return nil, net.ErrClosed
	}
	l.h.conns = append(l.h.conns, c)
	l.h.mu.Unlock()
	return c, nil
}

func startFarmHost(opts checkd.Options) (*farmHost, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &farmHost{
		spec: "tcp:" + ln.Addr().String(),
		srv:  checkd.NewServer(opts),
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		h.srv.Serve(&hostListener{Listener: ln, h: h}) //nolint:errcheck
	}()
	return h, nil
}

// kill hard-closes the listener and every live session. Idempotent.
func (h *farmHost) kill() {
	h.mu.Lock()
	if h.killed {
		h.mu.Unlock()
		return
	}
	h.killed = true
	conns := h.conns
	h.conns = nil
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	<-h.done
}

// RunFarm runs the distributed-check-farm soak: every stress workload is
// executed under the protected runtime with packet export, the sealed
// segments are re-checked in-process (the reference) and then submitted to
// a three-node checkd fleet. Halfway through submission one node is killed
// with work in flight and a cold node joins; the campaign must still
// deliver exactly one verdict per segment, byte-identical to the reference,
// with no chunk crossing any node's wire twice.
func (r *Runner) RunFarm() (*FarmResult, error) {
	store := pagestore.New(core.PageHashSeed)
	var allPkts []*packet.CheckPacket
	res := &FarmResult{}

	for _, w := range workload.Stress() {
		before := len(allPkts)
		for _, prog := range w.Gen(r.Scale) {
			e := r.newEngine()
			cfg := r.runtimeConfig(ModeParallaft, e.M)
			cfg.Export = &packet.Exporter{
				Store: store,
				Sink:  func(p *packet.CheckPacket) error { allPkts = append(allPkts, p); return nil },
			}
			rt := core.NewRuntime(e, cfg)
			stats, err := rt.Run(prog)
			if err != nil {
				return nil, fmt.Errorf("farm: %s %s: %w", w.Name, prog.Name, err)
			}
			if stats.Detected != nil {
				return nil, fmt.Errorf("farm: %s: clean run detected in-process: %v", w.Name, stats.Detected)
			}
		}
		res.Rows = append(res.Rows, FarmRow{Name: w.Name, Packets: len(allPkts) - before})
	}

	want, err := checkd.CheckAll(store, allPkts, checkd.Options{Workers: 4})
	if err != nil {
		return nil, fmt.Errorf("farm: in-process reference: %w", err)
	}

	hosts := make([]*farmHost, 0, 4)
	defer func() {
		for _, h := range hosts {
			h.kill()
		}
	}()
	for i := 0; i < 3; i++ {
		h, err := startFarmHost(checkd.Options{Workers: 2})
		if err != nil {
			return nil, fmt.Errorf("farm: start node: %w", err)
		}
		hosts = append(hosts, h)
	}

	reg := r.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	farm := checkfarm.New(store, checkfarm.Options{Metrics: reg})
	for _, h := range hosts {
		if err := farm.AddNode(h.spec); err != nil {
			farm.Close()
			return nil, fmt.Errorf("farm: add node: %w", err)
		}
	}
	res.NodesStarted = 3

	var got []checkd.Verdict
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for v := range farm.Verdicts() {
			got = append(got, v)
		}
	}()

	half := len(allPkts) / 2
	for _, p := range allPkts[:half] {
		if err := farm.Submit(p); err != nil {
			farm.Close()
			<-collected
			return nil, fmt.Errorf("farm: submit: %w", err)
		}
	}
	// Mid-campaign chaos: one node dies with work in flight, a cold node
	// joins; the survivors and the newcomer absorb the rest.
	hosts[0].kill()
	joined, err := startFarmHost(checkd.Options{Workers: 2})
	if err != nil {
		farm.Close()
		<-collected
		return nil, fmt.Errorf("farm: start joining node: %w", err)
	}
	hosts = append(hosts, joined)
	if err := farm.AddNode(joined.spec); err != nil {
		farm.Close()
		<-collected
		return nil, fmt.Errorf("farm: mid-campaign join: %w", err)
	}
	res.NodesKilled, res.NodesJoined = 1, 1
	for _, p := range allPkts[half:] {
		if err := farm.Submit(p); err != nil {
			farm.Close()
			<-collected
			return nil, fmt.Errorf("farm: submit: %w", err)
		}
	}
	farm.Close()
	<-collected

	res.Verdicts = len(got)
	for _, v := range got {
		switch {
		case v.Infra != "":
			res.Infra++
		case v.OK:
			res.OK++
		default:
			res.Diverged++
		}
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		return nil, err
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		return nil, err
	}
	res.Matched = len(got) == len(want) && bytes.Equal(gotJSON, wantJSON)

	res.DedupHeld = true
	for _, ns := range farm.NodeStats() {
		if ns.Uploads > ns.CacheSize {
			res.DedupHeld = false // a chunk went over the wire twice
		}
		if ns.EvictReason == "" && ns.Uploads != ns.CacheSize {
			res.DedupHeld = false
		}
	}
	return res, nil
}

// FormatFarm renders the soak outcome. Every line is deterministic — packet
// counts come from the simulated runs and the pass/fail facts from exact
// comparisons — so the output is stable across hosts and timing.
func FormatFarm(res *FarmResult) string {
	t := &Table{Header: []string{"workload", "packets"}}
	total := 0
	for _, row := range res.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Packets))
		total += row.Packets
	}
	t.AddRow("total", fmt.Sprintf("%d", total))

	yes := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	return fmt.Sprintf(
		"Distributed check farm soak: %d nodes, %d killed and %d joined mid-campaign\n%s\n"+
			"verdicts: %d  ok=%d diverged=%d infra=%d\n"+
			"one verdict per sealed segment: %s\n"+
			"byte-identical to in-process checker: %s\n"+
			"per-node chunk dedup held: %s",
		res.NodesStarted, res.NodesKilled, res.NodesJoined, t.String(),
		res.Verdicts, res.OK, res.Diverged, res.Infra,
		yes(res.Verdicts == total && res.Infra == 0),
		yes(res.Matched),
		yes(res.DedupHeld))
}
