package stats

import (
	"runtime"
	"strings"
	"testing"

	"parallaft/internal/core"
	"parallaft/internal/workload"
)

// TestLedgerReconcilesAcrossSuite drives the attribution invariant over the
// full workload suite: every program of every workload runs with a ledger
// attached, and RunLedger fails if any of them does not reconcile exactly
// against its machine's time and energy books. Scale is reduced — the
// invariant is structural, not length-dependent.
func TestLedgerReconcilesAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite reconciliation is not a -short test")
	}
	r := NewRunner()
	r.Scale = 0.2
	r.Parallel = runtime.NumCPU()
	names := workload.Names()
	rows, err := r.RunLedger(names)
	if err != nil {
		t.Fatalf("RunLedger over the suite: %v", err)
	}
	if len(rows) != len(names) {
		t.Fatalf("rows = %d, workloads = %d", len(rows), len(names))
	}
	for _, row := range rows {
		if row.Summary.ActiveSimNs <= 0 {
			t.Errorf("%s: empty ledger", row.Name)
		}
	}
}

// TestLedgerReconcilesUnderNMR: the invariant with three voting replicas —
// extra substrates, vote-hash charges, diversity presets.
func TestLedgerReconcilesUnderNMR(t *testing.T) {
	r := NewRunner()
	r.Scale = 0.2
	r.Parallel = runtime.NumCPU()
	r.ConfigTweak = func(c *core.Config) {
		if c.CompareStates {
			c.Checkers = 3
		}
	}
	rows, err := r.RunLedger([]string{"429.mcf"})
	if err != nil {
		t.Fatalf("RunLedger with -checkers 3: %v", err)
	}
	if len(rows) != 1 || rows[0].Summary.ActiveSimNs <= 0 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
}

// TestFormatLedgerShape: the rendered table has one row per workload and
// the share columns of a real run sum to ~100%.
func TestFormatLedgerShape(t *testing.T) {
	r := NewRunner()
	r.Scale = 0.2
	r.Parallel = runtime.NumCPU()
	rows, err := r.RunLedger([]string{"429.mcf", "470.lbm"})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLedger(rows)
	if !strings.Contains(out, "429.mcf") || !strings.Contains(out, "470.lbm") {
		t.Errorf("table missing workload rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+len(rows) {
		t.Errorf("table has %d lines, want %d:\n%s", len(lines), 3+len(rows), out)
	}
}
