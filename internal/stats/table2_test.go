package stats

import (
	"testing"

	"parallaft/internal/core"
	"parallaft/internal/workload"
)

// TestTable2Guarantees verifies the table-2 claims: Parallaft detects the
// silent post-syscall error that RAFT provably misses, and both detect
// corruption that reaches syscall data.
func TestTable2Guarantees(t *testing.T) {
	r := NewRunner()
	res, err := r.RunTable2()
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if !res.ParallaftDetectsSilent {
		t.Error("Parallaft missed the silent post-syscall error (paper: guaranteed detection)")
	}
	if res.RAFTDetectsSilent {
		t.Error("RAFT detected the silent error, but its design cannot (footnote 3)")
	}
	if !res.ParallaftDetectsSyscall {
		t.Error("Parallaft missed the syscall-visible error")
	}
	if !res.RAFTDetectsSyscall {
		t.Error("RAFT missed the syscall-visible error")
	}
	if res.ParallaftSilentSegment < 0 {
		t.Error("no detection segment recorded")
	}
	t.Log(FormatTable2(res))
}

// TestInProcessInterceptionReducesSyscallCost checks the §5.7 future-work
// optimisation: switching from ptrace-style stops to in-process
// interception cuts the getpid-loop slowdown by roughly an order of
// magnitude.
func TestInProcessInterceptionReducesSyscallCost(t *testing.T) {
	r := NewRunner()
	w := workload.Get("stress.getpid")
	base, err := r.RunWorkload(w, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	ptraced, err := r.RunWorkload(w, ModeParallaft)
	if err != nil {
		t.Fatal(err)
	}
	fast := NewRunner()
	fast.ConfigTweak = func(c *core.Config) { c.InProcessInterception = true }
	inproc, err := fast.RunWorkload(w, ModeParallaft)
	if err != nil {
		t.Fatal(err)
	}
	slow := ptraced.WallNs / base.WallNs
	quick := inproc.WallNs / base.WallNs
	if quick >= slow/4 {
		t.Errorf("in-process interception: %.1fx vs ptrace %.1fx — expected a big cut", quick, slow)
	}
	t.Logf("getpid slowdown: ptrace %.1fx, in-process %.1fx", slow, quick)
}

func TestStressSlowdowns(t *testing.T) {
	if testing.Short() {
		t.Skip("stress comparison is slow")
	}
	r := NewRunner()
	rows, err := r.RunStress()
	if err != nil {
		t.Fatalf("stress: %v", err)
	}
	for _, row := range rows {
		if row.ParallaftX < 2 {
			t.Errorf("%s: parallaft slowdown %.1fx implausibly low", row.Name, row.ParallaftX)
		}
		// RAFT shares the syscall-handling logic, so its slowdown should
		// be in the same ballpark (§5.7).
		if row.RAFTX < row.ParallaftX/4 {
			t.Errorf("%s: raft slowdown %.1fx far below parallaft %.1fx", row.Name, row.RAFTX, row.ParallaftX)
		}
	}
	t.Log("\n" + FormatStress(rows))
}
