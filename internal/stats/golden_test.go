package stats

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// The goldens pin the rendered experiment outputs byte for byte. The
// simulated cost model (DirtyPagesHashed, BytesHashed, HashByteNs charging)
// is part of the paper's methodology; host-side optimisations of the
// comparison path — frame-identity fast paths, memoized hashes, concurrent
// hashing — must leave every one of these tables untouched.

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func goldenRunner() *Runner {
	r := NewRunner()
	r.Scale = 0.1
	r.Parallel = 1
	return r
}

// TestGoldenSuiteOutput pins the figure-5/7/8 and table-1 renderings for a
// representative two-workload suite (memory-bound chase + multi-input).
func TestGoldenSuiteOutput(t *testing.T) {
	sr, err := goldenRunner().RunSuite([]string{"429.mcf", "403.gcc"}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := sr.FormatFig5() + sr.FormatFig7() + sr.FormatFig8() + sr.FormatTable1()
	goldenCompare(t, "golden_suite.txt", out)
}

// TestGoldenFig9Output pins the slicing-period sweep rendering on a small
// grid.
func TestGoldenFig9Output(t *testing.T) {
	points, err := goldenRunner().RunFig9(
		[]string{"403.gcc", "458.sjeng"}, []float64{400_000, 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_fig9.txt", FormatFig9(points))
}

// TestGoldenNMROutput pins the Checkers=3 voting-outcome table: the clean
// run is unanimous, the injected checker SEU is absorbed in place with zero
// rollbacks charged, and the injected main fault is repaired by a forward
// state copy — both with the program's output intact.
func TestGoldenNMROutput(t *testing.T) {
	rows, err := goldenRunner().RunNMR()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.RolledBack != 0 {
			t.Errorf("%s: %d rollbacks charged; NMR must absorb or repair forward", row.Scenario, row.RolledBack)
		}
		if !row.OutputIntact {
			t.Errorf("%s: exit code or stdout diverged from the fault-free baseline", row.Scenario)
		}
	}
	goldenCompare(t, "golden_nmr.txt", FormatNMR(rows))
}

// TestGoldenTable2Output pins the detection-guarantee table, which exercises
// the comparison path's error reporting (detected segment index and all).
func TestGoldenTable2Output(t *testing.T) {
	res, err := goldenRunner().RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_table2.txt", FormatTable2(res))
}
