package stats

import (
	"bytes"
	"strings"
	"testing"
)

// The parallel campaign engine's contract: for a fixed seed, every rendered
// table is byte-identical whether the runs fan out or execute serially.

func suiteOutput(t *testing.T, parallel int) string {
	t.Helper()
	r := NewRunner()
	r.Scale = 0.1
	r.Parallel = parallel
	sr, err := r.RunSuite([]string{"444.namd", "403.gcc", "458.sjeng"}, true)
	if err != nil {
		t.Fatal(err)
	}
	return sr.FormatFig5() + sr.FormatFig6() + sr.FormatFig7() + sr.FormatFig8() + sr.FormatTable1()
}

func TestSuiteParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs workloads")
	}
	serial := suiteOutput(t, 1)
	parallel := suiteOutput(t, 4)
	if serial != parallel {
		t.Errorf("suite output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFig10ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an injection campaign")
	}
	run := func(parallel int) string {
		r := NewRunner()
		r.Parallel = parallel
		rows, err := r.RunFig10([]string{"456.hmmer"}, 2, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		return FormatFig10(rows)
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Errorf("fig10 output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFig9ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the slicing-period sweep")
	}
	run := func(parallel int) string {
		r := NewRunner()
		r.Scale = 0.25
		r.Parallel = parallel
		points, err := r.RunFig9([]string{"429.mcf", "458.sjeng"}, []float64{400_000, 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return FormatFig9(points)
	}
	if serial, parallel := run(1), run(4); serial != parallel {
		t.Errorf("fig9 output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestTable2ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table-2 scenarios")
	}
	run := func(parallel int) string {
		r := NewRunner()
		r.Parallel = parallel
		res, err := r.RunTable2()
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable2(res)
	}
	if serial, parallel := run(1), run(4); serial != parallel {
		t.Errorf("table2 output differs:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestSuiteProgressReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("runs workloads")
	}
	var buf bytes.Buffer
	r := NewRunner()
	r.Scale = 0.1
	r.Parallel = 2
	r.Progress = &buf
	if _, err := r.RunSuite([]string{"444.namd", "403.gcc"}, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "suite: 2/2 done") || !strings.Contains(out, "eta") {
		t.Errorf("progress stream missing completion/ETA lines:\n%s", out)
	}
}
