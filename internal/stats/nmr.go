package stats

import (
	"bytes"
	"fmt"

	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/proc"
)

// NMRRow is one scenario's voting-outcome distribution from the Checkers=3
// campaign: how many segments retired unanimously, how many dissenting
// replicas the reference-side quorum absorbed in place, how many segments a
// replica quorum outvoted the reference in, and whether the main was
// repaired forward (no rollback charged) or rolled back.
type NMRRow struct {
	Scenario string

	Unanimous       int
	Absorbed        int
	Outvoted        int
	ForwardRepaired int
	RolledBack      int
	NoQuorum        int

	Detected *core.DetectedError
	// OutputIntact reports whether the run's exit code and stdout match the
	// fault-free baseline — the end-to-end correctness check behind the
	// "absorbed" and "repaired" claims.
	OutputIntact bool
}

// nmrConfig builds the campaign's runtime config: the default Parallaft
// config (plus any runner tweak), always at three replicas so every
// scenario votes.
func (r *Runner) nmrConfig() core.Config {
	cfg := core.DefaultConfig()
	if r.ConfigTweak != nil {
		r.ConfigTweak(&cfg)
	}
	cfg.Checkers = 3
	return cfg
}

// RunNMR runs the main+3 NMR demonstration campaign over the table-2
// program (compute, one visible write, a long silent tail). Three
// scenarios, all independent simulations fanned out over Runner.Parallel:
//
//   - clean: no fault; every segment must retire unanimously.
//   - checker-seu: an SEU lands in one replica mid-segment; the reference
//     plus the two healthy replicas keep the quorum and absorb the
//     dissenter in place — no rollback, no arbitration, no detection.
//   - main-fault: the SEU lands in the main itself; the three replicas
//     agree pairwise, outvote the end checkpoint, and the main is repaired
//     by a forward copy of the agreed state — again with zero rollbacks.
func (r *Runner) RunNMR() ([]NMRRow, error) {
	prog := table2Program()

	// The fault-free reference output (exit code + stdout).
	e := r.newEngine()
	base, err := e.RunBaseline(prog, e.M.BigCores()[0])
	if err != nil {
		return nil, fmt.Errorf("nmr baseline: %w", err)
	}

	type scenario struct {
		name string
		rig  func(cfg *core.Config)
	}
	scenarios := []scenario{
		{"clean", func(*core.Config) {}},
		{"checker-seu", func(cfg *core.Config) {
			// CheckerHook fires only for replica 0: the single-fault model.
			fired := false
			cfg.CheckerHook = func(seg int, c *proc.Process, _ float64) {
				if fired || seg < 1 {
					return
				}
				c.FlipRegisterBit(proc.GPRClass, 8, 0, 17)
				fired = true
			}
		}},
		{"main-fault", func(cfg *core.Config) {
			// The flip lands in the silent post-write tail: the segments the
			// repair discards contain no escaped output, so the forward copy
			// leaves the program's stdout and exit code untouched.
			fired := false
			cfg.MainHook = func(m *proc.Process, _ float64) {
				if fired || m.Instrs < 1_200_000 {
					return
				}
				m.FlipRegisterBit(proc.GPRClass, 8, 0, 17)
				fired = true
			}
		}},
	}

	pr := r.newProgress("nmr", len(scenarios))
	results := campaign.RunProgress(r.Parallel, len(scenarios), pr, func(i int) (NMRRow, error) {
		sc := scenarios[i]
		cfg := r.nmrConfig()
		sc.rig(&cfg)
		rt := core.NewRuntime(r.newEngine(), cfg)
		stats, err := rt.Run(prog)
		if err != nil {
			return NMRRow{}, fmt.Errorf("nmr %s: %w", sc.name, err)
		}
		return NMRRow{
			Scenario:        sc.name,
			Unanimous:       stats.VoteUnanimous,
			Absorbed:        stats.VoteAbsorbed,
			Outvoted:        stats.VoteOutvotedReplicas,
			ForwardRepaired: stats.ForwardRepairs,
			RolledBack:      stats.Rollbacks,
			NoQuorum:        stats.VoteNoQuorum,
			Detected:        stats.Detected,
			OutputIntact: stats.ExitCode == base.ExitCode &&
				bytes.Equal(stats.Stdout, base.Stdout),
		}, nil
	})
	var rows []NMRRow
	for _, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		rows = append(rows, res.Value)
	}
	return rows, nil
}

// FormatNMR renders the voting-outcome table — the Table-2 extension for
// NMR mode: faults that a single checker could only detect (and pay a
// rollback for) are absorbed or repaired forward by the majority.
func FormatNMR(rows []NMRRow) string {
	t := &Table{Header: []string{
		"scenario", "unanimous", "absorbed", "outvoted",
		"fwd-repaired", "rolled-back", "no-quorum", "detected", "output"}}
	for _, row := range rows {
		detected := "-"
		if row.Detected != nil {
			detected = row.Detected.Kind.String()
		}
		output := "intact"
		if !row.OutputIntact {
			output = "DIVERGED"
		}
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Unanimous),
			fmt.Sprintf("%d", row.Absorbed),
			fmt.Sprintf("%d", row.Outvoted),
			fmt.Sprintf("%d", row.ForwardRepaired),
			fmt.Sprintf("%d", row.RolledBack),
			fmt.Sprintf("%d", row.NoQuorum),
			detected, output)
	}
	return "NMR mode (3 replicas): voting outcomes — checker SEUs absorbed in place, main faults repaired forward\n" + t.String()
}
