package stats

import (
	"fmt"
	"sort"
	"strings"

	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/inject"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
	"parallaft/internal/workload"
)

// SuiteResult holds the per-benchmark comparisons an experiment renders.
type SuiteResult struct {
	Comparisons []*Comparison
}

// resolveWorkloads maps workload names to definitions (nil = full suite).
func resolveWorkloads(names []string) ([]*workload.Workload, error) {
	if names == nil {
		return workload.All(), nil
	}
	var ws []*workload.Workload
	for _, n := range names {
		w := workload.Get(n)
		if w == nil {
			return nil, fmt.Errorf("stats: unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// RunSuite runs baseline/Parallaft(/RAFT) sessions for the named workloads
// (nil = the full suite). Workloads are independent simulations, so they
// fan out over Runner.Parallel workers; comparisons come back in input
// order, making the rendered figures identical to a serial run.
func (r *Runner) RunSuite(names []string, withRAFT bool) (*SuiteResult, error) {
	ws, err := resolveWorkloads(names)
	if err != nil {
		return nil, err
	}
	pr := r.newProgress("suite", len(ws))
	results := campaign.RunProgress(r.Parallel, len(ws), pr, func(i int) (*Comparison, error) {
		c, err := r.Compare(ws[i], withRAFT)
		if err != nil {
			return nil, err
		}
		if c.Parallaft.Detected != nil {
			return nil, fmt.Errorf("stats: %s: parallaft flagged a phantom error: %v", ws[i].Name, c.Parallaft.Detected)
		}
		return c, nil
	})
	sr := &SuiteResult{}
	for _, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		sr.Comparisons = append(sr.Comparisons, res.Value)
	}
	return sr, nil
}

func (sr *SuiteResult) geomeans() (parPerf, raftPerf, parEnergy, raftEnergy, parMem, raftMem float64) {
	var pp, rp, pe, re []float64
	var pm, rm []float64
	for _, c := range sr.Comparisons {
		pp = append(pp, c.PerfOverhead(ModeParallaft))
		pe = append(pe, c.EnergyOverhead(ModeParallaft))
		pm = append(pm, c.MemoryNormalized(ModeParallaft))
		if c.RAFT != nil {
			rp = append(rp, c.PerfOverhead(ModeRAFT))
			re = append(re, c.EnergyOverhead(ModeRAFT))
			rm = append(rm, c.MemoryNormalized(ModeRAFT))
		}
	}
	return GeomeanOverhead(pp), GeomeanOverhead(rp), GeomeanOverhead(pe), GeomeanOverhead(re),
		Geomean(pm), Geomean(rm)
}

// FormatFig5 renders the figure-5 data: per-benchmark performance overhead
// of Parallaft and RAFT, plus geometric means (paper: 15.9 % vs 16.2 %).
func (sr *SuiteResult) FormatFig5() string {
	t := &Table{Header: []string{"benchmark", "parallaft", "raft"}}
	for _, c := range sr.Comparisons {
		raft := "-"
		if c.RAFT != nil {
			raft = Pct(c.PerfOverhead(ModeRAFT))
		}
		t.AddRow(c.Name, Pct(c.PerfOverhead(ModeParallaft)), raft)
	}
	pp, rp, _, _, _, _ := sr.geomeans()
	t.AddRow("geomean", Pct(pp), Pct(rp))
	return "Figure 5: performance overhead (paper geomeans: Parallaft 15.9%, RAFT 16.2%)\n" + t.String()
}

// FormatFig6 renders the figure-6 data: Parallaft's overhead decomposed
// into fork+COW, resource contention, last-checker sync and runtime work.
func (sr *SuiteResult) FormatFig6() string {
	t := &Table{Header: []string{"benchmark", "fork+COW", "contention", "last-sync", "runtime", "total", "bigwork"}}
	for _, c := range sr.Comparisons {
		f, ct, lc, rw := c.Breakdown()
		t.AddRow(c.Name, Pct(f), Pct(ct), Pct(lc), Pct(rw),
			Pct(c.PerfOverhead(ModeParallaft)),
			Pct(c.Parallaft.BigWorkFraction()*100))
	}
	return "Figure 6: Parallaft performance-overhead breakdown (\"bigwork\" = checker work on big cores;\npaper quotes 41.7/38.0/50.0% for mcf/milc/lbm)\n" + t.String()
}

// FormatFig7 renders the figure-7 data: energy overhead (paper geomeans:
// Parallaft 44.3 %, RAFT 87.8 %; lbm is the one case where Parallaft
// exceeds RAFT).
func (sr *SuiteResult) FormatFig7() string {
	t := &Table{Header: []string{"benchmark", "parallaft", "raft"}}
	for _, c := range sr.Comparisons {
		raft := "-"
		if c.RAFT != nil {
			raft = Pct(c.EnergyOverhead(ModeRAFT))
		}
		t.AddRow(c.Name, Pct(c.EnergyOverhead(ModeParallaft)), raft)
	}
	_, _, pe, re, _, _ := sr.geomeans()
	t.AddRow("geomean", Pct(pe), Pct(re))
	return "Figure 7: energy overhead (paper geomeans: Parallaft 44.3%, RAFT 87.8%)\n" + t.String()
}

// FormatFig8 renders the figure-8 data: normalised memory usage (average
// summed PSS over baseline; paper geomeans 1.0332 vs 1.0195).
func (sr *SuiteResult) FormatFig8() string {
	t := &Table{Header: []string{"benchmark", "parallaft", "raft"}}
	for _, c := range sr.Comparisons {
		raft := "-"
		if c.RAFT != nil {
			raft = F2(c.MemoryNormalized(ModeRAFT)) + "x"
		}
		t.AddRow(c.Name, F2(c.MemoryNormalized(ModeParallaft))+"x", raft)
	}
	_, _, _, _, pm, rm := sr.geomeans()
	t.AddRow("geomean", F2(pm)+"x", F2(rm)+"x")
	return "Figure 8: normalized memory usage (paper geomeans: Parallaft 1.033x, RAFT 1.020x)\n" + t.String()
}

// FormatTable1 renders the two runtime-based rows of table 1 with measured
// numbers.
func (sr *SuiteResult) FormatTable1() string {
	pp, rp, pe, re, pm, rm := sr.geomeans()
	t := &Table{Header: []string{"approach", "hw", "src", "memory", "performance", "energy"}}
	t.AddRow("RAFT (asynchronous duplication)", "N", "N", Pct((rm-1)*100), Pct(rp), Pct(re))
	t.AddRow("Parallaft (parallel heterogeneous)", "N", "N", Pct((pm-1)*100), Pct(pp), Pct(pe))
	return "Table 1 (runtime-based rows; paper: RAFT 1.95%/16.2%/87.8%, Parallaft 3.32%/15.9%/44.3%)\n" + t.String()
}

// --- figure 9: slicing-period sweep --------------------------------------

// SweepPoint is one (benchmark, period) measurement of figure 9.
type SweepPoint struct {
	Benchmark    string
	PeriodCycles float64
	ForkCOW      float64 // % of baseline (fig. 9a)
	LastChecker  float64 // % of baseline (fig. 9b)
	Combined     float64 // total overhead % (fig. 9c)
}

// Fig9Periods are the sweep's slicing periods: the paper's 1/2/5/10/20
// billion cycles at the 1:2500 simulation time scale.
var Fig9Periods = []float64{400_000, 800_000, 2_000_000, 4_000_000, 8_000_000}

// Fig9Benchmarks are the paper's sweep subjects.
var Fig9Benchmarks = []string{"403.gcc", "429.mcf", "458.sjeng"}

// RunFig9 sweeps the slicing period for the figure-9 benchmarks. The sweep
// is a grid of independent runs: per-benchmark baselines fan out first,
// then every (benchmark, period) Parallaft run; points come back in the
// serial nesting order (benchmark-major, period-minor).
func (r *Runner) RunFig9(benchmarks []string, periods []float64) ([]SweepPoint, error) {
	if benchmarks == nil {
		benchmarks = Fig9Benchmarks
	}
	if periods == nil {
		periods = Fig9Periods
	}
	ws := make([]*workload.Workload, len(benchmarks))
	for i, name := range benchmarks {
		if ws[i] = workload.Get(name); ws[i] == nil {
			return nil, fmt.Errorf("stats: unknown workload %q", name)
		}
	}

	basePr := r.newProgress("fig9 baselines", len(ws))
	bases := campaign.RunProgress(r.Parallel, len(ws), basePr, func(i int) (*SessionResult, error) {
		return r.RunWorkload(ws[i], ModeBaseline)
	})
	if err := campaign.FirstErr(bases); err != nil {
		return nil, err
	}

	type cell struct {
		bench  int
		period float64
	}
	var cells []cell
	for b := range ws {
		for _, p := range periods {
			cells = append(cells, cell{b, p})
		}
	}
	pr := r.newProgress("fig9 sweep", len(cells))
	points := campaign.RunProgress(r.Parallel, len(cells), pr, func(i int) (SweepPoint, error) {
		w, period := ws[cells[i].bench], cells[i].period
		sweep := *r
		sweep.ConfigTweak = func(c *core.Config) {
			c.SlicePeriodCycles = period
			c.SlicePeriodInstrs = uint64(period)
			if r.ConfigTweak != nil {
				r.ConfigTweak(c)
			}
		}
		par, err := sweep.RunWorkload(w, ModeParallaft)
		if err != nil {
			return SweepPoint{}, err
		}
		c := &Comparison{Name: w.Name, Baseline: bases[cells[i].bench].Value, Parallaft: par}
		f, _, lc, _ := c.Breakdown()
		return SweepPoint{
			Benchmark:    w.Name,
			PeriodCycles: period,
			ForkCOW:      f,
			LastChecker:  lc,
			Combined:     c.PerfOverhead(ModeParallaft),
		}, nil
	})
	out := make([]SweepPoint, 0, len(points))
	for _, res := range points {
		if res.Err != nil {
			return nil, res.Err
		}
		out = append(out, res.Value)
	}
	return out, nil
}

// FormatFig9 renders the three panels of figure 9.
func FormatFig9(points []SweepPoint) string {
	var sb strings.Builder
	panels := []struct {
		title string
		get   func(SweepPoint) float64
	}{
		{"Figure 9(a): forking-and-COW overhead vs slicing period", func(p SweepPoint) float64 { return p.ForkCOW }},
		{"Figure 9(b): last-checker-sync overhead vs slicing period", func(p SweepPoint) float64 { return p.LastChecker }},
		{"Figure 9(c): combined overhead vs slicing period", func(p SweepPoint) float64 { return p.Combined }},
	}
	byBench := map[string][]SweepPoint{}
	var benches []string
	var periods []float64
	seenP := map[float64]bool{}
	for _, p := range points {
		if len(byBench[p.Benchmark]) == 0 {
			benches = append(benches, p.Benchmark)
		}
		byBench[p.Benchmark] = append(byBench[p.Benchmark], p)
		if !seenP[p.PeriodCycles] {
			seenP[p.PeriodCycles] = true
			periods = append(periods, p.PeriodCycles)
		}
	}
	sort.Float64s(periods)
	for _, panel := range panels {
		header := []string{"benchmark"}
		for _, p := range periods {
			header = append(header, fmt.Sprintf("%.1fM", p/1e6))
		}
		t := &Table{Header: header}
		for _, b := range benches {
			row := []string{b}
			for _, period := range periods {
				val := "-"
				for _, pt := range byBench[b] {
					if pt.PeriodCycles == period {
						val = Pct(panel.get(pt))
					}
				}
				row = append(row, val)
			}
			t.AddRow(row...)
		}
		sb.WriteString(panel.title)
		sb.WriteString(" (periods in sim cycles; 2.0M = the paper's 5 G)\n")
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- figure 10: fault injection -------------------------------------------

// InjectionRow is one benchmark's fault-injection outcome distribution.
type InjectionRow struct {
	Benchmark string
	Report    *inject.Report
}

// RunFig10 runs the §5.6 fault-injection campaign over the named workloads
// (nil = full suite); trials is per segment (paper: 5). Workloads run in
// sequence, but each workload's trials — the hottest loop of the whole
// evaluation, one full simulation per trial — fan out over Runner.Parallel
// workers inside inject.Campaign.
func (r *Runner) RunFig10(names []string, trials int, scale float64) ([]InjectionRow, error) {
	ws, err := resolveWorkloads(names)
	if err != nil {
		return nil, err
	}
	var rows []InjectionRow
	for _, w := range ws {
		progs := w.Gen(scale)
		// Inject into the first input program of multi-input benchmarks.
		camp := &inject.Campaign{
			NewEngine: func() *sim.Engine {
				m := machine.New(r.MachineCfg())
				k := oskernel.NewKernel(m.PageSize, r.Seed)
				for name, data := range workload.Files() {
					k.AddFile(name, data)
				}
				l := oskernel.NewLoader(k, m.PageSize, r.Seed)
				return sim.New(m, k, l)
			},
			Program:          progs[0],
			Config:           r.injectionConfig(),
			TrialsPerSegment: trials,
			Seed:             r.Seed * 7919,
			Parallel:         r.Parallel,
			Progress:         r.Progress,
			Telemetry:        r.Telemetry,
		}
		rep, err := camp.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		rows = append(rows, InjectionRow{Benchmark: w.Name, Report: rep})
	}
	return rows, nil
}

func (r *Runner) injectionConfig() core.Config {
	cfg := core.DefaultConfig()
	if r.ConfigTweak != nil {
		r.ConfigTweak(&cfg)
	}
	return cfg
}

// FormatFig10 renders the figure-10 outcome distribution.
func FormatFig10(rows []InjectionRow) string {
	t := &Table{Header: []string{"benchmark", "detected", "exception", "timeout", "benign", "trials"}}
	var agg [inject.NumOutcomes]int
	total := 0
	for _, row := range rows {
		rep := row.Report
		landed := 0
		for _, tr := range rep.Trials {
			if tr.Outcome != inject.OutcomeFailed {
				landed++
			}
		}
		t.AddRow(row.Benchmark,
			Pct(rep.Rate(inject.OutcomeDetected)*100),
			Pct(rep.Rate(inject.OutcomeException)*100),
			Pct(rep.Rate(inject.OutcomeTimeout)*100),
			Pct(rep.Rate(inject.OutcomeBenign)*100),
			fmt.Sprintf("%d", landed))
		for o, n := range rep.Counts {
			agg[o] += n
		}
		total += landed
	}
	if total > 0 {
		t.AddRow("average",
			Pct(float64(agg[inject.OutcomeDetected])/float64(total)*100),
			Pct(float64(agg[inject.OutcomeException])/float64(total)*100),
			Pct(float64(agg[inject.OutcomeTimeout])/float64(total)*100),
			Pct(float64(agg[inject.OutcomeBenign])/float64(total)*100),
			fmt.Sprintf("%d", total))
	}
	return "Figure 10: fault-injection outcomes (paper: 43.3% benign on average, everything else detected)\n" + t.String()
}

// --- §5.7 stress tests ------------------------------------------------------

// StressRow is one stress microbenchmark's slowdown.
type StressRow struct {
	Name          string
	ParallaftX    float64
	RAFTX         float64
	PaperParallaX float64
}

// RunStress measures the §5.7 syscall/signal stress slowdowns, fanning the
// microbenchmarks out over Runner.Parallel workers.
func (r *Runner) RunStress() ([]StressRow, error) {
	paper := map[string]float64{
		"stress.getpid":  124.5,
		"stress.devzero": 18.5,
		"stress.sigusr1": 39.8,
	}
	sws := workload.Stress()
	pr := r.newProgress("stress", len(sws))
	results := campaign.RunProgress(r.Parallel, len(sws), pr, func(i int) (StressRow, error) {
		w := sws[i]
		base, err := r.RunWorkload(w, ModeBaseline)
		if err != nil {
			return StressRow{}, err
		}
		par, err := r.RunWorkload(w, ModeParallaft)
		if err != nil {
			return StressRow{}, err
		}
		raft, err := r.RunWorkload(w, ModeRAFT)
		if err != nil {
			return StressRow{}, err
		}
		return StressRow{
			Name:          w.Name,
			ParallaftX:    par.WallNs / base.WallNs,
			RAFTX:         raft.WallNs / base.WallNs,
			PaperParallaX: paper[w.Name],
		}, nil
	})
	var rows []StressRow
	for _, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		rows = append(rows, res.Value)
	}
	return rows, nil
}

// FormatStress renders the §5.7 numbers.
func FormatStress(rows []StressRow) string {
	t := &Table{Header: []string{"stress test", "parallaft", "raft", "paper"}}
	for _, row := range rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.1fx", row.ParallaftX),
			fmt.Sprintf("%.1fx", row.RAFTX),
			fmt.Sprintf("%.1fx", row.PaperParallaX))
	}
	return "§5.7 syscall/signal stress slowdowns (RAFT is near-identical by shared syscall handling)\n" + t.String()
}

// NewIntelRunner returns a runner on the Intel-like preset for the §5.8
// experiment (4 KiB pages, instruction-based slicing, shared voltage
// domain).
func NewIntelRunner() *Runner {
	return &Runner{MachineCfg: machine.IntelLike, Scale: 1.0, Seed: 12345}
}

// FormatIntel renders the §5.8 comparison (paper: Parallaft 26.2 % perf /
// 46.7 % energy; RAFT 12.9 % / 50.2 %).
func (sr *SuiteResult) FormatIntel() string {
	pp, rp, pe, re, _, _ := sr.geomeans()
	t := &Table{Header: []string{"metric", "parallaft", "raft", "paper parallaft", "paper raft"}}
	t.AddRow("perf overhead", Pct(pp), Pct(rp), "26.2%", "12.9%")
	t.AddRow("energy overhead", Pct(pe), Pct(re), "46.7%", "50.2%")
	return "§5.8 Intel x86_64 heterogeneous platform\n" + t.String()
}
