// Package stats runs the evaluation sessions (baseline / Parallaft / RAFT)
// over workloads and aggregates the overhead metrics the paper reports:
// performance overhead and its four-way breakdown (§5.2), energy overhead
// (§5.3), normalised memory usage (§5.4), and geometric means across the
// suite.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
	"parallaft/internal/workload"
)

// Mode selects how a session executes the programs.
type Mode uint8

// Session modes.
const (
	ModeBaseline Mode = iota
	ModeParallaft
	ModeRAFT
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeParallaft:
		return "parallaft"
	case ModeRAFT:
		return "raft"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// SessionResult aggregates one workload run (all of its input programs,
// executed back to back like SPEC's multiple ref inputs).
type SessionResult struct {
	Mode Mode
	Name string

	WallNs     float64 // end-to-end, including last-checker sync
	MainWallNs float64
	UserNs     float64
	SysNs      float64
	RuntimeNs  float64
	EnergyJ    float64
	AvgPSS     float64 // time-weighted across programs

	Slices           int
	Checkpoints      int
	SegmentsTotal    int
	SegmentsOnBig    int
	COWCopies        uint64
	DirtyPagesHashed uint64
	// Host-side comparison-subsystem shortcuts (diagnostics; not part of
	// the simulated cost model, so absent from all figures and tables).
	IdentitySkips uint64
	HashCacheHits uint64

	CheckerBigNs    float64
	CheckerLittleNs float64

	CheckerLittleInstrs uint64
	CheckerBigInstrs    uint64

	Detected *core.DetectedError
	Stdout   []byte
}

// BigWorkFraction is the instruction-weighted fraction of checker work done
// on big cores — the metric behind the paper's "checkers do 41.7%, 38.0%,
// and 50.0% of work on big cores" for mcf, milc and lbm (§5.2.1).
func (s *SessionResult) BigWorkFraction() float64 {
	tot := s.CheckerBigInstrs + s.CheckerLittleInstrs
	if tot == 0 {
		return 0
	}
	return float64(s.CheckerBigInstrs) / float64(tot)
}

// BigTimeFraction is the checkers' big-core share of execution time.
func (s *SessionResult) BigTimeFraction() float64 {
	tot := s.CheckerBigNs + s.CheckerLittleNs
	if tot == 0 {
		return 0
	}
	return s.CheckerBigNs / tot
}

// Runner executes sessions on a given machine preset.
type Runner struct {
	// MachineCfg builds the platform; fresh per program so cache and
	// energy state never leak across runs.
	MachineCfg func() machine.Config
	// Scale stretches or shrinks workload iteration counts.
	Scale float64
	// Seed drives all simulated nondeterminism (ASLR, PMU skid, ...).
	Seed int64
	// ConfigTweak, when set, adjusts the runtime config (slice-period
	// sweeps, ablations). It may be called from several workers at once,
	// so it must not mutate shared state.
	ConfigTweak func(*core.Config)
	// Parallel is the worker count for fanning independent simulations out
	// across cores (<= 0 = one per CPU, 1 = serial). Every experiment
	// collects results in input order and derives per-run seeds from run
	// identity, so the rendered tables are byte-identical for any value.
	Parallel int
	// Progress, when set, receives coarse progress/ETA lines (one per
	// finished run) — typically os.Stderr, so tables on stdout stay clean.
	Progress io.Writer
	// Telemetry, when set, backs the campaign progress gauges
	// (paft_campaign_*): progress lines are rendered from the gauges, and
	// contained job panics are counted.
	Telemetry *telemetry.Registry
	// Flight, when set, receives a black-box dump whenever a campaign
	// worker panics (the panic is still contained as an error result).
	Flight *telemetry.FlightRecorder
}

// newProgress builds the campaign reporter for one experiment, wired to
// every sink the runner carries. Campaign panics dump the flight recorder
// even when no progress writer or registry is attached.
func (r *Runner) newProgress(label string, n int) *campaign.Progress {
	pr := campaign.NewProgressWith(r.Progress, label, n, r.Telemetry)
	if pr == nil && r.Flight != nil {
		pr = campaign.NewProgressWith(io.Discard, label, n, nil)
	}
	pr.SetFlight(r.Flight, r.Telemetry)
	return pr
}

// NewRunner returns a runner on the Apple-M2-like preset at scale 1.
func NewRunner() *Runner {
	return &Runner{MachineCfg: machine.AppleM2Like, Scale: 1.0, Seed: 12345}
}

func (r *Runner) newEngine() *sim.Engine {
	m := machine.New(r.MachineCfg())
	k := oskernel.NewKernel(m.PageSize, r.Seed)
	for name, data := range workload.Files() {
		k.AddFile(name, data)
	}
	l := oskernel.NewLoader(k, m.PageSize, r.Seed)
	e := sim.New(m, k, l)
	e.MaxInstr = 2_000_000_000 // runaway-guest guard
	return e
}

func (r *Runner) runtimeConfig(mode Mode, m *machine.Machine) core.Config {
	var cfg core.Config
	if mode == ModeRAFT {
		cfg = core.RAFTConfig()
	} else {
		cfg = core.DefaultConfig()
	}
	if m.SliceByInstructions && mode == ModeParallaft {
		cfg.SliceByInstructions = true
		cfg.Tracking = core.TrackSoftDirty // the x86_64 mechanism (§4.4)
	}
	if r.ConfigTweak != nil {
		r.ConfigTweak(&cfg)
	}
	return cfg
}

// RunWorkload executes one workload in the given mode and aggregates across
// its input programs.
func (r *Runner) RunWorkload(w *workload.Workload, mode Mode) (*SessionResult, error) {
	progs := w.Gen(r.Scale)
	agg := &SessionResult{Mode: mode, Name: w.Name}
	var pssWeighted float64

	for _, prog := range progs {
		e := r.newEngine()
		switch mode {
		case ModeBaseline:
			res, err := e.RunBaseline(prog, e.M.BigCores()[0])
			if err != nil {
				return nil, fmt.Errorf("%s: baseline %s: %w", w.Name, prog.Name, err)
			}
			agg.WallNs += res.WallNs
			agg.MainWallNs += res.WallNs
			agg.UserNs += res.UserNs
			agg.SysNs += res.SysNs
			agg.EnergyJ += res.EnergyJ
			pssWeighted += res.AvgPSS * res.WallNs
			agg.Stdout = append(agg.Stdout, res.Stdout...)

		case ModeParallaft, ModeRAFT:
			rt := core.NewRuntime(e, r.runtimeConfig(mode, e.M))
			stats, err := rt.Run(prog)
			if err != nil {
				return nil, fmt.Errorf("%s: %s %s: %w", w.Name, mode, prog.Name, err)
			}
			agg.WallNs += stats.AllWallNs
			agg.MainWallNs += stats.MainWallNs
			agg.UserNs += stats.MainUserNs
			agg.SysNs += stats.MainSysNs
			agg.RuntimeNs += stats.RuntimeNs
			agg.EnergyJ += stats.EnergyJ
			agg.Slices += stats.Slices
			agg.Checkpoints += stats.Checkpoints
			agg.SegmentsTotal += len(stats.Segments)
			agg.SegmentsOnBig += stats.SegmentsOnBig
			agg.COWCopies += stats.COWCopies
			agg.DirtyPagesHashed += stats.DirtyPagesHashed
			agg.IdentitySkips += stats.IdentitySkips
			agg.HashCacheHits += stats.HashCacheHits
			agg.CheckerBigNs += stats.CheckerBigNs
			agg.CheckerLittleNs += stats.CheckerLittleNs
			agg.CheckerBigInstrs += stats.CheckerBigInstrs
			agg.CheckerLittleInstrs += stats.CheckerLittleInstrs
			pssWeighted += stats.AvgPSSBytes * stats.AllWallNs
			agg.Stdout = append(agg.Stdout, stats.Stdout...)
			if stats.Detected != nil && agg.Detected == nil {
				agg.Detected = stats.Detected
			}
		}
	}
	if agg.WallNs > 0 {
		agg.AvgPSS = pssWeighted / agg.WallNs
	}
	return agg, nil
}

// Comparison is the per-benchmark triple the figures are built from.
type Comparison struct {
	Name      string
	Baseline  *SessionResult
	Parallaft *SessionResult
	RAFT      *SessionResult
}

// PerfOverhead returns the performance overhead (%) for a mode.
func (c *Comparison) PerfOverhead(mode Mode) float64 {
	s := c.session(mode)
	if s == nil || c.Baseline.WallNs == 0 {
		return 0
	}
	return (s.WallNs - c.Baseline.WallNs) / c.Baseline.WallNs * 100
}

// EnergyOverhead returns the energy overhead (%) for a mode.
func (c *Comparison) EnergyOverhead(mode Mode) float64 {
	s := c.session(mode)
	if s == nil || c.Baseline.EnergyJ == 0 {
		return 0
	}
	return (s.EnergyJ - c.Baseline.EnergyJ) / c.Baseline.EnergyJ * 100
}

// MemoryNormalized returns average PSS relative to baseline (fig. 8).
func (c *Comparison) MemoryNormalized(mode Mode) float64 {
	s := c.session(mode)
	if s == nil || c.Baseline.AvgPSS == 0 {
		return 0
	}
	return s.AvgPSS / c.Baseline.AvgPSS
}

// Breakdown returns Parallaft's four overhead components as percentages of
// the baseline wall time (§5.2.1): fork+COW (system-time delta), resource
// contention (user-time delta), last-checker sync (all-wall minus
// main-wall), and runtime work (the residual).
func (c *Comparison) Breakdown() (forkCOW, contention, lastChecker, runtimeWork float64) {
	p := c.Parallaft
	if p == nil || c.Baseline.WallNs == 0 {
		return
	}
	base := c.Baseline.WallNs
	forkCOW = (p.SysNs - c.Baseline.SysNs) / base * 100
	contention = (p.UserNs - c.Baseline.UserNs) / base * 100
	lastChecker = (p.WallNs - p.MainWallNs) / base * 100
	total := c.PerfOverhead(ModeParallaft)
	runtimeWork = total - forkCOW - contention - lastChecker
	return
}

func (c *Comparison) session(mode Mode) *SessionResult {
	switch mode {
	case ModeBaseline:
		return c.Baseline
	case ModeParallaft:
		return c.Parallaft
	case ModeRAFT:
		return c.RAFT
	}
	return nil
}

// Compare runs baseline, Parallaft and RAFT sessions for a workload.
func (r *Runner) Compare(w *workload.Workload, withRAFT bool) (*Comparison, error) {
	base, err := r.RunWorkload(w, ModeBaseline)
	if err != nil {
		return nil, err
	}
	par, err := r.RunWorkload(w, ModeParallaft)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Name: w.Name, Baseline: base, Parallaft: par}
	if withRAFT {
		c.RAFT, err = r.RunWorkload(w, ModeRAFT)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// GeomeanOverhead computes the geometric-mean overhead (%) from
// per-benchmark overhead percentages, via the geomean of (1 + x).
func GeomeanOverhead(overheads []float64) float64 {
	if len(overheads) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range overheads {
		f := 1 + o/100
		if f <= 0 {
			f = 1e-9
		}
		sum += math.Log(f)
	}
	return (math.Exp(sum/float64(len(overheads))) - 1) * 100
}

// Geomean computes the plain geometric mean of positive values.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Table is a minimal fixed-width table formatter for harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
