package stats

import (
	"fmt"

	"parallaft/internal/asm"
	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// Table2Result demonstrates the detection-guarantee comparison of table 2:
// Parallaft's periodic state comparison detects every error, including ones
// that never reach a syscall; RAFT, which compares only at syscalls, lets
// such errors escape silently (§3.4, footnote 3).
type Table2Result struct {
	// Silent-error scenario: a register is corrupted in the checker after
	// the last data-carrying syscall; the corruption never influences any
	// syscall argument.
	ParallaftDetectsSilent bool // expected true (register compare at segment end)
	RAFTDetectsSilent      bool // expected false (no syscall ever differs)

	// Syscall-visible scenario: the corruption changes the bytes passed to
	// a write; both runtimes compare syscall inputs.
	ParallaftDetectsSyscall bool
	RAFTDetectsSyscall      bool

	// Detection latency: the segment index where Parallaft flagged the
	// silent error; bounded by construction (§3.4).
	ParallaftSilentSegment int
}

// table2Program: compute, write a message, then a long post-syscall compute
// tail whose registers never reach another syscall (exit code is
// re-materialised as an immediate).
func table2Program() *asm.Program {
	b := asm.NewBuilder("table2")
	b.Ascii("msg", "checkpointed\n")
	b.Space("buf", 32*1024)
	b.MovI(1, 0)
	b.MovI(8, 12345)
	// phase 1: some work
	b.MovI(2, 0)
	b.MovI(3, 120_000)
	b.Addr(4, "buf")
	b.Label("work1")
	b.AndI(5, 2, 4095)
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 32760)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "work1")
	// the only externally visible output
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "msg")
	b.MovI(3, 13)
	b.Syscall()
	// phase 2: a long silent tail using x8 (the injection target)
	b.Label("postwrite")
	b.MovI(2, 0)
	b.MovI(3, 400_000)
	b.Label("work2")
	b.Add(8, 8, 2)
	b.MulI(8, 8, 3)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "work2")
	// exit with a constant: the corrupted x8 never reaches a syscall
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 7)
	b.Syscall()
	return b.MustBuild()
}

// RunTable2 executes the two scenarios under both runtimes; the four
// (scenario, runtime) cells are independent simulations and fan out over
// Runner.Parallel workers.
func (r *Runner) RunTable2() (*Table2Result, error) {
	prog := table2Program()
	postwrite := prog.Labels["postwrite"]
	res := &Table2Result{ParallaftSilentSegment: -1}

	// silentHook flips a bit in x8 once the checker is past the write.
	silentHook := func() func(int, *proc.Process, float64) {
		done := false
		return func(_ int, c *proc.Process, _ float64) {
			if done || c.PC < postwrite {
				return
			}
			c.FlipRegisterBit(proc.GPRClass, 8, 0, 17)
			done = true
		}
	}
	// syscallHook corrupts the message buffer before the checker's write.
	syscallHook := func() func(int, *proc.Process, float64) {
		done := false
		return func(_ int, c *proc.Process, _ float64) {
			if done {
				return
			}
			addr := prog.Symbols["msg"]
			v, f := c.AS.LoadByte(addr)
			if f != nil {
				return
			}
			if _, f := c.AS.StoreByte(addr, v^0x20); f != nil {
				return
			}
			done = true
		}
	}

	type scenario struct {
		hook     func() func(int, *proc.Process, float64)
		raftMode bool
	}
	scenarios := []scenario{
		{silentHook, false},
		{silentHook, true},
		{syscallHook, false},
		{syscallHook, true},
	}
	type verdict struct {
		detected bool
		segment  int
	}
	pr := r.newProgress("table2", len(scenarios))
	results := campaign.RunProgress(r.Parallel, len(scenarios), pr, func(i int) (verdict, error) {
		sc := scenarios[i]
		var cfg core.Config
		if sc.raftMode {
			cfg = core.RAFTConfig()
		} else {
			cfg = core.DefaultConfig()
		}
		if r.ConfigTweak != nil {
			r.ConfigTweak(&cfg)
		}
		cfg.CheckerHook = sc.hook()
		e := r.newEngine()
		rt := core.NewRuntime(e, cfg)
		stats, err := rt.Run(prog)
		if err != nil {
			return verdict{}, err
		}
		v := verdict{detected: stats.Detected != nil, segment: -1}
		if stats.Detected != nil {
			v.segment = stats.Detected.Segment
		}
		return v, nil
	})
	if err := campaign.FirstErr(results); err != nil {
		return nil, err
	}
	res.ParallaftDetectsSilent = results[0].Value.detected
	if results[0].Value.detected {
		res.ParallaftSilentSegment = results[0].Value.segment
	}
	res.RAFTDetectsSilent = results[1].Value.detected
	res.ParallaftDetectsSyscall = results[2].Value.detected
	res.RAFTDetectsSyscall = results[3].Value.detected
	return res, nil
}

// FormatTable2 renders the guarantee comparison.
func FormatTable2(res *Table2Result) string {
	yn := func(b bool) string {
		if b {
			return "detected"
		}
		return "MISSED"
	}
	t := &Table{Header: []string{"scenario", "parallaft", "raft"}}
	t.AddRow("error after last syscall (silent)", yn(res.ParallaftDetectsSilent), yn(res.RAFTDetectsSilent))
	t.AddRow("error reaching a syscall's data", yn(res.ParallaftDetectsSyscall), yn(res.RAFTDetectsSyscall))
	note := fmt.Sprintf("Parallaft flagged the silent error at segment %d (latency bounded by slice period x live segments, §3.4).\n", res.ParallaftSilentSegment)
	return "Table 2: guaranteed error detection (paper: Parallaft yes, RAFT no)\n" + t.String() + note
}
