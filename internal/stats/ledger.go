package stats

import (
	"fmt"

	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/telemetry/profile"
	"parallaft/internal/workload"
)

// LedgerRow is one workload's reconciled overhead attribution: where every
// active simulated nanosecond of the protected run went, as shares of the
// active total, plus the absolute books the shares were cut from.
type LedgerRow struct {
	Name    string
	Summary profile.Summary
}

// share returns one activity class's percentage of the active sim time.
func (r *LedgerRow) share(name string) float64 {
	if r.Summary.ActiveSimNs == 0 {
		return 0
	}
	for _, c := range r.Summary.Classes {
		if c.Activity == name {
			return 100 * c.SimNs / r.Summary.ActiveSimNs
		}
	}
	return 0
}

// ledgerWorkloads is the default subset for the ledger experiment — the
// three benchmarks the paper's §5.2.1 breakdown discusses by name.
var ledgerWorkloads = []string{"429.mcf", "433.milc", "470.lbm"}

// RunLedger runs the overhead-attribution experiment: one Parallaft session
// per workload with a fresh ledger attached, each verified against the
// machine's time and energy books by the reconciliation invariant before it
// is reported. A reconcile failure fails the experiment — a breakdown that
// does not sum to the books is not worth printing. Pass nil for the default
// three-benchmark subset.
func (r *Runner) RunLedger(names []string) ([]LedgerRow, error) {
	if names == nil {
		names = ledgerWorkloads
	}
	ws := make([]*workload.Workload, 0, len(names))
	for _, n := range names {
		w := workload.Get(n)
		if w == nil {
			return nil, fmt.Errorf("ledger: unknown workload %q", n)
		}
		ws = append(ws, w)
	}

	pr := r.newProgress("ledger", len(ws))
	results := campaign.RunProgress(r.Parallel, len(ws), pr, func(i int) (LedgerRow, error) {
		w := ws[i]
		cfg := core.DefaultConfig()
		if r.ConfigTweak != nil {
			r.ConfigTweak(&cfg)
		}
		// One ledger per session: its mirrors are bound to one machine's
		// cores. Multi-input workloads get one ledger per program too, so
		// each is reconciled against its own engine.
		row := LedgerRow{Name: w.Name}
		agg := profile.Summary{}
		for _, prog := range w.Gen(r.Scale) {
			ledger := profile.NewLedger()
			pcfg := cfg
			pcfg.Ledger = ledger
			e := r.newEngine()
			if e.M.SliceByInstructions {
				pcfg.SliceByInstructions = true
				pcfg.Tracking = core.TrackSoftDirty
			}
			rt := core.NewRuntime(e, pcfg)
			if _, err := rt.Run(prog); err != nil {
				return LedgerRow{}, fmt.Errorf("ledger %s %s: %w", w.Name, prog.Name, err)
			}
			if err := ledger.Reconcile(e.M); err != nil {
				return LedgerRow{}, fmt.Errorf("ledger %s %s: %w", w.Name, prog.Name, err)
			}
			agg = addSummaries(agg, ledger.Summarize())
		}
		row.Summary = agg
		return row, nil
	})
	var rows []LedgerRow
	for _, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		rows = append(rows, res.Value)
	}
	return rows, nil
}

// addSummaries folds one program's summary into a workload aggregate,
// matching classes by name (both sides enumerate the same activity enum, so
// order is stable).
func addSummaries(a, b profile.Summary) profile.Summary {
	if len(a.Classes) == 0 {
		return b
	}
	byName := make(map[string]int, len(a.Classes))
	for i, c := range a.Classes {
		byName[c.Activity] = i
	}
	for _, c := range b.Classes {
		if i, ok := byName[c.Activity]; ok {
			a.Classes[i].SimNs += c.SimNs
			a.Classes[i].Joules += c.Joules
			a.Classes[i].Charges += c.Charges
		} else {
			a.Classes = append(a.Classes, c)
		}
	}
	a.ActiveSimNs += b.ActiveSimNs
	a.ActiveJ += b.ActiveJ
	a.IdleJ += b.IdleJ
	a.StaticJ += b.StaticJ
	a.DRAMDynJ += b.DRAMDynJ
	a.EnergyJ += b.EnergyJ
	a.WallSimNs += b.WallSimNs
	return a
}

// FormatLedger renders the overhead-breakdown table: per workload, each
// activity class's share of the active simulated time, with the absolute
// active/wall books the shares were cut from. Every row passed the
// reconciliation invariant (per-class sums bit-equal to the machine's time
// book, energy recomputed identically), which is what separates this table
// from a sampled profile: the shares sum to exactly 100% of the books.
func FormatLedger(rows []LedgerRow) string {
	t := &Table{Header: []string{
		"workload", "active-ms", "main%", "checker%", "cow%", "fork%",
		"record%", "replay%", "compare%", "other%", "energy-mJ"}}
	for i := range rows {
		row := &rows[i]
		main := row.share(machine.ActGuestMain.String())
		chk := row.share(machine.ActGuestChecker.String())
		cow := row.share(machine.ActCOW.String())
		fork := row.share(machine.ActFork.String())
		rec := row.share(machine.ActRecord.String())
		rep := row.share(machine.ActReplay.String())
		cmp := row.share(machine.ActCompare.String())
		other := 100 - main - chk - cow - fork - rec - rep - cmp
		if row.Summary.ActiveSimNs == 0 {
			other = 0
		}
		t.AddRow(row.Name,
			fmt.Sprintf("%.3f", row.Summary.ActiveSimNs/1e6),
			fmt.Sprintf("%.2f", main),
			fmt.Sprintf("%.2f", chk),
			fmt.Sprintf("%.2f", cow),
			fmt.Sprintf("%.2f", fork),
			fmt.Sprintf("%.2f", rec),
			fmt.Sprintf("%.2f", rep),
			fmt.Sprintf("%.2f", cmp),
			fmt.Sprintf("%.2f", other),
			fmt.Sprintf("%.3f", row.Summary.EnergyJ*1e3))
	}
	return "Overhead attribution (reconciled ledger): share of active simulated time per activity class\n" + t.String()
}
