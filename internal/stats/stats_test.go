package stats

import (
	"math"
	"strings"
	"testing"

	"parallaft/internal/workload"
)

func TestGeomeanOverhead(t *testing.T) {
	if got := GeomeanOverhead(nil); got != 0 {
		t.Errorf("empty geomean = %v", got)
	}
	if got := GeomeanOverhead([]float64{10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("singleton geomean = %v", got)
	}
	// geomean of (1.1, 1.1) is 1.1
	if got := GeomeanOverhead([]float64{10, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("uniform geomean = %v", got)
	}
	// 0% and 21% -> sqrt(1.21)-1 = 10%
	if got := GeomeanOverhead([]float64{0, 21}); math.Abs(got-10) > 1e-6 {
		t.Errorf("mixed geomean = %v, want 10", got)
	}
	// tolerates a pathological -100% without blowing up
	if got := GeomeanOverhead([]float64{-100, 0}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("pathological geomean = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	// all rows padded to the same width
	if len(lines[2]) == 0 || len(lines[0]) == 0 {
		t.Fatal("empty lines")
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator row = %q", lines[1])
	}
	if Pct(12.345) != "12.3%" || F2(1.2345) != "1.23" {
		t.Error("formatters wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeBaseline.String() != "baseline" || ModeParallaft.String() != "parallaft" || ModeRAFT.String() != "raft" {
		t.Error("mode names wrong")
	}
}

func TestComparisonMath(t *testing.T) {
	c := &Comparison{
		Name:      "x",
		Baseline:  &SessionResult{WallNs: 100, EnergyJ: 10, AvgPSS: 1000, UserNs: 90, SysNs: 5},
		Parallaft: &SessionResult{WallNs: 120, MainWallNs: 110, EnergyJ: 15, AvgPSS: 1500, UserNs: 95, SysNs: 8},
		RAFT:      &SessionResult{WallNs: 118, EnergyJ: 19, AvgPSS: 1200},
	}
	if got := c.PerfOverhead(ModeParallaft); math.Abs(got-20) > 1e-9 {
		t.Errorf("perf overhead = %v", got)
	}
	if got := c.EnergyOverhead(ModeRAFT); math.Abs(got-90) > 1e-9 {
		t.Errorf("energy overhead = %v", got)
	}
	if got := c.MemoryNormalized(ModeParallaft); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("memory normalized = %v", got)
	}
	fork, cont, sync, rt := c.Breakdown()
	if math.Abs(fork-3) > 1e-9 || math.Abs(cont-5) > 1e-9 || math.Abs(sync-10) > 1e-9 {
		t.Errorf("breakdown = %v %v %v %v", fork, cont, sync, rt)
	}
	// components sum to the total by construction
	total := c.PerfOverhead(ModeParallaft)
	if math.Abs(fork+cont+sync+rt-total) > 1e-9 {
		t.Errorf("breakdown does not sum: %v != %v", fork+cont+sync+rt, total)
	}
}

func TestRunWorkloadUnknownName(t *testing.T) {
	r := NewRunner()
	if _, err := r.RunSuite([]string{"bogus"}, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSuiteFormattersProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs workloads")
	}
	r := NewRunner()
	r.Scale = 0.1
	sr, err := r.RunSuite([]string{"444.namd", "403.gcc"}, true)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig5":   sr.FormatFig5(),
		"fig6":   sr.FormatFig6(),
		"fig7":   sr.FormatFig7(),
		"fig8":   sr.FormatFig8(),
		"table1": sr.FormatTable1(),
		"intel":  sr.FormatIntel(),
	} {
		if (!strings.Contains(out, "%") && !strings.Contains(out, "x")) || len(out) < 50 {
			t.Errorf("%s output suspicious:\n%s", name, out)
		}
	}
	if !strings.Contains(sr.FormatFig5(), "444.namd") {
		t.Error("fig5 missing benchmark rows")
	}
	if !strings.Contains(sr.FormatFig5(), "geomean") {
		t.Error("fig5 missing geomean row")
	}
}

func TestFig9SweepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("slicing-period sweep is slow")
	}
	r := NewRunner()
	r.Scale = 0.5
	periods := []float64{300_000, 4_000_000}
	points, err := r.RunFig9([]string{"429.mcf"}, periods)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	short, long := points[0], points[1]
	// §5.5: fork+COW falls with longer periods; last-checker sync rises.
	if short.ForkCOW <= long.ForkCOW {
		t.Errorf("fork+COW should fall with period: %.1f%% @%fM vs %.1f%% @%fM",
			short.ForkCOW, short.PeriodCycles/1e6, long.ForkCOW, long.PeriodCycles/1e6)
	}
	if short.LastChecker >= long.LastChecker {
		t.Errorf("last-checker sync should rise with period: %.1f%% vs %.1f%%",
			short.LastChecker, long.LastChecker)
	}
	out := FormatFig9(points)
	if !strings.Contains(out, "Figure 9(a)") || !strings.Contains(out, "429.mcf") {
		t.Errorf("fig9 formatting:\n%s", out)
	}
}

func TestIntelRunnerPreset(t *testing.T) {
	r := NewIntelRunner()
	if r.MachineCfg().PageSize != 4096 {
		t.Error("intel runner page size")
	}
	if testing.Short() {
		t.Skip("runs a workload")
	}
	r.Scale = 0.1
	c, err := r.Compare(workload.Get("444.namd"), false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Parallaft.Detected != nil {
		t.Errorf("intel false positive: %v", c.Parallaft.Detected)
	}
}

func TestBigWorkFractionBounds(t *testing.T) {
	s := &SessionResult{}
	if s.BigWorkFraction() != 0 || s.BigTimeFraction() != 0 {
		t.Error("zero-work fractions nonzero")
	}
	s.CheckerBigInstrs, s.CheckerLittleInstrs = 1, 3
	if got := s.BigWorkFraction(); got != 0.25 {
		t.Errorf("work fraction = %v", got)
	}
	s.CheckerBigNs, s.CheckerLittleNs = 2, 2
	if got := s.BigTimeFraction(); got != 0.5 {
		t.Errorf("time fraction = %v", got)
	}
}
