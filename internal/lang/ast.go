package lang

// AST node types. The language is deliberately small: 64-bit integer
// scalars and word arrays, structured control flow, and a handful of
// builtins mapping to syscalls and nondeterministic instructions.

type node interface{ pos() (line, col int) }

type position struct{ line, col int }

func (p position) pos() (int, int) { return p.line, p.col }

// --- expressions ----------------------------------------------------------

type expr interface{ node }

// numberLit is an integer literal.
type numberLit struct {
	position
	value int64
}

// varRef reads a scalar variable.
type varRef struct {
	position
	name string
}

// indexExpr reads arr[idx].
type indexExpr struct {
	position
	name  string
	index expr
}

// unaryExpr is -x or !x.
type unaryExpr struct {
	position
	op string
	x  expr
}

// binaryExpr is x <op> y.
type binaryExpr struct {
	position
	op   string
	x, y expr
}

// callExpr is a builtin intrinsic used in expression position:
// getpid(), gettime(), rdtsc(), random(), coreid().
type callExpr struct {
	position
	name string
}

// --- statements -------------------------------------------------------------

type stmt interface{ node }

// varDecl declares a scalar (with optional initialiser) or an array.
type varDecl struct {
	position
	name    string
	isArray bool
	size    int64 // words, for arrays
	init    expr  // scalars only; nil means zero
}

// assignStmt is name = expr or name[idx] = expr.
type assignStmt struct {
	position
	name  string
	index expr // nil for scalar assignment
	value expr
}

// whileStmt loops while the condition is nonzero.
type whileStmt struct {
	position
	cond expr
	body []stmt
}

// ifStmt branches on the condition.
type ifStmt struct {
	position
	cond     expr
	then     []stmt
	elseBody []stmt // nil when absent
}

// printStmt writes a string literal to stdout.
type printStmt struct {
	position
	text string
}

// printNumStmt writes the decimal rendering of an expression plus newline.
type printNumStmt struct {
	position
	value expr
}

// exitStmt terminates with the expression's low byte... the full value; the
// kernel truncates per its own convention.
type exitStmt struct {
	position
	value expr
}

// program is the parsed unit.
type program struct {
	stmts []stmt
}
