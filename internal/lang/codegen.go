package lang

import (
	"fmt"

	"parallaft/internal/asm"
	"parallaft/internal/isa"
	"parallaft/internal/oskernel"
)

// Code generation: a stack machine over registers.
//
// Register convention:
//
//	x0..x3   syscall number/arguments/result (clobbered at statements)
//	x4, x5   codegen scratch
//	x6..x13  expression evaluation stack (8 deep; deeper nesting is a
//	         compile error — flatten the expression)
//	x14,x15  SP / LR (untouched)
//
// Every statement starts and ends with an empty evaluation stack, so
// syscall-emitting statements never clobber live values.

const (
	evalBase  = 6
	evalDepth = 8
	scratchA  = 4
	scratchB  = 5
)

type symbol struct {
	isArray bool
	size    int64
}

type codegen struct {
	b       *asm.Builder
	syms    map[string]symbol
	labelID int
	err     error
}

// Compile translates paftlang source into a runnable guest program.
func Compile(name, src string) (*asm.Program, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	g := &codegen{b: asm.NewBuilder(name), syms: make(map[string]symbol)}

	// Declarations first (data layout), walking nested blocks too; all
	// variables share one flat scope, and initialisers run as code at
	// their statement position.
	if err := g.collectDecls(prog.stmts); err != nil {
		return nil, err
	}
	g.b.Bytes("__pn", make([]byte, 24)) // printnum conversion buffer

	for _, s := range prog.stmts {
		g.stmt(s)
		if g.err != nil {
			return nil, g.err
		}
	}
	// implicit exit(0)
	g.b.MovI(0, int64(oskernel.SysExit))
	g.b.MovI(1, 0)
	g.b.Syscall()

	return g.b.Build()
}

// MustCompile is Compile that panics on error, for static definitions.
func MustCompile(name, src string) *asm.Program {
	p, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// collectDecls registers every variable declaration in the tree (the
// language has one flat scope) and lays out its storage.
func (g *codegen) collectDecls(list []stmt) error {
	for _, s := range list {
		switch s := s.(type) {
		case *varDecl:
			if _, dup := g.syms[s.name]; dup {
				l, c := s.pos()
				return errAt(l, c, "variable %q redeclared", s.name)
			}
			if s.isArray {
				g.syms[s.name] = symbol{isArray: true, size: s.size}
				g.b.Space("u_"+s.name, uint64(s.size)*8)
			} else {
				g.syms[s.name] = symbol{}
				g.b.Words("u_"+s.name, 0)
			}
		case *whileStmt:
			if err := g.collectDecls(s.body); err != nil {
				return err
			}
		case *ifStmt:
			if err := g.collectDecls(s.then); err != nil {
				return err
			}
			if err := g.collectDecls(s.elseBody); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *codegen) fail(n node, format string, args ...any) {
	if g.err == nil {
		l, c := n.pos()
		g.err = errAt(l, c, format, args...)
	}
}

func (g *codegen) label(kind string) string {
	g.labelID++
	return fmt.Sprintf("__%s_%d", kind, g.labelID)
}

func (g *codegen) lookup(n node, name string, wantArray bool) (symbol, bool) {
	sym, ok := g.syms[name]
	if !ok {
		g.fail(n, "undefined variable %q", name)
		return symbol{}, false
	}
	if sym.isArray != wantArray {
		if wantArray {
			g.fail(n, "%q is a scalar, not an array", name)
		} else {
			g.fail(n, "%q is an array; index it", name)
		}
		return symbol{}, false
	}
	return sym, true
}

// --- statements -------------------------------------------------------------

func (g *codegen) stmts(list []stmt) {
	for _, s := range list {
		g.stmt(s)
		if g.err != nil {
			return
		}
	}
}

func (g *codegen) stmt(s stmt) {
	b := g.b
	switch s := s.(type) {
	case *varDecl:
		if s.isArray || s.init == nil {
			return // layout already emitted; zero init is the default
		}
		g.expr(s.init, 0)
		b.Addr(scratchA, "u_"+s.name)
		b.St(scratchA, 0, evalBase)

	case *assignStmt:
		if s.index == nil {
			if _, ok := g.lookup(s, s.name, false); !ok {
				return
			}
			g.expr(s.value, 0)
			b.Addr(scratchA, "u_"+s.name)
			b.St(scratchA, 0, evalBase)
			return
		}
		if _, ok := g.lookup(s, s.name, true); !ok {
			return
		}
		g.expr(s.index, 0) // x6 = index
		g.expr(s.value, 1) // x7 = value
		b.ShlI(evalBase, evalBase, 3)
		b.Addr(scratchA, "u_"+s.name)
		b.Add(scratchA, scratchA, evalBase)
		b.St(scratchA, 0, evalBase+1)

	case *whileStmt:
		start, end := g.label("while"), g.label("wend")
		b.Label(start)
		g.expr(s.cond, 0)
		b.MovI(scratchA, 0)
		b.Beq(evalBase, scratchA, end)
		g.stmts(s.body)
		b.Jmp(start)
		b.Label(end)

	case *ifStmt:
		elseL, end := g.label("else"), g.label("fi")
		g.expr(s.cond, 0)
		b.MovI(scratchA, 0)
		b.Beq(evalBase, scratchA, elseL)
		g.stmts(s.then)
		b.Jmp(end)
		b.Label(elseL)
		if s.elseBody != nil {
			g.stmts(s.elseBody)
		}
		b.Label(end)

	case *printStmt:
		sym := g.label("str")
		b.Bytes(sym, []byte(s.text))
		b.MovI(0, int64(oskernel.SysWrite))
		b.MovI(1, 1)
		b.Addr(2, sym)
		b.MovI(3, int64(len(s.text)))
		b.Syscall()

	case *printNumStmt:
		g.expr(s.value, 0)
		g.emitPrintNum()

	case *exitStmt:
		g.expr(s.value, 0)
		b.Mov(1, evalBase)
		b.MovI(0, int64(oskernel.SysExit))
		b.Syscall()

	default:
		g.fail(s, "unhandled statement %T", s)
	}
}

// emitPrintNum renders x6 as signed decimal plus newline. Uses x7 (sign)
// and x8 (write pointer); statements always have the full stack free.
func (g *codegen) emitPrintNum() {
	b := g.b
	const v, sign, ptr = evalBase, evalBase + 1, evalBase + 2
	absDone, digit, noMinus := g.label("pnabs"), g.label("pndig"), g.label("pnnm")

	b.Addr(ptr, "__pn")
	b.AddI(ptr, ptr, 23)
	b.MovI(scratchA, '\n')
	b.StB(ptr, 0, scratchA)

	b.MovI(scratchA, 0)
	b.Slt(sign, v, scratchA) // sign = v < 0
	b.Beq(sign, scratchA, absDone)
	b.Sub(v, scratchA, v) // v = -v
	b.Label(absDone)

	b.Label(digit)
	b.AddI(ptr, ptr, -1)
	b.MovI(scratchA, 10)
	b.Rem(scratchB, v, scratchA)
	b.AddI(scratchB, scratchB, '0')
	b.StB(ptr, 0, scratchB)
	b.Div(v, v, scratchA)
	b.MovI(scratchA, 0)
	b.Bne(v, scratchA, digit)

	b.Beq(sign, scratchA, noMinus)
	b.AddI(ptr, ptr, -1)
	b.MovI(scratchB, '-')
	b.StB(ptr, 0, scratchB)
	b.Label(noMinus)

	// write(1, ptr, bufEnd-ptr)
	b.Addr(scratchA, "__pn")
	b.AddI(scratchA, scratchA, 24)
	b.Sub(3, scratchA, ptr)
	b.Mov(2, ptr)
	b.MovI(1, 1)
	b.MovI(0, int64(oskernel.SysWrite))
	b.Syscall()
}

// --- expressions -------------------------------------------------------------

// expr evaluates e into register evalBase+depth.
func (g *codegen) expr(e expr, depth int) {
	if g.err != nil {
		return
	}
	if depth >= evalDepth {
		g.fail(e, "expression too deeply nested (max %d); split it across statements", evalDepth)
		return
	}
	dst := uint8(evalBase + depth)
	b := g.b

	switch e := e.(type) {
	case *numberLit:
		b.MovI(dst, e.value)

	case *varRef:
		if _, ok := g.lookup(e, e.name, false); !ok {
			return
		}
		b.Addr(scratchA, "u_"+e.name)
		b.Ld(dst, scratchA, 0)

	case *indexExpr:
		if _, ok := g.lookup(e, e.name, true); !ok {
			return
		}
		g.expr(e.index, depth)
		b.ShlI(dst, dst, 3)
		b.Addr(scratchA, "u_"+e.name)
		b.Add(scratchA, scratchA, dst)
		b.Ld(dst, scratchA, 0)

	case *unaryExpr:
		g.expr(e.x, depth)
		switch e.op {
		case "-":
			b.MovI(scratchA, 0)
			b.Sub(dst, scratchA, dst)
		case "!":
			g.emitNZ(dst)
			b.XorI(dst, dst, 1)
		default:
			g.fail(e, "unhandled unary %q", e.op)
		}

	case *binaryExpr:
		g.expr(e.x, depth)
		g.expr(e.y, depth+1)
		if g.err != nil {
			return
		}
		rhs := dst + 1
		switch e.op {
		case "+":
			b.Add(dst, dst, rhs)
		case "-":
			b.Sub(dst, dst, rhs)
		case "*":
			b.Mul(dst, dst, rhs)
		case "/":
			b.Div(dst, dst, rhs)
		case "%":
			b.Rem(dst, dst, rhs)
		case "&":
			b.And(dst, dst, rhs)
		case "|":
			b.Or(dst, dst, rhs)
		case "^":
			b.Xor(dst, dst, rhs)
		case "<<":
			b.Shl(dst, dst, rhs)
		case ">>":
			b.Shr(dst, dst, rhs)
		case "<":
			b.Slt(dst, dst, rhs)
		case ">":
			b.Slt(dst, rhs, dst)
		case "<=":
			b.Slt(dst, rhs, dst)
			b.XorI(dst, dst, 1)
		case ">=":
			b.Slt(dst, dst, rhs)
			b.XorI(dst, dst, 1)
		case "==":
			b.Sub(dst, dst, rhs)
			g.emitNZ(dst)
			b.XorI(dst, dst, 1)
		case "!=":
			b.Sub(dst, dst, rhs)
			g.emitNZ(dst)
		case "&&":
			g.emitNZ(dst)
			g.emitNZ(rhs)
			b.And(dst, dst, rhs)
		case "||":
			b.Or(dst, dst, rhs)
			g.emitNZ(dst)
		default:
			g.fail(e, "unhandled operator %q", e.op)
		}

	case *callExpr:
		switch e.name {
		case "getpid":
			b.MovI(0, int64(oskernel.SysGetPID))
			b.Syscall()
			b.Mov(dst, 0)
		case "gettime":
			b.MovI(0, int64(oskernel.SysGetTime))
			b.Syscall()
			b.Mov(dst, 0)
		case "rdtsc":
			b.Rdtsc(dst)
		case "coreid":
			b.Mrs(dst, isa.SysRegMIDR)
		case "random":
			b.MovI(0, int64(oskernel.SysGetRandom))
			b.Addr(1, "__pn") // reuse the conversion buffer as scratch
			b.MovI(2, 8)
			b.Syscall()
			b.Addr(scratchA, "__pn")
			b.Ld(dst, scratchA, 0)
		default:
			g.fail(e, "unknown intrinsic %q", e.name)
		}

	default:
		g.fail(e, "unhandled expression %T", e)
	}
}

// emitNZ normalises a register to 0/1 (nonzero becomes 1).
func (g *codegen) emitNZ(r uint8) {
	b := g.b
	b.MovI(scratchA, 0)
	b.Slt(scratchB, scratchA, r) // r > 0
	b.Slt(scratchA, r, scratchA) // r < 0
	b.Or(r, scratchB, scratchA)
}
