package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

// run compiles and executes a paftlang program, returning stdout and the
// exit code.
func run(t *testing.T, src string) (string, int64) {
	t.Helper()
	prog, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 3)
	l := oskernel.NewLoader(k, m.PageSize, 3)
	e := sim.New(m, k, l)
	e.MaxInstr = 100_000_000
	res, err := e.RunBaseline(prog, m.BigCores()[0])
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.KilledBy != 0 {
		t.Fatalf("killed by %v", res.KilledBy)
	}
	return string(res.Stdout), res.ExitCode
}

func TestHelloWorld(t *testing.T) {
	out, code := run(t, `print("hello\n"); exit(7);`)
	if out != "hello\n" || code != 7 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]int64{
		"1 + 2 * 3":             7,
		"(1 + 2) * 3":           9,
		"10 - 3 - 2":            5, // left associative
		"17 / 5":                3,
		"17 % 5":                2,
		"-5 + 8":                3,
		"6 & 3":                 2,
		"6 | 3":                 7,
		"6 ^ 3":                 5,
		"1 << 6":                64,
		"64 >> 3":               8,
		"3 < 5":                 1,
		"5 < 3":                 0,
		"5 <= 5":                1,
		"5 >= 6":                0,
		"4 == 4":                1,
		"4 != 4":                0,
		"-3 < 2":                1, // signed comparison
		"1 && 2":                1,
		"1 && 0":                0,
		"0 || 5":                1,
		"!0":                    1,
		"!7":                    0,
		"1 + 2 == 3 && 4 < 5":   1,
		"(2 + 3) * (4 - 1) % 7": 1,
	}
	for src, want := range cases {
		out, _ := run(t, fmt.Sprintf("printnum(%s); exit(0);", src))
		if out != fmt.Sprintf("%d\n", want) {
			t.Errorf("%s = %q, want %d", src, strings.TrimSpace(out), want)
		}
	}
}

func TestPrintNumFormats(t *testing.T) {
	cases := map[string]string{
		"0":       "0\n",
		"42":      "42\n",
		"-42":     "-42\n",
		"1000000": "1000000\n",
		"-1":      "-1\n",
		"9 - 10":  "-1\n",
	}
	for src, want := range cases {
		out, _ := run(t, fmt.Sprintf("printnum(%s); exit(0);", src))
		if out != want {
			t.Errorf("printnum(%s) = %q, want %q", src, out, want)
		}
	}
}

func TestVariablesAndWhile(t *testing.T) {
	out, code := run(t, `
		var sum = 0;
		var i = 1;
		while (i <= 100) {
			sum = sum + i;
			i = i + 1;
		}
		printnum(sum);
		exit(sum & 255);
	`)
	if out != "5050\n" || code != 5050&255 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestArrays(t *testing.T) {
	out, _ := run(t, `
		var fib[32];
		fib[0] = 0;
		fib[1] = 1;
		var i = 2;
		while (i < 32) {
			fib[i] = fib[i-1] + fib[i-2];
			i = i + 1;
		}
		printnum(fib[31]);
		exit(0);
	`)
	if out != "1346269\n" {
		t.Errorf("fib(31) = %q", out)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
		var x = %d;
		if (x < 10) { print("small\n"); }
		else if (x < 100) { print("medium\n"); }
		else { print("large\n"); }
		exit(0);
	`
	for val, want := range map[int]string{5: "small\n", 50: "medium\n", 500: "large\n"} {
		out, _ := run(t, fmt.Sprintf(src, val))
		if out != want {
			t.Errorf("x=%d: %q, want %q", val, out, want)
		}
	}
}

func TestIntrinsics(t *testing.T) {
	out, _ := run(t, `
		var p = getpid();
		if (p > 0) { print("pid-ok\n"); }
		var t1 = gettime();
		var junk = 0;
		var i = 0;
		while (i < 1000) { junk = junk + i; i = i + 1; }
		var t2 = gettime();
		if (t2 >= t1) { print("time-ok\n"); }
		var r1 = random();
		var r2 = random();
		if (r1 != r2) { print("rand-ok\n"); }
		var c = coreid();
		if (c > 0) { print("core-ok\n"); }
		var ts = rdtsc();
		if (ts >= 0) { print("tsc-ok\n"); }
		exit(0);
	`)
	for _, want := range []string{"pid-ok", "time-ok", "rand-ok", "core-ok", "tsc-ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`x = 1;`, "undefined variable"},
		{`var a[4]; a = 1;`, "is an array"},
		{`var s = 0; s[0] = 1;`, "is a scalar"},
		{`var d = 1; var d = 2;`, "redeclared"},
		{`while (1) { `, "unterminated block"},
		{`print(42);`, "string literal"},
		{`var x = bogus();`, "unknown intrinsic"},
		{`exit(((((((((1)))))))));`, ""}, // deep parens are fine
		{`var x = 1 +;`, "expected an expression"},
		{`@`, "unexpected character"},
		{`var x = "unclosed`, "unterminated string"},
		{`var a[0];`, "positive literal"},
	}
	for _, c := range cases {
		_, err := Compile("err", c.src)
		if c.frag == "" {
			if err != nil {
				t.Errorf("%q should compile: %v", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q compiled without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q error %q missing %q", c.src, err, c.frag)
		}
	}
}

func TestDepthLimit(t *testing.T) {
	// 9 levels of right-nesting exhausts the 8-register stack
	expr := "1"
	for i := 0; i < 9; i++ {
		expr = "1 + (" + expr + ")"
	}
	_, err := Compile("deep", "exit("+expr+");")
	if err == nil || !strings.Contains(err.Error(), "too deeply nested") {
		t.Errorf("deep expression: %v", err)
	}
	// left-nesting is fine at any length (constant stack)
	long := strings.Repeat("1 + ", 100) + "1"
	if _, err := Compile("long", "exit("+long+");"); err != nil {
		t.Errorf("long left chain rejected: %v", err)
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Compile("pos", "var ok = 1;\nvar bad = nope()\n")
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), ":2:") {
		t.Errorf("error %q missing line 2 position", err)
	}
}

// TestCompiledExpressionsMatchGo is the compiler's property test: random
// expression trees evaluate identically in the guest and in Go.
func TestCompiledExpressionsMatchGo(t *testing.T) {
	type node struct {
		src string
		val int64
	}
	ops := []struct {
		text string
		f    func(a, b int64) int64
		ok   func(b int64) bool
	}{
		{"+", func(a, b int64) int64 { return a + b }, nil},
		{"-", func(a, b int64) int64 { return a - b }, nil},
		{"*", func(a, b int64) int64 { return a * b }, nil},
		{"/", func(a, b int64) int64 { return a / b }, func(b int64) bool { return b != 0 }},
		{"%", func(a, b int64) int64 { return a % b }, func(b int64) bool { return b != 0 }},
		{"&", func(a, b int64) int64 { return a & b }, nil},
		{"|", func(a, b int64) int64 { return a | b }, nil},
		{"^", func(a, b int64) int64 { return a ^ b }, nil},
	}
	rng := rand.New(rand.NewSource(5))
	var gen func(depth int) node
	gen = func(depth int) node {
		if depth == 0 || rng.Intn(3) == 0 {
			v := int64(rng.Intn(2001) - 1000)
			return node{fmt.Sprintf("(%d)", v), v}
		}
		for {
			op := ops[rng.Intn(len(ops))]
			a := gen(depth - 1)
			b := gen(depth - 1)
			if op.ok != nil && !op.ok(b.val) {
				continue
			}
			return node{fmt.Sprintf("(%s %s %s)", a.src, op.text, b.src), op.f(a.val, b.val)}
		}
	}
	for trial := 0; trial < 30; trial++ {
		n := gen(3)
		out, _ := run(t, fmt.Sprintf("printnum(%s); exit(0);", n.src))
		if out != fmt.Sprintf("%d\n", n.val) {
			t.Errorf("%s = %q, want %d", n.src, strings.TrimSpace(out), n.val)
		}
	}
}

// TestCompiledProgramUnderParallaft closes the loop: a compiled program
// runs under the protected runtime without false positives.
func TestCompiledProgramUnderParallaft(t *testing.T) {
	prog := MustCompile("compiled", `
		var table[2048];
		var i = 0;
		var acc = 0;
		while (i < 60000) {
			table[i & 2047] = table[i & 2047] + i;
			acc = acc + table[i & 2047];
			i = i + 1;
		}
		print("verified\n");
		exit(acc & 255);
	`)
	// imported lazily to avoid a cycle in small builds
	runProtected(t, prog)
}
