package lang

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

// runProtected executes a compiled program under Parallaft and checks that
// output matches an unprotected run with no detections.
func runProtected(t *testing.T, prog *asm.Program) {
	t.Helper()

	newEngine := func() *sim.Engine {
		m := machine.New(machine.AppleM2Like())
		k := oskernel.NewKernel(m.PageSize, 9)
		l := oskernel.NewLoader(k, m.PageSize, 9)
		e := sim.New(m, k, l)
		e.MaxInstr = 500_000_000
		return e
	}

	be := newEngine()
	base, err := be.RunBaseline(prog, be.M.BigCores()[0])
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 200_000
	rt := core.NewRuntime(newEngine(), cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("protected: %v", err)
	}
	if stats.Detected != nil {
		t.Fatalf("false positive on compiled code: %v", stats.Detected)
	}
	if string(stats.Stdout) != string(base.Stdout) || stats.ExitCode != base.ExitCode {
		t.Errorf("protected output diverged: %q/%d vs %q/%d",
			stats.Stdout, stats.ExitCode, base.Stdout, base.ExitCode)
	}
	if stats.Slices < 2 {
		t.Errorf("compiled program spanned only %d slices", stats.Slices)
	}
}
