package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics: arbitrary token soup must produce an error or a
// program, never a panic.
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"var", "while", "if", "else", "print", "printnum", "exit",
		"x", "y", "arr", "42", "-7", `"s"`, "(", ")", "[", "]", "{", "}",
		"=", "==", "+", "*", "<", "<<", "&&", ";", "%", "!",
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(30)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Compile("fuzz", src) //nolint:errcheck
		}()
	}
}

// TestLexerNeverPanics: arbitrary bytes must lex to an error, not a panic.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(60))
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", buf, r)
				}
			}()
			lex(string(buf)) //nolint:errcheck
		}()
	}
}

// TestCommentsAndWhitespace exercises the trivia paths.
func TestCommentsAndWhitespace(t *testing.T) {
	out, code := run(t, `
		// leading comment
		var x = 5; // trailing comment

		// blank lines above and below

		exit(x);
	`)
	if code != 5 || out != "" {
		t.Errorf("out=%q code=%d", out, code)
	}
}

// TestDeterministicCompilation: identical source compiles to identical code.
func TestDeterministicCompilation(t *testing.T) {
	src := `var a[64]; var i = 0; while (i < 64) { a[i] = i * i; i = i + 1; } exit(a[7]);`
	p1 := MustCompile("d1", src)
	p2 := MustCompile("d2", src)
	if len(p1.Code) != len(p2.Code) {
		t.Fatal("code length differs")
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}
