// Package lang implements paftlang, a small imperative language that
// compiles to the guest ISA. It exists so that workloads and examples for
// the protected runtime can be written at statement level instead of in
// assembly:
//
//	var acc = 0;
//	var table[4096];
//	var i = 0;
//	while (i < 100000) {
//	    table[i & 4095] = table[i & 4095] + i;
//	    acc = acc + table[i & 4095];
//	    i = i + 1;
//	}
//	print("done\n");
//	printnum(acc);
//	exit(acc & 255);
//
// The compiler is a classic three-stage pipeline: lexer (this file), a
// recursive-descent parser with precedence climbing (parser.go), and a
// stack-machine code generator targeting the asm Builder (codegen.go).
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and delimiters, identified by text
	tokKeyword
)

var keywords = map[string]bool{
	"var": true, "while": true, "if": true, "else": true,
	"print": true, "printnum": true, "exit": true,
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	num  int64  // for tokNumber
	str  string // for tokString (unquoted, escapes processed)
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a compile error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("paftlang:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// multi-character operators, longest first so maximal munch works
var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

const singleOps = "+-*/%&|^<>!=;,()[]{}"

// lex tokenises the whole source.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}

	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)

		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}

		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				u, uerr := strconv.ParseUint(text, 0, 64)
				if uerr != nil {
					return nil, errAt(startLine, startCol, "bad number %q", text)
				}
				v = int64(u)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, line: startLine, col: startCol})
			advance(j - i)

		case isIdentStart(c):
			startLine, startCol := line, col
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: startLine, col: startCol})
			advance(j - i)

		case c == '"':
			startLine, startCol := line, col
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, errAt(startLine, startCol, "unterminated string")
			}
			raw := src[i : j+1]
			unq, err := strconv.Unquote(raw)
			if err != nil {
				return nil, errAt(startLine, startCol, "bad string %s: %v", raw, err)
			}
			toks = append(toks, token{kind: tokString, text: raw, str: unq, line: startLine, col: startCol})
			advance(j + 1 - i)

		default:
			startLine, startCol := line, col
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokPunct, text: op, line: startLine, col: startCol})
					advance(len(op))
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.IndexByte(singleOps, c) >= 0 {
				toks = append(toks, token{kind: tokPunct, text: string(c), line: startLine, col: startCol})
				advance(1)
				continue
			}
			return nil, errAt(startLine, startCol, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) ||
		c == 'x' || c == 'X' // hex literals lex as ident-ish runs of digits
}
