package lang

// Recursive-descent parser with precedence climbing for expressions.

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tokPunct && p.cur().text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	t := p.cur()
	if t.kind == tokPunct && t.text == text {
		p.i++
		return nil
	}
	return errAt(t.line, t.col, "expected %q, found %s", text, t)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

// parse builds the program AST.
func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var prog program
	for p.cur().kind != tokEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.stmts = append(prog.stmts, s)
	}
	return &prog, nil
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errAt(t.line, t.col, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.acceptKeyword("var"):
		return p.varDecl(t)
	case p.acceptKeyword("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{position{t.line, t.col}, cond, body}, nil

	case p.acceptKeyword("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var elseBody []stmt
		if p.acceptKeyword("else") {
			if p.cur().kind == tokKeyword && p.cur().text == "if" {
				// else-if chains as a single-statement else block
				s, err := p.statement()
				if err != nil {
					return nil, err
				}
				elseBody = []stmt{s}
			} else {
				elseBody, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &ifStmt{position{t.line, t.col}, cond, then, elseBody}, nil

	case p.acceptKeyword("print"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := p.cur()
		if st.kind != tokString {
			return nil, errAt(st.line, st.col, "print wants a string literal, found %s", st)
		}
		p.i++
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &printStmt{position{t.line, t.col}, st.str}, nil

	case p.acceptKeyword("printnum"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &printNumStmt{position{t.line, t.col}, v}, nil

	case p.acceptKeyword("exit"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &exitStmt{position{t.line, t.col}, v}, nil

	case t.kind == tokIdent:
		p.i++
		var index expr
		if p.accept("[") {
			var err error
			index, err = p.expression(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		value, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &assignStmt{position{t.line, t.col}, t.text, index, value}, nil

	case t.kind == tokPunct && t.text == "{":
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		// a bare block is an if(1){...} without the branch
		return &ifStmt{position{t.line, t.col}, &numberLit{position{t.line, t.col}, 1}, body, nil}, nil
	}
	return nil, errAt(t.line, t.col, "expected a statement, found %s", t)
}

func (p *parser) varDecl(t token) (stmt, error) {
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errAt(name.line, name.col, "expected a variable name, found %s", name)
	}
	p.i++
	d := &varDecl{position: position{t.line, t.col}, name: name.text}
	if p.accept("[") {
		sz := p.cur()
		if sz.kind != tokNumber || sz.num <= 0 {
			return nil, errAt(sz.line, sz.col, "array size must be a positive literal, found %s", sz)
		}
		p.i++
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		d.isArray = true
		d.size = sz.num
	} else if p.accept("=") {
		init, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		d.init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// binary operator precedence (higher binds tighter)
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.expression(prec + 1) // left-associative
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{position{t.line, t.col}, t.text, lhs, rhs}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{position{t.line, t.col}, t.text, x}, nil
	}
	return p.primary()
}

// intrinsics usable in expression position
var intrinsics = map[string]bool{
	"getpid": true, "gettime": true, "rdtsc": true, "random": true, "coreid": true,
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		return &numberLit{position{t.line, t.col}, t.num}, nil
	case t.kind == tokIdent:
		p.i++
		if p.accept("(") {
			if !intrinsics[t.text] {
				return nil, errAt(t.line, t.col, "unknown intrinsic %q", t.text)
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &callExpr{position{t.line, t.col}, t.text}, nil
		}
		if p.accept("[") {
			idx, err := p.expression(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &indexExpr{position{t.line, t.col}, t.text, idx}, nil
		}
		return &varRef{position{t.line, t.col}, t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.i++
		e, err := p.expression(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errAt(t.line, t.col, "expected an expression, found %s", t)
}
