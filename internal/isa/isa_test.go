package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEveryOpcodeHasAName(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		got, ok := OpByName[op.String()]
		if !ok {
			t.Errorf("mnemonic %q missing from OpByName", op.String())
			continue
		}
		if got != op {
			t.Errorf("OpByName[%q] = %v, want %v", op.String(), got, op)
		}
	}
	if len(OpByName) != NumOps {
		t.Errorf("OpByName has %d entries, want %d", len(OpByName), NumOps)
	}
}

func TestClassification(t *testing.T) {
	branches := []Op{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJal, OpJr}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	conds := map[Op]bool{OpBeq: true, OpBne: true, OpBlt: true, OpBge: true}
	for _, op := range branches {
		if op.IsCondBranch() != conds[op] {
			t.Errorf("%v IsCondBranch = %v, want %v", op, op.IsCondBranch(), conds[op])
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpSyscall, OpHalt, OpRdtsc} {
		if op.IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}

	stores := []Op{OpSt, OpStB, OpFSt, OpVSt}
	for _, op := range stores {
		if !op.IsStore() || !op.IsMemAccess() {
			t.Errorf("%v should be a store and a memory access", op)
		}
	}
	loads := []Op{OpLd, OpLdB, OpFLd, OpVLd}
	for _, op := range loads {
		if op.IsStore() {
			t.Errorf("%v should not be a store", op)
		}
		if !op.IsMemAccess() {
			t.Errorf("%v should be a memory access", op)
		}
	}

	if !OpRdtsc.IsNondet() || !OpMrs.IsNondet() {
		t.Error("rdtsc and mrs must be nondeterministic")
	}
	if OpAdd.IsNondet() || OpSyscall.IsNondet() {
		t.Error("add/syscall must not be nondeterministic")
	}
}

func TestAccessSize(t *testing.T) {
	cases := map[Op]int{
		OpLd: 8, OpSt: 8, OpFLd: 8, OpFSt: 8,
		OpLdB: 1, OpStB: 1,
		OpVLd: 32, OpVSt: 32,
		OpAdd: 0, OpBeq: 0, OpSyscall: 0,
	}
	for op, want := range cases {
		if got := op.AccessSize(); got != want {
			t.Errorf("%v.AccessSize() = %d, want %d", op, got, want)
		}
	}
}

func TestCostClassesAssigned(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if op.Class() >= NumCostClasses {
			t.Errorf("%v has invalid cost class %d", op, op.Class())
		}
	}
	if OpLd.Class() != CostMem || OpVLd.Class() != CostMemVec {
		t.Error("memory cost classes misassigned")
	}
	if OpDiv.Class() != CostDiv || OpFDiv.Class() != CostFDiv {
		t.Error("divide cost classes misassigned")
	}
	if OpSyscall.Class() != CostSys {
		t.Error("syscall cost class misassigned")
	}
}

func TestValidateRegisterBounds(t *testing.T) {
	cases := []struct {
		ins  Instr
		ok   bool
		name string
	}{
		{Instr{Op: OpAdd, Rd: 15, Ra: 0, Rb: 3}, true, "gpr max"},
		{Instr{Op: OpAdd, Rd: 16}, false, "gpr overflow"},
		{Instr{Op: OpFAdd, Rd: 7, Ra: 7, Rb: 7}, true, "fpr max"},
		{Instr{Op: OpFAdd, Rd: 8}, false, "fpr overflow"},
		{Instr{Op: OpVAdd, Rd: 3, Ra: 3, Rb: 3}, true, "vr max"},
		{Instr{Op: OpVAdd, Rd: 4}, false, "vr overflow"},
		{Instr{Op: OpCvtIF, Rd: 7, Ra: 15}, true, "cvt mixes files"},
		{Instr{Op: OpCvtIF, Rd: 8, Ra: 0}, false, "cvt fpr overflow"},
		{Instr{Op: OpNop, Rd: 1}, false, "nop must have zero operands"},
		{Instr{Op: opCount}, false, "invalid opcode"},
	}
	for _, c := range cases {
		err := c.ins.Validate(-1)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate(%v) err=%v, want ok=%v", c.name, c.ins, err, c.ok)
		}
	}
}

func TestValidateBranchTargets(t *testing.T) {
	code := []Instr{
		{Op: OpMovI, Rd: 1, Imm: 5},
		{Op: OpJmp, Imm: 0},
		{Op: OpHalt},
	}
	if err := ValidateProgram(code); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := []Instr{{Op: OpJmp, Imm: 7}}
	if err := ValidateProgram(bad); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	neg := []Instr{{Op: OpBeq, Ra: 1, Rb: 2, Imm: -1}}
	if err := ValidateProgram(neg); err == nil {
		t.Error("negative branch target accepted")
	}
	// Jr targets a register, so no static target check applies.
	jr := []Instr{{Op: OpJr, Ra: 3}}
	if err := ValidateProgram(jr); err != nil {
		t.Errorf("jr rejected: %v", err)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"add x1, x2, x3":  {Op: OpAdd, Rd: 1, Ra: 2, Rb: 3},
		"movi x4, -7":     {Op: OpMovI, Rd: 4, Imm: -7},
		"ld x1, x2, 16":   {Op: OpLd, Rd: 1, Ra: 2, Imm: 16},
		"st x2, 8, x3":    {Op: OpSt, Ra: 2, Rb: 3, Imm: 8},
		"beq x1, x2, 42":  {Op: OpBeq, Ra: 1, Rb: 2, Imm: 42},
		"fadd f1, f2, f3": {Op: OpFAdd, Rd: 1, Ra: 2, Rb: 3},
		"vsplat v2, x5":   {Op: OpVSplat, Rd: 2, Ra: 5},
		"syscall":         {Op: OpSyscall},
		"mrs x3, 1":       {Op: OpMrs, Rd: 3, Imm: 1},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", ins, got, want)
		}
	}
}

// TestValidatedInstrsNeverPanicInString is a property test: any instruction
// that passes validation must render without panicking or producing a
// placeholder.
func TestValidatedInstrsNeverPanicInString(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int64) bool {
		ins := Instr{Op: Op(op % uint8(NumOps)), Rd: rd % 16, Ra: ra % 16, Rb: rb % 16, Imm: imm}
		if ins.Validate(-1) != nil {
			return true // invalid instructions are out of scope
		}
		s := ins.String()
		return s != "" && !strings.Contains(s, "?")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
