// Package isa defines the guest instruction set architecture interpreted by
// the simulated processor cores.
//
// The guest ISA is a 64-bit RISC-like register machine, deliberately small
// but rich enough to host the behaviours Parallaft must record and replay:
// branches (counted by the simulated PMU), loads and stores (which hit the
// paged, copy-on-write memory subsystem), syscalls, and nondeterministic
// instructions (Rdtsc, Mrs) whose results differ between runs or between
// heterogeneous cores.
//
// Code is word-addressed: the program counter indexes into a []Instr, and
// branch targets are absolute instruction indices resolved by the assembler.
// Data memory is byte-addressed through the mem package.
package isa

import (
	"fmt"
	"math"
	"strconv"
)

// Architectural parameters of the guest machine.
const (
	NumGPR  = 16 // general-purpose registers x0..x15
	NumFPR  = 8  // floating-point registers f0..f7
	NumVR   = 4  // vector registers v0..v3
	VLanes  = 4  // 64-bit lanes per vector register
	WordLen = 8  // bytes per machine word
)

// Conventional register roles used by the assembler and the OS ABI.
const (
	RegZero = 0  // x0 doubles as the syscall number / return value register
	RegSP   = 14 // stack pointer by convention
	RegLR   = 15 // link register written by Jal
)

// Op enumerates guest opcodes.
type Op uint8

// Opcode space, grouped by class. The groups matter: CostClass, IsBranch and
// friends switch on contiguous ranges.
const (
	// Miscellaneous.
	OpNop Op = iota
	OpHalt

	// Integer ALU, register-register.
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSlt // set-less-than: Rd = (Ra < Rb) ? 1 : 0 (signed)

	// Integer ALU, immediate.
	OpMovI
	OpAddI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpSltI

	// Floating point (float64 registers).
	OpFMov
	OpFMovI // Imm carries math.Float64bits of the constant
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt
	OpCvtIF  // Fd = float64(Xa)
	OpCvtFI  // Xd = int64(Fa)
	OpFCmpLt // Xd = (Fa < Fb) ? 1 : 0

	// Vector (VLanes x 64-bit integer lanes).
	OpVAdd
	OpVXor
	OpVMul
	OpVSplat // broadcast Xa into all lanes of Vd

	// Memory. Effective address is Xa + Imm.
	OpLd  // Xd = *(u64*)(Xa+Imm)
	OpSt  // *(u64*)(Xa+Imm) = Xb
	OpLdB // Xd = zero-extended byte
	OpStB // store low byte of Xb
	OpFLd // Fd = *(f64*)(Xa+Imm)
	OpFSt // *(f64*)(Xa+Imm) = Fb
	OpVLd // Vd = 32 bytes at Xa+Imm
	OpVSt // store 32 bytes of Vb

	// Control transfer. All of these increment the retired-branch counter.
	OpBeq // if Xa == Xb goto Imm
	OpBne
	OpBlt // signed
	OpBge // signed
	OpJmp // goto Imm
	OpJal // x15 = PC+1; goto Imm
	OpJr  // goto Xa

	// System.
	OpSyscall // number in x0, args in x1..x5, result in x0
	OpRdtsc   // Xd = timestamp counter (nondeterministic; trapped)
	OpMrs     // Xd = system register Imm (nondeterministic; trapped)

	opCount
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// SysReg identifiers for the Mrs instruction, mirroring the AArch64
// registers Parallaft must virtualise (§4.3.4).
const (
	SysRegMIDR   = 0 // core identification: differs between big and little cores
	SysRegCNTVCT = 1 // virtual counter: differs between any two reads
)

// Instr is a decoded guest instruction. Rd/Ra/Rb index the register file
// appropriate to the opcode class; Imm is an immediate, branch target,
// address offset, or float bit pattern depending on the opcode.
type Instr struct {
	Op  Op
	Rd  uint8
	Ra  uint8
	Rb  uint8
	Imm int64
}

// CostClass buckets opcodes by base execution cost. The machine model maps
// each class to a per-core-type cycle count; memory classes additionally pay
// the cache hierarchy's access latency.
type CostClass uint8

const (
	CostSimple CostClass = iota // ALU, moves, branches
	CostMul
	CostDiv
	CostFP
	CostFDiv
	CostVec
	CostMem    // scalar load/store
	CostMemVec // vector load/store
	CostSys    // syscall, trapped instructions
	NumCostClasses
)

var costClassOf = [NumOps]CostClass{
	OpNop: CostSimple, OpHalt: CostSimple,
	OpMov: CostSimple, OpAdd: CostSimple, OpSub: CostSimple,
	OpMul: CostMul, OpDiv: CostDiv, OpRem: CostDiv,
	OpAnd: CostSimple, OpOr: CostSimple, OpXor: CostSimple,
	OpShl: CostSimple, OpShr: CostSimple, OpSlt: CostSimple,
	OpMovI: CostSimple, OpAddI: CostSimple, OpMulI: CostMul,
	OpAndI: CostSimple, OpOrI: CostSimple, OpXorI: CostSimple,
	OpShlI: CostSimple, OpShrI: CostSimple, OpSltI: CostSimple,
	OpFMov: CostFP, OpFMovI: CostFP, OpFAdd: CostFP, OpFSub: CostFP,
	OpFMul: CostFP, OpFDiv: CostFDiv, OpFSqrt: CostFDiv,
	OpCvtIF: CostFP, OpCvtFI: CostFP, OpFCmpLt: CostFP,
	OpVAdd: CostVec, OpVXor: CostVec, OpVMul: CostVec, OpVSplat: CostVec,
	OpLd: CostMem, OpSt: CostMem, OpLdB: CostMem, OpStB: CostMem,
	OpFLd: CostMem, OpFSt: CostMem,
	OpVLd: CostMemVec, OpVSt: CostMemVec,
	OpBeq: CostSimple, OpBne: CostSimple, OpBlt: CostSimple, OpBge: CostSimple,
	OpJmp: CostSimple, OpJal: CostSimple, OpJr: CostSimple,
	OpSyscall: CostSys, OpRdtsc: CostSys, OpMrs: CostSys,
}

// Class returns the opcode's cost class.
func (o Op) Class() CostClass {
	if int(o) >= NumOps {
		return CostSimple
	}
	return costClassOf[o]
}

// IsBranch reports whether the opcode is a control-transfer instruction.
// Every retired branch instruction — taken or not — increments the simulated
// PMU's branch counter, matching the "all branches retired" event the paper
// relies on (§4.2.1).
func (o Op) IsBranch() bool {
	return o >= OpBeq && o <= OpJr
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	return o >= OpBeq && o <= OpBge
}

// IsMemAccess reports whether the opcode reads or writes data memory.
func (o Op) IsMemAccess() bool {
	return o >= OpLd && o <= OpVSt
}

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool {
	switch o {
	case OpSt, OpStB, OpFSt, OpVSt:
		return true
	}
	return false
}

// IsNondet reports whether the opcode's result is nondeterministic (differs
// between executions or between cores) and must be trapped, emulated,
// recorded and replayed by the supervising runtime (§4.3.4).
func (o Op) IsNondet() bool {
	return o == OpRdtsc || o == OpMrs
}

// AccessSize returns the bytes of data memory touched by a memory opcode,
// and 0 for non-memory opcodes.
func (o Op) AccessSize() int {
	switch o {
	case OpLd, OpSt, OpFLd, OpFSt:
		return WordLen
	case OpLdB, OpStB:
		return 1
	case OpVLd, OpVSt:
		return VLanes * WordLen
	}
	return 0
}

var opNames = [NumOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSlt: "slt",
	OpMovI: "movi", OpAddI: "addi", OpMulI: "muli", OpAndI: "andi",
	OpOrI: "ori", OpXorI: "xori", OpShlI: "shli", OpShrI: "shri", OpSltI: "slti",
	OpFMov: "fmov", OpFMovI: "fmovi", OpFAdd: "fadd", OpFSub: "fsub",
	OpFMul: "fmul", OpFDiv: "fdiv", OpFSqrt: "fsqrt",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi", OpFCmpLt: "fcmplt",
	OpVAdd: "vadd", OpVXor: "vxor", OpVMul: "vmul", OpVSplat: "vsplat",
	OpLd: "ld", OpSt: "st", OpLdB: "ldb", OpStB: "stb",
	OpFLd: "fld", OpFSt: "fst", OpVLd: "vld", OpVSt: "vst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpJal: "jal", OpJr: "jr",
	OpSyscall: "syscall", OpRdtsc: "rdtsc", OpMrs: "mrs",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps assembler mnemonics back to opcodes.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// regKind describes which register file each operand of an opcode addresses,
// for validation and disassembly.
type regKind uint8

const (
	rkNone regKind = iota
	rkGPR
	rkFPR
	rkVR
)

type operandSpec struct {
	rd, ra, rb regKind
	hasImm     bool
}

var operandSpecs = [NumOps]operandSpec{
	OpNop:  {},
	OpHalt: {},
	OpMov:  {rd: rkGPR, ra: rkGPR}, OpAdd: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpSub: {rd: rkGPR, ra: rkGPR, rb: rkGPR}, OpMul: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpDiv: {rd: rkGPR, ra: rkGPR, rb: rkGPR}, OpRem: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpAnd: {rd: rkGPR, ra: rkGPR, rb: rkGPR}, OpOr: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpXor: {rd: rkGPR, ra: rkGPR, rb: rkGPR}, OpShl: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpShr: {rd: rkGPR, ra: rkGPR, rb: rkGPR}, OpSlt: {rd: rkGPR, ra: rkGPR, rb: rkGPR},
	OpMovI: {rd: rkGPR, hasImm: true}, OpAddI: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpMulI: {rd: rkGPR, ra: rkGPR, hasImm: true}, OpAndI: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpOrI: {rd: rkGPR, ra: rkGPR, hasImm: true}, OpXorI: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpShlI: {rd: rkGPR, ra: rkGPR, hasImm: true}, OpShrI: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpSltI: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpFMov: {rd: rkFPR, ra: rkFPR}, OpFMovI: {rd: rkFPR, hasImm: true},
	OpFAdd: {rd: rkFPR, ra: rkFPR, rb: rkFPR}, OpFSub: {rd: rkFPR, ra: rkFPR, rb: rkFPR},
	OpFMul: {rd: rkFPR, ra: rkFPR, rb: rkFPR}, OpFDiv: {rd: rkFPR, ra: rkFPR, rb: rkFPR},
	OpFSqrt: {rd: rkFPR, ra: rkFPR},
	OpCvtIF: {rd: rkFPR, ra: rkGPR}, OpCvtFI: {rd: rkGPR, ra: rkFPR},
	OpFCmpLt: {rd: rkGPR, ra: rkFPR, rb: rkFPR},
	OpVAdd:   {rd: rkVR, ra: rkVR, rb: rkVR}, OpVXor: {rd: rkVR, ra: rkVR, rb: rkVR},
	OpVMul: {rd: rkVR, ra: rkVR, rb: rkVR}, OpVSplat: {rd: rkVR, ra: rkGPR},
	OpLd:  {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpSt:  {ra: rkGPR, rb: rkGPR, hasImm: true},
	OpLdB: {rd: rkGPR, ra: rkGPR, hasImm: true},
	OpStB: {ra: rkGPR, rb: rkGPR, hasImm: true},
	OpFLd: {rd: rkFPR, ra: rkGPR, hasImm: true},
	OpFSt: {ra: rkGPR, rb: rkFPR, hasImm: true},
	OpVLd: {rd: rkVR, ra: rkGPR, hasImm: true},
	OpVSt: {ra: rkGPR, rb: rkVR, hasImm: true},
	OpBeq: {ra: rkGPR, rb: rkGPR, hasImm: true}, OpBne: {ra: rkGPR, rb: rkGPR, hasImm: true},
	OpBlt: {ra: rkGPR, rb: rkGPR, hasImm: true}, OpBge: {ra: rkGPR, rb: rkGPR, hasImm: true},
	OpJmp: {hasImm: true}, OpJal: {hasImm: true}, OpJr: {ra: rkGPR},
	OpSyscall: {},
	OpRdtsc:   {rd: rkGPR},
	OpMrs:     {rd: rkGPR, hasImm: true},
}

func regLimit(k regKind) uint8 {
	switch k {
	case rkGPR:
		return NumGPR
	case rkFPR:
		return NumFPR
	case rkVR:
		return NumVR
	}
	return 1 // unused operands must be zero
}

func checkReg(k regKind, r uint8, name string, i Instr) error {
	if r >= regLimit(k) {
		return fmt.Errorf("isa: %s: %s operand %d out of range", i.Op, name, r)
	}
	return nil
}

// Validate checks that the instruction's operands are in range for its
// opcode. Branch targets are checked against codeLen (pass a negative
// codeLen to skip target checking).
func (i Instr) Validate(codeLen int) error {
	if int(i.Op) >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	spec := operandSpecs[i.Op]
	if err := checkReg(spec.rd, i.Rd, "rd", i); err != nil {
		return err
	}
	if err := checkReg(spec.ra, i.Ra, "ra", i); err != nil {
		return err
	}
	if err := checkReg(spec.rb, i.Rb, "rb", i); err != nil {
		return err
	}
	if codeLen >= 0 && i.Op.IsBranch() && i.Op != OpJr {
		if i.Imm < 0 || i.Imm >= int64(codeLen) {
			return fmt.Errorf("isa: %s: branch target %d outside code [0,%d)", i.Op, i.Imm, codeLen)
		}
	}
	return nil
}

// ValidateProgram validates every instruction in a program.
func ValidateProgram(code []Instr) error {
	for pc, ins := range code {
		if err := ins.Validate(len(code)); err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
	}
	return nil
}

func regName(k regKind, r uint8) string {
	switch k {
	case rkGPR:
		return fmt.Sprintf("x%d", r)
	case rkFPR:
		return fmt.Sprintf("f%d", r)
	case rkVR:
		return fmt.Sprintf("v%d", r)
	}
	return "?"
}

// String disassembles the instruction into assembler syntax. Stores render
// as "st base, offset, src", matching the order the assembler parses.
func (i Instr) String() string {
	if int(i.Op) >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(i.Op))
	}
	spec := operandSpecs[i.Op]
	out := i.Op.String()
	sep := " "
	emit := func(s string) {
		out += sep + s
		sep = ", "
	}
	if i.Op.IsStore() {
		emit(regName(spec.ra, i.Ra))
		emit(fmt.Sprintf("%d", i.Imm))
		emit(regName(spec.rb, i.Rb))
		return out
	}
	if i.Op == OpFMovI {
		// The immediate carries a float bit pattern; render it as the
		// float the assembler parses.
		emit(regName(spec.rd, i.Rd))
		emit(strconv.FormatFloat(math.Float64frombits(uint64(i.Imm)), 'g', -1, 64))
		return out
	}
	if spec.rd != rkNone {
		emit(regName(spec.rd, i.Rd))
	}
	if spec.ra != rkNone {
		emit(regName(spec.ra, i.Ra))
	}
	if spec.rb != rkNone {
		emit(regName(spec.rb, i.Rb))
	}
	if spec.hasImm {
		emit(fmt.Sprintf("%d", i.Imm))
	}
	return out
}
