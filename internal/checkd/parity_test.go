package checkd

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parallaft/internal/proc"
	"parallaft/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOffloadParityAllWorkloads is the offloading service's
// non-negotiable invariant: for every built-in workload, the offloaded
// verdicts must be identical to in-process checking. Each workload's first
// program runs under the in-process runtime with export enabled; the
// exported packets are then checked by a fresh executor with no access to
// the originating run, and every verdict must come back clean, one per
// sealed segment. The golden file pins the packet counts so silent changes
// to segmentation or export coverage surface as drift.
func TestGoldenOffloadParityAllWorkloads(t *testing.T) {
	suite := append(workload.All(), workload.Stress()...)
	var sb strings.Builder
	for _, w := range suite {
		if testing.Short() && sb.Len() > 0 {
			t.Skip("short mode: first workload only")
		}
		progs := w.Gen(0.05)
		prog := progs[0]
		stats, store, pkts := runExported(t, smallSliceConfig(), prog)
		if stats.Detected != nil {
			t.Fatalf("%s: clean run detected in-process: %v", w.Name, stats.Detected)
		}
		verdicts, err := CheckAll(store, pkts, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: CheckAll: %v", w.Name, err)
		}
		if len(verdicts) != len(pkts) {
			t.Fatalf("%s: %d verdicts for %d packets", w.Name, len(verdicts), len(pkts))
		}
		ok := 0
		for _, v := range verdicts {
			if v.Infra != "" {
				t.Fatalf("%s: infrastructure failure: %v", w.Name, v)
			}
			if v.OK {
				ok++
			} else {
				t.Errorf("%s: offloaded verdict diverged from in-process (clean): %v", w.Name, v)
			}
		}
		fmt.Fprintf(&sb, "%s prog=%s packets=%d ok=%d\n", w.Name, prog.Name, len(pkts), ok)
	}
	goldenCompare(t, "golden_offload_parity.txt", sb.String())
}

// TestGoldenOffloadParityInjectedFault injects a memory corruption into the
// main mid-run: the in-process runtime detects the divergence at some
// segment, and the offloaded checker — replaying the same packets — must
// report the identical verdict: same detecting segment, same error kind,
// same detail, with every other exported segment passing.
func TestGoldenOffloadParityInjectedFault(t *testing.T) {
	prog := victimProgram(120_000)
	bufAddr := prog.Symbols["buf"]
	cfg := smallSliceConfig()
	corrupted := false
	cfg.MainHook = func(m *proc.Process, _ float64) {
		// One bit flip in the victim's buffer, past the first segment so a
		// pre-corruption checkpoint and packet exist.
		if corrupted || m.Instrs < 300_000 {
			return
		}
		corrupted = true
		v, _ := m.AS.LoadU64(bufAddr + 512)
		m.AS.StoreU64(bufAddr+512, v^4) //nolint:errcheck
	}
	stats, store, pkts := runExported(t, cfg, prog)
	if stats.Detected == nil {
		t.Fatal("in-process run did not detect the injected corruption")
	}
	verdicts, err := CheckAll(store, pkts, Options{Workers: 4})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	var failing *Verdict
	for i := range verdicts {
		v := &verdicts[i]
		if v.Infra != "" {
			t.Fatalf("infrastructure failure: %v", v)
		}
		if v.OK {
			continue
		}
		if failing != nil {
			t.Fatalf("second failing verdict %v (already had %v); corruption must fail exactly one segment", v, failing)
		}
		failing = v
	}
	if failing == nil {
		t.Fatal("offloaded checking missed the corruption the in-process runtime detected")
	}
	if failing.Segment != stats.Detected.Segment {
		t.Errorf("offloaded detection at segment %d, in-process at %d", failing.Segment, stats.Detected.Segment)
	}
	if failing.ErrorKind != stats.Detected.Kind.String() {
		t.Errorf("offloaded kind %q, in-process %q", failing.ErrorKind, stats.Detected.Kind)
	}
	if failing.Detail != stats.Detected.Detail {
		t.Errorf("offloaded detail %q, in-process %q", failing.Detail, stats.Detected.Detail)
	}

	got := fmt.Sprintf("inprocess: seg=%d kind=%s detail=%s\noffloaded: seg=%d kind=%s detail=%s\npackets=%d\n",
		stats.Detected.Segment, stats.Detected.Kind, stats.Detected.Detail,
		failing.Segment, failing.ErrorKind, failing.Detail, len(pkts))
	goldenCompare(t, "golden_offload_fault.txt", got)
}

// TestOffloadParityRegisterFault covers the checker-side fault path: a
// corrupted checker register makes the in-process comparison fail, while
// the exported packets describe a perfectly healthy run — the offloaded
// verdicts must all pass. Detection parity means agreeing about where the
// corruption happened: in the checker substrate, not in the recorded run.
func TestOffloadParityRegisterFault(t *testing.T) {
	cfg := smallSliceConfig()
	done := false
	cfg.CheckerHook = func(seg int, c *proc.Process, _ float64) {
		if done || seg != 1 {
			return
		}
		done = true
		c.FlipRegisterBit(proc.GPRClass, 1, 0, 40)
	}
	stats, store, pkts := runExported(t, cfg, victimProgram(120_000))
	if stats.Detected == nil {
		t.Fatal("in-process run did not detect the checker corruption")
	}
	verdicts, err := CheckAll(store, pkts, Options{})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	for _, v := range verdicts {
		if !v.OK {
			t.Errorf("offloaded verdict failed for a healthy recorded run: %v", v)
		}
	}
}
