package checkd

import "parallaft/internal/telemetry"

// checkdMetrics bundles the daemon-side instrument handles, resolved once
// per Executor/Server from Options.Metrics. All nil (no-op) without a
// registry. Gauges are additive so every executor sharing a registry —
// the socket server opens one per connection — composes into daemon-wide
// totals.
type checkdMetrics struct {
	queueDepth  *telemetry.Gauge
	workers     *telemetry.Gauge
	busyWorkers *telemetry.Gauge

	submitted  *telemetry.Counter
	rejections *telemetry.Counter
	retries    *telemetry.Counter

	verdictsOK    *telemetry.Counter
	verdictsFail  *telemetry.Counter
	verdictsInfra *telemetry.Counter

	verdictLatency *telemetry.Histogram

	framesRead    *telemetry.Counter
	framesWritten *telemetry.Counter
	bytesRead     *telemetry.Counter
	bytesWritten  *telemetry.Counter
}

func newCheckdMetrics(reg *telemetry.Registry) checkdMetrics {
	var m checkdMetrics
	if reg == nil {
		return m
	}
	m.queueDepth = reg.Gauge("paft_checkd_queue_depth",
		"check packets accepted but not yet picked up by a worker")
	m.workers = reg.Gauge("paft_checkd_workers",
		"replay workers currently alive across all executors")
	m.busyWorkers = reg.Gauge("paft_checkd_busy_workers",
		"replay workers currently checking a packet")
	m.submitted = reg.Counter("paft_checkd_packets_submitted_total",
		"check packets accepted into the intake queue")
	m.rejections = reg.Counter("paft_checkd_rejections_total",
		"packets rejected at intake (version or config-digest mismatch)")
	m.retries = reg.Counter("paft_checkd_chunk_retries_total",
		"packet checks re-attempted because a chunk had not arrived yet")
	m.verdictsOK = reg.Counter("paft_checkd_verdicts_ok_total",
		"verdicts delivered with a passing comparison")
	m.verdictsFail = reg.Counter("paft_checkd_verdicts_failed_total",
		"verdicts delivered reporting a divergence")
	m.verdictsInfra = reg.Counter("paft_checkd_verdicts_infra_total",
		"verdicts delivered reporting an infrastructure failure")
	m.verdictLatency = reg.Histogram("paft_checkd_verdict_latency_seconds",
		"wall time from packet submission to ordered verdict delivery",
		telemetry.ExpBuckets(1e-5, 4, 12))
	m.framesRead = reg.Counter("paft_checkd_frames_read_total",
		"transport frames read from clients")
	m.framesWritten = reg.Counter("paft_checkd_frames_written_total",
		"transport frames written to clients")
	m.bytesRead = reg.Counter("paft_checkd_bytes_read_total",
		"transport payload bytes read from clients (including frame headers)")
	m.bytesWritten = reg.Counter("paft_checkd_bytes_written_total",
		"transport payload bytes written to clients (including frame headers)")
	return m
}

// observeVerdict counts a delivered verdict by class.
func (m *checkdMetrics) observeVerdict(v Verdict) {
	switch {
	case v.Infra != "":
		m.verdictsInfra.Inc()
	case v.OK:
		m.verdictsOK.Inc()
	default:
		m.verdictsFail.Inc()
	}
}
