package checkd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"parallaft/internal/packet"
)

// startServer serves on a fresh Unix socket under the test's temp dir and
// tears down gracefully when the test ends.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "checkd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen %s: %v", sock, err)
	}
	srv := NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, sock
}

// TestUnixSocketRoundTrip is the acceptance path: packets exported from an
// in-process run travel over a Unix socket to a daemon-side executor, and
// the verdicts coming back are identical to the in-process transport's.
func TestUnixSocketRoundTrip(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 2 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	local, err := CheckAll(store, pkts, Options{})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	_, sock := startServer(t, Options{Workers: 2})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	remote, err := CheckOver(conn, store, pkts)
	if err != nil {
		t.Fatalf("CheckOver: %v", err)
	}
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("socket verdicts differ from in-process:\n local %+v\nremote %+v", local, remote)
	}
}

// TestSocketRejectsBadVersion pins the 'E' path: an intake rejection is
// reported to the client as a typed remote error, not a dropped connection.
func TestSocketRejectsBadVersion(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	bad := *pkts[0]
	bad.Version = packet.Version + 1

	_, sock := startServer(t, Options{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_, err = CheckOver(conn, store, []*packet.CheckPacket{&bad})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("CheckOver = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "version") {
		t.Fatalf("remote error %q does not mention the version", remote.Msg)
	}
}

// TestReadFrameRejectsDamage is the framing hardening table: truncated
// headers, truncated payloads, and corrupt length prefixes must come back as
// errors — with an oversized length producing the typed ErrFrameTooLarge
// before any allocation happens — never as a giant allocation or a hang.
func TestReadFrameRejectsDamage(t *testing.T) {
	frame := func(typ byte, payloadLen uint32, payload []byte) []byte {
		b := make([]byte, 5+len(payload))
		b[0] = typ
		binary.LittleEndian.PutUint32(b[1:], payloadLen)
		copy(b[5:], payload)
		return b
	}
	cases := []struct {
		name  string
		input []byte
		want  error // nil = any error acceptable; io.ErrUnexpectedEOF etc.
	}{
		{"empty input", nil, io.EOF},
		{"truncated header", []byte{'V', 3, 0}, io.ErrUnexpectedEOF},
		{"truncated payload", frame('V', 10, []byte("abc")), io.ErrUnexpectedEOF},
		{"length over limit", frame('C', MaxFrameLen+1, nil), ErrFrameTooLarge},
		{"length maxed out", frame('P', ^uint32(0), nil), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("ReadFrame accepted damaged input")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame = %v, want %v", err, tc.want)
			}
		})
	}

	// The typed oversize error also still matches the protocol sentinel,
	// so existing errors.Is(err, ErrProtocol) handling keeps working.
	_, _, err := ReadFrame(bytes.NewReader(frame('C', MaxFrameLen+1, nil)))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized-frame error %v does not wrap ErrProtocol", err)
	}
}

// TestReadFrameRoundTrip pins the healthy path, including the boundary
// cases the damage table brackets: empty payloads and payload bytes that
// look like frame headers.
func TestReadFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), []byte("VDCE\x00\xff\x00"), bytes.Repeat([]byte{0xab}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte('A'+i), p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if typ != byte('A'+i) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d = (%q, %d bytes), want (%q, %d bytes)", i, typ, len(got), 'A'+i, len(p))
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over", buf.Len())
	}
}

// TestServerEchoesHeartbeat pins the 'H' liveness frame: the server echoes
// the ping payload verbatim without disturbing the session, and a session
// that mixes heartbeats with packets still produces every verdict.
func TestServerEchoesHeartbeat(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	_, sock := startServer(t, Options{Workers: 1})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	if err := WriteFrame(conn, FrameHeartbeat, []byte("ping-7")); err != nil {
		t.Fatalf("write ping: %v", err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("read pong: %v", err)
	}
	if typ != FrameHeartbeat || string(payload) != "ping-7" {
		t.Fatalf("pong = (%q, %q), want ('H', \"ping-7\")", typ, payload)
	}

	// The session is undisturbed: a normal check run still works on it.
	verdicts, err := CheckOver(conn, store, pkts)
	if err != nil {
		t.Fatalf("CheckOver after heartbeat: %v", err)
	}
	if len(verdicts) != len(pkts) {
		t.Fatalf("%d verdicts for %d packets", len(verdicts), len(pkts))
	}
}

// failingConn drops the connection after allowing a fixed number of writes,
// standing in for a node dying mid-session.
type failingConn struct {
	writesLeft int
}

func (c *failingConn) Read(p []byte) (int, error) { return 0, io.ErrClosedPipe }
func (c *failingConn) Write(p []byte) (int, error) {
	if c.writesLeft <= 0 {
		return 0, io.ErrClosedPipe
	}
	c.writesLeft--
	return len(p), nil
}
func (c *failingConn) RemoteAddr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 9141}
}

// TestCheckOverTypedConnError pins the failure taxonomy: transport-level
// failures surface as *ConnError carrying the node address and the packet
// index in flight, distinguishable by type from the *RemoteError verdict
// rejection (covered by TestSocketRejectsBadVersion/Digest).
func TestCheckOverTypedConnError(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	if len(pkts) < 2 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	// WriteFrame issues two Write calls per frame (header, payload).
	chunkWrites := 2 * store.Len()

	cases := []struct {
		name       string
		writes     int
		wantOp     string
		wantPacket int
	}{
		{"dies mid-chunk-upload", chunkWrites / 2, "send chunk", -1},
		{"dies sending a packet", chunkWrites + 3, "send packet", 1},
		{"dies awaiting verdicts", 1 << 30, "read verdict", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := &failingConn{writesLeft: tc.writes}
			_, err := CheckOver(conn, store, pkts)
			var ce *ConnError
			if !errors.As(err, &ce) {
				t.Fatalf("CheckOver = %v, want *ConnError", err)
			}
			if ce.Op != tc.wantOp {
				t.Errorf("Op = %q, want %q", ce.Op, tc.wantOp)
			}
			if ce.Packet != tc.wantPacket {
				t.Errorf("Packet = %d, want %d", ce.Packet, tc.wantPacket)
			}
			if !strings.Contains(ce.Addr, "10.0.0.7:9141") {
				t.Errorf("Addr = %q, want the node address in it", ce.Addr)
			}
			if !strings.Contains(ce.Error(), "10.0.0.7:9141") {
				t.Errorf("Error() = %q does not name the node", ce.Error())
			}
			var re *RemoteError
			if errors.As(err, &re) {
				t.Error("connection failure also matched *RemoteError; the classes must be disjoint")
			}
		})
	}
}

// TestSocketRejectsBadDigest covers the other typed rejection end to end.
func TestSocketRejectsBadDigest(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	bad := *pkts[0]
	bad.ConfigDigest++

	_, sock := startServer(t, Options{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_, err = CheckOver(conn, store, []*packet.CheckPacket{&bad})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("CheckOver = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "digest") {
		t.Fatalf("remote error %q does not mention the digest", remote.Msg)
	}
}
