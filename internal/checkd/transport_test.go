package checkd

import (
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"parallaft/internal/packet"
)

// startServer serves on a fresh Unix socket under the test's temp dir and
// tears down gracefully when the test ends.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "checkd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen %s: %v", sock, err)
	}
	srv := NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, sock
}

// TestUnixSocketRoundTrip is the acceptance path: packets exported from an
// in-process run travel over a Unix socket to a daemon-side executor, and
// the verdicts coming back are identical to the in-process transport's.
func TestUnixSocketRoundTrip(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 2 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	local, err := CheckAll(store, pkts, Options{})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	_, sock := startServer(t, Options{Workers: 2})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	remote, err := CheckOver(conn, store, pkts)
	if err != nil {
		t.Fatalf("CheckOver: %v", err)
	}
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("socket verdicts differ from in-process:\n local %+v\nremote %+v", local, remote)
	}
}

// TestSocketRejectsBadVersion pins the 'E' path: an intake rejection is
// reported to the client as a typed remote error, not a dropped connection.
func TestSocketRejectsBadVersion(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	bad := *pkts[0]
	bad.Version = packet.Version + 1

	_, sock := startServer(t, Options{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_, err = CheckOver(conn, store, []*packet.CheckPacket{&bad})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("CheckOver = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "version") {
		t.Fatalf("remote error %q does not mention the version", remote.Msg)
	}
}

// TestSocketRejectsBadDigest covers the other typed rejection end to end.
func TestSocketRejectsBadDigest(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	bad := *pkts[0]
	bad.ConfigDigest++

	_, sock := startServer(t, Options{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_, err = CheckOver(conn, store, []*packet.CheckPacket{&bad})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("CheckOver = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "digest") {
		t.Fatalf("remote error %q does not mention the digest", remote.Msg)
	}
}
