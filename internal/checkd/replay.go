// Package checkd implements the offloaded checking service: an executor
// that accepts portable check packets (internal/packet) and independently
// re-runs Parallaft's replay-and-compare protocol against a fresh simulated
// substrate, with no access to the originating runtime's state.
//
// A checker is a pure function of (start checkpoint, record/replay log,
// config): the packet carries all three, so an external daemon can produce
// the exact verdict the in-process checker would have produced — pass/fail,
// the mismatching segment, and the error kind. The replay state machine
// here deliberately mirrors internal/core/replay.go line for line (target
// steering via branch counter + breakpoint, syscall class dispatch, nondet
// value injection, signal disposition checks) so that verdict parity is a
// structural property, pinned by the golden parity tests.
package checkd

import (
	"fmt"

	"parallaft/internal/compare"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/mem"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry/profile"
)

// Verdict is the outcome of checking one packet. It mirrors what the
// in-process runtime reports on detection: pass/fail, the segment index,
// and the error kind string (core.ErrorKind.String() values).
type Verdict struct {
	Seq       int    `json:"seq"` // submission order, assigned by the executor
	Benchmark string `json:"benchmark"`
	ProgName  string `json:"prog"`
	Segment   int    `json:"segment"`
	OK        bool   `json:"ok"`
	ErrorKind string `json:"error_kind,omitempty"` // set when !OK
	Detail    string `json:"detail,omitempty"`
	Infra     string `json:"infra,omitempty"` // infrastructure failure; not a detection

	// infraErr is the typed error behind Infra, so programmatic consumers
	// can errors.Is against sentinels like ErrMissingChunk instead of
	// string-matching. It deliberately stays off the wire (unexported):
	// Verdicts round-tripped through JSON keep only the Infra text.
	infraErr error
}

// InfraErr returns the typed infrastructure error behind Infra, or nil. For
// a packet abandoned after exhausting its chunk-miss retries this unwraps
// to ErrMissingChunk.
func (v Verdict) InfraErr() error { return v.infraErr }

// NewInfraVerdict builds the verdict for a packet that could not be checked
// at all: the dispatcher-side analogue of the executor's retry-exhausted
// path. err is kept typed (InfraErr) as well as rendered into Infra, so
// consumers can errors.Is against sentinels like checkfarm's ErrNoNodes.
// The caller assigns Seq.
func NewInfraVerdict(pkt *packet.CheckPacket, err error) Verdict {
	return Verdict{
		Benchmark: pkt.Benchmark,
		ProgName:  pkt.ProgName,
		Segment:   pkt.Segment,
		OK:        false,
		Infra:     err.Error(),
		infraErr:  err,
	}
}

func (v Verdict) String() string {
	if v.Infra != "" {
		return fmt.Sprintf("%s seg %d: INFRA: %s", v.ProgName, v.Segment, v.Infra)
	}
	if v.OK {
		return fmt.Sprintf("%s seg %d: ok", v.ProgName, v.Segment)
	}
	return fmt.Sprintf("%s seg %d: %s: %s", v.ProgName, v.Segment, v.ErrorKind, v.Detail)
}

// RunPacket checks one packet against a fresh substrate and returns its
// verdict. The returned error is infrastructural only (a chunk missing from
// the store — possibly transient under a streaming transport — or a
// malformed packet); detections are reported in the Verdict, never as an
// error.
func RunPacket(store *pagestore.Store, pkt *packet.CheckPacket) (Verdict, error) {
	v, _, err := RunPacketSlice(store, pkt)
	return v, err
}

// RunPacketSlice is RunPacket plus the replay's ledger slice: the simulated
// time and modeled energy this daemon's private substrate spent reproducing
// the segment, keyed by the packet's trace ID. The slice's HostNs is zero —
// wall-clock cost belongs to whoever drove the replay (the executor measures
// it around its retry loop). On an infrastructure error the slice is zero:
// nothing was replayed, so there is nothing to attribute.
func RunPacketSlice(store *pagestore.Store, pkt *packet.CheckPacket) (Verdict, profile.Slice, error) {
	v := Verdict{
		Benchmark: pkt.Benchmark,
		ProgName:  pkt.ProgName,
		Segment:   pkt.Segment,
	}
	r, err := newRunner(store, pkt)
	if err != nil {
		return v, profile.Slice{}, err
	}
	r.run()
	if r.detected == nil {
		v.OK = true
	} else {
		v.ErrorKind = r.detected.Kind.String()
		v.Detail = r.detected.Detail
	}
	sl := profile.Slice{
		TraceID: pkt.TraceID,
		SimNs:   r.task.Clock,
		SimJ:    r.e.M.EnergyJ(r.task.Clock),
	}
	return v, sl, nil
}

// runner replays one packet. Field-for-field it plays the role of the
// (Runtime, Segment) pair in core's replay: the packet is always "sealed"
// (its record is complete by construction), which removes core's
// wait-for-the-main states and leaves a straight-line state machine.
type runner struct {
	pkt   *packet.CheckPacket
	e     *sim.Engine
	c     *proc.Process
	task  *sim.Task
	skid  uint64
	quant uint64

	replayIdx    int
	target       packet.ExecPoint
	targetIsEnd  bool
	targetActive bool

	detected *core.DetectedError
	done     bool
}

// newRunner reconstructs the checker substrate from the packet: a
// big-core-only machine (the daemon has no reason to model little cores —
// verdicts are frequency-independent), a fresh kernel at the recorded page
// size, and a process whose address space, registers, handlers and PMU seed
// match the start checkpoint exactly.
func newRunner(store *pagestore.Store, pkt *packet.CheckPacket) (*runner, error) {
	cfg := &pkt.Config

	codeBytes := store.Get(pkt.CodeKey)
	if codeBytes == nil {
		return nil, fmt.Errorf("%w: code chunk %#x", ErrMissingChunk, uint64(pkt.CodeKey))
	}
	code, err := packet.DecodeCode(codeBytes, pkt.CodeLen)
	if err != nil {
		return nil, fmt.Errorf("checkd: packet %s seg %d: %w", pkt.ProgName, pkt.Segment, err)
	}

	as, err := rebuildAddressSpace(store, cfg.PageSize, &pkt.Start)
	if err != nil {
		return nil, err
	}

	m := machine.New(machine.BigOnly())
	k := oskernel.NewKernel(cfg.PageSize, 0)
	l := oskernel.NewLoader(k, cfg.PageSize, 0)
	e := sim.New(m, k, l)

	c := proc.New(pkt.CheckerPID, 1, pkt.ProgName, code, as, pkt.PMUSeed)
	k.Register(c.PID)
	c.Regs = pkt.Start.Regs.Regs()
	c.PC = pkt.Start.PC
	c.InstrLimit = pkt.InstrLimit
	c.SetMaxSkid(uint64(pkt.MaxSkid))
	for _, h := range pkt.Start.Handlers {
		c.Handlers[proc.Signal(h.Sig)] = h.PC
	}

	return &runner{
		pkt:   pkt,
		e:     e,
		c:     c,
		task:  e.NewTask(c, m.BigCores()[0], 0),
		skid:  cfg.SkidBuffer,
		quant: cfg.Quantum,
	}, nil
}

// rebuildAddressSpace reconstructs a checkpointed address space from page
// refs. Pages are materialised under RW protection first (writes into
// non-writable pages fault), then VMA- and page-level protections are
// restored: a whole-VMA Protect for every non-RW VMA fixes both the VMA
// record and its pages, and a per-page fixup handles pages whose individual
// protection diverged from their VMA's (an mprotect of a sub-range).
func rebuildAddressSpace(store *pagestore.Store, pageSize uint64, st *packet.StartState) (*mem.AddressSpace, error) {
	as := mem.NewAddressSpace(pageSize)
	vmaProt := make(map[uint64]mem.Prot) // VPN -> owning VMA's final prot
	for _, v := range st.VMAs {
		if err := as.Map(v.Base, v.Length, mem.ProtRW, v.Name); err != nil {
			return nil, fmt.Errorf("checkd: rebuilding vma %#x+%#x: %v", v.Base, v.Length, err)
		}
		for vpn := v.Base / pageSize; vpn < (v.Base+v.Length)/pageSize; vpn++ {
			vmaProt[vpn] = mem.Prot(v.Prot)
		}
	}
	for _, pg := range st.Pages {
		data := store.Get(pg.Key)
		if data == nil {
			return nil, fmt.Errorf("%w: page %#x chunk %#x", ErrMissingChunk, pg.VPN*pageSize, uint64(pg.Key))
		}
		if f := as.Write(pg.VPN*pageSize, data); f != nil {
			return nil, fmt.Errorf("checkd: restoring page %#x faulted: %v", pg.VPN*pageSize, f)
		}
	}
	for _, v := range st.VMAs {
		if mem.Prot(v.Prot) != mem.ProtRW {
			if err := as.Protect(v.Base, v.Length, mem.Prot(v.Prot)); err != nil {
				return nil, fmt.Errorf("checkd: restoring vma prot %#x+%#x: %v", v.Base, v.Length, err)
			}
		}
	}
	for _, pg := range st.Pages {
		if p := mem.Prot(pg.Prot); p != vmaProt[pg.VPN] {
			if err := as.Protect(pg.VPN*pageSize, pageSize, p); err != nil {
				return nil, fmt.Errorf("checkd: restoring page prot %#x: %v", pg.VPN*pageSize, err)
			}
		}
	}
	as.RestoreBrk(st.BrkBase, st.Brk)
	as.ClearSoftDirty()
	return as, nil
}

// fail latches the first detection; replay stops at the first divergence,
// exactly as in-process detection terminates the application.
func (r *runner) fail(kind core.ErrorKind, format string, args ...any) {
	if r.detected == nil {
		r.detected = &core.DetectedError{
			Kind: kind, Segment: r.pkt.Segment, Detail: fmt.Sprintf(format, args...),
		}
	}
	r.done = true
}

func (r *runner) failSig(sig proc.Signal, format string, args ...any) {
	if r.detected == nil {
		r.detected = &core.DetectedError{
			Kind: core.ErrCheckerException, Segment: r.pkt.Segment, Sig: sig,
			Detail: fmt.Sprintf(format, args...),
		}
	}
	r.done = true
}

// nextEvent returns the next unconsumed log event, or nil.
func (r *runner) nextEvent() *packet.Event {
	if r.replayIdx >= len(r.pkt.Events) {
		return nil
	}
	return &r.pkt.Events[r.replayIdx]
}

// run drives the replay to a verdict.
func (r *runner) run() {
	for !r.done {
		r.step()
	}
}

// step mirrors core's stepChecker against an always-sealed record.
func (r *runner) step() {
	r.ensureTarget()
	if r.atTarget() {
		r.reachedTarget()
		return
	}

	// Same deliberate quantum offset as in-process checkers: budget stops
	// must not align with the main's slicing positions, or the steering
	// protocol never does its job.
	stop := r.e.Run(r.task, r.quant+37)

	if r.atTarget() {
		r.reachedTarget()
		return
	}
	switch stop.Reason {
	case proc.StopBudget:
		// keep going
	case proc.StopSyscall:
		r.replaySyscall()
	case proc.StopNondet:
		r.replayNondet()
	case proc.StopSignal:
		r.replayFault(stop.Sig)
	case proc.StopCounter:
		r.enterStepped()
	case proc.StopBreakpoint:
		rel := r.c.Branches
		switch {
		case r.atTarget():
			r.reachedTarget()
		case r.targetActive && rel > r.target.Branches:
			r.fail(core.ErrExecPointOverrun,
				"checker at %d branches, target %d", rel, r.target.Branches)
		default:
			// Same PC, earlier iteration: continue to the next hit.
		}
	case proc.StopInstrLimit:
		r.fail(core.ErrCheckerTimeout,
			"checker executed %d instructions, budget %d (main %d x %.2f)",
			r.c.Instrs, r.c.InstrLimit, r.pkt.MainInstrs, r.pkt.Config.TimeoutScale)
	case proc.StopHalt:
		r.checkerHalted()
	}
}

// ensureTarget mirrors core's steering: the next recorded external signal's
// delivery point takes priority; otherwise the segment end point (unless
// the segment ends with the program exiting, which the final replayed event
// produces).
func (r *runner) ensureTarget() {
	var want packet.ExecPoint
	var isEnd, active bool
	if ev := r.nextEvent(); ev != nil && ev.Kind == packet.EvSignalExternal {
		want, isEnd, active = ev.Signal.Point, false, true
	} else if !r.pkt.EndIsExit {
		want, isEnd, active = r.pkt.End, true, true
	}
	if !active {
		if r.targetActive {
			r.c.DisarmBranchCounter()
			r.c.ClearAllBreakpoints()
			r.targetActive = false
		}
		return
	}
	if r.targetActive && r.target == want && r.targetIsEnd == isEnd {
		return // already armed at this target
	}
	r.target = want
	r.targetIsEnd = isEnd
	r.targetActive = true

	c := r.c
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	rel := c.Branches
	if want.Branches > rel && want.Branches-rel > r.skid {
		c.ArmBranchCounter(want.Branches - r.skid)
	} else {
		c.SetBreakpoint(want.PC)
	}
}

// enterStepped switches from counting to breakpointing on the target PC.
func (r *runner) enterStepped() {
	r.c.DisarmBranchCounter()
	r.c.SetBreakpoint(r.target.PC)
}

// atTarget reports whether the checker is exactly at the active target.
func (r *runner) atTarget() bool {
	return r.targetActive &&
		r.c.Branches == r.target.Branches &&
		r.c.PC == r.target.PC
}

// reachedTarget consumes the active target: deliver an external signal, or
// finish the segment at its end point.
func (r *runner) reachedTarget() {
	if r.targetIsEnd {
		if r.replayIdx < len(r.pkt.Events) {
			r.fail(core.ErrEventOrderMismatch,
				"checker reached segment end with %d unreplayed events",
				len(r.pkt.Events)-r.replayIdx)
			return
		}
		r.finishAtEnd()
		return
	}
	ev := r.nextEvent()
	r.replayIdx++
	r.targetActive = false
	r.c.DisarmBranchCounter()
	r.c.ClearAllBreakpoints()
	alive := r.c.DeliverSignal(proc.Signal(ev.Signal.Sig))
	if ev.Signal.Fatal == alive {
		r.failSig(proc.Signal(ev.Signal.Sig), "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted()
	}
}

// replaySyscall validates the checker's syscall against the record and
// applies the class-appropriate behaviour.
func (r *runner) replaySyscall() {
	c := r.c
	ev := r.nextEvent()
	if ev == nil {
		r.fail(core.ErrSyscallMismatch,
			"checker issued syscall %v past the end of the record", oskernel.Decode(c).Nr)
		return
	}
	if ev.Kind != packet.EvSyscall {
		r.fail(core.ErrEventOrderMismatch,
			"checker at a syscall, record expects %v", eventKindString(ev.Kind))
		return
	}
	rec := ev.Syscall
	info := oskernel.Decode(c)
	recInfo := oskernel.Info{Nr: oskernel.Sys(rec.Nr), Args: oskernel.Args(rec.Args)}
	if info != recInfo {
		r.fail(core.ErrSyscallMismatch,
			"checker %v%v vs recorded %v%v", info.Nr, info.Args, recInfo.Nr, recInfo.Args)
		return
	}

	model := oskernel.ModelOf(info.Nr)
	chkIn := captureRegions(c, model.In(r.e.K, c, info.Args))
	if !regionsEqual(chkIn, rec.In) {
		r.fail(core.ErrSyscallMismatch, "%v input data differs", info.Nr)
		return
	}

	r.replayIdx++

	switch oskernel.Class(rec.Class) {
	case oskernel.ClassLocal:
		// Both sides execute; pin ASLR'd mmaps to the recorded address with
		// MAP_FIXED. Only the kernel-visible arguments are rewritten — the
		// architectural registers keep the original values.
		if info.Nr == oskernel.SysMmap && rec.MmapFixedAddr != 0 {
			info.Args[0] = rec.MmapFixedAddr
			info.Args[3] |= oskernel.MapFixed
		}
		res := r.e.ExecSyscall(r.task, info)
		if res.Ret != rec.Ret {
			r.fail(core.ErrSyscallMismatch,
				"%v local result %d differs from recorded %d", info.Nr, res.Ret, rec.Ret)
			return
		}
		if res.Exited {
			c.Exited = true
			r.checkerHalted()
			return
		}
		oskernel.Finish(c, res.Ret)
		if res.SelfSignal != proc.SigNone {
			if !c.DeliverSignal(res.SelfSignal) {
				r.checkerHalted()
			}
		}

	case oskernel.ClassGlobal, oskernel.ClassNonEffectful:
		// Replay outputs and result without touching the OS, so the external
		// effect happens exactly once.
		if info.Nr == oskernel.SysExit {
			c.Exited = true
			c.ExitCode = int64(info.Args[0])
			r.checkerHalted()
			return
		}
		for _, out := range rec.Out {
			if f := c.AS.Write(out.Addr, out.Data); f != nil {
				r.fail(core.ErrSyscallMismatch,
					"replaying %v output into checker faulted at %#x", info.Nr, f.Addr)
				return
			}
		}
		oskernel.ReplayFinish(c, rec.Ret)
	}
}

// replayNondet feeds the recorded value of a nondeterministic instruction
// to the checker.
func (r *runner) replayNondet() {
	c := r.c
	ev := r.nextEvent()
	if ev == nil {
		r.fail(core.ErrEventOrderMismatch, "checker nondet instruction past end of record")
		return
	}
	if ev.Kind != packet.EvNondet {
		r.fail(core.ErrEventOrderMismatch,
			"checker at nondet instruction, record expects %v", eventKindString(ev.Kind))
		return
	}
	if ev.Nondet.PC != c.PC {
		r.fail(core.ErrEventOrderMismatch,
			"nondet at pc %d, recorded pc %d", c.PC, ev.Nondet.PC)
		return
	}
	r.replayIdx++
	ins := c.CurrentInstr()
	c.Regs.X[ins.Rd] = ev.Nondet.Value
	c.PC++
	c.Instrs++
}

// replayFault checks a checker fault against the record: the main must have
// taken the identical signal at the identical PC.
func (r *runner) replayFault(sig proc.Signal) {
	c := r.c
	ev := r.nextEvent()
	if ev == nil || ev.Kind != packet.EvSignalInternal ||
		proc.Signal(ev.Signal.Sig) != sig || ev.Signal.PC != c.PC {
		r.failSig(sig, "checker fault %v at pc %d diverges from record", sig, c.PC)
		return
	}
	r.replayIdx++
	alive := c.DeliverSignal(sig)
	if ev.Signal.Fatal != !alive {
		r.failSig(sig, "checker signal disposition differs from main's")
		return
	}
	if !alive {
		r.checkerHalted()
	}
}

// checkerHalted handles the checker finishing execution (exit syscall,
// halt, or fatal signal). For an exit-ending segment this is the expected
// end; anywhere else it is a divergence.
func (r *runner) checkerHalted() {
	if !r.pkt.EndIsExit {
		r.fail(core.ErrCheckerExited, "checker exited mid-segment")
		return
	}
	if r.replayIdx < len(r.pkt.Events) {
		r.fail(core.ErrEventOrderMismatch,
			"checker exited with %d unreplayed events", len(r.pkt.Events)-r.replayIdx)
		return
	}
	r.finishAtEnd()
}

// finishAtEnd runs the end-of-segment comparison: registers first (a
// register mismatch wins over any memory mismatch, matching core), then the
// PC, then the expected page hashes against the reconstructed checker's
// full page set.
func (r *runner) finishAtEnd() {
	c := r.c
	c.DisarmBranchCounter()
	c.ClearAllBreakpoints()
	r.done = true

	if !r.pkt.Config.CompareStates {
		return // RAFT model: no state comparison at segment ends
	}

	ref := r.pkt.EndState.Regs.Regs()
	if !c.Regs.Equal(&ref) {
		r.detected = &core.DetectedError{
			Kind: core.ErrRegMismatch, Segment: r.pkt.Segment,
			Detail: fmt.Sprintf("registers differ at segment end (checker/checkpoint):%s",
				c.Regs.Diff(&ref)),
		}
		return
	}
	if c.PC != r.pkt.EndState.PC {
		r.detected = &core.DetectedError{
			Kind: core.ErrRegMismatch, Segment: r.pkt.Segment,
			Detail: fmt.Sprintf("pc %d differs from checkpoint pc %d", c.PC, r.pkt.EndState.PC),
		}
		return
	}

	expected := make([]compare.ExpectedPage, len(r.pkt.EndState.Pages))
	for i, ph := range r.pkt.EndState.Pages {
		expected[i] = compare.ExpectedPage{VPN: ph.VPN, Sum: ph.Sum}
	}
	if m := compare.RunAgainstHashes(expected, c.AS, r.pkt.Config.HashSeed); m != nil {
		switch m.Kind {
		case compare.MismatchStructural:
			r.detected = &core.DetectedError{
				Kind: core.ErrStructuralMismatch, Segment: r.pkt.Segment,
				Detail: fmt.Sprintf("page %#x mapped on only one side", m.VPN),
			}
		case compare.MismatchContent:
			r.detected = &core.DetectedError{
				Kind: core.ErrMemMismatch, Segment: r.pkt.Segment,
				Detail: fmt.Sprintf("page %#x content hash differs", m.VPN),
			}
		}
	}
}

// eventKindString names a wire event kind with the same strings core's
// EventKind uses in detection details.
func eventKindString(k uint8) string {
	switch k {
	case packet.EvSyscall:
		return "syscall"
	case packet.EvNondet:
		return "nondet"
	case packet.EvSignalInternal:
		return "signal-internal"
	case packet.EvSignalExternal:
		return "signal-external"
	}
	return fmt.Sprintf("event(%d)", k)
}

// captureRegions snapshots guest memory regions (core's rrlog helper,
// duplicated here to keep the wire types decoupled from core's).
func captureRegions(p *proc.Process, regions []oskernel.Region) []packet.Region {
	out := make([]packet.Region, 0, len(regions))
	for _, reg := range regions {
		buf := make([]byte, reg.Len)
		if f := p.AS.Read(reg.Addr, buf); f != nil {
			buf = nil
		}
		out = append(out, packet.Region{Addr: reg.Addr, Data: buf})
	}
	return out
}

// regionsEqual compares two captures byte-for-byte.
func regionsEqual(a, b []packet.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}
