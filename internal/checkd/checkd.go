package checkd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
)

// Options configures an Executor.
type Options struct {
	// Workers is the number of concurrent replay workers (default 4).
	Workers int
	// QueueDepth bounds the intake queue; a full queue makes Submit block,
	// applying backpressure to the producer (default 2×Workers).
	QueueDepth int
	// Retries is how many times a packet whose chunks are missing is
	// retried before the miss becomes an infrastructure verdict — under a
	// streaming transport the chunks may simply not have arrived yet
	// (default 2).
	Retries int
	// RetryDelay spaces the retries (default 2ms).
	RetryDelay time.Duration
	// WantDigest pins the config digest packets must carry. Zero pins to
	// the first accepted packet's digest instead.
	WantDigest uint64
	// Metrics, when set, receives the daemon's telemetry: queue depth,
	// worker utilization, verdict latency and counters. Executors (and the
	// socket server's per-connection stores) sharing one registry compose
	// into daemon-wide totals.
	Metrics *telemetry.Registry
	// Tracer, when set, receives a remote-verify stage span for every
	// checked packet that carries a trace ID. Nil disables local recording;
	// span capture for the wire (RetainSpans) is independent.
	Tracer *telemetry.TraceRecorder
	// RetainSpans makes the executor keep each packet's remote-verify span
	// until TakeSpan collects it — the socket server sets this to ship
	// spans back to the submitter over 'T' frames. Off by default so
	// in-process users don't accumulate spans they never collect.
	RetainSpans bool
	// RetainLedger makes the executor keep each packet's ledger slice — the
	// simulated replay time and modeled energy this daemon spent on the
	// segment, plus the wall-clock time around the replay — until
	// TakeLedgerSlice collects it. The socket server sets this to ship
	// slices back to the submitter over 'L' frames, where the originating
	// runtime's overhead ledger merges them by trace ID. Like RetainSpans,
	// only packets carrying a trace ID produce a slice.
	RetainLedger bool
	// Flight, when set, is the black-box ring the executor notes abnormal
	// events into (poison packets, infra verdicts).
	Flight *telemetry.FlightRecorder
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 2 * time.Millisecond
	}
}

// Executor checks packets with a bounded worker pool and emits verdicts in
// submission order. It is the in-process transport of the checking service;
// the socket transport (Server) wraps one Executor per connection.
//
// Submit and Close must be called from a single producer goroutine;
// Verdicts is read by any single consumer.
type Executor struct {
	store *pagestore.Store
	opts  Options
	tm    checkdMetrics

	intake  chan job
	results chan verdictTimed
	out     chan Verdict
	wg      sync.WaitGroup
	reorder sync.WaitGroup

	mu     sync.Mutex
	digest uint64
	pinned bool
	seq    int
	closed  bool
	spans   map[int]telemetry.StageSpan // retained remote-verify spans by seq
	ledgers map[int]profile.Slice       // retained ledger slices by seq
}

type job struct {
	seq       int
	pkt       *packet.CheckPacket
	submitted time.Time // for the verdict-latency histogram; zero without metrics
}

// verdictTimed carries a verdict and its job's submission time through the
// reorder stage, so latency is observed at ordered delivery.
type verdictTimed struct {
	v         Verdict
	submitted time.Time
}

// NewExecutor creates an executor reading chunks from store.
func NewExecutor(store *pagestore.Store, opts Options) *Executor {
	opts.fill()
	x := &Executor{
		store:   store,
		opts:    opts,
		tm:      newCheckdMetrics(opts.Metrics),
		intake:  make(chan job, opts.QueueDepth),
		results: make(chan verdictTimed, opts.QueueDepth),
		out:     make(chan Verdict, opts.QueueDepth),
		digest:  opts.WantDigest,
		pinned:  opts.WantDigest != 0,
	}
	x.tm.workers.Add(float64(opts.Workers))
	for i := 0; i < opts.Workers; i++ {
		x.wg.Add(1)
		go x.worker()
	}
	x.reorder.Add(1)
	go x.reorderLoop()
	return x
}

// Verdicts is the ordered verdict stream: one verdict per accepted packet,
// in Submit order, closed after Close has drained the queue.
func (x *Executor) Verdicts() <-chan Verdict { return x.out }

// Submit validates a packet and enqueues it. Validation is synchronous so
// typed rejections (ErrVersion, ErrConfigDigest) surface immediately and a
// rejected packet never consumes a verdict slot. A full queue blocks.
func (x *Executor) Submit(pkt *packet.CheckPacket) error {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return ErrClosed
	}
	if pkt.Version < packet.MinVersion || pkt.Version > packet.Version {
		x.mu.Unlock()
		x.tm.rejections.Inc()
		return fmt.Errorf("%w: packet v%d, daemon speaks v%d..v%d",
			ErrVersion, pkt.Version, packet.MinVersion, packet.Version)
	}
	if d := pkt.Config.Digest(); d != pkt.ConfigDigest {
		x.mu.Unlock()
		x.tm.rejections.Inc()
		return fmt.Errorf("%w: packet carries %#x but its config digests to %#x",
			ErrConfigDigest, pkt.ConfigDigest, d)
	}
	if x.pinned && pkt.ConfigDigest != x.digest {
		x.mu.Unlock()
		x.tm.rejections.Inc()
		return fmt.Errorf("%w: stream pinned to %#x, packet carries %#x",
			ErrConfigDigest, x.digest, pkt.ConfigDigest)
	}
	if !x.pinned {
		x.digest = pkt.ConfigDigest
		x.pinned = true
	}
	j := job{seq: x.seq, pkt: pkt}
	x.seq++
	x.mu.Unlock()

	if x.opts.Metrics != nil {
		j.submitted = time.Now()
	}
	x.tm.submitted.Inc()
	x.tm.queueDepth.Add(1)
	x.intake <- j
	return nil
}

// Close stops intake, waits for in-flight packets to finish, and closes the
// verdict stream once every accepted packet has a verdict.
func (x *Executor) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	x.mu.Unlock()
	close(x.intake)
	x.wg.Wait()
	close(x.results)
	x.reorder.Wait()
}

func (x *Executor) worker() {
	defer x.wg.Done()
	defer x.tm.workers.Add(-1)
	for j := range x.intake {
		x.tm.queueDepth.Add(-1)
		x.tm.busyWorkers.Add(1)
		v := x.check(j)
		x.tm.busyWorkers.Add(-1)
		x.results <- verdictTimed{v: v, submitted: j.submitted}
	}
}

// check runs one packet, retrying chunk misses: with a streaming transport
// the pages may be in flight while the packet is already queued.
func (x *Executor) check(j job) Verdict {
	var start time.Time
	traced := j.pkt.TraceID != 0 && (x.opts.Tracer != nil || x.opts.RetainSpans)
	ledgered := j.pkt.TraceID != 0 && x.opts.RetainLedger
	if traced || ledgered {
		start = time.Now()
	}
	var v Verdict
	var sl profile.Slice
	var err error
	for attempt := 0; ; attempt++ {
		v, sl, err = RunPacketSlice(x.store, j.pkt)
		if err == nil || !errors.Is(err, ErrMissingChunk) || attempt >= x.opts.Retries {
			break
		}
		// One retry == one more RunPacket attempt, regardless of how many
		// chunks that attempt found missing (rebuild fails at the first).
		x.tm.retries.Inc()
		time.Sleep(x.opts.RetryDelay)
	}
	v.Seq = j.seq
	if err != nil {
		if errors.Is(err, ErrMissingChunk) {
			// The budgeted attempts are the bound on a permanently missing
			// chunk: the loop above never spins past opts.Retries, it
			// abandons the packet with this typed error.
			err = fmt.Errorf("abandoned after %d retries: %w", x.opts.Retries, err)
		}
		v.OK = false
		v.Infra = err.Error()
		v.infraErr = err
	}
	if err != nil {
		x.opts.Flight.Note("infra-verdict",
			fmt.Sprintf("%s seg %d: %v", j.pkt.ProgName, j.pkt.Segment, err))
	}
	if traced {
		span := telemetry.StageSpan{
			TraceID:     j.pkt.TraceID,
			Stage:       telemetry.StageRemoteVerify,
			Actor:       "checkd",
			Prog:        j.pkt.ProgName,
			Segment:     j.pkt.Segment,
			StartUnixNs: start.UnixNano(),
			EndUnixNs:   time.Now().UnixNano(),
			Seq:         j.seq,
			Detail:      verdictClass(v),
		}
		x.opts.Tracer.Record(span)
		x.opts.Flight.RecordSpan(span)
		if x.opts.RetainSpans {
			x.mu.Lock()
			if x.spans == nil {
				x.spans = make(map[int]telemetry.StageSpan)
			}
			x.spans[j.seq] = span
			x.mu.Unlock()
		}
	}
	if ledgered && err == nil {
		// The slice's host cost is the whole replay effort including chunk
		// retries; the sim cost came out of the runner's private substrate.
		sl.HostNs = time.Since(start).Nanoseconds()
		x.mu.Lock()
		if x.ledgers == nil {
			x.ledgers = make(map[int]profile.Slice)
		}
		x.ledgers[j.seq] = sl
		x.mu.Unlock()
	}
	return v
}

// verdictClass summarizes a verdict for span detail: "ok", the error kind
// of a divergence, or "infra".
func verdictClass(v Verdict) string {
	switch {
	case v.OK:
		return "ok"
	case v.Infra != "":
		return "infra"
	default:
		return v.ErrorKind
	}
}

// TakeSpan removes and returns the retained remote-verify span for one
// verdict seq. The span exists once the verdict has been delivered (it is
// recorded before the verdict enters the reorder stage) and only when the
// executor runs with RetainSpans and the packet carried a trace ID.
func (x *Executor) TakeSpan(seq int) (telemetry.StageSpan, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	s, ok := x.spans[seq]
	if ok {
		delete(x.spans, seq)
	}
	return s, ok
}

// TakeLedgerSlice removes and returns the retained ledger slice for one
// verdict seq. Like TakeSpan, the slice exists once the verdict has been
// delivered, and only when the executor runs with RetainLedger and the
// packet carried a trace ID.
func (x *Executor) TakeLedgerSlice(seq int) (profile.Slice, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	s, ok := x.ledgers[seq]
	if ok {
		delete(x.ledgers, seq)
	}
	return s, ok
}

// reorderLoop restores submission order: workers finish out of order, the
// consumer sees verdicts in Submit order.
func (x *Executor) reorderLoop() {
	defer x.reorder.Done()
	defer close(x.out)
	pending := make(map[int]verdictTimed)
	next := 0
	for v := range x.results {
		pending[v.v.Seq] = v
		for {
			nv, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			x.tm.observeVerdict(nv.v)
			if !nv.submitted.IsZero() {
				x.tm.verdictLatency.Observe(time.Since(nv.submitted).Seconds())
			}
			x.out <- nv.v
		}
	}
	// Sequence numbers are dense, so the map is empty here; nothing to flush.
}

// CheckAll is the convenience in-process path: run every packet against the
// store and return the verdicts in order. Used by `paftcheckd -verify` and
// the parity tests.
func CheckAll(store *pagestore.Store, pkts []*packet.CheckPacket, opts Options) ([]Verdict, error) {
	x := NewExecutor(store, opts)
	var firstErr error
	done := make(chan []Verdict)
	go func() {
		var out []Verdict
		for v := range x.Verdicts() {
			out = append(out, v)
		}
		done <- out
	}()
	for _, p := range pkts {
		if err := x.Submit(p); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("packet %s seg %d: %w", p.ProgName, p.Segment, err)
		}
	}
	x.Close()
	return <-done, firstErr
}
