package checkd

import "errors"

// Typed intake rejections. Submit returns these synchronously so a client
// learns immediately — before any replay work is queued — that a packet can
// never produce a meaningful verdict here.
var (
	// ErrVersion: the packet's wire version is not the one this daemon
	// speaks. Distinct from packet.ErrVersion (a decode-time failure): this
	// fires on a well-formed packet whose recorded Version field disagrees.
	ErrVersion = errors.New("checkd: unsupported packet version")

	// ErrConfigDigest: the packet's config digest disagrees — either with
	// its own embedded config (tampering or corruption past the codec) or
	// with the digest this executor is pinned to. Verdicts are only
	// comparable across identical verdict-relevant configs, so mixing
	// digests in one stream is rejected rather than silently checked.
	ErrConfigDigest = errors.New("checkd: packet config digest mismatch")

	// ErrMissingChunk: a content-addressed chunk referenced by a packet is
	// not (yet) in the store. Transient under a streaming transport — the
	// executor retries before giving up.
	ErrMissingChunk = errors.New("checkd: referenced chunk missing from store")

	// ErrClosed: Submit after Close.
	ErrClosed = errors.New("checkd: executor closed")
)
