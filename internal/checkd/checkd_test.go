package checkd

import (
	"errors"
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
)

// runExported runs a program under the in-process runtime with packet
// export enabled and returns the run's stats alongside the exported store
// and packets — the raw material for every offload test.
func runExported(t *testing.T, cfg core.Config, prog *asm.Program) (*core.RunStats, *pagestore.Store, []*packet.CheckPacket) {
	t.Helper()
	store := pagestore.New(core.PageHashSeed)
	var pkts []*packet.CheckPacket
	cfg.Export = &packet.Exporter{
		Store: store,
		Sink:  func(p *packet.CheckPacket) error { pkts = append(pkts, p); return nil },
	}
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 7)
	l := oskernel.NewLoader(k, m.PageSize, 7)
	e := sim.New(m, k, l)
	rt := core.NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("protected run: %v", err)
	}
	return stats, store, pkts
}

// victimProgram is a multi-segment compute+memory loop whose checksum
// register and data buffer give fault injections something to corrupt.
func victimProgram(iters int64) *asm.Program {
	b := asm.NewBuilder("victim")
	b.Space("buf", 32*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, iters)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 4095)
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 32760)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

func smallSliceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	return cfg
}

func TestSubmitTypedRejections(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	if len(pkts) == 0 {
		t.Fatal("run exported no packets")
	}

	t.Run("version", func(t *testing.T) {
		x := NewExecutor(store, Options{})
		defer x.Close()
		bad := *pkts[0]
		bad.Version = packet.Version + 1
		if err := x.Submit(&bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("Submit(version %d) = %v, want ErrVersion", bad.Version, err)
		}
	})

	t.Run("self-inconsistent digest", func(t *testing.T) {
		x := NewExecutor(store, Options{})
		defer x.Close()
		bad := *pkts[0]
		bad.ConfigDigest++
		if err := x.Submit(&bad); !errors.Is(err, ErrConfigDigest) {
			t.Fatalf("Submit(bad digest) = %v, want ErrConfigDigest", err)
		}
	})

	t.Run("pinned digest", func(t *testing.T) {
		x := NewExecutor(store, Options{})
		defer x.Close()
		if err := x.Submit(pkts[0]); err != nil {
			t.Fatalf("first Submit: %v", err)
		}
		// A packet from a different (self-consistent) config must be
		// rejected once the stream is pinned.
		other := *pkts[0]
		other.Config.Quantum++
		other.ConfigDigest = other.Config.Digest()
		if err := x.Submit(&other); !errors.Is(err, ErrConfigDigest) {
			t.Fatalf("Submit(other config) = %v, want ErrConfigDigest", err)
		}
	})

	t.Run("explicit pin", func(t *testing.T) {
		x := NewExecutor(store, Options{WantDigest: pkts[0].ConfigDigest + 1})
		defer x.Close()
		if err := x.Submit(pkts[0]); !errors.Is(err, ErrConfigDigest) {
			t.Fatalf("Submit against foreign pin = %v, want ErrConfigDigest", err)
		}
	})

	t.Run("closed", func(t *testing.T) {
		x := NewExecutor(store, Options{})
		x.Close()
		if err := x.Submit(pkts[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("Submit after Close = %v, want ErrClosed", err)
		}
	})
}

func TestMissingChunkBecomesInfraVerdict(t *testing.T) {
	_, _, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	if len(pkts) == 0 {
		t.Fatal("run exported no packets")
	}
	// An empty store: every chunk reference misses, the retries exhaust,
	// and the failure surfaces as an infrastructure verdict — never as a
	// detection.
	empty := pagestore.New(core.PageHashSeed)
	verdicts, err := CheckAll(empty, pkts[:1], Options{Retries: 1, RetryDelay: 1})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	if len(verdicts) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(verdicts))
	}
	v := verdicts[0]
	if v.OK || v.Infra == "" || v.ErrorKind != "" {
		t.Fatalf("verdict = %+v, want infra failure with no detection kind", v)
	}
	if !errors.Is(ErrMissingChunk, ErrMissingChunk) { // keep the sentinel referenced
		t.Fatal("unreachable")
	}
}

func TestVerdictsOrderedUnderConcurrency(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 3 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	verdicts, err := CheckAll(store, pkts, Options{Workers: 4})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	if len(verdicts) != len(pkts) {
		t.Fatalf("got %d verdicts for %d packets", len(verdicts), len(pkts))
	}
	for i, v := range verdicts {
		if v.Seq != i {
			t.Fatalf("verdict %d has seq %d; stream is unordered", i, v.Seq)
		}
		if v.Segment != pkts[i].Segment {
			t.Fatalf("verdict %d is for segment %d, packet is segment %d", i, v.Segment, pkts[i].Segment)
		}
		if !v.OK {
			t.Fatalf("clean run produced failing verdict: %v", v)
		}
	}
}

// TestPermanentlyMissingChunkRetriesBounded drops one page chunk from an
// otherwise-complete store forever and checks the retry contract: the
// counter increments once per re-attempt of the packet — not once per
// missing chunk — the loop stops at the retry budget instead of spinning,
// and the abandoned packet carries a typed ErrMissingChunk the caller can
// errors.Is against.
func TestPermanentlyMissingChunkRetriesBounded(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))
	if len(pkts) == 0 {
		t.Fatal("run exported no packets")
	}
	pkt := pkts[0]
	if len(pkt.Start.Pages) < 2 {
		t.Fatalf("packet has %d start pages, need at least 2", len(pkt.Start.Pages))
	}

	// Evict two of the packet's page chunks permanently: no retry can ever
	// make them appear. Two, so a per-chunk (rather than per-attempt)
	// retry counter would double-count. Releasing until reclaim drops the
	// chunk no matter how many checkpoints shared it; a chunk may back
	// several pages of the start state, so count distinct keys.
	dropped := 0
	seen := map[pagestore.Key]bool{}
	for _, pg := range pkt.Start.Pages {
		if seen[pg.Key] {
			continue
		}
		seen[pg.Key] = true
		for store.Contains(pg.Key) {
			store.Release(pg.Key)
		}
		if dropped++; dropped == 2 {
			break
		}
	}

	const retries = 3
	reg := telemetry.NewRegistry()
	retryCounter := reg.Counter("paft_checkd_chunk_retries_total",
		"packet checks re-attempted because a chunk had not arrived yet")
	verdicts, err := CheckAll(store, pkts[:1], Options{
		Retries: retries, RetryDelay: 1, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	if len(verdicts) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(verdicts))
	}
	v := verdicts[0]
	if v.OK || v.Infra == "" || v.ErrorKind != "" {
		t.Fatalf("verdict = %+v, want infra failure with no detection kind", v)
	}
	if !errors.Is(v.InfraErr(), ErrMissingChunk) {
		t.Fatalf("InfraErr() = %v, want a wrapped ErrMissingChunk", v.InfraErr())
	}
	if got := retryCounter.Value(); got != retries {
		t.Fatalf("retry counter = %d, want exactly %d (once per re-attempt)", got, retries)
	}
}
