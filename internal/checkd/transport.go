package checkd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
)

// Wire protocol: a stream of length-prefixed frames, each a type byte
// followed by a little-endian uint32 payload length and the payload.
//
//	client → server:  'C' chunk (key u64 + bytes)   content-addressed page/code data
//	                  'P' packet                     one encoded CheckPacket
//	                  'M' metrics request            ask for a telemetry snapshot
//	                  'H' heartbeat ping             liveness probe (opaque payload)
//	                  'D' done                       no more frames; drain and report
//	server → client:  'V' verdict                    JSON-encoded Verdict, in submit order
//	                  'T' trace span                 JSON StageSpan for the preceding verdict
//	                  'L' ledger slice               JSON profile.Slice for the preceding verdict
//	                  'M' metrics reply              Prometheus text exposition
//	                  'H' heartbeat pong             the ping's payload, echoed
//	                  'E' error                      intake rejection or protocol error (fatal)
//	                  'D' done                       all verdicts sent
//
// Chunks for a packet must precede it on the stream (the executor's retry
// loop tolerates slight reordering). Each connection gets its own store and
// executor: connections are independent verdict streams. A metrics request
// is answered immediately with the daemon-wide registry (empty payload when
// the server runs without one). Heartbeats are optional — a client that
// never pings sees exactly the pre-heartbeat protocol — and are echoed
// verbatim, so round-trip pairing is the client's concern. A trace frame
// follows a verdict only when that verdict's packet carried a trace ID, so
// pre-tracing clients and servers interoperate unchanged; clients that
// don't care may discard 'T' frames. A ledger frame works the same way: it
// rides directly behind its verdict (after the trace frame, when both are
// present) and carries the remote replay's simulated time, modeled energy
// and host wall time, so the submitting runtime's overhead ledger can merge
// the remote cost back by trace ID; clients that keep no ledger discard 'L'
// frames. The same framing runs unchanged over Unix sockets and TCP;
// internal/checkfarm drives many TCP sessions at once.
const (
	FrameChunk     = 'C'
	FramePacket    = 'P'
	FrameVerdict   = 'V'
	FrameError     = 'E'
	FrameDone      = 'D'
	FrameMetrics   = 'M'
	FrameHeartbeat = 'H'
	FrameTrace     = 'T'
	FrameLedger    = 'L'
)

// MaxFrameLen bounds a single frame so a corrupt length prefix cannot
// exhaust host memory.
const MaxFrameLen = 64 << 20

// ErrProtocol reports a malformed or out-of-protocol frame.
var ErrProtocol = errors.New("checkd: protocol error")

// ErrFrameTooLarge reports a frame whose length prefix exceeds MaxFrameLen.
// It wraps ErrProtocol, so errors.Is matches either sentinel; the typed
// variant lets transports distinguish a hostile/corrupt length field from
// other framing damage without string matching.
var ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds size limit", ErrProtocol)

// WriteFrame writes one protocol frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one protocol frame, rejecting oversized length prefixes
// with ErrFrameTooLarge before allocating anything.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: frame %q length %d exceeds %d-byte limit",
			ErrFrameTooLarge, hdr[0], n, MaxFrameLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server serves the checking service over a listener (normally a Unix
// socket). Each connection is an independent session: its own pagestore,
// its own executor, its own verdict ordering.
type Server struct {
	opts Options
	tm   checkdMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer creates a server; opts configures the per-connection executors.
// With opts.Metrics set, every connection's executor and pagestore report
// into the shared registry, and 'M' frames (or the HTTP endpoint fed by the
// same registry) expose daemon-wide totals.
func NewServer(opts Options) *Server {
	return &Server{opts: opts, tm: newCheckdMetrics(opts.Metrics), conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes (see Shutdown). It
// returns nil on graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// Shutdown ran before Serve stored the listener; it could not
		// close it, so close it here instead of accepting forever.
		ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight connections
// finish their verdict streams, then return.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// serveConn runs one session: intake frames drive a fresh executor, a
// writer goroutine streams its verdicts back.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	store := pagestore.New(0)
	store.SetMetrics(s.opts.Metrics)
	xopts := s.opts
	xopts.RetainSpans = true  // ship remote-verify spans back over 'T' frames
	xopts.RetainLedger = true // ship replay cost slices back over 'L' frames
	x := NewExecutor(store, xopts)

	var wmu sync.Mutex // 'V'/'T'/'E'/'M'/'D' frames interleave from two goroutines
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		s.tm.framesWritten.Inc()
		s.tm.bytesWritten.Add(uint64(5 + len(payload)))
		s.opts.Flight.RecordFrame("send", typ, len(payload))
		return WriteFrame(conn, typ, payload)
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for v := range x.Verdicts() {
			b, err := json.Marshal(v)
			if err != nil {
				return
			}
			if send(FrameVerdict, b) != nil {
				return
			}
			// The trace frame rides directly behind its verdict, under the
			// same writer, so a client never sees a span for a verdict it
			// does not yet have.
			if span, ok := x.TakeSpan(v.Seq); ok {
				sb, err := json.Marshal(span)
				if err != nil {
					return
				}
				if send(FrameTrace, sb) != nil {
					return
				}
			}
			// The ledger slice rides behind the same verdict, after the span.
			if sl, ok := x.TakeLedgerSlice(v.Seq); ok {
				lb, err := json.Marshal(sl)
				if err != nil {
					return
				}
				if send(FrameLedger, lb) != nil {
					return
				}
			}
		}
	}()

	fail := func(msg string) {
		send(FrameError, []byte(msg))
		x.Close()
		<-writerDone
	}

	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			// A vanished client: drop the session, nothing to report to.
			x.Close()
			<-writerDone
			return
		}
		s.tm.framesRead.Inc()
		s.tm.bytesRead.Add(uint64(5 + len(payload)))
		s.opts.Flight.RecordFrame("recv", typ, len(payload))
		switch typ {
		case FrameChunk:
			if len(payload) < 8 {
				fail("chunk frame shorter than its key")
				return
			}
			key := pagestore.Key(binary.LittleEndian.Uint64(payload))
			store.Insert(key, payload[8:])
		case FramePacket:
			pkt, err := packet.Decode(payload)
			if err != nil {
				fail(fmt.Sprintf("bad packet: %v", err))
				return
			}
			if err := x.Submit(pkt); err != nil {
				fail(err.Error())
				return
			}
		case FrameMetrics:
			var buf bytes.Buffer
			if s.opts.Metrics != nil {
				if err := s.opts.Metrics.WritePrometheus(&buf); err != nil {
					fail(fmt.Sprintf("metrics snapshot: %v", err))
					return
				}
			}
			if send(FrameMetrics, buf.Bytes()) != nil {
				x.Close()
				<-writerDone
				return
			}
		case FrameHeartbeat:
			// Echo the ping verbatim: liveness is proven by any reply, and
			// an opaque payload lets the client correlate pings however it
			// likes (checkfarm sends a monotone sequence number).
			if send(FrameHeartbeat, payload) != nil {
				x.Close()
				<-writerDone
				return
			}
		case FrameDone:
			x.Close()
			<-writerDone
			send(FrameDone, nil)
			return
		default:
			fail(fmt.Sprintf("unexpected frame type %q", typ))
			return
		}
	}
}

// RemoteError is an 'E' frame from the server: the session was rejected.
// It is a verdict-level failure — the node is alive and answered, the
// session's content was refused — as opposed to ConnError, which reports the
// transport itself failing.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "checkd: remote: " + e.Msg }

// ConnError is a connection-level transport failure against one node: a
// write that never arrived or a verdict stream that broke mid-session. It is
// the retryable class — the packets in flight were (as far as the client
// knows) never judged, so a dispatcher may safely re-send them elsewhere.
// Addr names the node ("" when the conn carries no address) and Packet is
// the index of the packet being sent or awaited when the failure hit (-1
// when the failure predates packet traffic).
type ConnError struct {
	Addr   string
	Op     string // "send chunk", "send packet", "read verdict", ...
	Packet int
	Err    error
}

func (e *ConnError) Error() string {
	where := e.Addr
	if where == "" {
		where = "conn"
	}
	if e.Packet >= 0 {
		return fmt.Sprintf("checkd: %s: %s (packet %d): %v", where, e.Op, e.Packet, e.Err)
	}
	return fmt.Sprintf("checkd: %s: %s: %v", where, e.Op, e.Err)
}

func (e *ConnError) Unwrap() error { return e.Err }

// connAddr extracts a printable remote address when the transport has one.
func connAddr(conn io.ReadWriter) string {
	if c, ok := conn.(interface{ RemoteAddr() net.Addr }); ok {
		if a := c.RemoteAddr(); a != nil {
			return a.String()
		}
	}
	return ""
}

// FetchMetrics asks the server for a telemetry snapshot over a dedicated
// connection and returns the Prometheus text exposition. Use a fresh
// connection: on a session with packets in flight, verdict frames may
// arrive ahead of the metrics reply.
func FetchMetrics(conn io.ReadWriter) ([]byte, error) {
	if err := WriteFrame(conn, FrameMetrics, nil); err != nil {
		return nil, err
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	switch typ {
	case FrameMetrics:
		return payload, nil
	case FrameError:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("%w: unexpected frame type %q in metrics reply", ErrProtocol, typ)
	}
}

// CheckOver runs a full client session on conn: stream every chunk of the
// store, then every packet, then collect the ordered verdicts. It is the
// socket analogue of CheckAll (Unix or TCP — the framing is identical).
//
// Failures come back in two distinguishable classes: a *ConnError wraps any
// transport-level failure with the node's address and the packet index in
// flight (the dispatcher's cue to evict the node and re-send elsewhere),
// while a *RemoteError carries the server's own rejection of the session
// content (re-sending the same packets elsewhere would be rejected again).
func CheckOver(conn io.ReadWriter, store *pagestore.Store, pkts []*packet.CheckPacket) ([]Verdict, error) {
	addr := connAddr(conn)
	var sendErr error
	store.Each(func(k pagestore.Key, data []byte) {
		if sendErr != nil {
			return
		}
		payload := make([]byte, 8+len(data))
		binary.LittleEndian.PutUint64(payload, uint64(k))
		copy(payload[8:], data)
		if err := WriteFrame(conn, FrameChunk, payload); err != nil {
			sendErr = &ConnError{Addr: addr, Op: "send chunk", Packet: -1, Err: err}
		}
	})
	if sendErr != nil {
		return nil, sendErr
	}
	for i, p := range pkts {
		if err := WriteFrame(conn, FramePacket, packet.Encode(p)); err != nil {
			return nil, &ConnError{Addr: addr, Op: "send packet", Packet: i, Err: err}
		}
	}
	if err := WriteFrame(conn, FrameDone, nil); err != nil {
		return nil, &ConnError{Addr: addr, Op: "send done", Packet: -1, Err: err}
	}

	var verdicts []Verdict
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			// The verdict being awaited is the first one not yet received.
			return verdicts, &ConnError{Addr: addr, Op: "read verdict", Packet: len(verdicts), Err: err}
		}
		switch typ {
		case FrameVerdict:
			var v Verdict
			if err := json.Unmarshal(payload, &v); err != nil {
				return verdicts, fmt.Errorf("%w: bad verdict frame: %v", ErrProtocol, err)
			}
			verdicts = append(verdicts, v)
		case FrameHeartbeat:
			// A pong from an earlier ping on a shared conn; not ours to pair.
		case FrameTrace:
			// Remote-verify span for the previous verdict; this plain client
			// has no tracer to merge it into.
		case FrameLedger:
			// Replay cost slice for the previous verdict; this plain client
			// keeps no overhead ledger to merge it into.
		case FrameError:
			return verdicts, &RemoteError{Msg: string(payload)}
		case FrameDone:
			return verdicts, nil
		default:
			return verdicts, fmt.Errorf("%w: unexpected frame type %q", ErrProtocol, typ)
		}
	}
}
