package checkd

import (
	"net"
	"sync"
	"testing"

	"parallaft/internal/telemetry"
)

// TestConcurrentSubmittersGracefulDrain is the transport's race-mode
// lifecycle test: several client sessions stream packets concurrently
// while the server is asked to drain. Shutdown must stop *accepting*
// without cutting in-flight sessions, so every submitted packet gets
// exactly one verdict, in submission order, and once everything is
// drained the queue-depth and utilization gauges read zero.
//
// Run under -race this also exercises the executor's atomic/mutex
// interplay (Submit vs workers vs reorder) across many executors sharing
// one telemetry registry.
func TestConcurrentSubmittersGracefulDrain(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 2 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	want, err := CheckAll(store, pkts, Options{})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	reg := telemetry.NewRegistry()
	sock := t.TempDir() + "/checkd.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Workers: 2, Metrics: reg})
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	const sessions = 8
	var wg, ready sync.WaitGroup
	errs := make([]error, sessions)
	verdicts := make([][]Verdict, sessions)
	start := make(chan struct{})
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("unix", sock)
			if err == nil {
				defer conn.Close()
				// A metrics round-trip proves the server accepted this
				// connection: a dialed-but-unaccepted conn would be
				// legitimately dropped by the drain.
				_, err = FetchMetrics(conn)
			}
			ready.Done()
			if err != nil {
				errs[i] = err
				return
			}
			<-start // maximise overlap between sessions and the drain
			verdicts[i], errs[i] = CheckOver(conn, store, pkts)
		}(i)
	}

	// Every session holds an accepted connection; draining now must let
	// all of them finish.
	ready.Wait()
	close(start)
	srv.Shutdown()
	wg.Wait()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if len(verdicts[i]) != len(pkts) {
			t.Fatalf("session %d: %d verdicts for %d packets (lost or duplicated)",
				i, len(verdicts[i]), len(pkts))
		}
		for seq, v := range verdicts[i] {
			if v.Seq != seq {
				t.Fatalf("session %d: verdict %d carries seq %d (ordering broken)", i, seq, v.Seq)
			}
			if v.OK != want[seq].OK || v.Infra != want[seq].Infra {
				t.Fatalf("session %d verdict %d = %+v, want %+v", i, seq, v, want[seq])
			}
		}
	}

	// Drained: nothing queued, nobody busy, all workers gone.
	snap := reg.Snapshot()
	value := func(name string) float64 {
		for _, m := range snap {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %q not registered", name)
		return 0
	}
	for _, g := range []string{"paft_checkd_queue_depth", "paft_checkd_busy_workers", "paft_checkd_workers"} {
		if v := value(g); v != 0 {
			t.Errorf("%s = %v after drain, want 0", g, v)
		}
	}
	if got := value("paft_checkd_packets_submitted_total"); got != float64(sessions*len(pkts)) {
		t.Errorf("submitted = %v, want %d", got, sessions*len(pkts))
	}
	wantOK := 0
	for _, v := range want {
		if v.OK && v.Infra == "" {
			wantOK++
		}
	}
	if got := value("paft_checkd_verdicts_ok_total"); got != float64(sessions*wantOK) {
		t.Errorf("verdicts ok = %v, want %d", got, sessions*wantOK)
	}
	latencyCount := uint64(0)
	for _, m := range snap {
		if m.Name == "paft_checkd_verdict_latency_seconds" {
			latencyCount = m.Count
		}
	}
	if latencyCount != uint64(sessions*len(pkts)) {
		t.Errorf("latency observations = %d, want %d", latencyCount, sessions*len(pkts))
	}

	// The per-connection pagestores report into the same registry; the
	// intake counters must have moved.
	if got := value("paft_pagestore_puts_total"); got == 0 {
		t.Error("pagestore puts counter never moved")
	}
}
