package packet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parallaft/internal/pagestore"
)

// Exporter is the seam between a recording runtime and a packet consumer:
// the runtime interns pages and code into Store while building each
// packet, then hands the finished packet to Sink. Sink errors propagate out
// of the run, so a broken export is a hard failure, not silent data loss.
type Exporter struct {
	Store *pagestore.Store
	Sink  func(*CheckPacket) error
}

// StoreName is the pagestore file inside an export directory.
const StoreName = "pages.store"

// DirExporter writes one .pkt file per sealed segment plus a shared
// pagestore, the on-disk layout `paftcheckd -verify` consumes:
//
//	dir/seg-00000.pkt
//	dir/seg-00001.pkt
//	...
//	dir/pages.store
//
// The pagestore is written once on Close, after every segment has interned
// its pages, so cross-segment dedup is reflected on disk.
type DirExporter struct {
	dir   string
	store *pagestore.Store
	wrote int
}

// NewDirExporter creates (or reuses) dir and an empty pagestore hashed
// under seed.
func NewDirExporter(dir string, seed uint64) (*DirExporter, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("packet: create export dir: %w", err)
	}
	return &DirExporter{dir: dir, store: pagestore.New(seed)}, nil
}

// Exporter returns the runtime-facing seam backed by this directory.
func (d *DirExporter) Exporter() *Exporter {
	return &Exporter{Store: d.store, Sink: d.write}
}

// Count returns the number of packets written so far.
func (d *DirExporter) Count() int { return d.wrote }

// Store returns the shared pagestore.
func (d *DirExporter) Store() *pagestore.Store { return d.store }

func (d *DirExporter) write(p *CheckPacket) error {
	name := filepath.Join(d.dir, fmt.Sprintf("seg-%05d.pkt", p.Segment))
	if err := os.WriteFile(name, Encode(p), 0o666); err != nil {
		return fmt.Errorf("packet: write %s: %w", name, err)
	}
	d.wrote++
	return nil
}

// Close flushes the shared pagestore to disk.
func (d *DirExporter) Close() error {
	f, err := os.Create(filepath.Join(d.dir, StoreName))
	if err != nil {
		return fmt.Errorf("packet: write pagestore: %w", err)
	}
	if _, err := d.store.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("packet: write pagestore: %w", err)
	}
	return f.Close()
}

// ReadDir loads an export directory: the shared pagestore and every packet,
// sorted by file name (which orders them by segment index).
func ReadDir(dir string) (*pagestore.Store, []*CheckPacket, error) {
	f, err := os.Open(filepath.Join(dir, StoreName))
	if err != nil {
		return nil, nil, fmt.Errorf("packet: open pagestore: %w", err)
	}
	store, err := pagestore.ReadFrom(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".pkt") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)

	pkts := make([]*CheckPacket, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		p, err := Decode(b)
		if err != nil {
			return nil, nil, fmt.Errorf("packet: decode %s: %w", name, err)
		}
		pkts = append(pkts, p)
	}
	return store, pkts, nil
}
