// Package packet defines the portable check-packet wire format.
//
// A CheckPacket is everything a checker needs to re-verify one sealed
// segment away from the recording runtime: the configuration (digested, so
// a daemon refuses packets from a differently-configured run), the
// segment's start state (registers, VMAs, per-page content keys into a
// pagestore, signal handlers, brk), the record/replay event log, and the
// expected end state (registers plus per-page content hashes). Checkers are
// pure functions of exactly these inputs (§4.2–4.4), which is what makes
// the packet a complete, schedulable unit of verification.
//
// The encoding is versioned, little-endian, and deterministic: encoding the
// same packet twice yields identical bytes, and Decode(Encode(p)) followed
// by Encode reproduces the input byte for byte. Decode never panics on
// arbitrary input; malformed packets yield typed errors (ErrMagic,
// ErrVersion, ErrTruncated, ErrCorrupt).
package packet

import (
	"errors"
	"fmt"
	"math"

	"parallaft/internal/hashx"
	"parallaft/internal/isa"
	"parallaft/internal/pagestore"
	"parallaft/internal/proc"
)

// Version is the current wire-format version. Bump it on any layout change;
// the golden wire-format test makes such a change an explicit review item.
//
// Version history:
//
//	1 — initial format (PR 3)
//	2 — adds the TraceID causal-tracing header field after ConfigDigest
const Version = 2

// MinVersion is the oldest wire-format version Decode still accepts.
// Version-gated fields absent from an old packet decode to their zero
// values (a v1 packet has TraceID 0: "predates tracing").
const MinVersion = 1

// magic identifies a check packet.
var magic = [6]byte{'P', 'A', 'F', 'T', 'P', 'K'}

// Typed decode errors.
var (
	ErrMagic     = errors.New("packet: bad magic")
	ErrVersion   = errors.New("packet: unsupported format version")
	ErrTruncated = errors.New("packet: truncated input")
	ErrCorrupt   = errors.New("packet: corrupt field")
)

// Decode size limits: a corrupt count or length must not translate into an
// unbounded allocation.
const (
	maxStringLen = 1 << 12
	maxDataLen   = 1 << 24
	maxCount     = 1 << 22
)

// Config is the subset of core.Config a verdict depends on. Everything else
// in the runtime configuration (scheduling, DVFS, cost knobs) affects
// timing and energy, never the verdict, so it stays out of the digest.
type Config struct {
	PageSize          uint64
	Quantum           uint64
	SkidBuffer        uint64
	TimeoutScale      float64
	CompareStates     bool
	SoftDirtyTracking bool
	CompareFullMemory bool
	HashSeed          uint64 // page-hash seed; must match on both sides
}

// digestSeed seeds the config digest hash.
const digestSeed = 0x70616674636667 // "paftcfg"

// Digest returns a stable 64-bit digest of the verdict-relevant config.
func (c Config) Digest() uint64 {
	var e enc
	e.u64(c.PageSize)
	e.u64(c.Quantum)
	e.u64(c.SkidBuffer)
	e.f64(c.TimeoutScale)
	e.bool(c.CompareStates)
	e.bool(c.SoftDirtyTracking)
	e.bool(c.CompareFullMemory)
	e.u64(c.HashSeed)
	return hashx.Sum64(digestSeed, e.buf)
}

// ExecPoint mirrors core.ExecPoint: a precise point in a segment's
// execution (segment-relative retired branches + PC).
type ExecPoint struct {
	Branches uint64
	PC       uint64
}

// RegFile is the architectural register file in wire form. Floats are
// carried as bit patterns so NaNs survive the trip bit-exactly.
type RegFile struct {
	X [isa.NumGPR]uint64
	F [isa.NumFPR]uint64 // math.Float64bits of proc.Regs.F
	V [isa.NumVR][isa.VLanes]uint64
}

// RegsToWire converts a live register file to wire form.
func RegsToWire(r *proc.Regs) RegFile {
	var w RegFile
	w.X = r.X
	for i, f := range r.F {
		w.F[i] = math.Float64bits(f)
	}
	w.V = r.V
	return w
}

// Regs converts the wire form back to a live register file.
func (w *RegFile) Regs() proc.Regs {
	var r proc.Regs
	r.X = w.X
	for i, bits := range w.F {
		r.F[i] = math.Float64frombits(bits)
	}
	r.V = w.V
	return r
}

// VMA is one mapped region of the start state.
type VMA struct {
	Base   uint64
	Length uint64
	Prot   uint8
	Name   string
}

// PageRef is one mapped page of the start state: its content lives in the
// accompanying pagestore under Key.
type PageRef struct {
	VPN  uint64
	Key  pagestore.Key
	Prot uint8
}

// Handler is one installed signal handler.
type Handler struct {
	Sig uint8
	PC  uint64
}

// StartState is the segment-start checkpoint in portable form.
type StartState struct {
	Regs     RegFile
	PC       uint64
	BrkBase  uint64
	Brk      uint64
	VMAs     []VMA     // sorted by Base
	Pages    []PageRef // sorted by VPN
	Handlers []Handler // sorted by Sig
}

// Region is captured guest memory attached to a syscall event.
type Region struct {
	Addr uint64
	Data []byte
}

// SyscallEvent mirrors core.SyscallRecord.
type SyscallEvent struct {
	Nr            uint16
	Args          [5]uint64
	Class         uint8
	In            []Region
	Ret           int64
	Out           []Region
	MmapFixedAddr uint64
}

// NondetEvent mirrors core.NondetRecord.
type NondetEvent struct {
	PC    uint64
	Value uint64
}

// SignalEvent mirrors core.SignalRecord.
type SignalEvent struct {
	Sig   uint8
	PC    uint64
	Point ExecPoint
	Fatal bool
}

// Event kinds; values match core.EventKind.
const (
	EvSyscall        = 0
	EvNondet         = 1
	EvSignalInternal = 2
	EvSignalExternal = 3
)

// Event is one record/replay log entry in wire form. Exactly one payload
// pointer is non-nil, selected by Kind.
type Event struct {
	Kind    uint8
	Syscall *SyscallEvent
	Nondet  *NondetEvent
	Signal  *SignalEvent
}

// PageHash is one expected end-state page: the XXH64 content hash under the
// config's HashSeed.
type PageHash struct {
	VPN uint64
	Sum uint64
}

// EndState is the expected segment-end state: registers compared bit-exact,
// memory compared by per-page content hash.
type EndState struct {
	Regs  RegFile
	PC    uint64
	Pages []PageHash // sorted by VPN; every page mapped at segment end
}

// CheckPacket is one sealed segment as a portable unit of verification.
type CheckPacket struct {
	Version      uint16
	ConfigDigest uint64

	// TraceID is the segment's causal-trace ID (telemetry.NewTraceID),
	// propagated so remote checkers tag their verify spans with the same
	// chain the recording side started. Zero means the packet predates
	// tracing. Version-gated: only on the wire at Version >= 2, so a
	// Version-1 packet with a nonzero TraceID does not round-trip.
	TraceID uint64

	Config Config

	Benchmark string
	ProgName  string
	Segment   int

	// Recorded end point and checker budget. InstrLimit is absolute (the
	// checker's Instrs count at which the timeout fires), carrying the
	// recording side's seal-time budget so timeout verdicts transfer.
	// MainInstrs is the main's instruction count over the segment, carried
	// so timeout reports quote the same budget arithmetic as in-process.
	End        ExecPoint
	EndIsExit  bool
	InstrLimit uint64
	MainInstrs uint64

	// Identity and PMU parameters the replay depends on: the recorded
	// checker's PID (the kill(2) self-check compares against it), the PMU
	// noise seed derived from that PID, and the counter-skid bound.
	CheckerPID int
	PMUSeed    int64
	MaxSkid    int

	// Program text, stored once in the pagestore (deduped across every
	// segment of a run).
	CodeKey pagestore.Key
	CodeLen int // instructions

	Start    StartState
	Events   []Event
	EndState EndState
}

// ChunkKeys appends the distinct pagestore keys this packet references —
// the program text plus every start-state page — to dst and returns the
// extended slice. The order is deterministic (code first, then pages by
// ascending VPN) and duplicates are collapsed, so a transport routing
// chunks to a checker node can treat the result as exactly the set that
// must be resident there before the packet is checked.
func (p *CheckPacket) ChunkKeys(dst []pagestore.Key) []pagestore.Key {
	seen := make(map[pagestore.Key]struct{}, 1+len(p.Start.Pages))
	add := func(k pagestore.Key) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		dst = append(dst, k)
	}
	add(p.CodeKey)
	for _, pg := range p.Start.Pages {
		add(pg.Key)
	}
	return dst
}

// --- code serialization -----------------------------------------------------

// codeInstrBytes is the fixed encoding size of one instruction.
const codeInstrBytes = 12

// EncodeCode serializes program text: 12 bytes per instruction.
func EncodeCode(code []isa.Instr) []byte {
	var e enc
	e.buf = make([]byte, 0, len(code)*codeInstrBytes)
	for _, ins := range code {
		e.u8(uint8(ins.Op))
		e.u8(ins.Rd)
		e.u8(ins.Ra)
		e.u8(ins.Rb)
		e.i64(ins.Imm)
	}
	return e.buf
}

// DecodeCode deserializes program text encoded by EncodeCode.
func DecodeCode(b []byte, n int) ([]isa.Instr, error) {
	if n < 0 || n > maxCount || len(b) != n*codeInstrBytes {
		return nil, fmt.Errorf("%w: code length %d does not match %d instructions", ErrCorrupt, len(b), n)
	}
	d := dec{b: b}
	code := make([]isa.Instr, n)
	for i := range code {
		code[i].Op = isa.Op(d.u8())
		code[i].Rd = d.u8()
		code[i].Ra = d.u8()
		code[i].Rb = d.u8()
		code[i].Imm = d.i64()
	}
	return code, d.err
}

// --- encoding ---------------------------------------------------------------

// Encode serializes the packet. The output is deterministic: one packet has
// exactly one encoding. Encode writes p.Version verbatim (not the package
// constant), so version-mismatch handling is testable end to end.
func Encode(p *CheckPacket) []byte {
	var e enc
	e.buf = make([]byte, 0, 1024)
	e.raw(magic[:])
	e.u16(p.Version)
	e.u64(p.ConfigDigest)
	if p.Version >= 2 {
		e.u64(p.TraceID)
	}

	e.u64(p.Config.PageSize)
	e.u64(p.Config.Quantum)
	e.u64(p.Config.SkidBuffer)
	e.f64(p.Config.TimeoutScale)
	e.bool(p.Config.CompareStates)
	e.bool(p.Config.SoftDirtyTracking)
	e.bool(p.Config.CompareFullMemory)
	e.u64(p.Config.HashSeed)

	e.str(p.Benchmark)
	e.str(p.ProgName)
	e.i64(int64(p.Segment))

	e.u64(p.End.Branches)
	e.u64(p.End.PC)
	e.bool(p.EndIsExit)
	e.u64(p.InstrLimit)
	e.u64(p.MainInstrs)
	e.i64(int64(p.CheckerPID))
	e.i64(p.PMUSeed)
	e.i64(int64(p.MaxSkid))

	e.u64(uint64(p.CodeKey))
	e.i64(int64(p.CodeLen))

	e.regs(&p.Start.Regs)
	e.u64(p.Start.PC)
	e.u64(p.Start.BrkBase)
	e.u64(p.Start.Brk)
	e.u32(uint32(len(p.Start.VMAs)))
	for _, v := range p.Start.VMAs {
		e.u64(v.Base)
		e.u64(v.Length)
		e.u8(v.Prot)
		e.str(v.Name)
	}
	e.u32(uint32(len(p.Start.Pages)))
	for _, pg := range p.Start.Pages {
		e.u64(pg.VPN)
		e.u64(uint64(pg.Key))
		e.u8(pg.Prot)
	}
	e.u32(uint32(len(p.Start.Handlers)))
	for _, h := range p.Start.Handlers {
		e.u8(h.Sig)
		e.u64(h.PC)
	}

	e.u32(uint32(len(p.Events)))
	for i := range p.Events {
		ev := &p.Events[i]
		e.u8(ev.Kind)
		switch ev.Kind {
		case EvSyscall:
			s := ev.Syscall
			e.u16(s.Nr)
			for _, a := range s.Args {
				e.u64(a)
			}
			e.u8(s.Class)
			e.regions(s.In)
			e.i64(s.Ret)
			e.regions(s.Out)
			e.u64(s.MmapFixedAddr)
		case EvNondet:
			e.u64(ev.Nondet.PC)
			e.u64(ev.Nondet.Value)
		case EvSignalInternal, EvSignalExternal:
			s := ev.Signal
			e.u8(s.Sig)
			e.u64(s.PC)
			e.u64(s.Point.Branches)
			e.u64(s.Point.PC)
			e.bool(s.Fatal)
		}
	}

	e.regs(&p.EndState.Regs)
	e.u64(p.EndState.PC)
	e.u32(uint32(len(p.EndState.Pages)))
	for _, pg := range p.EndState.Pages {
		e.u64(pg.VPN)
		e.u64(pg.Sum)
	}
	return e.buf
}

// Decode deserializes a packet. It never panics: malformed input yields a
// typed error. Trailing bytes, out-of-range counts, non-canonical booleans
// and unknown event kinds are all rejected, so every valid byte string has
// exactly one packet (and vice versa).
func Decode(b []byte) (*CheckPacket, error) {
	d := dec{b: b}
	var m [6]byte
	copy(m[:], d.raw(6))
	if d.err != nil {
		return nil, d.err
	}
	if m != magic {
		return nil, ErrMagic
	}
	p := &CheckPacket{}
	p.Version = d.u16()
	if d.err != nil {
		return nil, d.err
	}
	if p.Version < MinVersion || p.Version > Version {
		return nil, fmt.Errorf("%w: got %d, support %d..%d", ErrVersion, p.Version, MinVersion, Version)
	}
	p.ConfigDigest = d.u64()
	if p.Version >= 2 {
		p.TraceID = d.u64()
	}

	p.Config.PageSize = d.u64()
	p.Config.Quantum = d.u64()
	p.Config.SkidBuffer = d.u64()
	p.Config.TimeoutScale = d.f64()
	p.Config.CompareStates = d.bool()
	p.Config.SoftDirtyTracking = d.bool()
	p.Config.CompareFullMemory = d.bool()
	p.Config.HashSeed = d.u64()

	p.Benchmark = d.str()
	p.ProgName = d.str()
	p.Segment = int(d.i64())

	p.End.Branches = d.u64()
	p.End.PC = d.u64()
	p.EndIsExit = d.bool()
	p.InstrLimit = d.u64()
	p.MainInstrs = d.u64()
	p.CheckerPID = int(d.i64())
	p.PMUSeed = d.i64()
	p.MaxSkid = int(d.i64())

	p.CodeKey = pagestore.Key(d.u64())
	p.CodeLen = int(d.i64())

	d.regs(&p.Start.Regs)
	p.Start.PC = d.u64()
	p.Start.BrkBase = d.u64()
	p.Start.Brk = d.u64()
	if n := d.count(17); n > 0 {
		p.Start.VMAs = make([]VMA, n)
		for i := range p.Start.VMAs {
			p.Start.VMAs[i].Base = d.u64()
			p.Start.VMAs[i].Length = d.u64()
			p.Start.VMAs[i].Prot = d.u8()
			p.Start.VMAs[i].Name = d.str()
		}
	}
	if n := d.count(17); n > 0 {
		p.Start.Pages = make([]PageRef, n)
		for i := range p.Start.Pages {
			p.Start.Pages[i].VPN = d.u64()
			p.Start.Pages[i].Key = pagestore.Key(d.u64())
			p.Start.Pages[i].Prot = d.u8()
		}
	}
	if n := d.count(9); n > 0 {
		p.Start.Handlers = make([]Handler, n)
		for i := range p.Start.Handlers {
			p.Start.Handlers[i].Sig = d.u8()
			p.Start.Handlers[i].PC = d.u64()
		}
	}

	if n := d.count(1); n > 0 {
		p.Events = make([]Event, n)
		for i := range p.Events {
			ev := &p.Events[i]
			ev.Kind = d.u8()
			if d.err != nil {
				return nil, d.err
			}
			switch ev.Kind {
			case EvSyscall:
				s := &SyscallEvent{}
				s.Nr = d.u16()
				for j := range s.Args {
					s.Args[j] = d.u64()
				}
				s.Class = d.u8()
				s.In = d.regions()
				s.Ret = d.i64()
				s.Out = d.regions()
				s.MmapFixedAddr = d.u64()
				ev.Syscall = s
			case EvNondet:
				ev.Nondet = &NondetEvent{PC: d.u64(), Value: d.u64()}
			case EvSignalInternal, EvSignalExternal:
				s := &SignalEvent{}
				s.Sig = d.u8()
				s.PC = d.u64()
				s.Point.Branches = d.u64()
				s.Point.PC = d.u64()
				s.Fatal = d.bool()
				ev.Signal = s
			default:
				return nil, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, ev.Kind)
			}
		}
	}

	d.regs(&p.EndState.Regs)
	p.EndState.PC = d.u64()
	if n := d.count(16); n > 0 {
		p.EndState.Pages = make([]PageHash, n)
		for i := range p.EndState.Pages {
			p.EndState.Pages[i].VPN = d.u64()
			p.EndState.Pages[i].Sum = d.u64()
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return p, nil
}

// --- primitive writer -------------------------------------------------------

type enc struct {
	buf []byte
}

func (e *enc) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = append(e.buf, byte(v), byte(v>>8)) }
func (e *enc) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) regs(r *RegFile) {
	for _, x := range r.X {
		e.u64(x)
	}
	for _, f := range r.F {
		e.u64(f)
	}
	for _, v := range r.V {
		for _, lane := range v {
			e.u64(lane)
		}
	}
}
func (e *enc) regions(rs []Region) {
	e.u32(uint32(len(rs)))
	for _, r := range rs {
		e.u64(r.Addr)
		e.u32(uint32(len(r.Data)))
		e.raw(r.Data)
	}
}

// --- primitive reader -------------------------------------------------------

// dec is a bounds-checked cursor; after the first error every read returns
// zero and the error sticks.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() uint8 {
	b := d.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.raw(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (d *dec) u32() uint32 {
	b := d.raw(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *dec) u64() uint64 {
	b := d.raw(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: non-canonical boolean", ErrCorrupt))
		return false
	}
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: string length %d", ErrCorrupt, n))
		return ""
	}
	return string(d.raw(int(n)))
}

// count reads a collection count, rejecting values that could not possibly
// fit in the remaining input given a minimum element size.
func (d *dec) count(minElem int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if n > maxCount || int(n)*minElem > len(d.b)-d.off {
		d.fail(fmt.Errorf("%w: count %d exceeds input", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

func (d *dec) regs(r *RegFile) {
	for i := range r.X {
		r.X[i] = d.u64()
	}
	for i := range r.F {
		r.F[i] = d.u64()
	}
	for i := range r.V {
		for j := range r.V[i] {
			r.V[i][j] = d.u64()
		}
	}
}

func (d *dec) regions() []Region {
	n := d.count(12)
	if n == 0 {
		return nil
	}
	out := make([]Region, n)
	for i := range out {
		out[i].Addr = d.u64()
		ln := d.u32()
		if d.err != nil {
			return out
		}
		if ln > maxDataLen {
			d.fail(fmt.Errorf("%w: region length %d", ErrCorrupt, ln))
			return out
		}
		if b := d.raw(int(ln)); b != nil && ln > 0 {
			out[i].Data = append([]byte(nil), b...)
		}
	}
	return out
}
