package packet

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parallaft/internal/isa"
	"parallaft/internal/pagestore"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixturePacketV1 is fixturePacket downgraded to wire version 1: no
// TraceID (the field is version-gated off the wire). Its encoding is
// pinned by the v1 golden, which must never move — old packets stay
// decodable forever.
func fixturePacketV1() *CheckPacket {
	p := fixturePacket()
	p.Version = 1
	p.TraceID = 0
	return p
}

// fixturePacket exercises every field and event kind of the format once,
// with fixed values, so the golden encoding pins the whole layout.
func fixturePacket() *CheckPacket {
	p := &CheckPacket{
		Version: Version,
		TraceID: 0x9e3779b97f4a7c15,
		Config: Config{
			PageSize:          16384,
			Quantum:           8192,
			SkidBuffer:        32,
			TimeoutScale:      1.1,
			CompareStates:     true,
			SoftDirtyTracking: false,
			CompareFullMemory: false,
			HashSeed:          0x9a7a11af7,
		},
		Benchmark:  "matmul",
		ProgName:   "matmul-0",
		Segment:    7,
		End:        ExecPoint{Branches: 123456, PC: 789},
		EndIsExit:  false,
		InstrLimit: 2_000_000,
		MainInstrs: 1_800_000,
		CheckerPID: 104,
		PMUSeed:    42_000_126 + 104,
		MaxSkid:    24,
		CodeKey:    pagestore.Key(0x1122334455667788),
		CodeLen:    512,
	}
	p.ConfigDigest = p.Config.Digest()

	p.Start.Regs.X[0] = 0xdead
	p.Start.Regs.X[14] = 0x7ffff000
	p.Start.Regs.F[2] = 0x400921fb54442d18 // bits of pi
	p.Start.Regs.V[1] = [isa.VLanes]uint64{1, 2, 3, 4}
	p.Start.PC = 100
	p.Start.BrkBase = 0x200000
	p.Start.Brk = 0x208000
	p.Start.VMAs = []VMA{
		{Base: 0x100000, Length: 0x4000, Prot: 3, Name: "data"},
		{Base: 0x200000, Length: 0x8000, Prot: 3, Name: "heap"},
		{Base: 0x7fff8000, Length: 0x8000, Prot: 3, Name: "stack"},
	}
	p.Start.Pages = []PageRef{
		{VPN: 0x40, Key: pagestore.Key(0xaaaa), Prot: 3},
		{VPN: 0x41, Key: pagestore.Key(0xbbbb), Prot: 1},
	}
	p.Start.Handlers = []Handler{{Sig: 5, PC: 200}}

	p.Events = []Event{
		{Kind: EvSyscall, Syscall: &SyscallEvent{
			Nr:   7,
			Args: [5]uint64{0x100000, 16, 0, 0, 0},
			In:   []Region{{Addr: 0x100000, Data: []byte("sixteen bytes!!!")}},
			Ret:  16,
		}},
		{Kind: EvNondet, Nondet: &NondetEvent{PC: 321, Value: 0x5eed}},
		{Kind: EvSignalInternal, Signal: &SignalEvent{Sig: 1, PC: 400, Fatal: false}},
		{Kind: EvSignalExternal, Signal: &SignalEvent{
			Sig: 4, PC: 410, Point: ExecPoint{Branches: 5000, PC: 410}, Fatal: true,
		}},
		{Kind: EvSyscall, Syscall: &SyscallEvent{
			Nr:            11,
			Args:          [5]uint64{0, 0x8000, 3, 2, 0},
			Class:         1,
			Ret:           0x300000,
			MmapFixedAddr: 0x300000,
		}},
	}

	p.EndState.Regs.X[0] = 0xbeef
	p.EndState.PC = 789
	p.EndState.Pages = []PageHash{
		{VPN: 0x40, Sum: 0x1111111111111111},
		{VPN: 0x200, Sum: 0x2222222222222222},
	}
	return p
}

// TestChunkKeys pins the routing contract: code key first, page keys in VPN
// order, duplicates collapsed — the exact set a farm node must hold before
// the packet is checkable there.
func TestChunkKeys(t *testing.T) {
	p := fixturePacket()
	got := p.ChunkKeys(nil)
	want := []pagestore.Key{0x1122334455667788, 0xaaaa, 0xbbbb}
	if len(got) != len(want) {
		t.Fatalf("ChunkKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChunkKeys = %v, want %v", got, want)
		}
	}

	// Shared content (two pages with one key, a page sharing the code key)
	// appears once: the upload set is distinct keys, not references.
	p.Start.Pages = append(p.Start.Pages,
		PageRef{VPN: 0x42, Key: 0xaaaa, Prot: 3},
		PageRef{VPN: 0x43, Key: p.CodeKey, Prot: 1})
	got = p.ChunkKeys(got[:0])
	if len(got) != len(want) {
		t.Fatalf("ChunkKeys with shared content = %v, want %v", got, want)
	}
}

// TestGoldenWireFormat pins the encoded bytes of the fixture packet at
// every supported wire version, making any format drift an explicit,
// reviewed change (regenerate with -update and bump Version if the layout
// changed). The v1 golden predates the TraceID field and must never move:
// it is the proof that old packets stay decodable.
func TestGoldenWireFormat(t *testing.T) {
	cases := []struct {
		golden string
		pkt    *CheckPacket
	}{
		{"checkpacket_v1.golden", fixturePacketV1()},
		{"checkpacket_v2.golden", fixturePacket()},
	}
	for _, tc := range cases {
		got := Encode(tc.pkt)
		path := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.MkdirAll("testdata", 0o777); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o666); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: wire format drifted: encoded %d bytes, golden %d bytes; "+
				"if intentional, bump packet.Version and regenerate with -update",
			tc.golden, len(got), len(want))
		}
	}
}

// TestDecodeOldVersion proves backward compatibility end to end: v1 bytes
// (no TraceID on the wire) decode with TraceID zero and everything else
// intact, and re-encode to exactly the input — canonical at their own
// version, not silently upgraded.
func TestDecodeOldVersion(t *testing.T) {
	v1 := fixturePacketV1()
	b := Encode(v1)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Errorf("decoded Version = %d, want 1", got.Version)
	}
	if got.TraceID != 0 {
		t.Errorf("v1 packet decoded with TraceID %#x, want 0", got.TraceID)
	}
	if !reflect.DeepEqual(got, v1) {
		t.Errorf("v1 round trip changed the packet:\n got %+v\nwant %+v", got, v1)
	}
	if b2 := Encode(got); !bytes.Equal(b2, b) {
		t.Error("re-encoding a decoded v1 packet changed the bytes")
	}

	// The same packet at v2 differs only by the 8 TraceID bytes.
	v2 := fixturePacket()
	b2 := Encode(v2)
	if len(b2) != len(b)+8 {
		t.Errorf("v2 encoding is %d bytes, want v1 %d + 8", len(b2), len(b))
	}
}

func TestRoundTripPreservesEverything(t *testing.T) {
	p := fixturePacket()
	b := Encode(p)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("decoded packet differs from original:\n got %+v\nwant %+v", got, p)
	}
	if b2 := Encode(got); !bytes.Equal(b2, b) {
		t.Fatal("re-encoding the decoded packet changed the bytes")
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	valid := Encode(fixturePacket())

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	badVersion := append([]byte(nil), valid...)
	badVersion[6] = 99
	trailing := append(append([]byte(nil), valid...), 0xff)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated header", valid[:4], ErrTruncated},
		// A cut inside the fixed-width fields right after the header is a
		// short read; a cut inside a counted array trips the count-vs-input
		// guard first and reports corruption.
		{"truncated body", valid[:12], ErrTruncated},
		{"truncated mid-array", valid[:len(valid)/2], ErrCorrupt},
		{"bad magic", badMagic, ErrMagic},
		{"bad version", badVersion, ErrVersion},
		{"trailing bytes", trailing, ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestConfigDigest(t *testing.T) {
	a := fixturePacket().Config
	b := a
	if a.Digest() != b.Digest() {
		t.Fatal("identical configs digest differently")
	}
	b.HashSeed++
	if a.Digest() == b.Digest() {
		t.Fatal("HashSeed change did not move the digest")
	}
	c := a
	c.SkidBuffer = 33
	if a.Digest() == c.Digest() {
		t.Fatal("SkidBuffer change did not move the digest")
	}
}

func TestCodeRoundTrip(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 42},
		{Op: isa.OpAdd, Rd: 2, Ra: 1, Rb: 1},
		{Op: isa.OpBne, Ra: 1, Rb: 2, Imm: 0},
		{Op: isa.OpFMovI, Rd: 3, Imm: 0x3ff0000000000000},
		{Op: isa.OpHalt},
	}
	b := EncodeCode(code)
	got, err := DecodeCode(b, len(code))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, code) {
		t.Fatalf("code round trip changed instructions:\n got %v\nwant %v", got, code)
	}
	if _, err := DecodeCode(b, len(code)+1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong instruction count: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeCode(b[:len(b)-1], len(code)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated code: err = %v, want ErrCorrupt", err)
	}
}

func TestDirExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	de, err := NewDirExporter(dir, 0x9a7a11af7)
	if err != nil {
		t.Fatal(err)
	}
	exp := de.Exporter()
	page := make([]byte, 64)
	for i := range page {
		page[i] = byte(i)
	}
	key := exp.Store.Put(page)

	p := fixturePacket()
	p.Start.Pages = []PageRef{{VPN: 0x40, Key: key, Prot: 3}}
	if err := exp.Sink(p); err != nil {
		t.Fatal(err)
	}
	p2 := fixturePacket()
	p2.Segment = 8
	p2.Start.Pages = []PageRef{{VPN: 0x40, Key: key, Prot: 3}}
	if err := exp.Sink(p2); err != nil {
		t.Fatal(err)
	}
	if err := de.Close(); err != nil {
		t.Fatal(err)
	}

	store, pkts, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("read %d packets, want 2", len(pkts))
	}
	if pkts[0].Segment != 7 || pkts[1].Segment != 8 {
		t.Fatalf("packet order: segments %d,%d", pkts[0].Segment, pkts[1].Segment)
	}
	if got := store.Get(key); !bytes.Equal(got, page) {
		t.Fatal("page content did not survive the export round trip")
	}
}

// FuzzPacketRoundTrip checks the two format invariants on arbitrary bytes:
// Decode never panics, and the encoding is canonical — any input Decode
// accepts re-encodes to exactly itself (and stays stable thereafter).
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add(Encode(fixturePacket()))
	f.Add(Encode(fixturePacketV1()))
	small := fixturePacket()
	small.Events = nil
	small.Start.VMAs = nil
	small.Start.Pages = nil
	small.Start.Handlers = nil
	small.EndState.Pages = nil
	f.Add(Encode(small))
	f.Add([]byte{})
	f.Add([]byte("PAFTPK"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		out := Encode(p)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted input is not canonical: re-encoded %d bytes differ from input %d bytes", len(out), len(data))
		}
		p2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if out2 := Encode(p2); !bytes.Equal(out2, out) {
			t.Fatal("Encode->Decode->Encode is not byte-identical")
		}
	})
}
