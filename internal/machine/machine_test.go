package machine

import (
	"math"
	"testing"

	"parallaft/internal/cache"
	"parallaft/internal/isa"
)

func TestPresetsAssemble(t *testing.T) {
	for _, cfg := range []Config{AppleM2Like(), IntelLike()} {
		m := New(cfg)
		if len(m.BigCores()) == 0 || len(m.LittleCores()) == 0 {
			t.Errorf("%s: missing a core kind", cfg.Name)
		}
		if m.PageSize == 0 || m.PageSize&(m.PageSize-1) != 0 {
			t.Errorf("%s: bad page size %d", cfg.Name, m.PageSize)
		}
		for _, c := range m.Cores {
			if len(c.Ladder) == 0 {
				t.Errorf("%s: core %d has no frequency ladder", cfg.Name, c.ID)
			}
			for i := 1; i < len(c.Ladder); i++ {
				if c.Ladder[i].GHz <= c.Ladder[i-1].GHz {
					t.Errorf("%s: core %d ladder not ascending", cfg.Name, c.ID)
				}
				if c.Ladder[i].ActiveMW <= c.Ladder[i-1].ActiveMW {
					t.Errorf("%s: core %d power not increasing with frequency", cfg.Name, c.ID)
				}
			}
			if c.FreqGHz() != c.MaxGHz() {
				t.Errorf("%s: cores should start at max frequency", cfg.Name)
			}
		}
	}
}

func TestAppleM2Shape(t *testing.T) {
	m := New(AppleM2Like())
	if len(m.BigCores()) != 4 || len(m.LittleCores()) != 4 {
		t.Errorf("want 4+4 cores, got %d+%d", len(m.BigCores()), len(m.LittleCores()))
	}
	if m.PageSize != 16*1024 {
		t.Errorf("Apple page size = %d, want 16384", m.PageSize)
	}
	if m.SliceByInstructions {
		t.Error("Apple preset should slice by cycles")
	}
	// separate clusters
	if m.BigCores()[0].Cluster == m.LittleCores()[0].Cluster {
		t.Error("big and little cores share a cluster")
	}
}

func TestIntelShape(t *testing.T) {
	m := New(IntelLike())
	if m.PageSize != 4*1024 {
		t.Errorf("Intel page size = %d, want 4096", m.PageSize)
	}
	if !m.SliceByInstructions {
		t.Error("Intel preset must slice by instructions (§5.8 footnote 14)")
	}
}

func TestDVFSClamping(t *testing.T) {
	m := New(AppleM2Like())
	c := m.LittleCores()[0]
	c.SetFreqIndex(-5)
	if c.FreqIndex() != 0 {
		t.Errorf("negative index not clamped: %d", c.FreqIndex())
	}
	c.SetFreqIndex(99)
	if c.FreqIndex() != len(c.Ladder)-1 {
		t.Errorf("overflow index not clamped: %d", c.FreqIndex())
	}
	c.SetFreqIndex(0)
	c.SetMaxFreq()
	if c.FreqGHz() != c.MaxGHz() {
		t.Error("SetMaxFreq failed")
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := New(AppleM2Like())
	m.ResetEnergy()
	c := m.BigCores()[0]
	c.AccountActive(1e6) // 1 ms at max frequency
	wantJ := 1e6 * 1e-9 * c.Ladder[len(c.Ladder)-1].ActiveMW * 1e-3
	if got := c.ActiveEnergyJ(); math.Abs(got-wantJ) > 1e-12 {
		t.Errorf("ActiveEnergyJ = %v, want %v", got, wantJ)
	}
	if got := c.ActiveNs(); got != 1e6 {
		t.Errorf("ActiveNs = %v", got)
	}

	// energy at a lower DVFS point is cheaper for the same duration
	c2 := m.BigCores()[1]
	c2.SetFreqIndex(0)
	c2.AccountActive(1e6)
	if c2.ActiveEnergyJ() >= c.ActiveEnergyJ() {
		t.Error("low-frequency execution should use less power")
	}
}

func TestEnergyBreakdownMatchesTotal(t *testing.T) {
	m := New(AppleM2Like())
	m.BigCores()[0].AccountActive(5e5)
	m.LittleCores()[2].AccountActive(2e5)
	for i := 0; i < 100; i++ {
		m.CountDRAMAccess()
	}
	wall := 1e6
	total := m.EnergyJ(wall)
	bd := m.EnergyBreakdownJ(wall)
	if math.Abs(total-bd.Total()) > 1e-12 {
		t.Errorf("EnergyJ %v != breakdown total %v", total, bd.Total())
	}
	if bd.BigActiveJ == 0 || bd.LittleActiveJ == 0 || bd.StaticJ == 0 || bd.DRAMDynJ == 0 {
		t.Errorf("breakdown has zero components: %+v", bd)
	}
	if m.DRAMAccesses() != 100 {
		t.Errorf("DRAM accesses = %d", m.DRAMAccesses())
	}
	m.ResetEnergy()
	if m.EnergyJ(0) != 0 || m.DRAMAccesses() != 0 {
		t.Error("ResetEnergy incomplete")
	}
}

func TestLittleCoresAreMoreEfficient(t *testing.T) {
	// The premise of the whole paper: at max frequency, a little core does
	// work slower but at far lower power, so energy per unit of work wins.
	m := New(AppleM2Like())
	cost := &m.Cost
	big := m.BigCores()[0]
	little := m.LittleCores()[0]

	bigNs := cost.InstrTimeNs(Big, big.MaxGHz(), isa.CostSimple, cache.L1Hit, false, false, 1)
	littleNs := cost.InstrTimeNs(Little, little.MaxGHz(), isa.CostSimple, cache.L1Hit, false, false, 1)
	slowdown := littleNs / bigNs
	if slowdown < 1.5 || slowdown > 3.5 {
		t.Errorf("compute slowdown = %.2fx, want ~2x", slowdown)
	}

	bigP := big.Ladder[len(big.Ladder)-1].ActiveMW
	littleP := little.Ladder[len(little.Ladder)-1].ActiveMW
	energyRatio := (littleNs * littleP) / (bigNs * bigP)
	if energyRatio >= 0.6 {
		t.Errorf("little-core energy per instruction ratio = %.2f, want well below 1", energyRatio)
	}
}

func TestDRAMCostAsymmetry(t *testing.T) {
	m := New(AppleM2Like())
	cost := &m.Cost
	bigNs := cost.InstrTimeNs(Big, 3.5, isa.CostMem, cache.DRAM, true, false, 1)
	littleNs := cost.InstrTimeNs(Little, 2.4, isa.CostMem, cache.DRAM, true, false, 1)
	if littleNs/bigNs < 3 {
		t.Errorf("DRAM-bound little/big ratio %.2f, want >= 3 (MLP asymmetry)", littleNs/bigNs)
	}
	// stores to DRAM cost extra on little cores
	littleStore := cost.InstrTimeNs(Little, 2.4, isa.CostMem, cache.DRAM, true, true, 1)
	if littleStore <= littleNs {
		t.Error("store-drain penalty missing on little cores")
	}
	bigStore := cost.InstrTimeNs(Big, 3.5, isa.CostMem, cache.DRAM, true, true, 1)
	if bigStore != bigNs {
		t.Error("big cores should not pay a store penalty")
	}
	// contention scales the DRAM part
	contended := cost.InstrTimeNs(Big, 3.5, isa.CostMem, cache.DRAM, true, false, 2)
	if contended <= bigNs {
		t.Error("contention factor has no effect")
	}
	// cache hits don't pay contention
	hit := cost.InstrTimeNs(Big, 3.5, isa.CostMem, cache.L1Hit, true, false, 5)
	hitBase := cost.InstrTimeNs(Big, 3.5, isa.CostMem, cache.L1Hit, true, false, 1)
	if hit != hitBase {
		t.Error("contention leaked into cache hits")
	}
}

func TestFrequencyScalesTime(t *testing.T) {
	m := New(AppleM2Like())
	cost := &m.Cost
	fast := cost.InstrTimeNs(Little, 2.4, isa.CostSimple, cache.L1Hit, false, false, 1)
	slow := cost.InstrTimeNs(Little, 1.2, isa.CostSimple, cache.L1Hit, false, false, 1)
	if math.Abs(slow-2*fast) > 1e-12 {
		t.Errorf("halving frequency should double compute time: %v vs %v", slow, fast)
	}
}

func TestCoreKindString(t *testing.T) {
	if Big.String() != "big" || Little.String() != "little" {
		t.Error("CoreKind names wrong")
	}
}

func TestMachineString(t *testing.T) {
	m := New(AppleM2Like())
	if m.String() == "" {
		t.Error("empty machine description")
	}
}
