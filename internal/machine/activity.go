package machine

// Activity classifies what a slice of simulated active time was spent on.
// Every AccountActive charge happens under exactly one activity class: the
// runtime sets the core's current class around each operation, and an
// attached ActiveSink observes the very same float64 charges, in the very
// same order, that the core's own energy book accumulates. That shared
// observation stream is what lets the overhead ledger reconcile bit-exactly
// against the books (see internal/telemetry/profile).
//
// The classes mirror the paper's overhead taxonomy: guest execution (main
// and checker replicas), slicing barriers, checkpoint forks and COW page
// copies, dirty-page enumeration, event recording and replay steering,
// end-of-segment hashing for compare and vote, and recovery work. Remote
// farm stages (dispatch, upload, remote verify) spend host wall time, not
// simulated time, and are tracked by the ledger separately.
type Activity uint8

// Activity classes. ActUnattributed is the zero value: a charge observed
// under it means some code path accounts simulated time without declaring
// what the time was for, which the reconciliation test treats as drift.
const (
	ActUnattributed Activity = iota
	ActGuestMain             // main replica retiring guest instructions (user + syscall kernel time)
	ActGuestChecker          // checker replica re-executing guest instructions
	ActCOW                   // copy-on-write page duplication triggered by guest stores
	ActFork                  // checkpoint fork: page-table copy and checker task setup
	ActBarrier               // slicing boundary stops and containment barriers on main
	ActDirtyPages            // dirty-page enumeration and soft-dirty bit clearing
	ActRecord                // main-side event recording: tracer stops, byte capture
	ActReplay                // checker-side replay steering: counter setup, breakpoint stops
	ActCompare               // end-of-segment state hashing for pairwise comparison
	ActVote                  // end-of-segment state hashing for NMR majority voting
	ActRecovery              // rollback, arbitration referee work, forward repair
	NumActivities
)

// String names the class the way the ledger table prints it.
func (a Activity) String() string {
	switch a {
	case ActUnattributed:
		return "unattributed"
	case ActGuestMain:
		return "guest-main"
	case ActGuestChecker:
		return "guest-checker"
	case ActCOW:
		return "cow-copy"
	case ActFork:
		return "fork"
	case ActBarrier:
		return "barrier"
	case ActDirtyPages:
		return "dirty-pages"
	case ActRecord:
		return "record"
	case ActReplay:
		return "replay-steer"
	case ActCompare:
		return "compare-hash"
	case ActVote:
		return "vote-hash"
	case ActRecovery:
		return "recovery"
	}
	return "activity(?)"
}

// ActiveSink observes every AccountActive charge on a core it is attached
// to: the exact ns value the book absorbed, the core it landed on, the
// ladder point it was charged at, and the activity class in effect.
// Observation-only: a sink must not mutate the core.
type ActiveSink interface {
	OnActive(c *Core, act Activity, freqIdx int, ns float64)
}

// SetActivity declares the class for subsequent AccountActive charges on
// this core and returns the previous class so narrow scopes can restore it.
// The register is pure observation: it never feeds the cost model.
func (c *Core) SetActivity(a Activity) Activity {
	prev := c.act
	c.act = a
	return prev
}

// Activity returns the core's current activity class.
func (c *Core) Activity() Activity { return c.act }

// SetActiveSink attaches (or, with nil, detaches) the charge observer.
func (c *Core) SetActiveSink(s ActiveSink) { c.sink = s }

// ActiveNsAt returns the active time accumulated at one ladder point — the
// book value the ledger's per-core mirror must match bit for bit.
func (c *Core) ActiveNsAt(freqIdx int) float64 { return c.activeNs[freqIdx] }

// SetActiveSink attaches the observer to every core of the machine.
func (m *Machine) SetActiveSink(s ActiveSink) {
	for _, c := range m.Cores {
		c.SetActiveSink(s)
	}
}
