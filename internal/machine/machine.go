// Package machine models the simulated heterogeneous processor: big and
// little cores grouped into clusters, per-core DVFS frequency ladders with a
// power figure at each operating point, an instruction cost model, and
// energy integration.
//
// Two presets mirror the paper's two platforms:
//
//   - AppleM2Like: 4 big + 4 little cores, separate L2 per cluster,
//     separate voltage domains (little cores are several times more
//     efficient per unit of work), 16 KiB pages.
//   - IntelLike: 8 P-cores + 12 E-cores, E-cores share the package voltage
//     domain so their efficiency advantage is small, a large uncore/static
//     power term, 4 KiB pages (§5.8).
//
// All capacities and latencies are scaled down from the silicon by the
// simulation scale factor documented in DESIGN.md so that runs complete in
// test time while preserving every ratio the paper's evaluation depends on.
package machine

import (
	"fmt"

	"parallaft/internal/cache"
	"parallaft/internal/isa"
)

// CoreKind distinguishes big (performance) from little (efficiency) cores.
type CoreKind uint8

// Core kinds.
const (
	Big CoreKind = iota
	Little
	numKinds
)

// String returns "big" or "little".
func (k CoreKind) String() string {
	if k == Big {
		return "big"
	}
	return "little"
}

// FreqPoint is one DVFS operating point.
type FreqPoint struct {
	GHz      float64
	ActiveMW float64 // power while executing at this point
}

// Core is one simulated CPU core.
type Core struct {
	ID      int
	Kind    CoreKind
	Cluster int
	Ladder  []FreqPoint // sorted ascending by GHz
	IdleMW  float64

	freqIdx  int
	activeNs []float64 // active time accumulated at each ladder point

	// Observation-only attribution state (see activity.go): the current
	// activity class and the optional charge observer. Neither feeds the
	// cost or energy model.
	act  Activity
	sink ActiveSink
}

// FreqGHz returns the current operating frequency.
func (c *Core) FreqGHz() float64 { return c.Ladder[c.freqIdx].GHz }

// MaxGHz returns the top of the frequency ladder.
func (c *Core) MaxGHz() float64 { return c.Ladder[len(c.Ladder)-1].GHz }

// FreqIndex returns the current ladder index.
func (c *Core) FreqIndex() int { return c.freqIdx }

// SetFreqIndex selects a DVFS point; out-of-range values are clamped.
func (c *Core) SetFreqIndex(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(c.Ladder) {
		i = len(c.Ladder) - 1
	}
	c.freqIdx = i
}

// SetMaxFreq moves the core to its highest operating point.
func (c *Core) SetMaxFreq() { c.freqIdx = len(c.Ladder) - 1 }

// AccountActive records ns of execution at the current operating point. An
// attached sink observes the identical charge — same float, same order — so
// the attribution ledger can mirror the book bit for bit.
func (c *Core) AccountActive(ns float64) {
	c.activeNs[c.freqIdx] += ns
	if c.sink != nil {
		c.sink.OnActive(c, c.act, c.freqIdx, ns)
	}
}

// ActiveNs returns the total active nanoseconds across all points.
func (c *Core) ActiveNs() float64 {
	var t float64
	for _, ns := range c.activeNs {
		t += ns
	}
	return t
}

// ActiveEnergyJ returns the dynamic energy consumed by the core so far.
func (c *Core) ActiveEnergyJ() float64 {
	var j float64
	for i, ns := range c.activeNs {
		j += ns * 1e-9 * c.Ladder[i].ActiveMW * 1e-3
	}
	return j
}

// ResetEnergy zeroes the core's activity accounting.
func (c *Core) ResetEnergy() {
	for i := range c.activeNs {
		c.activeNs[i] = 0
	}
}

// CostModel maps instruction cost classes and cache levels to time.
type CostModel struct {
	// ClassCycles is the base cycle cost of each cost class per core kind;
	// cycles are converted to time at the core's current frequency, so DVFS
	// slows execution and big cores' wider pipelines show as fewer cycles.
	ClassCycles [numKinds][isa.NumCostClasses]float64
	// LevelExtraCycles is the additional cycle cost when a memory access is
	// satisfied at the given level (L1 hit is folded into CostMem's base).
	LevelExtraCycles [numKinds][cache.NumLevels]float64
	// DRAMExtraNs is the frequency-independent part of a DRAM access, paid
	// on top of LevelExtraCycles[kind][DRAM] and multiplied by the current
	// memory-contention factor.
	DRAMExtraNs float64
	// DRAMKindFactor models memory-level parallelism: little cores sustain
	// fewer outstanding misses, so DRAM-bound code pays proportionally more
	// per access. This is what makes memory-intensive workloads slow down
	// 4x+ on little cores while compute fits in ~2x (§4.5).
	DRAMKindFactor [numKinds]float64
	// StoreDRAMFactor additionally penalises stores that miss to DRAM:
	// little cores have small store buffers and stall on write drains,
	// which is why the write-heavy lbm is the paper's worst case (§5.3).
	StoreDRAMFactor [numKinds]float64
}

// InstrTimeNs returns the wall time of one instruction of the given class on
// a core of the given kind at freqGHz, with the memory access (if any)
// satisfied at lvl, under the given DRAM contention factor (1.0 = no
// contention).
func (m *CostModel) InstrTimeNs(kind CoreKind, freqGHz float64, class isa.CostClass, lvl cache.Level, hasMem, isStore bool, contention float64) float64 {
	cycles := m.ClassCycles[kind][class]
	ns := cycles / freqGHz
	if hasMem {
		ns += m.LevelExtraCycles[kind][lvl] / freqGHz
		if lvl == cache.DRAM {
			f := m.DRAMKindFactor[kind]
			if isStore {
				f *= m.StoreDRAMFactor[kind]
			}
			ns += m.DRAMExtraNs * f * contention
		}
	}
	return ns
}

// PowerModel holds the non-core power terms.
type PowerModel struct {
	SocStaticMW  float64 // always-on SoC power (fabric, uncore)
	DRAMStaticMW float64 // DRAM background power
	DRAMPJAccess float64 // energy per DRAM line transfer, picojoules
}

// Config assembles a machine.
type Config struct {
	Name     string
	Cores    []Core // templates; IDs are assigned by New
	Cost     CostModel
	Power    PowerModel
	CacheCfg cache.Config
	PageSize uint64
	// SliceByInstructions selects instruction-based rather than cycle-based
	// slicing, as the paper does on Intel (§5.8, footnote 14).
	SliceByInstructions bool
	// SeparateVoltageDomains records whether little cores can scale voltage
	// independently (true on Apple, false on Intel) — documentation only;
	// the effect is baked into the ladders' power numbers.
	SeparateVoltageDomains bool
}

// Machine is the assembled simulated processor.
type Machine struct {
	Name   string
	Cores  []*Core
	Caches *cache.Hierarchy
	Cost   CostModel
	Power  PowerModel

	PageSize            uint64
	SliceByInstructions bool

	dramAccesses uint64
}

// New assembles a machine from a configuration.
func New(cfg Config) *Machine {
	m := &Machine{
		Name:                cfg.Name,
		Cost:                cfg.Cost,
		Power:               cfg.Power,
		PageSize:            cfg.PageSize,
		SliceByInstructions: cfg.SliceByInstructions,
	}
	isBig := make([]bool, len(cfg.Cores))
	cluster := make([]int, len(cfg.Cores))
	for i := range cfg.Cores {
		c := cfg.Cores[i] // copy
		c.ID = i
		c.activeNs = make([]float64, len(c.Ladder))
		c.freqIdx = len(c.Ladder) - 1
		m.Cores = append(m.Cores, &c)
		isBig[i] = c.Kind == Big
		cluster[i] = c.Cluster
	}
	m.Caches = cache.New(cfg.CacheCfg, isBig, cluster)
	return m
}

// CoresOf returns the cores of the given kind, in ID order.
func (m *Machine) CoresOf(kind CoreKind) []*Core {
	var out []*Core
	for _, c := range m.Cores {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// BigCores returns the performance cores.
func (m *Machine) BigCores() []*Core { return m.CoresOf(Big) }

// LittleCores returns the efficiency cores.
func (m *Machine) LittleCores() []*Core { return m.CoresOf(Little) }

// CountDRAMAccess accumulates DRAM traffic for energy accounting.
func (m *Machine) CountDRAMAccess() { m.dramAccesses++ }

// DRAMAccesses returns the DRAM transfer count so far.
func (m *Machine) DRAMAccesses() uint64 { return m.dramAccesses }

// ResetEnergy zeroes all energy accounting (core activity and DRAM counts).
func (m *Machine) ResetEnergy() {
	for _, c := range m.Cores {
		c.ResetEnergy()
	}
	m.dramAccesses = 0
}

// EnergyJ integrates total energy over a run of wallNs nanoseconds: dynamic
// core energy at each operating point, idle core power, SoC and DRAM static
// power, and per-access DRAM energy. This mirrors the paper's SMC / RAPL
// measurements of SoC+DRAM energy (§5.1, §5.8).
func (m *Machine) EnergyJ(wallNs float64) float64 {
	var j float64
	for _, c := range m.Cores {
		j += c.ActiveEnergyJ()
		idleNs := wallNs - c.ActiveNs()
		if idleNs > 0 {
			j += idleNs * 1e-9 * c.IdleMW * 1e-3
		}
	}
	j += wallNs * 1e-9 * (m.Power.SocStaticMW + m.Power.DRAMStaticMW) * 1e-3
	j += float64(m.dramAccesses) * m.Power.DRAMPJAccess * 1e-12
	return j
}

// EnergyBreakdown decomposes EnergyJ for diagnostics and the energy
// experiments' reporting.
type EnergyBreakdown struct {
	BigActiveJ    float64
	LittleActiveJ float64
	IdleJ         float64
	StaticJ       float64
	DRAMDynJ      float64
}

// Total sums the components.
func (b EnergyBreakdown) Total() float64 {
	return b.BigActiveJ + b.LittleActiveJ + b.IdleJ + b.StaticJ + b.DRAMDynJ
}

// EnergyBreakdownJ returns the decomposed energy for a run of wallNs.
func (m *Machine) EnergyBreakdownJ(wallNs float64) EnergyBreakdown {
	var b EnergyBreakdown
	for _, c := range m.Cores {
		if c.Kind == Big {
			b.BigActiveJ += c.ActiveEnergyJ()
		} else {
			b.LittleActiveJ += c.ActiveEnergyJ()
		}
		idleNs := wallNs - c.ActiveNs()
		if idleNs > 0 {
			b.IdleJ += idleNs * 1e-9 * c.IdleMW * 1e-3
		}
	}
	b.StaticJ = wallNs * 1e-9 * (m.Power.SocStaticMW + m.Power.DRAMStaticMW) * 1e-3
	b.DRAMDynJ = float64(m.dramAccesses) * m.Power.DRAMPJAccess * 1e-12
	return b
}

// String identifies the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d big + %d little cores, %d B pages)",
		m.Name, len(m.BigCores()), len(m.LittleCores()), m.PageSize)
}

func defaultCost() CostModel {
	cm := CostModel{DRAMExtraNs: 36}
	cm.ClassCycles[Big] = [isa.NumCostClasses]float64{
		isa.CostSimple: 2, isa.CostMul: 6, isa.CostDiv: 24,
		isa.CostFP: 6, isa.CostFDiv: 30, isa.CostVec: 4,
		isa.CostMem: 4, isa.CostMemVec: 6, isa.CostSys: 60,
	}
	cm.ClassCycles[Little] = [isa.NumCostClasses]float64{
		isa.CostSimple: 3, isa.CostMul: 9, isa.CostDiv: 36,
		isa.CostFP: 9, isa.CostFDiv: 48, isa.CostVec: 8,
		isa.CostMem: 6, isa.CostMemVec: 12, isa.CostSys: 80,
	}
	cm.LevelExtraCycles[Big] = [cache.NumLevels]float64{cache.L1Hit: 0, cache.L2Hit: 14, cache.DRAM: 30}
	cm.LevelExtraCycles[Little] = [cache.NumLevels]float64{cache.L1Hit: 0, cache.L2Hit: 12, cache.DRAM: 24}
	// Big out-of-order cores overlap misses (effective latency well below
	// a serialised access); little cores sustain very few outstanding
	// misses. The ratio yields the paper's 4-8x little-core slowdown on
	// memory-bound code versus ~2x on compute (§4.5).
	cm.DRAMKindFactor = [numKinds]float64{Big: 0.5, Little: 3.8}
	cm.StoreDRAMFactor = [numKinds]float64{Big: 1.0, Little: 2.2}
	return cm
}

// AppleM2Like returns the scaled Apple-M2-style configuration used for the
// main evaluation: 4 big cores at up to 3.5 GHz, 4 little cores at up to
// 2.4 GHz on a separate voltage domain, per-cluster shared L2, 16 KiB pages.
func AppleM2Like() Config {
	bigLadder := []FreqPoint{
		{GHz: 1.0, ActiveMW: 600},
		{GHz: 1.5, ActiveMW: 1100},
		{GHz: 2.0, ActiveMW: 1750},
		{GHz: 2.8, ActiveMW: 2900},
		{GHz: 3.5, ActiveMW: 4400},
	}
	// Separate voltage domain: the little ladder reaches very low power at
	// low frequency, giving the strong energy advantage the paper exploits.
	littleLadder := []FreqPoint{
		{GHz: 0.6, ActiveMW: 42},
		{GHz: 1.0, ActiveMW: 88},
		{GHz: 1.4, ActiveMW: 155},
		{GHz: 1.9, ActiveMW: 265},
		{GHz: 2.4, ActiveMW: 420},
	}
	var cores []Core
	for i := 0; i < 4; i++ {
		cores = append(cores, Core{Kind: Big, Cluster: 0, Ladder: bigLadder, IdleMW: 25})
	}
	for i := 0; i < 4; i++ {
		cores = append(cores, Core{Kind: Little, Cluster: 1, Ladder: littleLadder, IdleMW: 6})
	}
	return Config{
		Name:  "apple-m2-like",
		Cores: cores,
		Cost:  defaultCost(),
		// DRAMPJAccess is scaled with the simulation time scale so that
		// DRAM dynamic energy keeps its silicon-realistic share (~10-20 %
		// of total on memory-bound runs) despite the 10⁴x shorter runs.
		Power: PowerModel{SocStaticMW: 350, DRAMStaticMW: 250, DRAMPJAccess: 2.5},
		CacheCfg: cache.Config{
			LineSize: 64,
			L1Big:    cache.Geometry{Sets: 128, Ways: 8}, // 64 KiB
			L1Little: cache.Geometry{Sets: 64, Ways: 4},  // 16 KiB
			L2: []cache.Geometry{
				{Sets: 2048, Ways: 16}, // big cluster: 2 MiB (16 MiB scaled)
				{Sets: 2048, Ways: 8},  // little cluster: 1 MiB (4 MiB scaled)
			},
		},
		PageSize:               16 * 1024,
		SeparateVoltageDomains: true,
	}
}

// BigOnly returns the Apple preset with the little cluster removed: a
// homogeneous big-core machine. Parallaft degenerates gracefully — checkers
// are placed directly on spare big cores, there is no migration target and
// no little DVFS domain to pace.
func BigOnly() Config {
	cfg := AppleM2Like()
	var bigs []Core
	for _, c := range cfg.Cores {
		if c.Kind == Big {
			bigs = append(bigs, c)
		}
	}
	cfg.Cores = bigs
	cfg.Name = "apple-big-only"
	return cfg
}

// IntelLike returns the scaled Intel-Core-i7-14700-style configuration for
// the §5.8 experiment: E-cores share the package voltage domain (little
// power savings), a large uncore static term, 4 KiB pages, and slicing by
// instruction count rather than cycles.
func IntelLike() Config {
	pLadder := []FreqPoint{
		{GHz: 1.6, ActiveMW: 2200},
		{GHz: 2.5, ActiveMW: 3900},
		{GHz: 3.4, ActiveMW: 6100},
		{GHz: 4.2, ActiveMW: 8600},
		{GHz: 5.0, ActiveMW: 12000},
	}
	// No separate voltage domain: E-core power scales poorly at low
	// frequency because voltage is pinned by the P-cluster.
	eLadder := []FreqPoint{
		{GHz: 1.2, ActiveMW: 1300},
		{GHz: 1.8, ActiveMW: 1900},
		{GHz: 2.4, ActiveMW: 2600},
		{GHz: 3.0, ActiveMW: 3400},
		{GHz: 3.6, ActiveMW: 4300},
	}
	var cores []Core
	for i := 0; i < 4; i++ { // scaled: 4 P-cores
		cores = append(cores, Core{Kind: Big, Cluster: 0, Ladder: pLadder, IdleMW: 150})
	}
	for i := 0; i < 8; i++ { // scaled: 8 E-cores, two clusters of 4 sharing L2
		cluster := 1 + i/4
		cores = append(cores, Core{Kind: Little, Cluster: cluster, Ladder: eLadder, IdleMW: 60})
	}
	cost := defaultCost()
	cost.DRAMExtraNs = 44 // DDR5 behind a bigger fabric
	// Gracemont E-cores are out-of-order with respectable MLP — far closer
	// to the P-cores on memory-bound code than Apple's little cores are,
	// which is part of why Parallaft's Intel energy win is small (§5.8).
	cost.DRAMKindFactor = [numKinds]float64{Big: 0.5, Little: 2.0}
	cost.StoreDRAMFactor = [numKinds]float64{Big: 1.0, Little: 1.4}
	return Config{
		Name:  "intel-14700-like",
		Cores: cores,
		Cost:  cost,
		Power: PowerModel{SocStaticMW: 9000, DRAMStaticMW: 1200, DRAMPJAccess: 3.5},
		CacheCfg: cache.Config{
			LineSize: 64,
			L1Big:    cache.Geometry{Sets: 128, Ways: 6},
			L1Little: cache.Geometry{Sets: 64, Ways: 4},
			L2: []cache.Geometry{
				{Sets: 2048, Ways: 10}, // P cluster
				{Sets: 1024, Ways: 8},  // E cluster 0
				{Sets: 1024, Ways: 8},  // E cluster 1
			},
		},
		PageSize:            4 * 1024,
		SliceByInstructions: true,
	}
}
