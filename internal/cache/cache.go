// Package cache models the simulated cache hierarchy: a private L1 per
// core, a shared L2 per cluster (big cores share one L2, little cores share
// another, as on the Apple M2), and DRAM behind both.
//
// The model is a real set-associative tag simulation with LRU replacement,
// not a probabilistic one, so the performance effects the paper leans on
// emerge rather than being scripted:
//
//   - memory-intensive workloads slow down much more on little cores,
//     whose L1 and shared L2 are smaller (§4.5);
//   - concurrent checkers contend for the little cluster's shared L2;
//   - a checker migrated to a big core arrives cold and pollutes the big
//     cluster's L2, slowing the main process (§5.2.1);
//   - main and checker contend for DRAM bandwidth regardless of cluster.
//
// Lines are tagged with (address-space ID, line address): the simulated
// machine behaves like a physically-tagged hierarchy whose COW sharing is
// ignored, a deliberate simplification that errs on the side of *more*
// contention, matching the paper's observation that contention dominates.
package cache

import "fmt"

// Level identifies where an access was satisfied.
type Level uint8

// Access result levels.
const (
	L1Hit Level = iota
	L2Hit
	DRAM
	NumLevels
)

// String returns a short label for the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case DRAM:
		return "DRAM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Geometry describes one cache's organisation.
type Geometry struct {
	Sets int // number of sets (power of two)
	Ways int // associativity
}

// SizeBytes returns the cache capacity for a given line size.
func (g Geometry) SizeBytes(lineSize int) int { return g.Sets * g.Ways * lineSize }

type line struct {
	tag   uint64 // (asid << 40) | lineAddr — see key()
	valid bool
	lru   uint64
}

type setAssoc struct {
	geom  Geometry
	lines []line // Sets*Ways, set-major
	clock uint64
	mask  uint64

	hits, misses uint64
}

func newSetAssoc(g Geometry) *setAssoc {
	if g.Sets <= 0 || g.Sets&(g.Sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d not a power of two", g.Sets))
	}
	if g.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	return &setAssoc{
		geom:  g,
		lines: make([]line, g.Sets*g.Ways),
		mask:  uint64(g.Sets - 1),
	}
}

// access probes the cache and fills on miss; returns true on hit.
func (c *setAssoc) access(tag uint64) bool {
	c.clock++
	set := int(tag&c.mask) * c.geom.Ways
	ways := c.lines[set : set+c.geom.Ways]
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			c.hits++
			return true
		}
		if !ways[i].valid {
			victim = i
			victimLRU = 0
		} else if ways[i].lru < victimLRU {
			victim = i
			victimLRU = ways[i].lru
		}
	}
	ways[victim] = line{tag: tag, valid: true, lru: c.clock}
	c.misses++
	return false
}

// flush invalidates every line belonging to the given ASID (used when an
// address space is destroyed, to avoid stale hits for a recycled ASID).
func (c *setAssoc) flush(asid uint64) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].tag>>asidShift == asid {
			c.lines[i].valid = false
		}
	}
}

// Config describes the whole hierarchy.
type Config struct {
	LineSize int        // bytes per cache line (power of two)
	L1Big    Geometry   // private L1 on each big core
	L1Little Geometry   // private L1 on each little core
	L2       []Geometry // one shared L2 per cluster, indexed by cluster ID
}

// Hierarchy is the full multi-core cache model. It is not safe for
// concurrent use; the simulation engine serialises access.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	l1        []*setAssoc // per core
	l2        []*setAssoc // per cluster
	coreL2    []int       // core -> cluster
	stats     []LevelStats
}

// LevelStats counts accesses per satisfaction level for one core.
type LevelStats struct {
	Counts [NumLevels]uint64
}

// Total returns the total number of accesses.
func (s LevelStats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// MissRatio returns the fraction of accesses that reached DRAM.
func (s LevelStats) MissRatio() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Counts[DRAM]) / float64(t)
}

const asidShift = 40 // line addresses occupy the low 40 bits of a tag

// New builds a hierarchy for the given per-core layout. coreIsBig[i]
// selects the L1 geometry for core i; coreCluster[i] selects its L2.
func New(cfg Config, coreIsBig []bool, coreCluster []int) *Hierarchy {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	shift := uint(0)
	for s := cfg.LineSize; s > 1; s >>= 1 {
		shift++
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: shift,
		l1:        make([]*setAssoc, len(coreIsBig)),
		l2:        make([]*setAssoc, len(cfg.L2)),
		coreL2:    make([]int, len(coreCluster)),
		stats:     make([]LevelStats, len(coreIsBig)),
	}
	for i, big := range coreIsBig {
		if big {
			h.l1[i] = newSetAssoc(cfg.L1Big)
		} else {
			h.l1[i] = newSetAssoc(cfg.L1Little)
		}
	}
	for i, g := range cfg.L2 {
		h.l2[i] = newSetAssoc(g)
	}
	copy(h.coreL2, coreCluster)
	return h
}

func (h *Hierarchy) key(asid, addr uint64) uint64 {
	return asid<<asidShift | (addr >> h.lineShift & (1<<asidShift - 1))
}

// Access simulates a data access by the process with the given ASID running
// on the given core, and returns the level that satisfied it.
func (h *Hierarchy) Access(core int, asid, addr uint64) Level {
	tag := h.key(asid, addr)
	lvl := DRAM
	if h.l1[core].access(tag) {
		lvl = L1Hit
	} else if h.l2[h.coreL2[core]].access(tag) {
		lvl = L2Hit
	}
	h.stats[core].Counts[lvl]++
	return lvl
}

// AccessRange simulates an access spanning [addr, addr+size); it touches
// each distinct line and returns the worst (slowest) level observed.
func (h *Hierarchy) AccessRange(core int, asid, addr uint64, size int) Level {
	worst := L1Hit
	first := addr >> h.lineShift
	last := (addr + uint64(size) - 1) >> h.lineShift
	for lineAddr := first; lineAddr <= last; lineAddr++ {
		lvl := h.Access(core, asid, lineAddr<<h.lineShift)
		if lvl > worst {
			worst = lvl
		}
	}
	return worst
}

// FlushASID invalidates all lines belonging to the ASID across the whole
// hierarchy. Called when a process exits so a recycled ASID starts cold.
func (h *Hierarchy) FlushASID(asid uint64) {
	for _, c := range h.l1 {
		c.flush(asid)
	}
	for _, c := range h.l2 {
		c.flush(asid)
	}
}

// CoreStats returns a copy of the per-core access statistics.
func (h *Hierarchy) CoreStats(core int) LevelStats { return h.stats[core] }

// ResetStats zeroes all per-core statistics (the tag arrays keep their
// contents).
func (h *Hierarchy) ResetStats() {
	for i := range h.stats {
		h.stats[i] = LevelStats{}
	}
}

// LineSize returns the configured line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.LineSize }
