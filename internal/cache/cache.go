// Package cache models the simulated cache hierarchy: a private L1 per
// core, a shared L2 per cluster (big cores share one L2, little cores share
// another, as on the Apple M2), and DRAM behind both.
//
// The model is a real set-associative tag simulation with LRU replacement,
// not a probabilistic one, so the performance effects the paper leans on
// emerge rather than being scripted:
//
//   - memory-intensive workloads slow down much more on little cores,
//     whose L1 and shared L2 are smaller (§4.5);
//   - concurrent checkers contend for the little cluster's shared L2;
//   - a checker migrated to a big core arrives cold and pollutes the big
//     cluster's L2, slowing the main process (§5.2.1);
//   - main and checker contend for DRAM bandwidth regardless of cluster.
//
// Lines are tagged with (address-space ID, line address): the simulated
// machine behaves like a physically-tagged hierarchy whose COW sharing is
// ignored, a deliberate simplification that errs on the side of *more*
// contention, matching the paper's observation that contention dominates.
package cache

import "fmt"

// Level identifies where an access was satisfied.
type Level uint8

// Access result levels.
const (
	L1Hit Level = iota
	L2Hit
	DRAM
	NumLevels
)

// String returns a short label for the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case DRAM:
		return "DRAM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Geometry describes one cache's organisation.
type Geometry struct {
	Sets int // number of sets (power of two)
	Ways int // associativity
}

// SizeBytes returns the cache capacity for a given line size.
func (g Geometry) SizeBytes(lineSize int) int { return g.Sets * g.Ways * lineSize }

type line struct {
	tag   uint64 // (asid << 40) | lineAddr — see key()
	valid bool
	lru   uint64
}

type setAssoc struct {
	geom  Geometry
	lines []line // Sets*Ways, set-major
	clock uint64
	mask  uint64

	// mru caches, per set, the way index of the most recent hit or fill.
	// Checking it before the way scan short-circuits the common case of
	// repeated accesses to the same line without changing which accesses
	// hit, miss, or evict.
	mru []uint16
	// asidLines counts valid lines per ASID (index = ASID), so flushing an
	// ASID can stop as soon as its last line is invalidated instead of
	// always walking the whole tag array.
	asidLines []uint32

	hits, misses uint64
}

func newSetAssoc(g Geometry) *setAssoc {
	if g.Sets <= 0 || g.Sets&(g.Sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d not a power of two", g.Sets))
	}
	if g.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	return &setAssoc{
		geom:  g,
		lines: make([]line, g.Sets*g.Ways),
		mask:  uint64(g.Sets - 1),
		mru:   make([]uint16, g.Sets),
	}
}

// countLine adjusts the valid-line count of an ASID by d.
func (c *setAssoc) countLine(asid uint64, d int32) {
	if asid >= uint64(len(c.asidLines)) {
		grown := make([]uint32, asid+64)
		copy(grown, c.asidLines)
		c.asidLines = grown
	}
	c.asidLines[asid] = uint32(int32(c.asidLines[asid]) + d)
}

// fastHit probes only the set's MRU way. It is small enough for the
// compiler to inline at AccessRange's call sites, so the dominant case —
// another access to the line just touched — never pays a function call.
// A hit updates the same clock/LRU/hit state a full access would.
func (c *setAssoc) fastHit(tag uint64) bool {
	setIdx := int(tag & c.mask)
	w := &c.lines[setIdx*c.geom.Ways+int(c.mru[setIdx])]
	if w.valid && w.tag == tag {
		c.clock++
		w.lru = c.clock
		c.hits++
		return true
	}
	return false
}

// access probes the cache and fills on miss; returns true on hit.
func (c *setAssoc) access(tag uint64) bool {
	c.clock++
	setIdx := int(tag & c.mask)
	set := setIdx * c.geom.Ways
	ways := c.lines[set : set+c.geom.Ways]
	if m := c.mru[setIdx]; int(m) < len(ways) {
		if w := &ways[m]; w.valid && w.tag == tag {
			w.lru = c.clock
			c.hits++
			return true
		}
	}
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			c.hits++
			c.mru[setIdx] = uint16(i)
			return true
		}
		if !ways[i].valid {
			victim = i
			victimLRU = 0
		} else if ways[i].lru < victimLRU {
			victim = i
			victimLRU = ways[i].lru
		}
	}
	if v := &ways[victim]; v.valid {
		c.countLine(v.tag>>asidShift, -1)
	}
	ways[victim] = line{tag: tag, valid: true, lru: c.clock}
	c.mru[setIdx] = uint16(victim)
	c.countLine(tag>>asidShift, 1)
	c.misses++
	return false
}

// flush invalidates every line belonging to the given ASID (used when an
// address space is destroyed, to avoid stale hits for a recycled ASID).
// The per-ASID line count bounds the walk: a flush of an ASID whose lines
// were already evicted is O(1), and any other flush stops at the last line.
func (c *setAssoc) flush(asid uint64) {
	if asid >= uint64(len(c.asidLines)) {
		return
	}
	remaining := c.asidLines[asid]
	if remaining == 0 {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].tag>>asidShift == asid {
			c.lines[i].valid = false
			remaining--
			if remaining == 0 {
				break
			}
		}
	}
	c.asidLines[asid] = 0
}

// Config describes the whole hierarchy.
type Config struct {
	LineSize int        // bytes per cache line (power of two)
	L1Big    Geometry   // private L1 on each big core
	L1Little Geometry   // private L1 on each little core
	L2       []Geometry // one shared L2 per cluster, indexed by cluster ID
}

// Hierarchy is the full multi-core cache model. It is not safe for
// concurrent use; the simulation engine serialises access.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	l1        []*setAssoc // per core
	l2        []*setAssoc // per cluster
	coreL2    []int       // core -> cluster
	stats     []LevelStats
}

// LevelStats counts accesses per satisfaction level for one core.
type LevelStats struct {
	Counts [NumLevels]uint64
}

// Total returns the total number of accesses.
func (s LevelStats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// MissRatio returns the fraction of accesses that reached DRAM.
func (s LevelStats) MissRatio() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Counts[DRAM]) / float64(t)
}

const asidShift = 40 // line addresses occupy the low 40 bits of a tag

// New builds a hierarchy for the given per-core layout. coreIsBig[i]
// selects the L1 geometry for core i; coreCluster[i] selects its L2.
func New(cfg Config, coreIsBig []bool, coreCluster []int) *Hierarchy {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	shift := uint(0)
	for s := cfg.LineSize; s > 1; s >>= 1 {
		shift++
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: shift,
		l1:        make([]*setAssoc, len(coreIsBig)),
		l2:        make([]*setAssoc, len(cfg.L2)),
		coreL2:    make([]int, len(coreCluster)),
		stats:     make([]LevelStats, len(coreIsBig)),
	}
	for i, big := range coreIsBig {
		if big {
			h.l1[i] = newSetAssoc(cfg.L1Big)
		} else {
			h.l1[i] = newSetAssoc(cfg.L1Little)
		}
	}
	for i, g := range cfg.L2 {
		h.l2[i] = newSetAssoc(g)
	}
	copy(h.coreL2, coreCluster)
	return h
}

func (h *Hierarchy) key(asid, addr uint64) uint64 {
	return asid<<asidShift | (addr >> h.lineShift & (1<<asidShift - 1))
}

// Access simulates a data access by the process with the given ASID running
// on the given core, and returns the level that satisfied it.
func (h *Hierarchy) Access(core int, asid, addr uint64) Level {
	tag := h.key(asid, addr)
	lvl := DRAM
	if h.l1[core].access(tag) {
		lvl = L1Hit
	} else if h.l2[h.coreL2[core]].access(tag) {
		lvl = L2Hit
	}
	h.stats[core].Counts[lvl]++
	return lvl
}

// AccessRange simulates an access spanning [addr, addr+size); it touches
// each distinct line and returns the worst (slowest) level observed. The
// body is Access unrolled per line with the tag built incrementally, since
// this is the interpreter's per-memory-instruction entry point.
func (h *Hierarchy) AccessRange(core int, asid, addr uint64, size int) Level {
	first := addr >> h.lineShift
	last := (addr + uint64(size) - 1) >> h.lineShift
	l1 := h.l1[core]
	l2 := h.l2[h.coreL2[core]]
	st := &h.stats[core]
	base := asid << asidShift
	if first == last { // the common case: the access stays in one line
		tag := base | first&(1<<asidShift-1)
		if l1.fastHit(tag) {
			st.Counts[L1Hit]++
			return L1Hit
		}
		lvl := DRAM
		if l1.access(tag) {
			lvl = L1Hit
		} else if l2.access(tag) {
			lvl = L2Hit
		}
		st.Counts[lvl]++
		return lvl
	}
	worst := L1Hit
	for lineAddr := first; lineAddr <= last; lineAddr++ {
		tag := base | lineAddr&(1<<asidShift-1)
		lvl := DRAM
		if l1.fastHit(tag) {
			lvl = L1Hit
		} else if l1.access(tag) {
			lvl = L1Hit
		} else if l2.access(tag) {
			lvl = L2Hit
		}
		st.Counts[lvl]++
		if lvl > worst {
			worst = lvl
		}
	}
	return worst
}

// FlushASID invalidates all lines belonging to the ASID across the whole
// hierarchy. Called when a process exits so a recycled ASID starts cold.
func (h *Hierarchy) FlushASID(asid uint64) {
	for _, c := range h.l1 {
		c.flush(asid)
	}
	for _, c := range h.l2 {
		c.flush(asid)
	}
}

// CoreStats returns a copy of the per-core access statistics.
func (h *Hierarchy) CoreStats(core int) LevelStats { return h.stats[core] }

// ResetStats zeroes all per-core statistics (the tag arrays keep their
// contents).
func (h *Hierarchy) ResetStats() {
	for i := range h.stats {
		h.stats[i] = LevelStats{}
	}
}

// LineSize returns the configured line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.LineSize }
