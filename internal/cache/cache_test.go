package cache

import (
	"testing"
)

// tiny two-core machine: core 0 big (cluster 0), core 1 little (cluster 1)
func newTestHierarchy() *Hierarchy {
	cfg := Config{
		LineSize: 64,
		L1Big:    Geometry{Sets: 8, Ways: 2}, // 1 KiB
		L1Little: Geometry{Sets: 4, Ways: 2}, // 512 B
		L2: []Geometry{
			{Sets: 32, Ways: 4}, // big cluster: 8 KiB
			{Sets: 16, Ways: 2}, // little cluster: 2 KiB
		},
	}
	return New(cfg, []bool{true, false}, []int{0, 1})
}

func TestGeometrySize(t *testing.T) {
	g := Geometry{Sets: 128, Ways: 8}
	if got := g.SizeBytes(64); got != 64*1024 {
		t.Errorf("SizeBytes = %d, want 65536", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets accepted")
		}
	}()
	newSetAssoc(Geometry{Sets: 3, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	h := newTestHierarchy()
	if lvl := h.Access(0, 1, 0x1000); lvl != DRAM {
		t.Errorf("cold access = %v, want DRAM", lvl)
	}
	if lvl := h.Access(0, 1, 0x1000); lvl != L1Hit {
		t.Errorf("second access = %v, want L1", lvl)
	}
	if lvl := h.Access(0, 1, 0x1008); lvl != L1Hit {
		t.Errorf("same-line access = %v, want L1", lvl)
	}
	st := h.CoreStats(0)
	if st.Counts[DRAM] != 1 || st.Counts[L1Hit] != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestL2BacksL1(t *testing.T) {
	h := newTestHierarchy()
	// fill far beyond L1 (1 KiB) but within L2 (8 KiB)
	for addr := uint64(0); addr < 4*1024; addr += 64 {
		h.Access(0, 1, addr)
	}
	// the first lines were evicted from L1 but must hit in L2
	if lvl := h.Access(0, 1, 0); lvl != L2Hit {
		t.Errorf("re-access after L1 eviction = %v, want L2", lvl)
	}
}

func TestCapacityEviction(t *testing.T) {
	h := newTestHierarchy()
	// stream far beyond L2 capacity
	for addr := uint64(0); addr < 64*1024; addr += 64 {
		h.Access(0, 1, addr)
	}
	if lvl := h.Access(0, 1, 0); lvl != DRAM {
		t.Errorf("access after full eviction = %v, want DRAM", lvl)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// L1 big: 8 sets x 2 ways. Three lines mapping to the same set:
	// addresses differing by sets*linesize = 512.
	h := newTestHierarchy()
	a, b, c := uint64(0), uint64(512), uint64(1024)
	h.Access(0, 1, a) // miss
	h.Access(0, 1, b) // miss; set now [a,b]
	h.Access(0, 1, a) // hit; a most recent
	h.Access(0, 1, c) // evicts b (LRU)
	// Note: all three may also hit L2 now; check L1 via re-access levels.
	if lvl := h.Access(0, 1, a); lvl != L1Hit {
		t.Errorf("a should still be in L1, got %v", lvl)
	}
	if lvl := h.Access(0, 1, b); lvl == L1Hit {
		t.Error("b should have been evicted from L1")
	}
}

func TestClusterIsolation(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0, 1, 0x4000) // fill big cluster caches
	h.Access(0, 1, 0x4000)
	// same data accessed from the little core must miss both its L1 and
	// its (separate) L2
	if lvl := h.Access(1, 1, 0x4000); lvl != DRAM {
		t.Errorf("cross-cluster access = %v, want DRAM", lvl)
	}
}

func TestASIDSeparation(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0, 1, 0x8000)
	if lvl := h.Access(0, 2, 0x8000); lvl == L1Hit {
		t.Error("different ASID hit another process's line")
	}
}

func TestFlushASID(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0, 1, 0x100)
	h.Access(0, 2, 0x9000)
	h.FlushASID(1)
	if lvl := h.Access(0, 1, 0x100); lvl != DRAM {
		t.Errorf("flushed line still resident: %v", lvl)
	}
	if lvl := h.Access(0, 2, 0x9000); lvl == DRAM {
		t.Error("flush removed another ASID's line")
	}
}

func TestAccessRangeWorstLevel(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0, 1, 0x2000) // line resident
	// range spanning the resident line and the next (cold) one
	if lvl := h.AccessRange(0, 1, 0x2038, 16); lvl != DRAM {
		t.Errorf("spanning range = %v, want worst (DRAM)", lvl)
	}
	if lvl := h.AccessRange(0, 1, 0x2000, 8); lvl != L1Hit {
		t.Errorf("resident range = %v, want L1", lvl)
	}
}

func TestStatsHelpers(t *testing.T) {
	h := newTestHierarchy()
	for i := 0; i < 10; i++ {
		h.Access(0, 1, uint64(i)*64)
	}
	for i := 0; i < 10; i++ {
		h.Access(0, 1, uint64(i)*64)
	}
	st := h.CoreStats(0)
	if st.Total() != 20 {
		t.Errorf("total = %d, want 20", st.Total())
	}
	if mr := st.MissRatio(); mr != 0.5 {
		t.Errorf("miss ratio = %v, want 0.5", mr)
	}
	h.ResetStats()
	if h.CoreStats(0).Total() != 0 {
		t.Error("ResetStats did not clear counts")
	}
	// the tag arrays survive a stats reset
	if lvl := h.Access(0, 1, 0); lvl != L1Hit {
		t.Errorf("tags lost on ResetStats: %v", lvl)
	}
}

func TestLevelString(t *testing.T) {
	if L1Hit.String() != "L1" || L2Hit.String() != "L2" || DRAM.String() != "DRAM" {
		t.Error("level names wrong")
	}
}

func TestWorkingSetBehaviourMatchesCapacity(t *testing.T) {
	// The differentiation Parallaft's scheduler depends on: a working set
	// that fits the big L1 but not the little one.
	h := newTestHierarchy()
	sweep := func(core int, asid uint64, bytes uint64) (l1Frac float64) {
		h.ResetStats()
		for pass := 0; pass < 8; pass++ {
			for addr := uint64(0); addr < bytes; addr += 64 {
				h.Access(core, asid, addr)
			}
		}
		st := h.CoreStats(core)
		return float64(st.Counts[L1Hit]) / float64(st.Total())
	}
	bigL1 := sweep(0, 10, 768)    // fits big L1 (1 KiB)
	littleL1 := sweep(1, 11, 768) // exceeds little L1 (512 B)
	if bigL1 < 0.8 {
		t.Errorf("big-core resident sweep L1 fraction %v, want >= 0.8", bigL1)
	}
	if littleL1 >= bigL1 {
		t.Errorf("little core should hit L1 less: %v vs %v", littleL1, bigL1)
	}
}
