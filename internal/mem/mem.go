// Package mem implements the simulated paged virtual-memory subsystem.
//
// It provides the three mechanisms Parallaft's design is built on:
//
//   - Copy-on-write fork: an address space can be forked in O(pages) time,
//     sharing refcounted physical frames; the first write to a shared page
//     copies it. Forks are how Parallaft takes checkpoints and spawns
//     checkers (§3.1), and COW page-copy counts feed the fork-and-COW
//     overhead component of the evaluation (§5.2.1).
//
//   - Soft-dirty tracking: each page-table entry carries a soft-dirty bit,
//     set on write and cleared in bulk, mirroring Linux's soft-dirty PTE
//     mechanism Parallaft uses on x86_64 (§4.4).
//
//   - Map-count queries: the number of address spaces sharing a frame,
//     mirroring the PAGEMAP_SCAN-based technique Parallaft uses on AArch64
//     (§4.4): a page mapped exactly once is new or modified.
//
// Page size is configurable because it matters: the paper attributes part of
// Parallaft's higher overhead on Intel to 4 KiB pages versus Apple's 16 KiB
// (§5.8).
package mem

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"parallaft/internal/hashx"
)

// Prot is a page protection bitmask.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtNone Prot = 0
	ProtRW        = ProtRead | ProtWrite
)

// FaultKind classifies memory access faults.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped FaultKind = iota // no page at the address
	FaultProt                      // page mapped without required permission
)

// Fault describes a failed memory access. It is delivered to the guest as a
// SIGSEGV-equivalent by the OS layer.
type Fault struct {
	Addr  uint64
	Write bool
	Kind  FaultKind
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	kind := "unmapped address"
	if f.Kind == FaultProt {
		kind = "protection violation"
	}
	return fmt.Sprintf("mem: %s fault at %#x: %s", op, f.Addr, kind)
}

// Frame is a refcounted physical page frame. The refcount is the number of
// page-table entries (across all address spaces) mapping the frame.
//
// Every frame carries a stable identity (ID) and a lazily memoized content
// hash. Two PTEs holding the same *Frame are trivially content-equal — the
// foundation of the comparison subsystem's frame-identity fast path — and
// the memoized hash lets a COW-shared frame be hashed once no matter how
// many checkpoints and checkers map it.
type Frame struct {
	data []byte
	ref  int
	id   uint64

	// writeGen counts content mutations; a memo is valid only for the
	// generation it was computed at. The counter is written only by the
	// (single) goroutine executing the guest, and read by hashing workers
	// while the guest is paused, so a plain field suffices.
	writeGen uint64
	// The memoized hash, valid for exactly one (generation, seed). Plain
	// fields keep ContentHash allocation-free; safety rests on the pages
	// being a one-to-one vpn→frame map per address space, so a comparison
	// fan-out (one page per job) never hands the same frame to two
	// workers, and comparisons are serialized by worker join.
	memoGen  uint64
	memoSeed uint64
	memoSum  uint64
	memoOK   bool
}

// frameIDs allocates stable frame identities process-wide.
var frameIDs atomic.Uint64

func newFrame(size uint64) *Frame {
	return &Frame{data: make([]byte, size), ref: 1, id: frameIDs.Add(1)}
}

// MapCount returns the number of address spaces mapping this frame.
func (f *Frame) MapCount() int { return f.ref }

// ID returns the frame's stable identity. IDs are unique process-wide and
// never reused; they are for diagnostics and tests — equality of frames is
// pointer equality.
func (f *Frame) ID() uint64 { return f.id }

// Data returns the frame contents. The slice aliases the frame; callers
// must treat it as read-only.
func (f *Frame) Data() []byte { return f.data }

// noteWrite invalidates any memoized hash; called on every content mutation.
func (f *Frame) noteWrite() { f.writeGen++ }

// ContentHash returns the XXH64 hash of the frame contents under seed,
// memoizing the result. The second return reports whether the memo served
// the request (no host-side hashing happened). The memo is invalidated by
// any write to the frame; COW keeps it trivially correct across sharers,
// because a write to a shared frame redirects the writer to a fresh frame
// and a write to a private frame bumps its generation.
//
// Callers must not invoke ContentHash on the same frame from two goroutines
// at once; the comparison subsystem guarantees this by assigning each page
// (and therefore each frame) to exactly one hashing worker.
func (f *Frame) ContentHash(seed uint64) (sum uint64, cached bool) {
	if f.memoOK && f.memoGen == f.writeGen && f.memoSeed == seed {
		return f.memoSum, true
	}
	sum = hashx.Sum64(seed, f.data)
	f.memoGen, f.memoSeed, f.memoSum, f.memoOK = f.writeGen, seed, sum, true
	return sum, false
}

type pte struct {
	frame     *Frame
	prot      Prot
	softDirty bool
}

// VMA describes a mapped virtual region (the unit of mmap/munmap).
type VMA struct {
	Base   uint64
	Length uint64 // bytes, page-aligned
	Prot   Prot
	Name   string // diagnostic label: "heap", "stack", "mmap", file name...
}

// End returns the first address past the region.
func (v VMA) End() uint64 { return v.Base + v.Length }

// Stats aggregates memory-subsystem event counts for one address space.
// COW counts accumulate in the address space that performed the write.
type Stats struct {
	COWCopies  uint64 // pages copied due to copy-on-write
	COWBytes   uint64 // bytes copied due to copy-on-write
	PagesAlloc uint64 // fresh frames allocated (zero-fill or explicit map)
}

// tlbSize is the number of entries in each host-side translation cache.
// Purely a host optimisation: the TLB has no simulated cost or state — the
// cache hierarchy model in internal/cache is what the timing sees.
const tlbSize = 256

// tlbEntry caches one vpn→pte translation. A slot is live only when its gen
// matches the address space's current tlbGen, so invalidation is a counter
// bump instead of a memclr of both arrays.
type tlbEntry struct {
	vpn uint64
	p   *pte
	gen uint32
}

// AddressSpace is one guest process's virtual memory.
type AddressSpace struct {
	pageSize  uint64
	pageShift uint
	pages     map[uint64]*pte // keyed by virtual page number
	vmas      []VMA           // sorted by Base
	brk       uint64
	brkBase   uint64
	stats     Stats

	// direct-mapped host TLBs; invalidated on any page-table mutation
	tlbRead  [tlbSize]tlbEntry
	tlbWrite [tlbSize]tlbEntry
	tlbGen   uint32
}

// NewAddressSpace creates an empty address space with the given page size,
// which must be a power of two.
func NewAddressSpace(pageSize uint64) *AddressSpace {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a power of two", pageSize))
	}
	shift := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		shift++
	}
	return &AddressSpace{
		pageSize:  pageSize,
		pageShift: shift,
		pages:     make(map[uint64]*pte),
	}
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return as.pageSize }

// Stats returns the accumulated event counts.
func (as *AddressSpace) Stats() Stats { return as.stats }

// ResetStats zeroes the accumulated event counts.
func (as *AddressSpace) ResetStats() { as.stats = Stats{} }

// VPN returns the virtual page number containing addr.
func (as *AddressSpace) VPN(addr uint64) uint64 { return addr >> as.pageShift }

// PageBase returns the base address of the page containing addr.
func (as *AddressSpace) PageBase(addr uint64) uint64 {
	return addr &^ (as.pageSize - 1)
}

func (as *AddressSpace) invalidateTLB() {
	as.tlbGen++
	if as.tlbGen == 0 {
		// Generation counter wrapped: hard-clear both arrays so entries
		// filled under an ancient generation cannot come back to life.
		as.tlbRead = [tlbSize]tlbEntry{}
		as.tlbWrite = [tlbSize]tlbEntry{}
		as.tlbGen = 1
	}
}

// Map maps [base, base+length) with the given protection, allocating fresh
// zero frames. base and length must be page-aligned, the range must not
// overlap an existing VMA, and length must be nonzero.
func (as *AddressSpace) Map(base, length uint64, prot Prot, name string) error {
	if base%as.pageSize != 0 || length%as.pageSize != 0 || length == 0 {
		return fmt.Errorf("mem: map [%#x,+%#x): not page-aligned or empty", base, length)
	}
	if as.overlaps(base, length) {
		return fmt.Errorf("mem: map [%#x,+%#x): overlaps existing mapping", base, length)
	}
	for vpn := base >> as.pageShift; vpn < (base+length)>>as.pageShift; vpn++ {
		as.pages[vpn] = &pte{
			frame:     newFrame(as.pageSize),
			prot:      prot,
			softDirty: true, // a new page is "modified" from nothing
		}
		as.stats.PagesAlloc++
	}
	as.insertVMA(VMA{Base: base, Length: length, Prot: prot, Name: name})
	as.invalidateTLB()
	return nil
}

// Unmap removes the VMA exactly covering [base, base+length).
func (as *AddressSpace) Unmap(base, length uint64) error {
	idx := -1
	for i, v := range as.vmas {
		if v.Base == base && v.Length == length {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("mem: unmap [%#x,+%#x): no such mapping", base, length)
	}
	for vpn := base >> as.pageShift; vpn < (base+length)>>as.pageShift; vpn++ {
		if p, ok := as.pages[vpn]; ok {
			p.frame.ref--
			delete(as.pages, vpn)
		}
	}
	as.vmas = append(as.vmas[:idx], as.vmas[idx+1:]...)
	as.invalidateTLB()
	return nil
}

// Protect changes the protection of every whole page within [base,
// base+length), which must lie inside a single VMA.
func (as *AddressSpace) Protect(base, length uint64, prot Prot) error {
	if base%as.pageSize != 0 || length%as.pageSize != 0 || length == 0 {
		return fmt.Errorf("mem: protect [%#x,+%#x): not page-aligned or empty", base, length)
	}
	v := as.findVMA(base)
	if v == nil || base+length > v.End() {
		return fmt.Errorf("mem: protect [%#x,+%#x): range not inside one mapping", base, length)
	}
	for vpn := base >> as.pageShift; vpn < (base+length)>>as.pageShift; vpn++ {
		if p, ok := as.pages[vpn]; ok {
			p.prot = prot
		}
	}
	if v.Base == base && v.Length == length {
		v.Prot = prot
	}
	as.invalidateTLB()
	return nil
}

// SetBrk initialises the program break region. Must be called once before
// Brk; base must be page-aligned.
func (as *AddressSpace) SetBrk(base uint64) {
	as.brkBase = base
	as.brk = base
}

// Brk grows (or queries, with newBrk == 0) the program break, mapping fresh
// pages as needed, and returns the current break. Shrinking is ignored,
// matching common kernel behaviour for simplicity.
func (as *AddressSpace) Brk(newBrk uint64) uint64 {
	if newBrk <= as.brk {
		return as.brk
	}
	oldEnd := (as.brk + as.pageSize - 1) &^ (as.pageSize - 1)
	newEnd := (newBrk + as.pageSize - 1) &^ (as.pageSize - 1)
	if newEnd > oldEnd {
		if err := as.Map(oldEnd, newEnd-oldEnd, ProtRW, "heap"); err != nil {
			// growth collided with an existing mapping: refuse, like a
			// kernel returning the unchanged break
			return as.brk
		}
	}
	as.brk = newBrk
	return as.brk
}

// CurrentBrk returns the current program break.
func (as *AddressSpace) CurrentBrk() uint64 { return as.brk }

// BrkBase returns the base of the program break region.
func (as *AddressSpace) BrkBase() uint64 { return as.brkBase }

// RestoreBrk restores the break fields of a reconstructed address space
// without mapping anything: the heap pages were already materialised from a
// snapshot (they are part of the VMA/page set), so growing via Brk here
// would collide with them. Used when rebuilding an address space from a
// serialized checkpoint.
func (as *AddressSpace) RestoreBrk(base, brk uint64) {
	as.brkBase = base
	as.brk = brk
}

func (as *AddressSpace) overlaps(base, length uint64) bool {
	end := base + length
	for _, v := range as.vmas {
		if base < v.End() && v.Base < end {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insertVMA(v VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Base >= v.Base })
	as.vmas = append(as.vmas, VMA{})
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

func (as *AddressSpace) findVMA(addr uint64) *VMA {
	for i := range as.vmas {
		if addr >= as.vmas[i].Base && addr < as.vmas[i].End() {
			return &as.vmas[i]
		}
	}
	return nil
}

// VMAs returns a copy of the current mapping list, sorted by base address.
func (as *AddressSpace) VMAs() []VMA {
	return as.AppendVMAs(nil)
}

// AppendVMAs appends the current mapping list, sorted by base address, to
// buf and returns the extended slice. The allocation-free variant of VMAs
// for callers with a reusable buffer.
func (as *AddressSpace) AppendVMAs(buf []VMA) []VMA {
	return append(buf, as.vmas...)
}

// FindFree returns the lowest page-aligned base >= hint where a region of
// the given length would not overlap an existing VMA.
func (as *AddressSpace) FindFree(hint, length uint64) uint64 {
	base := (hint + as.pageSize - 1) &^ (as.pageSize - 1)
	for {
		if !as.overlaps(base, length) {
			return base
		}
		// jump past the first overlapping VMA
		end := base + length
		next := base + as.pageSize
		for _, v := range as.vmas {
			if base < v.End() && v.Base < end && v.End() > next {
				next = v.End()
			}
		}
		base = next
	}
}

// Fork creates a copy-on-write clone: the child shares every frame with the
// parent, and both sides will copy on their next write to a shared page.
// The child's soft-dirty bits are copied from the parent's (callers that
// want a clean slate call ClearSoftDirty on the clone).
func (as *AddressSpace) Fork() *AddressSpace {
	child := &AddressSpace{
		pageSize:  as.pageSize,
		pageShift: as.pageShift,
		pages:     make(map[uint64]*pte, len(as.pages)),
		vmas:      make([]VMA, len(as.vmas)),
		brk:       as.brk,
		brkBase:   as.brkBase,
	}
	copy(child.vmas, as.vmas)
	// One pte slab for the whole child page table: a fork is O(pages) map
	// inserts plus a single allocation, not an allocation per page. The
	// capacity is exact, so the slab never reallocates and the stored
	// pointers stay valid.
	slab := make([]pte, 0, len(as.pages))
	for vpn, p := range as.pages {
		p.frame.ref++
		slab = append(slab, pte{frame: p.frame, prot: p.prot, softDirty: p.softDirty})
		child.pages[vpn] = &slab[len(slab)-1]
	}
	as.invalidateTLB()
	return child
}

// Release drops every frame reference held by the address space. After
// Release the address space must not be used. It exists so that discarded
// checkpoints and dead checkers stop inflating map counts.
func (as *AddressSpace) Release() {
	for _, p := range as.pages {
		p.frame.ref--
	}
	clear(as.pages)
	as.vmas = nil
	as.invalidateTLB()
}

func (as *AddressSpace) lookupRead(addr uint64) (*pte, *Fault) {
	vpn := addr >> as.pageShift
	e := &as.tlbRead[vpn&(tlbSize-1)]
	if e.gen == as.tlbGen && e.vpn == vpn && e.p != nil {
		return e.p, nil
	}
	p, ok := as.pages[vpn]
	if !ok {
		return nil, &Fault{Addr: addr, Kind: FaultUnmapped}
	}
	if p.prot&ProtRead == 0 {
		return nil, &Fault{Addr: addr, Kind: FaultProt}
	}
	e.vpn, e.p, e.gen = vpn, p, as.tlbGen
	return p, nil
}

// lookupWrite resolves a PTE for writing, performing copy-on-write if the
// frame is shared. The returned bool reports whether a COW copy happened,
// so the interpreter can charge the page-copy cost to the faulting process.
func (as *AddressSpace) lookupWrite(addr uint64) (*pte, bool, *Fault) {
	vpn := addr >> as.pageShift
	e := &as.tlbWrite[vpn&(tlbSize-1)]
	if e.gen == as.tlbGen && e.vpn == vpn && e.p != nil {
		// A cached write translation is never COW-shared: any Fork since
		// the fill invalidated the TLB.
		e.p.softDirty = true
		e.p.frame.noteWrite()
		return e.p, false, nil
	}
	p, ok := as.pages[vpn]
	if !ok {
		return nil, false, &Fault{Addr: addr, Write: true, Kind: FaultUnmapped}
	}
	if p.prot&ProtWrite == 0 {
		return nil, false, &Fault{Addr: addr, Write: true, Kind: FaultProt}
	}
	cow := false
	if p.frame.ref > 1 {
		nf := newFrame(as.pageSize)
		copy(nf.data, p.frame.data)
		p.frame.ref--
		p.frame = nf
		as.stats.COWCopies++
		as.stats.COWBytes += as.pageSize
		cow = true
	}
	p.softDirty = true
	p.frame.noteWrite()
	e.vpn, e.p, e.gen = vpn, p, as.tlbGen
	return p, cow, nil
}

// LoadU64 reads a little-endian 64-bit word. Unaligned and page-straddling
// accesses are supported.
func (as *AddressSpace) LoadU64(addr uint64) (uint64, *Fault) {
	off := addr & (as.pageSize - 1)
	if off+8 <= as.pageSize {
		p, f := as.lookupRead(addr)
		if f != nil {
			return 0, f
		}
		return binary.LittleEndian.Uint64(p.frame.data[off:]), nil
	}
	var b [8]byte
	if f := as.Read(addr, b[:]); f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// StoreU64 writes a little-endian 64-bit word, returning whether a COW copy
// occurred.
func (as *AddressSpace) StoreU64(addr, val uint64) (bool, *Fault) {
	off := addr & (as.pageSize - 1)
	if off+8 <= as.pageSize {
		p, cow, f := as.lookupWrite(addr)
		if f != nil {
			return false, f
		}
		binary.LittleEndian.PutUint64(p.frame.data[off:], val)
		return cow, nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	return as.writeSpan(addr, b[:])
}

// LoadByte reads one byte.
func (as *AddressSpace) LoadByte(addr uint64) (byte, *Fault) {
	p, f := as.lookupRead(addr)
	if f != nil {
		return 0, f
	}
	return p.frame.data[addr&(as.pageSize-1)], nil
}

// StoreByte writes one byte, returning whether a COW copy occurred.
func (as *AddressSpace) StoreByte(addr uint64, val byte) (bool, *Fault) {
	p, cow, f := as.lookupWrite(addr)
	if f != nil {
		return false, f
	}
	p.frame.data[addr&(as.pageSize-1)] = val
	return cow, nil
}

// Read fills dst from guest memory starting at addr.
func (as *AddressSpace) Read(addr uint64, dst []byte) *Fault {
	for len(dst) > 0 {
		p, f := as.lookupRead(addr)
		if f != nil {
			return f
		}
		off := addr & (as.pageSize - 1)
		n := copy(dst, p.frame.data[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// Write copies src into guest memory starting at addr, with COW handling.
func (as *AddressSpace) Write(addr uint64, src []byte) *Fault {
	_, f := as.writeSpan(addr, src)
	return f
}

func (as *AddressSpace) writeSpan(addr uint64, src []byte) (bool, *Fault) {
	anyCow := false
	for len(src) > 0 {
		p, cow, f := as.lookupWrite(addr)
		if f != nil {
			return anyCow, f
		}
		anyCow = anyCow || cow
		off := addr & (as.pageSize - 1)
		n := copy(p.frame.data[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return anyCow, nil
}

// ClearSoftDirty clears the soft-dirty bit on every page, mirroring a write
// to /proc/pid/clear_refs. Parallaft calls this at the start of each
// segment (§5.2.1 "runtime work").
func (as *AddressSpace) ClearSoftDirty() {
	for _, p := range as.pages {
		p.softDirty = false
	}
}

// DirtyMode selects the dirty-page discovery mechanism (§4.4).
type DirtyMode uint8

// Dirty-page tracking modes.
const (
	// DirtySoft uses per-PTE soft-dirty bits (Linux x86_64 mechanism).
	DirtySoft DirtyMode = iota
	// DirtyMapCount reports pages whose frame is mapped exactly once
	// (the PAGEMAP_SCAN ioctl technique used on AArch64): such a page is
	// private to this address space, hence new or modified since the fork.
	DirtyMapCount
)

// DirtyPages returns the sorted virtual page numbers considered modified
// under the given mode.
func (as *AddressSpace) DirtyPages(mode DirtyMode) []uint64 {
	return as.AppendDirtyPages(mode, nil)
}

// AppendDirtyPages appends the modified page numbers under the given mode to
// buf and returns the extended slice, sorted within the appended region.
// Passing a reused buf[:0] makes steady-state dirty discovery allocation-free.
func (as *AddressSpace) AppendDirtyPages(mode DirtyMode, buf []uint64) []uint64 {
	out := buf
	for vpn, p := range as.pages {
		switch mode {
		case DirtySoft:
			if p.softDirty {
				out = append(out, vpn)
			}
		case DirtyMapCount:
			if p.frame.ref == 1 {
				out = append(out, vpn)
			}
		}
	}
	slices.Sort(out[len(buf):])
	return out
}

// DiffFrames returns, sorted, the virtual page numbers whose backing frame
// differs between two address spaces, including pages mapped in only one of
// them. For two checkpoints of the same process taken at consecutive
// segment boundaries this is exactly the set of pages the process modified
// (COW gave them new frames), created, or unmapped during the segment —
// the page-level diff Parallaft's AArch64 map-count technique computes.
func DiffFrames(a, b *AddressSpace) []uint64 {
	return AppendDiffFrames(a, b, nil)
}

// AppendDiffFrames appends the frame-diff page numbers to buf and returns
// the extended slice, sorted within the appended region. The allocation-free
// variant of DiffFrames for callers with a reusable buffer.
func AppendDiffFrames(a, b *AddressSpace, buf []uint64) []uint64 {
	out := buf
	for vpn, pa := range a.pages {
		pb, ok := b.pages[vpn]
		if !ok || pb.frame != pa.frame {
			out = append(out, vpn)
		}
	}
	for vpn := range b.pages {
		if _, ok := a.pages[vpn]; !ok {
			out = append(out, vpn)
		}
	}
	slices.Sort(out[len(buf):])
	return out
}

// PageData returns the frame contents backing the given virtual page number,
// or nil if unmapped. The returned slice aliases the frame; callers must
// treat it as read-only.
func (as *AddressSpace) PageData(vpn uint64) []byte {
	p, ok := as.pages[vpn]
	if !ok {
		return nil
	}
	return p.frame.data
}

// FrameAt returns the frame backing the given virtual page number, or nil
// if unmapped. Frames are shared COW across forks, so comparing the frames
// two address spaces hold at the same page is an O(1) content-equality
// fast path.
func (as *AddressSpace) FrameAt(vpn uint64) *Frame {
	p, ok := as.pages[vpn]
	if !ok {
		return nil
	}
	return p.frame
}

// FrameRef is one mapped page of an address space, exposed for snapshot
// export: its page number, effective protection, and backing frame.
type FrameRef struct {
	VPN   uint64
	Prot  Prot
	Frame *Frame
}

// FrameRefs enumerates every mapped page sorted by page number. The frames
// alias the address space's live page table; callers must not mutate their
// contents and should consume the snapshot while the guest is paused.
func (as *AddressSpace) FrameRefs() []FrameRef {
	out := make([]FrameRef, 0, len(as.pages))
	for vpn, p := range as.pages {
		out = append(out, FrameRef{VPN: vpn, Prot: p.prot, Frame: p.frame})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VPN < out[j].VPN })
	return out
}

// MapCountOf returns the frame map count for the page containing addr, or 0
// if unmapped.
func (as *AddressSpace) MapCountOf(addr uint64) int {
	p, ok := as.pages[addr>>as.pageShift]
	if !ok {
		return 0
	}
	return p.frame.ref
}

// PageCount returns the number of mapped pages.
func (as *AddressSpace) PageCount() int { return len(as.pages) }

// RSSBytes returns the resident set size: every mapped page counted in full.
func (as *AddressSpace) RSSBytes() uint64 {
	return uint64(len(as.pages)) * as.pageSize
}

// PSSBytes returns the proportional set size: each page's size divided by
// the number of address spaces sharing its frame. The paper samples summed
// PSS to measure memory overhead because COW sharing makes RSS misleading
// (§5.4, footnote 12).
func (as *AddressSpace) PSSBytes() float64 {
	var pss float64
	for _, p := range as.pages {
		pss += float64(as.pageSize) / float64(p.frame.ref)
	}
	return pss
}

// SharedWith reports how many pages this address space currently shares
// (map count > 1) versus owns privately.
func (as *AddressSpace) SharedWith() (shared, private int) {
	for _, p := range as.pages {
		if p.frame.ref > 1 {
			shared++
		} else {
			private++
		}
	}
	return shared, private
}
