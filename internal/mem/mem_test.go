package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parallaft/internal/hashx"
)

const pg = 16 * 1024

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(pg)
}

func mustMap(t *testing.T, as *AddressSpace, base, length uint64) {
	t.Helper()
	if err := as.Map(base, length, ProtRW, "test"); err != nil {
		t.Fatalf("map [%#x,+%#x): %v", base, length, err)
	}
}

func TestNewAddressSpaceRejectsBadPageSize(t *testing.T) {
	for _, size := range []uint64{0, 3, 1000, pg + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("page size %d accepted", size)
				}
			}()
			NewAddressSpace(size)
		}()
	}
}

func TestMapUnmapBasics(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*pg)

	if as.PageCount() != 2 {
		t.Errorf("page count = %d, want 2", as.PageCount())
	}
	if _, f := as.LoadU64(0x10000); f != nil {
		t.Errorf("read of mapped page faulted: %v", f)
	}
	if _, f := as.LoadU64(0x10000 + 2*pg); f == nil {
		t.Error("read past mapping did not fault")
	}

	// overlap rejected
	if err := as.Map(0x10000+pg, pg, ProtRW, "x"); err == nil {
		t.Error("overlapping map accepted")
	}
	// unaligned rejected
	if err := as.Map(0x10000+2*pg+8, pg, ProtRW, "x"); err == nil {
		t.Error("unaligned map accepted")
	}

	if err := as.Unmap(0x10000, 2*pg); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if _, f := as.LoadU64(0x10000); f == nil {
		t.Error("read after unmap did not fault")
	}
	if err := as.Unmap(0x10000, 2*pg); err == nil {
		t.Error("double unmap accepted")
	}
}

func TestProtection(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, pg)
	if err := as.Protect(0x10000, pg, ProtRead); err != nil {
		t.Fatalf("protect: %v", err)
	}
	if _, f := as.LoadU64(0x10000); f != nil {
		t.Errorf("read of read-only page faulted: %v", f)
	}
	_, f := as.StoreU64(0x10000, 1)
	if f == nil || f.Kind != FaultProt || !f.Write {
		t.Errorf("write to read-only page: fault = %+v, want write prot fault", f)
	}
	if err := as.Protect(0x10000, pg, ProtNone); err != nil {
		t.Fatalf("protect none: %v", err)
	}
	if _, f := as.LoadU64(0x10000); f == nil {
		t.Error("read of PROT_NONE page did not fault")
	}
}

func TestLoadStoreWidths(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0, pg)

	if _, f := as.StoreU64(8, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	v, f := as.LoadU64(8)
	if f != nil || v != 0x1122334455667788 {
		t.Errorf("LoadU64 = %#x, %v", v, f)
	}
	b, f := as.LoadByte(8)
	if f != nil || b != 0x88 {
		t.Errorf("little-endian low byte = %#x, want 0x88", b)
	}
	if _, f := as.StoreByte(15, 0xff); f != nil {
		t.Fatal(f)
	}
	v, _ = as.LoadU64(8)
	if v != 0xff22334455667788 {
		t.Errorf("byte store merged wrong: %#x", v)
	}
}

func TestUnalignedAndStraddlingAccess(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0, 2*pg)
	addr := uint64(pg - 4) // straddles the page boundary
	if _, f := as.StoreU64(addr, 0xdeadbeefcafef00d); f != nil {
		t.Fatal(f)
	}
	v, f := as.LoadU64(addr)
	if f != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("straddling access = %#x, %v", v, f)
	}
}

func TestForkCOWIsolation(t *testing.T) {
	parent := newAS(t)
	mustMap(t, parent, 0, pg)
	parent.StoreU64(0, 111) //nolint:errcheck

	child := parent.Fork()
	if got := child.MapCountOf(0); got != 2 {
		t.Errorf("shared frame map count = %d, want 2", got)
	}

	// child write must not affect the parent
	child.StoreU64(0, 222) //nolint:errcheck
	if v, _ := parent.LoadU64(0); v != 111 {
		t.Errorf("parent sees child write: %d", v)
	}
	if v, _ := child.LoadU64(0); v != 222 {
		t.Errorf("child lost its write: %d", v)
	}
	// after COW both sides own their frame privately
	if parent.MapCountOf(0) != 1 || child.MapCountOf(0) != 1 {
		t.Errorf("map counts after COW = %d/%d, want 1/1",
			parent.MapCountOf(0), child.MapCountOf(0))
	}
	st := child.Stats()
	if st.COWCopies != 1 || st.COWBytes != pg {
		t.Errorf("child COW stats = %+v", st)
	}
	if parent.Stats().COWCopies != 0 {
		t.Error("parent charged for child's COW")
	}
}

func TestForkParentWriteCopies(t *testing.T) {
	parent := newAS(t)
	mustMap(t, parent, 0, pg)
	child := parent.Fork()
	parent.StoreU64(0, 999) //nolint:errcheck
	if v, _ := child.LoadU64(0); v != 0 {
		t.Errorf("child sees parent's post-fork write: %d", v)
	}
	if parent.Stats().COWCopies != 1 {
		t.Error("parent write to shared page did not COW")
	}
}

func TestRelease(t *testing.T) {
	parent := newAS(t)
	mustMap(t, parent, 0, pg)
	child := parent.Fork()
	if parent.MapCountOf(0) != 2 {
		t.Fatal("expected shared frame")
	}
	child.Release()
	if parent.MapCountOf(0) != 1 {
		t.Errorf("map count after child release = %d, want 1", parent.MapCountOf(0))
	}
}

func TestSoftDirtyLifecycle(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0, 4*pg)
	// fresh pages are born dirty
	if got := len(as.DirtyPages(DirtySoft)); got != 4 {
		t.Errorf("fresh pages dirty = %d, want 4", got)
	}
	as.ClearSoftDirty()
	if got := len(as.DirtyPages(DirtySoft)); got != 0 {
		t.Errorf("dirty after clear = %d, want 0", got)
	}
	as.StoreU64(2*pg+8, 1) //nolint:errcheck
	dirty := as.DirtyPages(DirtySoft)
	if len(dirty) != 1 || dirty[0] != 2 {
		t.Errorf("dirty after one write = %v, want [2]", dirty)
	}
}

func TestDirtyMapCountMode(t *testing.T) {
	parent := newAS(t)
	mustMap(t, parent, 0, 4*pg)
	child := parent.Fork()
	// all shared: nothing "dirty" by map count
	if got := len(child.DirtyPages(DirtyMapCount)); got != 0 {
		t.Errorf("shared pages reported dirty = %d", got)
	}
	child.StoreU64(3*pg, 5) //nolint:errcheck
	dirty := child.DirtyPages(DirtyMapCount)
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Errorf("map-count dirty = %v, want [3]", dirty)
	}
}

func TestDiffFrames(t *testing.T) {
	base := newAS(t)
	mustMap(t, base, 0, 4*pg)
	base.StoreU64(0, 1) //nolint:errcheck

	cp1 := base.Fork()
	base.StoreU64(pg+8, 2) //nolint:errcheck // modifies page 1
	if err := base.Map(0x100000, pg, ProtRW, "new"); err != nil {
		t.Fatal(err)
	}
	cp2 := base.Fork()

	diff := DiffFrames(cp1, cp2)
	want := map[uint64]bool{1: true, 0x100000 / pg: true}
	if len(diff) != len(want) {
		t.Fatalf("diff = %v, want pages %v", diff, want)
	}
	for _, vpn := range diff {
		if !want[vpn] {
			t.Errorf("unexpected diff page %#x", vpn)
		}
	}
}

func TestBrk(t *testing.T) {
	as := newAS(t)
	as.SetBrk(0x40000)
	if got := as.Brk(0); got != 0x40000 {
		t.Errorf("brk query = %#x", got)
	}
	if got := as.Brk(0x40000 + 3*pg + 100); got != 0x40000+3*pg+100 {
		t.Errorf("brk grow = %#x", got)
	}
	// the covering pages must be mapped
	if _, f := as.StoreU64(0x40000+3*pg+88, 1); f != nil {
		t.Errorf("write inside brk region faulted: %v", f)
	}
	// shrink is ignored
	if got := as.Brk(0x40000); got != 0x40000+3*pg+100 {
		t.Errorf("brk shrink changed the break: %#x", got)
	}
}

func TestFindFree(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x20000, 2*pg)
	got := as.FindFree(0x20000, pg)
	if got < 0x20000+2*pg {
		t.Errorf("FindFree returned %#x inside an existing mapping", got)
	}
	if err := as.Map(got, pg, ProtRW, "x"); err != nil {
		t.Errorf("FindFree result unusable: %v", err)
	}
}

func TestPSSAccounting(t *testing.T) {
	parent := newAS(t)
	mustMap(t, parent, 0, 4*pg)
	if got := parent.PSSBytes(); got != 4*pg {
		t.Errorf("sole owner PSS = %v, want %v", got, 4*pg)
	}
	child := parent.Fork()
	if got := parent.PSSBytes(); got != 2*pg {
		t.Errorf("PSS with one sharer = %v, want %v", got, 2*pg)
	}
	// parent+child PSS must equal total physical memory
	total := parent.PSSBytes() + child.PSSBytes()
	if total != 4*pg {
		t.Errorf("PSS sum = %v, want %v", total, 4*pg)
	}
	child.StoreU64(0, 1) //nolint:errcheck // private copy: +1 frame
	total = parent.PSSBytes() + child.PSSBytes()
	if total != 5*pg {
		t.Errorf("PSS sum after COW = %v, want %v", total, 5*pg)
	}
	if parent.RSSBytes() != 4*pg || child.RSSBytes() != 4*pg {
		t.Error("RSS should count full pages regardless of sharing")
	}
}

func TestVMAListAndSharedCounts(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x30000, pg)
	mustMap(t, as, 0x10000, pg)
	vmas := as.VMAs()
	if len(vmas) != 2 || vmas[0].Base != 0x10000 || vmas[1].Base != 0x30000 {
		t.Errorf("VMAs not sorted: %+v", vmas)
	}
	child := as.Fork()
	shared, private := child.SharedWith()
	if shared != 2 || private != 0 {
		t.Errorf("shared/private = %d/%d, want 2/0", shared, private)
	}
}

// TestForkIsolationProperty: random interleaved writes to parent and child
// must never leak across the fork, and PSS must always sum to the real
// frame count.
func TestForkIsolationProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewAddressSpace(pg)
		if err := parent.Map(0, 8*pg, ProtRW, "arena"); err != nil {
			return false
		}
		// distinct fill so any leak is visible
		for i := uint64(0); i < 8; i++ {
			parent.StoreU64(i*pg, i+1000) //nolint:errcheck
		}
		child := parent.Fork()
		model := map[uint64]uint64{} // child's expected view
		for i := uint64(0); i < 8; i++ {
			model[i] = i + 1000
		}
		for _, op := range ops {
			page := uint64(op % 8)
			val := uint64(rng.Int63())
			if op&0x100 != 0 {
				child.StoreU64(page*pg, val) //nolint:errcheck
				model[page] = val
			} else {
				parent.StoreU64(page*pg, val) //nolint:errcheck
			}
		}
		for page, want := range model {
			got, fault := child.LoadU64(page * pg)
			if fault != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- frame identity and hash memoization -----------------------------------

const testSeed = 0x9a7a11af7

func TestFrameIdentityStable(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*pg)
	f := as.FrameAt(as.VPN(0x10000))
	if f == nil {
		t.Fatal("mapped page has no frame")
	}
	if f.ID() == 0 {
		t.Error("frame ID not assigned")
	}
	if g := as.FrameAt(as.VPN(0x10000 + pg)); g.ID() == f.ID() {
		t.Error("distinct frames share an ID")
	}
	// Writes keep the identity (only COW redirects change the frame).
	as.StoreU64(0x10000, 7) //nolint:errcheck
	if as.FrameAt(as.VPN(0x10000)) != f {
		t.Error("private write changed the frame")
	}
	// A fork shares the frame: same pointer, same ID on both sides.
	child := as.Fork()
	if child.FrameAt(child.VPN(0x10000)) != f {
		t.Error("fork did not share the frame")
	}
	if as.FrameAt(as.VPN(0x20000)) != nil {
		t.Error("unmapped page returned a frame")
	}
}

// TestContentHashInvalidation is the hash-cache invalidation contract: a
// memoized frame hash must never be served stale — in particular, a COW
// write to a shared frame must leave every sharer's hash correct.
func TestContentHashInvalidation(t *testing.T) {
	const base = 0x10000
	cases := []struct {
		name string
		// mutate acts on the parent/child pair after both hashes were
		// memoized; wantRecompute lists which sides must see a fresh
		// (non-cached) and correct hash afterwards.
		mutate              func(t *testing.T, parent, child *AddressSpace)
		wantParentRecompute bool
		wantChildRecompute  bool
	}{
		{
			name:                "no write keeps both memos",
			mutate:              func(t *testing.T, parent, child *AddressSpace) {},
			wantParentRecompute: false,
			wantChildRecompute:  false,
		},
		{
			name: "child COW write invalidates only the child",
			mutate: func(t *testing.T, parent, child *AddressSpace) {
				if _, f := child.StoreU64(base, 0xdead); f != nil {
					t.Fatal(f)
				}
			},
			wantParentRecompute: false,
			wantChildRecompute:  true,
		},
		{
			name: "parent COW write invalidates only the parent",
			mutate: func(t *testing.T, parent, child *AddressSpace) {
				if _, f := parent.StoreU64(base, 0xbeef); f != nil {
					t.Fatal(f)
				}
			},
			wantParentRecompute: true,
			wantChildRecompute:  false,
		},
		{
			name: "private rewrite after COW invalidates again",
			mutate: func(t *testing.T, parent, child *AddressSpace) {
				// First write COWs to a private frame; the second write hits
				// the same private frame (often via the write TLB) and must
				// still invalidate its memo.
				if _, f := child.StoreU64(base, 1); f != nil {
					t.Fatal(f)
				}
				if _, fr := child.FrameAt(child.VPN(base)).ContentHash(testSeed); fr {
					t.Fatal("memo survived the COW write")
				}
				if _, f := child.StoreU64(base+8, 2); f != nil {
					t.Fatal(f)
				}
			},
			wantParentRecompute: false,
			wantChildRecompute:  true,
		},
		{
			name: "byte store invalidates",
			mutate: func(t *testing.T, parent, child *AddressSpace) {
				if _, f := child.StoreByte(base+123, 0x5a); f != nil {
					t.Fatal(f)
				}
			},
			wantParentRecompute: false,
			wantChildRecompute:  true,
		},
		{
			name: "bulk write invalidates",
			mutate: func(t *testing.T, parent, child *AddressSpace) {
				if f := child.Write(base+256, []byte("not the same bytes")); f != nil {
					t.Fatal(f)
				}
			},
			wantParentRecompute: false,
			wantChildRecompute:  true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parent := newAS(t)
			mustMap(t, parent, base, pg)
			if _, f := parent.StoreU64(base, 42); f != nil {
				t.Fatal(f)
			}
			child := parent.Fork()

			// Memoize both sides (same shared frame: second call must hit).
			pv, _ := parent.FrameAt(parent.VPN(base)).ContentHash(testSeed)
			cv, hit := child.FrameAt(child.VPN(base)).ContentHash(testSeed)
			if !hit || pv != cv {
				t.Fatalf("shared frame not memoized: hit=%v parent=%#x child=%#x", hit, pv, cv)
			}

			tc.mutate(t, parent, child)

			check := func(side string, as *AddressSpace, wantRecompute bool) {
				t.Helper()
				f := as.FrameAt(as.VPN(base))
				got, cached := f.ContentHash(testSeed)
				if cached == wantRecompute {
					t.Errorf("%s: cached=%v, want recompute=%v", side, cached, wantRecompute)
				}
				// The served hash must equal a from-scratch hash of the
				// actual contents — never a stale memo.
				var buf [pg]byte
				if fault := as.Read(base, buf[:]); fault != nil {
					t.Fatal(fault)
				}
				want := hashx.Sum64(testSeed, buf[:])
				if got != want {
					t.Errorf("%s: hash %#x != contents hash %#x (stale memo served)", side, got, want)
				}
			}
			check("parent", parent, tc.wantParentRecompute)
			check("child", child, tc.wantChildRecompute)
		})
	}
}

func TestContentHashSeedIsPartOfTheMemoKey(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, pg)
	f := as.FrameAt(as.VPN(0x10000))
	a, _ := f.ContentHash(1)
	b, cached := f.ContentHash(2)
	if cached {
		t.Error("memo for seed 1 served a seed-2 request")
	}
	if a == b {
		t.Error("different seeds produced the same hash")
	}
	if _, cached := f.ContentHash(2); !cached {
		t.Error("seed-2 memo not installed")
	}
}
