package mem

import "testing"

func TestFrameRefsSortedAndComplete(t *testing.T) {
	as := NewAddressSpace(4096)
	if err := as.Map(0x30000, 2*4096, ProtRW, "b"); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x10000, 2*4096, ProtRead, "a"); err != nil {
		t.Fatal(err)
	}
	refs := as.FrameRefs()
	if len(refs) != 4 {
		t.Fatalf("got %d refs, want 4", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].VPN >= refs[i].VPN {
			t.Fatalf("refs not sorted: vpn[%d]=%#x, vpn[%d]=%#x", i-1, refs[i-1].VPN, i, refs[i].VPN)
		}
	}
	if refs[0].VPN != 0x10000/4096 || refs[0].Prot != ProtRead {
		t.Fatalf("refs[0] = %+v", refs[0])
	}
	if refs[2].VPN != 0x30000/4096 || refs[2].Prot != ProtRW {
		t.Fatalf("refs[2] = %+v", refs[2])
	}
	for _, fr := range refs {
		if fr.Frame != as.FrameAt(fr.VPN) {
			t.Fatalf("ref at %#x does not alias the live frame", fr.VPN)
		}
	}
}

func TestRestoreBrkDoesNotMap(t *testing.T) {
	as := NewAddressSpace(4096)
	// Heap pages come from a snapshot; RestoreBrk must only set the fields.
	if err := as.Map(0x200000, 2*4096, ProtRW, "heap"); err != nil {
		t.Fatal(err)
	}
	as.RestoreBrk(0x200000, 0x201800)
	if as.BrkBase() != 0x200000 || as.CurrentBrk() != 0x201800 {
		t.Fatalf("brk = [%#x, %#x], want [0x200000, 0x201800]", as.BrkBase(), as.CurrentBrk())
	}
	if as.PageCount() != 2 {
		t.Fatalf("RestoreBrk changed the page count to %d", as.PageCount())
	}
	// Growth from the restored break maps only the new page.
	if got := as.Brk(0x202800); got != 0x202800 {
		t.Fatalf("Brk after restore = %#x", got)
	}
	if as.PageCount() != 3 {
		t.Fatalf("page count after growth = %d, want 3", as.PageCount())
	}
}
