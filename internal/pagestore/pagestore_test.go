package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"parallaft/internal/mem"
)

const testPageSize = 4096

// fillPage writes a page worth of bytes derived from tag to addr.
func fillPage(t *testing.T, as *mem.AddressSpace, addr, tag uint64) {
	t.Helper()
	buf := make([]byte, testPageSize)
	for off := 0; off < testPageSize; off += 8 {
		binary.LittleEndian.PutUint64(buf[off:], tag^uint64(off))
	}
	if f := as.Write(addr, buf); f != nil {
		t.Fatalf("write page %#x: %v", addr, f)
	}
}

// internCheckpoint puts every mapped frame of a checkpoint into the store
// and returns the keys, one per page.
func internCheckpoint(s *Store, cp *mem.AddressSpace) []Key {
	refs := cp.FrameRefs()
	keys := make([]Key, 0, len(refs))
	for _, fr := range refs {
		keys = append(keys, s.PutFrame(fr.Frame))
	}
	return keys
}

// TestDedupAcrossCheckpointChain interns a 3-checkpoint COW chain and
// asserts the store holds exactly the unique page contents: the initial
// pages plus the frames dirtied between checkpoints, nothing more.
func TestDedupAcrossCheckpointChain(t *testing.T) {
	const base = 0x10000
	as := mem.NewAddressSpace(testPageSize)
	if err := as.Map(base, 8*testPageSize, mem.ProtRW, "data"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		fillPage(t, as, base+i*testPageSize, 0x1000+i)
	}
	cp1 := as.Fork()

	// Segment 1 dirties pages 1 and 3.
	fillPage(t, as, base+1*testPageSize, 0x2001)
	fillPage(t, as, base+3*testPageSize, 0x2003)
	cp2 := as.Fork()

	// Segment 2 dirties pages 3 (again) and 5.
	fillPage(t, as, base+3*testPageSize, 0x3003)
	fillPage(t, as, base+5*testPageSize, 0x3005)
	cp3 := as.Fork()

	s := New(0x9a7a11af7)
	keys1 := internCheckpoint(s, cp1)
	keys2 := internCheckpoint(s, cp2)
	keys3 := internCheckpoint(s, cp3)

	// Unique contents: 8 initial pages + 2 dirtied in segment 1 + 2 dirtied
	// in segment 2. The other 12 of the 24 puts must dedup.
	const wantUnique = 12
	st := s.Stats()
	if s.Len() != wantUnique {
		t.Fatalf("chunks = %d, want %d", s.Len(), wantUnique)
	}
	if st.StoredBytes != wantUnique*testPageSize {
		t.Errorf("StoredBytes = %d, want %d (unique dirty frames only)",
			st.StoredBytes, wantUnique*testPageSize)
	}
	if st.Puts != 24 {
		t.Errorf("Puts = %d, want 24", st.Puts)
	}
	if st.DedupHits != 24-wantUnique {
		t.Errorf("DedupHits = %d, want %d", st.DedupHits, 24-wantUnique)
	}
	if st.DedupedBytes != (24-wantUnique)*testPageSize {
		t.Errorf("DedupedBytes = %d, want %d", st.DedupedBytes, (24-wantUnique)*testPageSize)
	}

	// Each checkpoint's key list resolves to that checkpoint's bytes.
	for i, fr := range cp2.FrameRefs() {
		got := s.Get(keys2[i])
		if !bytes.Equal(got, fr.Frame.Data()) {
			t.Fatalf("cp2 page %d: stored bytes differ from frame", i)
		}
	}

	// Releasing all three owners drops every chunk to zero: no leaks.
	for _, keys := range [][]Key{keys1, keys2, keys3} {
		for _, k := range keys {
			s.Release(k)
		}
	}
	if s.Len() != 0 {
		t.Errorf("after releasing all owners: %d chunks leaked", s.Len())
	}
	if st := s.Stats(); st.StoredBytes != 0 {
		t.Errorf("after releasing all owners: StoredBytes = %d, want 0", st.StoredBytes)
	}

	cp1.Release()
	cp2.Release()
	cp3.Release()
	as.Release()
}

func TestRefcountLifecycle(t *testing.T) {
	s := New(1)
	data := []byte{1, 2, 3, 4}
	k := s.Put(data)
	if !s.Contains(k) || s.Refs(k) != 1 {
		t.Fatalf("after Put: contains=%v refs=%d", s.Contains(k), s.Refs(k))
	}
	if k2 := s.Put(data); k2 != k {
		t.Fatalf("identical content produced different keys: %#x vs %#x", k2, k)
	}
	if s.Refs(k) != 2 {
		t.Fatalf("refs after duplicate put = %d, want 2", s.Refs(k))
	}
	if err := s.Ref(k); err != nil {
		t.Fatal(err)
	}
	if reclaimed := s.Release(k); reclaimed || s.Refs(k) != 2 {
		t.Fatalf("release 3->2: reclaimed=%v refs=%d", reclaimed, s.Refs(k))
	}
	s.Release(k)
	if reclaimed := s.Release(k); !reclaimed {
		t.Fatal("final release did not reclaim the chunk")
	}
	if s.Contains(k) || s.Len() != 0 {
		t.Fatal("chunk survived its final release")
	}
	if s.Release(k) {
		t.Fatal("release of absent key reported a reclaim")
	}
	if err := s.Ref(k); err == nil {
		t.Fatal("ref of absent key succeeded")
	}
}

func TestInsertTrustsSenderKey(t *testing.T) {
	s := New(7)
	s.Insert(Key(42), []byte("hello"))
	if got := s.Get(Key(42)); string(got) != "hello" {
		t.Fatalf("Get after Insert = %q", got)
	}
	// A second insert under the same key is a dedup hit, not a replacement.
	s.Insert(Key(42), []byte("hello"))
	if s.Refs(Key(42)) != 2 {
		t.Fatalf("refs = %d, want 2", s.Refs(Key(42)))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := New(0xfeed)
	k1 := s.Put([]byte("alpha"))
	k2 := s.Put([]byte("beta"))
	s.Put([]byte("alpha")) // bump k1 to two refs

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Deterministic: the same store serializes to the same bytes.
	var buf2 bytes.Buffer
	if _, err := s.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteTo is not deterministic")
	}

	got, err := ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed() != 0xfeed {
		t.Errorf("seed = %#x, want 0xfeed", got.Seed())
	}
	if string(got.Get(k1)) != "alpha" || string(got.Get(k2)) != "beta" {
		t.Error("contents did not survive the round trip")
	}
	if got.Refs(k1) != 2 || got.Refs(k2) != 1 {
		t.Errorf("refs = %d,%d, want 2,1", got.Refs(k1), got.Refs(k2))
	}
	if st := got.Stats(); st.StoredBytes != uint64(len("alpha")+len("beta")) {
		t.Errorf("StoredBytes = %d after reload", st.StoredBytes)
	}
}

func TestReadFromRejectsCorruptInput(t *testing.T) {
	s := New(3)
	s.Put([]byte("payload"))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTASTORE"), full[9:]...),
		"truncated": full[:len(full)-3],
	}
	for name, in := range cases {
		if _, err := ReadFrom(bytes.NewReader(in)); !errors.Is(err, ErrBadStore) {
			t.Errorf("%s: err = %v, want ErrBadStore", name, err)
		}
	}
}

// TestPutFramesMatchesPutFrame interns the same checkpoint through the
// batch API and the per-frame API into two stores and requires identical
// keys, contents, and accounting.
func TestPutFramesMatchesPutFrame(t *testing.T) {
	const base = 0x20000
	as := mem.NewAddressSpace(testPageSize)
	if err := as.Map(base, 6*testPageSize, mem.ProtRW, "data"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 6; i++ {
		// Pages 4 and 5 repeat page 0's content so the batch path also
		// exercises dedup hits.
		tag := 0x4000 + i%4
		fillPage(t, as, base+i*testPageSize, tag)
	}

	perFrame := New(9)
	wantKeys := internCheckpoint(perFrame, as)

	batch := New(9)
	refs := as.FrameRefs()
	frames := make([]*mem.Frame, 0, len(refs))
	for _, fr := range refs {
		frames = append(frames, fr.Frame)
	}
	gotKeys := batch.PutFrames(frames, nil)

	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("PutFrames returned %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Errorf("key %d: batch %#x != per-frame %#x", i, gotKeys[i], wantKeys[i])
		}
	}
	if bs, ps := batch.Stats(), perFrame.Stats(); bs != ps {
		t.Errorf("stats diverge: batch %+v, per-frame %+v", bs, ps)
	}
	for _, k := range wantKeys {
		if !bytes.Equal(batch.Get(k), perFrame.Get(k)) {
			t.Errorf("chunk %#x contents diverge between batch and per-frame", k)
		}
		if batch.Refs(k) != perFrame.Refs(k) {
			t.Errorf("chunk %#x refs: batch %d != per-frame %d", k, batch.Refs(k), perFrame.Refs(k))
		}
	}
}
