package pagestore

import "parallaft/internal/telemetry"

// storeMetrics holds the store's instrument handles. All nil (and so
// no-ops) until SetMetrics attaches a registry.
//
// The gauges are maintained additively — several stores can share one
// registry (the checker daemon opens a store per connection) and the
// gauges then read the fleet-wide totals.
type storeMetrics struct {
	chunks      *telemetry.Gauge
	storedBytes *telemetry.Gauge

	puts         *telemetry.Counter
	dedupHits    *telemetry.Counter
	dedupedBytes *telemetry.Counter
	refChurn     *telemetry.Counter
}

// SetMetrics attaches a registry to the store. Chunks already resident are
// folded into the gauges so attaching mid-life stays accurate. A nil
// registry detaches (handles revert to no-ops).
func (s *Store) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.tm = storeMetrics{}
		return
	}
	s.tm.chunks = reg.Gauge("paft_pagestore_chunks",
		"content-addressed chunks currently resident (all attached stores)")
	s.tm.storedBytes = reg.Gauge("paft_pagestore_stored_bytes",
		"unique chunk bytes currently resident (all attached stores)")
	s.tm.puts = reg.Counter("paft_pagestore_puts_total",
		"chunk interning operations (Put, PutFrame, Insert)")
	s.tm.dedupHits = reg.Counter("paft_pagestore_dedup_hits_total",
		"puts served by an already-resident chunk")
	s.tm.dedupedBytes = reg.Counter("paft_pagestore_deduped_bytes_total",
		"bytes not stored because an identical chunk was already resident")
	s.tm.refChurn = reg.Counter("paft_pagestore_refcount_ops_total",
		"reference-count movements: interns, explicit refs, and releases")
	s.tm.chunks.Add(float64(s.stats.Chunks))
	s.tm.storedBytes.Add(float64(s.stats.StoredBytes))
}
