// Package pagestore implements a content-addressed, reference-counted
// chunk store for checkpoint pages.
//
// Parallaft's checkpoints are COW forks: across a chain of N consecutive
// checkpoints, only the frames dirtied inside each segment get private
// copies — everything else is the same physical frame. The store exposes
// exactly that sharing to serialized form: chunks are keyed by the XXH64
// hash of their contents, so interning a chain of checkpoints stores each
// unique frame once no matter how many checkpoints (or check packets)
// reference it. Reference counts track how many owners an interned chunk
// has, so releasing a consumed packet's pages reclaims chunks as soon as
// the last reference drops — the serialized analogue of frame refcounts in
// internal/mem.
//
// PutFrame keys a frame by mem.Frame.ContentHash under the store's seed.
// When the seed equals the comparison subsystem's page-hash seed, the
// frame's single-entry hash memo is shared between export and comparison,
// so a frame is hashed at most once per write generation across both.
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"parallaft/internal/hashx"
	"parallaft/internal/mem"
)

// Key is the content address of a chunk: the XXH64 hash of its bytes under
// the store's seed. Chunk equality is assumed from key equality (a 64-bit
// collision at simulation scale is treated as negligible, like every other
// use of the page hash in the comparison subsystem).
type Key uint64

// Stats describes the store's dedup accounting.
type Stats struct {
	Chunks       int    // chunks currently resident
	StoredBytes  uint64 // bytes currently resident (unique chunk contents)
	Puts         uint64 // total Put/PutFrame/Insert calls
	DedupHits    uint64 // puts served by an already-resident chunk
	DedupedBytes uint64 // bytes not stored thanks to dedup
}

type chunk struct {
	data []byte
	refs int
}

// Store is a content-addressed chunk store. It is safe for concurrent use:
// a checker daemon's workers read chunks while the intake goroutine interns
// new ones.
type Store struct {
	mu     sync.Mutex
	seed   uint64
	chunks map[Key]*chunk
	stats  Stats
	tm     storeMetrics
}

// New creates an empty store whose keys are XXH64 hashes under seed.
func New(seed uint64) *Store {
	return &Store{seed: seed, chunks: make(map[Key]*chunk)}
}

// Seed returns the store's hashing seed.
func (s *Store) Seed() uint64 { return s.seed }

// Put interns a copy of data and returns its key. If an identical chunk is
// already resident, its reference count is incremented and no bytes are
// copied or stored.
func (s *Store) Put(data []byte) Key {
	k := Key(hashx.Sum64(s.seed, data))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intern(k, data, true)
	return k
}

// PutFrame interns a page frame's contents, serving the key from the
// frame's memoized content hash when possible (shared with the comparison
// subsystem when the seeds match). The frame's bytes are only copied when
// the chunk is not already resident.
func (s *Store) PutFrame(f *mem.Frame) Key {
	sum, _ := f.ContentHash(s.seed)
	k := Key(sum)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intern(k, f.Data(), true)
	return k
}

// PutFrames interns a batch of page frames under a single lock acquisition,
// appending each frame's key to keys and returning the extended slice. The
// content hashes — the expensive part — are computed before the lock is
// taken, so a large checkpoint export serialises only the map inserts.
// Accounting is identical to calling PutFrame per frame.
func (s *Store) PutFrames(frames []*mem.Frame, keys []Key) []Key {
	base := len(keys)
	for _, f := range frames {
		sum, _ := f.ContentHash(s.seed)
		keys = append(keys, Key(sum))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range frames {
		s.intern(keys[base+i], f.Data(), true)
	}
	return keys
}

// Insert interns a chunk under a sender-computed key (the socket transport
// trusts the client's content addressing; a wrong key only harms the
// sender's own verdicts). Resident chunks take a reference instead.
func (s *Store) Insert(k Key, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intern(k, data, true)
}

// intern adds one reference to the chunk at k, storing a copy of data if it
// is not resident. Callers hold s.mu. countPut selects Puts accounting.
func (s *Store) intern(k Key, data []byte, countPut bool) {
	if countPut {
		s.stats.Puts++
		s.tm.puts.Inc()
	}
	s.tm.refChurn.Inc()
	if c, ok := s.chunks[k]; ok {
		c.refs++
		s.stats.DedupHits++
		s.stats.DedupedBytes += uint64(len(data))
		s.tm.dedupHits.Inc()
		s.tm.dedupedBytes.Add(uint64(len(data)))
		return
	}
	s.chunks[k] = &chunk{data: append([]byte(nil), data...), refs: 1}
	s.stats.Chunks++
	s.stats.StoredBytes += uint64(len(data))
	s.tm.chunks.Add(1)
	s.tm.storedBytes.Add(float64(len(data)))
}

// Get returns the chunk contents for k, or nil when absent. The returned
// slice aliases the store; callers must treat it as read-only.
func (s *Store) Get(k Key) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chunks[k]; ok {
		return c.data
	}
	return nil
}

// Contains reports whether a chunk is resident.
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[k]
	return ok
}

// Ref adds a reference to a resident chunk.
func (s *Store) Ref(k Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[k]
	if !ok {
		return fmt.Errorf("pagestore: ref of absent chunk %#x", uint64(k))
	}
	c.refs++
	s.tm.refChurn.Inc()
	return nil
}

// Release drops one reference from the chunk at k, reclaiming it when the
// count reaches zero. It reports whether the chunk was reclaimed. Releasing
// an absent key is a no-op.
func (s *Store) Release(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[k]
	if !ok {
		return false
	}
	c.refs--
	s.tm.refChurn.Inc()
	if c.refs > 0 {
		return false
	}
	delete(s.chunks, k)
	s.stats.Chunks--
	s.stats.StoredBytes -= uint64(len(c.data))
	s.tm.chunks.Add(-1)
	s.tm.storedBytes.Add(-float64(len(c.data)))
	return true
}

// Refs returns the reference count of the chunk at k (0 when absent).
func (s *Store) Refs(k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chunks[k]; ok {
		return c.refs
	}
	return 0
}

// Len returns the number of resident chunks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chunks)
}

// Stats returns a snapshot of the dedup accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Each calls f for every resident chunk in ascending key order, on a
// snapshot taken when Each is called (f runs without the store lock; the
// data slices alias the store and must be treated as read-only).
func (s *Store) Each(f func(Key, []byte)) {
	s.mu.Lock()
	type kv struct {
		k Key
		d []byte
	}
	snap := make([]kv, 0, len(s.chunks))
	for k, c := range s.chunks {
		snap = append(snap, kv{k, c.data})
	}
	s.mu.Unlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].k < snap[j].k })
	for _, c := range snap {
		f(c.k, c.d)
	}
}

// --- serialization ----------------------------------------------------------

// storeMagic identifies a serialized store ("PAFTPST" + format version 1).
var storeMagic = [8]byte{'P', 'A', 'F', 'T', 'P', 'S', 'T', 1}

// ErrBadStore reports a malformed serialized store.
var ErrBadStore = errors.New("pagestore: malformed store file")

// maxStoredChunk bounds a single chunk read back from disk, so a corrupt
// length field cannot exhaust host memory.
const maxStoredChunk = 64 << 20

// WriteTo serializes the store: header, then chunks sorted by key so the
// output is deterministic for a given content set.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	keys := make([]Key, 0, len(s.chunks))
	for k := range s.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var n int64
	write := func(b []byte) error {
		m, err := w.Write(b)
		n += int64(m)
		return err
	}
	var hdr [8]byte
	defer s.mu.Unlock()
	if err := write(storeMagic[:]); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint64(hdr[:], s.seed)
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(keys)))
	if err := write(hdr[:4]); err != nil {
		return n, err
	}
	for _, k := range keys {
		c := s.chunks[k]
		binary.LittleEndian.PutUint64(hdr[:], uint64(k))
		if err := write(hdr[:]); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(c.refs))
		if err := write(hdr[:4]); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(c.data)))
		if err := write(hdr[:4]); err != nil {
			return n, err
		}
		if err := write(c.data); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadFrom deserializes a store written by WriteTo, restoring chunk
// contents and reference counts.
func ReadFrom(r io.Reader) (*Store, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(r, b8[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	s := New(binary.LittleEndian.Uint64(b8[:]))
	if _, err := io.ReadFull(r, b8[:4]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	count := binary.LittleEndian.Uint32(b8[:4])
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		key := Key(binary.LittleEndian.Uint64(b8[:]))
		if _, err := io.ReadFull(r, b8[:4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		refs := int(binary.LittleEndian.Uint32(b8[:4]))
		if _, err := io.ReadFull(r, b8[:4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		size := binary.LittleEndian.Uint32(b8[:4])
		if size > maxStoredChunk {
			return nil, fmt.Errorf("%w: chunk %#x size %d exceeds limit", ErrBadStore, uint64(key), size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		if _, dup := s.chunks[key]; dup {
			return nil, fmt.Errorf("%w: duplicate chunk %#x", ErrBadStore, uint64(key))
		}
		s.chunks[key] = &chunk{data: data, refs: refs}
		s.stats.Chunks++
		s.stats.StoredBytes += uint64(size)
	}
	return s, nil
}
