package workload

import (
	"parallaft/internal/asm"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// The §5.7 stress microbenchmarks: syscall- and signal-dominated loops
// where Parallaft's (and RAFT's) tracing overhead is maximal.
func init() {
	register(&Workload{
		Name: "stress.getpid", Class: ClassStress,
		Note: "repeated getpid: the §5.7 ptrace-dominated extreme (paper: 124.5x slowdown)",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("stress.getpid")
			prologue(b, 151)
			b.MovI(rIdx, 0)
			b.MovI(rLim, scaleIters(4_000, s))
			b.Label("loop")
			b.MovI(0, int64(oskernel.SysGetPID))
			b.Syscall()
			b.Add(rAcc, rAcc, 0)
			b.AddI(rIdx, rIdx, 1)
			b.Blt(rIdx, rLim, "loop")
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "stress.devzero", Class: ClassStress,
		Note: "1 MiB reads from /dev/zero: record-bandwidth-dominated (paper: 18.5x slowdown)",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("stress.devzero")
			b.Ascii("path", "/dev/zero")
			b.Space("buf", mib)
			prologue(b, 157)
			b.MovI(0, int64(oskernel.SysOpen))
			b.Addr(1, "path")
			b.MovI(2, 0)
			b.Syscall()
			b.Mov(rPtr, 0)
			// Loop state lives in x9/x11/x13: x1..x5 are syscall argument
			// registers and are rewritten every iteration.
			b.MovI(9, 0)                  // i
			b.MovI(11, scaleIters(12, s)) // limit
			b.MovI(13, 0)                 // acc
			b.Label("loop")
			b.MovI(0, int64(oskernel.SysRead))
			b.Mov(1, rPtr)
			b.Addr(2, "buf")
			b.MovI(3, mib)
			b.Syscall()
			b.Add(13, 13, 0)
			b.AddI(9, 9, 1)
			b.Blt(9, 11, "loop")
			b.Mov(rAcc, 13)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "stress.sigusr1", Class: ClassStress,
		Note: "raising SIGUSR1 with an empty handler: signal-path stress (paper: 39.8x slowdown)",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("stress.sigusr1")
			prologue(b, 163)
			b.Jmp("setup")
			b.Label("handler")
			b.Jr(proc.HandlerLinkReg) // empty handler: return immediately
			b.Label("setup")
			b.MovI(0, int64(oskernel.SysSigaction))
			b.MovI(1, int64(proc.SIGUSR1))
			b.LabelAddr(2, "handler")
			b.Syscall()
			// Loop state in x9/x11: x1/x2 are syscall arguments.
			b.MovI(9, 0)
			b.MovI(11, scaleIters(2_500, s))
			b.Label("loop")
			b.MovI(0, int64(oskernel.SysKill))
			b.MovI(1, 0) // self
			b.MovI(2, int64(proc.SIGUSR1))
			b.Syscall()
			b.AddI(9, 9, 1)
			b.Blt(9, 11, "loop")
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})
}
