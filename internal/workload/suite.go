package workload

import (
	"parallaft/internal/asm"
	"parallaft/internal/isa"
	"parallaft/internal/oskernel"
)

// Files returns the input files a workload expects in the kernel's
// file system. Harnesses must install these before running.
func Files() map[string][]byte {
	files := map[string][]byte{}
	files["/input/perl.txt"] = inputText(4096, 101)
	files["/input/gcc.c"] = inputText(2048, 202)
	files["/input/xalan.xml"] = inputText(8192, 303)
	files["/input/sjeng.book"] = inputText(32768, 404)
	return files
}

func inputText(n int, seed int64) []byte {
	out := make([]byte, n)
	s := uint64(seed)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = byte('a' + (s>>33)%26)
	}
	return out
}

// emitOpenRead emits open(path)/read(fd, buf, n)/close(fd), exercising the
// globally-effectful record/replay path with real payloads.
func emitOpenRead(b *asm.Builder, pathSym, bufSym string, n int64) {
	b.MovI(0, int64(oskernel.SysOpen))
	b.Addr(1, pathSym)
	b.MovI(2, 0)
	b.Syscall()
	b.Mov(rPtr, 0) // fd
	b.MovI(0, int64(oskernel.SysRead))
	b.Mov(1, rPtr)
	b.Addr(2, bufSym)
	b.MovI(3, n)
	b.Syscall()
	b.MovI(0, int64(oskernel.SysClose))
	b.Mov(1, rPtr)
	b.Syscall()
}

// streamKernel emits a read-modify-write sweep: each iteration loads a
// word, mixes the index in, stores it back, and folds it into the checksum.
// footprint must be a power of two.
func streamKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64, stride int64, writeBack bool) {
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.Label(label)
	b.MulI(rOff, rIdx, stride)
	b.AndI(rOff, rOff, int64(footprint-1)&^7)
	b.Add(rOff, rBase, rOff)
	b.Ld(rVal, rOff, 0)
	b.Add(rVal, rVal, rIdx)
	if writeBack {
		b.St(rOff, 0, rVal)
	}
	b.Add(rAcc, rAcc, rVal)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// chaseKernel emits a pointer chase: ptr = base + *(ptr), bumping each
// record's payload — the classic mcf-style dependent-load pattern.
func chaseKernel(b *asm.Builder, label, arr string, iters int64, writeBack bool) {
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.Mov(rPtr, rBase)
	b.Label(label)
	b.Ld(rOff, rPtr, 0) // next offset
	b.Ld(rVal, rPtr, 8) // payload
	b.Add(rVal, rVal, rIdx)
	if writeBack {
		b.St(rPtr, 8, rVal)
	}
	b.Add(rAcc, rAcc, rVal)
	b.Add(rPtr, rBase, rOff)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// branchyKernel emits a PRNG-driven soup of data-dependent branches over a
// table — gobmk/sjeng-style control-heavy code.
func branchyKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64) {
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.Label(label)
	emitPRNG(b)
	b.AndI(rOff, rState, int64(footprint-1)&^7)
	b.Add(rOff, rBase, rOff)
	b.Ld(rVal, rOff, 0)
	b.AndI(rTmp, rVal, 3)
	b.MovI(rTmp2, 1)
	b.Beq(rTmp, rTmp2, label+"_c1")
	b.MovI(rTmp2, 2)
	b.Beq(rTmp, rTmp2, label+"_c2")
	b.AddI(rAcc, rAcc, 3)
	b.Jmp(label + "_j")
	b.Label(label + "_c1")
	b.Add(rAcc, rAcc, rVal)
	b.Jmp(label + "_j")
	b.Label(label + "_c2")
	b.Xor(rAcc, rAcc, rVal)
	b.Label(label + "_j")
	b.ShrI(rTmp, rVal, 13)
	b.Xor(rVal, rVal, rTmp)
	b.St(rOff, 0, rVal)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// fpKernel emits a dense floating-point chain (namd/povray-style), with an
// optional memory stream mixed in. heavyDiv adds fdiv/fsqrt pressure.
func fpKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64, heavyDiv bool) {
	fpKernelStride(b, label, arr, footprint, iters, 8, heavyDiv)
}

// fpKernelStride is fpKernel with an explicit access stride: a line-sized
// stride makes every access a miss (streaming, milc-style); an 8-byte
// stride mostly hits.
func fpKernelStride(b *asm.Builder, label, arr string, footprint uint64, iters int64, stride int64, heavyDiv bool) {
	b.FMovI(0, 1.000000119)
	b.FMovI(1, 0.999999881)
	b.FMovI(2, 1.5)
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	if arr != "" {
		b.Addr(rBase, arr)
	}
	b.Label(label)
	b.FMul(3, 2, 0)
	b.FAdd(2, 3, 1)
	b.FMul(3, 3, 1)
	b.FSub(2, 2, 3)
	if heavyDiv {
		b.FDiv(4, 2, 0)
		b.FSqrt(4, 4)
		b.FAdd(2, 2, 4)
	}
	if arr != "" {
		b.MulI(rOff, rIdx, stride)
		b.AndI(rOff, rOff, int64(footprint-1)&^7)
		b.Add(rOff, rBase, rOff)
		b.FLd(5, rOff, 0)
		b.FAdd(5, 5, 2)
		b.FSt(rOff, 0, 5)
	}
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
	b.CvtFI(rVal, 2)
	b.Add(rAcc, rAcc, rVal)
}

// vecKernel emits a SIMD sweep (libquantum/h264-style): 32-byte vector
// loads, lane-wise ops, stores.
func vecKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64) {
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.MovI(rTmp, 0x5bd1e995)
	b.VSplat(1, rTmp)
	b.Label(label)
	b.MulI(rOff, rIdx, 32)
	b.AndI(rOff, rOff, int64(footprint-1)&^31)
	b.Add(rOff, rBase, rOff)
	b.VLd(0, rOff, 0)
	b.VXor(0, 0, 1)
	b.VAdd(2, 0, 1)
	b.VSt(rOff, 0, 2)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// sweepCopyKernel emits an lbm-style streaming update: load from one half
// of the array, store to the corresponding site in the other half. With a
// line-sized stride every load *and* every store misses, producing the
// write-drain traffic that makes lbm the worst case for little-core
// checkers (§5.3).
func sweepCopyKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64) {
	half := int64(footprint / 2)
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.Label(label)
	b.MulI(rOff, rIdx, 64)
	b.AndI(rOff, rOff, half-8)
	b.Add(rOff, rBase, rOff)
	b.Ld(rVal, rOff, 0)
	b.Add(rVal, rVal, rIdx)
	b.St(rOff, half, rVal)
	b.Add(rAcc, rAcc, rVal)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// byteKernel emits byte-granular processing (bzip2-style).
func byteKernel(b *asm.Builder, label, arr string, footprint uint64, iters int64) {
	b.MovI(rIdx, 0)
	b.MovI(rLim, iters)
	b.Addr(rBase, arr)
	b.Label(label)
	emitPRNG(b)
	b.AndI(rOff, rState, int64(footprint-1))
	b.Add(rOff, rBase, rOff)
	b.LdB(rVal, rOff, 0)
	b.Add(rVal, rVal, rIdx)
	b.AndI(rVal, rVal, 255)
	b.StB(rOff, 0, rVal)
	b.Add(rAcc, rAcc, rVal)
	b.AddI(rIdx, rIdx, 1)
	b.Blt(rIdx, rLim, label)
}

// prologue seeds the PRNG and zeroes the checksum.
func prologue(b *asm.Builder, seed int64) {
	b.MovI(rAcc, 0)
	b.MovI(rState, seed)
}

const (
	kib = 1024
	mib = 1024 * 1024
)

func init() {
	// ------------------------------------------------ integer suite
	register(&Workload{
		Name: "400.perlbench", Class: ClassInt,
		Note: "branchy interpreter loop with a hash-table-sized working set and input-file IO",
		Gen: func(s float64) []*asm.Program {
			var progs []*asm.Program
			for in := 0; in < 3; in++ {
				b := asm.NewBuilder(progName("400.perlbench", in, 3))
				b.Ascii("path", "/input/perl.txt")
				b.Space("inbuf", 4*kib)
				b.Space("table", 128*kib)
				prologue(b, 17+int64(in))
				emitOpenRead(b, "path", "inbuf", 4*kib)
				branchyKernel(b, "main", "table", 128*kib, scaleIters(130_000, s))
				emitChecksumExit(b)
				progs = append(progs, b.MustBuild())
			}
			return progs
		},
	})

	register(&Workload{
		Name: "401.bzip2", Class: ClassInt,
		Note: "byte-granular compression-style processing, three inputs",
		Gen: func(s float64) []*asm.Program {
			var progs []*asm.Program
			for in := 0; in < 3; in++ {
				b := asm.NewBuilder(progName("401.bzip2", in, 3))
				b.Space("buf", 256*kib)
				prologue(b, 29+int64(in))
				byteKernel(b, "main", "buf", 256*kib, scaleIters(280_000, s))
				emitChecksumExit(b)
				progs = append(progs, b.MustBuild())
			}
			return progs
		},
	})

	register(&Workload{
		Name: "403.gcc", Class: ClassInt,
		Note: "nine short compiler-style inputs; last-checker sync dominates (§5.5)",
		Gen: func(s float64) []*asm.Program {
			var progs []*asm.Program
			for in := 0; in < 9; in++ {
				b := asm.NewBuilder(progName("403.gcc", in, 9))
				b.Ascii("path", "/input/gcc.c")
				b.Space("inbuf", 2*kib)
				b.Space("ir", 64*kib)
				prologue(b, 41+int64(in))
				emitOpenRead(b, "path", "inbuf", 2*kib)
				branchyKernel(b, "parse", "ir", 64*kib, scaleIters(55_000, s))
				streamKernel(b, "emit", "ir", 64*kib, scaleIters(35_000, s), 8, true)
				emitChecksumExit(b)
				progs = append(progs, b.MustBuild())
			}
			return progs
		},
	})

	register(&Workload{
		Name: "429.mcf", Class: ClassInt,
		Note: "pointer-chasing network simplex over a multi-MiB arena; DRAM-bound, heavy COW",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("429.mcf")
			// 4 MiB: double the big cluster's L2, so the chase is
			// DRAM-bound everywhere; little cores' weaker memory-level
			// parallelism then gives the >4x slowdown and constant
			// checker migration the paper reports.
			b.Words("arena", permutationBytes(128*1024, 32, 53)...)
			prologue(b, 53)
			chaseKernel(b, "chase", "arena", scaleIters(420_000, s), true)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "445.gobmk", Class: ClassInt,
		Note: "game-tree evaluation: dense data-dependent branches over board tables",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("445.gobmk")
			b.Space("board", 128*kib)
			prologue(b, 61)
			b.Mrs(rTmp2, isa.SysRegCNTVCT) // nondeterministic read, virtualised
			branchyKernel(b, "eval", "board", 128*kib, scaleIters(330_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "456.hmmer", Class: ClassInt,
		Note: "profile-HMM dynamic programming: multiply-heavy regular sweeps",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("456.hmmer")
			b.Words("dp", randWords(4*1024, 67)...) // 32 KiB
			prologue(b, 67)
			b.MovI(rIdx, 0)
			b.MovI(rLim, scaleIters(400_000, s))
			b.Addr(rBase, "dp")
			b.Label("dp")
			b.MulI(rOff, rIdx, 8)
			b.AndI(rOff, rOff, 32*kib-8)
			b.Add(rOff, rBase, rOff)
			b.Ld(rVal, rOff, 0)
			b.Mul(rTmp, rVal, rIdx)
			b.ShrI(rTmp2, rTmp, 7)
			b.Add(rVal, rTmp, rTmp2)
			b.St(rOff, 0, rVal)
			b.Add(rAcc, rAcc, rVal)
			b.AddI(rIdx, rIdx, 1)
			b.Blt(rIdx, rLim, "dp")
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "458.sjeng", Class: ClassInt,
		Note: "chess search: moderate working set (~2x little-core slowdown), file-backed mmap of the opening book",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("458.sjeng")
			b.Ascii("path", "/input/sjeng.book")
			b.Space("tt", 128*kib)
			prologue(b, 71)
			// open + file-backed private mmap: exercises the §4.3.2
			// segment-split path.
			b.MovI(0, int64(oskernel.SysOpen))
			b.Addr(1, "path")
			b.MovI(2, 0)
			b.Syscall()
			b.Mov(rPtr, 0)
			b.MovI(0, int64(oskernel.SysMmap))
			b.MovI(1, 0)
			b.MovI(2, 32*kib)
			b.MovI(3, 3) // rw
			b.MovI(4, 0) // file-backed
			b.Mov(5, rPtr)
			b.Syscall()
			b.Mov(rPtr, 0) // book base
			// fold a little of the book into the checksum
			b.Ld(rVal, rPtr, 0)
			b.Add(rAcc, rAcc, rVal)
			branchyKernel(b, "search", "tt", 128*kib, scaleIters(360_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "462.libquantum", Class: ClassInt,
		Note: "quantum gate simulation: SIMD streaming over a half-MiB state vector",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("462.libquantum")
			b.Space("state", 4*mib) // streams: exceeds every cache
			prologue(b, 73)
			vecKernel(b, "gates", "state", 4*mib, scaleIters(260_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "464.h264ref", Class: ClassInt,
		Note: "video encoding: block copies over an mmapped frame buffer plus compute",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("464.h264ref")
			b.Space("frames", 512*kib)
			prologue(b, 79)
			// anonymous mmap workspace: exercises ASLR record/replay.
			b.MovI(0, int64(oskernel.SysMmap))
			b.MovI(1, 0)
			b.MovI(2, 128*kib)
			b.MovI(3, 3)
			b.MovI(4, int64(oskernel.MapAnonymous))
			b.Syscall()
			b.Mov(rPtr, 0)
			b.St(rPtr, 0, rAcc) // touch the mapping
			vecKernel(b, "mc", "frames", 512*kib, scaleIters(170_000, s))
			branchyKernel(b, "cavlc", "frames", 64*kib, scaleIters(90_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "471.omnetpp", Class: ClassInt,
		Note: "discrete-event simulation: heap growth via brk and scattered pointer writes",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("471.omnetpp")
			prologue(b, 83)
			// grow the heap to 1 MiB in 4 brk steps, touching as we go
			b.MovI(0, int64(oskernel.SysBrk))
			b.MovI(1, 0)
			b.Syscall()
			b.Mov(rPtr, 0) // current brk = heap base
			for step := 1; step <= 4; step++ {
				b.MovI(0, int64(oskernel.SysBrk))
				b.Mov(1, rPtr)
				b.AddI(1, 1, int64(step)*128*kib)
				b.Syscall()
			}
			b.MovI(rIdx, 0)
			b.MovI(rLim, scaleIters(230_000, s))
			b.Label("events")
			emitPRNG(b)
			b.AndI(rOff, rState, 512*kib-8)
			b.Add(rOff, rPtr, rOff)
			b.Ld(rVal, rOff, 0)
			b.Add(rVal, rVal, rIdx)
			b.St(rOff, 0, rVal)
			b.Add(rAcc, rAcc, rVal)
			b.AddI(rIdx, rIdx, 1)
			b.Blt(rIdx, rLim, "events")
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "473.astar", Class: ClassInt,
		Note: "path-finding: pointer chase over a half-MiB graph with branchy heuristics",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("473.astar")
			b.Words("graph", permutationBytes(16*1024, 32, 89)...) // 512 KiB
			b.Space("open", 32*kib)
			prologue(b, 89)
			chaseKernel(b, "expand", "graph", scaleIters(210_000, s), true)
			branchyKernel(b, "heur", "open", 32*kib, scaleIters(120_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "483.xalancbmk", Class: ClassInt,
		Note: "XML transformation: byte scanning with branches over a medium buffer",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("483.xalancbmk")
			b.Ascii("path", "/input/xalan.xml")
			b.Space("inbuf", 8*kib)
			b.Space("dom", 512*kib)
			prologue(b, 97)
			emitOpenRead(b, "path", "inbuf", 8*kib)
			byteKernel(b, "scan", "dom", 512*kib, scaleIters(240_000, s))
			branchyKernel(b, "xform", "dom", 128*kib, scaleIters(110_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	// ------------------------------------------------ floating-point suite
	register(&Workload{
		Name: "410.bwaves", Class: ClassFP,
		Note: "blast-wave solver: FP streaming over a 1 MiB grid",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("410.bwaves")
			b.Floats("grid", randFloats(2048, 107)...)
			b.Space("grid2", mib)
			prologue(b, 107)
			fpKernel(b, "solve", "grid2", mib, scaleIters(280_000, s), false)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "433.milc", Class: ClassFP,
		Note: "lattice QCD: FP read-modify-write streaming over 2 MiB; DRAM-bound",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("433.milc")
			b.Space("lattice", 4*mib)
			prologue(b, 109)
			// line-stride: every access misses, like real milc's streaming
			// sweeps over a lattice far larger than any cache
			fpKernelStride(b, "su3", "lattice", 4*mib, scaleIters(280_000, s), 64, false)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "444.namd", Class: ClassFP,
		Note: "molecular dynamics: dense FP arithmetic, tiny working set",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("444.namd")
			b.Space("atoms", 8*kib)
			prologue(b, 113)
			fpKernel(b, "forces", "atoms", 8*kib, scaleIters(520_000, s), false)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "447.dealII", Class: ClassFP,
		Note: "finite elements: FP sweeps over a quarter-MiB of assembled matrices",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("447.dealII")
			b.Space("mat", 256*kib)
			prologue(b, 127)
			fpKernel(b, "assemble", "mat", 256*kib, scaleIters(300_000, s), false)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "450.soplex", Class: ClassFP,
		Note: "LP simplex: two short inputs mixing FP and integer pivoting",
		Gen: func(s float64) []*asm.Program {
			var progs []*asm.Program
			for in := 0; in < 2; in++ {
				b := asm.NewBuilder(progName("450.soplex", in, 2))
				b.Space("basis", 512*kib)
				prologue(b, 131+int64(in))
				fpKernel(b, "pivot", "basis", 512*kib, scaleIters(130_000, s), false)
				streamKernel(b, "price", "basis", 512*kib, scaleIters(80_000, s), 64, true)
				emitChecksumExit(b)
				progs = append(progs, b.MustBuild())
			}
			return progs
		},
	})

	register(&Workload{
		Name: "453.povray", Class: ClassFP,
		Note: "ray tracing: divide/sqrt-heavy FP with a tiny working set",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("453.povray")
			b.Space("scene", 8*kib)
			prologue(b, 137)
			b.Rdtsc(rTmp2) // timestamp read, virtualised by the runtime
			fpKernel(b, "trace", "scene", 8*kib, scaleIters(260_000, s), true)
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "470.lbm", Class: ClassFP,
		Note: "lattice Boltzmann: write-heavy FP streaming over 2 MiB; the paper's worst case for Parallaft energy",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("470.lbm")
			b.Space("cells", 4*mib)
			prologue(b, 139)
			fpKernel(b, "collide", "cells", 2*mib, scaleIters(100_000, s), false)
			sweepCopyKernel(b, "streamstep", "cells", 4*mib, scaleIters(180_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})

	register(&Workload{
		Name: "482.sphinx3", Class: ClassFP,
		Note: "speech recognition: FP scoring over a medium working set with branchy pruning",
		Gen: func(s float64) []*asm.Program {
			b := asm.NewBuilder("482.sphinx3")
			b.Space("gauden", 512*kib)
			prologue(b, 149)
			fpKernel(b, "score", "gauden", 512*kib, scaleIters(200_000, s), false)
			branchyKernel(b, "prune", "gauden", 64*kib, scaleIters(110_000, s))
			emitChecksumExit(b)
			return []*asm.Program{b.MustBuild()}
		},
	})
}
