package workload

import (
	"fmt"

	"parallaft/internal/asm"
	"parallaft/internal/lang"
)

// Workloads authored in paftlang rather than assembly. They are not part of
// the paper's suite (ClassExtra) but exercise the full compile-and-protect
// path and serve as readable starting points for new workloads.
func init() {
	register(&Workload{
		Name: "extra.collatz", Class: ClassExtra,
		Note: "Collatz trajectory lengths, written in paftlang: branchy integer compute",
		Gen: func(s float64) []*asm.Program {
			limit := scaleIters(12_000, s)
			src := fmt.Sprintf(`
				var best = 0;
				var arg = 0;
				var n = 2;
				while (n < %d) {
					var steps = 0;
					var x = n;
					while (x != 1) {
						if (x %% 2 == 0) { x = x / 2; }
						else { x = 3 * x + 1; }
						steps = steps + 1;
					}
					if (steps > best) { best = steps; arg = n; }
					n = n + 1;
				}
				print("longest trajectory from ");
				printnum(arg);
				printnum(best);
				exit(best & 255);
			`, limit)
			return []*asm.Program{lang.MustCompile("extra.collatz", src)}
		},
	})

	register(&Workload{
		Name: "extra.matmul", Class: ClassExtra,
		Note: "blocked integer matrix multiply in paftlang: regular memory sweeps",
		Gen: func(s float64) []*asm.Program {
			dim := int64(48)
			reps := scaleIters(6, s)
			src := fmt.Sprintf(`
				var a[%[1]d];
				var b[%[1]d];
				var c[%[1]d];
				var i = 0;
				while (i < %[1]d) {
					a[i] = i * 7 + 3;
					b[i] = i * 13 + 1;
					i = i + 1;
				}
				var rep = 0;
				var check = 0;
				while (rep < %[3]d) {
					var r = 0;
					while (r < %[2]d) {
						var col = 0;
						while (col < %[2]d) {
							var acc = 0;
							var k = 0;
							while (k < %[2]d) {
								acc = acc + a[r * %[2]d + k] * b[k * %[2]d + col];
								k = k + 1;
							}
							c[r * %[2]d + col] = acc;
							col = col + 1;
						}
						r = r + 1;
					}
					check = check + c[(rep * 37) %% %[1]d];
					rep = rep + 1;
				}
				printnum(check);
				exit(check & 255);
			`, dim*dim, dim, reps)
			return []*asm.Program{lang.MustCompile("extra.matmul", src)}
		},
	})
}
