// Package workload defines the synthetic benchmark suite standing in for
// SPEC CPU2006 (which the paper uses but cannot be redistributed), plus the
// §5.7 stress microbenchmarks.
//
// Each workload is a guest program (or a sequence of programs, for
// benchmarks that SPEC splits into multiple inputs) generated with the asm
// Builder. The suite reproduces the axes the paper's per-benchmark effects
// ride on:
//
//   - memory intensity: mcf/milc/lbm analogues have multi-MiB footprints
//     that blow out the little cores' caches, producing the 4-8x little-core
//     slowdown, checker migration to big cores, and high fork/COW cost;
//   - short multi-process runs: the gcc analogue runs nine short inputs, so
//     last-checker sync dominates (§5.5);
//   - moderate compute: the sjeng analogue fits big caches but not little
//     L1, giving the ~2x little-core slowdown the paper quotes.
//
// Every program prints a checksum and exits with its low byte, so harnesses
// can verify output correctness under protection.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"parallaft/internal/asm"
	"parallaft/internal/oskernel"
)

// Class groups workloads the way the paper's figures do.
type Class string

// Workload classes.
const (
	ClassInt    Class = "int"
	ClassFP     Class = "fp"
	ClassStress Class = "stress"
	// ClassExtra workloads are not part of the paper's suite (they do not
	// enter geomeans) but are available by name — e.g. the
	// paftlang-authored kernels.
	ClassExtra Class = "extra"
)

// Workload is one benchmark definition.
type Workload struct {
	// Name is the analogue's identifier, e.g. "429.mcf".
	Name string
	// Class is int, fp, or stress.
	Class Class
	// Gen builds the program sequence at a given scale (1.0 = the default
	// evaluation length). Multi-input benchmarks return several programs,
	// run back to back like SPEC's multiple ref inputs (§5.1).
	Gen func(scale float64) []*asm.Program
	// Note describes the behaviour the analogue models.
	Note string
}

var registry []*Workload
var byName = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := byName[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry = append(registry, w)
	byName[w.Name] = w
}

// All returns the full suite (int + fp), in figure order.
func All() []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Class == ClassInt || w.Class == ClassFP {
			out = append(out, w)
		}
	}
	return out
}

// Stress returns the §5.7 stress microbenchmarks.
func Stress() []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Class == ClassStress {
			out = append(out, w)
		}
	}
	return out
}

// Get looks a workload up by name; nil if absent.
func Get(name string) *Workload { return byName[name] }

// Names lists every registered workload.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- shared emission helpers -------------------------------------------

// Registers conventionally used by the generators.
const (
	rAcc   = 1 // running checksum
	rIdx   = 2 // loop counter
	rLim   = 3 // loop bound
	rBase  = 4 // data base pointer
	rOff   = 5 // scratch offset
	rVal   = 6 // scratch value
	rTmp   = 7 // scratch
	rState = 8 // PRNG state
	rTmp2  = 9
	rPtr   = 10
)

// itersFactor stretches every workload so that a run spans tens of
// segments at the default slicing period, amortising per-segment cold-cache
// effects the way the paper's 1.43 s segments do.
const itersFactor = 4

func scaleIters(base int64, scale float64) int64 {
	n := int64(float64(base*itersFactor) * scale)
	if n < 16 {
		n = 16
	}
	return n
}

// emitPRNG advances an in-register xorshift-style PRNG: cheap, branch-free,
// deterministic.
func emitPRNG(b *asm.Builder) {
	b.MulI(rState, rState, 6364136223846793005)
	b.AddI(rState, rState, 1442695040888963407)
	b.ShrI(rTmp, rState, 33)
	b.Xor(rState, rState, rTmp)
}

// emitChecksumExit writes the checksum to stdout as 8 raw bytes and exits
// with its low byte.
func emitChecksumExit(b *asm.Builder) {
	b.Words("chk_out", 0)
	b.Addr(rTmp, "chk_out")
	b.St(rTmp, 0, rAcc)
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "chk_out")
	b.MovI(3, 8)
	b.Syscall()
	b.Addr(rTmp, "chk_out")
	b.Ld(1, rTmp, 0)
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
}

// permutationBytes builds a single-cycle pointer-chase array: entry i holds
// the byte offset of the next entry, each entry strideBytes wide.
func permutationBytes(entries int, strideBytes int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(entries)
	// Build a single cycle: follow the shuffled order.
	next := make([]uint64, entries)
	for i := 0; i < entries; i++ {
		from := perm[i]
		to := perm[(i+1)%entries]
		next[from] = uint64(to * strideBytes)
	}
	// Interleave into stride-sized records: only slot 0 of each record is
	// the next pointer; the rest is payload.
	words := strideBytes / 8
	out := make([]uint64, entries*words)
	for i := 0; i < entries; i++ {
		out[i*words] = next[i]
		for w := 1; w < words; w++ {
			out[i*words+w] = uint64(rng.Int63())
		}
	}
	return out
}

// randWords returns n pseudo-random 64-bit words.
func randWords(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Int63())
	}
	return out
}

// randFloats returns n pseudo-random float64s in (0, 1].
func randFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() + 1e-9
	}
	return out
}

func progName(base string, input, total int) string {
	if total == 1 {
		return base
	}
	return fmt.Sprintf("%s.in%d", base, input)
}
