package workload

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

func newEngine(seed int64) *sim.Engine {
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, seed)
	for name, data := range Files() {
		k.AddFile(name, data)
	}
	l := oskernel.NewLoader(k, m.PageSize, seed)
	e := sim.New(m, k, l)
	e.MaxInstr = 500_000_000
	return e
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) < 18 {
		t.Errorf("suite has %d workloads, want >= 18", len(all))
	}
	stress := Stress()
	if len(stress) != 3 {
		t.Errorf("stress set has %d entries, want 3 (§5.7)", len(stress))
	}
	ints, fps := 0, 0
	for _, w := range all {
		switch w.Class {
		case ClassInt:
			ints++
		case ClassFP:
			fps++
		default:
			t.Errorf("%s has class %q in the main suite", w.Name, w.Class)
		}
		if w.Note == "" {
			t.Errorf("%s has no behaviour note", w.Name)
		}
	}
	if ints < 10 || fps < 6 {
		t.Errorf("suite balance: %d int + %d fp", ints, fps)
	}
	for _, name := range Names() {
		if Get(name) == nil {
			t.Errorf("Names lists %q but Get fails", name)
		}
	}
	if Get("no.such") != nil {
		t.Error("Get returned a workload for a bogus name")
	}
}

func TestPaperBenchmarksPresent(t *testing.T) {
	// the benchmarks the paper's analysis singles out
	for _, name := range []string{"429.mcf", "433.milc", "470.lbm", "403.gcc", "458.sjeng",
		"462.libquantum", "401.bzip2", "450.soplex"} {
		if Get(name) == nil {
			t.Errorf("missing analogue %s", name)
		}
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, w := range append(All(), Stress()...) {
		progs := w.Gen(0.05)
		if len(progs) == 0 {
			t.Errorf("%s generated no programs", w.Name)
		}
		for _, p := range progs {
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: %v", w.Name, p.Name, err)
			}
		}
	}
}

func TestMultiInputBenchmarks(t *testing.T) {
	cases := map[string]int{"403.gcc": 9, "401.bzip2": 3, "450.soplex": 2, "400.perlbench": 3}
	for name, want := range cases {
		if got := len(Get(name).Gen(0.05)); got != want {
			t.Errorf("%s: %d inputs, want %d", name, got, want)
		}
	}
}

func TestAllWorkloadsRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload")
	}
	for _, w := range append(All(), Stress()...) {
		for _, prog := range w.Gen(0.05) {
			e := newEngine(3)
			res, err := e.RunBaseline(prog, e.M.BigCores()[0])
			if err != nil {
				t.Errorf("%s/%s: %v", w.Name, prog.Name, err)
				continue
			}
			if res.KilledBy != 0 {
				t.Errorf("%s/%s killed by %v", w.Name, prog.Name, res.KilledBy)
			}
			if res.Instrs == 0 {
				t.Errorf("%s/%s executed nothing", w.Name, prog.Name)
			}
		}
	}
}

func TestChecksumsDeterministic(t *testing.T) {
	for _, name := range []string{"429.mcf", "444.namd", "462.libquantum"} {
		prog := Get(name).Gen(0.05)[0]
		run := func() []byte {
			e := newEngine(3)
			res, err := e.RunBaseline(prog, e.M.BigCores()[0])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res.Stdout
		}
		a, b := run(), run()
		if string(a) != string(b) {
			t.Errorf("%s: nondeterministic checksum", name)
		}
		if len(a) == 0 {
			t.Errorf("%s: no checksum emitted", name)
		}
	}
}

func TestScaleChangesLength(t *testing.T) {
	prog1 := Get("444.namd").Gen(0.05)[0]
	prog2 := Get("444.namd").Gen(0.1)[0]
	e1, e2 := newEngine(3), newEngine(3)
	r1, err := e1.RunBaseline(prog1, e1.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.RunBaseline(prog2, e2.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r2.Instrs <= r1.Instrs {
		t.Errorf("doubling scale did not lengthen the run: %d vs %d", r1.Instrs, r2.Instrs)
	}
}

func TestMemoryIntensityAxis(t *testing.T) {
	// The suite's central design property: the mcf analogue must be far
	// more DRAM-bound than the namd analogue.
	missRate := func(name string) float64 {
		prog := Get(name).Gen(0.05)[0]
		e := newEngine(3)
		res, err := e.RunBaseline(prog, e.M.BigCores()[0])
		if err != nil {
			t.Fatal(err)
		}
		return float64(e.M.DRAMAccesses()) / float64(res.Instrs)
	}
	mcf := missRate("429.mcf")
	namd := missRate("444.namd")
	if mcf < 10*namd {
		t.Errorf("mcf DRAM rate %.4f not >> namd %.4f", mcf, namd)
	}
}

func TestInputFilesPresent(t *testing.T) {
	files := Files()
	for _, path := range []string{"/input/perl.txt", "/input/gcc.c", "/input/xalan.xml", "/input/sjeng.book"} {
		if len(files[path]) == 0 {
			t.Errorf("input file %s missing or empty", path)
		}
	}
	// deterministic generation
	again := Files()
	for path, data := range files {
		if string(again[path]) != string(data) {
			t.Errorf("input %s not deterministic", path)
		}
	}
}

func TestLittleCoreSlowdownAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("runs workloads twice")
	}
	slowdown := func(name string) float64 {
		prog := Get(name).Gen(0.05)[0]
		eb := newEngine(3)
		big, err := eb.RunBaseline(prog, eb.M.BigCores()[0])
		if err != nil {
			t.Fatal(err)
		}
		el := newEngine(3)
		little, err := el.RunBaseline(prog, el.M.LittleCores()[0])
		if err != nil {
			t.Fatal(err)
		}
		return little.WallNs / big.WallNs
	}
	sjeng := slowdown("458.sjeng")
	mcf := slowdown("429.mcf")
	if sjeng < 1.5 || sjeng > 3.2 {
		t.Errorf("sjeng little-core slowdown %.2fx, want ~2x (§5.5)", sjeng)
	}
	if mcf < 4 {
		t.Errorf("mcf little-core slowdown %.2fx, want > 4x (§5.5)", mcf)
	}
	if mcf <= sjeng {
		t.Error("memory-intensive workload must slow down more on little cores")
	}
}

func TestProgNameHelper(t *testing.T) {
	if progName("x", 0, 1) != "x" {
		t.Error("single-input name decorated")
	}
	if progName("x", 2, 3) != "x.in2" {
		t.Errorf("multi-input name = %q", progName("x", 2, 3))
	}
}

func TestPermutationBytesIsSingleCycle(t *testing.T) {
	const entries, stride = 64, 32
	words := permutationBytes(entries, stride, 9)
	if len(words) != entries*stride/8 {
		t.Fatalf("length = %d", len(words))
	}
	// follow the chase: must visit every entry exactly once and return
	seen := make(map[uint64]bool, entries)
	off := uint64(0)
	for i := 0; i < entries; i++ {
		if off%stride != 0 || off >= entries*stride {
			t.Fatalf("offset %d invalid at step %d", off, i)
		}
		if seen[off] {
			t.Fatalf("cycle shorter than %d entries (revisited %d at step %d)", entries, off, i)
		}
		seen[off] = true
		off = words[off/8]
	}
	if off != 0 {
		t.Errorf("chase did not return to the start: %d", off)
	}
}

var _ = asm.DataBase // keep the asm import for the helpers above
