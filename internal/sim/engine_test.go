package sim

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

func spinProg(iters int64) *asm.Program {
	b := asm.NewBuilder("spin")
	b.MovI(1, 0)
	b.MovI(2, iters)
	b.Label("loop")
	b.AddI(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 0)
	b.Syscall()
	return b.MustBuild()
}

func TestTaskClockAdvances(t *testing.T) {
	e := newTestEngine(t)
	p, err := e.L.Exec(spinProg(10_000))
	if err != nil {
		t.Fatal(err)
	}
	task := e.NewTask(p, e.M.BigCores()[0], 100)
	if task.Clock != 100 {
		t.Errorf("start clock = %v", task.Clock)
	}
	e.Run(task, 1000)
	if task.Clock <= 100 {
		t.Error("clock did not advance")
	}
	delta := task.Clock - 100
	if delta != p.UserNs+p.SysNs {
		t.Errorf("clock delta %v != charged time %v", delta, p.UserNs+p.SysNs)
	}
}

func TestChargeRuntimeOnlyMovesClock(t *testing.T) {
	e := newTestEngine(t)
	p, _ := e.L.Exec(spinProg(10))
	task := e.NewTask(p, e.M.BigCores()[0], 0)
	e.ChargeRuntime(task, 500)
	if task.Clock != 500 {
		t.Errorf("clock = %v, want 500", task.Clock)
	}
	if p.UserNs != 0 || p.SysNs != 0 {
		t.Error("runtime work leaked into user/sys time")
	}
	e.ChargeSys(task, 300)
	if p.SysNs != 300 || task.Clock != 800 {
		t.Errorf("sys charge: sys=%v clock=%v", p.SysNs, task.Clock)
	}
}

func TestRetireRemovesFromContention(t *testing.T) {
	e := newTestEngine(t)
	p1, _ := e.L.Exec(spinProg(10))
	p2, _ := e.L.Exec(spinProg(10))
	t1 := e.NewTask(p1, e.M.BigCores()[0], 0)
	t2 := e.NewTask(p2, e.M.BigCores()[1], 0)
	if len(e.tasks) != 2 {
		t.Fatalf("tasks = %d", len(e.tasks))
	}
	e.Retire(t2)
	e.Retire(t2) // idempotent
	if len(e.tasks) != 1 || e.tasks[0] != t1 {
		t.Errorf("retire failed: %d tasks", len(e.tasks))
	}
}

func TestContentionGrowsWithDRAMTraffic(t *testing.T) {
	e := newTestEngine(t)
	p1, _ := e.L.Exec(spinProg(100))
	t1 := e.NewTask(p1, e.M.BigCores()[0], 0)
	if c := e.Contention(t1); c != 1 {
		t.Errorf("solo contention = %v, want 1", c)
	}
	// a second task with a synthetic DRAM rate raises t1's factor
	p2, _ := e.L.Exec(spinProg(100))
	t2 := e.NewTask(p2, e.M.BigCores()[1], 0)
	t2.dramRate = refDRAMRate / 2
	c := e.Contention(t1)
	if c <= 1 {
		t.Errorf("contention with a DRAM-heavy peer = %v, want > 1", c)
	}
	// ...but its own rate does not count against itself
	t1.dramRate = refDRAMRate
	if got := e.Contention(t1); got != c {
		t.Errorf("own rate changed own contention: %v -> %v", c, got)
	}
}

func TestEmulateNondetPerCore(t *testing.T) {
	e := newTestEngine(t)
	code := []struct {
		build func(b *asm.Builder)
		check func(t *testing.T, big, little uint64)
	}{
		{
			func(b *asm.Builder) { b.Mrs(1, 0) }, // MIDR
			func(t *testing.T, big, little uint64) {
				if big == little {
					t.Error("MIDR identical on big and little cores")
				}
			},
		},
	}
	for _, c := range code {
		b := asm.NewBuilder("nd")
		c.build(b)
		b.Halt()
		prog := b.MustBuild()
		p1, _ := e.L.Exec(prog)
		p2, _ := e.L.Exec(prog)
		big := EmulateNondet(p1, e.M.BigCores()[0], 1000)
		little := EmulateNondet(p2, e.M.LittleCores()[0], 1000)
		c.check(t, big, little)
	}
	// rdtsc advances with time
	b := asm.NewBuilder("ts")
	b.Rdtsc(1)
	b.Halt()
	prog := b.MustBuild()
	p, _ := e.L.Exec(prog)
	early := EmulateNondet(p, e.M.BigCores()[0], 100)
	late := EmulateNondet(p, e.M.BigCores()[0], 100000)
	if late <= early {
		t.Errorf("timestamp did not advance: %d vs %d", early, late)
	}
	// FinishNondet commits the value
	FinishNondet(p, 777)
	if p.Regs.X[1] != 777 || p.PC != 1 {
		t.Errorf("FinishNondet: x1=%d pc=%d", p.Regs.X[1], p.PC)
	}
}

func TestExecSyscallChargesClock(t *testing.T) {
	e := newTestEngine(t)
	p, _ := e.L.Exec(spinProg(10))
	task := e.NewTask(p, e.M.BigCores()[0], 0)
	before := task.Clock
	r := e.ExecSyscall(task, oskernel.Info{Nr: oskernel.SysGetPID})
	if r.Ret != int64(p.PID) {
		t.Errorf("getpid via engine = %d", r.Ret)
	}
	if task.Clock <= before {
		t.Error("syscall charged no kernel time")
	}
}

func TestBaselineInstrCap(t *testing.T) {
	e := newTestEngine(t)
	e.MaxInstr = 1000
	if _, err := e.RunBaseline(spinProg(1_000_000), e.M.BigCores()[0]); err == nil {
		t.Error("runaway guest not capped")
	}
}

func TestBaselineSignalKill(t *testing.T) {
	b := asm.NewBuilder("crash")
	b.MovI(1, 0x6000_0000)
	b.Ld(2, 1, 0)
	b.Halt()
	e := newTestEngine(t)
	res, err := e.RunBaseline(b.MustBuild(), e.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledBy != proc.SIGSEGV {
		t.Errorf("killed by %v, want SIGSEGV", res.KilledBy)
	}
}

func TestBaselineSelfSignalHandler(t *testing.T) {
	b := asm.NewBuilder("selfsig")
	b.Jmp("setup")
	b.Label("handler")
	b.AddI(9, 9, 1)
	b.Jr(proc.HandlerLinkReg)
	b.Label("setup")
	b.MovI(9, 0)
	b.MovI(0, int64(oskernel.SysSigaction))
	b.MovI(1, int64(proc.SIGUSR1))
	b.LabelAddr(2, "handler")
	b.Syscall()
	b.MovI(0, int64(oskernel.SysKill))
	b.MovI(1, 0)
	b.MovI(2, int64(proc.SIGUSR1))
	b.Syscall()
	b.Mov(1, 9)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	e := newTestEngine(t)
	res, err := e.RunBaseline(b.MustBuild(), e.M.BigCores()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("handler ran %d times, want 1", res.ExitCode)
	}
}

func TestFabricFactorSlowsCoRunners(t *testing.T) {
	run := func(peers int) float64 {
		e := newTestEngine(t)
		p, _ := e.L.Exec(spinProg(20_000))
		task := e.NewTask(p, e.M.BigCores()[0], 0)
		for i := 0; i < peers; i++ {
			pp, _ := e.L.Exec(spinProg(10))
			e.NewTask(pp, e.M.LittleCores()[i], 0)
		}
		for {
			if s := e.Run(task, 4096); s.Reason == proc.StopSyscall || s.Reason == proc.StopHalt {
				break
			}
		}
		return p.UserNs
	}
	solo := run(0)
	crowded := run(3)
	if crowded <= solo {
		t.Errorf("fabric interference missing: %v vs %v", crowded, solo)
	}
}
