// Package sim is the co-simulation engine: it executes guest processes
// pinned to simulated cores, advances per-core clocks, models DRAM
// bandwidth contention between concurrently running processes, and provides
// the untraced baseline runner against which all overheads are measured.
//
// The engine uses a conservative schedule: among all live tasks, the one
// with the smallest clock runs next, for a bounded quantum. Because tasks
// only interact at segment boundaries (fork and comparison, both driven by
// the fault-tolerance runtimes), this ordering is exact with respect to
// architectural state and a good approximation for timing.
package sim

import (
	"fmt"

	"parallaft/internal/asm"
	"parallaft/internal/isa"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
)

// DefaultQuantum is the instruction budget per scheduling quantum.
const DefaultQuantum = 8192

// Task is one process pinned to one core, with its own wall-clock position.
type Task struct {
	P    *proc.Process
	Core *machine.Core

	// Clock is this task's position on the simulated wall clock, in ns.
	Clock float64

	// dramRate is an EWMA of DRAM accesses per ns, used for contention.
	dramRate float64
	lastDRAM uint64
	lastTime float64
	retired  bool
}

// DRAMRate returns the task's smoothed DRAM accesses per nanosecond.
func (t *Task) DRAMRate() float64 { return t.dramRate }

// Engine drives the machine.
type Engine struct {
	M *machine.Machine
	K *oskernel.Kernel
	L *oskernel.Loader

	tasks []*Task

	// ContentionCoeff scales how much each concurrent DRAM-heavy task
	// inflates every other task's DRAM latency.
	ContentionCoeff float64
	// FabricCoeff is a uniform slowdown per concurrently live task,
	// modelling interconnect/prefetcher/SoC-fabric interference that hits
	// even cache-resident code when many cores are active.
	FabricCoeff float64
	// Quantum is the per-dispatch instruction budget.
	Quantum uint64

	// MaxInstr aborts any single RunBaseline after this many instructions
	// (a runaway-guest guard); zero means no limit.
	MaxInstr uint64
}

// New creates an engine over a machine. The loader seed is also the
// kernel's (already set by the caller when constructing them).
func New(m *machine.Machine, k *oskernel.Kernel, l *oskernel.Loader) *Engine {
	return &Engine{
		M:               m,
		K:               k,
		L:               l,
		ContentionCoeff: 1.1,
		FabricCoeff:     0.02,
		Quantum:         DefaultQuantum,
	}
}

// refDRAMRate is the DRAM service capacity used for contention weighting:
// one line every 15 ns. A task's weight is its observed miss rate over this
// capacity, so a big-core pointer chase weighs several times more than a
// little core's serialised miss stream — little checkers demand much less
// bandwidth, which is why Parallaft suffers less DRAM contention than RAFT
// for the same workload (§5.2).
const refDRAMRate = 1.0 / 15.0

// NewTask registers a process on a core, starting its clock at startNs.
func (e *Engine) NewTask(p *proc.Process, core *machine.Core, startNs float64) *Task {
	t := &Task{P: p, Core: core, Clock: startNs, lastTime: startNs, lastDRAM: p.DRAMAccesses}
	e.tasks = append(e.tasks, t)
	return t
}

// Retire removes a task from contention accounting.
func (e *Engine) Retire(t *Task) {
	if t.retired {
		return
	}
	t.retired = true
	for i, x := range e.tasks {
		if x == t {
			e.tasks = append(e.tasks[:i], e.tasks[i+1:]...)
			return
		}
	}
}

// Contention returns the DRAM latency multiplier task t currently sees:
// 1 plus a weighted count of the *other* live tasks, each weighted by how
// memory-bound it has recently been.
func (e *Engine) Contention(t *Task) float64 {
	load := 0.0
	for _, o := range e.tasks {
		if o == t {
			continue
		}
		load += o.dramRate / refDRAMRate
	}
	return 1 + e.ContentionCoeff*load
}

// Run dispatches the task for up to budget instructions, advancing its
// clock and updating its contention weight, and returns the stop.
func (e *Engine) Run(t *Task, budget uint64) proc.Stop {
	p := t.P
	before := p.UserNs + p.SysNs
	fabric := e.FabricCoeff * float64(len(e.tasks)-1)
	if fabric > 0.08 {
		fabric = 0.08 // interference saturates; more co-runners stop adding
	}
	stop := p.Run(proc.ExecEnv{
		Machine:    e.M,
		Core:       t.Core,
		Contention: e.Contention(t),
		Fabric:     1 + fabric,
	}, budget)
	e.advance(t, before)
	return stop
}

// ExecSyscall executes a syscall for a task stopped at a Syscall
// instruction, charging kernel time to the task's clock. It does not set
// the return register or advance the PC (see oskernel.Finish) so that
// fault-tolerance runtimes can interpose record/replay logic around it.
func (e *Engine) ExecSyscall(t *Task, info oskernel.Info) oskernel.Result {
	e.K.Now = func() float64 { return t.Clock }
	before := t.P.UserNs + t.P.SysNs
	r := e.K.Execute(t.P, proc.ExecEnv{Machine: e.M, Core: t.Core}, info)
	e.advance(t, before)
	return r
}

// advance moves the task clock to cover all time the process accumulated
// since `before`, and refreshes the DRAM-rate EWMA.
func (e *Engine) advance(t *Task, before float64) {
	p := t.P
	after := p.UserNs + p.SysNs
	t.Clock += after - before

	dt := t.Clock - t.lastTime
	if dt > 0 {
		inst := float64(p.DRAMAccesses-t.lastDRAM) / dt
		const alpha = 0.3
		t.dramRate = alpha*inst + (1-alpha)*t.dramRate
		t.lastDRAM = p.DRAMAccesses
		t.lastTime = t.Clock
	}
}

// ChargeSys adds supervisor time to a task (tracing work, fork cost) and
// advances its clock accordingly.
func (e *Engine) ChargeSys(t *Task, ns float64) {
	before := t.P.UserNs + t.P.SysNs
	t.P.ChargeSys(proc.ExecEnv{Machine: e.M, Core: t.Core}, ns)
	e.advance(t, before)
}

// ChargeRuntime advances the task's wall clock by tracer/runtime work that
// is neither guest user time nor guest system time — ptrace-style stops,
// record/replay bookkeeping, dirty-bit clearing. Keeping it out of the
// user/sys accounts lets the evaluation recover the paper's "runtime work"
// overhead component as the residual of the breakdown (§5.2.1). The time is
// still charged to the core for energy purposes.
func (e *Engine) ChargeRuntime(t *Task, ns float64) {
	t.Clock += ns
	t.Core.AccountActive(ns)
	t.lastTime = t.Clock
}

// EmulateNondet computes the value a nondeterministic instruction produces
// when executed "for real" at the task's current time on its core: the
// timestamp counter advances with wall time, and MIDR identifies the core
// type, so the same instruction gives different answers on big and little
// cores — exactly the divergence Parallaft must virtualise (§4.3.4).
func EmulateNondet(p *proc.Process, core *machine.Core, nowNs float64) uint64 {
	ins := p.CurrentInstr()
	if ins == nil {
		return 0
	}
	switch ins.Op {
	case isa.OpRdtsc:
		return uint64(nowNs)
	case isa.OpMrs:
		switch ins.Imm {
		case isa.SysRegMIDR:
			if core.Kind == machine.Big {
				return 0x610
			}
			return 0x611
		case isa.SysRegCNTVCT:
			return uint64(nowNs)
		}
	}
	return 0
}

// FinishNondet commits an emulated nondeterministic value: writes the
// destination register and advances the PC.
func FinishNondet(p *proc.Process, value uint64) {
	ins := p.CurrentInstr()
	if ins == nil {
		return
	}
	p.Regs.X[ins.Rd] = value
	p.PC++
	p.Instrs++
}

// BaselineResult summarises an untraced run.
type BaselineResult struct {
	WallNs   float64
	UserNs   float64
	SysNs    float64
	Instrs   uint64
	Branches uint64
	ExitCode int64
	KilledBy proc.Signal
	Stdout   []byte
	EnergyJ  float64
	PeakPSS  float64
	AvgPSS   float64
}

// PSSSampleIntervalNs is the baseline memory-sampling period, matching the
// runtimes' default (the paper's 0.5 s at the simulation time scale).
const PSSSampleIntervalNs = 200_000

// RunBaseline executes a program to completion, untraced, on the given
// core at maximum frequency, and reports timing, energy and output. This is
// the denominator of every overhead the evaluation reports.
func (e *Engine) RunBaseline(prog *asm.Program, core *machine.Core) (*BaselineResult, error) {
	p, err := e.L.Exec(prog)
	if err != nil {
		return nil, err
	}
	core.SetMaxFreq()
	t := e.NewTask(p, core, 0)
	defer e.Retire(t)

	res := &BaselineResult{}
	var pssAccum float64
	pssSamples := 0
	nextSample := float64(PSSSampleIntervalNs)
	for !p.Exited {
		if e.MaxInstr != 0 && p.Instrs > e.MaxInstr {
			return nil, fmt.Errorf("sim: %s exceeded instruction cap %d", prog.Name, e.MaxInstr)
		}
		stop := e.Run(t, e.Quantum)
		if t.Clock >= nextSample {
			nextSample = t.Clock + PSSSampleIntervalNs
			pssAccum += p.AS.PSSBytes()
			pssSamples++
		}
		switch stop.Reason {
		case proc.StopBudget:
			// keep going
		case proc.StopHalt:
			// done
		case proc.StopSyscall:
			info := oskernel.Decode(p)
			r := e.ExecSyscall(t, info)
			if !r.Exited {
				oskernel.Finish(p, r.Ret)
				if r.SelfSignal != proc.SigNone {
					if !p.DeliverSignal(r.SelfSignal) {
						res.KilledBy = r.SelfSignal
					}
				}
			}
		case proc.StopNondet:
			v := EmulateNondet(p, t.Core, t.Clock)
			FinishNondet(p, v)
		case proc.StopSignal:
			if !p.DeliverSignal(stop.Sig) {
				res.KilledBy = stop.Sig
			}
		default:
			return nil, fmt.Errorf("sim: unexpected stop %v in baseline run of %s", stop.Reason, prog.Name)
		}
	}
	res.WallNs = t.Clock
	res.UserNs = p.UserNs
	res.SysNs = p.SysNs
	res.Instrs = p.Instrs
	res.Branches = p.Branches
	res.ExitCode = p.ExitCode
	if res.KilledBy == proc.SigNone {
		res.KilledBy = p.KilledBy
	}
	res.Stdout = append([]byte(nil), e.K.Stdout(p.PID)...)
	res.PeakPSS = p.AS.PSSBytes()
	res.EnergyJ = e.M.EnergyJ(res.WallNs)
	if pssSamples > 0 {
		res.AvgPSS = pssAccum / float64(pssSamples)
	} else {
		res.AvgPSS = res.PeakPSS
	}
	e.L.Reap(p)
	return res, nil
}
