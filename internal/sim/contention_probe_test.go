package sim

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/oskernel"
)

// chase program: DRAM-bound pointer walk
func chaseProg(name string) *asm.Program {
	b := asm.NewBuilder(name)
	vals := make([]uint64, 512*1024) // 4 MiB of records, 8B each: next offsets
	n := len(vals)
	step := 524287 // coprime stride -> pseudo-random walk
	cur := 0
	for i := 0; i < n; i++ {
		next := (cur + step) % n
		vals[cur] = uint64(next * 8)
		cur = next
	}
	b.Words("arena", vals...)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 60_000)
	b.Addr(4, "arena")
	b.Mov(10, 4)
	b.Label("loop")
	b.Ld(5, 10, 0)
	b.Add(10, 4, 5)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

func TestContentionProbe(t *testing.T) {
	e := newTestEngine(t)
	p1, _ := e.L.Exec(chaseProg("a"))
	t1 := e.NewTask(p1, e.M.BigCores()[0], 0)
	// run alone for a while
	for i := 0; i < 20; i++ {
		e.Run(t1, 4096)
	}
	soloRate := t1.DRAMRate()
	solo := e.Contention(t1)

	p2, _ := e.L.Exec(chaseProg("b"))
	t2 := e.NewTask(p2, e.M.LittleCores()[0], t1.Clock)
	for i := 0; i < 40; i++ {
		e.Run(t2, 4096)
	}
	withOther := e.Contention(t1)
	t.Logf("solo rate=%.4f/ns contention solo=%.2f with-little-chaser=%.2f otherRate=%.4f",
		soloRate, solo, withOther, t2.DRAMRate())
}
