package sim

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 42)
	l := oskernel.NewLoader(k, m.PageSize, 42)
	return New(m, k, l)
}

const sumSrc = `
; sum 1..100, store at result, print "ok\n", exit with low byte
.word result 0
.ascii msg "ok\n"
start:
	movi x1, 0        ; acc
	movi x2, 1        ; i
	movi x3, 101
loop:
	add  x1, x1, x2
	addi x2, x2, 1
	blt  x2, x3, loop
	movi x4, =result
	st   x4, 0, x1
	movi x0, 2        ; write
	movi x5, 1
	mov  x1, x5       ; fd=1
	movi x2, =msg
	movi x3, 3        ; len
	syscall
	movi x4, =result
	ld   x1, x4, 0
	andi x1, x1, 255
	movi x0, 1        ; exit
	syscall
.entry start
`

func TestBaselineSmoke(t *testing.T) {
	e := newTestEngine(t)
	prog, err := asm.Assemble("sum", sumSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := e.RunBaseline(prog, e.M.BigCores()[0])
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64(5050 & 255); res.ExitCode != want {
		t.Errorf("exit code = %d, want %d", res.ExitCode, want)
	}
	if string(res.Stdout) != "ok\n" {
		t.Errorf("stdout = %q, want %q", res.Stdout, "ok\n")
	}
	if res.Instrs == 0 || res.Branches == 0 || res.WallNs <= 0 {
		t.Errorf("counters not populated: %+v", res)
	}
	// The loop executes 100 blt branches plus the final fall-through.
	if res.Branches < 100 {
		t.Errorf("branches = %d, want >= 100", res.Branches)
	}
}

func TestBaselineDeterminism(t *testing.T) {
	prog := asm.MustAssemble("sum", sumSrc)
	run := func() *BaselineResult {
		e := newTestEngine(t)
		res, err := e.RunBaseline(prog, e.M.BigCores()[0])
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Instrs != b.Instrs || a.Branches != b.Branches || a.WallNs != b.WallNs {
		t.Errorf("nondeterministic baseline: %+v vs %+v", a, b)
	}
}
