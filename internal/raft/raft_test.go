package raft

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
)

func newEngine(seed int64) *sim.Engine {
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, seed)
	l := oskernel.NewLoader(k, m.PageSize, seed)
	return sim.New(m, k, l)
}

func prog() *asm.Program {
	b := asm.NewBuilder("raft-victim")
	b.Ascii("msg", "out\n")
	b.Space("buf", 16*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 60_000)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.MovI(0, int64(oskernel.SysWrite))
	b.MovI(1, 1)
	b.Addr(2, "msg")
	b.MovI(3, 4)
	b.Syscall()
	b.MovI(0, int64(oskernel.SysExit))
	b.MovI(1, 9)
	b.Syscall()
	return b.MustBuild()
}

func TestConfigMatchesPaperModel(t *testing.T) {
	cfg := Config()
	if cfg.SlicePeriodCycles != 0 || cfg.SlicePeriodInstrs != 0 {
		t.Error("RAFT must not slice periodically (§5.1 modification 1)")
	}
	if !cfg.CheckersOnBig {
		t.Error("RAFT checkers run on big cores (§5.1 modification 2)")
	}
	if cfg.CompareStates {
		t.Error("RAFT performs no state comparison (§5.1 modification 3)")
	}
	if cfg.EnableDVFS || cfg.EnableMigration {
		t.Error("RAFT has no heterogeneous scheduling")
	}
}

func TestCleanRun(t *testing.T) {
	st, err := Run(newEngine(3), prog())
	if err != nil {
		t.Fatal(err)
	}
	if st.Detected != nil {
		t.Fatalf("false positive: %v", st.Detected)
	}
	if string(st.Stdout) != "out\n" {
		t.Errorf("stdout = %q (IO must happen exactly once)", st.Stdout)
	}
	if st.ExitCode != 9 {
		t.Errorf("exit = %d", st.ExitCode)
	}
	if st.Slices != 0 {
		t.Errorf("RAFT sliced %d times", st.Slices)
	}
	if st.DirtyPagesHashed != 0 {
		t.Errorf("RAFT hashed %d pages", st.DirtyPagesHashed)
	}
	if st.CheckerLittleNs != 0 {
		t.Error("RAFT checker touched a little core")
	}
}

func TestDetectsSyscallVisibleError(t *testing.T) {
	p := prog()
	msg := p.Symbols["msg"]
	cfg := Config()
	fired := false
	cfg.CheckerHook = func(_ int, c *proc.Process, _ float64) {
		if fired {
			return
		}
		v, _ := c.AS.LoadByte(msg)
		c.AS.StoreByte(msg, v^1) //nolint:errcheck
		fired = true
	}
	rt := core.NewRuntime(newEngine(3), cfg)
	st, err := rt.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Detected == nil {
		t.Fatal("RAFT missed corruption of syscall data")
	}
	if st.Detected.Kind != core.ErrSyscallMismatch {
		t.Errorf("kind = %v, want syscall mismatch", st.Detected.Kind)
	}
}

func TestMissesSyscallInvisibleError(t *testing.T) {
	cfg := Config()
	fired := false
	cfg.CheckerHook = func(_ int, c *proc.Process, _ float64) {
		if fired {
			return
		}
		c.Regs.X[11] ^= 1 << 9 // dead register: never reaches a syscall
		fired = true
	}
	rt := core.NewRuntime(newEngine(3), cfg)
	st, err := rt.Run(prog())
	if err != nil {
		t.Fatal(err)
	}
	if st.Detected != nil {
		t.Errorf("RAFT flagged a syscall-invisible error: %v — table 2 says it cannot", st.Detected)
	}
}
