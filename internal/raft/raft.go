// Package raft exposes the RAFT baseline (Zhang et al., CGO 2012) as
// modelled by the paper's evaluation (§5.1): the same supervision runtime
// as Parallaft with (1) no periodic checkpoints — a single segment spans
// the whole program, (2) homogeneous execution — the checker runs on a big
// core, and (3) no end-of-segment state comparison or dirty-page tracking.
//
// Detection is therefore limited to syscall comparison: the checker's
// syscall stream (numbers, arguments, input data) is checked against the
// main's record, and effects are replayed so IO happens exactly once. An
// error that never influences a syscall escapes undetected — the
// correctness gap table 2 demonstrates and Parallaft closes.
package raft

import (
	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/sim"
)

// Config returns the RAFT model configuration.
func Config() core.Config { return core.RAFTConfig() }

// New creates a RAFT-configured runtime over an engine.
func New(e *sim.Engine) *core.Runtime {
	return core.NewRuntime(e, core.RAFTConfig())
}

// Run protects one program execution under the RAFT model.
func Run(e *sim.Engine, prog *asm.Program) (*core.RunStats, error) {
	return New(e).Run(prog)
}
