package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		results := Run(workers, 20, func(i int) (int, error) {
			// Finish in roughly reverse order to stress ordered collection.
			time.Sleep(time.Duration(20-i) * time.Millisecond / 4)
			return i * i, nil
		})
		if len(results) != 20 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestSerialAndParallelIdentical(t *testing.T) {
	job := func(i int) (string, error) {
		if i%7 == 3 {
			return "", fmt.Errorf("job %d failed", i)
		}
		return fmt.Sprintf("out-%d-%d", i, DeriveSeed(42, "job", fmt.Sprint(i))), nil
	}
	serial := Run(1, 30, job)
	parallel := Run(8, 30, job)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Value != p.Value || (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("result %d differs: %+v vs %+v", i, s, p)
		}
		if s.Err != nil && s.Err.Error() != p.Err.Error() {
			t.Fatalf("error %d differs: %v vs %v", i, s.Err, p.Err)
		}
	}
}

func TestPanicBecomesErrorRow(t *testing.T) {
	results := Run(4, 10, func(i int) (int, error) {
		if i == 5 {
			panic("simulated engine explosion")
		}
		return i, nil
	})
	for i, r := range results {
		if i == 5 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("panicking job returned %v, want PanicError", r.Err)
			}
			if !strings.Contains(pe.Error(), "simulated engine explosion") {
				t.Errorf("panic message lost: %v", pe)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("healthy job %d poisoned: %+v", i, r)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	Run(workers, 24, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if got := peak.Load(); got > workers {
		t.Errorf("concurrency peaked at %d, bound %d", got, workers)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 || Workers(1) != 1 {
		t.Error("explicit worker counts not respected")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count < 1")
	}
}

func TestFirstErr(t *testing.T) {
	results := Run(2, 6, func(i int) (int, error) {
		if i >= 4 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err := FirstErr(results); err == nil || err.Error() != "boom 4" {
		t.Errorf("FirstErr = %v, want boom 4", err)
	}
	ok := Run(2, 3, func(i int) (int, error) { return i, nil })
	if err := FirstErr(ok); err != nil {
		t.Errorf("FirstErr on clean results = %v", err)
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	a := DeriveSeed(12345, "429.mcf", "parallaft", "trial0")
	b := DeriveSeed(12345, "429.mcf", "parallaft", "trial0")
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	if a == DeriveSeed(12345, "429.mcf", "parallaft", "trial1") {
		t.Error("trial index does not change the seed")
	}
	if a == DeriveSeed(12346, "429.mcf", "parallaft", "trial0") {
		t.Error("base seed does not change the seed")
	}
	// Length prefixing: boundary shifts must not collide.
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("label boundaries ambiguous")
	}
	if DeriveSeed(7) == 0 {
		t.Error("zero seed escaped the guard")
	}
}

func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	pr := NewProgress(&buf, "suite", 3)
	results := RunProgress(2, 3, pr, func(i int) (int, error) { return i, nil })
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 3 {
		t.Errorf("want 3 progress lines, got:\n%s", out)
	}
	if !strings.Contains(out, "suite: 3/3 done") {
		t.Errorf("final progress line missing:\n%s", out)
	}
	// nil reporter and nil writer are no-ops
	var nilPr *Progress
	nilPr.Step(1)
	if NewProgress(nil, "x", 1) != nil {
		t.Error("nil writer should yield nil reporter")
	}
}

func TestZeroJobs(t *testing.T) {
	results := Run(4, 0, func(i int) (int, error) { return i, nil })
	if len(results) != 0 {
		t.Errorf("zero jobs returned %d results", len(results))
	}
}
