package campaign

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parallaft/internal/telemetry"
)

// TestWorkerPanicTriggersFlightDump: a contained worker panic is exactly the
// abnormal moment the black box exists for — with a flight recorder attached
// to the progress reporter, the panic must write a dump (ring + registry
// snapshot) while the campaign itself still completes with the panic as an
// error result.
func TestWorkerPanicTriggersFlightDump(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(0)
	flight.SetDir(dir)
	flight.SetMetrics(reg)
	pr := NewProgressWith(io.Discard, "boom-campaign", 3, reg)
	pr.SetFlight(flight, reg)

	results := RunProgress(2, 3, pr, func(i int) (int, error) {
		if i == 1 {
			panic("kaboom in worker")
		}
		return i, nil
	})

	// Containment is unchanged: the campaign finished and only job 1 failed.
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		_, isPanic := r.Err.(*PanicError)
		if (i == 1) != isPanic {
			t.Errorf("job %d: panic error = %v, err = %v", i, isPanic, r.Err)
		}
	}

	if got := flight.Dumps(); got != 1 {
		t.Fatalf("flight dumps = %d, want 1", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-campaign-panic-*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v), want exactly one", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	dump := string(raw)
	for _, want := range []string{
		`"flight_dump"`,              // header line with the reason
		"kaboom in worker",           // the panic value made it into the reason
		"boom-campaign",              // ... attributed to the campaign label
		"worker-panic",               // the ring note recorded before dumping
		"paft_campaign_panics_total", // registry snapshot rides along
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	if v := metric(t, reg, "paft_campaign_panics_total"); v != 1 {
		t.Errorf("paft_campaign_panics_total = %v, want 1", v)
	}
	if v := metric(t, reg, "paft_trace_flight_dumps_total"); v != 1 {
		t.Errorf("paft_trace_flight_dumps_total = %v, want 1", v)
	}
}

// TestPanicWithoutFlightStillContained: no flight recorder attached — the
// panic path must stay a pure counter increment.
func TestPanicWithoutFlightStillContained(t *testing.T) {
	reg := telemetry.NewRegistry()
	pr := NewProgressWith(io.Discard, "no-box", 1, reg)
	results := RunProgress(1, 1, pr, func(i int) (int, error) {
		panic("quiet kaboom")
	})
	if _, isPanic := results[0].Err.(*PanicError); !isPanic {
		t.Fatalf("err = %v, want PanicError", results[0].Err)
	}
	if v := metric(t, reg, "paft_campaign_panics_total"); v != 1 {
		t.Errorf("paft_campaign_panics_total = %v, want 1", v)
	}
}

func metric(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}
