package campaign

import "parallaft/internal/hashx"

// DeriveSeed derives an independent simulation seed from a base seed and
// the identity of a run (workload, mode, trial index, ...). Campaigns must
// never share one rand.Rand across jobs — the draw order would then depend
// on scheduling — so each job hashes its coordinates into its own seed
// instead. The labels are length-prefixed, so ("ab","c") and ("a","bc")
// derive different seeds.
func DeriveSeed(base int64, labels ...string) int64 {
	h := hashx.AcquireHasher(uint64(base))
	defer hashx.ReleaseHasher(h)
	for _, l := range labels {
		h.WriteUint64(uint64(len(l)))
		h.WriteString(l)
	}
	s := int64(h.Sum64())
	if s == 0 {
		// rand.NewSource(0) is valid but a zero seed is a magic value in
		// some harness configs; nudge it.
		s = base ^ int64(0x9E3779B185EBCA87&0x7FFFFFFFFFFFFFFF)
	}
	return s
}
