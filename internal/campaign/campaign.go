// Package campaign is the parallel experiment engine behind the evaluation
// harness. The paper's evaluation (§5) is a large campaign of independent
// deterministic simulations — suite workloads × modes, the slicing-period
// sweep, per-segment fault-injection trials — and every run is isolated in
// its own engine, so they fan out across cores.
//
// The engine's contract is that parallel execution is invisible in the
// results:
//
//   - results are collected in submission order, so rendered tables are
//     byte-identical to a serial run;
//   - nothing in the pool draws randomness; jobs that need it derive an
//     independent seed from their identity via DeriveSeed, never a shared
//     rand.Rand;
//   - a panicking job surfaces as an error Result (with its stack), not as
//     a crashed campaign;
//   - concurrency is bounded by the worker count, and workers pull jobs
//     from a shared counter so an expensive job never blocks the queue.
package campaign

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Result is one job's outcome. Run returns results indexed by submission
// order regardless of completion order.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// PanicError wraps a panic recovered from a job so a single exploding
// simulation run cannot take down the whole campaign.
type PanicError struct {
	Value any
	Stack []byte
}

// Error satisfies the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: job panicked: %v\n%s", e.Value, e.Stack)
}

// Workers resolves a worker-count request: n >= 1 is used as given,
// anything else (0, negative) means one worker per CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Run executes n independent jobs on up to workers goroutines (Workers
// semantics; 1 runs everything inline on the caller's goroutine — the
// serial path) and returns their results in submission order.
func Run[T any](workers, n int, fn func(i int) (T, error)) []Result[T] {
	return RunProgress(workers, n, nil, fn)
}

// RunProgress is Run with a progress/ETA reporter (nil = silent).
func RunProgress[T any](workers, n int, pr *Progress, fn func(i int) (T, error)) []Result[T] {
	out := make([]Result[T], n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	finish := func(i int) {
		if perr, isPanic := out[i].Err.(*PanicError); isPanic {
			pr.notePanic(perr)
		}
		pr.Step(1)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = runOne(i, fn)
			finish(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = runOne(i, fn)
				finish(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes one job with panic containment.
func runOne[T any](i int, fn func(i int) (T, error)) (res Result[T]) {
	res.Index = i
	defer func() {
		if v := recover(); v != nil {
			res.Err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = fn(i)
	return
}

// FirstErr returns the lowest-index error among the results, matching what
// a serial loop that stops at the first failure would have reported.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
