package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports campaign completion and an ETA as plain lines, one per
// finished job, so long fan-outs (a full fig. 10 injection campaign runs
// hundreds of simulations) are observable. A nil *Progress is silent, so
// call sites never need nil checks.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	start time.Time
}

// NewProgress returns a reporter writing to w (nil w = silent reporter).
func NewProgress(w io.Writer, label string, total int) *Progress {
	if w == nil {
		return nil
	}
	return &Progress{w: w, label: label, total: total, start: time.Now()}
}

// Step records n finished jobs and emits a progress line with an ETA
// extrapolated from the mean per-job wall time so far.
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += n
	elapsed := time.Since(p.start)
	eta := "?"
	if p.done > 0 && p.done <= p.total {
		rem := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		eta = rem.Round(time.Second).String()
	}
	fmt.Fprintf(p.w, "%s: %d/%d done, elapsed %s, eta %s\n",
		p.label, p.done, p.total, elapsed.Round(time.Second), eta)
}
