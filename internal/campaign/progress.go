package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"

	"parallaft/internal/telemetry"
)

// Progress reports campaign completion and an ETA as plain lines, one per
// finished job, so long fan-outs (a full fig. 10 injection campaign runs
// hundreds of simulations) are observable. A nil *Progress is silent, so
// call sites never need nil checks.
//
// With a telemetry registry attached, the job counts live in the
// paft_campaign_* gauges — the printed lines are rendered from the gauges,
// not a private counter, so anything scraping the registry sees exactly
// the numbers the console shows.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	start time.Time

	total  *telemetry.Gauge
	done   *telemetry.Gauge
	panics *telemetry.Counter
	noReg  bool // no registry: fall back to the private fields below
	totalN int
	doneN  int

	flight    *telemetry.FlightRecorder
	flightReg *telemetry.Registry
}

// NewProgress returns a reporter writing to w (nil w = silent reporter).
func NewProgress(w io.Writer, label string, total int) *Progress {
	return NewProgressWith(w, label, total, nil)
}

// NewProgressWith is NewProgress with a telemetry registry backing the job
// counts. It returns a live reporter when either sink is present; with
// both nil there is nothing to report to and the reporter is silent (nil).
// Campaigns run sequentially, so a new reporter resets the done gauge.
func NewProgressWith(w io.Writer, label string, total int, reg *telemetry.Registry) *Progress {
	if w == nil && reg == nil {
		return nil
	}
	p := &Progress{w: w, label: label, totalN: total, start: time.Now(), noReg: reg == nil}
	if reg != nil {
		p.total = reg.Gauge("paft_campaign_jobs",
			"jobs in the campaign currently running")
		p.done = reg.Gauge("paft_campaign_jobs_done",
			"jobs of the current campaign that have finished")
		p.panics = reg.Counter("paft_campaign_panics_total",
			"jobs that panicked and were contained as error results")
		p.total.Set(float64(total))
		p.done.Set(0)
	}
	return p
}

// Step records n finished jobs and emits a progress line with an ETA
// extrapolated from the mean per-job wall time so far.
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var done, total int
	if p.noReg {
		p.doneN += n
		done, total = p.doneN, p.totalN
	} else {
		p.done.Add(float64(n))
		done, total = int(p.done.Value()), int(p.total.Value())
	}
	if p.w == nil {
		return
	}
	elapsed := time.Since(p.start)
	eta := "?"
	if done > 0 && done <= total {
		rem := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		eta = rem.Round(time.Second).String()
	}
	fmt.Fprintf(p.w, "%s: %d/%d done, elapsed %s, eta %s\n",
		p.label, done, total, elapsed.Round(time.Second), eta)
}

// SetFlight attaches a flight recorder: every contained worker panic is
// noted in the black-box ring and immediately dumped (with the registry
// snapshot) to the recorder's directory. A panic is exactly the "something
// abnormal happened" moment the flight recorder exists for — the dump
// preserves what the process saw right before the job exploded, even though
// the campaign itself carries on. Nil-safe on all sides.
func (p *Progress) SetFlight(f *telemetry.FlightRecorder, reg *telemetry.Registry) {
	if p == nil || f == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flight = f
	p.flightReg = reg
}

// notePanic counts a contained job panic and, with a flight recorder
// attached, dumps the black box (no-op without either sink).
func (p *Progress) notePanic(e *PanicError) {
	if p == nil {
		return
	}
	p.mu.Lock()
	flight, reg, label := p.flight, p.flightReg, p.label
	p.mu.Unlock()
	p.panics.Inc()
	if flight == nil {
		return
	}
	reason := fmt.Sprintf("campaign %q: contained worker panic: %v", label, e.Value)
	flight.Note("worker-panic", reason)
	// Best-effort: a failing dump must not break panic containment.
	flight.DumpToDir("campaign-panic", reason, reg)
}
