package checkfarm

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parallaft/internal/checkd"
	"parallaft/internal/telemetry"
)

func TestParseAddr(t *testing.T) {
	cases := []struct{ spec, network, addr string }{
		{"tcp:127.0.0.1:9141", "tcp", "127.0.0.1:9141"},
		{"tcp:[::1]:9141", "tcp", "[::1]:9141"},
		{"/run/checkd.sock", "unix", "/run/checkd.sock"},
		{"checkd.sock", "unix", "checkd.sock"},
	}
	for _, tc := range cases {
		network, addr := ParseAddr(tc.spec)
		if network != tc.network || addr != tc.addr {
			t.Errorf("ParseAddr(%q) = (%q, %q), want (%q, %q)",
				tc.spec, network, addr, tc.network, tc.addr)
		}
		if got := IsTCP(tc.spec); got != (tc.network == "tcp") {
			t.Errorf("IsTCP(%q) = %v", tc.spec, got)
		}
	}
}

// TestFarmMatchesInProcess is the baseline: a healthy two-node farm delivers
// the exact verdicts the in-process checker produces, in submission order,
// and shared chunks go over each node's wire at most once.
func TestFarmMatchesInProcess(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 4 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}
	want, err := checkd.CheckAll(store, pkts, checkd.Options{Workers: 2})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	reg := telemetry.NewRegistry()
	a := startKillableNode(t, checkd.Options{Workers: 2})
	b := startKillableNode(t, checkd.Options{Workers: 2})
	farm := New(store, Options{Metrics: reg})
	if err := farm.AddNode(a.Spec); err != nil {
		t.Fatal(err)
	}
	if err := farm.AddNode(b.Spec); err != nil {
		t.Fatal(err)
	}
	got := collect(farm)
	for _, p := range pkts {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	farm.Close()

	vs := got()
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("farm verdicts differ from in-process:\n farm %+v\nlocal %+v", vs, want)
	}
	for _, ns := range farm.NodeStats() {
		if ns.Uploads != ns.CacheSize {
			t.Errorf("node %s: %d uploads for %d cached chunks; dedup must make these equal",
				ns.Addr, ns.Uploads, ns.CacheSize)
		}
		if ns.Verdicts == 0 {
			t.Errorf("node %s produced no verdicts; round-robin should reach both nodes", ns.Addr)
		}
	}
	if hits := metricValue(reg, "paft_farm_chunk_cache_hits_total"); hits == 0 {
		t.Error("no chunk cache hits across a multi-packet campaign sharing pages")
	}
	if n := metricValue(reg, "paft_farm_verdicts_total"); n != float64(len(pkts)) {
		t.Errorf("paft_farm_verdicts_total = %v, want %d", n, len(pkts))
	}
}

// limitedConn hard-fails all writes after a byte budget, standing in for a
// node whose host dies while the dispatcher is mid-chunk-upload.
type limitedConn struct {
	net.Conn
	mu   sync.Mutex
	left int
}

func (c *limitedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	if len(p) > c.left {
		n := c.left
		c.left = 0
		c.Conn.Write(p[:n]) //nolint:errcheck
		c.Conn.Close()
		return n, io.ErrClosedPipe
	}
	c.left -= len(p)
	return c.Conn.Write(p)
}

// TestFarmNodeDiesMidChunkUpload: the first node's transport dies partway
// through the chunk stream — before it ever holds a checkable packet. Every
// packet must still resolve, on the surviving node, to the in-process
// verdicts.
func TestFarmNodeDiesMidChunkUpload(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	want, err := checkd.CheckAll(store, pkts, checkd.Options{Workers: 2})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	flaky := startKillableNode(t, checkd.Options{Workers: 1})
	good := startKillableNode(t, checkd.Options{Workers: 2})
	opts := Options{
		Dial: func(spec string) (net.Conn, error) {
			conn, err := Dial(spec)
			if err != nil || spec != flaky.Spec {
				return conn, err
			}
			// Enough budget to get partway into the first packet's chunk
			// stream (pages are PageSize-sized), nowhere near all of it.
			return &limitedConn{Conn: conn, left: 20_000}, nil
		},
	}
	farm := New(store, opts)
	if err := farm.AddNode(flaky.Spec); err != nil {
		t.Fatal(err)
	}
	if err := farm.AddNode(good.Spec); err != nil {
		t.Fatal(err)
	}
	got := collect(farm)
	for _, p := range pkts {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	farm.Close()

	if vs := got(); !reflect.DeepEqual(vs, want) {
		t.Fatalf("verdicts after mid-upload death differ from in-process:\n farm %+v\nlocal %+v", vs, want)
	}
	stats := farm.NodeStats()
	if stats[0].Live || stats[0].EvictReason == "" {
		t.Errorf("flaky node not evicted: %+v", stats[0])
	}
	if stats[0].Verdicts != 0 {
		t.Errorf("flaky node produced %d verdicts after dying mid-upload", stats[0].Verdicts)
	}
}

// TestFarmNodeDiesAfterVerdict: a node answers some packets and is then
// killed before the campaign ends. Already-delivered verdicts must not be
// re-dispatched (exactly once per packet), the remainder moves to a node
// that joined mid-campaign. The run is traced with the flight recorder
// armed, so the kill also pins the observability side: the eviction dumps
// the black box and redispatched chains carry both dispatch attempts.
func TestFarmNodeDiesAfterVerdict(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	if len(pkts) < 3 {
		t.Fatalf("want at least 3 packets, got %d", len(pkts))
	}
	want, err := checkd.CheckAll(store, pkts, checkd.Options{Workers: 2})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	a := startKillableNode(t, checkd.Options{Workers: 1})
	b := startKillableNode(t, checkd.Options{Workers: 2})
	flightDir := t.TempDir()
	flight := telemetry.NewFlightRecorder(0)
	flight.SetDir(flightDir)
	tracer := telemetry.NewTraceRecorder(0)
	farm := New(store, Options{Tracer: tracer, Flight: flight})
	if err := farm.AddNode(a.Spec); err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// The first verdict proves node A answered; it dies before acking the
	// rest, after the elastic join of node B.
	first := <-farm.Verdicts()
	if err := farm.AddNode(b.Spec); err != nil {
		t.Fatal(err)
	}
	a.Kill()
	rest := collect(farm)
	farm.Close()

	vs := append([]checkd.Verdict{first}, rest()...)
	if len(vs) != len(pkts) {
		t.Fatalf("%d verdicts for %d packets", len(vs), len(pkts))
	}
	for i, v := range vs {
		if v.Seq != i {
			t.Fatalf("verdict %d has seq %d; order and exactly-once broken: %+v", i, v.Seq, vs)
		}
	}
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("verdicts after node death differ from in-process:\n farm %+v\nlocal %+v", vs, want)
	}

	// The eviction dumped the black box: one JSONL file for the killed node,
	// holding the eviction note.
	dumps, err := filepath.Glob(filepath.Join(flightDir, "flight-node0-*.jsonl"))
	if err != nil || len(dumps) != 1 {
		t.Fatalf("want exactly one flight dump for node0, got %v (err %v)", dumps, err)
	}
	dump, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), `"flight_dump":"node-eviction"`) {
		t.Errorf("dump header missing the eviction reason:\n%s", dump)
	}
	if !strings.Contains(string(dump), `"kind":"evict"`) {
		t.Errorf("dump ring missing the evict note:\n%s", dump)
	}

	// Redispatched packets repeat the dispatch stage under the same trace ID
	// with a higher attempt, so failovers read as forked chains.
	attempts := make(map[uint64]int)
	for _, s := range tracer.Spans() {
		if s.Stage == telemetry.StageDispatch && s.Attempt > attempts[s.TraceID] {
			attempts[s.TraceID] = s.Attempt
		}
	}
	redispatched := 0
	for _, n := range attempts {
		if n > 1 {
			redispatched++
		}
	}
	if redispatched == 0 {
		t.Error("no trace chain shows a second dispatch attempt after the kill")
	}
	// Every chain that was dispatched eventually records a delivery span.
	deliveries := 0
	for _, s := range tracer.Spans() {
		if s.Stage == telemetry.StageDelivery {
			deliveries++
		}
	}
	if deliveries != len(pkts) {
		t.Errorf("%d delivery spans for %d packets", deliveries, len(pkts))
	}
}

// TestFarmRejoinColdCache: an evicted address can rejoin. The new session
// starts with a cold chunk cache (the server keeps per-connection stores, so
// nothing survives), re-uploads what it needs, and keeps its stable metric
// index.
func TestFarmRejoinColdCache(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(240_000))
	want, err := checkd.CheckAll(store, pkts, checkd.Options{Workers: 2})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	n := startKillableNode(t, checkd.Options{Workers: 1})
	survivor := startKillableNode(t, checkd.Options{Workers: 1})
	farm := New(store, Options{})
	if err := farm.AddNode(n.Spec); err != nil {
		t.Fatal(err)
	}
	if err := farm.AddNode(survivor.Spec); err != nil {
		t.Fatal(err)
	}
	got := collect(farm)
	half := len(pkts) / 2
	for _, p := range pkts[:half] {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Crash just the sessions; the listener survives, so the same address
	// accepts the rejoin. The survivor keeps the campaign alive meanwhile.
	n.KillConns()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := farm.NodeStats(); !s[0].Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction of the crashed node never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := farm.AddNode(n.Spec); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	for _, p := range pkts[half:] {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit after rejoin: %v", err)
		}
	}
	farm.Close()

	if vs := got(); !reflect.DeepEqual(vs, want) {
		t.Fatalf("verdicts across a rejoin differ from in-process:\n farm %+v\nlocal %+v", vs, want)
	}
	stats := farm.NodeStats()
	if len(stats) != 3 {
		t.Fatalf("want 3 node instances (original, survivor, rejoin), got %+v", stats)
	}
	rejoined := stats[2]
	if rejoined.Index != stats[0].Index {
		t.Errorf("rejoined node changed metric index: %d then %d", stats[0].Index, rejoined.Index)
	}
	if rejoined.Uploads == 0 || rejoined.CacheSize == 0 {
		t.Errorf("rejoined node should re-upload into a cold cache: %+v", rejoined)
	}
	if rejoined.Uploads != rejoined.CacheSize {
		t.Errorf("rejoined node uploads %d != cache %d; dedup broken", rejoined.Uploads, rejoined.CacheSize)
	}
}

// TestFarmAllNodesDead: with every node gone, in-queue packets resolve to
// typed infrastructure verdicts and new submissions fail fast — no hang in
// either direction.
func TestFarmAllNodesDead(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))

	n := startKillableNode(t, checkd.Options{Workers: 1})
	// Eviction here is driven purely by the broken connection (the default
	// heartbeat is far slower than a closed socket's read error).
	farm := New(store, Options{MaxAttempts: 100})
	if err := farm.AddNode(n.Spec); err != nil {
		t.Fatal(err)
	}
	got := collect(farm)
	n.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := farm.NodeStats(); !s[0].Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := farm.Submit(pkts[0]); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Submit with no nodes = %v, want ErrNoNodes", err)
	}
	farm.Close()
	if vs := got(); len(vs) != 0 {
		t.Fatalf("verdicts from a dead farm: %+v", vs)
	}
	if err := farm.Submit(pkts[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := farm.AddNode(n.Spec); !errors.Is(err, ErrClosed) && err == nil {
		t.Fatalf("AddNode after Close = %v, want an error", err)
	}
}

// TestFarmStrandedPacketsGetInfraVerdicts: packets already accepted when the
// last node dies resolve to infrastructure verdicts wrapping ErrNoNodes —
// typed, ordered, exactly one per packet.
func TestFarmStrandedPacketsGetInfraVerdicts(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(120_000))

	// The node accepts the TCP session but never answers a frame, so
	// submissions park in flight until the heartbeat evicts it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) //nolint:errcheck
		}
	}()

	farm := New(store, Options{
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  40 * time.Millisecond,
	})
	if err := farm.AddNode("tcp:" + ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	got := collect(farm)
	for _, p := range pkts {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	farm.Close()

	vs := got()
	if len(vs) != len(pkts) {
		t.Fatalf("%d verdicts for %d packets", len(vs), len(pkts))
	}
	for i, v := range vs {
		if v.Seq != i {
			t.Errorf("verdict %d has seq %d", i, v.Seq)
		}
		if v.OK || v.Infra == "" {
			t.Fatalf("stranded packet got a non-infra verdict: %+v", v)
		}
		if !errors.Is(v.InfraErr(), ErrNoNodes) {
			t.Errorf("InfraErr = %v, want ErrNoNodes", v.InfraErr())
		}
	}
	stats := farm.NodeStats()
	if stats[0].Live {
		t.Fatal("silent node still live")
	}
	if !strings.Contains(stats[0].EvictReason, "heartbeat") {
		t.Errorf("evict reason %q does not name the heartbeat timeout", stats[0].EvictReason)
	}
}
