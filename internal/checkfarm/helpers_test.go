package checkfarm

import (
	"net"
	"sync"
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/checkd"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
)

// runExportedInto runs a program under the in-process runtime with packet
// export into a shared store, so several workloads' packets can travel one
// farm session (the store is content-addressed; the executors pin one config
// digest, which all workloads under one config share).
func runExportedInto(t *testing.T, store *pagestore.Store, cfg core.Config, prog *asm.Program) (*core.RunStats, []*packet.CheckPacket) {
	t.Helper()
	var pkts []*packet.CheckPacket
	cfg.Export = &packet.Exporter{
		Store: store,
		Sink:  func(p *packet.CheckPacket) error { pkts = append(pkts, p); return nil },
	}
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 7)
	l := oskernel.NewLoader(k, m.PageSize, 7)
	e := sim.New(m, k, l)
	rt := core.NewRuntime(e, cfg)
	stats, err := rt.Run(prog)
	if err != nil {
		t.Fatalf("protected run: %v", err)
	}
	return stats, pkts
}

func runExported(t *testing.T, cfg core.Config, prog *asm.Program) (*core.RunStats, *pagestore.Store, []*packet.CheckPacket) {
	t.Helper()
	store := pagestore.New(core.PageHashSeed)
	stats, pkts := runExportedInto(t, store, cfg, prog)
	return stats, store, pkts
}

// victimProgram is a multi-segment compute+memory loop (the same victim the
// checkd tests use): several sealed segments, a data buffer, a checksum.
func victimProgram(iters int64) *asm.Program {
	b := asm.NewBuilder("victim")
	b.Space("buf", 32*1024)
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, iters)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 4095)
	b.ShlI(5, 5, 3)
	b.AndI(5, 5, 32760)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

func smallSliceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	return cfg
}

// killableNode is a checkd server on a loopback TCP listener whose accepted
// connections can be hard-closed mid-session — the farm-side view of a node
// host dying without a goodbye.
type killableNode struct {
	Spec string
	srv  *checkd.Server

	mu     sync.Mutex
	ln     net.Listener
	conns  []net.Conn
	killed bool
	done   chan struct{}
}

type trackingListener struct {
	net.Listener
	n *killableNode
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.n.mu.Lock()
	if l.n.killed {
		l.n.mu.Unlock()
		c.Close()
		return nil, net.ErrClosed
	}
	l.n.conns = append(l.n.conns, c)
	l.n.mu.Unlock()
	return c, nil
}

// startKillableNode serves checkd on 127.0.0.1 and returns the node; the
// test cleanup stops it if Kill was never called.
func startKillableNode(t *testing.T, opts checkd.Options) *killableNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	n := &killableNode{
		Spec: "tcp:" + ln.Addr().String(),
		srv:  checkd.NewServer(opts),
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(n.done)
		n.srv.Serve(&trackingListener{Listener: ln, n: n}) //nolint:errcheck
	}()
	t.Cleanup(n.Kill)
	return n
}

// KillConns hard-closes every live session but keeps the listener: the node
// process "crashed and restarted" at the same address, ready for a rejoin
// with per-connection state (the chunk store) gone.
func (n *killableNode) KillConns() {
	n.mu.Lock()
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Kill hard-closes the listener and every live session: in-flight verdicts
// are lost, clients see broken connections. Idempotent.
func (n *killableNode) Kill() {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		return
	}
	n.killed = true
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	<-n.done
}

// metricValue reads one instrument's value from a registry snapshot, so
// tests never have to re-register (and re-state the help text of) the
// farm's instruments.
func metricValue(reg *telemetry.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return -1
}

// collect drains a farm's verdict stream into a slice from a goroutine;
// the returned func waits for the channel to close and hands the slice back.
func collect(f *Farm) func() []checkd.Verdict {
	var vs []checkd.Verdict
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := range f.Verdicts() {
			vs = append(vs, v)
		}
	}()
	return func() []checkd.Verdict {
		<-done
		return vs
	}
}
