// The full-suite farm parity golden is the heaviest test in the package: it
// replays every workload's packets twice (in-process reference + farm). The
// !race tag keeps it out of `go test -race ./...`; `make farm-golden` runs
// it explicitly, and the race-enabled soak test covers the same failover
// machinery at a size the race detector can afford.
//go:build !race

package checkfarm

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parallaft/internal/checkd"
	"parallaft/internal/core"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/telemetry"
	"parallaft/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenFarmParityAllWorkloads is the farm's acceptance gate: the whole
// workload suite's packets, sharded over three nodes with one node killed
// and one joined mid-campaign, must produce verdicts byte-identical to the
// in-process checker — every sealed segment exactly one verdict, shared
// chunks over each node's wire at most once. The golden file pins the
// per-workload packet counts so segmentation drift surfaces as diff.
func TestGoldenFarmParityAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the full-suite double replay is the long way round")
	}
	suite := append(workload.All(), workload.Stress()...)
	store := pagestore.New(core.PageHashSeed)
	var allPkts []*packet.CheckPacket
	var sb strings.Builder
	for _, w := range suite {
		progs := w.Gen(0.05)
		prog := progs[0]
		stats, pkts := runExportedInto(t, store, smallSliceConfig(), prog)
		if stats.Detected != nil {
			t.Fatalf("%s: clean run detected in-process: %v", w.Name, stats.Detected)
		}
		allPkts = append(allPkts, pkts...)
		fmt.Fprintf(&sb, "%s prog=%s packets=%d\n", w.Name, prog.Name, len(pkts))
	}
	fmt.Fprintf(&sb, "total workloads=%d packets=%d\n", len(suite), len(allPkts))

	want, err := checkd.CheckAll(store, allPkts, checkd.Options{Workers: 4})
	if err != nil {
		t.Fatalf("reference CheckAll: %v", err)
	}

	reg := telemetry.NewRegistry()
	nodes := []*killableNode{
		startKillableNode(t, checkd.Options{Workers: 2}),
		startKillableNode(t, checkd.Options{Workers: 2}),
		startKillableNode(t, checkd.Options{Workers: 2}),
	}
	farm := New(store, Options{Metrics: reg})
	for _, n := range nodes {
		if err := farm.AddNode(n.Spec); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(farm)
	half := len(allPkts) / 2
	for _, p := range allPkts[:half] {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Mid-campaign chaos: one node dies with work in flight, a fresh node
	// joins cold.
	nodes[0].Kill()
	joined := startKillableNode(t, checkd.Options{Workers: 2})
	if err := farm.AddNode(joined.Spec); err != nil {
		t.Fatalf("mid-campaign join: %v", err)
	}
	for _, p := range allPkts[half:] {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	farm.Close()

	vs := got()
	if len(vs) != len(allPkts) {
		t.Fatalf("%d verdicts for %d packets: a verdict was lost or duplicated", len(vs), len(allPkts))
	}
	gotJSON, err := json.Marshal(vs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		for i := range vs {
			if vs[i] != want[i] {
				t.Fatalf("verdict %d diverged from in-process:\n farm %+v\nlocal %+v", i, vs[i], want[i])
			}
		}
		t.Fatal("farm verdicts not byte-identical to in-process checker")
	}

	// At-most-once chunk upload per node, asserted per instance and against
	// the farm-wide telemetry counters. A killed node may have cache-charged
	// keys whose upload never finished; a healthy node has uploaded exactly
	// its cache.
	var uploadTotal int
	for _, ns := range farm.NodeStats() {
		if ns.Uploads > ns.CacheSize {
			t.Errorf("node %s: %d uploads for %d cached chunks; a chunk went over the wire twice",
				ns.Addr, ns.Uploads, ns.CacheSize)
		}
		if ns.EvictReason == "" && ns.Uploads != ns.CacheSize {
			t.Errorf("node %s ended healthy with %d uploads for %d cached chunks",
				ns.Addr, ns.Uploads, ns.CacheSize)
		}
		uploadTotal += ns.Uploads
	}
	if up := metricValue(reg, "paft_farm_chunk_uploads_total"); up != float64(uploadTotal) {
		t.Errorf("paft_farm_chunk_uploads_total = %v, want %d (sum over nodes)", up, uploadTotal)
	}
	if hits := metricValue(reg, "paft_farm_chunk_cache_hits_total"); hits == 0 {
		t.Error("no cache hits across the whole suite; per-node dedup is not engaging")
	}
	if ev := metricValue(reg, "paft_farm_node_evictions_total"); ev < 1 {
		t.Errorf("paft_farm_node_evictions_total = %v, want >= 1 (a node was killed)", ev)
	}
	if rd := metricValue(reg, "paft_farm_redispatches_total"); rd < 1 {
		t.Errorf("paft_farm_redispatches_total = %v, want >= 1 (the kill had work in flight)", rd)
	}
	if j := metricValue(reg, "paft_farm_node_joins_total"); j != 4 {
		t.Errorf("paft_farm_node_joins_total = %v, want 4", j)
	}
	if n := metricValue(reg, "paft_farm_verdicts_total"); n != float64(len(allPkts)) {
		t.Errorf("paft_farm_verdicts_total = %v, want %d", n, len(allPkts))
	}
	if n := metricValue(reg, "paft_farm_infra_verdicts_total"); n != 0 {
		t.Errorf("paft_farm_infra_verdicts_total = %v, want 0 on a survivable campaign", n)
	}

	goldenCompare(t, "golden_farm_parity.txt", sb.String())
}
