package checkfarm

import (
	"net"
	"strings"
)

// Node address specs. A spec of the form "tcp:host:port" names a TCP
// endpoint; anything else is a Unix socket path (the pre-farm checkd
// convention, kept byte-compatible: `paftcheckd -listen /run/checkd.sock`
// still means exactly what it did). The "tcp:" prefix rather than a
// URL-style scheme keeps specs copy-pasteable between -listen, -connect and
// -farm flags.

// ParseAddr splits a node spec into the (network, address) pair net.Dial
// and net.Listen expect.
func ParseAddr(spec string) (network, addr string) {
	if rest, ok := strings.CutPrefix(spec, "tcp:"); ok {
		return "tcp", rest
	}
	return "unix", spec
}

// IsTCP reports whether spec names a TCP endpoint.
func IsTCP(spec string) bool {
	_, ok := strings.CutPrefix(spec, "tcp:")
	return ok
}

// Dial connects to a checkd node named by spec.
func Dial(spec string) (net.Conn, error) {
	network, addr := ParseAddr(spec)
	return net.Dial(network, addr)
}

// Listen opens a listener on the endpoint named by spec.
func Listen(spec string) (net.Listener, error) {
	network, addr := ParseAddr(spec)
	return net.Listen(network, addr)
}
