// Package checkfarm shards sealed check packets across a fleet of checkd
// nodes over the framed protocol (Unix or TCP), with per-node
// content-addressed chunk caches, heartbeat-based liveness, and elastic
// failover: when a node dies mid-campaign its in-flight packets are
// re-dispatched to surviving nodes, and verdicts are still delivered to the
// consumer in submission order, exactly once per packet.
//
// The farm is a dispatcher, not a checker: every verdict is produced by a
// checkd executor on some node, so a healthy farm is byte-identical to the
// in-process checker. Only when a packet cannot be checked anywhere (every
// node dead, or a packet evicted more than MaxAttempts times) does the farm
// synthesise an infrastructure verdict, typed via Verdict.InfraErr.
package checkfarm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"parallaft/internal/checkd"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/telemetry"
	"parallaft/internal/telemetry/profile"
)

// ErrNoNodes reports a farm with no live nodes: Submit fails fast with it,
// and packets stranded in the queue when the last node dies resolve to
// infrastructure verdicts wrapping it. Either way the campaign sees a clean
// typed error instead of a hang.
var ErrNoNodes = errors.New("checkfarm: no live nodes")

// ErrClosed reports use of a farm after Close began.
var ErrClosed = errors.New("checkfarm: farm closed")

// errHeartbeat is the eviction reason for a node that stopped answering.
var errHeartbeat = errors.New("checkfarm: heartbeat timeout")

// Options configures a Farm. The zero value is usable: default dialer,
// half-second heartbeats with a two-second timeout, three dispatch attempts
// per packet, no telemetry.
type Options struct {
	// Dial connects to a node spec ("tcp:host:port" or a Unix socket
	// path). Defaults to Dial; tests inject failing transports here.
	Dial func(spec string) (net.Conn, error)

	// HeartbeatInterval is how often each node is pinged; Timeout is how
	// long the farm tolerates no inbound frames (verdicts count as life)
	// before evicting the node.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// WriteTimeout bounds every frame write so a wedged peer surfaces as
	// an eviction instead of a stuck dispatcher.
	WriteTimeout time.Duration

	// MaxAttempts caps how many nodes a packet may be dispatched to before
	// the farm gives up with an infrastructure verdict.
	MaxAttempts int

	// Metrics receives the paft_farm_* instruments when set.
	Metrics *telemetry.Registry

	// Tracer, when set, receives causal-trace stage spans for every packet
	// that carries a trace ID: dispatch, upload, remote-verify (shipped
	// back from the node over 'T' frames and re-attributed to the node's
	// track), verdict-remap and delivery. Nil disables tracing at zero
	// cost.
	Tracer *telemetry.TraceRecorder

	// Flight, when set, is the black-box ring: recent spans and abnormal
	// events, dumped (via the recorder's configured directory) on node
	// eviction and poison-packet exhaustion.
	Flight *telemetry.FlightRecorder

	// Ledger, when set, receives the farm's host-side overhead (dispatch
	// waits, chunk uploads) and the ledger slices nodes ship back over 'L'
	// frames — the remote replays' simulated time and modeled energy, merged
	// exactly once per trace ID. Nil discards both at zero cost.
	Ledger *profile.Ledger
}

func (o *Options) withDefaults() {
	if o.Dial == nil {
		o.Dial = Dial
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
}

// flight is one submitted packet's journey: a global sequence number (the
// delivery order), the packet, and how many nodes it has been tried on.
type flight struct {
	seq      int
	pkt      *packet.CheckPacket
	attempts int

	// Stage timestamps for the per-stage latency histograms and trace
	// spans. enqueuedAt restarts on every requeue (Submit and eviction),
	// so dispatch wait measures the current wait, not cumulative history.
	enqueuedAt time.Time
	sentAt     time.Time // last dispatch
	uploadDone time.Time // last upload completed; zero until then
}

// node is one checkd session. Its executor numbers verdicts from zero in its
// own submission order, so the farm keeps a local-seq → flight map and
// rewrites sequence numbers on receipt.
type node struct {
	spec string
	idx  int // stable per-address metric index; survives rejoin
	conn net.Conn

	wmu sync.Mutex // serialises dispatcher uploads and heartbeat pings

	// Guarded by Farm.mu.
	bySeq       map[int]*flight
	traceSeq    map[int]int // local seq → global seq, for 'T' frame remap
	localSeq    int
	cache       map[pagestore.Key]bool // keys this node holds
	dead        bool
	draining    bool
	evictReason error
	verdicts    int
	uploads     int
	uploadBytes uint64

	lastPong   time.Time // guarded by Farm.mu; any inbound frame refreshes it
	stopHB     sync.Once
	hbStop     chan struct{}
	readerDone chan struct{}
}

// Farm dispatches packets across nodes. Construct with New, add nodes with
// AddNode, feed packets with Submit, and read the ordered verdict stream from
// Verdicts — concurrently with submission, or executor backpressure on the
// nodes will eventually stall the campaign. Close drains and closes the
// verdict channel.
type Farm struct {
	opts  Options
	store *pagestore.Store
	tm    farmMetrics

	mu   sync.Mutex
	cond *sync.Cond // guards every field below; broadcast on any change

	nodes   []*node        // live
	all     []*node        // every node ever added, for NodeStats
	nodeIdx map[string]int // spec → stable metric index
	rr      int            // round-robin cursor

	pending    []*flight // awaiting dispatch, sorted by seq
	unresolved int       // submitted but not yet resolved to a verdict
	resolved   map[int]bool
	ready      map[int]readyEntry // resolved, awaiting in-order delivery
	nextSeq    int
	deliverSeq int
	closed     bool

	out            chan checkd.Verdict
	dispatcherDone chan struct{}
	deliveryDone   chan struct{}
}

// New creates a farm over the given chunk store (the one the packets'
// ChunkKeys resolve in) and starts its dispatcher. Add at least one node
// before submitting.
func New(store *pagestore.Store, opts Options) *Farm {
	opts.withDefaults()
	f := &Farm{
		opts:           opts,
		store:          store,
		tm:             newFarmMetrics(opts.Metrics),
		nodeIdx:        make(map[string]int),
		resolved:       make(map[int]bool),
		ready:          make(map[int]readyEntry),
		out:            make(chan checkd.Verdict, 64),
		dispatcherDone: make(chan struct{}),
		deliveryDone:   make(chan struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	go f.dispatcher()
	go f.delivery()
	return f
}

// Verdicts is the ordered verdict stream: one verdict per submitted packet,
// in submission order, closed by Close after the last delivery.
func (f *Farm) Verdicts() <-chan checkd.Verdict { return f.out }

// AddNode dials a node and puts it in the dispatch rotation. Joining is
// elastic — mid-campaign joins start with a cold chunk cache and pick up the
// next dispatched packets.
func (f *Farm) AddNode(spec string) error {
	conn, err := f.opts.Dial(spec)
	if err != nil {
		return fmt.Errorf("checkfarm: dial %s: %w", spec, err)
	}
	n := &node{
		spec:       spec,
		conn:       conn,
		bySeq:      make(map[int]*flight),
		traceSeq:   make(map[int]int),
		cache:      make(map[pagestore.Key]bool),
		lastPong:   time.Now(),
		hbStop:     make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	idx, ok := f.nodeIdx[spec]
	if !ok {
		idx = len(f.nodeIdx)
		f.nodeIdx[spec] = idx
	}
	n.idx = idx
	f.nodes = append(f.nodes, n)
	f.all = append(f.all, n)
	f.tm.joins.Inc()
	f.tm.liveNodes.Set(float64(len(f.nodes)))
	f.cond.Broadcast()
	f.mu.Unlock()

	go f.reader(n)
	go f.heartbeater(n)
	return nil
}

// Submit queues one sealed packet for checking. It fails fast with ErrNoNodes
// when the farm has no live nodes and ErrClosed after Close.
func (f *Farm) Submit(pkt *packet.CheckPacket) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if len(f.nodes) == 0 {
		return ErrNoNodes
	}
	f.pending = append(f.pending, &flight{seq: f.nextSeq, pkt: pkt, enqueuedAt: time.Now()})
	f.nextSeq++
	f.unresolved++
	f.tm.submitted.Inc()
	f.tm.inflight.Set(float64(f.unresolved))
	f.cond.Broadcast()
	return nil
}

// Close drains the farm: no new submissions, every already-submitted packet
// resolves to exactly one verdict (re-dispatching across evictions as
// needed), the verdict channel is closed, and every node session ends with a
// clean 'D' exchange. The caller must be consuming Verdicts concurrently.
func (f *Farm) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.deliveryDone
		return
	}
	f.closed = true
	f.cond.Broadcast()
	for f.unresolved > 0 {
		f.cond.Wait()
	}
	live := append([]*node(nil), f.nodes...)
	for _, n := range live {
		n.draining = true
	}
	f.nodes = nil
	f.tm.liveNodes.Set(0)
	f.cond.Broadcast()
	f.mu.Unlock()

	for _, n := range live {
		n.stopHB.Do(func() { close(n.hbStop) })
		n.wmu.Lock()
		n.conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		err := checkd.WriteFrame(n.conn, checkd.FrameDone, nil)
		n.wmu.Unlock()
		if err == nil {
			select {
			case <-n.readerDone:
			case <-time.After(f.opts.WriteTimeout):
			}
		}
		n.conn.Close()
	}
	<-f.dispatcherDone
	<-f.deliveryDone
}

// dispatcher is the single goroutine that moves pending flights onto nodes.
// Keeping it single-threaded makes the per-node chunk cache race-free: only
// the dispatcher decides what to upload.
func (f *Farm) dispatcher() {
	defer close(f.dispatcherDone)
	var keybuf []pagestore.Key
	for {
		f.mu.Lock()
		for len(f.pending) == 0 && !(f.closed && f.unresolved == 0) {
			f.cond.Wait()
		}
		if len(f.pending) == 0 {
			f.mu.Unlock()
			return
		}
		fl := f.pending[0]
		f.pending = f.pending[1:]
		if f.resolved[fl.seq] {
			f.mu.Unlock()
			continue
		}
		if len(f.nodes) == 0 {
			// Submission raced the last eviction; resolve cleanly rather
			// than hold the packet hostage waiting for a join.
			f.opts.Flight.Note("stranded",
				fmt.Sprintf("%s seg %d: no live nodes", fl.pkt.ProgName, fl.pkt.Segment))
			f.resolveLocked(fl, nil,
				checkd.NewInfraVerdict(fl.pkt, fmt.Errorf("%w: packet %s seg %d stranded",
					ErrNoNodes, fl.pkt.ProgName, fl.pkt.Segment)))
			f.mu.Unlock()
			continue
		}
		if fl.attempts >= f.opts.MaxAttempts {
			f.resolveLocked(fl, nil,
				checkd.NewInfraVerdict(fl.pkt, fmt.Errorf(
					"checkfarm: packet %s seg %d abandoned after %d dispatch attempts",
					fl.pkt.ProgName, fl.pkt.Segment, fl.attempts)))
			f.mu.Unlock()
			// A poison packet exhausted its budget: black-box moment.
			f.opts.Flight.Note("poison-exhausted",
				fmt.Sprintf("%s seg %d: %d attempts", fl.pkt.ProgName, fl.pkt.Segment, fl.attempts))
			f.opts.Flight.DumpToDir("farm", "poison-exhausted", f.opts.Metrics)
			continue
		}
		n := f.nodes[f.rr%len(f.nodes)]
		f.rr++
		fl.attempts++
		fl.sentAt = time.Now()
		n.bySeq[n.localSeq] = fl
		n.traceSeq[n.localSeq] = fl.seq
		n.localSeq++

		// Decide the upload set under the lock, then upload without it.
		keybuf = fl.pkt.ChunkKeys(keybuf[:0])
		var missing []pagestore.Key
		for _, k := range keybuf {
			if n.cache[k] {
				f.tm.chunkCacheHits.Inc()
				continue
			}
			n.cache[k] = true
			missing = append(missing, k)
		}
		attempt := fl.attempts
		f.mu.Unlock()

		f.tm.dispatchWait.Observe(fl.sentAt.Sub(fl.enqueuedAt).Seconds())
		f.opts.Ledger.AddHost(profile.StageFarmDispatch, fl.sentAt.Sub(fl.enqueuedAt).Nanoseconds())
		if f.opts.Tracer != nil && fl.pkt.TraceID != 0 {
			f.recordStage(telemetry.StageSpan{
				TraceID:     fl.pkt.TraceID,
				Stage:       telemetry.StageDispatch,
				Actor:       "farm",
				Prog:        fl.pkt.ProgName,
				Segment:     fl.pkt.Segment,
				StartUnixNs: fl.enqueuedAt.UnixNano(),
				EndUnixNs:   fl.sentAt.UnixNano(),
				Seq:         fl.seq,
				Attempt:     attempt,
				Detail:      fmt.Sprintf("node%d", n.idx),
			})
		}

		if err := f.upload(n, missing, fl.pkt); err != nil {
			f.evict(n, err)
			continue
		}
		uploadEnd := time.Now()
		f.tm.uploadTime.Observe(uploadEnd.Sub(fl.sentAt).Seconds())
		f.opts.Ledger.AddHost(profile.StageFarmUpload, uploadEnd.Sub(fl.sentAt).Nanoseconds())
		f.mu.Lock()
		fl.uploadDone = uploadEnd
		f.mu.Unlock()
		if f.opts.Tracer != nil && fl.pkt.TraceID != 0 {
			f.recordStage(telemetry.StageSpan{
				TraceID:     fl.pkt.TraceID,
				Stage:       telemetry.StageUpload,
				Actor:       fmt.Sprintf("node%d", n.idx),
				Prog:        fl.pkt.ProgName,
				Segment:     fl.pkt.Segment,
				StartUnixNs: fl.sentAt.UnixNano(),
				EndUnixNs:   uploadEnd.UnixNano(),
				Seq:         fl.seq,
				Attempt:     attempt,
				Detail:      fmt.Sprintf("chunks=%d", len(missing)),
			})
		}
	}
}

// recordStage routes one stage span to the tracer and the flight ring.
// Both sinks are nil-safe; callers gate on Options.Tracer so the disabled
// path skips the wall-clock reads too.
func (f *Farm) recordStage(s telemetry.StageSpan) {
	f.opts.Tracer.Record(s)
	f.opts.Flight.RecordSpan(s)
}

// upload sends the missing chunks and then the packet to a node, serialised
// against the node's heartbeat writes.
func (f *Farm) upload(n *node, missing []pagestore.Key, pkt *packet.CheckPacket) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	n.conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
	defer n.conn.SetWriteDeadline(time.Time{})
	for _, k := range missing {
		data := f.store.Get(k)
		if data == nil {
			return fmt.Errorf("checkfarm: chunk %#x missing from the farm store", uint64(k))
		}
		payload := make([]byte, 8+len(data))
		binary.LittleEndian.PutUint64(payload, uint64(k))
		copy(payload[8:], data)
		if err := checkd.WriteFrame(n.conn, checkd.FrameChunk, payload); err != nil {
			return err
		}
		f.mu.Lock()
		n.uploads++
		n.uploadBytes += uint64(len(data))
		f.mu.Unlock()
		f.tm.chunkUploads.Inc()
		f.tm.chunkUploadBytes.Add(uint64(len(data)))
	}
	return checkd.WriteFrame(n.conn, checkd.FramePacket, packet.Encode(pkt))
}

// reader drains one node's frame stream: verdicts resolve flights (with the
// node-local sequence number rewritten to the global one), pongs refresh
// liveness, an 'E' frame or transport error evicts the node.
func (f *Farm) reader(n *node) {
	defer close(n.readerDone)
	for {
		typ, payload, err := checkd.ReadFrame(n.conn)
		if err != nil {
			f.evict(n, &checkd.ConnError{Addr: n.spec, Op: "read frame", Packet: -1, Err: err})
			return
		}
		f.mu.Lock()
		n.lastPong = time.Now()
		f.mu.Unlock()
		switch typ {
		case checkd.FrameVerdict:
			arrival := time.Now()
			var v checkd.Verdict
			if err := json.Unmarshal(payload, &v); err != nil {
				f.evict(n, fmt.Errorf("checkfarm: %s: bad verdict frame: %v", n.spec, err))
				return
			}
			f.mu.Lock()
			fl := n.bySeq[v.Seq]
			if fl == nil {
				f.mu.Unlock()
				continue // duplicate or post-eviction straggler
			}
			delete(n.bySeq, v.Seq)
			v.Seq = fl.seq
			// Remote verify as the farm sees it: upload completion (or the
			// dispatch write if the upload end was never stamped) to the
			// verdict's arrival.
			verifyStart := fl.uploadDone
			if verifyStart.IsZero() {
				verifyStart = fl.sentAt
			}
			f.tm.remoteVerify.Observe(arrival.Sub(verifyStart).Seconds())
			f.resolveLocked(fl, n, v)
			traced := f.opts.Tracer != nil && fl.pkt.TraceID != 0
			attempt := fl.attempts
			f.mu.Unlock()
			if traced {
				f.recordStage(telemetry.StageSpan{
					TraceID:     fl.pkt.TraceID,
					Stage:       telemetry.StageRemap,
					Actor:       "farm",
					Prog:        fl.pkt.ProgName,
					Segment:     fl.pkt.Segment,
					StartUnixNs: arrival.UnixNano(),
					EndUnixNs:   time.Now().UnixNano(),
					Seq:         fl.seq,
					Attempt:     attempt,
					Detail:      fmt.Sprintf("node%d", n.idx),
				})
			}
		case checkd.FrameTrace:
			// The node's own remote-verify span for the preceding verdict.
			// Re-attribute it: the node called itself "checkd" and numbered
			// the span with its local seq; on the merged timeline it is this
			// node's track and the global sequence.
			if f.opts.Tracer == nil {
				continue
			}
			var span telemetry.StageSpan
			if err := json.Unmarshal(payload, &span); err != nil {
				continue // tracing is best-effort; never evict over it
			}
			f.mu.Lock()
			seq, ok := n.traceSeq[span.Seq]
			if ok {
				delete(n.traceSeq, span.Seq)
			}
			f.mu.Unlock()
			if !ok {
				continue // post-eviction straggler
			}
			span.Actor = fmt.Sprintf("node%d", n.idx)
			span.Seq = seq
			f.recordStage(span)
		case checkd.FrameLedger:
			// The node's replay cost slice for the preceding verdict. The
			// slice is self-keyed by trace ID, so no seq remap is needed; the
			// ledger dedupes redispatched packets' duplicate slices itself.
			if f.opts.Ledger == nil {
				continue
			}
			var sl profile.Slice
			if err := json.Unmarshal(payload, &sl); err != nil {
				continue // accounting is best-effort; never evict over it
			}
			f.opts.Ledger.MergeRemote(sl)
		case checkd.FrameHeartbeat:
			// lastPong already refreshed; the payload (our ping counter)
			// needs no pairing.
		case checkd.FrameError:
			f.evict(n, &checkd.RemoteError{Msg: string(payload)})
			return
		case checkd.FrameDone:
			return // clean drain; Close owns the conn from here
		default:
			f.evict(n, fmt.Errorf("%w: unexpected frame type %q from %s",
				checkd.ErrProtocol, typ, n.spec))
			return
		}
	}
}

// heartbeater pings one node and evicts it when nothing — pong or verdict —
// has arrived within the timeout. Liveness is any inbound frame, so a node
// slowed by a deep executor queue but still streaming verdicts is never
// falsely evicted.
func (f *Farm) heartbeater(n *node) {
	tick := time.NewTicker(f.opts.HeartbeatInterval)
	defer tick.Stop()
	var ping [8]byte
	var seq uint64
	for {
		select {
		case <-n.hbStop:
			return
		case <-tick.C:
		}
		f.mu.Lock()
		silent := time.Since(n.lastPong)
		gone := n.dead || n.draining
		f.mu.Unlock()
		if gone {
			return
		}
		if silent > f.opts.HeartbeatTimeout {
			f.evict(n, fmt.Errorf("%w: %s silent for %v", errHeartbeat, n.spec, silent.Round(time.Millisecond)))
			return
		}
		seq++
		binary.LittleEndian.PutUint64(ping[:], seq)
		n.wmu.Lock()
		n.conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		err := checkd.WriteFrame(n.conn, checkd.FrameHeartbeat, ping[:])
		n.conn.SetWriteDeadline(time.Time{})
		n.wmu.Unlock()
		if err != nil {
			f.evict(n, &checkd.ConnError{Addr: n.spec, Op: "send heartbeat", Packet: -1, Err: err})
			return
		}
		f.tm.heartbeats.Inc()
	}
}

// evict takes a node out of rotation and requeues its unresolved flights, in
// sequence order, for re-dispatch. Safe to call from any goroutine and
// idempotent per node; the first caller wins.
func (f *Farm) evict(n *node, reason error) {
	f.mu.Lock()
	if n.dead || n.draining {
		f.mu.Unlock()
		return
	}
	n.dead = true
	n.evictReason = reason
	for i, ln := range f.nodes {
		if ln == n {
			f.nodes = append(f.nodes[:i], f.nodes[i+1:]...)
			break
		}
	}
	stranded := make([]*flight, 0, len(n.bySeq))
	for _, fl := range n.bySeq {
		if !f.resolved[fl.seq] {
			fl.enqueuedAt = time.Now() // the dispatch wait restarts here
			fl.uploadDone = time.Time{}
			stranded = append(stranded, fl)
		}
	}
	n.bySeq = make(map[int]*flight)
	n.traceSeq = make(map[int]int)
	sort.Slice(stranded, func(i, j int) bool { return stranded[i].seq < stranded[j].seq })
	f.pending = append(f.pending, stranded...)
	sort.Slice(f.pending, func(i, j int) bool { return f.pending[i].seq < f.pending[j].seq })
	if len(stranded) > 0 {
		f.tm.redispatches.Add(uint64(len(stranded)))
	}
	f.tm.evictions.Inc()
	f.tm.liveNodes.Set(float64(len(f.nodes)))
	f.cond.Broadcast()
	f.mu.Unlock()

	n.stopHB.Do(func() { close(n.hbStop) })
	n.conn.Close()

	// Black-box moment: dump the flight ring so the post-mortem shows what
	// the farm saw in the window before this node went away.
	f.opts.Flight.Note("evict",
		fmt.Sprintf("node%d %s: %v (%d packets redispatched)", n.idx, n.spec, reason, len(stranded)))
	f.opts.Flight.DumpToDir(fmt.Sprintf("node%d", n.idx), "node-eviction", f.opts.Metrics)
}

// readyEntry is one resolved verdict awaiting in-order delivery, with the
// trace identity and resolve time the delivery stage needs (the Verdict
// itself stays exactly what the node produced).
type readyEntry struct {
	v          checkd.Verdict
	resolvedAt time.Time
	traceID    uint64
	prog       string
	segment    int
}

// resolveLocked records a flight's final verdict (node-produced or
// infrastructure). Exactly-once: a flight that already resolved — a verdict
// raced an eviction, or a redispatched copy answered twice — is dropped.
// Callers hold f.mu.
func (f *Farm) resolveLocked(fl *flight, n *node, v checkd.Verdict) {
	if f.resolved[fl.seq] {
		return
	}
	f.resolved[fl.seq] = true
	v.Seq = fl.seq
	f.ready[fl.seq] = readyEntry{
		v:          v,
		resolvedAt: time.Now(),
		traceID:    fl.pkt.TraceID,
		prog:       fl.pkt.ProgName,
		segment:    fl.pkt.Segment,
	}
	f.unresolved--
	if n != nil {
		n.verdicts++
	}
	f.tm.verdicts.Inc()
	if v.Infra != "" {
		f.tm.infraVerdicts.Inc()
	}
	f.tm.inflight.Set(float64(f.unresolved))
	f.cond.Broadcast()
}

// delivery releases verdicts to the consumer in global submission order.
func (f *Farm) delivery() {
	defer close(f.deliveryDone)
	defer close(f.out)
	for {
		f.mu.Lock()
		for {
			if _, ok := f.ready[f.deliverSeq]; ok {
				break
			}
			if f.closed && f.unresolved == 0 && len(f.pending) == 0 && f.deliverSeq == f.nextSeq {
				f.mu.Unlock()
				return
			}
			f.cond.Wait()
		}
		e := f.ready[f.deliverSeq]
		delete(f.ready, f.deliverSeq)
		f.deliverSeq++
		f.mu.Unlock()
		released := time.Now()
		f.tm.deliveryWait.Observe(released.Sub(e.resolvedAt).Seconds())
		if f.opts.Tracer != nil && e.traceID != 0 {
			f.recordStage(telemetry.StageSpan{
				TraceID:     e.traceID,
				Stage:       telemetry.StageDelivery,
				Actor:       "farm",
				Prog:        e.prog,
				Segment:     e.segment,
				StartUnixNs: e.resolvedAt.UnixNano(),
				EndUnixNs:   released.UnixNano(),
				Seq:         e.v.Seq,
			})
		}
		f.out <- e.v
	}
}

// NodeStats is a point-in-time snapshot of one node (live or evicted), for
// campaign summaries and the soak harness's at-most-once upload assertion:
// on a healthy node Uploads == CacheSize, because the cache is only charged
// when a chunk is actually sent.
type NodeStats struct {
	Addr        string
	Index       int
	Live        bool
	Uploads     int
	UploadBytes uint64
	CacheSize   int
	Verdicts    int
	EvictReason string
}

// NodeStats snapshots every node ever added, in join order.
func (f *Farm) NodeStats() []NodeStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeStats, 0, len(f.all))
	for _, n := range f.all {
		s := NodeStats{
			Addr:        n.spec,
			Index:       n.idx,
			Live:        !n.dead && !n.draining,
			Uploads:     n.uploads,
			UploadBytes: n.uploadBytes,
			CacheSize:   len(n.cache),
			Verdicts:    n.verdicts,
		}
		if n.draining {
			s.Live = false
		}
		if n.evictReason != nil {
			s.EvictReason = n.evictReason.Error()
		}
		out = append(out, s)
	}
	return out
}
