package checkfarm

import (
	"testing"

	"parallaft/internal/checkd"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/packet"
	"parallaft/internal/pagestore"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry/profile"
)

// TestFarmMergesRemoteLedgerSlices: a three-node farm run with the overhead
// ledger attached to the originating runtime. Every node ships one ledger
// slice per verdict over 'L' frames; the farm merges them by trace ID into
// the remote-verify stage, the dispatcher charges its own host stages, and
// the local attribution invariant still reconciles exactly — remote cost
// rides in host stages, never in the simulated books.
func TestFarmMergesRemoteLedgerSlices(t *testing.T) {
	ledger := profile.NewLedger()
	store := pagestore.New(core.PageHashSeed)
	var pkts []*packet.CheckPacket
	cfg := smallSliceConfig()
	cfg.Ledger = ledger
	cfg.Export = &packet.Exporter{
		Store: store,
		Sink:  func(p *packet.CheckPacket) error { pkts = append(pkts, p); return nil },
	}
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 7)
	l := oskernel.NewLoader(k, m.PageSize, 7)
	e := sim.New(m, k, l)
	rt := core.NewRuntime(e, cfg)
	if _, err := rt.Run(victimProgram(240_000)); err != nil {
		t.Fatalf("protected run: %v", err)
	}
	if len(pkts) < 4 {
		t.Fatalf("want several packets, got %d", len(pkts))
	}

	farm := New(store, Options{Ledger: ledger})
	for i := 0; i < 3; i++ {
		n := startKillableNode(t, checkd.Options{Workers: 2})
		if err := farm.AddNode(n.Spec); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(farm)
	for _, p := range pkts {
		if err := farm.Submit(p); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	farm.Close()
	if vs := got(); len(vs) != len(pkts) {
		t.Fatalf("verdicts = %d, want %d", len(vs), len(pkts))
	}

	sum := ledger.Summarize()
	stage := func(name string) *profile.HostStageSummary {
		for i := range sum.Host {
			if sum.Host[i].Stage == name {
				return &sum.Host[i]
			}
		}
		t.Fatalf("host stage %q missing from ledger summary (have %+v)", name, sum.Host)
		return nil
	}
	rv := stage(profile.StageRemoteVerify)
	if rv.Count != len(pkts) {
		t.Errorf("remote-verify slices = %d, want one per packet (%d)", rv.Count, len(pkts))
	}
	if rv.SimNs <= 0 || rv.SimJ <= 0 || rv.HostNs <= 0 {
		t.Errorf("remote-verify slice totals empty: simns=%v simj=%v hostns=%d",
			rv.SimNs, rv.SimJ, rv.HostNs)
	}
	if d := stage(profile.StageFarmDispatch); d.Count != len(pkts) {
		t.Errorf("farm-dispatch charges = %d, want %d", d.Count, len(pkts))
	}
	if u := stage(profile.StageFarmUpload); u.Count != len(pkts) {
		t.Errorf("farm-upload charges = %d, want %d", u.Count, len(pkts))
	}
	// The export stage was charged by the runtime during the run.
	if ex := stage(profile.StageExport); ex.Count != len(pkts) {
		t.Errorf("export charges = %d, want %d", ex.Count, len(pkts))
	}

	// Remote accounting must not disturb the local attribution invariant.
	if err := ledger.Reconcile(e.M); err != nil {
		t.Fatalf("reconcile after farm merge: %v", err)
	}
}

// TestFarmLedgerDedupesRedispatch: a duplicate slice for the same trace ID
// (a redispatched packet judged twice) is merged exactly once.
func TestFarmLedgerDedupesRedispatch(t *testing.T) {
	ledger := profile.NewLedger()
	sl := profile.Slice{TraceID: 42, HostNs: 10, SimNs: 100, SimJ: 1}
	ledger.MergeRemote(sl)
	ledger.MergeRemote(sl)
	sum := ledger.Summarize()
	if len(sum.Host) != 1 || sum.Host[0].Count != 1 {
		t.Fatalf("duplicate slice merged twice: %+v", sum.Host)
	}
}
