package checkfarm

import (
	"reflect"
	"testing"
	"time"

	"parallaft/internal/checkd"
)

// TestFarmSoakKillRestart is the race-enabled failover soak: across several
// rounds, a different node crashes with work in flight and then rejoins at
// the same address, while submission keeps going. Every packet must resolve
// to exactly one verdict, byte-identical to the in-process checker, with no
// infrastructure verdicts — the surviving nodes always cover the gap.
// `make farm-soak` loops this under -race -count.
func TestFarmSoakKillRestart(t *testing.T) {
	_, store, pkts := runExported(t, smallSliceConfig(), victimProgram(480_000))
	if len(pkts) < 12 {
		t.Fatalf("want a long campaign, got %d packets", len(pkts))
	}
	want, err := checkd.CheckAll(store, pkts, checkd.Options{Workers: 4})
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}

	nodes := []*killableNode{
		startKillableNode(t, checkd.Options{Workers: 1}),
		startKillableNode(t, checkd.Options{Workers: 1}),
		startKillableNode(t, checkd.Options{Workers: 1}),
	}
	// MaxAttempts is the poison-packet safety net: each eviction-requeue
	// costs the packet a dispatch attempt, so a kill-heavy campaign must
	// provision the budget above the planned node-death count or an unlucky
	// packet riding every doomed node gets abandoned despite survivors.
	farm := New(store, Options{MaxAttempts: 10})
	for _, n := range nodes {
		if err := farm.AddNode(n.Spec); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(farm)

	// Four submission batches with a kill/restart round between each: the
	// crash always lands while packets are in flight somewhere.
	rounds := 3
	batch := (len(pkts) + rounds) / (rounds + 1)
	next := 0
	submit := func(n int) {
		for ; n > 0 && next < len(pkts); n-- {
			if err := farm.Submit(pkts[next]); err != nil {
				t.Fatalf("Submit packet %d: %v", next, err)
			}
			next++
		}
	}
	liveInstances := func() int {
		live := 0
		for _, ns := range farm.NodeStats() {
			if ns.Live {
				live++
			}
		}
		return live
	}
	for round := 0; round < rounds; round++ {
		submit(batch)
		victim := nodes[round%len(nodes)]
		victim.KillConns()
		deadline := time.Now().Add(15 * time.Second)
		for liveInstances() != 2 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: eviction of %s never observed", round, victim.Spec)
			}
			time.Sleep(time.Millisecond)
		}
		if err := farm.AddNode(victim.Spec); err != nil {
			t.Fatalf("round %d: restart %s: %v", round, victim.Spec, err)
		}
	}
	submit(len(pkts))
	farm.Close()

	vs := got()
	if len(vs) != len(pkts) {
		t.Fatalf("%d verdicts for %d packets: lost or duplicated under churn", len(vs), len(pkts))
	}
	seen := make(map[int]bool, len(vs))
	for i, v := range vs {
		if seen[v.Seq] {
			t.Fatalf("verdict seq %d delivered twice", v.Seq)
		}
		seen[v.Seq] = true
		if v.Seq != i {
			t.Fatalf("verdict %d has seq %d; submission order broken", i, v.Seq)
		}
		if v.Infra != "" {
			t.Fatalf("infrastructure verdict despite surviving nodes: %+v", v)
		}
	}
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("soak verdicts differ from in-process:\n farm %+v\nlocal %+v", vs, want)
	}
	stats := farm.NodeStats()
	if len(stats) != 3+rounds {
		t.Fatalf("want %d node instances (3 initial + %d restarts), got %d", 3+rounds, rounds, len(stats))
	}
	for _, ns := range stats {
		// At most once per key per node: a crashed node may have keys
		// charged to the cache whose upload never finished, but never the
		// reverse; a node that ended healthy has uploaded exactly its cache.
		if ns.Uploads > ns.CacheSize {
			t.Errorf("node %s: %d uploads for %d cached chunks; a chunk went over the wire twice",
				ns.Addr, ns.Uploads, ns.CacheSize)
		}
		if ns.EvictReason == "" && ns.Uploads != ns.CacheSize {
			t.Errorf("node %s ended healthy with %d uploads for %d cached chunks",
				ns.Addr, ns.Uploads, ns.CacheSize)
		}
	}
}
