package checkfarm

import (
	"parallaft/internal/telemetry"
)

// farmMetrics bundles the dispatcher-side instrument handles, resolved once
// per Farm from Options.Metrics. All nil (no-op) without a registry, like
// every other subsystem's telemetry.
type farmMetrics struct {
	liveNodes *telemetry.Gauge
	inflight  *telemetry.Gauge

	joins     *telemetry.Counter
	evictions *telemetry.Counter

	submitted     *telemetry.Counter
	verdicts      *telemetry.Counter
	infraVerdicts *telemetry.Counter
	redispatches  *telemetry.Counter

	chunkUploads     *telemetry.Counter
	chunkUploadBytes *telemetry.Counter
	chunkCacheHits   *telemetry.Counter

	heartbeats *telemetry.Counter

	// Per-stage latency attribution across the fleet: where a packet's
	// Submit→delivery wall time actually goes. The four stages partition
	// the pipeline — queue wait, wire time, remote work, reorder wait — so
	// the histograms answer "is the fleet slow or is the dispatcher
	// starved" directly, which one end-to-end histogram never could.
	dispatchWait *telemetry.Histogram
	uploadTime   *telemetry.Histogram
	remoteVerify *telemetry.Histogram
	deliveryWait *telemetry.Histogram
}

func newFarmMetrics(reg *telemetry.Registry) farmMetrics {
	var m farmMetrics
	if reg == nil {
		return m
	}
	m.liveNodes = reg.Gauge("paft_farm_live_nodes",
		"checkd nodes currently connected and considered live")
	m.inflight = reg.Gauge("paft_farm_inflight_packets",
		"packets dispatched to a node but not yet resolved to a verdict")
	m.joins = reg.Counter("paft_farm_node_joins_total",
		"nodes added to the farm (initial set and elastic joins)")
	m.evictions = reg.Counter("paft_farm_node_evictions_total",
		"nodes evicted after a transport failure, rejection, or heartbeat timeout")
	m.submitted = reg.Counter("paft_farm_packets_submitted_total",
		"check packets accepted by the dispatcher")
	m.verdicts = reg.Counter("paft_farm_verdicts_total",
		"verdicts delivered to the consumer (including infrastructure verdicts)")
	m.infraVerdicts = reg.Counter("paft_farm_infra_verdicts_total",
		"packets resolved with an infrastructure verdict instead of a node's answer")
	m.redispatches = reg.Counter("paft_farm_redispatches_total",
		"in-flight packets re-dispatched after their node was evicted")
	m.chunkUploads = reg.Counter("paft_farm_chunk_uploads_total",
		"content-addressed chunks uploaded to nodes (at most once per key per node)")
	m.chunkUploadBytes = reg.Counter("paft_farm_chunk_upload_bytes_total",
		"payload bytes of chunks uploaded to nodes")
	m.chunkCacheHits = reg.Counter("paft_farm_chunk_cache_hits_total",
		"chunk uploads skipped because the per-node cache shows the key resident")
	m.heartbeats = reg.Counter("paft_farm_heartbeats_sent_total",
		"heartbeat pings written to nodes")

	buckets := telemetry.ExpBuckets(1e-5, 4, 12)
	m.dispatchWait = reg.Histogram("paft_farm_dispatch_wait_seconds",
		"wall time a packet waits in the dispatch queue before a node is chosen", buckets)
	m.uploadTime = reg.Histogram("paft_farm_upload_seconds",
		"wall time spent writing a packet's missing chunks and the packet itself to a node", buckets)
	m.remoteVerify = reg.Histogram("paft_farm_remote_verify_seconds",
		"wall time from upload completion to the node's verdict arriving", buckets)
	m.deliveryWait = reg.Histogram("paft_farm_delivery_wait_seconds",
		"wall time a resolved verdict waits for in-order delivery to the consumer", buckets)
	return m
}
