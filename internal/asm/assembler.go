package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"parallaft/internal/isa"
)

// Assemble parses guest assembly text into a Program. The syntax:
//
//	; comment (also #)
//	label:                     ; code label
//	    movi x1, 42            ; decimal, 0x hex, or 'c' char immediates
//	    movi x2, =buf          ; address of data symbol
//	    ld   x3, x2, 8         ; loads/stores: reg, base, offset
//	    beq  x1, x3, label     ; branch targets are labels
//	    fmovi f0, 1.5          ; float immediates on fmovi
//	    syscall
//	    halt
//	.word  name v1 v2 ...      ; 64-bit data words
//	.float name v1 v2 ...      ; float64 data
//	.byte  name v1 v2 ...      ; bytes
//	.ascii name "text"         ; string bytes
//	.space name n              ; n zero bytes in BSS
//	.entry label               ; start execution at label (default: index 0)
//
// Operands are comma- or whitespace-separated. Errors carry line numbers.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{b: NewBuilder(name)}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	if a.entryLabel != "" {
		pc, ok := p.Labels[a.entryLabel]
		if !ok {
			return nil, fmt.Errorf("%s: .entry: undefined label %q", name, a.entryLabel)
		}
		p.Entry = pc
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for static definitions.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b          *Builder
	entryLabel string
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

// tokenize splits on whitespace and commas, keeping quoted strings intact.
func tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	inStr := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case !inStr && (c == ' ' || c == '\t' || c == ','):
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return toks
}

func (a *assembler) line(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}

	// One or more leading "label:" prefixes.
	for {
		idx := strings.Index(s, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(s[:idx])
		if head == "" || strings.ContainsAny(head, " \t\"") {
			break
		}
		a.b.Label(head)
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return a.b.err
		}
	}

	toks := tokenize(s)
	if len(toks) == 0 {
		return a.b.err
	}

	if strings.HasPrefix(toks[0], ".") {
		return a.directive(toks)
	}
	return a.instruction(toks)
}

func (a *assembler) directive(toks []string) error {
	switch toks[0] {
	case ".entry":
		if len(toks) != 2 {
			return fmt.Errorf(".entry wants one label")
		}
		a.entryLabel = toks[1]
		return nil
	case ".word", ".float", ".byte":
		if len(toks) < 3 {
			return fmt.Errorf("%s wants a name and at least one value", toks[0])
		}
		name := toks[1]
		switch toks[0] {
		case ".word":
			vals := make([]uint64, 0, len(toks)-2)
			for _, t := range toks[2:] {
				v, err := parseInt(t)
				if err != nil {
					return err
				}
				vals = append(vals, uint64(v))
			}
			a.b.Words(name, vals...)
		case ".float":
			vals := make([]float64, 0, len(toks)-2)
			for _, t := range toks[2:] {
				v, err := strconv.ParseFloat(t, 64)
				if err != nil {
					return fmt.Errorf("bad float %q", t)
				}
				vals = append(vals, v)
			}
			a.b.Floats(name, vals...)
		case ".byte":
			vals := make([]byte, 0, len(toks)-2)
			for _, t := range toks[2:] {
				v, err := parseInt(t)
				if err != nil {
					return err
				}
				if v < 0 || v > 255 {
					return fmt.Errorf("byte value %d out of range", v)
				}
				vals = append(vals, byte(v))
			}
			a.b.Bytes(name, vals)
		}
		return a.b.err
	case ".ascii":
		if len(toks) != 3 || !strings.HasPrefix(toks[2], "\"") || !strings.HasSuffix(toks[2], "\"") {
			return fmt.Errorf(".ascii wants a name and a quoted string")
		}
		s, err := strconv.Unquote(toks[2])
		if err != nil {
			return fmt.Errorf(".ascii: bad string %s: %v", toks[2], err)
		}
		a.b.Bytes(toks[1], []byte(s))
		return a.b.err
	case ".space":
		if len(toks) != 3 {
			return fmt.Errorf(".space wants a name and a size")
		}
		n, err := parseInt(toks[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad .space size %q", toks[2])
		}
		a.b.Space(toks[1], uint64(n))
		return a.b.err
	}
	return fmt.Errorf("unknown directive %q", toks[0])
}

func parseInt(t string) (int64, error) {
	if len(t) == 3 && t[0] == '\'' && t[2] == '\'' {
		return int64(t[1]), nil
	}
	v, err := strconv.ParseInt(t, 0, 64)
	if err != nil {
		// allow full-range unsigned hex like 0xffffffffffffffff
		u, uerr := strconv.ParseUint(t, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad integer %q", t)
		}
		return int64(u), nil
	}
	return v, nil
}

func parseReg(t string, prefix byte, limit uint8) (uint8, error) {
	if len(t) < 2 || t[0] != prefix {
		return 0, fmt.Errorf("expected %c-register, got %q", prefix, t)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n >= int(limit) {
		return 0, fmt.Errorf("bad register %q", t)
	}
	return uint8(n), nil
}

func (a *assembler) instruction(toks []string) error {
	op, ok := isa.OpByName[toks[0]]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", toks[0])
	}
	args := toks[1:]

	next := func() (string, error) {
		if len(args) == 0 {
			return "", fmt.Errorf("%s: missing operand", op)
		}
		t := args[0]
		args = args[1:]
		return t, nil
	}
	gpr := func() (uint8, error) {
		t, err := next()
		if err != nil {
			return 0, err
		}
		return parseReg(t, 'x', isa.NumGPR)
	}
	fpr := func() (uint8, error) {
		t, err := next()
		if err != nil {
			return 0, err
		}
		return parseReg(t, 'f', isa.NumFPR)
	}
	vr := func() (uint8, error) {
		t, err := next()
		if err != nil {
			return 0, err
		}
		return parseReg(t, 'v', isa.NumVR)
	}
	imm := func() (int64, error) {
		t, err := next()
		if err != nil {
			return 0, err
		}
		return parseInt(t)
	}

	ins := isa.Instr{Op: op}
	var err error
	fill := func(steps ...func() error) error {
		for _, step := range steps {
			if err := step(); err != nil {
				return err
			}
		}
		if len(args) != 0 {
			return fmt.Errorf("%s: too many operands", op)
		}
		a.b.Emit(ins)
		return nil
	}
	setRd := func(f func() (uint8, error)) func() error {
		return func() error { ins.Rd, err = f(); return err }
	}
	setRa := func(f func() (uint8, error)) func() error {
		return func() error { ins.Ra, err = f(); return err }
	}
	setRb := func(f func() (uint8, error)) func() error {
		return func() error { ins.Rb, err = f(); return err }
	}
	setImm := func() error { ins.Imm, err = imm(); return err }

	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpSyscall:
		return fill()
	case isa.OpMov:
		return fill(setRd(gpr), setRa(gpr))
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt:
		return fill(setRd(gpr), setRa(gpr), setRb(gpr))
	case isa.OpMovI:
		// movi xd, imm  |  movi xd, =symbol
		if err := setRd(gpr)(); err != nil {
			return err
		}
		t, err := next()
		if err != nil {
			return err
		}
		if len(args) != 0 {
			return fmt.Errorf("%s: too many operands", op)
		}
		if strings.HasPrefix(t, "=") {
			a.b.Addr(ins.Rd, t[1:])
			return nil
		}
		v, err := parseInt(t)
		if err != nil {
			return err
		}
		ins.Imm = v
		a.b.Emit(ins)
		return nil
	case isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSltI:
		return fill(setRd(gpr), setRa(gpr), setImm)
	case isa.OpFMov:
		return fill(setRd(fpr), setRa(fpr))
	case isa.OpFMovI:
		if err := setRd(fpr)(); err != nil {
			return err
		}
		t, err := next()
		if err != nil {
			return err
		}
		if len(args) != 0 {
			return fmt.Errorf("%s: too many operands", op)
		}
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return fmt.Errorf("bad float %q", t)
		}
		ins.Imm = int64(math.Float64bits(v))
		a.b.Emit(ins)
		return nil
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return fill(setRd(fpr), setRa(fpr), setRb(fpr))
	case isa.OpFSqrt:
		return fill(setRd(fpr), setRa(fpr))
	case isa.OpCvtIF:
		return fill(setRd(fpr), setRa(gpr))
	case isa.OpCvtFI:
		return fill(setRd(gpr), setRa(fpr))
	case isa.OpFCmpLt:
		return fill(setRd(gpr), setRa(fpr), setRb(fpr))
	case isa.OpVAdd, isa.OpVXor, isa.OpVMul:
		return fill(setRd(vr), setRa(vr), setRb(vr))
	case isa.OpVSplat:
		return fill(setRd(vr), setRa(gpr))
	case isa.OpLd, isa.OpLdB:
		return fill(setRd(gpr), setRa(gpr), setImm)
	case isa.OpSt, isa.OpStB:
		// st xa, off, xb  — matches the Builder's argument order
		return fill(setRa(gpr), setImm, setRb(gpr))
	case isa.OpFLd:
		return fill(setRd(fpr), setRa(gpr), setImm)
	case isa.OpFSt:
		return fill(setRa(gpr), setImm, setRb(fpr))
	case isa.OpVLd:
		return fill(setRd(vr), setRa(gpr), setImm)
	case isa.OpVSt:
		return fill(setRa(gpr), setImm, setRb(vr))
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if err := setRa(gpr)(); err != nil {
			return err
		}
		if err := setRb(gpr)(); err != nil {
			return err
		}
		return a.branchTarget(op, ins.Ra, ins.Rb, &args)
	case isa.OpJmp, isa.OpJal:
		return a.branchTarget(op, 0, 0, &args)
	case isa.OpJr:
		return fill(setRa(gpr))
	case isa.OpRdtsc:
		return fill(setRd(gpr))
	case isa.OpMrs:
		return fill(setRd(gpr), setImm)
	}
	return fmt.Errorf("unhandled mnemonic %q", toks[0])
}

func (a *assembler) branchTarget(op isa.Op, ra, rb uint8, args *[]string) error {
	if len(*args) != 1 {
		return fmt.Errorf("%s: wants a label target", op)
	}
	label := (*args)[0]
	*args = nil
	a.b.branch(op, ra, rb, label)
	return nil
}
