// Package asm provides the front end for guest programs: a two-pass textual
// assembler, a programmatic Builder used by the workload generators, and a
// disassembler. It produces Program images that the simulated OS loads into
// a process.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"parallaft/internal/isa"
)

// Default memory layout constants for loaded programs. The OS loader maps
// the data image at DataBase, the stack below StackTop, and sets the program
// break just past the data image.
const (
	DataBase  uint64 = 0x0001_0000
	StackTop  uint64 = 0x7fff_0000
	StackSize uint64 = 256 * 1024
)

// Program is an assembled guest program image.
type Program struct {
	Name    string
	Code    []isa.Instr
	Data    []byte            // initial data image, mapped at DataBase
	Entry   uint64            // starting PC (instruction index)
	BSS     uint64            // zero-initialised bytes mapped after Data
	Symbols map[string]uint64 // data symbol -> virtual address
	Labels  map[string]uint64 // code label -> instruction index
}

// DataEnd returns the first address past the data+BSS image.
func (p *Program) DataEnd() uint64 {
	return DataBase + uint64(len(p.Data)) + p.BSS
}

// Validate checks every instruction against the ISA operand rules.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("asm: program %q has no code", p.Name)
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("asm: program %q entry %d outside code", p.Name, p.Entry)
	}
	return isa.ValidateProgram(p.Code)
}

// Disassemble renders the program as assembler text with labels and data
// directives, suitable for re-assembly: branch targets are rendered as
// labels (synthesising L<pc> names where the program has none), and data
// symbols become .byte directives so `movi rd, =sym` immediates survive the
// round trip.
func (p *Program) Disassemble() string {
	var sb strings.Builder

	labelAt := make(map[uint64][]string)
	for name, pc := range p.Labels {
		labelAt[pc] = append(labelAt[pc], name)
	}
	for pc := range labelAt {
		sort.Strings(labelAt[pc])
	}
	// Synthesise labels for branch targets that have none; remember the
	// name to use per target.
	targetName := make(map[uint64]string)
	for _, ins := range p.Code {
		if ins.Op.IsBranch() && ins.Op != isa.OpJr {
			tgt := uint64(ins.Imm)
			if _, ok := targetName[tgt]; ok {
				continue
			}
			if names := labelAt[tgt]; len(names) > 0 {
				targetName[tgt] = names[0]
			} else {
				name := fmt.Sprintf("L%d", tgt)
				targetName[tgt] = name
				labelAt[tgt] = append(labelAt[tgt], name)
			}
		}
	}

	// Data image as .byte directives, chunked per symbol region. Symbols
	// inside the BSS become .space reservations.
	if len(p.Symbols) > 0 {
		names := make([]string, 0, len(p.Symbols))
		for n := range p.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.Symbols[names[i]] < p.Symbols[names[j]] })
		dataEnd := DataBase + uint64(len(p.Data))
		if first := p.Symbols[names[0]]; first > DataBase && first <= dataEnd {
			// preserve anonymous bytes before the first symbol
			fmt.Fprintf(&sb, ".byte __pre")
			for _, b := range p.Data[:first-DataBase] {
				fmt.Fprintf(&sb, " %d", b)
			}
			sb.WriteByte('\n')
		}
		for i, n := range names {
			start := p.Symbols[n]
			end := dataEnd + p.BSS
			if i+1 < len(names) {
				end = p.Symbols[names[i+1]]
			}
			if start >= dataEnd {
				fmt.Fprintf(&sb, ".space %s %d\n", n, end-start)
				continue
			}
			fmt.Fprintf(&sb, ".byte %s", n)
			for _, b := range p.Data[start-DataBase : end-DataBase] {
				fmt.Fprintf(&sb, " %d", b)
			}
			sb.WriteByte('\n')
		}
	}

	for pc, ins := range p.Code {
		for _, l := range labelAt[uint64(pc)] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		if ins.Op.IsBranch() && ins.Op != isa.OpJr {
			mn := ins.Op.String()
			switch ins.Op {
			case isa.OpJmp, isa.OpJal:
				fmt.Fprintf(&sb, "\t%s %s\n", mn, targetName[uint64(ins.Imm)])
			default:
				fmt.Fprintf(&sb, "\t%s x%d, x%d, %s\n", mn, ins.Ra, ins.Rb, targetName[uint64(ins.Imm)])
			}
			continue
		}
		fmt.Fprintf(&sb, "\t%s\n", ins)
	}
	if p.Entry != 0 {
		if names := labelAt[p.Entry]; len(names) > 0 {
			fmt.Fprintf(&sb, ".entry %s\n", names[0])
		}
	}
	return sb.String()
}
