package asm

import (
	"math/rand"
	"testing"

	"parallaft/internal/isa"
)

// TestRandomProgramsRoundTrip: random valid programs survive
// disassemble-then-reassemble bit-for-bit — the property that makes the
// disassembler trustworthy for debugging workloads.
func TestRandomProgramsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		b := NewBuilder("rt")
		b.Words("data", uint64(rng.Int63()), uint64(rng.Int63()))
		b.Space("bss", 64)

		n := 5 + rng.Intn(40)
		// lay down labels we can branch to
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				b.Label(labelName(i))
			}
			switch rng.Intn(10) {
			case 0:
				b.MovI(uint8(rng.Intn(16)), rng.Int63n(1e9)-5e8)
			case 1:
				b.Add(uint8(rng.Intn(16)), uint8(rng.Intn(16)), uint8(rng.Intn(16)))
			case 2:
				b.Ld(uint8(rng.Intn(16)), uint8(rng.Intn(16)), int64(rng.Intn(64)*8))
			case 3:
				b.St(uint8(rng.Intn(16)), int64(rng.Intn(64)*8), uint8(rng.Intn(16)))
			case 4:
				b.FMovI(uint8(rng.Intn(8)), rng.Float64()*100-50)
			case 5:
				b.FAdd(uint8(rng.Intn(8)), uint8(rng.Intn(8)), uint8(rng.Intn(8)))
			case 6:
				b.VSplat(uint8(rng.Intn(4)), uint8(rng.Intn(16)))
			case 7:
				b.Rdtsc(uint8(rng.Intn(16)))
			case 8:
				b.Addr(uint8(rng.Intn(16)), "data")
			case 9:
				b.Syscall()
			}
		}
		// a branch back to an existing label, if any were laid
		b.Label("end")
		b.Beq(uint8(rng.Intn(16)), uint8(rng.Intn(16)), "end")
		b.Halt()

		p1, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		p2, err := Assemble("rt2", p1.Disassemble())
		if err != nil {
			t.Fatalf("trial %d: reassemble: %v\n%s", trial, err, p1.Disassemble())
		}
		if len(p1.Code) != len(p2.Code) {
			t.Fatalf("trial %d: code length %d -> %d", trial, len(p1.Code), len(p2.Code))
		}
		for i := range p1.Code {
			if p1.Code[i] != p2.Code[i] {
				t.Fatalf("trial %d instr %d: %v -> %v", trial, i, p1.Code[i], p2.Code[i])
			}
		}
		if string(p1.Data) != string(p2.Data) {
			t.Fatalf("trial %d: data image changed", trial)
		}
		if p1.BSS != p2.BSS {
			t.Fatalf("trial %d: BSS %d -> %d", trial, p1.BSS, p2.BSS)
		}
	}
}

func labelName(i int) string {
	return "lab" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// TestDisassembleSynthesisesBranchLabels: branch targets without source
// labels get synthetic ones.
func TestDisassembleSynthesisesBranchLabels(t *testing.T) {
	p := &Program{
		Name: "synth",
		Code: []isa.Instr{
			{Op: isa.OpMovI, Rd: 1, Imm: 3},
			{Op: isa.OpBne, Ra: 1, Rb: 2, Imm: 0},
			{Op: isa.OpHalt},
		},
	}
	p2, err := Assemble("resynth", p.Disassemble())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, p.Disassemble())
	}
	if p2.Code[1].Imm != 0 {
		t.Errorf("branch target %d, want 0", p2.Code[1].Imm)
	}
}
