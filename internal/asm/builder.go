package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"parallaft/internal/isa"
)

// Builder constructs a Program programmatically. Workload generators use it
// to emit guest code with symbolic labels and named data regions; Build
// resolves everything and validates the result.
//
// Branch-target operands are label names; data addresses are obtained with
// Addr (an immediate-materialising movi). The zero value is not ready for
// use; call NewBuilder.
type Builder struct {
	name      string
	code      []isa.Instr
	fixups    []fixup // branch instructions awaiting label resolution
	labels    map[string]uint64
	data      []byte
	symbols   map[string]uint64
	symFix    []symFixup
	symFixBSS []bssReservation
	bss       uint64
	err       error
}

type fixup struct {
	pc    int
	label string
}

type symFixup struct {
	pc  int
	sym string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]uint64),
		symbols: make(map[string]uint64),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: builder %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return uint64(len(b.code)) }

// Label defines a code label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(i isa.Instr) { b.code = append(b.code, i) }

// --- data section -----------------------------------------------------

func (b *Builder) defineSymbol(name string, addr uint64) {
	if _, dup := b.symbols[name]; dup {
		b.fail("duplicate symbol %q", name)
		return
	}
	b.symbols[name] = addr
}

// Words appends named 64-bit data words to the data image.
func (b *Builder) Words(name string, vals ...uint64) {
	b.align(8)
	b.defineSymbol(name, DataBase+uint64(len(b.data)))
	for _, v := range vals {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		b.data = append(b.data, w[:]...)
	}
}

// Floats appends named float64 data to the data image.
func (b *Builder) Floats(name string, vals ...float64) {
	b.align(8)
	b.defineSymbol(name, DataBase+uint64(len(b.data)))
	for _, v := range vals {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		b.data = append(b.data, w[:]...)
	}
}

// Bytes appends named raw bytes to the data image.
func (b *Builder) Bytes(name string, val []byte) {
	b.defineSymbol(name, DataBase+uint64(len(b.data)))
	b.data = append(b.data, val...)
}

// Ascii appends a NUL-terminated string to the data image (the guest ABI's
// path-string convention).
func (b *Builder) Ascii(name, s string) {
	b.Bytes(name, append([]byte(s), 0))
}

// Space reserves n zero bytes in the BSS after all initialised data. All
// Space regions are laid out, in call order, after the data image.
func (b *Builder) Space(name string, n uint64) {
	b.align(8)
	// BSS symbols are resolved at Build time, once the data image is final.
	b.symFixBSS = append(b.symFixBSS, bssReservation{name: name, size: n, offset: b.bss})
	b.bss += (n + 7) &^ 7
}

type bssReservation struct {
	name   string
	size   uint64
	offset uint64
}

func (b *Builder) align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// --- instruction helpers ----------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.OpNop}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.OpHalt}) }

// MovI loads an immediate into a GPR.
func (b *Builder) MovI(rd uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpMovI, Rd: rd, Imm: imm})
}

// Addr loads the address of a data symbol into a GPR.
func (b *Builder) Addr(rd uint8, sym string) {
	b.symFix = append(b.symFix, symFixup{pc: len(b.code), sym: sym})
	b.Emit(isa.Instr{Op: isa.OpMovI, Rd: rd})
}

// LabelAddr loads a code label's instruction index into a GPR (for indirect
// jumps and signal-handler registration).
func (b *Builder) LabelAddr(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.Emit(isa.Instr{Op: isa.OpMovI, Rd: rd})
}

// Mov copies Ra to Rd.
func (b *Builder) Mov(rd, ra uint8) { b.Emit(isa.Instr{Op: isa.OpMov, Rd: rd, Ra: ra}) }

// Three-register ALU helpers.

// Add emits rd = ra + rb.
func (b *Builder) Add(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Ra: ra, Rb: rb}) }

// Sub emits rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpSub, Rd: rd, Ra: ra, Rb: rb}) }

// Mul emits rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpMul, Rd: rd, Ra: ra, Rb: rb}) }

// Div emits rd = ra / rb (signed; divide-by-zero faults).
func (b *Builder) Div(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpDiv, Rd: rd, Ra: ra, Rb: rb}) }

// Rem emits rd = ra % rb (signed; divide-by-zero faults).
func (b *Builder) Rem(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpRem, Rd: rd, Ra: ra, Rb: rb}) }

// And emits rd = ra & rb.
func (b *Builder) And(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpAnd, Rd: rd, Ra: ra, Rb: rb}) }

// Or emits rd = ra | rb.
func (b *Builder) Or(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpOr, Rd: rd, Ra: ra, Rb: rb}) }

// Xor emits rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpXor, Rd: rd, Ra: ra, Rb: rb}) }

// Shl emits rd = ra << (rb & 63).
func (b *Builder) Shl(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpShl, Rd: rd, Ra: ra, Rb: rb}) }

// Shr emits rd = ra >> (rb & 63) (logical).
func (b *Builder) Shr(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpShr, Rd: rd, Ra: ra, Rb: rb}) }

// Slt emits rd = (ra < rb) signed.
func (b *Builder) Slt(rd, ra, rb uint8) { b.Emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Ra: ra, Rb: rb}) }

// Immediate ALU helpers.

// AddI emits rd = ra + imm.
func (b *Builder) AddI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpAddI, Rd: rd, Ra: ra, Imm: imm})
}

// MulI emits rd = ra * imm.
func (b *Builder) MulI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpMulI, Rd: rd, Ra: ra, Imm: imm})
}

// AndI emits rd = ra & imm.
func (b *Builder) AndI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpAndI, Rd: rd, Ra: ra, Imm: imm})
}

// OrI emits rd = ra | imm.
func (b *Builder) OrI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpOrI, Rd: rd, Ra: ra, Imm: imm})
}

// XorI emits rd = ra ^ imm.
func (b *Builder) XorI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpXorI, Rd: rd, Ra: ra, Imm: imm})
}

// ShlI emits rd = ra << imm.
func (b *Builder) ShlI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpShlI, Rd: rd, Ra: ra, Imm: imm})
}

// ShrI emits rd = ra >> imm (logical).
func (b *Builder) ShrI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpShrI, Rd: rd, Ra: ra, Imm: imm})
}

// SltI emits rd = (ra < imm) signed.
func (b *Builder) SltI(rd, ra uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpSltI, Rd: rd, Ra: ra, Imm: imm})
}

// Floating-point helpers.

// FMovI loads a float64 constant into an FPR.
func (b *Builder) FMovI(fd uint8, v float64) {
	b.Emit(isa.Instr{Op: isa.OpFMovI, Rd: fd, Imm: int64(math.Float64bits(v))})
}

// FMov copies Fa to Fd.
func (b *Builder) FMov(fd, fa uint8) { b.Emit(isa.Instr{Op: isa.OpFMov, Rd: fd, Ra: fa}) }

// FAdd emits fd = fa + fb.
func (b *Builder) FAdd(fd, fa, fb uint8) { b.Emit(isa.Instr{Op: isa.OpFAdd, Rd: fd, Ra: fa, Rb: fb}) }

// FSub emits fd = fa - fb.
func (b *Builder) FSub(fd, fa, fb uint8) { b.Emit(isa.Instr{Op: isa.OpFSub, Rd: fd, Ra: fa, Rb: fb}) }

// FMul emits fd = fa * fb.
func (b *Builder) FMul(fd, fa, fb uint8) { b.Emit(isa.Instr{Op: isa.OpFMul, Rd: fd, Ra: fa, Rb: fb}) }

// FDiv emits fd = fa / fb.
func (b *Builder) FDiv(fd, fa, fb uint8) { b.Emit(isa.Instr{Op: isa.OpFDiv, Rd: fd, Ra: fa, Rb: fb}) }

// FSqrt emits fd = sqrt(fa).
func (b *Builder) FSqrt(fd, fa uint8) { b.Emit(isa.Instr{Op: isa.OpFSqrt, Rd: fd, Ra: fa}) }

// CvtIF emits fd = float64(xa).
func (b *Builder) CvtIF(fd, xa uint8) { b.Emit(isa.Instr{Op: isa.OpCvtIF, Rd: fd, Ra: xa}) }

// CvtFI emits xd = int64(fa).
func (b *Builder) CvtFI(xd, fa uint8) { b.Emit(isa.Instr{Op: isa.OpCvtFI, Rd: xd, Ra: fa}) }

// FCmpLt emits xd = (fa < fb) ? 1 : 0.
func (b *Builder) FCmpLt(xd, fa, fb uint8) {
	b.Emit(isa.Instr{Op: isa.OpFCmpLt, Rd: xd, Ra: fa, Rb: fb})
}

// Vector helpers.

// VAdd emits vd = va + vb lane-wise.
func (b *Builder) VAdd(vd, va, vb uint8) { b.Emit(isa.Instr{Op: isa.OpVAdd, Rd: vd, Ra: va, Rb: vb}) }

// VXor emits vd = va ^ vb lane-wise.
func (b *Builder) VXor(vd, va, vb uint8) { b.Emit(isa.Instr{Op: isa.OpVXor, Rd: vd, Ra: va, Rb: vb}) }

// VMul emits vd = va * vb lane-wise.
func (b *Builder) VMul(vd, va, vb uint8) { b.Emit(isa.Instr{Op: isa.OpVMul, Rd: vd, Ra: va, Rb: vb}) }

// VSplat broadcasts xa into all lanes of vd.
func (b *Builder) VSplat(vd, xa uint8) { b.Emit(isa.Instr{Op: isa.OpVSplat, Rd: vd, Ra: xa}) }

// Memory helpers. The effective address is xa + off.

// Ld emits xd = mem64[xa+off].
func (b *Builder) Ld(xd, xa uint8, off int64) {
	b.Emit(isa.Instr{Op: isa.OpLd, Rd: xd, Ra: xa, Imm: off})
}

// St emits mem64[xa+off] = xb.
func (b *Builder) St(xa uint8, off int64, xb uint8) {
	b.Emit(isa.Instr{Op: isa.OpSt, Ra: xa, Rb: xb, Imm: off})
}

// LdB emits xd = zext(mem8[xa+off]).
func (b *Builder) LdB(xd, xa uint8, off int64) {
	b.Emit(isa.Instr{Op: isa.OpLdB, Rd: xd, Ra: xa, Imm: off})
}

// StB emits mem8[xa+off] = low byte of xb.
func (b *Builder) StB(xa uint8, off int64, xb uint8) {
	b.Emit(isa.Instr{Op: isa.OpStB, Ra: xa, Rb: xb, Imm: off})
}

// FLd emits fd = memf64[xa+off].
func (b *Builder) FLd(fd, xa uint8, off int64) {
	b.Emit(isa.Instr{Op: isa.OpFLd, Rd: fd, Ra: xa, Imm: off})
}

// FSt emits memf64[xa+off] = fb.
func (b *Builder) FSt(xa uint8, off int64, fb uint8) {
	b.Emit(isa.Instr{Op: isa.OpFSt, Ra: xa, Rb: fb, Imm: off})
}

// VLd emits vd = mem256[xa+off].
func (b *Builder) VLd(vd, xa uint8, off int64) {
	b.Emit(isa.Instr{Op: isa.OpVLd, Rd: vd, Ra: xa, Imm: off})
}

// VSt emits mem256[xa+off] = vb.
func (b *Builder) VSt(xa uint8, off int64, vb uint8) {
	b.Emit(isa.Instr{Op: isa.OpVSt, Ra: xa, Rb: vb, Imm: off})
}

// Control-flow helpers; targets are label names resolved at Build.

func (b *Builder) branch(op isa.Op, ra, rb uint8, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.Emit(isa.Instr{Op: op, Ra: ra, Rb: rb})
}

// Beq branches to label when xa == xb.
func (b *Builder) Beq(ra, rb uint8, label string) { b.branch(isa.OpBeq, ra, rb, label) }

// Bne branches to label when xa != xb.
func (b *Builder) Bne(ra, rb uint8, label string) { b.branch(isa.OpBne, ra, rb, label) }

// Blt branches to label when xa < xb (signed).
func (b *Builder) Blt(ra, rb uint8, label string) { b.branch(isa.OpBlt, ra, rb, label) }

// Bge branches to label when xa >= xb (signed).
func (b *Builder) Bge(ra, rb uint8, label string) { b.branch(isa.OpBge, ra, rb, label) }

// Jmp branches unconditionally to label.
func (b *Builder) Jmp(label string) { b.branch(isa.OpJmp, 0, 0, label) }

// Jal jumps to label, writing the return PC to x15.
func (b *Builder) Jal(label string) { b.branch(isa.OpJal, 0, 0, label) }

// Jr jumps to the address in xa.
func (b *Builder) Jr(xa uint8) { b.Emit(isa.Instr{Op: isa.OpJr, Ra: xa}) }

// System helpers.

// Syscall emits a syscall instruction (number in x0, args in x1..x5).
func (b *Builder) Syscall() { b.Emit(isa.Instr{Op: isa.OpSyscall}) }

// Rdtsc reads the timestamp counter into xd (nondeterministic; trapped).
func (b *Builder) Rdtsc(xd uint8) { b.Emit(isa.Instr{Op: isa.OpRdtsc, Rd: xd}) }

// Mrs reads system register sysreg into xd (nondeterministic; trapped).
func (b *Builder) Mrs(xd uint8, sysreg int64) {
	b.Emit(isa.Instr{Op: isa.OpMrs, Rd: xd, Imm: sysreg})
}

// Build resolves labels and symbols, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: builder %q: undefined label %q", b.name, f.label)
		}
		b.code[f.pc].Imm = int64(pc)
	}
	b.align(8)
	bssBase := DataBase + uint64(len(b.data))
	for _, r := range b.symFixBSS {
		b.defineSymbol(r.name, bssBase+r.offset)
	}
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.symFix {
		addr, ok := b.symbols[f.sym]
		if !ok {
			return nil, fmt.Errorf("asm: builder %q: undefined symbol %q", b.name, f.sym)
		}
		b.code[f.pc].Imm = int64(addr)
	}
	p := &Program{
		Name:    b.name,
		Code:    b.code,
		Data:    b.data,
		BSS:     b.bss,
		Symbols: b.symbols,
		Labels:  b.labels,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for static program definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
