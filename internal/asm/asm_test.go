package asm

import (
	"strings"
	"testing"

	"parallaft/internal/isa"
)

func TestAssembleBasics(t *testing.T) {
	src := `
; a comment line
start:  movi x1, 10      # trailing comment
        movi x2, 0x20
        movi x3, 'A'
loop:   addi x1, x1, -1
        bne  x1, x0, loop
        halt
.entry start
`
	p, err := Assemble("basics", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 6 {
		t.Fatalf("code length = %d, want 6", len(p.Code))
	}
	if p.Code[1].Imm != 0x20 || p.Code[2].Imm != 'A' {
		t.Errorf("hex/char immediates: %d, %d", p.Code[1].Imm, p.Code[2].Imm)
	}
	if p.Code[4].Op != isa.OpBne || p.Code[4].Imm != int64(p.Labels["loop"]) {
		t.Errorf("branch target: %+v", p.Code[4])
	}
	if p.Entry != p.Labels["start"] {
		t.Errorf("entry = %d", p.Entry)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
.word  vals 1 2 0xff
.float pi 3.25
.byte  raw 10 20 255
.ascii msg "hi\n"
.space scratch 64
	movi x1, =vals
	movi x2, =scratch
	halt
`
	p, err := Assemble("data", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"vals", "pi", "raw", "msg", "scratch"} {
		if _, ok := p.Symbols[sym]; !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
	if p.BSS < 64 {
		t.Errorf("bss = %d, want >= 64", p.BSS)
	}
	// scratch lives after the initialised data
	if p.Symbols["scratch"] < DataBase+uint64(len(p.Data)) {
		t.Error("space symbol inside initialised data")
	}
	if p.Code[0].Imm != int64(p.Symbols["vals"]) {
		t.Error("=symbol immediate not resolved")
	}
	// msg content with the escape processed
	off := p.Symbols["msg"] - DataBase
	if string(p.Data[off:off+3]) != "hi\n" {
		t.Errorf("ascii content = %q", p.Data[off:off+3])
	}
}

func TestAssembleErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"\n\nbogus x1, x2\n", ":3:"},
		{"movi x99, 1\n", "bad register"},
		{"add x1, x2\n", "missing operand"},
		{"add x1, x2, x3, x4\n", "too many operands"},
		{"movi x1, zzz\n", "bad integer"},
		{".word\n", "wants a name"},
		{".space s -1\n", "bad .space size"},
		{".unknown x\n", "unknown directive"},
		{"ld f1, x2, 0\n", "expected x-register"},
		{"jmp nowhere\nhalt\n", "undefined label"},
	}
	for _, c := range cases {
		_, err := Assemble("err", c.src)
		if err == nil {
			t.Errorf("source %q assembled without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not mention %q", err, c.frag)
		}
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	if _, err := Assemble("dup", "a: nop\na: nop\n"); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := Assemble("dupsym", ".word v 1\n.word v 2\nnop\n"); err == nil {
		t.Error("duplicate symbol accepted")
	}
}

func TestEntryValidation(t *testing.T) {
	if _, err := Assemble("e", "nop\n.entry missing\n"); err == nil {
		t.Error("undefined .entry accepted")
	}
	if _, err := Assemble("empty", "; nothing\n"); err == nil {
		t.Error("empty program accepted")
	}
}

func TestMultipleLabelsPerLine(t *testing.T) {
	p, err := Assemble("labels", "a: b: nop\nc: jmp a\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 || p.Labels["c"] != 1 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	src := `
.word  table 5 6 7
.ascii name "x"
start:
	movi x1, =table
	ld   x2, x1, 8
	st   x1, 16, x2
	fmovi f0, 1.5
	fadd  f1, f0, f0
	vsplat v0, x2
	vst   x1, 0, v0
	beq  x2, x3, start
	rdtsc x4
	mrs  x5, 1
	syscall
	halt
.entry start
`
	p1, err := Assemble("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("rt2", p1.Disassemble())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, p1.Disassemble())
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("code length changed: %d -> %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Errorf("instr %d: %v -> %v", i, p1.Code[i], p2.Code[i])
		}
	}
}

func TestBuilderFixups(t *testing.T) {
	b := NewBuilder("fix")
	b.Jmp("end") // forward reference
	b.Label("mid")
	b.Nop()
	b.Label("end")
	b.LabelAddr(1, "mid")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != int64(p.Labels["end"]) {
		t.Error("forward branch not resolved")
	}
	if p.Code[2].Imm != int64(p.Labels["mid"]) {
		t.Error("LabelAddr not resolved")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted by builder")
	}

	b2 := NewBuilder("badsym")
	b2.Addr(1, "ghost")
	b2.Halt()
	if _, err := b2.Build(); err == nil {
		t.Error("undefined symbol accepted by builder")
	}

	b3 := NewBuilder("dup")
	b3.Label("x")
	b3.Label("x")
	b3.Halt()
	if _, err := b3.Build(); err == nil {
		t.Error("duplicate label accepted by builder")
	}
}

func TestBuilderDataAlignment(t *testing.T) {
	b := NewBuilder("align")
	b.Bytes("odd", []byte{1, 2, 3})
	b.Words("w", 42)
	b.Floats("f", 2.5)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["w"]%8 != 0 || p.Symbols["f"]%8 != 0 {
		t.Errorf("word/float symbols unaligned: %#x %#x", p.Symbols["w"], p.Symbols["f"])
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on error")
		}
	}()
	b := NewBuilder("p")
	b.Jmp("missing")
	b.MustBuild()
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on error")
		}
	}()
	MustAssemble("p", "bogus\n")
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Name: "v", Code: []isa.Instr{{Op: isa.OpHalt}}, Entry: 5}
	if err := p.Validate(); err == nil {
		t.Error("entry outside code accepted")
	}
}

func TestNegativeAndHugeImmediates(t *testing.T) {
	p, err := Assemble("imm", "movi x1, -9223372036854775808\nmovi x2, 0xffffffffffffffff\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != -9223372036854775808 {
		t.Errorf("min int64 = %d", p.Code[0].Imm)
	}
	if uint64(p.Code[1].Imm) != 0xffffffffffffffff {
		t.Errorf("max uint64 = %#x", uint64(p.Code[1].Imm))
	}
}
