package compare

import (
	"reflect"
	"testing"

	"parallaft/internal/mem"
)

// voteScenario builds the address-space cast of one segment, mirroring how
// the runtime produces them: a start checkpoint (Base), replicas forked
// from the start state with soft-dirty cleared, the main executing the
// segment's writes, an end checkpoint (Ref), and the replicas replaying
// the same writes. mutate, when set, perturbs the cast before the vote —
// the fault model.
type voteScenario struct {
	base *mem.AddressSpace
	ref  *mem.AddressSpace
	reps []*mem.AddressSpace
}

func buildVoteScenario(t *testing.T, n int, mutate func(s *voteScenario)) voteScenario {
	t.Helper()
	main := mem.NewAddressSpace(pg)
	mustMap(t, main, 0x10000, 4*pg)
	for i := uint64(0); i < 4; i++ {
		mustStore(t, main, 0x10000+i*pg, i+1)
	}
	s := voteScenario{base: main.Fork()}
	for i := 0; i < n; i++ {
		rep := main.Fork()
		rep.ClearSoftDirty()
		s.reps = append(s.reps, rep)
	}
	// The segment's writes: the main executes them, the replicas replay them.
	write := func(as *mem.AddressSpace) {
		mustStore(t, as, 0x10000, 100)
		mustStore(t, as, 0x10000+2*pg, 200)
	}
	write(main)
	s.ref = main.Fork() // end checkpoint
	for _, rep := range s.reps {
		write(rep)
	}
	if mutate != nil {
		mutate(&s)
	}
	return s
}

func (s *voteScenario) request() VoteRequest {
	return VoteRequest{
		Base:        s.base,
		Ref:         s.ref,
		Replicas:    s.reps,
		Discovery:   FrameDiff,
		CheckerMode: mem.DirtySoft,
		Seed:        seed,
	}
}

func TestVoteUnanimous(t *testing.T) {
	s := buildVoteScenario(t, 3, nil)
	var v Voter
	res := v.Vote(s.request())
	if res.Verdict != VerdictUnanimous {
		t.Fatalf("verdict = %v, want unanimous", res.Verdict)
	}
	if res.AgreedReplica != -1 || len(res.Dissenters) != 0 {
		t.Errorf("agreed=%d dissenters=%v, want -1/none", res.AgreedReplica, res.Dissenters)
	}
	if res.RefMismatch != nil {
		t.Errorf("unexpected ref mismatch: %+v", res.RefMismatch)
	}
	if res.DirtyPages == 0 || res.HashedBytes == 0 {
		t.Errorf("books empty: dirty=%d hashed=%d", res.DirtyPages, res.HashedBytes)
	}
}

// TestVoteAbsorbsDissenter: one replica of three diverges; the reference
// side keeps its 3-of-4 majority and the dissenter is outvoted.
func TestVoteAbsorbsDissenter(t *testing.T) {
	s := buildVoteScenario(t, 3, func(s *voteScenario) {
		mustStore(t, s.reps[1], 0x10000+2*pg, 999) // SEU in replica 1
	})
	var v Voter
	res := v.Vote(s.request())
	if res.Verdict != VerdictAbsorb {
		t.Fatalf("verdict = %v, want absorb", res.Verdict)
	}
	if !reflect.DeepEqual(res.Dissenters, []int{1}) {
		t.Errorf("dissenters = %v, want [1]", res.Dissenters)
	}
	if res.RefMismatch == nil || res.RefMismatchReplica != 1 {
		t.Errorf("ref mismatch = %+v from replica %d, want content mismatch from 1",
			res.RefMismatch, res.RefMismatchReplica)
	}
}

// TestVoteAbsorbsFailedReplica: a replica that failed replay (nil address
// space) is a dissenting voter; the reference majority absorbs it without
// comparing it.
func TestVoteAbsorbsFailedReplica(t *testing.T) {
	s := buildVoteScenario(t, 3, func(s *voteScenario) {
		s.reps[2] = nil
	})
	var v Voter
	res := v.Vote(s.request())
	if res.Verdict != VerdictAbsorb {
		t.Fatalf("verdict = %v, want absorb", res.Verdict)
	}
	if !reflect.DeepEqual(res.Dissenters, []int{2}) {
		t.Errorf("dissenters = %v, want [2]", res.Dissenters)
	}
	if res.RefMismatch != nil {
		t.Errorf("failed replica must not be compared, got mismatch %+v", res.RefMismatch)
	}
}

// TestVoteOutvotesReference: the main carried the fault — the end
// checkpoint disagrees with all three replicas, which agree pairwise. The
// replica quorum wins and names its lowest-index member the agreed state.
func TestVoteOutvotesReference(t *testing.T) {
	s := buildVoteScenario(t, 3, func(s *voteScenario) {
		mustStore(t, s.ref, 0x10000, 666) // fault in the main's end state
	})
	var v Voter
	res := v.Vote(s.request())
	if res.Verdict != VerdictOutvoteRef {
		t.Fatalf("verdict = %v, want outvote-ref", res.Verdict)
	}
	if res.AgreedReplica != 0 {
		t.Errorf("agreed replica = %d, want 0 (lowest index of the quorum)", res.AgreedReplica)
	}
	if len(res.Dissenters) != 0 {
		t.Errorf("dissenters = %v, want none (all replicas in the quorum)", res.Dissenters)
	}
}

// TestVoteNoQuorum: three-way divergence — the reference and one replica
// pair cannot reach the 3-of-4 quorum, so no state is trustworthy.
func TestVoteNoQuorum(t *testing.T) {
	s := buildVoteScenario(t, 3, func(s *voteScenario) {
		mustStore(t, s.ref, 0x10000, 666)          // main diverged...
		mustStore(t, s.reps[2], 0x10000+2*pg, 999) // ...and so did replica 2
	})
	var v Voter
	res := v.Vote(s.request())
	if res.Verdict != VerdictNoQuorum {
		t.Fatalf("verdict = %v, want no-quorum (replicas 0,1 are only 2 of 4 voters)", res.Verdict)
	}
	if res.AgreedReplica != -1 {
		t.Errorf("agreed replica = %d, want -1", res.AgreedReplica)
	}
	if !reflect.DeepEqual(res.Dissenters, []int{0, 1, 2}) {
		t.Errorf("dissenters = %v, want [0 1 2] (every replica disagrees with the reference)",
			res.Dissenters)
	}
}

// TestVoteRegisterCallbacks: register disagreement is part of the vote even
// when memory matches — a replica whose registers differ from the reference
// dissents, and a register split inside the replica camp blocks grouping.
func TestVoteRegisterCallbacks(t *testing.T) {
	s := buildVoteScenario(t, 3, nil)
	req := s.request()
	req.RegsAgreeRef = func(i int) bool { return i != 1 }
	var v Voter
	res := v.Vote(req)
	if res.Verdict != VerdictAbsorb || !reflect.DeepEqual(res.Dissenters, []int{1}) {
		t.Fatalf("verdict=%v dissenters=%v, want absorb of [1]", res.Verdict, res.Dissenters)
	}

	// Now the reference loses everyone on registers, and replica 2 also
	// splits from replicas 0 and 1 pairwise: a 2-of-4 camp is no quorum.
	req = s.request()
	req.RegsAgreeRef = func(int) bool { return false }
	req.RegsAgreePair = func(i, j int) bool { return i != 2 && j != 2 }
	res = v.Vote(req)
	if res.Verdict != VerdictNoQuorum {
		t.Fatalf("verdict = %v, want no-quorum", res.Verdict)
	}

	// With registers unanimous among replicas, the same memory state is a
	// 3-strong camp: the reference is outvoted.
	req = s.request()
	req.RegsAgreeRef = func(int) bool { return false }
	res = v.Vote(req)
	if res.Verdict != VerdictOutvoteRef || res.AgreedReplica != 0 {
		t.Fatalf("verdict=%v agreed=%d, want outvote-ref/0", res.Verdict, res.AgreedReplica)
	}
}

// TestVoteSingleReplicaDegeneratesToRun: with one replica the vote is the
// pairwise comparison — same verdict semantics, and Result books
// bit-identical to Comparator.Run on the same request. The scenario is
// rebuilt from scratch for each side so the frames' hash memos start cold
// both times.
func TestVoteSingleReplicaDegeneratesToRun(t *testing.T) {
	for _, diverge := range []bool{false, true} {
		mutate := func(s *voteScenario) {}
		if diverge {
			mutate = func(s *voteScenario) { mustStore(t, s.reps[0], 0x10000, 31337) }
		}

		s1 := buildVoteScenario(t, 1, func(s *voteScenario) { mutate(s) })
		pairwise := Run(Request{
			Base:        s1.base,
			Ref:         s1.ref,
			Chk:         s1.reps[0],
			Discovery:   FrameDiff,
			CheckerMode: mem.DirtySoft,
			Seed:        seed,
		})

		s2 := buildVoteScenario(t, 1, func(s *voteScenario) { mutate(s) })
		var v Voter
		res := v.Vote(s2.request())

		want := VerdictUnanimous
		if diverge {
			want = VerdictNoQuorum
		}
		if res.Verdict != want {
			t.Fatalf("diverge=%v: verdict = %v, want %v", diverge, res.Verdict, want)
		}
		if !reflect.DeepEqual(res.RefResults[0], pairwise) {
			t.Errorf("diverge=%v: vote books differ from pairwise Run:\nvote: %+v\nrun:  %+v",
				diverge, res.RefResults[0], pairwise)
		}
		if res.DirtyPages != pairwise.DirtyPages || res.HashedBytes != pairwise.HashedBytes {
			t.Errorf("diverge=%v: summed books (%d pages, %d bytes) differ from Run (%d, %d)",
				diverge, res.DirtyPages, res.HashedBytes, pairwise.DirtyPages, pairwise.HashedBytes)
		}
	}
}

// TestVoterArenaReuse: consecutive votes on one Voter must not leak state
// between rounds (scratch slices are reused).
func TestVoterArenaReuse(t *testing.T) {
	var v Voter
	s := buildVoteScenario(t, 3, func(s *voteScenario) {
		mustStore(t, s.reps[1], 0x10000, 999)
	})
	first := v.Vote(s.request())
	if first.Verdict != VerdictAbsorb {
		t.Fatalf("first verdict = %v, want absorb", first.Verdict)
	}
	s2 := buildVoteScenario(t, 3, nil)
	second := v.Vote(s2.request())
	if second.Verdict != VerdictUnanimous {
		t.Fatalf("second verdict = %v, want unanimous (stale dissent state leaked?)", second.Verdict)
	}
	if len(second.Dissenters) != 0 || second.RefMismatch != nil {
		t.Errorf("second vote carries stale results: dissenters=%v mismatch=%+v",
			second.Dissenters, second.RefMismatch)
	}
}
