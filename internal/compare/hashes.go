package compare

import "parallaft/internal/mem"

// ExpectedPage is one page of a serialized reference state: its virtual
// page number and the XXH64 content hash recorded for it.
type ExpectedPage struct {
	VPN uint64
	Sum uint64
}

// RunAgainstHashes compares a live address space against a reference that
// exists only as per-page content hashes (a check packet's expected end
// state). It walks the union of both sides in ascending page order: a page
// present on one side only is a structural mismatch, a page whose hash
// differs is a content mismatch, and the first mismatching page is
// reported. expected must be sorted by VPN (packet end states are).
//
// Unlike Run, there is no dirty-set narrowing: the reference is already the
// complete mapped set, and the full-union walk yields the same verdict —
// pages untouched by the segment hash equal on both sides. When several
// pages mismatch at once, the reported page is the lowest-numbered one
// rather than the first in dirty-set insertion order; verdict kind and
// pass/fail are unaffected.
func RunAgainstHashes(expected []ExpectedPage, chk *mem.AddressSpace, seed uint64) *Mismatch {
	refs := chk.FrameRefs()
	i, j := 0, 0
	for i < len(expected) || j < len(refs) {
		switch {
		case j >= len(refs) || (i < len(expected) && expected[i].VPN < refs[j].VPN):
			return &Mismatch{Kind: MismatchStructural, VPN: expected[i].VPN}
		case i >= len(expected) || refs[j].VPN < expected[i].VPN:
			return &Mismatch{Kind: MismatchStructural, VPN: refs[j].VPN}
		default:
			if sum, _ := refs[j].Frame.ContentHash(seed); sum != expected[i].Sum {
				return &Mismatch{Kind: MismatchContent, VPN: expected[i].VPN}
			}
			i++
			j++
		}
	}
	return nil
}
