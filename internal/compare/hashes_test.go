package compare

import (
	"testing"

	"parallaft/internal/mem"
)

const hashesTestSeed = 0x9a7a11af7

// snapshotHashes captures an address space as an expected-page list, the
// way the packet exporter records an end state.
func snapshotHashes(as *mem.AddressSpace) []ExpectedPage {
	refs := as.FrameRefs()
	out := make([]ExpectedPage, 0, len(refs))
	for _, fr := range refs {
		sum, _ := fr.Frame.ContentHash(hashesTestSeed)
		out = append(out, ExpectedPage{VPN: fr.VPN, Sum: sum})
	}
	return out
}

func newHashesTestAS(t *testing.T) *mem.AddressSpace {
	t.Helper()
	as := mem.NewAddressSpace(4096)
	if err := as.Map(0x10000, 4*4096, mem.ProtRW, "data"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if f := as.Write(0x10000+i*4096, []byte{byte(i + 1)}); f != nil {
			t.Fatal(f)
		}
	}
	return as
}

func TestRunAgainstHashesEqual(t *testing.T) {
	as := newHashesTestAS(t)
	expected := snapshotHashes(as)
	if m := RunAgainstHashes(expected, as, hashesTestSeed); m != nil {
		t.Fatalf("identical state reported mismatch %+v", m)
	}
}

func TestRunAgainstHashesContent(t *testing.T) {
	as := newHashesTestAS(t)
	expected := snapshotHashes(as)
	if f := as.Write(0x10000+2*4096, []byte{0xff}); f != nil {
		t.Fatal(f)
	}
	m := RunAgainstHashes(expected, as, hashesTestSeed)
	if m == nil || m.Kind != MismatchContent || m.VPN != (0x10000+2*4096)/4096 {
		t.Fatalf("mismatch = %+v, want content at page %#x", m, (0x10000+2*4096)/4096)
	}
}

func TestRunAgainstHashesStructural(t *testing.T) {
	as := newHashesTestAS(t)
	expected := snapshotHashes(as)

	// Checker mapped a page the reference never had.
	if err := as.Map(0x90000, 4096, mem.ProtRW, "stray"); err != nil {
		t.Fatal(err)
	}
	m := RunAgainstHashes(expected, as, hashesTestSeed)
	if m == nil || m.Kind != MismatchStructural || m.VPN != 0x90000/4096 {
		t.Fatalf("extra page: mismatch = %+v, want structural at %#x", m, 0x90000/4096)
	}
	if err := as.Unmap(0x90000, 4096); err != nil {
		t.Fatal(err)
	}

	// Reference expects a page the checker lost.
	if err := as.Unmap(0x10000, 4*4096); err != nil {
		t.Fatal(err)
	}
	m = RunAgainstHashes(expected, as, hashesTestSeed)
	if m == nil || m.Kind != MismatchStructural || m.VPN != 0x10000/4096 {
		t.Fatalf("missing page: mismatch = %+v, want structural at %#x", m, 0x10000/4096)
	}
}

func TestRunAgainstHashesReportsLowestVPN(t *testing.T) {
	as := newHashesTestAS(t)
	expected := snapshotHashes(as)
	// Dirty two pages; the lower-numbered one must be reported.
	if f := as.Write(0x10000+3*4096, []byte{0xaa}); f != nil {
		t.Fatal(f)
	}
	if f := as.Write(0x10000+1*4096, []byte{0xbb}); f != nil {
		t.Fatal(f)
	}
	m := RunAgainstHashes(expected, as, hashesTestSeed)
	if m == nil || m.VPN != (0x10000+1*4096)/4096 {
		t.Fatalf("mismatch = %+v, want lowest page %#x", m, (0x10000+1*4096)/4096)
	}
}
