// Package compare implements the frame-aware state-comparison subsystem:
// dirty-set discovery, the frame-identity fast path, memoized page hashing,
// and a deterministic concurrent host-side hashing pipeline.
//
// The package separates two kinds of cost. The *simulated* cost — how many
// dirty pages the injected hashers of §4.4 process and how many bytes they
// hash — follows the paper's model exactly: every dirty page mapped on both
// sides is charged 2× its size (one hasher per process), no matter how the
// host computes the verdict. The *host* cost is whatever this package
// actually spends, and that is where the frame-aware shortcuts apply:
//
//   - identity fast path: two page-table entries holding the same
//     *mem.Frame are content-equal by the COW invariant (a write would
//     have redirected one side to a private copy), so no bytes are read;
//   - memoized hashes: a frame's content hash is cached on the frame and
//     invalidated by its write generation, so a frame shared across
//     checkpoints or hashed again during recovery arbitration is hashed
//     at most once per generation;
//   - concurrent hashing: pages that do need host hashing are fanned out
//     over a bounded worker pool, with the mismatch chosen by minimal
//     dirty-set index so the reported page is independent of scheduling.
//
// Callers receive both books: Result.HashedBytes feeds the simulated
// timing/energy accounting (byte-identical with the pre-refactor path),
// while HostHashedBytes, IdentitySkips and CacheHits describe what the
// host really did.
package compare

import (
	"runtime"
	"slices"
	"sync"

	"parallaft/internal/mem"
)

// Discovery selects how the reference side's dirty pages are found.
type Discovery int

const (
	// FrameDiff diffs the segment-start and segment-end checkpoints'
	// page tables (AArch64-style map-count tracking, §4.3).
	FrameDiff Discovery = iota
	// SoftDirty reads the kernel's soft-dirty bits inherited by the end
	// checkpoint (x86-style tracking).
	SoftDirty
	// FullMemory compares every mapped page — the paper's ablation. The
	// candidate set is the union of BOTH sides' mappings, so a page the
	// checker mapped but the reference never had is still examined
	// (and reported as a structural mismatch) instead of escaping.
	FullMemory
)

// Request describes one state comparison.
type Request struct {
	// Base is the segment-start snapshot; only FrameDiff discovery uses it.
	Base *mem.AddressSpace
	// Ref is the segment-end checkpoint: the reference state.
	Ref *mem.AddressSpace
	// Chk is the process under test (checker, or arbitration referee).
	Chk *mem.AddressSpace

	Discovery Discovery
	// CheckerMode is the dirty query mode for the checker side, whose
	// modified pages are unioned into the candidate set so stray checker
	// writes are caught (§4.4).
	CheckerMode mem.DirtyMode

	// Seed seeds the page hashes; it must be identical on both sides.
	Seed uint64
	// Workers bounds the host hashing pool; 0 picks a default capped by
	// GOMAXPROCS, and any negative value forces the serial path. The
	// result is identical for any value.
	Workers int
}

// MismatchKind classifies a memory mismatch.
type MismatchKind int

const (
	// MismatchStructural: the page is mapped on only one side.
	MismatchStructural MismatchKind = iota
	// MismatchContent: both sides map the page but the hashes differ.
	MismatchContent
)

// Mismatch reports the first differing page in dirty-set order.
type Mismatch struct {
	Kind MismatchKind
	VPN  uint64
}

// Result carries the outcome and both cost books of one comparison.
type Result struct {
	// DirtyPages is the size of the candidate set (simulated model).
	DirtyPages uint64
	// HashedBytes is the simulated hashing volume: 2× page size for every
	// candidate page mapped on both sides, regardless of host shortcuts.
	HashedBytes uint64

	// IdentitySkips counts pages proven equal by frame identity alone.
	IdentitySkips uint64
	// CacheHits counts per-side hashes served from a frame's memo.
	CacheHits uint64
	// HostHashedPages/HostHashedBytes count the hashing the host really
	// performed (per side: one both-mapped page is up to two host hashes).
	HostHashedPages uint64
	HostHashedBytes uint64

	// Mismatch is the first differing page in dirty-set order, nil when
	// the memories agree.
	Mismatch *Mismatch
}

// hashJob is one page that needs host-side hashing.
type hashJob struct {
	idx      int // position in the dirty set, for deterministic reporting
	vpn      uint64
	ref, chk *mem.Frame
}

// chunkResult is one worker's contribution to a concurrent hash pass.
type chunkResult struct {
	idx int
	vpn uint64
	sub Result
}

// concurrencyThreshold is the minimum number of hash jobs per extra
// worker; below it the spawn overhead outweighs the parallelism.
const concurrencyThreshold = 32

// Comparator performs state comparisons while reusing every piece of
// per-comparison scratch — the dirty-set union, the discovery buffers, and
// the hash job list — across calls. A long-lived Comparator makes the
// steady-state compare path allocation-free: after the first few segments
// the buffers reach the working-set size and all later comparisons run
// without touching the heap (the zero-value Comparator is ready to use).
//
// A Comparator is not safe for concurrent use; callers that compare from
// several goroutines use one Comparator each.
type Comparator struct {
	union   vpnUnion
	mainBuf []uint64
	chkBuf  []uint64
	vmaBuf  []mem.VMA
	jobs    []hashJob
	chunks  []chunkResult
}

// Run performs one state comparison using package-level scratch-free
// buffers. It is a convenience wrapper for one-shot callers; steady-state
// callers hold a Comparator and call its Run method to reuse scratch.
func Run(req Request) Result {
	var c Comparator
	return c.Run(req)
}

// DirtyVPNs returns the candidate page set for a request: the reference
// side's modified pages per the discovery mode, unioned with the checker
// side's modified pages, preserving first-appearance order. The returned
// slice is freshly allocated; Comparator.Run uses the reusable variant.
func DirtyVPNs(req Request) []uint64 {
	var c Comparator
	return slices.Clone(c.dirtyVPNs(req))
}

// Run performs one state comparison, reusing the Comparator's scratch.
func (c *Comparator) Run(req Request) Result {
	var res Result
	dirty := c.dirtyVPNs(req)
	res.DirtyPages = uint64(len(dirty))

	// Resolve each candidate page: structural verdicts and identity skips
	// inline; pages that need host hashing are either hashed on the spot
	// (sequential mode, the common case — no job list is ever allocated)
	// or collected for the worker pool. The loop keeps going after a
	// mismatch so the simulated accounting — which models hashers that
	// process the whole dirty set — is unaffected by where the first
	// difference sits.
	inline := workerCount(req.Workers, len(dirty)) <= 1
	jobs := c.jobs[:0]
	structuralIdx := -1
	var structuralVPN uint64
	contentIdx, contentVPN := -1, uint64(0)
	for i, vpn := range dirty {
		rf := req.Ref.FrameAt(vpn)
		cf := req.Chk.FrameAt(vpn)
		switch {
		case rf == nil && cf == nil:
			// e.g. both sides unmapped the page during the segment
		case rf == nil || cf == nil:
			if structuralIdx < 0 {
				structuralIdx, structuralVPN = i, vpn
			}
		default:
			res.HashedBytes += uint64(len(rf.Data())) * 2
			if rf == cf {
				// COW invariant: a shared frame cannot have diverged.
				res.IdentitySkips++
				continue
			}
			if inline {
				if hashPair(req.Seed, rf, cf, &res) && contentIdx < 0 {
					contentIdx, contentVPN = i, vpn
				}
			} else {
				jobs = append(jobs, hashJob{idx: i, vpn: vpn, ref: rf, chk: cf})
			}
		}
	}
	if !inline {
		contentIdx, contentVPN = c.hashJobs(req.Seed, jobs, workerCount(req.Workers, len(jobs)), &res)
	}
	c.jobs = jobs[:0]

	// The reported mismatch is the first in dirty-set order across both
	// kinds, exactly as a sequential scan would have found it.
	switch {
	case structuralIdx >= 0 && (contentIdx < 0 || structuralIdx < contentIdx):
		res.Mismatch = &Mismatch{Kind: MismatchStructural, VPN: structuralVPN}
	case contentIdx >= 0:
		res.Mismatch = &Mismatch{Kind: MismatchContent, VPN: contentVPN}
	}
	return res
}

// dirtyVPNs builds the candidate page set into the Comparator's reusable
// union buffer: the reference side's modified pages per the discovery mode,
// unioned with the checker side's modified pages, preserving
// first-appearance order. The returned slice aliases Comparator scratch and
// is valid until the next call.
//
// Every source list arrives sorted ascending (mem's Append* helpers sort,
// and VMA walks ascend), so the union dedups by binary-searching the
// already-emitted runs instead of keeping a map — same output, no
// per-comparison allocation once the buffers have grown.
func (c *Comparator) dirtyVPNs(req Request) []uint64 {
	chkDirty := req.Chk.AppendDirtyPages(req.CheckerMode, c.chkBuf[:0])
	c.chkBuf = chkDirty
	u := &c.union
	switch req.Discovery {
	case FrameDiff:
		main := mem.AppendDiffFrames(req.Base, req.Ref, c.mainBuf[:0])
		c.mainBuf = main
		u.reset(len(main) + len(chkDirty))
		u.addRun(main)
	case SoftDirty:
		main := req.Ref.AppendDirtyPages(mem.DirtySoft, c.mainBuf[:0])
		c.mainBuf = main
		u.reset(len(main) + len(chkDirty))
		u.addRun(main)
	case FullMemory:
		// The two sides' mappings almost always coincide, so the
		// reference's page count is the right size hint for the union.
		u.reset(req.Ref.PageCount() + len(chkDirty))
		c.addAllMapped(req.Ref)
		c.addAllMapped(req.Chk)
	}
	u.addRun(chkDirty)
	return u.out
}

// vpnUnion unions sorted page-number runs, preserving first-appearance
// order. out is a concatenation of ascending sub-runs (one per sealed
// source, duplicates removed), so membership in "everything emitted so far"
// is a binary search per earlier sub-run.
type vpnUnion struct {
	out  []uint64
	ends []int // end offset in out of each sealed sub-run
}

func (u *vpnUnion) reset(capacity int) {
	if cap(u.out) < capacity {
		u.out = make([]uint64, 0, capacity)
	} else {
		u.out = u.out[:0]
	}
	u.ends = u.ends[:0]
}

// seen reports whether vpn was emitted by any sealed run.
func (u *vpnUnion) seen(vpn uint64) bool {
	start := 0
	for _, end := range u.ends {
		if _, ok := slices.BinarySearch(u.out[start:end], vpn); ok {
			return true
		}
		start = end
	}
	return false
}

// seal closes the current run; later additions dedup against it.
func (u *vpnUnion) seal() {
	if n := len(u.out); len(u.ends) == 0 || u.ends[len(u.ends)-1] != n {
		u.ends = append(u.ends, n)
	}
}

// addRun appends the novel elements of one sorted, internally-unique list.
func (u *vpnUnion) addRun(l []uint64) {
	for _, v := range l {
		if !u.seen(v) {
			u.out = append(u.out, v)
		}
	}
	u.seal()
}

// addAllMapped adds every mapped page of an address space to the union in
// VMA order (ascending, since VMAs are sorted and disjoint), snapshotting
// the mapping list into the Comparator's reusable VMA buffer.
func (c *Comparator) addAllMapped(as *mem.AddressSpace) {
	u := &c.union
	c.vmaBuf = as.AppendVMAs(c.vmaBuf[:0])
	for _, v := range c.vmaBuf {
		for vpn := v.Base / as.PageSize(); vpn < v.End()/as.PageSize(); vpn++ {
			if !u.seen(vpn) {
				u.out = append(u.out, vpn)
			}
		}
	}
	u.seal()
}

// hashJobs hashes every job and returns the minimal dirty-set index (and
// its vpn) among content mismatches, or -1. Counters accumulate into res.
func (c *Comparator) hashJobs(seed uint64, jobs []hashJob, workers int, res *Result) (int, uint64) {
	if len(jobs) == 0 {
		return -1, 0
	}
	if workers <= 1 || len(jobs) < workers {
		// Serial path: too few jobs to pay for goroutines (workerCount
		// bounds workers by the job count, so this also catches callers
		// handing a worker count straight to this function).
		return hashChunk(seed, jobs, res)
	}

	// Contiguous chunks keep per-worker results independent of scheduling;
	// merging by minimal index makes the reported mismatch deterministic.
	chunkLen := (len(jobs) + workers - 1) / workers
	if cap(c.chunks) < workers {
		c.chunks = make([]chunkResult, workers)
	}
	results := c.chunks[:workers]
	for i := range results {
		results[i] = chunkResult{}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunkLen
		hi := lo + chunkLen
		if hi > len(jobs) {
			hi = len(jobs)
		}
		if lo >= hi {
			results[w].idx = -1
			continue
		}
		wg.Add(1)
		go func(w int, chunk []hashJob) {
			defer wg.Done()
			results[w].idx, results[w].vpn = hashChunk(seed, chunk, &results[w].sub)
		}(w, jobs[lo:hi])
	}
	wg.Wait()

	minIdx, minVPN := -1, uint64(0)
	for _, cr := range results {
		res.CacheHits += cr.sub.CacheHits
		res.HostHashedPages += cr.sub.HostHashedPages
		res.HostHashedBytes += cr.sub.HostHashedBytes
		if cr.idx >= 0 && (minIdx < 0 || cr.idx < minIdx) {
			minIdx, minVPN = cr.idx, cr.vpn
		}
	}
	return minIdx, minVPN
}

// hashChunk hashes a slice of jobs sequentially, returning the first
// content mismatch's dirty-set index (or -1) and accumulating host
// counters into res. It never stops early: later frames still get their
// memos warmed, which keeps CacheHits independent of mismatch position.
func hashChunk(seed uint64, jobs []hashJob, res *Result) (int, uint64) {
	minIdx, minVPN := -1, uint64(0)
	for _, j := range jobs {
		if hashPair(seed, j.ref, j.chk, res) && minIdx < 0 {
			minIdx, minVPN = j.idx, j.vpn
		}
	}
	return minIdx, minVPN
}

// hashPair hashes one both-mapped page on both sides, accumulating host
// counters into res; it reports whether the hashes differ.
func hashPair(seed uint64, ref, chk *mem.Frame, res *Result) bool {
	refSum, refCached := ref.ContentHash(seed)
	chkSum, chkCached := chk.ContentHash(seed)
	if refCached {
		res.CacheHits++
	} else {
		res.HostHashedPages++
		res.HostHashedBytes += uint64(len(ref.Data()))
	}
	if chkCached {
		res.CacheHits++
	} else {
		res.HostHashedPages++
		res.HostHashedBytes += uint64(len(chk.Data()))
	}
	return refSum != chkSum
}

// defaultWorkers is the pool size when the request leaves Workers at 0.
const defaultWorkers = 4

// workerCount resolves the pool size: bounded by the request, GOMAXPROCS,
// and the number of jobs that make a worker worthwhile. A negative request
// is a caller bug; it degrades to the serial path rather than silently
// getting a bigger pool than an explicit "1" would.
func workerCount(requested, jobs int) int {
	w := requested
	switch {
	case w < 0:
		return 1
	case w == 0:
		w = defaultWorkers
	}
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if byLoad := jobs / concurrencyThreshold; w > byLoad {
		w = byLoad
	}
	if w < 1 {
		w = 1
	}
	return w
}
