// The race detector instruments every memory access with allocations of its
// own, so the zero-alloc pins only build without it.
//go:build !race

package compare

import (
	"testing"

	"parallaft/internal/mem"
)

// TestComparatorRunAllocFree pins the steady-state comparison path at zero
// allocations per boundary. The runtime holds one Comparator for the whole
// protected run; after the first comparison has sized its scratch (union
// runs, discovery buffers, job list), every later clean boundary — the
// overwhelmingly common case — must reuse it outright. Both shapes below
// stay on the serial path and a nil mismatch, so the measured trace is
// discovery + identity/memo hashing + accounting, nothing else.
func TestComparatorRunAllocFree(t *testing.T) {
	const pages = 64
	main := mem.NewAddressSpace(pg)
	mustMap(t, main, 0x10000, pages*pg)
	for i := uint64(0); i < pages; i++ {
		mustStore(t, main, 0x10000+i*pg, i^0xabc)
	}
	ref := main.Fork()
	chk := main.Fork()
	chk.ClearSoftDirty()

	cases := []struct {
		name string
		req  Request
	}{
		// All frames COW-shared: the identity fast path handles every page.
		{"identity", Request{Ref: ref, Chk: chk, Discovery: FullMemory,
			CheckerMode: mem.DirtySoft, Seed: seed, Workers: 1}},
		// Checker rewrote its pages with identical values: frames differ,
		// so the pages are content-hashed — served by the frame hash memo
		// after the warm-up run.
		{"memoized", func() Request {
			chk2 := main.Fork()
			chk2.ClearSoftDirty()
			for i := uint64(0); i < pages; i++ {
				mustStore(t, chk2, 0x10000+i*pg, i^0xabc)
			}
			return Request{Ref: ref, Chk: chk2, Discovery: FullMemory,
				CheckerMode: mem.DirtySoft, Seed: seed, Workers: 1}
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Comparator
			warm := c.Run(tc.req) // sizes the scratch, fills the hash memos
			if warm.Mismatch != nil {
				t.Fatalf("unexpected mismatch: %+v", warm.Mismatch)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if res := c.Run(tc.req); res.Mismatch != nil {
					t.Fatalf("unexpected mismatch: %+v", res.Mismatch)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state compare allocates %.1f objects per boundary, want 0", allocs)
			}
		})
	}
}
