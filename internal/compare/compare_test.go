package compare

import (
	"reflect"
	"testing"

	"parallaft/internal/mem"
)

const pg = 16 * 1024

const seed = 0x9a7a11af7

func mustMap(t *testing.T, as *mem.AddressSpace, base, length uint64) {
	t.Helper()
	if err := as.Map(base, length, mem.ProtRW, "test"); err != nil {
		t.Fatalf("map [%#x,+%#x): %v", base, length, err)
	}
}

func mustStore(t *testing.T, as *mem.AddressSpace, addr, val uint64) {
	t.Helper()
	if _, f := as.StoreU64(addr, val); f != nil {
		t.Fatalf("store %#x: %v", addr, f)
	}
}

// TestFullMemoryDiscoveryIncludesCheckerOnlyMappings is the regression test
// for the full-memory ablation: the candidate set must enumerate the union
// of BOTH sides' mappings. A page the checker mapped but the reference
// never had used to escape the reference-only VMA walk whenever the
// checker-dirty union missed it too.
func TestFullMemoryDiscoveryIncludesCheckerOnlyMappings(t *testing.T) {
	ref := mem.NewAddressSpace(pg)
	mustMap(t, ref, 0x10000, 2*pg)
	chk := ref.Fork()
	mustMap(t, chk, 0x80000, pg)
	// Clear the checker's soft-dirty bits so the rogue mapping is invisible
	// to the checker-dirty union — only VMA enumeration can find it.
	chk.ClearSoftDirty()

	req := Request{Ref: ref, Chk: chk, Discovery: FullMemory,
		CheckerMode: mem.DirtySoft, Seed: seed}

	rogue := uint64(0x80000) / pg
	found := false
	for _, vpn := range DirtyVPNs(req) {
		if vpn == rogue {
			found = true
		}
	}
	if !found {
		t.Fatal("full-memory discovery missed a checker-only mapping")
	}

	res := Run(req)
	if res.Mismatch == nil || res.Mismatch.Kind != MismatchStructural || res.Mismatch.VPN != rogue {
		t.Errorf("mismatch = %+v, want structural at vpn %#x", res.Mismatch, rogue)
	}
}

// TestIdentityFastPath: frames still COW-shared between the end checkpoint
// and the checker are equal by identity — no host hashing, but the
// simulated book still charges both injected hashers for them.
func TestIdentityFastPath(t *testing.T) {
	main := mem.NewAddressSpace(pg)
	mustMap(t, main, 0x10000, 4*pg)
	for i := uint64(0); i < 4; i++ {
		mustStore(t, main, 0x10000+i*pg, i+1)
	}
	ref := main.Fork()
	chk := main.Fork()
	chk.ClearSoftDirty()

	req := Request{Ref: ref, Chk: chk, Discovery: FullMemory,
		CheckerMode: mem.DirtySoft, Seed: seed}
	res := Run(req)
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %+v", res.Mismatch)
	}
	if res.DirtyPages != 4 || res.IdentitySkips != 4 {
		t.Errorf("dirty=%d identitySkips=%d, want 4/4", res.DirtyPages, res.IdentitySkips)
	}
	if res.HashedBytes != 4*2*pg {
		t.Errorf("simulated HashedBytes=%d, want %d (skips must not discount it)",
			res.HashedBytes, 4*2*pg)
	}
	if res.HostHashedPages != 0 || res.HostHashedBytes != 0 {
		t.Errorf("host hashed %d pages / %d bytes, want 0 (all identity-skipped)",
			res.HostHashedPages, res.HostHashedBytes)
	}

	// A checker write COWs one page away from the shared frame: it must be
	// host-hashed (and mismatch), the rest stay identity-skipped.
	mustStore(t, chk, 0x10000+2*pg, 999)
	res = Run(req)
	if res.IdentitySkips != 3 || res.HostHashedPages != 2 {
		t.Errorf("after COW write: identitySkips=%d hostPages=%d, want 3/2",
			res.IdentitySkips, res.HostHashedPages)
	}
	if res.HashedBytes != 4*2*pg {
		t.Errorf("simulated HashedBytes=%d changed, want %d", res.HashedBytes, 4*2*pg)
	}
	if res.Mismatch == nil || res.Mismatch.Kind != MismatchContent ||
		res.Mismatch.VPN != (0x10000+2*pg)/pg {
		t.Errorf("mismatch = %+v, want content at vpn %#x", res.Mismatch, (0x10000+2*pg)/pg)
	}
}

// TestHashMemoAcrossRuns: a second comparison over the same diverged pages
// is served from the frames' memoized hashes (recovery arbitration re-runs
// the comparison; it must not re-hash unchanged frames).
func TestHashMemoAcrossRuns(t *testing.T) {
	main := mem.NewAddressSpace(pg)
	mustMap(t, main, 0x10000, 2*pg)
	ref := main.Fork()
	chk := main.Fork()
	chk.ClearSoftDirty()
	mustStore(t, chk, 0x10000, 7) // diverge page 0 (content mismatch)

	req := Request{Ref: ref, Chk: chk, Discovery: FullMemory,
		CheckerMode: mem.DirtySoft, Seed: seed}

	first := Run(req)
	if first.HostHashedPages != 2 || first.CacheHits != 0 {
		t.Fatalf("first run: hostPages=%d cacheHits=%d, want 2/0",
			first.HostHashedPages, first.CacheHits)
	}
	second := Run(req)
	if second.HostHashedPages != 0 || second.CacheHits != 2 {
		t.Errorf("second run: hostPages=%d cacheHits=%d, want 0/2 (memo miss)",
			second.HostHashedPages, second.CacheHits)
	}
	if second.HashedBytes != first.HashedBytes || second.DirtyPages != first.DirtyPages {
		t.Errorf("simulated books differ across runs: %+v vs %+v", second, first)
	}
	if second.Mismatch == nil || *second.Mismatch != *first.Mismatch {
		t.Errorf("verdict differs across runs: %+v vs %+v", second.Mismatch, first.Mismatch)
	}
}

// TestResultIndependentOfWorkers: the full Result — verdict, mismatch page,
// and every counter — must not depend on the worker count.
func TestResultIndependentOfWorkers(t *testing.T) {
	const pages = 100
	// Fresh state per worker count: hash memos persist on frames, so
	// reusing one pair would legitimately shift CacheHits between runs.
	mkReq := func() Request {
		main := mem.NewAddressSpace(pg)
		mustMap(t, main, 0x10000, pages*pg)
		ref := main.Fork()
		chk := main.Fork()
		chk.ClearSoftDirty()
		// Diverge a spread of pages; first differing page is vpn(0x10000)+17.
		for _, i := range []uint64{83, 41, 17, 64, 99} {
			mustStore(t, chk, 0x10000+i*pg, 0xbad0+i)
		}
		return Request{Ref: ref, Chk: chk, Discovery: FullMemory,
			CheckerMode: mem.DirtySoft, Seed: seed}
	}
	want := Run(mkReq()) // workers auto
	if want.Mismatch == nil || want.Mismatch.VPN != 0x10000/pg+17 {
		t.Fatalf("mismatch = %+v, want content at first diverged page", want.Mismatch)
	}
	for _, w := range []int{1, 2, 3, 8} {
		req := mkReq()
		req.Workers = w
		got := Run(req)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: result %+v (mismatch %+v) != %+v (mismatch %+v)",
				w, got, got.Mismatch, want, want.Mismatch)
		}
	}
}

// TestStructuralBeatsLaterContentMismatch: the reported mismatch is the
// first in dirty-set order across kinds, as a sequential scan would find.
func TestStructuralBeatsLaterContentMismatch(t *testing.T) {
	ref := mem.NewAddressSpace(pg)
	for i := uint64(0); i < 3; i++ { // separate VMAs so one can be unmapped
		mustMap(t, ref, 0x10000+i*pg, pg)
	}
	chk := ref.Fork()
	chk.ClearSoftDirty()
	// Page 0: unmapped on the checker (structural, first in VMA order).
	if err := chk.Unmap(0x10000, pg); err != nil {
		t.Fatal(err)
	}
	// Page 2: content divergence, later in the scan.
	mustStore(t, chk, 0x10000+2*pg, 1)

	res := Run(Request{Ref: ref, Chk: chk, Discovery: FullMemory,
		CheckerMode: mem.DirtySoft, Seed: seed})
	if res.Mismatch == nil || res.Mismatch.Kind != MismatchStructural ||
		res.Mismatch.VPN != 0x10000/pg {
		t.Errorf("mismatch = %+v, want structural at vpn %#x", res.Mismatch, 0x10000/pg)
	}
}

// TestDiscoveryModesAgreeOnDivergence: every discovery mode must flag the
// same checker-side corruption of a main-dirtied page.
func TestDiscoveryModesAgreeOnDivergence(t *testing.T) {
	mkReq := func(t *testing.T, d Discovery) Request {
		mainAS := mem.NewAddressSpace(pg)
		mustMap(t, mainAS, 0x10000, 2*pg)
		mainAS.ClearSoftDirty()
		start := mainAS.Fork() // segment-start checkpoint
		chk := mainAS.Fork()   // checker forked at the same point
		chk.ClearSoftDirty()
		// Both sides execute the same write...
		mustStore(t, mainAS, 0x10000, 42)
		mustStore(t, chk, 0x10000, 42)
		end := mainAS.Fork() // segment-end checkpoint
		// ...then the checker corrupts the page.
		mustStore(t, chk, 0x10000, 43)
		mode := mem.DirtyMapCount
		if d == SoftDirty {
			mode = mem.DirtySoft
		}
		return Request{Base: start.Fork(), Ref: end, Chk: chk,
			Discovery: d, CheckerMode: mode, Seed: seed}
	}
	for _, tc := range []struct {
		name string
		d    Discovery
	}{{"framediff", FrameDiff}, {"softdirty", SoftDirty}, {"fullmem", FullMemory}} {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(mkReq(t, tc.d))
			if res.Mismatch == nil || res.Mismatch.Kind != MismatchContent ||
				res.Mismatch.VPN != 0x10000/pg {
				t.Errorf("mismatch = %+v, want content at vpn %#x", res.Mismatch, 0x10000/pg)
			}
		})
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct {
		requested, jobs, max int
	}{
		{0, 0, 1},  // no jobs: one worker (inline)
		{0, 31, 1}, // below threshold: stay sequential
		{1, 10_000, 1},
		{8, 64, 2}, // load-bounded
		{2, 10_000, 2},
	}
	for _, tc := range cases {
		if got := workerCount(tc.requested, tc.jobs); got > tc.max || got < 1 {
			t.Errorf("workerCount(%d, %d) = %d, want in [1,%d]",
				tc.requested, tc.jobs, got, tc.max)
		}
	}
}

// TestWorkerCountDegenerateRequests is the satellite regression for the
// pool-size resolution: zero (the documented default) and negative
// (a caller bug) requests, and worker counts exceeding the job count, must
// degrade toward the serial path rather than spawning idle goroutines.
func TestWorkerCountDegenerateRequests(t *testing.T) {
	for _, n := range []int{-1, -3, -100} {
		if got := workerCount(n, 10_000); got != 1 {
			t.Errorf("workerCount(%d, 10000) = %d, want 1 (serial)", n, got)
		}
	}
	// Workers never exceed the jobs that justify them.
	for _, tc := range []struct{ req, jobs int }{
		{0, 0}, {0, 31}, {16, 5}, {7, 0}, {100, 64},
	} {
		got := workerCount(tc.req, tc.jobs)
		if got < 1 {
			t.Fatalf("workerCount(%d, %d) = %d < 1", tc.req, tc.jobs, got)
		}
		if got > 1 && got > tc.jobs/concurrencyThreshold {
			t.Errorf("workerCount(%d, %d) = %d exceeds the per-worker load bound",
				tc.req, tc.jobs, got)
		}
	}
}

// TestResultDeterministicAcrossWorkerRequests runs one comparison shape
// under worker requests {0, 1, -3, jobs, jobs+7} and requires bit-identical
// results: same CacheHits bookkeeping and the mismatch chosen by minimal
// dirty-set index no matter how the jobs were chunked.
func TestResultDeterministicAcrossWorkerRequests(t *testing.T) {
	const pages = 160
	// Diverge most pages so the parallel path genuinely engages (jobs is
	// well past concurrencyThreshold), with the earliest divergence at a
	// known index.
	diverged := make([]uint64, 0, pages-3)
	for i := uint64(3); i < pages; i++ {
		diverged = append(diverged, i)
	}
	mkReq := func() Request {
		main := mem.NewAddressSpace(pg)
		mustMap(t, main, 0x10000, pages*pg)
		ref := main.Fork()
		chk := main.Fork()
		chk.ClearSoftDirty()
		for _, i := range diverged {
			mustStore(t, chk, 0x10000+i*pg, 0xbad0+i)
		}
		return Request{Ref: ref, Chk: chk, Discovery: FullMemory,
			CheckerMode: mem.DirtySoft, Seed: seed}
	}
	jobs := len(diverged)
	want := Run(mkReq())
	if want.Mismatch == nil || want.Mismatch.Kind != MismatchContent ||
		want.Mismatch.VPN != 0x10000/pg+3 {
		t.Fatalf("mismatch = %+v, want content at the minimal diverged index", want.Mismatch)
	}
	for _, w := range []int{0, 1, -3, jobs, jobs + 7} {
		req := mkReq()
		req.Workers = w
		if got := Run(req); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: result %+v (mismatch %+v) != %+v (mismatch %+v)",
				w, got, got.Mismatch, want, want.Mismatch)
		}
	}
}

// TestComparatorScratchReuse runs several different comparisons through one
// Comparator and checks each against a fresh one-shot Run: reused union,
// discovery and job buffers must never leak state between calls.
func TestComparatorScratchReuse(t *testing.T) {
	var c Comparator
	mk := func(pages int, divergeAt []uint64) Request {
		main := mem.NewAddressSpace(pg)
		mustMap(t, main, 0x10000, uint64(pages)*pg)
		ref := main.Fork()
		chk := main.Fork()
		chk.ClearSoftDirty()
		for _, i := range divergeAt {
			mustStore(t, chk, 0x10000+i*pg, 0xfeed+i)
		}
		return Request{Ref: ref, Chk: chk, Discovery: FullMemory,
			CheckerMode: mem.DirtySoft, Seed: seed}
	}
	cases := [][]uint64{
		{5, 9},    // two mismatches
		{},        // clean
		{0},       // first page
		{1, 2, 3}, // shrinking then growing candidate sets
	}
	sizes := []int{12, 40, 3, 7}
	for i, div := range cases {
		reqA, reqB := mk(sizes[i], div), mk(sizes[i], div)
		got := c.Run(reqA)
		want := Run(reqB)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: reused comparator %+v != fresh %+v", i, got, want)
		}
	}
}
