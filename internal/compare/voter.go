package compare

import "parallaft/internal/mem"

// The majority voter generalises the pairwise end-of-segment comparison to
// N-way modular redundancy (Elzar-style NMR): the N checker replicas plus
// the segment-end reference checkpoint form an (N+1)-voter electorate, and
// the segment verdict is whichever state a majority agrees on.
//
//   - Unanimous: every replica reproduces the reference — today's "ok".
//   - Absorb: the reference side still has a majority; the dissenting
//     replicas are outvoted and can be absorbed in place (a checker SEU
//     costs nothing but the replica).
//   - OutvoteRef: a majority of replicas agree with each other but not
//     with the reference — the *main* execution carried the fault, and the
//     agreed replica state is the correct segment-end state (forward
//     recovery copies it over the main instead of rolling back).
//   - NoQuorum: no state has a majority; the caller falls back to the
//     detection/rollback path.
//
// The voter only decides equality; what the caller does with the verdict
// (absorb, forward-repair, roll back) is policy above this package.

// Verdict is the outcome of one majority vote.
type Verdict int

const (
	// VerdictUnanimous: all N replicas agree with the reference.
	VerdictUnanimous Verdict = iota
	// VerdictAbsorb: the reference has a quorum; dissenters are outvoted.
	VerdictAbsorb
	// VerdictOutvoteRef: a replica quorum agrees against the reference.
	VerdictOutvoteRef
	// VerdictNoQuorum: no state reaches a majority.
	VerdictNoQuorum
)

func (v Verdict) String() string {
	switch v {
	case VerdictUnanimous:
		return "unanimous"
	case VerdictAbsorb:
		return "absorb"
	case VerdictOutvoteRef:
		return "outvote-ref"
	case VerdictNoQuorum:
		return "no-quorum"
	}
	return "unknown"
}

// VoteRequest describes one N-way vote. Register agreement is delegated to
// callbacks so the voter does not depend on the process model: the core
// runtime closes over its register files.
type VoteRequest struct {
	// Base is the segment-start snapshot (FrameDiff discovery only). Every
	// replica forked from it, which is what makes replica-vs-replica
	// discovery work in all modes: a replica's frame diff (or soft-dirty
	// set) against Base is exactly its write set.
	Base *mem.AddressSpace
	// Ref is the segment-end checkpoint: the reference state.
	Ref *mem.AddressSpace
	// Replicas holds each replica's address space, index-aligned with the
	// runtime's replica set. A nil entry is a replica that failed replay
	// before producing a comparable state; it votes as a dissenter.
	Replicas []*mem.AddressSpace

	// RegsAgreeRef reports whether replica i's registers (and PC) match the
	// reference's; RegsAgreePair the same between replicas i and j. Both
	// are only called for non-nil replicas; a nil callback means "agree".
	RegsAgreeRef  func(i int) bool
	RegsAgreePair func(i, j int) bool

	Discovery   Discovery
	CheckerMode mem.DirtyMode
	Seed        uint64
	Workers     int
}

// VoteResult carries the verdict and the summed comparison books.
type VoteResult struct {
	Verdict Verdict
	// AgreedReplica is the lowest-index member of the winning replica
	// quorum under VerdictOutvoteRef; -1 otherwise.
	AgreedReplica int
	// Dissenters lists replica indices outside the winning state class,
	// ascending. Under NoQuorum it lists every replica that disagrees with
	// the reference.
	Dissenters []int

	// RefResults holds each replica's comparison against the reference
	// (zero Result for nil replicas, which are never compared).
	RefResults []Result
	// RefMismatch is the first reference-side mismatch found (the
	// lowest-index disagreeing replica's), for diagnostics; nil when every
	// compared replica matched the reference's memory.
	// RefMismatchReplica is the replica it came from (-1 when nil).
	RefMismatch        *Mismatch
	RefMismatchReplica int

	// Summed simulated/host books over every comparison the vote ran,
	// including replica-pairwise ones.
	DirtyPages    uint64
	HashedBytes   uint64
	IdentitySkips uint64
	CacheHits     uint64
}

// Voter runs majority votes, holding one Comparator arena per comparison
// slot so steady-state votes reuse scratch the way single-checker
// comparisons do. The zero value is ready to use; a Voter is not safe for
// concurrent use.
type Voter struct {
	cmps []Comparator

	// Per-vote scratch for the agreement bookkeeping.
	agreeRef  []bool
	classRep  []int // lowest-index representative of each pairwise class
	classSize []int
	member    []int // replica index -> class index (-1: none)
}

// comparator returns the i-th reusable arena, growing the pool on demand.
func (v *Voter) comparator(i int) *Comparator {
	for len(v.cmps) <= i {
		v.cmps = append(v.cmps, Comparator{})
	}
	return &v.cmps[i]
}

// Vote runs the (N+1)-voter majority decision. With a single live replica
// it degenerates to the pairwise comparison: agreement is Unanimous,
// disagreement NoQuorum — with Result books bit-identical to
// Comparator.Run on the same request.
func (v *Voter) Vote(req VoteRequest) VoteResult {
	n := len(req.Replicas)
	res := VoteResult{
		AgreedReplica:      -1,
		RefMismatchReplica: -1,
		RefResults:         make([]Result, n),
	}
	voters := n + 1
	quorum := voters/2 + 1
	slot := 0
	account := func(cres *Result) {
		res.DirtyPages += cres.DirtyPages
		res.HashedBytes += cres.HashedBytes
		res.IdentitySkips += cres.IdentitySkips
		res.CacheHits += cres.CacheHits
	}
	run := func(ref, chk *mem.AddressSpace) Result {
		cres := v.comparator(slot).Run(Request{
			Base:        req.Base,
			Ref:         ref,
			Chk:         chk,
			Discovery:   req.Discovery,
			CheckerMode: req.CheckerMode,
			Seed:        req.Seed,
			Workers:     req.Workers,
		})
		slot++
		account(&cres)
		return cres
	}

	// Phase 1: every live replica against the reference.
	if cap(v.agreeRef) < n {
		v.agreeRef = make([]bool, n)
	}
	agreeRef := v.agreeRef[:n]
	refAgreeing := 1 // the reference agrees with itself
	for i, as := range req.Replicas {
		agreeRef[i] = false
		if as == nil {
			continue
		}
		cres := run(req.Ref, as)
		res.RefResults[i] = cres
		regsOK := req.RegsAgreeRef == nil || req.RegsAgreeRef(i)
		if regsOK && cres.Mismatch == nil {
			agreeRef[i] = true
			refAgreeing++
		} else if res.RefMismatch == nil && cres.Mismatch != nil {
			res.RefMismatch = cres.Mismatch
			res.RefMismatchReplica = i
		}
	}

	if refAgreeing == voters {
		res.Verdict = VerdictUnanimous
		return res
	}
	if refAgreeing >= quorum {
		res.Verdict = VerdictAbsorb
		for i := range req.Replicas {
			if !agreeRef[i] {
				res.Dissenters = append(res.Dissenters, i)
			}
		}
		return res
	}

	// Phase 2: the reference lost its majority. Group the replicas that
	// disagree with it into pairwise-equal classes (state equality is an
	// equivalence relation, so one comparison against each class
	// representative decides membership) and look for a replica quorum.
	v.classRep = v.classRep[:0]
	v.classSize = v.classSize[:0]
	if cap(v.member) < n {
		v.member = make([]int, n)
	}
	member := v.member[:n]
	for i, as := range req.Replicas {
		member[i] = -1
		if as == nil || agreeRef[i] {
			continue // failed replicas never form a class; ref-agreeing ones lost with it
		}
		for ci, rep := range v.classRep {
			if req.RegsAgreePair != nil && !req.RegsAgreePair(rep, i) {
				continue
			}
			if cres := run(req.Replicas[rep], as); cres.Mismatch == nil {
				member[i] = ci
				break
			}
		}
		if member[i] < 0 {
			member[i] = len(v.classRep)
			v.classRep = append(v.classRep, i)
			v.classSize = append(v.classSize, 0)
		}
		v.classSize[member[i]]++
	}
	bestClass := -1
	for ci, size := range v.classSize {
		if size >= quorum && (bestClass < 0 || size > v.classSize[bestClass]) {
			bestClass = ci
		}
	}
	if bestClass < 0 {
		res.Verdict = VerdictNoQuorum
		for i := range req.Replicas {
			if !agreeRef[i] {
				res.Dissenters = append(res.Dissenters, i)
			}
		}
		return res
	}
	res.Verdict = VerdictOutvoteRef
	res.AgreedReplica = v.classRep[bestClass]
	for i := range req.Replicas {
		if member[i] != bestClass {
			res.Dissenters = append(res.Dissenters, i)
		}
	}
	return res
}
