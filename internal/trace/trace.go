// Package trace records the runtime's decisions as a structured event
// stream — segments, record/replay events, comparisons, scheduling moves,
// detections and recoveries — for debugging supervised runs and for
// understanding why an overhead number looks the way it does.
//
// Events are collected in memory and can be rendered as JSON Lines; the
// recorder is deliberately allocation-light so tracing a full benchmark run
// is practical.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Kind classifies events.
type Kind string

// Event kinds emitted by the runtime.
const (
	SegmentStart  Kind = "segment-start"
	SegmentSeal   Kind = "segment-seal"
	Syscall       Kind = "syscall"
	Nondet        Kind = "nondet"
	Signal        Kind = "signal"
	CheckerDone   Kind = "checker-done"
	Compare       Kind = "compare"
	Migrate       Kind = "migrate"
	DVFS          Kind = "dvfs"
	Queue         Kind = "queue"
	Detect        Kind = "detect"
	Arbitrate     Kind = "arbitrate"
	Recover       Kind = "recover"
	Rollback      Kind = "rollback"
	Barrier       Kind = "barrier"
	Stall         Kind = "stall"
	Vote          Kind = "vote"
	ForwardRepair Kind = "forward-repair"
	// Truncated is a synthetic trailer appended when rendering a recorder
	// that hit its event limit, so a cut-off trace is never mistaken for a
	// complete one.
	Truncated Kind = "truncated"
)

// KindHelp describes every event kind; the telemetry lint test asserts the
// table is total (a new Kind without a help string fails `make check`), so
// downstream dashboards always have human-readable descriptions.
var KindHelp = map[Kind]string{
	SegmentStart:  "a new segment began: checkpoint and checker forked",
	SegmentSeal:   "the main reached a segment end; its record is final",
	Syscall:       "the main stopped at a syscall and its record was captured",
	Nondet:        "a nondeterministic instruction's value was recorded",
	Signal:        "a signal was recorded at the main's execution point",
	CheckerDone:   "a checker reached its segment end point",
	Compare:       "an end-of-segment state comparison completed",
	Migrate:       "a checker migrated between cores",
	DVFS:          "the pacer changed the little cores' operating point",
	Queue:         "a checker queued because no core was free",
	Detect:        "a divergence was detected",
	Arbitrate:     "recovery re-executed a segment with a clean referee",
	Recover:       "a checker fault was absorbed without rollback",
	Rollback:      "the main was restored from a verified checkpoint",
	Barrier:       "a containment barrier drained outstanding segments",
	Stall:         "the main stalled on the live-segment bound",
	Vote:          "an NMR majority vote over a segment's replicas concluded",
	ForwardRepair: "the main was repaired forward from an agreed replica state",
	Truncated:     "synthetic trailer: the recorder hit its event limit",
}

// Kinds returns every event kind in KindHelp, for exhaustiveness checks.
func Kinds() []Kind {
	out := make([]Kind, 0, len(KindHelp))
	for k := range KindHelp {
		out = append(out, k)
	}
	return out
}

// Event is one runtime decision.
type Event struct {
	TimeNs  float64 `json:"t"`
	Kind    Kind    `json:"kind"`
	Segment int     `json:"segment,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder drops everything, so call sites never need nil checks beyond
// the method receiver.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	limit  int

	// full flips once the event limit is reached so over-limit Emits take a
	// lock-free, allocation-free fast path: on long runs every dropped event
	// used to pay for the mutex and the Sprintf detail formatting; now it
	// pays for one atomic load and one atomic add.
	full    atomic.Bool
	dropped atomic.Uint64
}

// New returns a recorder bounded to limit events (0 = unbounded).
func New(limit int) *Recorder { return &Recorder{limit: limit} }

// Emit appends an event; on a nil recorder it is a no-op. Once the event
// limit has been reached, Emit only counts the drop: no lock, no detail
// formatting, no allocation (BenchmarkEmitDropped pins this).
func (r *Recorder) Emit(timeNs float64, kind Kind, segment int, format string, args ...any) {
	if r == nil {
		return
	}
	if r.full.Load() {
		r.dropped.Add(1)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.events) >= r.limit {
		// Raced with the recorder filling up between the fast-path check and
		// the lock; count the drop here too.
		r.dropped.Add(1)
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	r.events = append(r.events, Event{TimeNs: timeNs, Kind: kind, Segment: segment, Detail: detail})
	if r.limit > 0 && len(r.events) >= r.limit {
		r.full.Store(true)
	}
}

// Dropped returns how many events were discarded after the limit was
// reached. A nonzero value means the recorded stream is a prefix of the
// run, not the whole run.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Events returns a copy of the recorded stream.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events matched the kind ("" = all).
func (r *Recorder) Count(kind Kind) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriteJSONL renders the stream as JSON Lines. A recorder that dropped
// events gets a trailing Truncated record noting how many, so downstream
// tooling can distinguish a short run from a capped trace.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	events := r.Events()
	if d := r.Dropped(); d > 0 {
		last := 0.0
		if len(events) > 0 {
			last = events[len(events)-1].TimeNs
		}
		events = append(events, Event{
			TimeNs: last,
			Kind:   Truncated,
			Detail: fmt.Sprintf("%d events dropped after the %d-event limit", d, r.limit),
		})
	}
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
