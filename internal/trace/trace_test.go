package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(1, Detect, 0, "x")
	if r.Events() != nil || r.Count("") != 0 {
		t.Error("nil recorder leaked state")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil recorder write: %v", err)
	}
}

func TestEmitAndCount(t *testing.T) {
	r := New(0)
	r.Emit(10, SegmentStart, 0, "begin")
	r.Emit(20, Syscall, 0, "write")
	r.Emit(30, Syscall, 1, "read %d bytes", 64)
	if r.Count("") != 3 {
		t.Errorf("count = %d", r.Count(""))
	}
	if r.Count(Syscall) != 2 {
		t.Errorf("syscall count = %d", r.Count(Syscall))
	}
	evs := r.Events()
	if evs[2].Detail != "read 64 bytes" || evs[2].Segment != 1 || evs[2].TimeNs != 30 {
		t.Errorf("event = %+v", evs[2])
	}
}

func TestLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Emit(float64(i), Compare, i, "x")
	}
	if r.Count("") != 2 {
		t.Errorf("bounded recorder kept %d events", r.Count(""))
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
}

func TestDroppedZeroWhenUnbounded(t *testing.T) {
	r := New(0)
	for i := 0; i < 100; i++ {
		r.Emit(float64(i), Compare, i, "x")
	}
	if r.Dropped() != 0 {
		t.Errorf("unbounded recorder dropped %d", r.Dropped())
	}
	var nilR *Recorder
	if nilR.Dropped() != 0 {
		t.Error("nil recorder reported drops")
	}
}

func TestWriteJSONLNotesTruncation(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Emit(float64(i), Compare, i, "x")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // 2 events + truncation trailer
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	var trailer Event
	if err := json.Unmarshal([]byte(lines[2]), &trailer); err != nil {
		t.Fatalf("trailer not JSON: %v", err)
	}
	if trailer.Kind != Truncated || !strings.Contains(trailer.Detail, "3 events dropped") {
		t.Errorf("trailer = %+v", trailer)
	}

	// A complete trace must NOT grow a trailer.
	c := New(10)
	c.Emit(1, Compare, 0, "x")
	buf.Reset()
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), string(Truncated)) {
		t.Error("complete trace tagged as truncated")
	}
}

func TestWriteJSONL(t *testing.T) {
	r := New(0)
	r.Emit(1.5, Migrate, 3, "core 4 -> 1")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("bad JSONL %q: %v", line, err)
	}
	if ev.Kind != Migrate || ev.Segment != 3 || ev.TimeNs != 1.5 {
		t.Errorf("round trip = %+v", ev)
	}
}

func TestEventsAreCopies(t *testing.T) {
	r := New(0)
	r.Emit(1, Detect, 0, "a")
	evs := r.Events()
	evs[0].Detail = "mutated"
	if r.Events()[0].Detail != "a" {
		t.Error("Events returned aliased storage")
	}
}

func TestKindHelpIsTotal(t *testing.T) {
	for k, help := range KindHelp {
		if help == "" {
			t.Errorf("kind %q has an empty help string", k)
		}
	}
	if len(Kinds()) != len(KindHelp) {
		t.Error("Kinds() disagrees with KindHelp")
	}
}

// TestDroppedPathAllocationFree is the non-benchmark guard for the Emit
// fast path: over-limit emits must not allocate (and in particular must
// not format the detail string).
func TestDroppedPathAllocationFree(t *testing.T) {
	r := New(1)
	r.Emit(0, Compare, 0, "fill")
	args := []any{42} // pre-boxed so the caller side does not allocate either
	allocs := testing.AllocsPerRun(100, func() {
		r.Emit(1, Compare, 1, "dropped %d", args...)
	})
	if allocs != 0 {
		t.Errorf("dropped-path Emit allocates %.1f times per call, want 0", allocs)
	}
	if r.Dropped() == 0 {
		t.Error("events were not dropped")
	}
}

// BenchmarkEmitDropped pins the over-limit Emit path: lock-free,
// Sprintf-free, allocation-free (run with -benchmem; the satellite fix
// this PR lands makes allocs/op exactly 0).
func BenchmarkEmitDropped(b *testing.B) {
	r := New(1)
	r.Emit(0, Compare, 0, "fill")
	args := []any{uint64(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), Syscall, i, "syscall %d traced", args...)
	}
	if r.Dropped() != uint64(b.N) {
		b.Fatalf("dropped = %d, want %d", r.Dropped(), b.N)
	}
}

// BenchmarkEmitRecorded is the baseline: the under-limit path still
// formats and appends.
func BenchmarkEmitRecorded(b *testing.B) {
	r := New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), Syscall, i, "syscall traced")
	}
}
