package inject

import (
	"math/rand"
	"testing"

	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
)

func newEngine() *sim.Engine {
	m := machine.New(machine.AppleM2Like())
	k := oskernel.NewKernel(m.PageSize, 11)
	l := oskernel.NewLoader(k, m.PageSize, 11)
	return sim.New(m, k, l)
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		OutcomeDetected: "detected", OutcomeException: "exception",
		OutcomeTimeout: "timeout", OutcomeBenign: "benign", OutcomeFailed: "failed",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestTargetString(t *testing.T) {
	cases := map[string]Target{
		"x3 bit 17":   {Class: proc.GPRClass, Index: 3, Bit: 17},
		"f5 bit 63":   {Class: proc.FPRClass, Index: 5, Bit: 63},
		"v2[1] bit 9": {Class: proc.VRClass, Index: 2, Lane: 1, Bit: 9},
	}
	for want, tgt := range cases {
		if tgt.String() != want {
			t.Errorf("Target.String() = %q, want %q", tgt.String(), want)
		}
	}
}

func TestRandTargetCoversAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[proc.RegClass]bool{}
	for i := 0; i < 200; i++ {
		tgt := randTarget(rng)
		seen[tgt.Class] = true
		switch tgt.Class {
		case proc.GPRClass:
			if tgt.Index >= 16 {
				t.Fatalf("gpr index %d", tgt.Index)
			}
		case proc.FPRClass:
			if tgt.Index >= 8 {
				t.Fatalf("fpr index %d", tgt.Index)
			}
		case proc.VRClass:
			if tgt.Index >= 4 || tgt.Lane >= 4 {
				t.Fatalf("vr %d[%d]", tgt.Index, tgt.Lane)
			}
		}
		if tgt.Bit >= 64 {
			t.Fatalf("bit %d", tgt.Bit)
		}
	}
	if len(seen) != 3 {
		t.Errorf("classes drawn: %v", seen)
	}
}

func TestReportAccounting(t *testing.T) {
	rep := &Report{
		Trials: []Trial{
			{Outcome: OutcomeDetected}, {Outcome: OutcomeBenign},
			{Outcome: OutcomeException}, {Outcome: OutcomeFailed},
		},
	}
	rep.Counts[OutcomeDetected] = 1
	rep.Counts[OutcomeBenign] = 1
	rep.Counts[OutcomeException] = 1
	rep.Counts[OutcomeFailed] = 1
	// rates are over landed trials (3)
	if got := rep.Rate(OutcomeDetected); got != 1.0/3 {
		t.Errorf("rate = %v", got)
	}
	if !rep.DetectionComplete() {
		t.Error("report with only detected/benign/exception outcomes marked incomplete")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	mk := func() *Campaign {
		return &Campaign{
			NewEngine:        newEngine,
			Program:          testProgram(),
			Config:           cfg,
			TrialsPerSegment: 1,
			Seed:             42,
		}
	}
	r1, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Trials) != len(r2.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(r1.Trials), len(r2.Trials))
	}
	for i := range r1.Trials {
		a, b := r1.Trials[i], r2.Trials[i]
		if a.Outcome != b.Outcome || a.Target != b.Target || a.Segment != b.Segment {
			t.Errorf("trial %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestCampaignDetectsEverythingNonBenign(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	c := &Campaign{
		NewEngine:        newEngine,
		Program:          testProgram(),
		Config:           cfg,
		TrialsPerSegment: 2,
		Seed:             7,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DetectionComplete() {
		for _, tr := range rep.Trials {
			t.Logf("%+v", tr)
		}
		t.Fatal("a non-benign fault escaped — violates the §5.6 guarantee")
	}
}

func TestCampaignParallelMatchesSerial(t *testing.T) {
	// The golden determinism guarantee: per-trial seed derivation makes the
	// report identical for every worker count, trial for trial.
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	run := func(parallel int) *Report {
		c := &Campaign{
			NewEngine:        newEngine,
			Program:          testProgram(),
			Config:           cfg,
			TrialsPerSegment: 2,
			Seed:             42,
			Parallel:         parallel,
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(4)
	if len(serial.Trials) != len(parallel.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(serial.Trials), len(parallel.Trials))
	}
	for i := range serial.Trials {
		if serial.Trials[i] != parallel.Trials[i] {
			t.Errorf("trial %d differs:\n serial   %+v\n parallel %+v",
				i, serial.Trials[i], parallel.Trials[i])
		}
	}
	if serial.Counts != parallel.Counts {
		t.Errorf("outcome counts differ: %v vs %v", serial.Counts, parallel.Counts)
	}
}

func TestCampaignRejectsPhantomConfig(t *testing.T) {
	// A config that would flag errors on a clean run must abort the
	// campaign at the profile stage rather than report garbage.
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 150_000
	cfg.CheckerHook = func(_ int, c *proc.Process, _ float64) {
		c.Regs.X[1] ^= 1 // sabotage the profile run itself
	}
	camp := &Campaign{NewEngine: newEngine, Program: testProgram(), Config: cfg, Seed: 1}
	if _, err := camp.Run(); err == nil {
		t.Error("campaign accepted a profile run with detections")
	}
}
