package inject

import (
	"testing"

	"parallaft/internal/asm"
	"parallaft/internal/core"
	"parallaft/internal/machine"
	"parallaft/internal/oskernel"
	"parallaft/internal/sim"
)

func testProgram() *asm.Program {
	b := asm.NewBuilder("inject-smoke")
	b.Space("buf", 16*1024)
	b.Label("start")
	b.MovI(1, 0)
	b.MovI(2, 0)
	b.MovI(3, 30_000)
	b.Addr(4, "buf")
	b.Label("loop")
	b.AndI(5, 2, 2047)
	b.ShlI(5, 5, 3)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Add(6, 6, 2)
	b.St(5, 0, 6)
	b.Add(1, 1, 6)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.AndI(1, 1, 255)
	b.MovI(0, int64(oskernel.SysExit))
	b.Syscall()
	return b.MustBuild()
}

func TestCampaignSmoke(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SlicePeriodCycles = 60_000
	c := &Campaign{
		NewEngine: func() *sim.Engine {
			m := machine.New(machine.AppleM2Like())
			k := oskernel.NewKernel(m.PageSize, 11)
			l := oskernel.NewLoader(k, m.PageSize, 11)
			return sim.New(m, k, l)
		},
		Program:          testProgram(),
		Config:           cfg,
		TrialsPerSegment: 3,
		Seed:             99,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Trials) == 0 {
		t.Fatal("no trials ran")
	}
	if !rep.DetectionComplete() {
		t.Error("some non-benign fault went undetected")
	}
	landed := 0
	for _, tr := range rep.Trials {
		if tr.Outcome != OutcomeFailed {
			landed++
		}
	}
	if landed == 0 {
		t.Fatal("no injection landed")
	}
	if rep.Counts[OutcomeDetected]+rep.Counts[OutcomeException]+rep.Counts[OutcomeTimeout] == 0 {
		t.Error("every landed fault was benign; expected some detections")
	}
	t.Logf("outcomes: detected=%d exception=%d timeout=%d benign=%d failed=%d",
		rep.Counts[OutcomeDetected], rep.Counts[OutcomeException],
		rep.Counts[OutcomeTimeout], rep.Counts[OutcomeBenign], rep.Counts[OutcomeFailed])
}
