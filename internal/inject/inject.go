// Package inject drives the fault-injection campaign of §5.6: for each
// segment, first profile the checker's clean execution time t, then run
// several trials in which a random register bit is flipped at a uniform
// random point in [0, 1.1t) of the checker's execution, and classify
// Parallaft's response.
package inject

import (
	"fmt"
	"io"
	"math/rand"

	"parallaft/internal/asm"
	"parallaft/internal/campaign"
	"parallaft/internal/core"
	"parallaft/internal/proc"
	"parallaft/internal/sim"
	"parallaft/internal/telemetry"
)

// Outcome classifies one injection trial (§5.6).
type Outcome uint8

// Outcomes.
const (
	// OutcomeDetected: Parallaft flagged the fault (excluding exceptions
	// and timeouts, which are separately accounted special cases).
	OutcomeDetected Outcome = iota
	// OutcomeException: the fault caused an exception in the checker.
	OutcomeException
	// OutcomeTimeout: the checker overran the instruction budget.
	OutcomeTimeout
	// OutcomeBenign: no observable effect; the program finished with
	// correct output.
	OutcomeBenign
	// OutcomeFailed: the injection did not land (the checker finished
	// before the chosen instant); the trial is discarded and redrawn.
	OutcomeFailed
	NumOutcomes
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDetected:
		return "detected"
	case OutcomeException:
		return "exception"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeBenign:
		return "benign"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Target is the register bit chosen for a flip.
type Target struct {
	Class proc.RegClass
	Index int
	Lane  int
	Bit   uint
}

// String renders the target.
func (t Target) String() string {
	if t.Class == proc.VRClass {
		return fmt.Sprintf("v%d[%d] bit %d", t.Index, t.Lane, t.Bit)
	}
	return fmt.Sprintf("%s%d bit %d", map[proc.RegClass]string{
		proc.GPRClass: "x", proc.FPRClass: "f",
	}[t.Class], t.Index, t.Bit)
}

// Trial is one injection attempt.
type Trial struct {
	Segment int
	AtNs    float64
	Target  Target
	Outcome Outcome
	Detail  string
}

// Report aggregates a campaign.
type Report struct {
	Benchmark string
	Trials    []Trial
	Counts    [NumOutcomes]int
}

// Rate returns the fraction of landed trials with the given outcome.
func (r *Report) Rate(o Outcome) float64 {
	landed := 0
	for _, t := range r.Trials {
		if t.Outcome != OutcomeFailed {
			landed++
		}
	}
	if landed == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(landed)
}

// DetectionComplete reports the paper's headline property: every non-benign
// fault was detected (by mismatch, exception, or timeout).
func (r *Report) DetectionComplete() bool {
	for _, t := range r.Trials {
		if t.Outcome == OutcomeFailed {
			continue
		}
		if t.Outcome != OutcomeBenign && t.Outcome != OutcomeDetected &&
			t.Outcome != OutcomeException && t.Outcome != OutcomeTimeout {
			return false
		}
	}
	return true
}

// Campaign runs the §5.6 protocol for one program.
type Campaign struct {
	// NewEngine builds a fresh, identically seeded engine per run so every
	// trial replays the identical execution.
	NewEngine func() *sim.Engine
	Program   *asm.Program
	Config    core.Config
	// TrialsPerSegment is 5 in the paper.
	TrialsPerSegment int
	// MaxRedraws bounds retries when an injection fails to land.
	MaxRedraws int
	Seed       int64
	// Parallel fans the trials out over this many workers (<= 0 = one per
	// CPU, 1 = serial). Every trial derives its own rng seed from (Seed,
	// segment, trial), so the report is identical for any worker count.
	Parallel int
	// Progress, when set, receives per-trial progress/ETA lines.
	Progress io.Writer
	// Telemetry, when set, backs the progress gauges and counts contained
	// trial panics (paft_campaign_*).
	Telemetry *telemetry.Registry
}

func (c *Campaign) trials() int {
	if c.TrialsPerSegment > 0 {
		return c.TrialsPerSegment
	}
	return 5
}

func (c *Campaign) redraws() int {
	if c.MaxRedraws > 0 {
		return c.MaxRedraws
	}
	return 6
}

func randTarget(rng *rand.Rand) Target {
	switch rng.Intn(3) {
	case 0:
		return Target{Class: proc.GPRClass, Index: rng.Intn(16), Bit: uint(rng.Intn(64))}
	case 1:
		return Target{Class: proc.FPRClass, Index: rng.Intn(8), Bit: uint(rng.Intn(64))}
	default:
		return Target{Class: proc.VRClass, Index: rng.Intn(4), Lane: rng.Intn(4), Bit: uint(rng.Intn(64))}
	}
}

// Run executes the campaign: one clean profiling run, then trials. The
// trials — the hottest loop of the §5.6 campaign, every one a full
// simulation — are independent, so they fan out across workers. Each trial
// seeds its own rng from its (segment, trial) coordinates rather than
// drawing from a shared stream, which makes the report independent of both
// scheduling and the Parallel setting; trials are collected in (segment,
// trial) order so the report is also byte-stable.
func (c *Campaign) Run() (*Report, error) {
	// Profile run: per-segment checker durations, reference output.
	profEngine := c.NewEngine()
	profRT := core.NewRuntime(profEngine, c.Config)
	prof, err := profRT.Run(c.Program)
	if err != nil {
		return nil, fmt.Errorf("inject: profile run: %w", err)
	}
	if prof.Detected != nil {
		return nil, fmt.Errorf("inject: profile run detected a phantom error: %v", prof.Detected)
	}

	type slot struct {
		segment int
		trial   int
		cleanNs float64 // the segment's clean checker duration t
	}
	var slots []slot
	for _, segStat := range prof.Segments {
		if segStat.CheckerNs <= 0 {
			continue
		}
		for trial := 0; trial < c.trials(); trial++ {
			slots = append(slots, slot{segStat.Index, trial, segStat.CheckerNs})
		}
	}

	pr := campaign.NewProgressWith(c.Progress, "inject "+c.Program.Name, len(slots), c.Telemetry)
	results := campaign.RunProgress(c.Parallel, len(slots), pr, func(i int) (Trial, error) {
		s := slots[i]
		seed := campaign.DeriveSeed(c.Seed, "inject", c.Program.Name,
			fmt.Sprintf("seg%d", s.segment), fmt.Sprintf("trial%d", s.trial))
		rng := rand.New(rand.NewSource(seed))
		var tr Trial
		for attempt := 0; attempt < c.redraws(); attempt++ {
			at := rng.Float64() * 1.1 * s.cleanNs
			tr = c.runOne(s.segment, at, randTarget(rng), prof)
			if tr.Outcome != OutcomeFailed {
				break
			}
		}
		return tr, nil
	})

	rep := &Report{Benchmark: c.Program.Name}
	for i, res := range results {
		tr := res.Value
		if res.Err != nil {
			// A panicking simulation surfaces as a failed trial row rather
			// than killing the campaign.
			tr = Trial{Segment: slots[i].segment, Outcome: OutcomeFailed, Detail: res.Err.Error()}
		}
		rep.Trials = append(rep.Trials, tr)
		rep.Counts[tr.Outcome]++
	}
	return rep, nil
}

// runOne executes a single trial.
func (c *Campaign) runOne(segment int, atNs float64, target Target, prof *core.RunStats) Trial {
	tr := Trial{Segment: segment, AtNs: atNs, Target: target, Outcome: OutcomeFailed}

	landed := false
	cfg := c.Config
	cfg.CheckerHook = func(segIdx int, checker *proc.Process, elapsed float64) {
		if landed || segIdx != segment || elapsed < atNs {
			return
		}
		checker.FlipRegisterBit(target.Class, target.Index, target.Lane, target.Bit)
		landed = true
	}

	rt := core.NewRuntime(c.NewEngine(), cfg)
	stats, err := rt.Run(c.Program)
	if err != nil {
		tr.Outcome = OutcomeFailed
		tr.Detail = err.Error()
		return tr
	}
	if !landed {
		return tr // checker finished before the injection instant; redraw
	}

	switch {
	case stats.Detected == nil:
		if string(stats.Stdout) == string(prof.Stdout) && stats.ExitCode == prof.ExitCode {
			tr.Outcome = OutcomeBenign
		} else {
			// Should be unreachable: the fault was in the checker, so the
			// main's output cannot change. Treated as benign-with-note.
			tr.Outcome = OutcomeBenign
			tr.Detail = "output differs without detection"
		}
	case stats.Detected.IsException():
		tr.Outcome = OutcomeException
		tr.Detail = stats.Detected.Detail
	case stats.Detected.IsTimeout():
		tr.Outcome = OutcomeTimeout
		tr.Detail = stats.Detected.Detail
	default:
		tr.Outcome = OutcomeDetected
		tr.Detail = stats.Detected.Detail
	}
	return tr
}
