// Package hashx implements the 64-bit xxHash algorithm (XXH64).
//
// Parallaft compares main and checker memory at segment boundaries by
// hashing the contents of modified pages rather than copying them (§4.4);
// the paper uses xxHash (the XXH3-64 variant) for speed and its negligible
// collision rate. This package provides a from-scratch, dependency-free
// XXH64 with both one-shot and streaming interfaces; it fills the same role
// in the reproduction.
package hashx

import (
	"encoding/binary"
	"math/bits"
	"sync"
)

const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
	prime4 uint64 = 0x85EBCA77C2B2AE63
	prime5 uint64 = 0x27D4EB2F165667C5
)

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	acc ^= round(0, val)
	return acc*prime1 + prime4
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Sum64 computes the XXH64 hash of b with the given seed.
func Sum64(seed uint64, b []byte) uint64 {
	n := len(b)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}

	return avalanche(h)
}

// Hasher is a streaming XXH64 state. The zero value is not ready for use;
// call New or Reset.
type Hasher struct {
	v1, v2, v3, v4 uint64
	total          uint64
	seed           uint64
	buf            [32]byte
	bufLen         int
}

// New returns a streaming hasher initialised with seed.
func New(seed uint64) *Hasher {
	h := &Hasher{}
	h.Reset(seed)
	return h
}

var hasherPool = sync.Pool{New: func() any { return new(Hasher) }}

// AcquireHasher returns a streaming hasher initialised with seed, drawing
// from a shared pool so transient hashing (seed derivation, packet
// checksums) does not allocate a fresh state per call. Pair with
// ReleaseHasher once the hash has been read.
func AcquireHasher(seed uint64) *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.Reset(seed)
	return h
}

// ReleaseHasher returns a hasher obtained from AcquireHasher to the pool.
// The hasher must not be used after release.
func ReleaseHasher(h *Hasher) {
	hasherPool.Put(h)
}

// Reset reinitialises the hasher with a new seed, discarding buffered input.
func (h *Hasher) Reset(seed uint64) {
	h.seed = seed
	h.v1 = seed + prime1 + prime2
	h.v2 = seed + prime2
	h.v3 = seed
	h.v4 = seed - prime1
	h.total = 0
	h.bufLen = 0
}

// Write absorbs b into the hash state. It never fails; the error return
// satisfies io.Writer.
func (h *Hasher) Write(b []byte) (int, error) {
	n := len(b)
	h.total += uint64(n)

	if h.bufLen > 0 {
		c := copy(h.buf[h.bufLen:], b)
		h.bufLen += c
		b = b[c:]
		if h.bufLen < 32 {
			return n, nil
		}
		h.consumeBlock(h.buf[:])
		h.bufLen = 0
	}

	for len(b) >= 32 {
		h.consumeBlock(b[:32])
		b = b[32:]
	}
	if len(b) > 0 {
		h.bufLen = copy(h.buf[:], b)
	}
	return n, nil
}

func (h *Hasher) consumeBlock(b []byte) {
	h.v1 = round(h.v1, binary.LittleEndian.Uint64(b[0:8]))
	h.v2 = round(h.v2, binary.LittleEndian.Uint64(b[8:16]))
	h.v3 = round(h.v3, binary.LittleEndian.Uint64(b[16:24]))
	h.v4 = round(h.v4, binary.LittleEndian.Uint64(b[24:32]))
}

// WriteString absorbs s without converting it to a heap []byte: the bytes
// stream through a small stack buffer instead.
func (h *Hasher) WriteString(s string) {
	var b [64]byte
	for len(s) > 0 {
		n := copy(b[:], s)
		h.Write(b[:n]) //nolint:errcheck // never fails
		s = s[n:]
	}
}

// WriteUint64 absorbs a single little-endian 64-bit value.
func (h *Hasher) WriteUint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:]) //nolint:errcheck // never fails
}

// Sum64 returns the hash of everything written so far. It does not modify
// the state, so more data may be written afterwards.
func (h *Hasher) Sum64() uint64 {
	var acc uint64
	if h.total >= 32 {
		acc = bits.RotateLeft64(h.v1, 1) + bits.RotateLeft64(h.v2, 7) +
			bits.RotateLeft64(h.v3, 12) + bits.RotateLeft64(h.v4, 18)
		acc = mergeRound(acc, h.v1)
		acc = mergeRound(acc, h.v2)
		acc = mergeRound(acc, h.v3)
		acc = mergeRound(acc, h.v4)
	} else {
		acc = h.seed + prime5
	}

	acc += h.total

	b := h.buf[:h.bufLen]
	for len(b) >= 8 {
		acc ^= round(0, binary.LittleEndian.Uint64(b[:8]))
		acc = bits.RotateLeft64(acc, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		acc ^= uint64(binary.LittleEndian.Uint32(b[:4])) * prime1
		acc = bits.RotateLeft64(acc, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		acc ^= uint64(c) * prime5
		acc = bits.RotateLeft64(acc, 11) * prime1
	}

	return avalanche(acc)
}
