package hashx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEmptyInputVector checks the canonical XXH64 test vector for empty
// input with seed 0.
func TestEmptyInputVector(t *testing.T) {
	const want = uint64(0xEF46DB3751D8E999)
	if got := Sum64(0, nil); got != want {
		t.Errorf("Sum64(0, nil) = %#x, want %#x", got, want)
	}
	if got := New(0).Sum64(); got != want {
		t.Errorf("streaming empty = %#x, want %#x", got, want)
	}
}

func TestSeedChangesHash(t *testing.T) {
	data := []byte("the quick brown fox")
	if Sum64(0, data) == Sum64(1, data) {
		t.Error("different seeds produced identical hashes")
	}
}

func TestDeterminism(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 100)
	if Sum64(7, data) != Sum64(7, data) {
		t.Error("hash is not deterministic")
	}
}

// TestStreamingMatchesOneShot is the central property: feeding the input in
// arbitrary chunkings through the streaming interface must equal the
// one-shot hash.
func TestStreamingMatchesOneShot(t *testing.T) {
	f := func(seed uint64, data []byte, cuts []uint8) bool {
		want := Sum64(seed, data)
		h := New(seed)
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			h.Write(rest[:n]) //nolint:errcheck
			rest = rest[n:]
		}
		h.Write(rest) //nolint:errcheck
		return h.Sum64() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAllLengthsAgree crosses the 32-byte block boundary and all the tail
// paths (8/4/1-byte) for both implementations.
func TestAllLengthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 300)
	rng.Read(buf) //nolint:errcheck
	for n := 0; n <= len(buf); n++ {
		want := Sum64(99, buf[:n])
		h := New(99)
		// byte-at-a-time is the worst case for the buffer logic
		for i := 0; i < n; i++ {
			h.Write(buf[i : i+1]) //nolint:errcheck
		}
		if got := h.Sum64(); got != want {
			t.Fatalf("length %d: streaming %#x != one-shot %#x", n, got, want)
		}
	}
}

// TestAllMultiWriteSplitsAgree exhaustively cross-checks the streaming
// buffer logic: every input length 0–128 bytes, split across 2, 3 and 4
// Write calls at every possible (unaligned) cut position, must hash
// identically to the one-shot Sum64. This covers every way a split can
// straddle the 32-byte block boundary: a cut mid-block, a cut exactly on
// the boundary, a Write that fills the buffer to exactly 32, and a Write
// that both drains the buffer and consumes whole blocks.
func TestAllMultiWriteSplitsAgree(t *testing.T) {
	const maxLen = 128
	const seed = 0x9a7a11af7
	rng := rand.New(rand.NewSource(1234))
	buf := make([]byte, maxLen)
	rng.Read(buf) //nolint:errcheck

	want := make([]uint64, maxLen+1)
	for n := 0; n <= maxLen; n++ {
		want[n] = Sum64(seed, buf[:n])
	}

	h := New(seed)
	check := func(n int, cuts ...int) {
		h.Reset(seed)
		prev := 0
		for _, c := range cuts {
			h.Write(buf[prev:c]) //nolint:errcheck
			prev = c
		}
		h.Write(buf[prev:n]) //nolint:errcheck
		if got := h.Sum64(); got != want[n] {
			t.Fatalf("length %d cuts %v: streaming %#x != one-shot %#x",
				n, cuts, got, want[n])
		}
	}

	for n := 0; n <= maxLen; n++ {
		// Every 2-way and 3-way split.
		for a := 0; a <= n; a++ {
			check(n, a)
			for b := a; b <= n; b++ {
				check(n, a, b)
			}
		}
		// Every 4-way split whose first cut is near the 32-byte boundary
		// (the full 4-way product is redundant with the 3-way sweep for
		// buffer-logic purposes; the boundary-straddling first cut is the
		// interesting degree of freedom).
		for a := 24; a <= 40 && a <= n; a++ {
			for b := a; b <= n; b++ {
				for c := b; c <= n; c++ {
					check(n, a, b, c)
				}
			}
		}
	}
}

// TestHasherPoolRoundTrip checks that pooled hashers are reinitialised on
// acquire and that WriteString matches Write byte-for-byte.
func TestHasherPoolRoundTrip(t *testing.T) {
	h := AcquireHasher(11)
	h.Write([]byte("stale state")) //nolint:errcheck
	ReleaseHasher(h)

	h2 := AcquireHasher(11)
	defer ReleaseHasher(h2)
	if h2.Sum64() != Sum64(11, nil) {
		t.Error("pooled hasher was not reset on acquire")
	}
	s := "a string long enough to span the internal chunking buffer twice over, " +
		"so WriteString exercises more than one pass through its stack buffer"
	h2.WriteString(s)
	if h2.Sum64() != Sum64(11, []byte(s)) {
		t.Error("WriteString diverges from Write")
	}
}

func TestSum64NonDestructive(t *testing.T) {
	h := New(3)
	h.Write([]byte("part one ")) //nolint:errcheck
	first := h.Sum64()
	if h.Sum64() != first {
		t.Error("Sum64 modified the state")
	}
	h.Write([]byte("part two")) //nolint:errcheck
	if h.Sum64() == first {
		t.Error("writing more data did not change the hash")
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	h.Write([]byte("garbage")) //nolint:errcheck
	h.Reset(5)
	if h.Sum64() != Sum64(5, nil) {
		t.Error("Reset did not restore the initial state")
	}
	h.Reset(6)
	if h.Sum64() != Sum64(6, nil) {
		t.Error("Reset with a new seed mismatches one-shot")
	}
}

func TestWriteUint64(t *testing.T) {
	h1 := New(0)
	h1.WriteUint64(0x0123456789abcdef)
	h2 := New(0)
	h2.Write([]byte{0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01}) //nolint:errcheck
	if h1.Sum64() != h2.Sum64() {
		t.Error("WriteUint64 is not little-endian-consistent with Write")
	}
}

// TestAvalanche: flipping any single bit of a 64-byte input must change the
// hash (with overwhelming probability; here deterministically for a fixed
// input).
func TestAvalanche(t *testing.T) {
	base := bytes.Repeat([]byte{0x5a}, 64)
	want := Sum64(0, base)
	for byteIdx := 0; byteIdx < len(base); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mod := append([]byte(nil), base...)
			mod[byteIdx] ^= 1 << bit
			if Sum64(0, mod) == want {
				t.Fatalf("flipping byte %d bit %d did not change the hash", byteIdx, bit)
			}
		}
	}
}

// TestPageHashingCollisionSmoke hashes many distinct page-sized buffers and
// requires all hashes to be distinct — the property Parallaft's comparison
// relies on (§4.4, footnote 13).
func TestPageHashingCollisionSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, 16*1024)
	seen := make(map[uint64]int, 2000)
	for i := 0; i < 2000; i++ {
		rng.Read(page) //nolint:errcheck
		h := Sum64(0x9a7a11af7, page)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between random pages %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func BenchmarkSum64Page(b *testing.B) {
	page := make([]byte, 16*1024)
	rand.New(rand.NewSource(1)).Read(page) //nolint:errcheck
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		Sum64(0, page)
	}
}
