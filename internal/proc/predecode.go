package proc

import (
	"parallaft/internal/cache"
	"parallaft/internal/isa"
	"parallaft/internal/machine"
)

// This file implements the interpreter's predecode cache and per-run cost
// tables. Both exist to keep the Run hot loop free of per-step opcode
// classification: decoding facts (cost class, access size, branch/store/trap
// flags) are computed once per program, and per-(core, contention) timing is
// computed once per Run call, so the loop is reduced to table lookups.
//
// Program text is immutable by construction (Process.Code is shared across
// forks and never written — the guest ISA has no code stores and loaders
// build a fresh slice per program), so the predecoded program needs no
// invalidation: forks inherit it like they inherit Code, and two processes
// running the same text share one predecoded copy.

// pflags is a predecoded per-instruction property bitmask.
type pflags uint8

const (
	pfMem    pflags = 1 << iota // reads or writes data memory
	pfBranch                    // increments the retired-branch counter
	pfTrap                      // stops before executing (syscall/nondet/halt)
)

// pinstr is one predecoded instruction: the raw operands plus every derived
// fact the hot loop would otherwise recompute per step. 16 bytes.
type pinstr struct {
	op     isa.Op
	rd     uint8
	ra     uint8
	rb     uint8
	flags  pflags
	memIdx uint8 // index into costTables.mem: bit0 = store, bit1 = vector
	size   uint8 // data-memory access size in bytes (0 for non-memory ops)
	class  uint8 // isa.CostClass, for the non-memory cost table
	imm    int64
}

// program is a predecoded instruction sequence, shared like the source text.
type program struct {
	code []pinstr
}

// predecode classifies every instruction once.
func predecode(src []isa.Instr) *program {
	code := make([]pinstr, len(src))
	for i := range src {
		ins := &src[i]
		op := ins.Op
		pi := pinstr{
			op:    op,
			rd:    ins.Rd,
			ra:    ins.Ra,
			rb:    ins.Rb,
			class: uint8(op.Class()),
			imm:   ins.Imm,
		}
		if size := op.AccessSize(); size != 0 {
			pi.flags |= pfMem
			pi.size = uint8(size)
			if op.IsStore() {
				pi.memIdx |= 1
			}
			if op.Class() == isa.CostMemVec {
				pi.memIdx |= 2
			}
		}
		if op.IsBranch() {
			pi.flags |= pfBranch
		}
		switch op {
		case isa.OpSyscall, isa.OpRdtsc, isa.OpMrs, isa.OpHalt:
			pi.flags |= pfTrap
		}
		code[i] = pi
	}
	return &program{code: code}
}

// ensurePredecode returns the process's predecoded program, building it on
// first use. Forks inherit the cache, so a program is predecoded once no
// matter how many checkpoints and checkers execute it.
func (p *Process) ensurePredecode() *program {
	if p.pre == nil {
		p.pre = predecode(p.Code)
	}
	return p.pre
}

// costTables caches InstrTimeNs for every (class, level, store, vector)
// combination under one (cost model, core kind, frequency, contention)
// environment. Every entry is produced by the same InstrTimeNs call the
// per-step path used to make, so summing table entries accumulates
// bit-identical simulated nanoseconds.
type costTables struct {
	cost       *machine.CostModel
	kind       machine.CoreKind
	freq       float64
	contention float64
	valid      bool

	// class is the cost of a non-memory instruction per cost class.
	class [isa.NumCostClasses]float64
	// mem is the cost of a memory instruction by [store | vector<<1] and
	// the cache level that satisfied the access.
	mem [4][cache.NumLevels]float64
}

// ensure rebuilds the tables when the execution environment changed (core
// migration, DVFS step, contention update). A rebuild is ~30 InstrTimeNs
// calls — noise against the thousands of steps in one Run quantum.
func (t *costTables) ensure(cost *machine.CostModel, kind machine.CoreKind, freq, contention float64) {
	if t.valid && t.cost == cost && t.kind == kind && t.freq == freq && t.contention == contention {
		return
	}
	t.cost, t.kind, t.freq, t.contention, t.valid = cost, kind, freq, contention, true
	for cl := isa.CostClass(0); cl < isa.NumCostClasses; cl++ {
		t.class[cl] = cost.InstrTimeNs(kind, freq, cl, cache.L1Hit, false, false, contention)
	}
	for lvl := cache.Level(0); lvl < cache.NumLevels; lvl++ {
		t.mem[0][lvl] = cost.InstrTimeNs(kind, freq, isa.CostMem, lvl, true, false, contention)
		t.mem[1][lvl] = cost.InstrTimeNs(kind, freq, isa.CostMem, lvl, true, true, contention)
		t.mem[2][lvl] = cost.InstrTimeNs(kind, freq, isa.CostMemVec, lvl, true, false, contention)
		t.mem[3][lvl] = cost.InstrTimeNs(kind, freq, isa.CostMemVec, lvl, true, true, contention)
	}
}
