// Package proc implements simulated guest processes: the architectural
// register file, the instruction interpreter, the per-process performance
// monitoring unit (PMU), breakpoints, signals, and fork.
//
// The PMU mirrors the hardware behaviours Parallaft's execution-point
// record-and-replay depends on (§4.2):
//
//   - a retired-branch counter that is exact and deterministic (the
//     property the paper relies on after excluding far branches);
//   - counter overflow delivery with *skid*: the stop arrives a small,
//     nondeterministic number of instructions after the branch that caused
//     the overflow, forcing the replay algorithm to undershoot and finish
//     with breakpoints;
//   - an instruction counter that overcounts nondeterministically (noise
//     accumulates across supervisor interactions, like interrupt returns on
//     real hardware), which is why instruction counts can only be used with
//     a safety scale (the 1.1× timeout of §4.2.2) and never for precise
//     execution points.
package proc

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"parallaft/internal/cache"
	"parallaft/internal/isa"
	"parallaft/internal/machine"
	"parallaft/internal/mem"
)

// Signal numbers delivered to guest processes.
type Signal uint8

// Guest signals (a small, fixed set).
const (
	SigNone Signal = iota
	SIGSEGV
	SIGFPE
	SIGILL
	SIGINT
	SIGUSR1
	SIGUSR2
	SIGKILL
)

// String names the signal.
func (s Signal) String() string {
	switch s {
	case SigNone:
		return "none"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGFPE:
		return "SIGFPE"
	case SIGILL:
		return "SIGILL"
	case SIGINT:
		return "SIGINT"
	case SIGUSR1:
		return "SIGUSR1"
	case SIGUSR2:
		return "SIGUSR2"
	case SIGKILL:
		return "SIGKILL"
	}
	return fmt.Sprintf("sig(%d)", uint8(s))
}

// Regs is the architectural register file.
type Regs struct {
	X [isa.NumGPR]uint64
	F [isa.NumFPR]float64
	V [isa.NumVR][isa.VLanes]uint64
}

// Equal compares register files bit-exactly (NaNs compare by bit pattern,
// as a hardware comparator would).
func (r *Regs) Equal(o *Regs) bool {
	if r.X != o.X || r.V != o.V {
		return false
	}
	for i := range r.F {
		if math.Float64bits(r.F[i]) != math.Float64bits(o.F[i]) {
			return false
		}
	}
	return true
}

// Diff describes the registers that differ between two files, for error
// reports.
func (r *Regs) Diff(o *Regs) string {
	var sb strings.Builder
	for i := range r.X {
		if r.X[i] != o.X[i] {
			fmt.Fprintf(&sb, " x%d=%#x/%#x", i, r.X[i], o.X[i])
		}
	}
	for i := range r.F {
		if math.Float64bits(r.F[i]) != math.Float64bits(o.F[i]) {
			fmt.Fprintf(&sb, " f%d=%v/%v", i, r.F[i], o.F[i])
		}
	}
	for i := range r.V {
		if r.V[i] != o.V[i] {
			fmt.Fprintf(&sb, " v%d", i)
		}
	}
	return sb.String()
}

// StopReason says why the interpreter returned control to the supervisor.
type StopReason uint8

// Stop reasons.
const (
	StopBudget     StopReason = iota // instruction budget exhausted
	StopHalt                         // executed Halt
	StopSyscall                      // stopped at an unexecuted Syscall
	StopNondet                       // stopped at an unexecuted Rdtsc/Mrs
	StopBreakpoint                   // stopped at a code breakpoint
	StopCounter                      // branch-counter overflow delivered
	StopSignal                       // fault raised a pending signal
	StopInstrLimit                   // hard instruction ceiling reached
)

// String names the stop reason.
func (s StopReason) String() string {
	switch s {
	case StopBudget:
		return "budget"
	case StopHalt:
		return "halt"
	case StopSyscall:
		return "syscall"
	case StopNondet:
		return "nondet"
	case StopBreakpoint:
		return "breakpoint"
	case StopCounter:
		return "counter"
	case StopSignal:
		return "signal"
	case StopInstrLimit:
		return "instr-limit"
	}
	return fmt.Sprintf("stop(%d)", uint8(s))
}

// Stop describes an interpreter exit.
type Stop struct {
	Reason StopReason
	Sig    Signal     // for StopSignal
	Fault  *mem.Fault // for StopSignal caused by a memory fault
}

// ExecEnv tells Run where the process is executing.
type ExecEnv struct {
	Machine    *machine.Machine
	Core       *machine.Core
	Contention float64 // DRAM contention factor, >= 1
	Fabric     float64 // uniform fabric-interference factor, >= 1
}

// Sampler receives deterministic sim-clock profile samples from the
// interpreter dispatch loop: one call each time the process's simulated
// user-cycle clock crosses a sample point, with the guest PC about to
// retire and the kind of core executing it. Implementations must be
// observation-only and allocation-free in steady state — the call happens
// inside the hot loop.
type Sampler interface {
	ProfileSample(pc uint64, kind machine.CoreKind)
}

// Process is one simulated guest process.
type Process struct {
	PID  int
	ASID uint64
	Name string

	Regs Regs
	PC   uint64
	Code []isa.Instr // shared, immutable
	AS   *mem.AddressSpace

	// PMU state.
	Branches   uint64 // exact retired branch count (free-running)
	Instrs     uint64 // exact retired instruction count
	instrNoise uint64 // accumulated overcount visible through ReadInstrCounter

	counterArmed    bool
	counterTarget   uint64
	overflowPending bool
	skidRemaining   uint64
	maxSkid         uint64

	breakpoints map[uint64]struct{}
	// bpBits mirrors the in-code breakpoints as a bitmap indexed by PC, so
	// the hot loop tests a breakpoint with one shift-and-mask instead of a
	// map probe. Breakpoints past the end of code live only in the map —
	// the PC bound check fires before they could ever be consulted.
	bpBits     []uint64
	skipBPOnce bool // resume past a just-hit breakpoint

	// InstrLimit, when nonzero, kills the run with StopInstrLimit once the
	// exact instruction count reaches it (the supervisor derives it from
	// the noisy counter with the 1.1× scale).
	InstrLimit uint64

	// Timing accumulators (nanoseconds of simulated time).
	UserNs     float64
	SysNs      float64
	UserCycles float64 // user time integrated against core frequency

	// DRAMAccesses counts this process's accesses that reached DRAM, used
	// by the engine's bandwidth-contention model.
	DRAMAccesses uint64

	// Signal dispatch: handler PC per signal. On delivery x12 holds the
	// interrupted PC and control transfers to the handler, which returns
	// with `jr x12`.
	Handlers map[Signal]uint64

	Exited   bool
	ExitCode int64
	KilledBy Signal

	// pre is the predecoded program, built lazily on first Run and shared
	// across forks exactly like Code (see predecode.go).
	pre *program
	// ct caches per-environment instruction timing tables across Run calls.
	ct costTables

	// rngSeed seeds the PMU noise source; rng is created on first draw, so
	// checkpoint forks (which never execute) skip math/rand state setup.
	rngSeed int64
	rng     *rand.Rand

	// Profiling state (see SetSampler): sample points are absolute values of
	// the user-cycle clock, spaced samplePeriod cycles apart, so sampling is
	// deterministic for a deterministic run regardless of quantum boundaries.
	sampler          Sampler
	samplePeriod     float64
	sampleNextCycles float64
}

// HandlerLinkReg is the GPR that receives the interrupted PC on signal
// delivery.
const HandlerLinkReg = 12

// New creates a process executing code with the given address space. The
// seed drives the process's PMU nondeterminism (skid, overcount noise).
func New(pid int, asid uint64, name string, code []isa.Instr, as *mem.AddressSpace, seed int64) *Process {
	return &Process{
		PID:         pid,
		ASID:        asid,
		Name:        name,
		Code:        code,
		AS:          as,
		breakpoints: make(map[uint64]struct{}),
		Handlers:    make(map[Signal]uint64),
		maxSkid:     defaultMaxSkid,
		rngSeed:     seed,
	}
}

// rand returns the PMU noise source, created on first draw. The state
// depends only on the seed and the draw sequence, so lazy creation is
// invisible to determinism; it exists because most forks are checkpoints
// that never execute, and math/rand seeding is costly relative to a fork.
func (p *Process) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.rngSeed))
	}
	return p.rng
}

// defaultMaxSkid bounds counter-overflow skid in retired instructions.
const defaultMaxSkid = 24

// SetMaxSkid overrides the PMU's maximum overflow skid (used by the
// no-skid-buffer ablation and tests).
func (p *Process) SetMaxSkid(n uint64) { p.maxSkid = n }

// MaxSkid returns the PMU's maximum overflow skid.
func (p *Process) MaxSkid() uint64 { return p.maxSkid }

// Fork clones the process copy-on-write: registers and PC are copied, the
// address space forks, PMU counters start fresh, and handlers are inherited.
func (p *Process) Fork(pid int, asid uint64, name string, seed int64) *Process {
	child := New(pid, asid, name, p.Code, p.AS.Fork(), seed)
	child.Regs = p.Regs
	child.PC = p.PC
	child.maxSkid = p.maxSkid
	child.pre = p.pre // the predecoded program is shared like the text
	for sig, h := range p.Handlers {
		child.Handlers[sig] = h
	}
	return child
}

// --- PMU -----------------------------------------------------------------

// ArmBranchCounter arranges a StopCounter once the free-running branch
// counter reaches target (plus skid). Arming with target <= current count
// triggers on the next retired branch.
func (p *Process) ArmBranchCounter(target uint64) {
	p.counterArmed = true
	p.counterTarget = target
	p.overflowPending = false
	p.skidRemaining = 0
}

// DisarmBranchCounter cancels any pending overflow.
func (p *Process) DisarmBranchCounter() {
	p.counterArmed = false
	p.overflowPending = false
}

// ReadInstrCounter returns the *noisy* instruction count a commodity PMU
// would report: the exact count plus accumulated overcount (§4.2.1).
func (p *Process) ReadInstrCounter() uint64 { return p.Instrs + p.instrNoise }

// SetSampler attaches a profile sampler, scheduling the first sample point
// periodCycles user cycles from the process's current clock; nil detaches.
// Fork children start without a sampler (the runtime attaches one per
// actor), so attaching is always an explicit, deterministic act.
func (p *Process) SetSampler(s Sampler, periodCycles float64) {
	if s == nil || periodCycles <= 0 {
		p.sampler = nil
		p.samplePeriod = 0
		p.sampleNextCycles = 0
		return
	}
	p.sampler = s
	p.samplePeriod = periodCycles
	p.sampleNextCycles = p.UserCycles + periodCycles
}

// supervisorStop models the PMU noise added by each trap into the
// supervisor (interrupt/exception returns overcount instructions-retired on
// real hardware).
func (p *Process) supervisorStop() {
	p.instrNoise += uint64(p.rand().Intn(3))
}

// --- breakpoints -----------------------------------------------------------

// SetBreakpoint installs a code breakpoint at the instruction index.
func (p *Process) SetBreakpoint(pc uint64) {
	p.breakpoints[pc] = struct{}{}
	if pc < uint64(len(p.Code)) {
		if p.bpBits == nil {
			p.bpBits = make([]uint64, (len(p.Code)+63)/64)
		}
		p.bpBits[pc>>6] |= 1 << (pc & 63)
	}
}

// ClearBreakpoint removes a code breakpoint.
func (p *Process) ClearBreakpoint(pc uint64) {
	delete(p.breakpoints, pc)
	if p.bpBits != nil && pc < uint64(len(p.Code)) {
		p.bpBits[pc>>6] &^= 1 << (pc & 63)
	}
}

// ClearAllBreakpoints removes every breakpoint.
func (p *Process) ClearAllBreakpoints() {
	clear(p.breakpoints)
	for i := range p.bpBits {
		p.bpBits[i] = 0
	}
}

// HasBreakpoint reports whether a breakpoint is set at pc.
func (p *Process) HasBreakpoint(pc uint64) bool {
	_, ok := p.breakpoints[pc]
	return ok
}

// --- signals ----------------------------------------------------------------

// DeliverSignal delivers sig at the current execution point. If a handler is
// registered, x12 receives the interrupted PC and control transfers to the
// handler; otherwise the process is killed. Returns whether the process
// survived.
func (p *Process) DeliverSignal(sig Signal) bool {
	if h, ok := p.Handlers[sig]; ok && sig != SIGKILL {
		p.Regs.X[HandlerLinkReg] = p.PC
		p.PC = h
		return true
	}
	p.Exited = true
	p.KilledBy = sig
	return false
}

// --- interpreter ------------------------------------------------------------

// Run interprets instructions until the budget is exhausted or a stop event
// occurs, accumulating simulated time onto the process and the core.
//
// Stop semantics: for StopSyscall and StopNondet the PC rests *on* the
// unexecuted instruction; the supervisor emulates it and must advance the
// PC. For StopBreakpoint the PC rests on the breakpointed instruction and
// the next Run resumes past it. For StopSignal the PC rests on the faulting
// instruction. For StopCounter the PC rests on the next unexecuted
// instruction (skid already applied).
func (p *Process) Run(env ExecEnv, budget uint64) Stop {
	if p.Exited {
		return Stop{Reason: StopHalt}
	}
	hier := env.Machine.Caches
	kind := env.Core.Kind
	freq := env.Core.FreqGHz()
	coreID := env.Core.ID
	contention := env.Contention
	if contention < 1 {
		contention = 1
	}
	fabric := env.Fabric
	if fabric < 1 {
		fabric = 1
	}
	p.ct.ensure(&env.Machine.Cost, kind, freq, contention)
	ct := &p.ct
	code := p.ensurePredecode().code
	codeLen := uint64(len(code))

	var ns float64
	stop := Stop{Reason: StopBudget}

	// Profiling thresholds translated into the run-local ns domain: fabric
	// and frequency are constant for the duration of one Run call, so the
	// absolute user-cycle sample point maps to a fixed local-ns value and
	// the hot loop pays a single float compare per instruction. With no
	// sampler attached the threshold is +Inf and the compare never fires.
	sampler := p.sampler
	sampleAt := math.Inf(1)
	var samplePeriodNs float64
	if sampler != nil && p.samplePeriod > 0 {
		cycPerNs := fabric * freq
		sampleAt = (p.sampleNextCycles - p.UserCycles) / cycPerNs
		samplePeriodNs = p.samplePeriod / cycPerNs
	}

	// The hot-loop state lives in locals; the deferred epilogue writes it
	// back on every exit path, of which the loop has many.
	pc := p.PC
	instrs := p.Instrs
	branches := p.Branches
	armed := p.counterArmed
	target := p.counterTarget
	ovf := p.overflowPending
	skid := p.skidRemaining
	skipBP := p.skipBPOnce
	limit := p.InstrLimit
	r := &p.Regs
	as := p.AS
	hasBP := len(p.breakpoints) != 0 && p.bpBits != nil
	bpBits := p.bpBits

	defer func() {
		p.PC = pc
		p.Instrs = instrs
		p.Branches = branches
		p.counterArmed = armed
		p.overflowPending = ovf
		p.skidRemaining = skid
		p.skipBPOnce = skipBP
		ns *= fabric
		p.UserNs += ns
		p.UserCycles += ns * freq
		env.Core.AccountActive(ns)
		if stop.Reason != StopBudget && stop.Reason != StopHalt {
			p.supervisorStop()
		}
	}()

	for executed := uint64(0); executed < budget; executed++ {
		// Deliver a pending counter overflow once the skid has elapsed.
		if ovf && skid == 0 {
			ovf = false
			armed = false
			stop = Stop{Reason: StopCounter}
			return stop
		}
		if limit != 0 && instrs >= limit {
			stop = Stop{Reason: StopInstrLimit}
			return stop
		}
		if pc >= codeLen {
			stop = Stop{Reason: StopSignal, Sig: SIGSEGV}
			return stop
		}
		if hasBP && !skipBP {
			if bpBits[pc>>6]&(1<<(pc&63)) != 0 {
				skipBP = true
				stop = Stop{Reason: StopBreakpoint}
				return stop
			}
		}
		skipBP = false

		ins := &code[pc]
		fl := ins.flags

		// Trapped instructions stop *before* executing.
		if fl&pfTrap != 0 {
			switch ins.op {
			case isa.OpSyscall:
				stop = Stop{Reason: StopSyscall}
			case isa.OpRdtsc, isa.OpMrs:
				stop = Stop{Reason: StopNondet}
			default: // OpHalt
				p.Exited = true
				instrs++
				stop = Stop{Reason: StopHalt}
			}
			return stop
		}

		// Timing: base class cost, plus the memory hierarchy for accesses.
		var memAddr uint64
		if fl&pfMem != 0 {
			memAddr = r.X[ins.ra] + uint64(ins.imm)
			lvl := hier.AccessRange(coreID, p.ASID, memAddr, int(ins.size))
			if lvl == cache.DRAM {
				env.Machine.CountDRAMAccess()
				p.DRAMAccesses++
			}
			ns += ct.mem[ins.memIdx][lvl]
		} else {
			ns += ct.class[ins.class]
		}

		// Deterministic sim-clock sample points: fire when the accrued local
		// time crosses the next threshold, attributing the sample to the PC
		// being retired. A loop, not an if — a single slow instruction (DRAM
		// miss) can cross several periods.
		for ns >= sampleAt {
			sampler.ProfileSample(pc, kind)
			p.sampleNextCycles += p.samplePeriod
			sampleAt += samplePeriodNs
		}

		nextPC := pc + 1

		switch ins.op {
		case isa.OpNop:
		case isa.OpMov:
			r.X[ins.rd] = r.X[ins.ra]
		case isa.OpAdd:
			r.X[ins.rd] = r.X[ins.ra] + r.X[ins.rb]
		case isa.OpSub:
			r.X[ins.rd] = r.X[ins.ra] - r.X[ins.rb]
		case isa.OpMul:
			r.X[ins.rd] = r.X[ins.ra] * r.X[ins.rb]
		case isa.OpDiv:
			if r.X[ins.rb] == 0 {
				stop = Stop{Reason: StopSignal, Sig: SIGFPE}
				return stop
			}
			r.X[ins.rd] = uint64(int64(r.X[ins.ra]) / int64(r.X[ins.rb]))
		case isa.OpRem:
			if r.X[ins.rb] == 0 {
				stop = Stop{Reason: StopSignal, Sig: SIGFPE}
				return stop
			}
			r.X[ins.rd] = uint64(int64(r.X[ins.ra]) % int64(r.X[ins.rb]))
		case isa.OpAnd:
			r.X[ins.rd] = r.X[ins.ra] & r.X[ins.rb]
		case isa.OpOr:
			r.X[ins.rd] = r.X[ins.ra] | r.X[ins.rb]
		case isa.OpXor:
			r.X[ins.rd] = r.X[ins.ra] ^ r.X[ins.rb]
		case isa.OpShl:
			r.X[ins.rd] = r.X[ins.ra] << (r.X[ins.rb] & 63)
		case isa.OpShr:
			r.X[ins.rd] = r.X[ins.ra] >> (r.X[ins.rb] & 63)
		case isa.OpSlt:
			r.X[ins.rd] = b2u(int64(r.X[ins.ra]) < int64(r.X[ins.rb]))

		case isa.OpMovI:
			r.X[ins.rd] = uint64(ins.imm)
		case isa.OpAddI:
			r.X[ins.rd] = r.X[ins.ra] + uint64(ins.imm)
		case isa.OpMulI:
			r.X[ins.rd] = r.X[ins.ra] * uint64(ins.imm)
		case isa.OpAndI:
			r.X[ins.rd] = r.X[ins.ra] & uint64(ins.imm)
		case isa.OpOrI:
			r.X[ins.rd] = r.X[ins.ra] | uint64(ins.imm)
		case isa.OpXorI:
			r.X[ins.rd] = r.X[ins.ra] ^ uint64(ins.imm)
		case isa.OpShlI:
			r.X[ins.rd] = r.X[ins.ra] << (uint64(ins.imm) & 63)
		case isa.OpShrI:
			r.X[ins.rd] = r.X[ins.ra] >> (uint64(ins.imm) & 63)
		case isa.OpSltI:
			r.X[ins.rd] = b2u(int64(r.X[ins.ra]) < ins.imm)

		case isa.OpFMov:
			r.F[ins.rd] = r.F[ins.ra]
		case isa.OpFMovI:
			r.F[ins.rd] = math.Float64frombits(uint64(ins.imm))
		case isa.OpFAdd:
			r.F[ins.rd] = r.F[ins.ra] + r.F[ins.rb]
		case isa.OpFSub:
			r.F[ins.rd] = r.F[ins.ra] - r.F[ins.rb]
		case isa.OpFMul:
			r.F[ins.rd] = r.F[ins.ra] * r.F[ins.rb]
		case isa.OpFDiv:
			r.F[ins.rd] = r.F[ins.ra] / r.F[ins.rb]
		case isa.OpFSqrt:
			r.F[ins.rd] = math.Sqrt(r.F[ins.ra])
		case isa.OpCvtIF:
			r.F[ins.rd] = float64(int64(r.X[ins.ra]))
		case isa.OpCvtFI:
			r.X[ins.rd] = uint64(int64(r.F[ins.ra]))
		case isa.OpFCmpLt:
			r.X[ins.rd] = b2u(r.F[ins.ra] < r.F[ins.rb])

		case isa.OpVAdd:
			for l := 0; l < isa.VLanes; l++ {
				r.V[ins.rd][l] = r.V[ins.ra][l] + r.V[ins.rb][l]
			}
		case isa.OpVXor:
			for l := 0; l < isa.VLanes; l++ {
				r.V[ins.rd][l] = r.V[ins.ra][l] ^ r.V[ins.rb][l]
			}
		case isa.OpVMul:
			for l := 0; l < isa.VLanes; l++ {
				r.V[ins.rd][l] = r.V[ins.ra][l] * r.V[ins.rb][l]
			}
		case isa.OpVSplat:
			for l := 0; l < isa.VLanes; l++ {
				r.V[ins.rd][l] = r.X[ins.ra]
			}

		case isa.OpLd:
			v, f := as.LoadU64(memAddr)
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			r.X[ins.rd] = v
		case isa.OpSt:
			cow, f := as.StoreU64(memAddr, r.X[ins.rb])
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			if cow {
				p.chargeCOW(env)
			}
		case isa.OpLdB:
			v, f := as.LoadByte(memAddr)
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			r.X[ins.rd] = uint64(v)
		case isa.OpStB:
			cow, f := as.StoreByte(memAddr, byte(r.X[ins.rb]))
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			if cow {
				p.chargeCOW(env)
			}
		case isa.OpFLd:
			v, f := as.LoadU64(memAddr)
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			r.F[ins.rd] = math.Float64frombits(v)
		case isa.OpFSt:
			cow, f := as.StoreU64(memAddr, math.Float64bits(r.F[ins.rb]))
			if f != nil {
				stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
				return stop
			}
			if cow {
				p.chargeCOW(env)
			}
		case isa.OpVLd:
			for l := 0; l < isa.VLanes; l++ {
				v, f := as.LoadU64(memAddr + uint64(l*8))
				if f != nil {
					stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
					return stop
				}
				r.V[ins.rd][l] = v
			}
		case isa.OpVSt:
			for l := 0; l < isa.VLanes; l++ {
				cow, f := as.StoreU64(memAddr+uint64(l*8), r.V[ins.rb][l])
				if f != nil {
					stop = Stop{Reason: StopSignal, Sig: SIGSEGV, Fault: f}
					return stop
				}
				if cow {
					p.chargeCOW(env)
				}
			}

		case isa.OpBeq:
			if r.X[ins.ra] == r.X[ins.rb] {
				nextPC = uint64(ins.imm)
			}
		case isa.OpBne:
			if r.X[ins.ra] != r.X[ins.rb] {
				nextPC = uint64(ins.imm)
			}
		case isa.OpBlt:
			if int64(r.X[ins.ra]) < int64(r.X[ins.rb]) {
				nextPC = uint64(ins.imm)
			}
		case isa.OpBge:
			if int64(r.X[ins.ra]) >= int64(r.X[ins.rb]) {
				nextPC = uint64(ins.imm)
			}
		case isa.OpJmp:
			nextPC = uint64(ins.imm)
		case isa.OpJal:
			r.X[isa.RegLR] = pc + 1
			nextPC = uint64(ins.imm)
		case isa.OpJr:
			nextPC = r.X[ins.ra]

		default:
			stop = Stop{Reason: StopSignal, Sig: SIGILL}
			return stop
		}

		pc = nextPC
		instrs++

		if fl&pfBranch != 0 {
			branches++
			if armed && !ovf && branches >= target {
				ovf = true
				if p.maxSkid > 0 {
					skid = uint64(p.rand().Intn(int(p.maxSkid + 1)))
				}
			}
		} else if ovf && skid > 0 {
			skid--
		}
	}
	return stop
}

// chargeCOW accounts the kernel-side cost of a copy-on-write page copy:
// system time on the process (it does not advance the user-cycle count used
// for slicing, matching the paper's measurement of fork+COW as system CPU
// time, §5.2.1) and DRAM traffic for the page copy.
func (p *Process) chargeCOW(env ExecEnv) {
	pageSize := p.AS.PageSize()
	lines := float64(pageSize) / float64(env.Machine.Caches.LineSize())
	// trap + PTE fixup overhead, plus a line-granular copy through DRAM.
	// Scaled with the simulation's 1:2500 time scale (segments are far
	// shorter than the silicon's, so per-page costs shrink accordingly).
	ns := 60.0 + lines*0.1
	p.SysNs += ns
	prev := env.Core.SetActivity(machine.ActCOW)
	env.Core.AccountActive(ns)
	env.Core.SetActivity(prev)
	// The copy's DRAM energy is represented by a handful of scaled
	// accesses (the per-access energy constant carries the time scale).
	for i := 0; i < int(lines)/32; i++ {
		env.Machine.CountDRAMAccess()
	}
}

// ChargeSys adds supervisor/kernel time to the process (used by the OS and
// the fault-tolerance runtimes for syscall work, fork, tracing overhead).
func (p *Process) ChargeSys(env ExecEnv, ns float64) {
	p.SysNs += ns
	env.Core.AccountActive(ns)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RegClass selects a register file for fault injection.
type RegClass uint8

// Register classes, mirroring the §5.6 fault model: "a random bit flip in a
// random register, selected from the general-purpose, floating-point and
// vector registers".
const (
	GPRClass RegClass = iota
	FPRClass
	VRClass
)

// String names the register class.
func (c RegClass) String() string {
	switch c {
	case GPRClass:
		return "gpr"
	case FPRClass:
		return "fpr"
	case VRClass:
		return "vr"
	}
	return fmt.Sprintf("regclass(%d)", uint8(c))
}

// FlipRegisterBit flips one bit in the selected register, simulating a
// single-event upset. Out-of-range selections are ignored.
func (p *Process) FlipRegisterBit(class RegClass, index, lane int, bit uint) {
	bit &= 63
	switch class {
	case GPRClass:
		if index >= 0 && index < isa.NumGPR {
			p.Regs.X[index] ^= 1 << bit
		}
	case FPRClass:
		if index >= 0 && index < isa.NumFPR {
			bits := math.Float64bits(p.Regs.F[index]) ^ (1 << bit)
			p.Regs.F[index] = math.Float64frombits(bits)
		}
	case VRClass:
		if index >= 0 && index < isa.NumVR && lane >= 0 && lane < isa.VLanes {
			p.Regs.V[index][lane] ^= 1 << bit
		}
	}
}

// CurrentInstr returns the instruction at PC, or nil when PC is out of code.
func (p *Process) CurrentInstr() *isa.Instr {
	if p.PC >= uint64(len(p.Code)) {
		return nil
	}
	return &p.Code[p.PC]
}

// String summarises the process for diagnostics.
func (p *Process) String() string {
	return fmt.Sprintf("proc %d %q pc=%d instrs=%d branches=%d", p.PID, p.Name, p.PC, p.Instrs, p.Branches)
}
